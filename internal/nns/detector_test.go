package nns

import (
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/trace"
)

// trainFlows aggregates a generated normal trace into flow records.
func trainFlows(t *testing.T, flows int, seed int64) []flow.Record {
	t.Helper()
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        seed,
		Start:       time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC),
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("61.0.0.0/11")},
		DstPrefix:   netaddr.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}

func attackFlows(t *testing.T, at trace.AttackType, seed int64) []flow.Record {
	t.Helper()
	pkts, err := trace.Generate(at, trace.AttackConfig{
		Seed:      seed,
		Start:     time.Date(2005, 4, 1, 1, 0, 0, 0, time.UTC),
		Src:       netaddr.MustParseAddr("70.1.2.3"),
		DstPrefix: netaddr.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}

func TestTrainRequiresData(t *testing.T) {
	if _, err := Train(DetectorConfig{}, nil); err == nil {
		t.Error("empty training set: want error")
	}
}

func TestTrainBuildsServiceClusters(t *testing.T) {
	d, err := Train(DetectorConfig{}, trainFlows(t, 1500, 1))
	if err != nil {
		t.Fatal(err)
	}
	got := d.Clusters()
	if len(got) < 5 {
		t.Errorf("only %d subclusters trained: %v", len(got), got)
	}
	for _, c := range got {
		th, ok := d.Threshold(c)
		if !ok || th <= 0 {
			t.Errorf("cluster %v threshold %d, %v", c, th, ok)
		}
	}
	if _, ok := d.Threshold(flow.ClusterOther); ok {
		t.Error("threshold for untrained cluster should miss")
	}
}

func TestBenignFlowsMostlyPass(t *testing.T) {
	d, err := Train(DetectorConfig{}, trainFlows(t, 1500, 2))
	if err != nil {
		t.Fatal(err)
	}
	holdout := trainFlows(t, 400, 3) // same distribution, fresh seed
	fp := 0
	for _, r := range holdout {
		if d.Assess(r).Anomalous {
			fp++
		}
	}
	rate := float64(fp) / float64(len(holdout))
	if rate > 0.10 {
		t.Errorf("benign holdout anomaly rate %.1f%% (fp=%d/%d), want ≤10%%",
			100*rate, fp, len(holdout))
	}
}

func TestExploitsAreAnomalous(t *testing.T) {
	d, err := Train(DetectorConfig{}, trainFlows(t, 1500, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []trace.AttackType{
		trace.AttackHTTPExploit, trace.AttackFTPExploit,
		trace.AttackSMTPExploit, trace.AttackDNSExploit,
	} {
		recs := attackFlows(t, at, 5)
		if len(recs) == 0 {
			t.Fatalf("%v produced no flows", at)
		}
		detected := 0
		for _, r := range recs {
			if d.Assess(r).Anomalous {
				detected++
			}
		}
		if detected == 0 {
			t.Errorf("%v: 0/%d flows anomalous", at, len(recs))
		}
	}
}

func TestAssessUnknownClusterAnomalous(t *testing.T) {
	d, err := Train(DetectorConfig{}, trainFlows(t, 800, 6))
	if err != nil {
		t.Fatal(err)
	}
	// GRE flow: no "other" training data exists.
	r := flow.Record{Key: flow.Key{Proto: 47}, Packets: 10, Bytes: 1000}
	a := d.Assess(r)
	if !a.Anomalous || a.Cluster != flow.ClusterOther || a.Distance != -1 {
		t.Errorf("unknown cluster assessment %+v", a)
	}
}

func TestDetectorConfigDefaults(t *testing.T) {
	cfg := DetectorConfig{}.withDefaults()
	if cfg.Params.D != DefaultD || cfg.ThresholdQuantile != 1.0 ||
		cfg.ThresholdSlack != DefaultThresholdSlack ||
		cfg.MinClusterSize != DefaultMinClusterSize {
		t.Errorf("defaults %+v", cfg)
	}
}

// TestPartitionAblation contrasts per-protocol clusters with one global
// cluster: the unpartitioned detector is strictly more permissive on
// service-specific exploits, confirming the paper's §5.1.3(c) rationale.
func TestPartitionAblation(t *testing.T) {
	training := trainFlows(t, 1500, 30)
	part, err := Train(DetectorConfig{}, training)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Train(DetectorConfig{DisablePartition: true}, training)
	if err != nil {
		t.Fatal(err)
	}
	if got := flat.Clusters(); len(got) != 1 || got[0] != flow.ClusterOther {
		t.Fatalf("unpartitioned detector has clusters %v", got)
	}

	detects := func(d *Detector, at trace.AttackType) int {
		n := 0
		for _, r := range attackFlows(t, at, 31) {
			if d.Assess(r).Anomalous {
				n++
			}
		}
		return n
	}
	// Sum detections over the four service exploits. The partitioned
	// detector must do at least as well overall — the exploit flows sit
	// inside the global cluster's much wider envelope.
	var partHits, flatHits int
	for _, at := range []trace.AttackType{
		trace.AttackHTTPExploit, trace.AttackFTPExploit,
		trace.AttackSMTPExploit, trace.AttackDNSExploit,
	} {
		partHits += detects(part, at)
		flatHits += detects(flat, at)
	}
	if partHits < flatHits {
		t.Errorf("partitioned detector found %d exploit flows, unpartitioned %d", partHits, flatHits)
	}
	if partHits == 0 {
		t.Error("partitioned detector found nothing — ablation baseline broken")
	}
}

func TestMinClusterSizeSkipsSparseClusters(t *testing.T) {
	// Train with only a handful of flows per cluster but a high minimum:
	// Train must fail since nothing reaches the bar.
	few := trainFlows(t, 30, 7)
	if _, err := Train(DetectorConfig{MinClusterSize: 1000}, few); err == nil {
		t.Error("no cluster reaches MinClusterSize: want error")
	}
}
