package nns

import (
	"math/rand"
	"testing"
	"testing/quick"

	"infilter/internal/flow"
)

func TestBitVecBasics(t *testing.T) {
	v := NewBitVec(130)
	if v.Len() != 130 || v.OnesCount() != 0 {
		t.Fatalf("fresh vector: len=%d ones=%d", v.Len(), v.OnesCount())
	}
	v.Set(0)
	v.Set(64)
	v.Set(129)
	if !v.Get(0) || !v.Get(64) || !v.Get(129) || v.Get(1) {
		t.Error("Set/Get wrong")
	}
	if v.OnesCount() != 3 {
		t.Errorf("OnesCount = %d", v.OnesCount())
	}
	u := v.Clone()
	if !u.Equal(v) {
		t.Error("clone not equal")
	}
	u.Set(1)
	if v.Get(1) {
		t.Error("clone aliases original")
	}
}

func TestBitVecHamming(t *testing.T) {
	a, b := NewBitVec(100), NewBitVec(100)
	if a.Hamming(b) != 0 {
		t.Error("identical vectors have nonzero distance")
	}
	a.Set(3)
	a.Set(70)
	b.Set(70)
	b.Set(99)
	if got := a.Hamming(b); got != 2 {
		t.Errorf("Hamming = %d, want 2", got)
	}
}

func TestBitVecDotParity(t *testing.T) {
	a, b := NewBitVec(128), NewBitVec(128)
	if a.Dot(b) != 0 {
		t.Error("zero vectors dot != 0")
	}
	a.Set(5)
	b.Set(5)
	if a.Dot(b) != 1 {
		t.Error("single overlap dot != 1")
	}
	a.Set(77)
	b.Set(77)
	if a.Dot(b) != 0 {
		t.Error("double overlap dot != 0")
	}
}

func TestBitVecMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Hamming did not panic")
		}
	}()
	NewBitVec(10).Hamming(NewBitVec(11))
}

func TestEncoderUnaryWorkedExample(t *testing.T) {
	// Paper §4.2 example spirit: a value at 3/4 of its range gets 3 of 4
	// ones. Our encoder fixes dC = d/5, so emulate with a d=20 encoder
	// (dC=4 bits per characteristic).
	e, err := NewEncoder(20, [flow.NumStats]StatRange{
		{Min: 0, Max: 4}, {Min: 0, Max: 8}, {Min: 0, Max: 4}, {Min: 0, Max: 4}, {Min: 0, Max: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Level(0, 3); got != 3 {
		t.Errorf("Level(0,3) = %d, want 3", got)
	}
	if got := e.Level(1, 6); got != 3 {
		t.Errorf("Level(1,6) = %d, want 3 (6/8 of 4 bits)", got)
	}
	v := e.Encode(flow.Stats{Bytes: 3, Packets: 6})
	// First stat: 3 ones in bits 0..3; second: 3 ones in bits 4..7.
	wantOnes := 6
	if v.OnesCount() != wantOnes {
		t.Errorf("OnesCount = %d, want %d", v.OnesCount(), wantOnes)
	}
	for i := 0; i < 3; i++ {
		if !v.Get(i) {
			t.Errorf("bit %d unset", i)
		}
	}
	if v.Get(3) {
		t.Error("bit 3 set")
	}
}

func TestEncoderClamping(t *testing.T) {
	e := MustDefaultEncoder()
	if got := e.Level(0, -5); got != 0 {
		t.Errorf("Level below min = %d", got)
	}
	if got := e.Level(0, 1e12); got != e.D()/flow.NumStats {
		t.Errorf("Level above max = %d", got)
	}
}

// TestEncoderHammingIsL1 verifies the key property of unary encoding: the
// Hamming distance between two encodings equals the L1 distance between
// their level vectors.
func TestEncoderHammingIsL1(t *testing.T) {
	e := MustDefaultEncoder()
	f := func(b1, p1, b2, p2 uint16) bool {
		s1 := flow.Stats{Bytes: float64(b1), Packets: float64(p1 % 300)}
		s2 := flow.Stats{Bytes: float64(b2), Packets: float64(p2 % 300)}
		want := abs(e.Level(0, s1.Bytes)-e.Level(0, s2.Bytes)) +
			abs(e.Level(1, s1.Packets)-e.Level(1, s2.Packets))
		return e.Encode(s1).Hamming(e.Encode(s2)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(0, DefaultRanges()); err == nil {
		t.Error("d=0: want error")
	}
	if _, err := NewEncoder(7, DefaultRanges()); err == nil {
		t.Error("d not multiple of stats: want error")
	}
	bad := DefaultRanges()
	bad[2] = StatRange{Min: 5, Max: 5}
	if _, err := NewEncoder(DefaultD, bad); err == nil {
		t.Error("empty range: want error")
	}
}

func TestParamsValidate(t *testing.T) {
	for _, p := range []Params{
		{D: 0, M1: 1, M2: 12, M3: 3},
		{D: 720, M1: 0, M2: 12, M3: 3},
		{D: 720, M1: 1, M2: 0, M3: 3},
		{D: 720, M1: 1, M2: 25, M3: 3},
		{D: 720, M1: 1, M2: 12, M3: 0},
		{D: 720, M1: 1, M2: 12, M3: 13},
	} {
		if err := p.validate(); err == nil {
			t.Errorf("validate(%+v): want error", p)
		}
	}
	if err := DefaultParams().validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
}

func TestTraceNeighborMasksCount(t *testing.T) {
	// M2=12, M3=3: C(12,0)+C(12,1)+C(12,2) = 1+12+66 = 79 masks.
	masks := traceNeighborMasks(12, 3)
	if len(masks) != 79 {
		t.Fatalf("%d masks, want 79", len(masks))
	}
	seen := map[int]bool{}
	for _, m := range masks {
		if seen[m] {
			t.Fatalf("duplicate mask %b", m)
		}
		seen[m] = true
		if popcount(m) >= 3 {
			t.Fatalf("mask %b flips %d bits", m, popcount(m))
		}
	}
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(DefaultParams(), nil); err == nil {
		t.Error("empty cluster: want error")
	}
	if _, err := Build(DefaultParams(), []BitVec{NewBitVec(10)}); err == nil {
		t.Error("wrong dimension: want error")
	}
	bad := DefaultParams()
	bad.M2 = 0
	if _, err := Build(bad, []BitVec{NewBitVec(DefaultD)}); err == nil {
		t.Error("bad params: want error")
	}
}

// clusterAround builds synthetic unary-encoded flows near a center level
// pattern, plus the encoder used.
func clusterAround(t *testing.T, rng *rand.Rand, n int, center flow.Stats, spread float64) (*Encoder, []BitVec, []flow.Stats) {
	t.Helper()
	e := MustDefaultEncoder()
	vecs := make([]BitVec, 0, n)
	stats := make([]flow.Stats, 0, n)
	for i := 0; i < n; i++ {
		s := flow.Stats{
			Bytes:      center.Bytes * (1 + spread*(rng.Float64()-0.5)),
			Packets:    center.Packets * (1 + spread*(rng.Float64()-0.5)),
			DurationMS: center.DurationMS * (1 + spread*(rng.Float64()-0.5)),
			BitRate:    center.BitRate * (1 + spread*(rng.Float64()-0.5)),
			PacketRate: center.PacketRate * (1 + spread*(rng.Float64()-0.5)),
		}
		stats = append(stats, s)
		vecs = append(vecs, e.Encode(s))
	}
	return e, vecs, stats
}

var httpCenter = flow.Stats{Bytes: 20000, Packets: 30, DurationMS: 1500, BitRate: 100000, PacketRate: 20}

func TestSearchFindsExactMember(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, vecs, _ := clusterAround(t, rng, 60, httpCenter, 0.4)
	st, err := Build(DefaultParams(), vecs)
	if err != nil {
		t.Fatal(err)
	}
	// Querying with a training member must find a very close neighbor —
	// the approximation returns a representative within a few trace
	// collisions of the member itself (empirically ≤ ~20 of 720 bits).
	for i := 0; i < 20; i++ {
		res, ok := st.Search(vecs[i])
		if !ok {
			t.Fatalf("Search returned nothing for member %d", i)
		}
		if res.Distance > 60 {
			t.Errorf("member %d neighbor at distance %d, want ≤ 60", i, res.Distance)
		}
	}
}

func TestSearchApproximatesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, vecs, _ := clusterAround(t, rng, 80, httpCenter, 0.5)
	st, err := Build(DefaultParams(), vecs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := e.Encode(flow.Stats{
			Bytes:      httpCenter.Bytes * (1 + 0.6*(rng.Float64()-0.5)),
			Packets:    httpCenter.Packets * (1 + 0.6*(rng.Float64()-0.5)),
			DurationMS: httpCenter.DurationMS,
			BitRate:    httpCenter.BitRate,
			PacketRate: httpCenter.PacketRate,
		})
		res, ok := st.Search(q)
		if !ok {
			t.Fatal("no neighbor found")
		}
		best := 1 << 30
		for _, v := range vecs {
			if h := q.Hamming(v); h < best {
				best = h
			}
		}
		// KOR is an approximation: allow a generous factor but require the
		// same order of magnitude.
		if res.Distance > 4*best+40 {
			t.Errorf("trial %d: approx distance %d vs exact %d", trial, res.Distance, best)
		}
	}
}

func TestSearchSeparatesFarQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, vecs, _ := clusterAround(t, rng, 80, httpCenter, 0.4)
	st, err := Build(DefaultParams(), vecs)
	if err != nil {
		t.Fatal(err)
	}
	// An exploit-like flow: huge byte count, tiny duration, extreme rates.
	q := e.Encode(flow.Stats{Bytes: 120000, Packets: 80, DurationMS: 40, BitRate: 23e6, PacketRate: 2000})
	res, ok := st.Search(q)
	if !ok {
		t.Fatal("no neighbor for far query")
	}
	// Near-query distances for comparison.
	near, ok := st.Search(vecs[0])
	if !ok {
		t.Fatal("no neighbor for member")
	}
	if res.Distance <= near.Distance+100 {
		t.Errorf("far query distance %d not well beyond member distance %d", res.Distance, near.Distance)
	}
}

// TestExactSearchIsGroundTruth verifies ExactSearch against a manual scan
// and bounds the approximate search's excess distance over it.
func TestExactSearchIsGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, vecs, _ := clusterAround(t, rng, 60, httpCenter, 0.5)
	st, err := Build(DefaultParams(), vecs)
	if err != nil {
		t.Fatal(err)
	}
	var excess int
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		q := e.Encode(flow.Stats{
			Bytes:      httpCenter.Bytes * (1 + 0.7*(rng.Float64()-0.5)),
			Packets:    httpCenter.Packets * (1 + 0.7*(rng.Float64()-0.5)),
			DurationMS: httpCenter.DurationMS,
			BitRate:    httpCenter.BitRate,
			PacketRate: httpCenter.PacketRate,
		})
		exact, ok := st.ExactSearch(q)
		if !ok {
			t.Fatal("exact search failed")
		}
		// Cross-check against a manual scan.
		want := 1 << 30
		for _, v := range vecs {
			if h := q.Hamming(v); h < want {
				want = h
			}
		}
		if exact.Distance != want {
			t.Fatalf("ExactSearch distance %d, manual scan %d", exact.Distance, want)
		}
		approx, ok := st.Search(q)
		if !ok {
			t.Fatal("approx search failed")
		}
		if approx.Distance < exact.Distance {
			t.Fatalf("approx distance %d below exact %d", approx.Distance, exact.Distance)
		}
		excess += approx.Distance - exact.Distance
	}
	if avg := float64(excess) / trials; avg > 30 {
		t.Errorf("mean approximation excess %.1f bits of 720, want tight", avg)
	}
}

func TestExactSearchWrongDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	_, vecs, _ := clusterAround(t, rng, 10, httpCenter, 0.3)
	st, err := Build(DefaultParams(), vecs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.ExactSearch(NewBitVec(10)); ok {
		t.Error("wrong-dimension exact query should fail")
	}
}

// TestMultiTableM1 exercises M1>1 (the paper uses M1=1): structures must
// build and search correctly with redundant tables.
func TestMultiTableM1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, vecs, _ := clusterAround(t, rng, 40, httpCenter, 0.4)
	params := DefaultParams()
	params.M1 = 3
	st, err := Build(params, vecs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := st.Search(vecs[i]); !ok {
			t.Fatalf("M1=3 search failed for member %d", i)
		}
	}
}

func TestSearchWrongDimension(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_, vecs, _ := clusterAround(t, rng, 20, httpCenter, 0.3)
	st, err := Build(DefaultParams(), vecs)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Search(NewBitVec(10)); ok {
		t.Error("wrong-dimension query should fail")
	}
}
