package nns

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Params are the KOR structure parameters. The paper's experiments use
// d=720, M1=1, M2=12, M3=3 (§4.2).
type Params struct {
	D  int // encoding dimension
	M1 int // tables per substructure
	M2 int // test vectors (trace bits) per table
	M3 int // Hamming radius for table fill: entries z with HD(trace,z) < M3
	// Seed fixes the test-vector PRNG.
	Seed int64
}

// DefaultParams returns the paper's parameter set.
func DefaultParams() Params {
	return Params{D: DefaultD, M1: 1, M2: 12, M3: 3, Seed: 1}
}

func (p Params) validate() error {
	switch {
	case p.D <= 0:
		return fmt.Errorf("nns: D must be positive, got %d", p.D)
	case p.M1 <= 0:
		return fmt.Errorf("nns: M1 must be positive, got %d", p.M1)
	case p.M2 <= 0 || p.M2 > 20:
		return fmt.Errorf("nns: M2 must be in [1,20], got %d", p.M2)
	case p.M3 <= 0 || p.M3 > p.M2:
		return fmt.Errorf("nns: M3 must be in [1,M2], got %d", p.M3)
	default:
		return nil
	}
}

// table is one T_ij: M2 test vectors and the 2^M2-entry table holding, per
// entry, the index of the last training flow entered (-1 when empty). The
// paper's search only needs emptiness plus one representative flow.
type table struct {
	tests   []BitVec
	entries []int32
}

// Structure is the per-cluster KOR search structure over a training set.
type Structure struct {
	params  Params
	cluster []BitVec  // encoded training flows, by index
	subs    [][]table // subs[i-1] are the M1 tables of S_i, i = distance 1..D
}

// Build constructs the structure over the encoded training cluster,
// following the creation algorithm of paper Figure 6: substructure S_i
// gets test vectors from CreateTestVector(b=1/(2i)), and each flow is
// entered at every table entry within Hamming radius M3 of its trace.
func Build(params Params, cluster []BitVec) (*Structure, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(cluster) == 0 {
		return nil, fmt.Errorf("nns: empty training cluster")
	}
	for i, v := range cluster {
		if v.Len() != params.D {
			return nil, fmt.Errorf("nns: training flow %d has %d bits, want %d", i, v.Len(), params.D)
		}
	}
	s := &Structure{
		params:  params,
		cluster: cluster,
		subs:    make([][]table, params.D),
	}
	neighbors := traceNeighborMasks(params.M2, params.M3)
	// Each substructure draws its test vectors from its own seed-derived
	// stream, so creation parallelizes across substructures while staying
	// deterministic in params.Seed (the property the model serializer
	// relies on).
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > params.D {
		workers = params.D
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s.subs[i-1] = buildSubstructure(params, cluster, neighbors, i)
			}
		}()
	}
	for i := 1; i <= params.D; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return s, nil
}

// buildSubstructure constructs S_i's M1 tables.
func buildSubstructure(params Params, cluster []BitVec, neighbors []int, i int) []table {
	rng := rand.New(rand.NewSource(subSeed(params.Seed, i)))
	b := 1 / (2 * float64(i))
	tabs := make([]table, params.M1)
	for j := range tabs {
		t := table{
			tests:   make([]BitVec, params.M2),
			entries: make([]int32, 1<<uint(params.M2)),
		}
		for k := range t.entries {
			t.entries[k] = -1
		}
		for k := range t.tests {
			t.tests[k] = createTestVector(rng, params.D, b)
		}
		for fi, fv := range cluster {
			z := traceOf(t.tests, fv)
			for _, m := range neighbors {
				t.entries[z^m] = int32(fi)
			}
		}
		tabs[j] = t
	}
	return tabs
}

// subSeed derives substructure i's PRNG seed from the structure seed.
func subSeed(seed int64, i int) int64 {
	x := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// createTestVector is the paper's CreateTestVector: each bit is 1 with
// probability b/2, independently.
func createTestVector(rng *rand.Rand, d int, b float64) BitVec {
	v := NewBitVec(d)
	p := b / 2
	for i := 0; i < d; i++ {
		if rng.Float64() < p {
			v.Set(i)
		}
	}
	return v
}

// traceOf computes trace(φ) = (Test(u_1,φ),…,Test(u_M2,φ)) packed into an
// integer.
func traceOf(tests []BitVec, v BitVec) int {
	z := 0
	for k, u := range tests {
		z |= u.Dot(v) << uint(k)
	}
	return z
}

// traceNeighborMasks enumerates the XOR masks of all M2-bit strings within
// Hamming distance < m3 of a given trace (0, 1 and 2 bit flips for the
// paper's M3=3).
func traceNeighborMasks(m2, m3 int) []int {
	masks := []int{0}
	if m3 >= 2 {
		for i := 0; i < m2; i++ {
			masks = append(masks, 1<<uint(i))
		}
	}
	if m3 >= 3 {
		for i := 0; i < m2; i++ {
			for j := i + 1; j < m2; j++ {
				masks = append(masks, 1<<uint(i)|1<<uint(j))
			}
		}
	}
	if m3 >= 4 {
		// General case for radii beyond the paper's: recurse over flip
		// counts 3..m3-1.
		var rec func(start, left, mask int)
		rec = func(start, left, mask int) {
			if left == 0 {
				masks = append(masks, mask)
				return
			}
			for i := start; i < m2; i++ {
				rec(i+1, left-1, mask|1<<uint(i))
			}
		}
		for flips := 3; flips < m3; flips++ {
			rec(0, flips, 0)
		}
	}
	return masks
}

// Result is a nearest-neighbor answer.
type Result struct {
	// Index of the neighbor within the training cluster.
	Index int
	// Distance is the exact Hamming distance between query and neighbor.
	Distance int
}

// Search runs the binary search of paper Figure 8: at candidate distance t
// it picks one of S_t's tables, computes the query's trace, and narrows
// toward smaller distances whenever the table entry holds a training flow.
// Among the O(log d) representatives the probes surface, it returns the one
// at minimum exact Hamming distance from the query — a refinement of the
// paper's "last non-empty entry" rule that costs nothing extra (each probe
// already touches its representative) and sharply reduces approximation
// noise.
func (s *Structure) Search(query BitVec) (Result, bool) {
	if query.Len() != s.params.D {
		return Result{}, false
	}
	var (
		bestIdx  = -1
		bestDist = 0
		lo, hi   = 1, s.params.D
	)
	consider := func(idx int32) {
		if idx < 0 {
			return
		}
		d := query.Hamming(s.cluster[idx])
		if bestIdx < 0 || d < bestDist {
			bestIdx, bestDist = int(idx), d
		}
	}
	// rng for the M1 table choice; deterministic per structure for
	// reproducibility (M1=1 in the paper, so this rarely matters).
	rng := rand.New(rand.NewSource(s.params.Seed ^ 0x5f5f5f5f))
	for lo < hi {
		mid := (lo + hi) / 2
		tabs := s.subs[mid-1]
		t := tabs[rng.Intn(len(tabs))]
		z := traceOf(t.tests, query)
		if idx := t.entries[z]; idx >= 0 {
			consider(idx)
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	// Probe the final distance as well.
	tabs := s.subs[lo-1]
	t := tabs[rng.Intn(len(tabs))]
	consider(t.entries[traceOf(t.tests, query)])
	if bestIdx < 0 {
		return Result{}, false
	}
	return Result{Index: bestIdx, Distance: bestDist}, true
}

// ExactSearch is the brute-force comparator: the true nearest neighbor by
// linear scan. It exists to quantify the KOR structure's approximation
// quality (see the ablation benchmarks) and as a reference in tests; it is
// O(n·d) per query where Search is O(log d · M2 · d).
func (s *Structure) ExactSearch(query BitVec) (Result, bool) {
	if query.Len() != s.params.D || len(s.cluster) == 0 {
		return Result{}, false
	}
	best, bestIdx := -1, -1
	for i, v := range s.cluster {
		if h := query.Hamming(v); best < 0 || h < best {
			best, bestIdx = h, i
		}
	}
	return Result{Index: bestIdx, Distance: best}, true
}

// ClusterSize returns the number of training flows indexed.
func (s *Structure) ClusterSize() int { return len(s.cluster) }

// ClusterVec returns the encoded training flow at index i.
func (s *Structure) ClusterVec(i int) BitVec { return s.cluster[i] }
