package nns

import (
	"encoding/gob"
	"fmt"
	"io"

	"infilter/internal/flow"
)

// The detector serializer persists what cannot be rebuilt cheaply or must
// be identical across hosts: the configuration, each subcluster's indexed
// training vectors and its calibrated threshold. The table structures are
// NOT stored — Build is deterministic in Params.Seed, so load-time
// reconstruction yields bit-identical structures at a fraction of the file
// size (the tables alone would be ~12 MB per subcluster).

// detectorDTO is the on-disk form.
type detectorDTO struct {
	Version  int
	Config   DetectorConfig
	Clusters map[flow.Subcluster]clusterDTO
}

type clusterDTO struct {
	Threshold int
	NBits     int
	Vecs      [][]uint64
}

// detectorFormatVersion guards against incompatible files.
const detectorFormatVersion = 1

// Save persists the trained detector.
func (d *Detector) Save(w io.Writer) error {
	dto := detectorDTO{
		Version:  detectorFormatVersion,
		Config:   d.cfg,
		Clusters: make(map[flow.Subcluster]clusterDTO, len(d.clusters)),
	}
	for c, st := range d.clusters {
		cd := clusterDTO{
			Threshold: st.threshold,
			NBits:     d.cfg.Params.D,
			Vecs:      make([][]uint64, st.structure.ClusterSize()),
		}
		for i := 0; i < st.structure.ClusterSize(); i++ {
			words := st.structure.ClusterVec(i).Words()
			cp := make([]uint64, len(words))
			copy(cp, words)
			cd.Vecs[i] = cp
		}
		dto.Clusters[c] = cd
	}
	if err := gob.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("nns: save detector: %w", err)
	}
	return nil
}

// LoadDetector reconstructs a detector saved with Save: thresholds are
// restored verbatim and the per-cluster KOR structures are rebuilt from
// the stored vectors with the saved seeds.
func LoadDetector(r io.Reader) (*Detector, error) {
	var dto detectorDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("nns: load detector: %w", err)
	}
	if dto.Version != detectorFormatVersion {
		return nil, fmt.Errorf("nns: detector file version %d, want %d", dto.Version, detectorFormatVersion)
	}
	if len(dto.Clusters) == 0 {
		return nil, fmt.Errorf("nns: detector file has no clusters")
	}
	enc, err := NewEncoder(dto.Config.Params.D, dto.Config.Ranges)
	if err != nil {
		return nil, fmt.Errorf("nns: load detector: %w", err)
	}
	d := &Detector{
		cfg:      dto.Config,
		enc:      enc,
		clusters: make(map[flow.Subcluster]*clusterState, len(dto.Clusters)),
	}
	for c, cd := range dto.Clusters {
		vecs := make([]BitVec, len(cd.Vecs))
		for i, words := range cd.Vecs {
			v, err := FromWords(words, cd.NBits)
			if err != nil {
				return nil, fmt.Errorf("nns: load %v cluster vec %d: %w", c, i, err)
			}
			vecs[i] = v
		}
		params := dto.Config.Params
		params.Seed = dto.Config.Params.Seed + int64(c)
		st, err := Build(params, vecs)
		if err != nil {
			return nil, fmt.Errorf("nns: rebuild %v structure: %w", c, err)
		}
		d.clusters[c] = &clusterState{structure: st, threshold: cd.Threshold}
	}
	return d, nil
}
