// Package nns implements the approximate nearest-neighbor search of
// Kushilevitz, Ostrovsky and Rabani ("Efficient Search for Approximate
// Nearest Neighbor in High Dimensional Spaces", SIAM J. Comput. 30(2))
// as used by Enhanced InFilter (paper §4.2, Figures 6-8): flows are unary
// encoded into {0,1}^d, probabilistic traces hash them into per-distance
// tables, and queries binary-search the distance scale.
package nns

import (
	"fmt"
	"math/bits"
)

// BitVec is a fixed-length bit vector in {0,1}^d backed by 64-bit words.
type BitVec struct {
	bits []uint64
	n    int
}

// NewBitVec returns an all-zero vector of n bits.
func NewBitVec(n int) BitVec {
	return BitVec{bits: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (v BitVec) Len() int { return v.n }

// Set sets bit i to 1.
func (v BitVec) Set(i int) {
	v.bits[i>>6] |= 1 << (uint(i) & 63)
}

// Get returns bit i.
func (v BitVec) Get(i int) bool {
	return v.bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// OnesCount returns the number of set bits.
func (v BitVec) OnesCount() int {
	total := 0
	for _, w := range v.bits {
		total += bits.OnesCount64(w)
	}
	return total
}

// Hamming returns the Hamming distance between v and u (procedure HD in
// the paper, generalized to d bits).
func (v BitVec) Hamming(u BitVec) int {
	if v.n != u.n {
		panic(fmt.Sprintf("nns: Hamming of %d-bit and %d-bit vectors", v.n, u.n))
	}
	total := 0
	for i := range v.bits {
		total += bits.OnesCount64(v.bits[i] ^ u.bits[i])
	}
	return total
}

// Dot returns the inner product of v and u over GF(2) — the paper's Test
// procedure: parity of the AND of the two vectors.
func (v BitVec) Dot(u BitVec) int {
	if v.n != u.n {
		panic(fmt.Sprintf("nns: Dot of %d-bit and %d-bit vectors", v.n, u.n))
	}
	parity := 0
	for i := range v.bits {
		parity ^= bits.OnesCount64(v.bits[i]&u.bits[i]) & 1
	}
	return parity
}

// Clone returns an independent copy of v.
func (v BitVec) Clone() BitVec {
	out := BitVec{bits: make([]uint64, len(v.bits)), n: v.n}
	copy(out.bits, v.bits)
	return out
}

// Words exposes the backing words (least-significant bit first). The
// returned slice aliases the vector; callers must not mutate it. Used by
// the detector serializer.
func (v BitVec) Words() []uint64 { return v.bits }

// FromWords reconstructs a BitVec of n bits from backing words (the
// inverse of Words). The words slice is copied.
func FromWords(words []uint64, n int) (BitVec, error) {
	if len(words) != (n+63)/64 {
		return BitVec{}, fmt.Errorf("nns: %d words cannot back %d bits", len(words), n)
	}
	out := BitVec{bits: make([]uint64, len(words)), n: n}
	copy(out.bits, words)
	return out, nil
}

// Equal reports bitwise equality.
func (v BitVec) Equal(u BitVec) bool {
	if v.n != u.n {
		return false
	}
	for i := range v.bits {
		if v.bits[i] != u.bits[i] {
			return false
		}
	}
	return true
}
