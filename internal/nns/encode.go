package nns

import (
	"fmt"
	"math"

	"infilter/internal/flow"
)

// StatRange bounds one flow characteristic for unary encoding: values in
// [Min,Max] are divided into the per-characteristic bit budget's intervals
// (paper §4.2's worked example); out-of-range values clamp. With Log set,
// intervals are equal in log(1+v) space — flow statistics span four-plus
// orders of magnitude, and logarithmic interval division keeps both benign
// tails and attack extremes resolvable where a linear division would clamp
// them onto the same level.
type StatRange struct {
	Min float64
	Max float64
	Log bool
}

// Encoder unary-encodes the five flow statistics into {0,1}^d. With the
// paper's d=720 each characteristic gets dC = 144 bits.
type Encoder struct {
	d      int
	dc     int
	ranges [flow.NumStats]StatRange
}

// DefaultD is the encoding dimension used in the paper's experiments.
const DefaultD = 720

// DefaultRanges bounds the five statistics (bytes, packets, duration ms,
// bit rate, packet rate) with log-scale interval division wide enough that
// attack extremes stay distinguishable from clamped benign tails.
func DefaultRanges() [flow.NumStats]StatRange {
	return [flow.NumStats]StatRange{
		{Min: 0, Max: 10_000_000, Log: true},  // bytes
		{Min: 0, Max: 10_000, Log: true},      // packets
		{Min: 0, Max: 600_000, Log: true},     // duration ms
		{Min: 0, Max: 100_000_000, Log: true}, // bit rate
		{Min: 0, Max: 10_000, Log: true},      // packet rate
	}
}

// NewEncoder builds an encoder of dimension d (a multiple of
// flow.NumStats) over the given ranges.
func NewEncoder(d int, ranges [flow.NumStats]StatRange) (*Encoder, error) {
	if d <= 0 || d%flow.NumStats != 0 {
		return nil, fmt.Errorf("nns: dimension %d not a positive multiple of %d", d, flow.NumStats)
	}
	for i, r := range ranges {
		if r.Max <= r.Min {
			return nil, fmt.Errorf("nns: stat %d range [%v,%v] empty", i, r.Min, r.Max)
		}
	}
	return &Encoder{d: d, dc: d / flow.NumStats, ranges: ranges}, nil
}

// MustDefaultEncoder returns the paper-parameter encoder (d=720, default
// ranges); it panics only on programming error.
func MustDefaultEncoder() *Encoder {
	e, err := NewEncoder(DefaultD, DefaultRanges())
	if err != nil {
		panic(err)
	}
	return e
}

// D returns the encoding dimension.
func (e *Encoder) D() int { return e.d }

// Level maps one statistic value to its interval index in [0, dC].
func (e *Encoder) Level(stat int, v float64) int {
	r := e.ranges[stat]
	if v <= r.Min {
		return 0
	}
	if v >= r.Max {
		return e.dc
	}
	if r.Log {
		return int(float64(e.dc) * math.Log1p(v-r.Min) / math.Log1p(r.Max-r.Min))
	}
	return int(float64(e.dc) * (v - r.Min) / (r.Max - r.Min))
}

// Encode produces the unary d-bit representation of a statistics vector:
// per characteristic, I ones followed by dC-I zeros, concatenated.
func (e *Encoder) Encode(s flow.Stats) BitVec {
	out := NewBitVec(e.d)
	vec := s.Vector()
	for stat := 0; stat < flow.NumStats; stat++ {
		level := e.Level(stat, vec[stat])
		base := stat * e.dc
		for i := 0; i < level; i++ {
			out.Set(base + i)
		}
	}
	return out
}

// EncodeRecord encodes a flow record's statistics.
func (e *Encoder) EncodeRecord(r flow.Record) BitVec {
	return e.Encode(flow.StatsOf(r))
}
