package nns

import (
	"bytes"
	"strings"
	"testing"
)

func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	d, err := Train(DetectorConfig{}, trainFlows(t, 1200, 21))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Same clusters, same thresholds.
	orig, got := d.Clusters(), loaded.Clusters()
	if len(orig) != len(got) {
		t.Fatalf("clusters %v vs %v", orig, got)
	}
	for _, c := range orig {
		to, _ := d.Threshold(c)
		tl, ok := loaded.Threshold(c)
		if !ok || to != tl {
			t.Errorf("cluster %v threshold %d vs %d (%v)", c, to, tl, ok)
		}
	}

	// Identical assessments on fresh traffic (Build is deterministic in
	// the saved seeds, so the structures must agree flow by flow).
	probe := trainFlows(t, 300, 22)
	for i, r := range probe {
		a, b := d.Assess(r), loaded.Assess(r)
		if a.Anomalous != b.Anomalous || a.Distance != b.Distance || a.Cluster != b.Cluster {
			t.Fatalf("flow %d: original %+v vs loaded %+v", i, a, b)
		}
	}
}

func TestLoadDetectorErrors(t *testing.T) {
	if _, err := LoadDetector(strings.NewReader("not gob data")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := LoadDetector(bytes.NewReader(nil)); err == nil {
		t.Error("empty: want error")
	}
}

func TestBitVecWordsRoundTrip(t *testing.T) {
	v := NewBitVec(130)
	v.Set(0)
	v.Set(65)
	v.Set(129)
	back, err := FromWords(v.Words(), 130)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(v) {
		t.Error("Words/FromWords round trip broke the vector")
	}
	if _, err := FromWords(v.Words(), 500); err == nil {
		t.Error("mismatched bit count: want error")
	}
}
