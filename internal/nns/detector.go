package nns

import (
	"fmt"
	"sort"
	"time"

	"infilter/internal/flow"
	"infilter/internal/telemetry"
)

// Metrics are the NNS runtime counters: assessments performed, anomalous
// verdicts, and the end-to-end query latency (encode + search). The
// latency histogram is shared by every goroutine assessing against the
// detector; recording is atomic, so the detector stays lock-free.
type Metrics struct {
	Queries   *telemetry.Counter
	Anomalies *telemetry.Counter
	Latency   *telemetry.Histogram
}

// NewMetrics registers the NNS counters and latency histogram on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Queries:   r.Counter("infilter_nns_queries_total", "Flows assessed against an NNS structure."),
		Anomalies: r.Counter("infilter_nns_anomalies_total", "NNS assessments that returned an anomalous (attack) verdict."),
		Latency:   r.Histogram("infilter_nns_query_latency_seconds", "NNS assessment latency (encode + approximate search).", telemetry.LatencyBuckets(), telemetry.UnitSeconds),
	}
}

// DetectorConfig tunes the per-cluster anomaly detector built on the KOR
// structure.
type DetectorConfig struct {
	// Params are the KOR parameters; zero value takes DefaultParams.
	Params Params
	// Ranges bound the unary encoding; zero value takes DefaultRanges.
	Ranges [flow.NumStats]StatRange
	// ThresholdQuantile picks the per-cluster Hamming threshold from the
	// distribution of training nearest-neighbor distances (0 < q <= 1).
	// Zero defaults to 1.0 (the maximum).
	ThresholdQuantile float64
	// ThresholdSlack multiplies the quantile distance (≥ 1 adds margin
	// against borderline benign flows). Zero defaults to 1.25.
	ThresholdSlack float64
	// MinClusterSize is the fewest training flows a subcluster needs to
	// get its own structure. Zero defaults to 8.
	MinClusterSize int
	// CalibrationSample caps the O(n²) threshold calibration. Zero
	// defaults to 400.
	CalibrationSample int
	// DisablePartition trains one structure over the whole normal cluster
	// instead of per-protocol subclusters — the ablation of §5.1.3(c)'s
	// design choice ("normal traffic flows to a particular application
	// will show less variation than traffic flows to multiple
	// applications").
	DisablePartition bool
}

// Defaults for DetectorConfig.
const (
	DefaultThresholdSlack    = 1.25
	DefaultMinClusterSize    = 8
	DefaultCalibrationSample = 400
)

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Params.D == 0 {
		c.Params = DefaultParams()
	}
	var zero [flow.NumStats]StatRange
	if c.Ranges == zero {
		c.Ranges = DefaultRanges()
	}
	if c.ThresholdQuantile <= 0 || c.ThresholdQuantile > 1 {
		c.ThresholdQuantile = 1.0
	}
	if c.ThresholdSlack < 1 {
		c.ThresholdSlack = DefaultThresholdSlack
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = DefaultMinClusterSize
	}
	if c.CalibrationSample <= 0 {
		c.CalibrationSample = DefaultCalibrationSample
	}
	return c
}

type clusterState struct {
	structure *Structure
	threshold int
}

// Detector partitions training flows into protocol subclusters
// (§5.1.3(b,c)), builds one KOR structure per subcluster (§5.1.3(d)), and
// assesses incoming flows against the matching subcluster (§5.1.3(e)).
//
// A Detector is read-only once built: Assess mutates no detector state, so
// a single trained Detector may be shared by any number of goroutines
// (analysis.ParallelEngine shares one across all shards).
type Detector struct {
	cfg      DetectorConfig
	enc      *Encoder
	clusters map[flow.Subcluster]*clusterState
	metrics  *Metrics
}

// SetMetrics installs runtime counters (nil disables). Like the detector
// itself, the metrics pointer is read concurrently by every assessing
// goroutine, so SetMetrics must be called before the detector is shared.
func (d *Detector) SetMetrics(m *Metrics) { d.metrics = m }

// Assessment is the outcome of one flow assessment.
type Assessment struct {
	// Anomalous is set when the flow's nearest-neighbor distance exceeds
	// the subcluster threshold (or no subcluster exists for it).
	Anomalous bool
	// Cluster the flow was assessed against.
	Cluster flow.Subcluster
	// Distance to the nearest training neighbor (-1 if no structure).
	Distance int
	// Threshold applied (-1 if no structure).
	Threshold int
}

// Train partitions the normal cluster and builds the per-subcluster
// structures and thresholds.
func Train(cfg DetectorConfig, normal []flow.Record) (*Detector, error) {
	cfg = cfg.withDefaults()
	enc, err := NewEncoder(cfg.Params.D, cfg.Ranges)
	if err != nil {
		return nil, err
	}
	if len(normal) == 0 {
		return nil, fmt.Errorf("nns: empty normal training cluster")
	}
	parts := make(map[flow.Subcluster][]BitVec)
	for _, r := range normal {
		c := flow.Classify(r.Key)
		if cfg.DisablePartition {
			c = flow.ClusterOther // everything lands in one cluster
		}
		parts[c] = append(parts[c], enc.EncodeRecord(r))
	}
	d := &Detector{cfg: cfg, enc: enc, clusters: make(map[flow.Subcluster]*clusterState, len(parts))}
	for c, vecs := range parts {
		if len(vecs) < cfg.MinClusterSize {
			continue
		}
		params := cfg.Params
		params.Seed = cfg.Params.Seed + int64(c) // distinct test vectors per subcluster
		// Hold out every fifth flow for threshold calibration: thresholds
		// must reflect the distances the approximate search produces for
		// unseen benign flows, so the calibration set cannot be indexed.
		var build, calib []BitVec
		for i, v := range vecs {
			if i%5 == 4 && len(vecs) >= 2*cfg.MinClusterSize {
				calib = append(calib, v)
			} else {
				build = append(build, v)
			}
		}
		st, err := Build(params, build)
		if err != nil {
			return nil, fmt.Errorf("nns: build %v structure: %w", c, err)
		}
		d.clusters[c] = &clusterState{
			structure: st,
			threshold: calibrate(st, build, calib, cfg),
		}
	}
	if len(d.clusters) == 0 {
		return nil, fmt.Errorf("nns: no subcluster reached %d training flows", cfg.MinClusterSize)
	}
	return d, nil
}

// calibrate computes the per-cluster Hamming threshold: the configured
// quantile of the approximate-search distances measured on the held-out
// calibration flows, inflated by the slack factor. Using the same search
// that assessment uses keeps the threshold calibrated against the
// structure's actual approximation error; when no calibration split exists
// (tiny clusters) it falls back to exact nearest-neighbor distances within
// the build set.
func calibrate(st *Structure, build, calib []BitVec, cfg DetectorConfig) int {
	var dists []int
	if len(calib) > 0 {
		n := len(calib)
		if n > cfg.CalibrationSample {
			n = cfg.CalibrationSample
		}
		for _, v := range calib[:n] {
			if res, ok := st.Search(v); ok {
				dists = append(dists, res.Distance)
			}
		}
	}
	if len(dists) == 0 {
		n := len(build)
		if n > cfg.CalibrationSample {
			n = cfg.CalibrationSample
		}
		if n < 2 {
			return build[0].Len() / 10
		}
		for i := 0; i < n; i++ {
			best := -1
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if h := build[i].Hamming(build[j]); best < 0 || h < best {
					best = h
				}
			}
			dists = append(dists, best)
		}
	}
	sort.Ints(dists)
	idx := int(cfg.ThresholdQuantile*float64(len(dists))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(dists) {
		idx = len(dists) - 1
	}
	return int(float64(dists[idx]) * cfg.ThresholdSlack)
}

// Assess classifies one flow against its subcluster's structure. Flows in
// subclusters with no trained structure are anomalous by definition: the
// detector cannot vouch for a service it never saw.
func (d *Detector) Assess(r flow.Record) Assessment {
	m := d.metrics
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	a := d.assess(r)
	if m != nil {
		m.Latency.ObserveDuration(time.Since(start))
		m.Queries.Inc()
		if a.Anomalous {
			m.Anomalies.Inc()
		}
	}
	return a
}

func (d *Detector) assess(r flow.Record) Assessment {
	c := flow.Classify(r.Key)
	if d.cfg.DisablePartition {
		c = flow.ClusterOther
	}
	st, ok := d.clusters[c]
	if !ok {
		return Assessment{Anomalous: true, Cluster: c, Distance: -1, Threshold: -1}
	}
	res, found := st.structure.Search(d.enc.EncodeRecord(r))
	if !found {
		return Assessment{Anomalous: true, Cluster: c, Distance: -1, Threshold: st.threshold}
	}
	return Assessment{
		Anomalous: res.Distance > st.threshold,
		Cluster:   c,
		Distance:  res.Distance,
		Threshold: st.threshold,
	}
}

// Threshold returns the calibrated threshold for a subcluster.
func (d *Detector) Threshold(c flow.Subcluster) (int, bool) {
	st, ok := d.clusters[c]
	if !ok {
		return 0, false
	}
	return st.threshold, true
}

// Clusters returns the subclusters with trained structures, in stable
// order.
func (d *Detector) Clusters() []flow.Subcluster {
	var out []flow.Subcluster
	for _, c := range flow.Subclusters() {
		if _, ok := d.clusters[c]; ok {
			out = append(out, c)
		}
	}
	return out
}
