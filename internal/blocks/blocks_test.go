package blocks

import (
	"testing"
	"testing/quick"

	"infilter/internal/netaddr"
)

func TestTable1Shape(t *testing.T) {
	blks := Table1()
	if len(blks) != NumBlocks {
		t.Fatalf("Table1 has %d blocks, want %d", len(blks), NumBlocks)
	}
	for i, p := range blks {
		if p.Bits() != 8 {
			t.Errorf("block %d is /%d, want /8", i, p.Bits())
		}
		if i > 0 && !blks[i-1].Addr().Less(p.Addr()) {
			t.Errorf("blocks not ascending at index %d", i)
		}
	}
	// Spot-check endpoints and known members from the paper's table.
	if blks[0] != netaddr.MustParsePrefix("3.0.0.0/8") {
		t.Errorf("first block = %v, want 3.0.0.0/8", blks[0])
	}
	if blks[NumBlocks-1] != netaddr.MustParsePrefix("222.0.0.0/8") {
		t.Errorf("last block = %v, want 222.0.0.0/8", blks[NumBlocks-1])
	}
	// 125th block (1-based) must be 204/8: the experiments use blocks 3/8
	// through 204/8 for their 1000 sub-blocks.
	if blks[124] != netaddr.MustParsePrefix("204.0.0.0/8") {
		t.Errorf("block 125 = %v, want 204.0.0.0/8", blks[124])
	}
}

func TestTable1ExcludesReservedBlocks(t *testing.T) {
	present := map[byte]bool{}
	for _, p := range Table1() {
		v4, _ := p.Addr().V4()
		a, _, _, _ := v4.Octets()
		present[a] = true
	}
	// A few well-known non-routable or unallocated first octets the table
	// omits: 0, 1, 2, 5, 7, 10 (RFC1918), 23, 27, 31, 127 (loopback),
	// 173..187 (unallocated then), 223, multicast 224+.
	for _, o := range []byte{0, 1, 2, 5, 7, 10, 23, 27, 31, 127, 173, 187, 189, 190, 197, 223, 224, 240, 255} {
		if present[o] {
			t.Errorf("block %d/8 should not be in Table 1", o)
		}
	}
}

func TestSubBlockNotation(t *testing.T) {
	tests := []struct {
		notation string
		prefix   string
	}{
		// Worked examples straight from §6.2.
		{"1a", "3.0.0.0/11"},
		{"1b", "3.32.0.0/11"},
		{"2c", "4.64.0.0/11"},
		{"5a", "9.0.0.0/11"},
		{"125h", "204.224.0.0/11"},
		// The 214/8 breakdown example (214/8 is the 135th block).
		{"135a", "214.0.0.0/11"},
		{"135d", "214.96.0.0/11"},
		{"135h", "214.224.0.0/11"},
	}
	for _, tt := range tests {
		sb, err := ParseNotation(tt.notation)
		if err != nil {
			t.Errorf("ParseNotation(%q): %v", tt.notation, err)
			continue
		}
		if got := sb.Prefix().String(); got != tt.prefix {
			t.Errorf("%s.Prefix() = %s, want %s", tt.notation, got, tt.prefix)
		}
		if sb.String() != tt.notation {
			t.Errorf("String() = %q, want %q", sb.String(), tt.notation)
		}
	}
}

func TestParseNotationErrors(t *testing.T) {
	for _, in := range []string{"", "a", "1i", "0a", "144a", "-1a", "1A", "x9a"} {
		if _, err := ParseNotation(in); err == nil {
			t.Errorf("ParseNotation(%q): want error", in)
		}
	}
}

func TestSubBlockRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		i := int(raw) % NumSubBlocks
		sb := MustSubBlockAt(i)
		back, err := ParseNotation(sb.String())
		return err == nil && back.Index() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubBlocksCoverTheirBlockDisjointly(t *testing.T) {
	// The 8 sub-blocks of any block partition the /8 without overlap.
	for b := 0; b < NumBlocks; b++ {
		block := Table1()[b]
		var total uint64
		for l := 0; l < SubBlocksPerBlock; l++ {
			sb := MustSubBlockAt(b*SubBlocksPerBlock + l)
			p := sb.Prefix()
			if !block.Contains(p.First()) || !block.Contains(p.Last()) {
				t.Fatalf("sub-block %v not inside block %v", sb, block)
			}
			total += p.Size()
			if l > 0 {
				prev := MustSubBlockAt(b*SubBlocksPerBlock + l - 1).Prefix()
				if prev.Overlaps(p) {
					t.Fatalf("sub-blocks overlap in block %v", block)
				}
			}
		}
		if total != block.Size() {
			t.Fatalf("sub-blocks of %v cover %d addresses, want %d", block, total, block.Size())
		}
	}
}

func TestSubBlockAtRange(t *testing.T) {
	if _, err := SubBlockAt(-1); err == nil {
		t.Error("SubBlockAt(-1): want error")
	}
	if _, err := SubBlockAt(NumSubBlocks); err == nil {
		t.Error("SubBlockAt(max): want error")
	}
	if sb, err := SubBlockAt(NumSubBlocks - 1); err != nil || sb.String() != "143h" {
		t.Errorf("last sub-block = %v, %v; want 143h", sb, err)
	}
}

func TestEIAAllocationTable3(t *testing.T) {
	// Table 3: Peer AS1 1a-13d, AS2 13e-25h, ..., AS10 113e-125h.
	wantFirstLast := []struct{ first, last string }{
		{"1a", "13d"}, {"13e", "25h"}, {"26a", "38d"}, {"38e", "50h"},
		{"51a", "63d"}, {"63e", "75h"}, {"76a", "88d"}, {"88e", "100h"},
		{"101a", "113d"}, {"113e", "125h"},
	}
	for as := 1; as <= DefaultSources; as++ {
		set, err := EIAAllocation(as)
		if err != nil {
			t.Fatalf("EIAAllocation(%d): %v", as, err)
		}
		if len(set) != SubBlocksPerSource {
			t.Fatalf("peer AS %d has %d sub-blocks, want %d", as, len(set), SubBlocksPerSource)
		}
		w := wantFirstLast[as-1]
		if set[0].String() != w.first || set[len(set)-1].String() != w.last {
			t.Errorf("peer AS %d range %s-%s, want %s-%s",
				as, set[0], set[len(set)-1], w.first, w.last)
		}
	}
	if _, err := EIAAllocation(0); err == nil {
		t.Error("EIAAllocation(0): want error")
	}
	if _, err := EIAAllocation(11); err == nil {
		t.Error("EIAAllocation(11): want error")
	}
}

func TestScheduleMatchesTable2(t *testing.T) {
	s, err := NewSchedule(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Table 2, Allocation 1.
	alloc1Change := [][]string{
		{"113d", "125g"}, {"13c", "125h"}, {"13d", "25g"}, {"25h", "38c"},
		{"38d", "50g"}, {"50h", "63c"}, {"63d", "75g"}, {"75h", "88c"},
		{"88d", "100g"}, {"100h", "113c"},
	}
	// Table 2, Allocation 2.
	alloc2Change := [][]string{
		{"100h", "113c"}, {"113d", "125g"}, {"13c", "125h"}, {"13d", "25g"},
		{"25h", "38c"}, {"38d", "50g"}, {"50h", "63c"}, {"63d", "75g"},
		{"75h", "88c"}, {"88d", "100g"},
	}
	checkAlloc := func(alloc []SourceAllocation, want [][]string, name string) {
		t.Helper()
		for i, sa := range alloc {
			if got := len(sa.NormalSet); got != 98 {
				t.Errorf("%s S%d normal set size %d, want 98", name, i+1, got)
			}
			if len(sa.ChangeSet) != 2 {
				t.Fatalf("%s S%d change set size %d, want 2", name, i+1, len(sa.ChangeSet))
			}
			gotSet := map[string]bool{
				sa.ChangeSet[0].String(): true,
				sa.ChangeSet[1].String(): true,
			}
			for _, w := range want[i] {
				if !gotSet[w] {
					t.Errorf("%s S%d change set %v missing %s", name, i+1, sa.ChangeSet, w)
				}
			}
		}
	}
	checkAlloc(s.Allocations[0], alloc1Change, "allocation 1")
	checkAlloc(s.Allocations[1], alloc2Change, "allocation 2")

	// Normal-set boundaries, from Table 2: S1 uses 1a-13b, S2 13e-25f.
	a1 := s.Allocations[0]
	if a1[0].NormalSet[0].String() != "1a" || a1[0].NormalSet[97].String() != "13b" {
		t.Errorf("S1 normal set %s-%s, want 1a-13b",
			a1[0].NormalSet[0], a1[0].NormalSet[97])
	}
	if a1[1].NormalSet[0].String() != "13e" || a1[1].NormalSet[97].String() != "25f" {
		t.Errorf("S2 normal set %s-%s, want 13e-25f",
			a1[1].NormalSet[0], a1[1].NormalSet[97])
	}
}

func TestScheduleValidateAllRates(t *testing.T) {
	for _, pct := range []int{0, 1, 2, 4, 8} {
		s, err := NewSchedule(pct, 4)
		if err != nil {
			t.Fatalf("NewSchedule(%d): %v", pct, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("Validate at %d%%: %v", pct, err)
		}
		if len(s.Allocations) != 4 {
			t.Errorf("%d%%: %d allocations, want 4", pct, len(s.Allocations))
		}
		for _, sa := range s.Allocations[0] {
			if len(sa.ChangeSet) != pct {
				t.Errorf("%d%%: S%d change set size %d", pct, sa.Source, len(sa.ChangeSet))
			}
		}
	}
}

func TestScheduleRejectsBadRates(t *testing.T) {
	if _, err := NewSchedule(-1, 1); err == nil {
		t.Error("NewSchedule(-1): want error")
	}
	if _, err := NewSchedule(101, 1); err == nil {
		t.Error("NewSchedule(101): want error")
	}
}

func TestRangePanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Range with bad bounds did not panic")
		}
	}()
	Range(5, 4)
}
