package blocks

import "fmt"

// DefaultSources is the number of Dagflow traffic sources in the paper's
// testbed (S1..S10), each owning 100 sub-blocks.
const (
	DefaultSources        = 10
	SubBlocksPerSource    = NumUsedSubBlocks / DefaultSources
	defaultAllocationsPer = 4 // allocations constructed per instability level (§6.3.3)
)

// EIAAllocation returns the Table 3 EIA assignment: peer AS i (1-based)
// owns the 100 consecutive sub-blocks starting at (i-1)*100. E.g. peer AS 1
// owns 1a–13d and peer AS 10 owns 113e–125h.
func EIAAllocation(peerAS int) ([]SubBlock, error) {
	if peerAS < 1 || peerAS > DefaultSources {
		return nil, fmt.Errorf("blocks: peer AS %d out of range [1,%d]", peerAS, DefaultSources)
	}
	start := (peerAS - 1) * SubBlocksPerSource
	return Range(start, start+SubBlocksPerSource), nil
}

// SourceAllocation is one row of a Table 2-style allocation: the sub-blocks
// a Dagflow source uses for the bulk of its traffic (NormalSet) and the
// foreign sub-blocks it borrows to emulate route instability (ChangeSet).
type SourceAllocation struct {
	Source    int // 1-based source number (S1..Sn)
	NormalSet []SubBlock
	ChangeSet []SubBlock
}

// Schedule is a sequence of allocations; the experiment script switches all
// sources from one allocation to the next simultaneously (§6.3.3).
type Schedule struct {
	ChangePercent int
	Allocations   [][]SourceAllocation
}

// NewSchedule builds the allocation schedule for the given route-change
// percentage. changePercent of each source's 100 sub-blocks are withheld
// from its own traffic and handed to subsequent sources round-robin, exactly
// reproducing Table 2 for changePercent=2; successive allocations rotate the
// change sets by one source. numAllocations <= 0 selects the paper's four.
func NewSchedule(changePercent, numAllocations int) (*Schedule, error) {
	if changePercent < 0 || changePercent > SubBlocksPerSource {
		return nil, fmt.Errorf("blocks: change percent %d out of range [0,%d]", changePercent, SubBlocksPerSource)
	}
	if numAllocations <= 0 {
		numAllocations = defaultAllocationsPer
	}
	nSrc := DefaultSources
	c := changePercent // percent of 100 sub-blocks == count of sub-blocks

	// excluded[i][j] is the j-th withheld sub-block of source i+1: the last
	// c sub-blocks of its Table 3 range.
	excluded := make([][]SubBlock, nSrc)
	normal := make([][]SubBlock, nSrc)
	for i := 0; i < nSrc; i++ {
		own, err := EIAAllocation(i + 1)
		if err != nil {
			return nil, err
		}
		normal[i] = own[:SubBlocksPerSource-c]
		excluded[i] = own[SubBlocksPerSource-c:]
	}

	s := &Schedule{ChangePercent: changePercent}
	for a := 0; a < numAllocations; a++ {
		change := make([][]SubBlock, nSrc)
		for i := 0; i < nSrc; i++ {
			for j := 0; j < c; j++ {
				// Withheld sub-block j of source i goes to the source at
				// offset 1+((j+a) mod (n-1)) — never offset 0, so a source
				// never "borrows" its own block, and for c=2 this is
				// exactly Table 2: allocation 1 sends S1's 13c to S2 and
				// 13d to S3; allocation 2 shifts both one source further.
				to := (i + 1 + (j+a)%(nSrc-1)) % nSrc
				change[to] = append(change[to], excluded[i][j])
			}
		}
		alloc := make([]SourceAllocation, nSrc)
		for i := 0; i < nSrc; i++ {
			alloc[i] = SourceAllocation{
				Source:    i + 1,
				NormalSet: normal[i],
				ChangeSet: change[i],
			}
		}
		s.Allocations = append(s.Allocations, alloc)
	}
	return s, nil
}

// Validate checks the schedule invariants: within each allocation every
// used sub-block appears exactly once across all sources, and no source's
// change set intersects its own Table 3 range.
func (s *Schedule) Validate() error {
	for ai, alloc := range s.Allocations {
		seen := make(map[int]int, NumUsedSubBlocks)
		for _, sa := range alloc {
			own := map[int]bool{}
			start := (sa.Source - 1) * SubBlocksPerSource
			for i := start; i < start+SubBlocksPerSource; i++ {
				own[i] = true
			}
			for _, sb := range sa.NormalSet {
				seen[sb.Index()]++
			}
			for _, sb := range sa.ChangeSet {
				seen[sb.Index()]++
				if own[sb.Index()] {
					return fmt.Errorf("blocks: allocation %d source S%d change set contains own sub-block %v",
						ai+1, sa.Source, sb)
				}
			}
		}
		if len(seen) != NumUsedSubBlocks {
			return fmt.Errorf("blocks: allocation %d covers %d sub-blocks, want %d", ai+1, len(seen), NumUsedSubBlocks)
		}
		for idx, n := range seen {
			if n != 1 {
				return fmt.Errorf("blocks: allocation %d sub-block %v used %d times", ai+1, MustSubBlockAt(idx), n)
			}
		}
	}
	return nil
}
