// Package blocks implements the address-block machinery of the InFilter
// testbed (paper §6.2): the 143 publicly-routable /8 blocks of Table 1,
// their division into /11 sub-blocks with the 1a…125h notation, the EIA
// allocations of Table 3, and the route-instability allocation schedules of
// Table 2 generalized to arbitrary change rates.
package blocks

import (
	"errors"
	"fmt"
	"strconv"

	"infilter/internal/netaddr"
)

// table1FirstOctets lists the 143 publicly-routable, allocated unicast /8
// blocks as of 2004-10-28 (paper Table 1), in ascending order.
var table1FirstOctets = []byte{
	3, 4, 6, 8, 9,
	11, 12, 13, 14, 15,
	16, 17, 18, 19, 20,
	21, 22, 24, 25, 26,
	28, 29, 30, 32, 33,
	34, 35, 38, 40, 43,
	44, 45, 46, 47, 48,
	51, 52, 53, 54, 55,
	56, 57, 58, 59, 60,
	61, 62, 63, 64, 65,
	66, 67, 68, 69, 70,
	71, 72, 80, 81, 82,
	83, 84, 85, 86, 87,
	88, 128, 129, 130, 131,
	132, 133, 134, 135, 136,
	137, 138, 139, 140, 141,
	142, 143, 144, 145, 146,
	147, 148, 149, 150, 151,
	152, 153, 154, 155, 156,
	157, 158, 159, 160, 161,
	162, 163, 164, 165, 166,
	167, 168, 169, 170, 171,
	172, 188, 191, 192, 193,
	194, 195, 196, 198, 199,
	200, 201, 202, 203, 204,
	205, 206, 207, 208, 209,
	210, 211, 212, 213, 214,
	215, 216, 217, 218, 219,
	220, 221, 222,
}

const (
	// NumBlocks is the number of /8 blocks in Table 1.
	NumBlocks = 143
	// SubBlocksPerBlock is the number of /11 sub-blocks per /8 block.
	SubBlocksPerBlock = 8
	// NumSubBlocks is the total number of /11 sub-blocks (143*8).
	NumSubBlocks = NumBlocks * SubBlocksPerBlock
	// NumUsedSubBlocks is how many sub-blocks the experiments use
	// (blocks 3/8 through 204/8, i.e. the first 125 blocks).
	NumUsedSubBlocks = 1000
)

// ErrBadNotation is returned when a sub-block label cannot be parsed.
var ErrBadNotation = errors.New("blocks: malformed sub-block notation")

// Table1 returns the 143 /8 prefixes of Table 1 in ascending order.
func Table1() []netaddr.Prefix {
	out := make([]netaddr.Prefix, NumBlocks)
	for i, o := range table1FirstOctets {
		out[i] = netaddr.PrefixFrom4(netaddr.FromOctets(o, 0, 0, 0), 8)
	}
	return out
}

// SubBlock identifies one /11 sub-block by its index in the linear order
// used by the paper: sub-block index = 8*(blockNumber-1) + letterOffset,
// where blockNumber is the 1-based position of the /8 in Table 1 and the
// letter a..h selects the /11 within it.
type SubBlock struct {
	index int
}

// SubBlockAt returns the sub-block at linear index i (0-based, < 1144).
func SubBlockAt(i int) (SubBlock, error) {
	if i < 0 || i >= NumSubBlocks {
		return SubBlock{}, fmt.Errorf("blocks: sub-block index %d out of range [0,%d)", i, NumSubBlocks)
	}
	return SubBlock{index: i}, nil
}

// MustSubBlockAt is SubBlockAt that panics on error.
func MustSubBlockAt(i int) SubBlock {
	sb, err := SubBlockAt(i)
	if err != nil {
		panic(err)
	}
	return sb
}

// Index returns the linear 0-based index of sb.
func (sb SubBlock) Index() int { return sb.index }

// BlockNumber returns the 1-based Table 1 block number (1..143).
func (sb SubBlock) BlockNumber() int { return sb.index/SubBlocksPerBlock + 1 }

// Letter returns the sub-block letter 'a'..'h'.
func (sb SubBlock) Letter() byte { return byte('a' + sb.index%SubBlocksPerBlock) }

// Prefix returns the /11 prefix of sb. E.g. notation 1b is 3.32.0.0/11.
func (sb SubBlock) Prefix() netaddr.Prefix {
	first := table1FirstOctets[sb.BlockNumber()-1]
	second := byte(sb.index%SubBlocksPerBlock) << 5
	return netaddr.PrefixFrom4(netaddr.FromOctets(first, second, 0, 0), 11)
}

// String renders the paper notation, e.g. "1a", "125h".
func (sb SubBlock) String() string {
	return strconv.Itoa(sb.BlockNumber()) + string(sb.Letter())
}

// ParseNotation parses labels like "1a" or "125h" into a SubBlock.
func ParseNotation(s string) (SubBlock, error) {
	if len(s) < 2 {
		return SubBlock{}, fmt.Errorf("%w: %q", ErrBadNotation, s)
	}
	letter := s[len(s)-1]
	if letter < 'a' || letter > 'h' {
		return SubBlock{}, fmt.Errorf("%w: %q", ErrBadNotation, s)
	}
	n, err := strconv.Atoi(s[:len(s)-1])
	if err != nil || n < 1 || n > NumBlocks {
		return SubBlock{}, fmt.Errorf("%w: %q", ErrBadNotation, s)
	}
	return SubBlock{index: (n-1)*SubBlocksPerBlock + int(letter-'a')}, nil
}

// MustParseNotation is ParseNotation that panics on error.
func MustParseNotation(s string) SubBlock {
	sb, err := ParseNotation(s)
	if err != nil {
		panic(err)
	}
	return sb
}

// Range returns the sub-blocks with linear indices [from, to) — the
// half-open range used to express spans like "1a thru 13d".
func Range(from, to int) []SubBlock {
	if from < 0 || to > NumSubBlocks || from > to {
		panic(fmt.Sprintf("blocks: bad range [%d,%d)", from, to))
	}
	out := make([]SubBlock, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, SubBlock{index: i})
	}
	return out
}
