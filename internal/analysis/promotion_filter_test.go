package analysis

import (
	"testing"

	"infilter/internal/eia"
	"infilter/internal/netaddr"
)

// trainedFilteredEngine is trainedEngine with a promotion filter
// installed at construction.
func trainedFilteredEngine(t *testing.T, filter func(eia.PeerAS) bool) *Engine {
	t.Helper()
	var labeled []LabeledRecord
	for _, r := range flowsFromPackets(t, 1, 900, peer1Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 1, Record: r})
	}
	for _, r := range flowsFromPackets(t, 2, 900, peer2Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 2, Record: r})
	}
	eng, err := Train(Config{Mode: ModeEnhanced, PromotionFilter: filter}, labeled)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPromotionFilterGatesTraining pins the cluster-mode training
// contract: a filter rejecting the peer suppresses EIA promotion (the
// workload that promotes in TestPromotionAdaptsEIA must not), while
// verdicts and an accepting filter behave exactly as with no filter.
func TestPromotionFilterGatesTraining(t *testing.T) {
	moved := flowsFromPackets(t, 8, 300, netaddr.MustParsePrefix("70.4.4.0/24"))

	notOwned := trainedFilteredEngine(t, func(peer eia.PeerAS) bool { return peer != 1 })
	for _, r := range moved {
		if d := notOwned.Process(1, r); d.Promoted {
			t.Fatal("promotion completed although the filter rejects peer 1")
		}
	}
	if n := notOwned.Stats().Promotions; n != 0 {
		t.Errorf("filtered engine recorded %d promotions, want 0", n)
	}
	if got := notOwned.EIASet().Check(1, netaddr.MustParseAddr("70.4.4.77")); got == eia.Match {
		t.Error("filtered engine still learned the moved subnet at peer 1")
	}

	owned := trainedFilteredEngine(t, func(peer eia.PeerAS) bool { return peer == 1 })
	promoted := false
	for _, r := range moved {
		if owned.Process(1, r).Promoted {
			promoted = true
			break
		}
	}
	if !promoted {
		t.Fatal("accepting filter blocked promotion")
	}
	if got := owned.EIASet().Check(1, netaddr.MustParseAddr("70.4.4.77")); got != eia.Match {
		t.Errorf("post-promotion Check = %v, want match", got)
	}
}
