package analysis

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/scan"
	"infilter/internal/testutil"
	"infilter/internal/trace"
)

// parallelWorkload is a deterministic multi-ingress replay: per-peer
// training traffic plus a per-peer stream mixing expected flows, benign
// suspects from an unexpected block (driving NNS assessment and EIA
// promotion) and exploit flows from a spoofed source.
type parallelWorkload struct {
	cfg     Config
	labeled []LabeledRecord // training set
	streams map[eia.PeerAS][]flow.Record
}

const workloadPeers = 8

// buildParallelWorkload keeps every peer's address space disjoint (sources
// in distinct /8s, suspects confined to one /24 per peer) so the only
// cross-peer coupling is through the shared EIA trie and detector — the
// state the ParallelEngine must make safe. Scan thresholds are set beyond
// reach: the serial engine shares one suspect buffer across peers while
// the sharded engine keeps one per shard, so scan verdicts are the one
// stage whose outcome legitimately depends on global interleaving order
// (its concurrent behavior is covered by TestParallelEngineScanDetection).
func buildParallelWorkload(t *testing.T) parallelWorkload {
	t.Helper()
	cfg := Config{
		Mode: ModeEnhanced,
		EIA:  eia.Config{PromoteThreshold: 4},
		Scan: scan.Config{NetworkScanThreshold: math.MaxInt32, HostScanThreshold: math.MaxInt32},
	}
	w := parallelWorkload{cfg: cfg, streams: make(map[eia.PeerAS][]flow.Record)}
	for p := 1; p <= workloadPeers; p++ {
		peer := eia.PeerAS(p)
		trainPfx := netaddr.MustParsePrefix(fmt.Sprintf("%d.0.0.0/8", 20+p))
		suspectPfx := netaddr.MustParsePrefix(fmt.Sprintf("%d.77.4.0/24", 120+p))

		for _, r := range flowsFromPackets(t, int64(p), 250, trainPfx) {
			w.labeled = append(w.labeled, LabeledRecord{Peer: peer, Record: r})
		}
		var stream []flow.Record
		// Expected flows (mostly Match — the cheap path).
		stream = append(stream, flowsFromPackets(t, int64(100+p), 50, trainPfx)...)
		// Benign suspects from one unexpected /24: NNS-assessed, vouched,
		// promoted after the threshold, then Matching.
		stream = append(stream, flowsFromPackets(t, int64(200+p), 60, suspectPfx)...)
		// Exploit flows from a spoofed, untrained source.
		stream = append(stream,
			attackFlowRecords(t, trace.AttackHTTPExploit, int64(300+p), fmt.Sprintf("%d.9.9.9", 200+p))...)
		w.streams[peer] = stream
	}
	return w
}

// freshTrainedSet rebuilds the EIA set exactly as Train does, so serial
// and parallel engines start from identical state without retraining the
// (shared, read-only) NNS detector.
func freshTrainedSet(cfg Config, labeled []LabeledRecord) *eia.Set {
	set := eia.NewSet(cfg.EIA)
	obs := make([]eia.TrainingSource, len(labeled))
	for i, lr := range labeled {
		obs[i] = eia.TrainingSource{Peer: lr.Peer, Src: lr.Record.Key.Src}
	}
	set.Train(obs, 0)
	return set
}

// TestParallelEngineMatchesSerial is the concurrency stress test: one
// goroutine per peer replays its stream through the sharded engine while
// the serial engine processes the same flows in a fixed round-robin
// interleave; the merged verdict counters must be identical. Run under
// -race this also exercises every shared-state lock in the hot path.
func TestParallelEngineMatchesSerial(t *testing.T) {
	w := buildParallelWorkload(t)

	serial, err := Train(w.cfg, w.labeled)
	if err != nil {
		t.Fatal(err)
	}
	var serialAlerts int
	serial.SetAlertSink(func(a idmef.Alert) { serialAlerts++ })

	// Round-robin over the peers, preserving each peer's flow order —
	// one legal global interleaving of the same per-peer streams the
	// concurrent replay produces.
	for i := 0; ; i++ {
		any := false
		for p := 1; p <= workloadPeers; p++ {
			stream := w.streams[eia.PeerAS(p)]
			if i < len(stream) {
				serial.Process(eia.PeerAS(p), stream[i])
				any = true
			}
		}
		if !any {
			break
		}
	}
	want := serial.Stats()

	for _, shards := range []int{1, 3, workloadPeers} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			pe, err := NewParallelEngine(
				ParallelConfig{Config: w.cfg, Shards: shards, QueueDepth: 16},
				freshTrainedSet(w.cfg, w.labeled), serial.Detector())
			if err != nil {
				t.Fatal(err)
			}
			var alerts atomic.Int64
			pe.SetAlertSink(func(a idmef.Alert) { alerts.Add(1) })

			var wg sync.WaitGroup
			for p := 1; p <= workloadPeers; p++ {
				wg.Add(1)
				go func(peer eia.PeerAS) {
					defer wg.Done()
					for _, r := range w.streams[peer] {
						if err := pe.Submit(peer, r); err != nil {
							t.Errorf("Submit: %v", err)
							return
						}
					}
				}(eia.PeerAS(p))
			}
			wg.Wait()
			pe.Flush()
			got := pe.Stats()
			if err := pe.Close(); err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(got, want) {
				t.Errorf("parallel stats = %+v, serial = %+v", got, want)
			}
			if int(alerts.Load()) != serialAlerts {
				t.Errorf("parallel alerts = %d, serial = %d", alerts.Load(), serialAlerts)
			}
			// The workload must actually exercise every interesting path.
			if want.Attacks == 0 || want.Promotions == 0 || want.Suspects == 0 {
				t.Errorf("degenerate workload: %+v", want)
			}
		})
	}
}

// TestParallelEngineScanDetection drives the scan stage through the
// sharded pipeline: a single peer's probe storm stays on one shard in
// FIFO order, so the per-shard scan buffer must flag it exactly as the
// serial analyzer would.
func TestParallelEngineScanDetection(t *testing.T) {
	cfg := Config{Mode: ModeEnhanced}
	var labeled []LabeledRecord
	for _, r := range flowsFromPackets(t, 1, 900, peer1Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 1, Record: r})
	}
	serial, err := Train(cfg, labeled)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallelEngine(ParallelConfig{Config: cfg, Shards: 4},
		freshTrainedSet(cfg, labeled), serial.Detector())
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()

	probes := attackFlowRecords(t, trace.AttackSlammer, 7, "198.51.100.17")
	for _, r := range probes {
		serial.Process(2, r)
		if err := pe.Submit(2, r); err != nil {
			t.Fatal(err)
		}
	}
	pe.Flush()
	got, want := pe.Stats(), serial.Stats()
	if got.ByStage[idmef.StageScan] == 0 {
		t.Error("sharded scan stage never fired")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parallel stats = %+v, serial = %+v", got, want)
	}
}

func TestParallelEngineCloseSemantics(t *testing.T) {
	set := eia.NewSet(eia.Config{})
	set.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	pe, err := NewParallelEngine(ParallelConfig{Config: Config{Mode: ModeBasic}}, set, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := flow.Record{Key: flow.Key{Src: netaddr.MustParseAddr("61.1.1.1")}}
	if err := pe.Submit(1, rec); err != nil {
		t.Fatal(err)
	}
	if err := pe.Close(); err != nil {
		t.Fatal(err)
	}
	// Queued flows were drained before Close returned.
	if st := pe.Stats(); st.Processed != 1 {
		t.Errorf("Processed = %d after Close, want 1", st.Processed)
	}
	if err := pe.Submit(1, rec); err != ErrEngineClosed {
		t.Errorf("Submit after Close = %v, want ErrEngineClosed", err)
	}
	if err := pe.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}
}

func TestParallelEngineValidation(t *testing.T) {
	if _, err := NewParallelEngine(ParallelConfig{}, nil, nil); err == nil {
		t.Error("nil EIA set: want error")
	}
	if _, err := NewParallelEngine(ParallelConfig{}, eia.NewSet(eia.Config{}), nil); err == nil {
		t.Error("EI without detector: want error")
	}
	pe, err := NewParallelEngine(
		ParallelConfig{Config: Config{Mode: ModeBasic}}, eia.NewSet(eia.Config{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	if pe.Shards() <= 0 {
		t.Errorf("defaulted Shards = %d", pe.Shards())
	}
}

// TestParallelEngineWorkerLeak cycles the shard workers and fails on any
// goroutine left behind.
func TestParallelEngineWorkerLeak(t *testing.T) {
	set := eia.NewSet(eia.Config{})
	set.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	rec := flow.Record{Key: flow.Key{Src: netaddr.MustParseAddr("99.1.1.1")}}
	testutil.ExpectNoGoroutineGrowth(t, func() {
		for i := 0; i < 5; i++ {
			pe, err := NewParallelEngine(
				ParallelConfig{Config: Config{Mode: ModeBasic}, Shards: 6}, set, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 20; j++ {
				if err := pe.Submit(eia.PeerAS(j%4+1), rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := pe.Close(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
