// Package analysis implements the InFilter data-analysis module (paper §5):
// the Basic InFilter EIA-set check and the Enhanced InFilter pipeline that
// routes EIA-flagged suspects through Scan Analysis and then NNS search,
// raising IDMEF alerts for flows that fail every stage and adapting EIA
// sets to route changes via promotion of repeatedly-vouched sources.
//
// There is exactly one pipeline implementation (see core.go): Engine
// drives it synchronously through a single shard, ParallelEngine through
// N queue-fed shards. Serial and parallel behavior agree by construction.
package analysis

import (
	"fmt"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/nns"
	"infilter/internal/scan"
)

// Mode selects the software configuration of §6.3: BI runs EIA-set
// analysis alone; EI adds Scan Analysis and NNS search on suspects.
type Mode int

// Modes.
const (
	ModeBasic Mode = iota + 1
	ModeEnhanced
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case ModeBasic:
		return "BI"
	case ModeEnhanced:
		return "EI"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config assembles the engine.
type Config struct {
	// Mode selects BI or EI. Zero defaults to ModeEnhanced.
	Mode Mode
	// EIA tunes the EIA sets.
	EIA eia.Config
	// Scan tunes Scan Analysis (EI only).
	Scan scan.Config
	// NNS tunes the anomaly detector (EI only).
	NNS nns.DetectorConfig
	// HeavyHitter tunes the bounded-memory flood-source identifier that
	// runs in front of Scan Analysis (EI only). Disabled unless
	// HeavyHitter.Threshold is positive — note that enabling it changes
	// detection behavior (suspect flows from flood sources are flagged at
	// the heavy-hitter stage instead of continuing to scan/NNS), unlike
	// the EIA Bloom tier, which never alters verdicts.
	HeavyHitter scan.HeavyHitterConfig
	// TTL tunes the TTL-profile second-opinion detector (EI only).
	// Disabled unless TTL.Tolerance is positive. When enabled, every
	// TTL-bearing flow is checked against its source's learned hop
	// profile: an EIA Match whose TTL deviates beyond tolerance is still
	// flagged (the second opinion overrides the ingress mapping — the
	// on-path spoof case EIA cannot see), and a suspect that survived
	// every other stage is denied its vouch when the TTL contradicts the
	// profile. Flows with TTL zero (v5 ingest, TTL-less templates) are
	// never assessed, so the stage is inert on TTL-less deployments.
	TTL scan.TTLConfig
	// PromotionFilter, when non-nil, gates EIA promotion by peer AS: a
	// vouched source only counts toward promotion when the filter accepts
	// the peer. Cluster mode uses this to restrict EIA *training* to the
	// peer ASes this node owns on the ring — every node still *checks*
	// all traffic, and replicated snapshots carry owned learning to the
	// rest of the cluster. The filter is called from every shard and must
	// be safe for concurrent use; nil trains on everything.
	PromotionFilter func(peer eia.PeerAS) bool
}

// Decision is the outcome of processing one flow.
type Decision struct {
	// Attack is the final verdict.
	Attack bool
	// Stage that flagged the attack (empty when not an attack).
	Stage idmef.Stage
	// Verdict is the EIA-set classification.
	Verdict eia.Verdict
	// Assessment is the NNS outcome (EI suspects that reached NNS only).
	Assessment nns.Assessment
	// Promoted is set when this flow completed an EIA promotion.
	Promoted bool
	// Latency is the processing time of this flow.
	Latency time.Duration
}

// Stats accumulates engine counters.
type Stats struct {
	Processed   int
	Suspects    int
	Attacks     int
	ByStage     map[idmef.Stage]int
	Promotions  int
	ScanFlagged int
}

// pipeline is the normal-processing phase of §5.2 (Figure 12) over a set of
// analysis components: EIA check, then Scan Analysis, then NNS search.
// Every engine shard runs one pipeline with the EIA store and detector
// shared. A pipeline is only as concurrency-safe as its components: the
// scanner is always owned by a single caller, the detector is read-only
// after training, and the EIA store is a copy-on-write snapshot store
// whose Check is a lock-free read.
type pipeline struct {
	mode     Mode
	eia      *eia.Store
	hh       *scan.HeavyHitter // nil unless Config.HeavyHitter enables it
	scanner  *scan.Analyzer
	detector *nns.Detector
	// ttl is the TTL-profile second-opinion table, nil unless Config.TTL
	// enables it. Unlike the scanner it is shared across shards (profiles
	// aggregate a source's flows wherever they land) and is internally
	// stripe-locked.
	ttl *scan.TTLProfile
	// promote gates EIA promotion by peer AS (Config.PromotionFilter);
	// nil trains on every peer.
	promote func(peer eia.PeerAS) bool
	// metrics is the owning shard's instrumentation (nil on
	// uninstrumented engines). Stage timing uses the real clock, not the
	// engine's replay clock: latency telemetry reports wall cost even
	// when flows carry replayed timestamps.
	metrics *shardMetrics
}

// decide runs one flow through the pipeline; scanFlagged reports whether
// the scan stage fired (tracked separately from the Decision for stats).
func (p *pipeline) decide(peer eia.PeerAS, rec flow.Record) (d Decision, scanFlagged bool) {
	m := p.metrics
	var t time.Time
	if m != nil {
		m.flows.Inc()
		t = time.Now()
	}
	v := p.eia.Check(peer, rec.Key.Src)
	if m != nil {
		m.observeStage(stageEIA, time.Since(t))
	}
	return p.decideVerdict(peer, &rec, v)
}

// decideVerdict is the post-EIA tail of the pipeline: everything decide
// does after the EIA-set classification. The batched path computes
// verdicts for a whole batch up front (eia.Store.CheckBatch) and feeds
// them here one record at a time; the caller owns the flow counter, EIA
// stage timing and hit/miss accounting for that phase. The record is
// passed by pointer (it is large) and not retained or mutated.
func (p *pipeline) decideVerdict(peer eia.PeerAS, rec *flow.Record, v eia.Verdict) (d Decision, scanFlagged bool) {
	m := p.metrics
	var t time.Time
	d = Decision{Verdict: v}
	if d.Verdict == eia.Match {
		// Case (b): expected ingress. The TTL profile gets a second
		// opinion: a source spoofed from a host behind the *same* peer
		// ingress passes the EIA check, but its packets arrive with the
		// attacker's hop distance, not the victim's.
		if p.checkTTL(rec) {
			d.Attack = true
			d.Stage = idmef.StageTTL
			return d, false
		}
		return d, false
	}
	// Case (a): unexpected ingress or unknown source.
	if p.mode == ModeBasic {
		d.Attack = true
		d.Stage = idmef.StageEIA
		return d, false
	}
	// Enhanced: heavy-hitter triage first (when enabled) — a source
	// flooding suspect flows is flagged on volume alone, in O(1) memory,
	// before it can churn the scan buffer.
	if p.hh != nil {
		if m != nil {
			t = time.Now()
		}
		heavy := p.hh.Observe(rec.Key.Src)
		if m != nil {
			m.observeStage(stageHH, time.Since(t))
		}
		if heavy {
			d.Attack = true
			d.Stage = idmef.StageHeavyHitter
			return d, false
		}
	}
	// Then Scan Analysis.
	if m != nil {
		t = time.Now()
	}
	res := p.scanner.Add(*rec)
	if m != nil {
		m.observeStage(stageScan, time.Since(t))
	}
	if res.Attack() {
		d.Attack = true
		d.Stage = idmef.StageScan
		return d, true
	}
	// Then NNS search against the flow's subcluster.
	if m != nil {
		t = time.Now()
	}
	d.Assessment = p.detector.Assess(*rec)
	if m != nil {
		m.observeStage(stageNNS, time.Since(t))
	}
	if d.Assessment.Anomalous {
		d.Attack = true
		d.Stage = idmef.StageNNS
		return d, false
	}
	// TTL second opinion before vouching: a suspect whose TTL contradicts
	// the source's learned hop profile is flagged instead of vouched, so
	// an attacker who slips past scan analysis and NNS cannot launder a
	// spoofed source into the EIA sets.
	if p.checkTTL(rec) {
		d.Attack = true
		d.Stage = idmef.StageTTL
		return d, false
	}
	// Within normal behavior: vouch for the source; promote after enough
	// confirmations so a route change stops raising suspicion (§5.2(a)).
	// A promotion filter (cluster ring ownership) may exclude this peer
	// from local training; the verdict above is unaffected.
	if p.promote == nil || p.promote(peer) {
		d.Promoted = p.eia.RecordLegal(peer, rec.Key.Src)
	}
	return d, false
}

// checkTTL runs the TTL-profile stage on one flow, with stage timing;
// it reports a spoof verdict. Inert (and costs nothing) when the stage
// is disabled or the flow carries no TTL information.
func (p *pipeline) checkTTL(rec *flow.Record) bool {
	if p.ttl == nil || rec.TTL == 0 {
		return false
	}
	m := p.metrics
	var t time.Time
	if m != nil {
		t = time.Now()
	}
	spoofed := p.ttl.Observe(rec.Key.Src, rec.TTL)
	if m != nil {
		m.observeStage(stageTTL, time.Since(t))
	}
	return spoofed
}

// record folds one decision into the counters.
func (s *Stats) record(d Decision, scanFlagged bool) {
	s.Processed++
	if d.Verdict != eia.Match {
		s.Suspects++
	}
	if d.Attack {
		s.Attacks++
		s.ByStage[d.Stage]++
	}
	if d.Promoted {
		s.Promotions++
	}
	if scanFlagged {
		s.ScanFlagged++
	}
}

// merge adds other's counters into s.
func (s *Stats) merge(other Stats) {
	s.Processed += other.Processed
	s.Suspects += other.Suspects
	s.Attacks += other.Attacks
	s.Promotions += other.Promotions
	s.ScanFlagged += other.ScanFlagged
	for k, v := range other.ByStage {
		s.ByStage[k] += v
	}
}

// Engine is the per-deployment analysis state: the one-shard synchronous
// case of the shared pipeline core. Process runs the caller's goroutine
// through the same code path a ParallelEngine worker executes. Process is
// not safe for concurrent use (the single shard's scan buffer assumes one
// driver); use ParallelEngine to process flows from many ingresses at
// once.
type Engine struct {
	c *core
}

// NewEngine assembles an engine from pre-trained components. detector may
// be nil only in ModeBasic. The set must not be mutated directly
// afterwards (the engine's store adopts it).
func NewEngine(cfg Config, set *eia.Set, detector *nns.Detector) (*Engine, error) {
	c, err := newCore(cfg, set, detector, 1, nil)
	if err != nil {
		return nil, err
	}
	return &Engine{c: c}, nil
}

// LabeledRecord pairs a flow record with the peer AS it entered through.
type LabeledRecord struct {
	Peer   eia.PeerAS
	Record flow.Record
}

// Train builds a fully-trained engine from labeled normal traffic: the EIA
// sets are initialized from the observed (source, peer) pairs (§5.1.3(a))
// and, in enhanced mode, the normal cluster is partitioned and indexed for
// NNS (§5.1.3(b-d)).
func Train(cfg Config, normal []LabeledRecord) (*Engine, error) {
	set, detector, err := trainComponents(cfg, normal)
	if err != nil {
		return nil, err
	}
	return NewEngine(cfg, set, detector)
}

// SetAlertSink installs a callback receiving an IDMEF alert per detected
// attack. Pass nil to disable.
func (e *Engine) SetAlertSink(fn func(idmef.Alert)) { e.c.alertFn = fn }

// SetClock overrides the engine's clock (tests and replay).
func (e *Engine) SetClock(now func() time.Time) { e.c.setClock(now) }

// EIASet exposes the engine's EIA snapshot store (monitoring, tests,
// checkpointing).
func (e *Engine) EIASet() *eia.Store { return e.c.store }

// Detector exposes the engine's trained NNS detector (nil in ModeBasic).
func (e *Engine) Detector() *nns.Detector { return e.c.detector }

// TTLProfile exposes the engine's shared TTL-profile table for
// monitoring and checkpointing; nil when the stage is disabled.
func (e *Engine) TTLProfile() *scan.TTLProfile { return e.c.ttl }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats { return e.c.mergedStats() }

// Process runs one flow through the normal-processing phase (§5.2, Figure
// 12) and returns the decision.
func (e *Engine) Process(peer eia.PeerAS, rec flow.Record) Decision {
	return e.c.process(e.c.shards[0], peer, rec)
}

// ProcessBatch runs a labeled batch through the single shard: the whole
// batch is classified against one EIA snapshot (refreshed after any
// mid-batch promotion), then each record continues through the same
// post-EIA stages Process runs. Observationally identical to calling
// Process per record, in order.
func (e *Engine) ProcessBatch(batch []LabeledRecord) {
	s := e.c.shards[0]
	if cap(s.items) < len(batch) {
		s.items = make([]shardItem, len(batch))
	}
	items := s.items[:len(batch)]
	for i, lr := range batch {
		items[i] = shardItem{peer: lr.Peer, rec: lr.Record}
	}
	e.c.processBatch(s, items)
}
