// Package analysis implements the InFilter data-analysis module (paper §5):
// the Basic InFilter EIA-set check and the Enhanced InFilter pipeline that
// routes EIA-flagged suspects through Scan Analysis and then NNS search,
// raising IDMEF alerts for flows that fail every stage and adapting EIA
// sets to route changes via promotion of repeatedly-vouched sources.
package analysis

import (
	"fmt"
	"strconv"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/nns"
	"infilter/internal/scan"
)

// Mode selects the software configuration of §6.3: BI runs EIA-set
// analysis alone; EI adds Scan Analysis and NNS search on suspects.
type Mode int

// Modes.
const (
	ModeBasic Mode = iota + 1
	ModeEnhanced
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case ModeBasic:
		return "BI"
	case ModeEnhanced:
		return "EI"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config assembles the engine.
type Config struct {
	// Mode selects BI or EI. Zero defaults to ModeEnhanced.
	Mode Mode
	// EIA tunes the EIA sets.
	EIA eia.Config
	// Scan tunes Scan Analysis (EI only).
	Scan scan.Config
	// NNS tunes the anomaly detector (EI only).
	NNS nns.DetectorConfig
}

// Decision is the outcome of processing one flow.
type Decision struct {
	// Attack is the final verdict.
	Attack bool
	// Stage that flagged the attack (empty when not an attack).
	Stage idmef.Stage
	// Verdict is the EIA-set classification.
	Verdict eia.Verdict
	// Assessment is the NNS outcome (EI suspects that reached NNS only).
	Assessment nns.Assessment
	// Promoted is set when this flow completed an EIA promotion.
	Promoted bool
	// Latency is the processing time of this flow.
	Latency time.Duration
}

// Stats accumulates engine counters.
type Stats struct {
	Processed   int
	Suspects    int
	Attacks     int
	ByStage     map[idmef.Stage]int
	Promotions  int
	ScanFlagged int
}

// Engine is the per-deployment analysis state. Not safe for concurrent
// use; the daemon serializes flows into it.
type Engine struct {
	cfg      Config
	eiaSet   *eia.Set
	scanner  *scan.Analyzer
	detector *nns.Detector
	stats    Stats
	alertFn  func(idmef.Alert)
	alertSeq int
	now      func() time.Time
}

// NewEngine assembles an engine from pre-trained components. detector may
// be nil only in ModeBasic.
func NewEngine(cfg Config, set *eia.Set, detector *nns.Detector) (*Engine, error) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeEnhanced
	}
	if set == nil {
		return nil, fmt.Errorf("analysis: nil EIA set")
	}
	if cfg.Mode == ModeEnhanced && detector == nil {
		return nil, fmt.Errorf("analysis: enhanced mode requires a trained NNS detector")
	}
	return &Engine{
		cfg:      cfg,
		eiaSet:   set,
		scanner:  scan.New(cfg.Scan),
		detector: detector,
		stats:    Stats{ByStage: make(map[idmef.Stage]int)},
		now:      time.Now,
	}, nil
}

// LabeledRecord pairs a flow record with the peer AS it entered through.
type LabeledRecord struct {
	Peer   eia.PeerAS
	Record flow.Record
}

// Train builds a fully-trained engine from labeled normal traffic: the EIA
// sets are initialized from the observed (source, peer) pairs (§5.1.3(a))
// and, in enhanced mode, the normal cluster is partitioned and indexed for
// NNS (§5.1.3(b-d)).
func Train(cfg Config, normal []LabeledRecord) (*Engine, error) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeEnhanced
	}
	if len(normal) == 0 {
		return nil, fmt.Errorf("analysis: empty training set")
	}
	set := eia.NewSet(cfg.EIA)
	obs := make([]eia.TrainingSource, len(normal))
	recs := make([]flow.Record, len(normal))
	for i, lr := range normal {
		obs[i] = eia.TrainingSource{Peer: lr.Peer, Src: lr.Record.Key.Src}
		recs[i] = lr.Record
	}
	set.Train(obs, 0)

	var detector *nns.Detector
	if cfg.Mode == ModeEnhanced {
		var err error
		detector, err = nns.Train(cfg.NNS, recs)
		if err != nil {
			return nil, fmt.Errorf("analysis: train NNS: %w", err)
		}
	}
	return NewEngine(cfg, set, detector)
}

// SetAlertSink installs a callback receiving an IDMEF alert per detected
// attack. Pass nil to disable.
func (e *Engine) SetAlertSink(fn func(idmef.Alert)) { e.alertFn = fn }

// SetClock overrides the engine's clock (tests and replay).
func (e *Engine) SetClock(now func() time.Time) {
	if now != nil {
		e.now = now
	}
}

// EIASet exposes the engine's EIA set (monitoring, tests).
func (e *Engine) EIASet() *eia.Set { return e.eiaSet }

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats {
	out := e.stats
	out.ByStage = make(map[idmef.Stage]int, len(e.stats.ByStage))
	for k, v := range e.stats.ByStage {
		out.ByStage[k] = v
	}
	return out
}

// Process runs one flow through the normal-processing phase (§5.2, Figure
// 12) and returns the decision.
func (e *Engine) Process(peer eia.PeerAS, rec flow.Record) Decision {
	start := e.now()
	d := e.process(peer, rec)
	d.Latency = e.now().Sub(start)

	e.stats.Processed++
	if d.Verdict != eia.Match {
		e.stats.Suspects++
	}
	if d.Attack {
		e.stats.Attacks++
		e.stats.ByStage[d.Stage]++
		e.emitAlert(peer, rec, d)
	}
	if d.Promoted {
		e.stats.Promotions++
	}
	return d
}

func (e *Engine) process(peer eia.PeerAS, rec flow.Record) Decision {
	d := Decision{Verdict: e.eiaSet.Check(peer, rec.Key.Src)}
	if d.Verdict == eia.Match {
		// Case (b): expected ingress — legal flow, no alarms.
		return d
	}
	// Case (a): unexpected ingress or unknown source.
	if e.cfg.Mode == ModeBasic {
		d.Attack = true
		d.Stage = idmef.StageEIA
		return d
	}
	// Enhanced: Scan Analysis first.
	if res := e.scanner.Add(rec); res.Attack() {
		e.stats.ScanFlagged++
		d.Attack = true
		d.Stage = idmef.StageScan
		return d
	}
	// Then NNS search against the flow's subcluster.
	d.Assessment = e.detector.Assess(rec)
	if d.Assessment.Anomalous {
		d.Attack = true
		d.Stage = idmef.StageNNS
		return d
	}
	// Within normal behavior: vouch for the source; promote after enough
	// confirmations so a route change stops raising suspicion (§5.2(a)).
	d.Promoted = e.eiaSet.RecordLegal(peer, rec.Key.Src)
	return d
}

func (e *Engine) emitAlert(peer eia.PeerAS, rec flow.Record, d Decision) {
	if e.alertFn == nil {
		return
	}
	e.alertSeq++
	class := "spoofed-traffic/" + string(d.Stage)
	e.alertFn(idmef.NewAlert(
		"infilter-"+strconv.Itoa(e.alertSeq),
		e.now(), d.Stage, int(peer), class, rec.Key, d.Assessment.Distance,
	))
}
