package analysis

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"infilter/internal/eia"
	"infilter/internal/idmef"
)

// bloomCfgVariant returns base with the EIA Bloom tier enabled at the
// given bits-per-entry budget.
func bloomCfgVariant(base Config, bitsPerEntry int) Config {
	base.EIA.BloomBitsPerEntry = bitsPerEntry
	return base
}

// encodeDecision packs the observable outcome of one flow into the
// verdict stream the equivalence gate compares byte-for-byte.
func encodeDecision(buf *bytes.Buffer, d Decision) {
	buf.WriteByte(byte(d.Verdict))
	if d.Attack {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	buf.WriteString(string(d.Stage))
	if d.Promoted {
		buf.WriteByte('P')
	}
	buf.WriteByte('\n')
}

// TestBloomTierVerdictStreamIdentical is the tentpole's correctness
// gate: with the EIA Bloom fast tier enabled, the serial engine must
// produce a byte-identical per-record decision stream — verdict, attack
// flag, deciding stage, promotions — over a workload that spans
// promotions and re-homes. Run at 1 bit/entry (filters saturate, heavy
// false-positive pressure, every path through the fallback) and at the
// production default of 10.
func TestBloomTierVerdictStreamIdentical(t *testing.T) {
	w := buildParallelWorkload(t)
	interleave := interleaveRoundRobin(w)
	detector := mustDetector(t, w)

	runStream := func(cfg Config) []byte {
		eng, err := NewEngine(cfg, freshTrainedSet(cfg, w.labeled), detector)
		if err != nil {
			t.Fatal(err)
		}
		var stream bytes.Buffer
		for _, lr := range interleave {
			encodeDecision(&stream, eng.Process(lr.Peer, lr.Record))
		}
		return stream.Bytes()
	}
	want := runStream(w.cfg)

	for _, bits := range []int{1, 10} {
		t.Run(fmt.Sprintf("bits=%d", bits), func(t *testing.T) {
			got := runStream(bloomCfgVariant(w.cfg, bits))
			if !bytes.Equal(got, want) {
				t.Fatalf("decision stream with Bloom tier (%d bits/entry) differs from exact-only stream", bits)
			}
		})
	}
}

// TestBloomTierBatchMatchesExact replays the interleave through
// Engine.ProcessBatch with the Bloom tier on, at every pinned batch
// size: stats, alerts and the EIA end-state must match the tier-free
// per-record reference. Batch size 256 spans promotions, so the
// mid-batch snapshot refresh runs against freshly republished filters.
func TestBloomTierBatchMatchesExact(t *testing.T) {
	w := buildParallelWorkload(t)
	interleave := interleaveRoundRobin(w)
	want, wantAlerts, wantEIA := runSerialReference(t, w, interleave)
	detector := mustDetector(t, w)

	for _, bits := range []int{1, 10} {
		cfg := bloomCfgVariant(w.cfg, bits)
		for _, size := range batchSizes {
			t.Run(fmt.Sprintf("bits=%d/batch=%d", bits, size), func(t *testing.T) {
				eng, err := NewEngine(cfg, freshTrainedSet(cfg, w.labeled), detector)
				if err != nil {
					t.Fatal(err)
				}
				alerts := 0
				eng.SetAlertSink(func(a idmef.Alert) { alerts++ })
				for off := 0; off < len(interleave); off += size {
					end := off + size
					if end > len(interleave) {
						end = len(interleave)
					}
					eng.ProcessBatch(interleave[off:end])
				}
				if got := eng.Stats(); !reflect.DeepEqual(got, want) {
					t.Errorf("bloom batched stats = %+v, exact per-record = %+v", got, want)
				}
				if alerts != wantAlerts {
					t.Errorf("bloom batched alerts = %d, exact = %d", alerts, wantAlerts)
				}
				var eiaState bytes.Buffer
				if _, err := eng.EIASet().WriteTo(&eiaState); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(eiaState.Bytes(), wantEIA) {
					t.Error("bloom batched EIA end-state differs from exact end-state")
				}
			})
		}
	}
}

// TestBloomTierParallelMatchesExact drives the sharded engine with the
// Bloom tier enabled — concurrent SubmitBatch against the COW snapshot
// store republishing filters under promotion load — and demands the
// merged counters, alerts and EIA end-state of the exact serial
// reference. Under -race this is also the data-race gate for the
// published tier.
func TestBloomTierParallelMatchesExact(t *testing.T) {
	w := buildParallelWorkload(t)
	interleave := interleaveRoundRobin(w)
	want, wantAlerts, wantEIA := runSerialReference(t, w, interleave)
	detector := mustDetector(t, w)
	cfg := bloomCfgVariant(w.cfg, 10)

	const size = 16
	pe, err := NewParallelEngine(
		ParallelConfig{Config: cfg, Shards: 3, QueueDepth: 16},
		freshTrainedSet(cfg, w.labeled), detector)
	if err != nil {
		t.Fatal(err)
	}
	var alerts atomic.Int64
	pe.SetAlertSink(func(a idmef.Alert) { alerts.Add(1) })

	var wg sync.WaitGroup
	for p := 1; p <= workloadPeers; p++ {
		wg.Add(1)
		go func(peer eia.PeerAS) {
			defer wg.Done()
			stream := w.streams[peer]
			for off := 0; off < len(stream); off += size {
				end := off + size
				if end > len(stream) {
					end = len(stream)
				}
				if err := pe.SubmitBatch(peer, stream[off:end]); err != nil {
					t.Errorf("SubmitBatch: %v", err)
					return
				}
			}
		}(eia.PeerAS(p))
	}
	wg.Wait()
	pe.Flush()
	got := pe.Stats()
	var eiaState bytes.Buffer
	if _, err := pe.EIASet().WriteTo(&eiaState); err != nil {
		t.Fatal(err)
	}
	if err := pe.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bloom parallel stats = %+v, exact serial = %+v", got, want)
	}
	if int(alerts.Load()) != wantAlerts {
		t.Errorf("bloom parallel alerts = %d, exact serial = %d", alerts.Load(), wantAlerts)
	}
	if !bytes.Equal(eiaState.Bytes(), wantEIA) {
		t.Error("bloom parallel EIA end-state differs from exact serial end-state")
	}
}
