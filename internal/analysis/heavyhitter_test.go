package analysis

import (
	"testing"

	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/scan"
)

// trainedEngineHH is trainedEngine with the heavy-hitter stage enabled.
func trainedEngineHH(t *testing.T, threshold int) *Engine {
	t.Helper()
	var labeled []LabeledRecord
	for _, r := range flowsFromPackets(t, 1, 900, peer1Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 1, Record: r})
	}
	for _, r := range flowsFromPackets(t, 2, 900, peer2Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 2, Record: r})
	}
	eng, err := Train(Config{
		Mode:        ModeEnhanced,
		HeavyHitter: scan.HeavyHitterConfig{Threshold: threshold},
	}, labeled)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestHeavyHitterStageDisabledByDefault(t *testing.T) {
	eng := trainedEngine(t, ModeEnhanced)
	if eng.c.shards[0].pl.hh != nil {
		t.Fatal("default config built a heavy-hitter stage")
	}
}

// TestHeavyHitterStageFlagsFlood: a source flooding suspect flows is
// flagged at the heavy-hitter stage once its sketch estimate crosses the
// threshold, and every later suspect flow from it short-circuits there —
// before Scan Analysis and NNS ever see the flow.
func TestHeavyHitterStageFlagsFlood(t *testing.T) {
	const threshold = 20
	eng := trainedEngineHH(t, threshold)
	// Spoofed flood: one unknown source, multi-packet flows (so the scan
	// stage's probe filter is not what stops them).
	src := netaddr.MustParseAddr("203.0.113.99")
	hhFlagged := 0
	for i := 0; i < 100; i++ {
		rec := flow.Record{
			Key: flow.Key{
				Src:     src,
				Dst:     netaddr.MustParseAddr("192.0.2.10"),
				Proto:   6,
				SrcPort: uint16(40000 + i),
				DstPort: 80,
			},
			Packets: 5,
			Bytes:   2000,
			Start:   start,
			End:     start,
		}
		d := eng.Process(1, rec)
		if d.Stage == idmef.StageHeavyHitter {
			hhFlagged++
			if !d.Attack {
				t.Fatal("heavy-hitter stage set without Attack")
			}
		}
		if i >= threshold && d.Stage != idmef.StageHeavyHitter {
			t.Fatalf("flow %d past threshold %d decided at stage %q, want heavy-hitter", i, threshold, d.Stage)
		}
	}
	if hhFlagged == 0 {
		t.Fatal("heavy-hitter stage never fired on a 100-flow single-source flood")
	}
	st := eng.Stats()
	if st.ByStage[idmef.StageHeavyHitter] != hhFlagged {
		t.Errorf("ByStage[heavy-hitter] = %d, want %d", st.ByStage[idmef.StageHeavyHitter], hhFlagged)
	}
}

// TestHeavyHitterStageSparesQuietSources: with the stage enabled, benign
// holdout traffic from trained subnets (many distinct sources, low per-
// source volume) is not flagged by the heavy-hitter stage.
func TestHeavyHitterStageSparesQuietSources(t *testing.T) {
	eng := trainedEngineHH(t, 20)
	for _, r := range flowsFromPackets(t, 3, 100, peer1Pfx) {
		if d := eng.Process(1, r); d.Stage == idmef.StageHeavyHitter {
			t.Fatalf("benign flow from %v flagged as heavy hitter", r.Key.Src)
		}
	}
}
