package analysis

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"

	"infilter/internal/eia"
	"infilter/internal/nns"
	"infilter/internal/telemetry"
)

// promScrape encodes the registry and parses it back into series → value.
func promScrape(t *testing.T, r *telemetry.Registry) map[string]float64 {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// sumSeries totals every series of one family (summing across labels).
func sumSeries(m map[string]float64, name string) float64 {
	var sum float64
	for k, v := range m {
		if k == name || strings.HasPrefix(k, name+"{") {
			sum += v
		}
	}
	return sum
}

// TestParallelEngineMetrics replays the stress workload through an
// instrumented engine and checks the scraped counters against the
// engine's own Stats — the same invariants the /metrics endpoint must
// satisfy in the daemon's end-to-end test, minus the network.
func TestParallelEngineMetrics(t *testing.T) {
	w := buildParallelWorkload(t)
	serial, err := Train(w.cfg, w.labeled)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	reg := telemetry.NewRegistry()
	pm := NewPipelineMetrics(reg, shards)
	serial.Detector().SetMetrics(nns.NewMetrics(reg))
	pe, err := NewParallelEngine(
		ParallelConfig{Config: w.cfg, Shards: shards, QueueDepth: 16, Metrics: pm},
		freshTrainedSet(w.cfg, w.labeled), serial.Detector())
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()

	var wg sync.WaitGroup
	var total int
	for p := 1; p <= workloadPeers; p++ {
		total += len(w.streams[eia.PeerAS(p)])
		wg.Add(1)
		go func(peer eia.PeerAS) {
			defer wg.Done()
			for _, r := range w.streams[peer] {
				if err := pe.Submit(peer, r); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(eia.PeerAS(p))
	}
	wg.Wait()
	pe.Flush()
	st := pe.Stats()
	m := promScrape(t, reg)

	if got := sumSeries(m, "infilter_pipeline_flows_total"); got != float64(total) {
		t.Errorf("flows_total = %v, want %d", got, total)
	}
	hits := sumSeries(m, "infilter_eia_hits_total")
	misses := sumSeries(m, "infilter_eia_misses_total")
	if int(misses) != st.Suspects {
		t.Errorf("eia_misses_total = %v, Stats.Suspects = %d", misses, st.Suspects)
	}
	if int(hits+misses) != st.Processed {
		t.Errorf("eia hits+misses = %v, Stats.Processed = %d", hits+misses, st.Processed)
	}
	if got := sumSeries(m, "infilter_eia_promotions_total"); int(got) != st.Promotions {
		t.Errorf("promotions_total = %v, Stats.Promotions = %d", got, st.Promotions)
	}
	if got := m[`infilter_pipeline_stage_latency_seconds_count{stage="eia"}`]; got != float64(total) {
		t.Errorf("eia stage latency count = %v, want %d", got, total)
	}
	nnsQueries := m["infilter_nns_queries_total"]
	if nnsQueries == 0 {
		t.Error("workload never reached the NNS stage")
	}
	if got := m[`infilter_pipeline_stage_latency_seconds_count{stage="nns"}`]; got != nnsQueries {
		t.Errorf("nns stage latency count = %v, nns_queries_total = %v", got, nnsQueries)
	}
	// Every queue is drained after Flush.
	for i := 0; i < shards; i++ {
		key := `infilter_pipeline_queue_depth{shard="` + strconv.Itoa(i) + `"}`
		if v, ok := m[key]; !ok {
			t.Errorf("missing %s", key)
		} else if v != 0 {
			t.Errorf("%s = %v after Flush", key, v)
		}
	}
}

func TestParallelEngineMetricsShardMismatch(t *testing.T) {
	reg := telemetry.NewRegistry()
	pm := NewPipelineMetrics(reg, 2)
	set := eia.NewSet(eia.Config{})
	_, err := NewParallelEngine(
		ParallelConfig{Config: Config{Mode: ModeBasic}, Shards: 4, Metrics: pm}, set, nil)
	if err == nil {
		t.Fatal("shard/metrics mismatch: want error")
	}
}

func TestNewPipelineMetricsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for non-positive shard count")
		}
	}()
	NewPipelineMetrics(telemetry.NewRegistry(), 0)
}
