package analysis

import (
	"strconv"
	"time"

	"infilter/internal/eia"
	"infilter/internal/scan"
	"infilter/internal/telemetry"
)

// Pipeline stages with their own latency histogram.
const (
	stageEIA = iota
	stageHH
	stageScan
	stageNNS
	stageTTL
	numStages
)

var stageNames = [numStages]string{stageEIA: "eia", stageHH: "heavy-hitter", stageScan: "scan", stageNNS: "nns", stageTTL: "ttl"}

// shardMetrics is one shard's private instrumentation. The counters are
// exported per shard (labeled shard="i"); the stage histograms are
// single-writer on the hot path and merged across shards into one series
// per stage only at scrape time, mirroring how Stats merges shard
// counters.
type shardMetrics struct {
	flows  *telemetry.Counter
	blocks *telemetry.Counter
	stage  [numStages]*telemetry.Histogram
}

// PipelineMetrics instruments one ParallelEngine: per-shard flow and
// enqueue-block counters, per-shard queue-depth gauges, merged per-stage
// latency histograms, and the EIA and scan counters for the engine's
// shared set and per-shard analyzers. Build it with the same shard count
// the engine will use and pass it via ParallelConfig.Metrics.
//
// A PipelineMetrics registers its series on construction, so it belongs
// to exactly one engine; reusing one (or building two on one registry)
// panics with a duplicate-series error.
type PipelineMetrics struct {
	reg    *telemetry.Registry
	shards []shardMetrics
	scan   *scan.Metrics
	hh     *scan.HeavyHitterMetrics
	ttl    *scan.TTLMetrics
	eia    *eia.Metrics
}

// NewPipelineMetrics registers pipeline instrumentation for an engine
// with the given shard count (which must match ParallelConfig.Shards
// after its zero-default resolution).
func NewPipelineMetrics(r *telemetry.Registry, shards int) *PipelineMetrics {
	if shards <= 0 {
		panic("analysis: NewPipelineMetrics needs a positive shard count")
	}
	m := &PipelineMetrics{
		reg:    r,
		shards: make([]shardMetrics, shards),
		scan:   scan.NewMetrics(r),
		hh:     scan.NewHeavyHitterMetrics(r),
		ttl:    scan.NewTTLMetrics(r),
		eia:    eia.NewMetrics(r),
	}
	for i := range m.shards {
		lbl := telemetry.Label{Key: "shard", Value: strconv.Itoa(i)}
		m.shards[i].flows = r.Counter("infilter_pipeline_flows_total",
			"Flows analyzed per shard.", lbl)
		m.shards[i].blocks = r.Counter("infilter_pipeline_enqueue_blocks_total",
			"Submits that blocked on a full shard queue (backpressure).", lbl)
		for st := range m.shards[i].stage {
			m.shards[i].stage[st] = telemetry.NewHistogram(telemetry.LatencyBuckets())
		}
	}
	for st := 0; st < numStages; st++ {
		st := st
		r.HistogramFunc("infilter_pipeline_stage_latency_seconds",
			"Per-stage analysis latency, merged across shards.",
			telemetry.UnitSeconds,
			func() telemetry.Snapshot {
				hs := make([]*telemetry.Histogram, len(m.shards))
				for i := range m.shards {
					hs[i] = m.shards[i].stage[st]
				}
				return telemetry.MergeHistograms(hs...)
			},
			telemetry.Label{Key: "stage", Value: stageNames[st]})
	}
	return m
}

// Shards returns the shard count the metrics were built for.
func (m *PipelineMetrics) Shards() int { return len(m.shards) }

// registerTTLSourcesGauge exports the live count of learned TTL source
// profiles; called once per engine, only when the TTL stage is enabled.
func (m *PipelineMetrics) registerTTLSourcesGauge(p *scan.TTLProfile) {
	m.reg.GaugeFunc("infilter_ttl_sources",
		"Source aggregates with a learned TTL profile.",
		func() int64 { return p.Sources() })
}

// registerQueueGauge exports one shard's live queue depth.
func (m *PipelineMetrics) registerQueueGauge(i int, depth func() int64) {
	m.reg.GaugeFunc("infilter_pipeline_queue_depth",
		"Flows waiting in a shard's ingest queue.", depth,
		telemetry.Label{Key: "shard", Value: strconv.Itoa(i)})
}

// observeStage records one stage latency on a shard's histogram; nil
// receivers (uninstrumented engines) discard.
func (sm *shardMetrics) observeStage(st int, d time.Duration) {
	if sm == nil {
		return
	}
	sm.stage[st].ObserveDuration(d)
}
