package analysis

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/nns"
	"infilter/internal/testutil"
)

// batchSizes are the batch widths the ISSUE pins for the equivalence
// gate: degenerate single-record batches, a typical datagram's worth,
// and batches wide enough to span EIA promotions mid-batch (the suspect
// streams are 60 records at PromoteThreshold 4, so a 256-wide batch
// forces the tail re-check path).
var batchSizes = []int{1, 16, 256}

// interleaveRoundRobin flattens the per-peer streams into the one global
// order the serial reference replays: round-robin over peers, each peer's
// own order preserved.
func interleaveRoundRobin(w parallelWorkload) []LabeledRecord {
	var out []LabeledRecord
	for i := 0; ; i++ {
		any := false
		for p := 1; p <= workloadPeers; p++ {
			stream := w.streams[eia.PeerAS(p)]
			if i < len(stream) {
				out = append(out, LabeledRecord{Peer: eia.PeerAS(p), Record: stream[i]})
				any = true
			}
		}
		if !any {
			return out
		}
	}
}

// runSerialReference replays the interleave per record and returns the
// reference outcome every batched variant must reproduce.
func runSerialReference(t *testing.T, w parallelWorkload, interleave []LabeledRecord) (Stats, int, []byte) {
	t.Helper()
	serial, err := Train(w.cfg, w.labeled)
	if err != nil {
		t.Fatal(err)
	}
	alerts := 0
	serial.SetAlertSink(func(a idmef.Alert) { alerts++ })
	for _, lr := range interleave {
		serial.Process(lr.Peer, lr.Record)
	}
	var eiaState bytes.Buffer
	if _, err := serial.EIASet().WriteTo(&eiaState); err != nil {
		t.Fatal(err)
	}
	st := serial.Stats()
	if st.Attacks == 0 || st.Promotions == 0 || st.Suspects == 0 {
		t.Fatalf("degenerate workload: %+v", st)
	}
	return st, alerts, eiaState.Bytes()
}

// TestSerialBatchMatchesPerRecord replays the same interleave through
// Engine.ProcessBatch at every pinned batch size: verdict counters,
// alert counts and the EIA end-state must be identical to per-record
// processing. Batch size 256 spans promotions, so a pass proves the
// mid-batch snapshot refresh (tail re-check) works.
func TestSerialBatchMatchesPerRecord(t *testing.T) {
	w := buildParallelWorkload(t)
	interleave := interleaveRoundRobin(w)
	want, wantAlerts, wantEIA := runSerialReference(t, w, interleave)
	detector := mustDetector(t, w)

	for _, size := range batchSizes {
		t.Run(fmt.Sprintf("batch=%d", size), func(t *testing.T) {
			eng, err := NewEngine(w.cfg, freshTrainedSet(w.cfg, w.labeled), detector)
			if err != nil {
				t.Fatal(err)
			}
			alerts := 0
			eng.SetAlertSink(func(a idmef.Alert) { alerts++ })
			for off := 0; off < len(interleave); off += size {
				end := off + size
				if end > len(interleave) {
					end = len(interleave)
				}
				eng.ProcessBatch(interleave[off:end])
			}
			if got := eng.Stats(); !reflect.DeepEqual(got, want) {
				t.Errorf("batched stats = %+v, per-record = %+v", got, want)
			}
			if alerts != wantAlerts {
				t.Errorf("batched alerts = %d, per-record = %d", alerts, wantAlerts)
			}
			var eiaState bytes.Buffer
			if _, err := eng.EIASet().WriteTo(&eiaState); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(eiaState.Bytes(), wantEIA) {
				t.Error("batched EIA end-state differs from per-record end-state")
			}
		})
	}
}

// TestParallelBatchMatchesSerial is the batched arm of the concurrency
// stress test: one goroutine per peer replays its stream through
// SubmitBatch in size-bounded chunks, across shard counts. The merged
// counters, alert counts and EIA end-state must match the per-record
// serial reference, as TestParallelEngineMatchesSerial demands of
// per-record Submit.
func TestParallelBatchMatchesSerial(t *testing.T) {
	w := buildParallelWorkload(t)
	interleave := interleaveRoundRobin(w)
	want, wantAlerts, wantEIA := runSerialReference(t, w, interleave)
	detector := mustDetector(t, w)

	for _, shards := range []int{1, 3, workloadPeers} {
		for _, size := range batchSizes {
			t.Run(fmt.Sprintf("shards=%d/batch=%d", shards, size), func(t *testing.T) {
				pe, err := NewParallelEngine(
					ParallelConfig{Config: w.cfg, Shards: shards, QueueDepth: 16},
					freshTrainedSet(w.cfg, w.labeled), detector)
				if err != nil {
					t.Fatal(err)
				}
				var alerts atomic.Int64
				pe.SetAlertSink(func(a idmef.Alert) { alerts.Add(1) })

				var wg sync.WaitGroup
				for p := 1; p <= workloadPeers; p++ {
					wg.Add(1)
					go func(peer eia.PeerAS) {
						defer wg.Done()
						stream := w.streams[peer]
						for off := 0; off < len(stream); off += size {
							end := off + size
							if end > len(stream) {
								end = len(stream)
							}
							if err := pe.SubmitBatch(peer, stream[off:end]); err != nil {
								t.Errorf("SubmitBatch: %v", err)
								return
							}
						}
					}(eia.PeerAS(p))
				}
				wg.Wait()
				pe.Flush()
				got := pe.Stats()
				var eiaState bytes.Buffer
				if _, err := pe.EIASet().WriteTo(&eiaState); err != nil {
					t.Fatal(err)
				}
				if err := pe.Close(); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("batched stats = %+v, serial = %+v", got, want)
				}
				if int(alerts.Load()) != wantAlerts {
					t.Errorf("batched alerts = %d, serial = %d", alerts.Load(), wantAlerts)
				}
				if !bytes.Equal(eiaState.Bytes(), wantEIA) {
					t.Error("batched EIA end-state differs from serial end-state")
				}
			})
		}
	}
}

// TestSubmitLabeledBatchMatchesSerial drives the mixed-peer entry point:
// the global interleave is chunked and fanned out by the engine itself.
func TestSubmitLabeledBatchMatchesSerial(t *testing.T) {
	w := buildParallelWorkload(t)
	interleave := interleaveRoundRobin(w)
	want, wantAlerts, _ := runSerialReference(t, w, interleave)
	detector := mustDetector(t, w)

	for _, size := range batchSizes {
		t.Run(fmt.Sprintf("batch=%d", size), func(t *testing.T) {
			pe, err := NewParallelEngine(
				ParallelConfig{Config: w.cfg, Shards: 3, QueueDepth: 16},
				freshTrainedSet(w.cfg, w.labeled), detector)
			if err != nil {
				t.Fatal(err)
			}
			var alerts atomic.Int64
			pe.SetAlertSink(func(a idmef.Alert) { alerts.Add(1) })
			for off := 0; off < len(interleave); off += size {
				end := off + size
				if end > len(interleave) {
					end = len(interleave)
				}
				if err := pe.SubmitLabeledBatch(interleave[off:end]); err != nil {
					t.Fatal(err)
				}
			}
			pe.Flush()
			got := pe.Stats()
			if err := pe.Close(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("labeled-batch stats = %+v, serial = %+v", got, want)
			}
			if int(alerts.Load()) != wantAlerts {
				t.Errorf("labeled-batch alerts = %d, serial = %d", alerts.Load(), wantAlerts)
			}
		})
	}
}

// mustDetector trains the shared read-only NNS detector once per test
// (it is safe to share across engines; only the EIA set mutates).
func mustDetector(t *testing.T, w parallelWorkload) *nns.Detector {
	t.Helper()
	_, detector, err := trainComponents(w.cfg, w.labeled)
	if err != nil {
		t.Fatal(err)
	}
	return detector
}

// TestBatchFanOutPartition is the property test for batch fan-out: for
// random batches, the per-shard sub-batches are a partition of the input
// preserving per-peer order — no record duplicated, dropped, or
// reordered within a peer.
func TestBatchFanOutPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		shards := 1 + rng.Intn(8)
		n := rng.Intn(400)
		batch := make([]LabeledRecord, n)
		for i := range batch {
			// SrcPort carries the input index so every record is unique
			// and its original position recoverable.
			batch[i] = LabeledRecord{
				Peer: eia.PeerAS(rng.Intn(12)),
				Record: flow.Record{Key: flow.Key{
					Src:     netaddr.IPv4(rng.Uint32()).Addr(),
					SrcPort: uint16(i),
				}},
			}
		}
		sub := fanOut(batch, make([][]shardItem, shards))

		var flat []shardItem
		for si, items := range sub {
			for _, it := range items {
				if int(it.peer)%shards != si {
					t.Fatalf("trial %d: peer %d routed to shard %d of %d", trial, it.peer, si, shards)
				}
				flat = append(flat, it)
			}
		}
		if len(flat) != n {
			t.Fatalf("trial %d: %d records out, %d in", trial, len(flat), n)
		}
		seen := make(map[uint16]bool, n)
		lastIdx := make(map[eia.PeerAS]int)
		for _, it := range flat {
			idx := it.rec.Key.SrcPort
			if seen[idx] {
				t.Fatalf("trial %d: record %d duplicated", trial, idx)
			}
			seen[idx] = true
			orig := batch[idx]
			if it.peer != orig.Peer || it.rec != orig.Record {
				t.Fatalf("trial %d: record %d mutated in fan-out", trial, idx)
			}
			if last, ok := lastIdx[it.peer]; ok && int(idx) < last {
				t.Fatalf("trial %d: peer %d reordered (%d after %d)", trial, it.peer, idx, last)
			}
			lastIdx[it.peer] = int(idx)
		}
	}
}

// TestParallelEngineBatchWorkerLeak cycles engines through the batched
// entry points — including Close with batches still queued — and fails
// on any worker goroutine left behind.
func TestParallelEngineBatchWorkerLeak(t *testing.T) {
	set := eia.NewSet(eia.Config{})
	set.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	recs := make([]flow.Record, 32)
	for i := range recs {
		recs[i] = flow.Record{Key: flow.Key{Src: netaddr.MustParseAddr("99.1.1.1")}}
	}
	labeled := make([]LabeledRecord, 32)
	for i := range labeled {
		labeled[i] = LabeledRecord{Peer: eia.PeerAS(i % 5), Record: recs[i%len(recs)]}
	}
	testutil.ExpectNoGoroutineGrowth(t, func() {
		for i := 0; i < 5; i++ {
			pe, err := NewParallelEngine(
				ParallelConfig{Config: Config{Mode: ModeBasic}, Shards: 6, QueueDepth: 4}, set, nil)
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < 8; j++ {
				if err := pe.SubmitBatch(eia.PeerAS(j%4+1), recs); err != nil {
					t.Fatal(err)
				}
				if err := pe.SubmitLabeledBatch(labeled); err != nil {
					t.Fatal(err)
				}
			}
			// No Flush: Close must drain queued batches and stop cleanly.
			if err := pe.Close(); err != nil {
				t.Fatal(err)
			}
			if err := pe.SubmitBatch(1, recs); err != ErrEngineClosed {
				t.Fatalf("SubmitBatch after Close = %v, want ErrEngineClosed", err)
			}
			if err := pe.SubmitLabeledBatch(labeled); err != ErrEngineClosed {
				t.Fatalf("SubmitLabeledBatch after Close = %v, want ErrEngineClosed", err)
			}
		}
	})
}
