package analysis

import (
	"math"
	"sync"
	"testing"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/scan"
)

// ttlStageConfig enables the TTL second opinion with scan and promotion
// tuned so only the TTL stage can flag or withhold anything.
func ttlStageConfig() Config {
	return Config{
		Mode: ModeEnhanced,
		EIA:  eia.Config{PromoteThreshold: 4},
		Scan: scan.Config{NetworkScanThreshold: math.MaxInt32, HostScanThreshold: math.MaxInt32},
		TTL:  scan.TTLConfig{Tolerance: 2},
	}
}

// ttlTrainedEngine trains a serial engine on peer-1 traffic and returns
// it with one known-legal record (EIA Match) to replay.
func ttlTrainedEngine(t *testing.T) (*Engine, flow.Record) {
	t.Helper()
	var labeled []LabeledRecord
	for _, r := range flowsFromPackets(t, 1, 250, peer1Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 1, Record: r})
	}
	eng, err := Train(ttlStageConfig(), labeled)
	if err != nil {
		t.Fatal(err)
	}
	return eng, labeled[0].Record
}

// benignSuspect returns a suspect-source copy of a training record that
// the trained NNS detector assesses as normal, so the only stage that
// can stop it is the TTL profile.
func benignSuspect(t *testing.T, eng *Engine, legal flow.Record) flow.Record {
	t.Helper()
	rec := legal
	rec.Key.Src = netaddr.MustParseAddr("99.77.4.10")
	if eng.Detector().Assess(rec).Anomalous {
		t.Fatal("suspect copy of a training record assessed anomalous; pick another record")
	}
	return rec
}

// TestTTLSecondOpinionOverridesMatch proves the legal-path wiring: a
// source whose EIA verdict is Match is still flagged when its TTL
// contradicts the learned profile — the on-path spoof EIA cannot see.
func TestTTLSecondOpinionOverridesMatch(t *testing.T) {
	eng, legal := ttlTrainedEngine(t)
	if eng.TTLProfile() == nil {
		t.Fatal("TTL stage enabled but engine profile is nil")
	}

	legal.TTL = 57
	for i := 0; i < 3; i++ { // learn to MinSamples
		if d := eng.Process(1, legal); d.Attack || d.Verdict != eia.Match {
			t.Fatalf("learning flow %d: %+v", i, d)
		}
	}
	legal.TTL = 59 // within tolerance 2: folds, no alarm
	if d := eng.Process(1, legal); d.Attack {
		t.Fatalf("in-tolerance TTL flagged: %+v", d)
	}
	legal.TTL = 40 // 19 hops off the profile
	d := eng.Process(1, legal)
	if !d.Attack || d.Stage != idmef.StageTTL {
		t.Fatalf("spoofed-TTL Match not flagged at TTL stage: %+v", d)
	}
	legal.TTL = 0 // no TTL information: never assessed
	if d := eng.Process(1, legal); d.Attack {
		t.Fatalf("TTL-less flow flagged: %+v", d)
	}
	if exp, _, ok := eng.TTLProfile().Expected(legal.Key.Src); !ok || exp != 59 {
		t.Errorf("profile for legal /24 = (%d, %v), want (59, true)", exp, ok)
	}
	if got := eng.Stats().ByStage[idmef.StageTTL]; got != 1 {
		t.Errorf("TTL stage count = %d, want 1", got)
	}
}

// TestTTLSecondOpinionBlocksVouch proves the suspect-path wiring: a
// suspect that passes every other stage is denied its EIA vouch when
// the TTL contradicts the profile, so spoofed sources cannot be
// laundered toward promotion — while consistent flows keep vouching.
func TestTTLSecondOpinionBlocksVouch(t *testing.T) {
	eng, legal := ttlTrainedEngine(t)
	rec := benignSuspect(t, eng, legal)

	rec.TTL = 60
	for i := 0; i < 3; i++ { // three clean vouches, learning the profile
		if d := eng.Process(1, rec); d.Attack || d.Promoted {
			t.Fatalf("clean suspect %d: %+v", i, d)
		}
	}
	rec.TTL = 30 // would be the promoting fourth vouch — must be denied
	d := eng.Process(1, rec)
	if !d.Attack || d.Stage != idmef.StageTTL {
		t.Fatalf("spoofed-TTL suspect not flagged at TTL stage: %+v", d)
	}
	if d.Promoted || eng.Stats().Promotions != 0 {
		t.Fatalf("spoofed flow still advanced promotion: %+v, promotions %d", d, eng.Stats().Promotions)
	}
	rec.TTL = 60 // the real source comes back: fourth vouch promotes
	if d := eng.Process(1, rec); d.Attack || !d.Promoted {
		t.Fatalf("consistent suspect after spoof burst: %+v", d)
	}
}

// TestTTLProfileSharedAcrossShards proves the table is one engine-wide
// structure: observations of a source arriving through different peers
// (hence different shards) accumulate into one profile, and the fourth,
// deviating observation is flagged whichever shard sees it.
func TestTTLProfileSharedAcrossShards(t *testing.T) {
	var labeled []LabeledRecord
	for _, r := range flowsFromPackets(t, 1, 250, peer1Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 1, Record: r})
	}
	for _, r := range flowsFromPackets(t, 2, 250, peer2Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 2, Record: r})
	}
	cfg := ttlStageConfig()
	set, detector, err := trainComponents(cfg, labeled)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := NewParallelEngine(ParallelConfig{Config: cfg, Shards: 4, QueueDepth: 8}, set, detector)
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	var mu sync.Mutex
	stages := make(map[idmef.Stage]int)
	pe.SetAlertSink(func(a idmef.Alert) {
		mu.Lock()
		stages[a.Assessment.Stage]++
		mu.Unlock()
	})

	rec := labeled[0].Record
	rec.Key.Src = netaddr.MustParseAddr("99.77.4.10") // suspect for every peer
	rec.TTL = 60
	// Alternate peers (distinct shards), flushing between submissions so
	// the observation order is deterministic.
	for i, peer := range []eia.PeerAS{1, 2, 1} {
		if err := pe.Submit(peer, rec); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		pe.Flush()
	}
	if got := pe.TTLProfile().Sources(); got != 1 {
		t.Fatalf("profile sources = %d, want 1 shared aggregate", got)
	}
	rec.TTL = 30
	if err := pe.Submit(2, rec); err != nil {
		t.Fatal(err)
	}
	pe.Flush()
	if stages[idmef.StageTTL] != 1 {
		t.Fatalf("cross-shard spoof not flagged at TTL stage: alerts %v", stages)
	}
}
