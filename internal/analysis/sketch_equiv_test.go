package analysis

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/nns"
	"infilter/internal/scan"
)

// buildScanEquivWorkload is the small-cardinality workload of the
// sketch-vs-ring equivalence gate: per-peer streams that interleave
// legal flows with a 40-probe network scan from one foreign source.
// Forty suspects fit both the 200-entry ring (no eviction) and the
// KMV registers' exact range (40 < k = 256), so the two backends must
// emit byte-identical verdicts — any divergence is a bug, not noise.
// Promotion is pushed out of reach so the scanning source can never be
// laundered into the EIA set mid-stream.
func buildScanEquivWorkload(t *testing.T) parallelWorkload {
	t.Helper()
	cfg := Config{
		Mode: ModeEnhanced,
		EIA:  eia.Config{PromoteThreshold: 1 << 30},
		Scan: scan.Config{}, // defaults; ExactBuffer toggled per engine
	}
	w := parallelWorkload{cfg: cfg, streams: make(map[eia.PeerAS][]flow.Record)}
	for p := 1; p <= workloadPeers; p++ {
		peer := eia.PeerAS(p)
		trainPfx := netaddr.MustParsePrefix(fmt.Sprintf("%d.0.0.0/8", 20+p))
		for _, r := range flowsFromPackets(t, int64(p), 120, trainPfx) {
			w.labeled = append(w.labeled, LabeledRecord{Peer: peer, Record: r})
		}

		legal := flowsFromPackets(t, int64(1000+p), 30, trainPfx)
		scanSrc := netaddr.MustParseAddr(fmt.Sprintf("%d.9.9.9", 200+p))
		var stream []flow.Record
		for i := 0; i < 40; i++ {
			if i < len(legal) {
				stream = append(stream, legal[i])
			}
			stream = append(stream, flow.Record{
				Key: flow.Key{
					Src:     scanSrc,
					Dst:     netaddr.MustParseAddr(fmt.Sprintf("192.0.2.%d", i+1)),
					Proto:   flow.ProtoUDP,
					SrcPort: uint16(40000 + i),
					DstPort: 1434,
					InputIf: 1,
				},
				Packets: 1, Bytes: 404,
				Start: start, End: start,
			})
		}
		w.streams[peer] = stream
	}
	return w
}

// runScanEquivEngine replays the workload through a ParallelEngine with
// one shard per peer (so each shard's suspect stream is exactly one
// peer's, in submission order — the only deterministic sharding) and
// returns the merged stats plus per-stage alert tallies.
func runScanEquivEngine(t *testing.T, w parallelWorkload, detector *nns.Detector, exact bool, size int) (Stats, map[idmef.Stage]int) {
	t.Helper()
	cfg := w.cfg
	cfg.Scan.ExactBuffer = exact
	pe, err := NewParallelEngine(
		ParallelConfig{Config: cfg, Shards: workloadPeers, QueueDepth: 16},
		freshTrainedSet(cfg, w.labeled), detector)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	stages := make(map[idmef.Stage]int)
	pe.SetAlertSink(func(a idmef.Alert) {
		mu.Lock()
		stages[a.Assessment.Stage]++
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for p := 1; p <= workloadPeers; p++ {
		wg.Add(1)
		go func(peer eia.PeerAS) {
			defer wg.Done()
			stream := w.streams[peer]
			for off := 0; off < len(stream); off += size {
				end := off + size
				if end > len(stream) {
					end = len(stream)
				}
				if err := pe.SubmitBatch(peer, stream[off:end]); err != nil {
					t.Errorf("SubmitBatch: %v", err)
					return
				}
			}
		}(eia.PeerAS(p))
	}
	wg.Wait()
	pe.Flush()
	got := pe.Stats()
	if err := pe.Close(); err != nil {
		t.Fatal(err)
	}
	return got, stages
}

// TestSketchMatchesRingOracleThroughParallelEngine is the end-to-end
// arm of the sketch-vs-ring equivalence: at small cardinalities the
// streaming backend must reproduce the exact ring oracle's verdicts
// flow for flow, through the full concurrent pipeline, at every pinned
// batch width. Run under -race this also exercises the sketch
// registers' single-driver-per-shard ownership.
func TestSketchMatchesRingOracleThroughParallelEngine(t *testing.T) {
	w := buildScanEquivWorkload(t)
	detector := mustDetector(t, w)

	want, wantStages := runScanEquivEngine(t, w, detector, true, 1)
	if want.ByStage[idmef.StageScan] == 0 || want.Suspects == 0 {
		t.Fatalf("degenerate workload: ring oracle stats %+v", want)
	}
	if want.Promotions != 0 {
		t.Fatalf("workload promoted the scanning source: %+v", want)
	}

	for _, exact := range []bool{true, false} {
		backend := "sketch"
		if exact {
			backend = "ring"
		}
		for _, size := range batchSizes {
			t.Run(fmt.Sprintf("%s/batch=%d", backend, size), func(t *testing.T) {
				got, stages := runScanEquivEngine(t, w, detector, exact, size)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("stats = %+v, ring oracle = %+v", got, want)
				}
				if !reflect.DeepEqual(stages, wantStages) {
					t.Errorf("alert stages = %v, ring oracle = %v", stages, wantStages)
				}
			})
		}
	}
}

// TestSketchDivergesOnlyBeyondRingCapacity pins the intended
// difference between the backends at the engine level: a scan spread
// thinner than the ring can hold saturates the oracle silently while
// the sketch backend still converges on it. This is the reason the
// sketch is the default, stated as a test.
func TestSketchDivergesOnlyBeyondRingCapacity(t *testing.T) {
	cfg := Config{
		Mode: ModeEnhanced,
		EIA:  eia.Config{PromoteThreshold: 1 << 30},
		Scan: scan.Config{
			NetworkScanThreshold: 300, // beyond the 200-entry ring
			HostScanThreshold:    math.MaxInt32,
			DecayEvery:           1 << 30, // no rotation inside the stream
		},
	}
	trainPfx := netaddr.MustParsePrefix("21.0.0.0/8")
	var labeled []LabeledRecord
	for _, r := range flowsFromPackets(t, 1, 120, trainPfx) {
		labeled = append(labeled, LabeledRecord{Peer: 1, Record: r})
	}
	probes := make([]flow.Record, 400)
	for i := range probes {
		probes[i] = flow.Record{
			Key: flow.Key{
				Src:     netaddr.MustParseAddr("201.9.9.9"),
				Dst:     netaddr.MustParseAddr(fmt.Sprintf("192.0.%d.%d", 2+i/250, 1+i%250)),
				Proto:   flow.ProtoUDP,
				SrcPort: uint16(40000 + i),
				DstPort: 1434,
				InputIf: 1,
			},
			Packets: 1, Bytes: 404, Start: start, End: start,
		}
	}

	for _, tc := range []struct {
		backend string
		exact   bool
		detects bool
	}{
		{"ring-saturates", true, false},
		{"sketch-detects", false, true},
	} {
		t.Run(tc.backend, func(t *testing.T) {
			c := cfg
			c.Scan.ExactBuffer = tc.exact
			eng, err := Train(c, labeled)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range probes {
				eng.Process(1, r)
			}
			trips := eng.Stats().ByStage[idmef.StageScan]
			if tc.detects && trips == 0 {
				t.Error("sketch backend missed a 400-host scan above ring capacity")
			}
			if !tc.detects && trips != 0 {
				t.Errorf("ring oracle tripped %d times past saturation; its capacity contract changed", trips)
			}
		})
	}
}
