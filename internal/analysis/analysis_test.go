package analysis

import (
	"testing"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/trace"
)

var (
	start     = time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	peer1Pfx  = netaddr.MustParsePrefix("61.0.0.0/11")
	peer2Pfx  = netaddr.MustParsePrefix("70.0.0.0/11")
	targetPfx = netaddr.MustParsePrefix("192.0.2.0/24")
)

func flowsFromPackets(t *testing.T, seed int64, flows int, src netaddr.Prefix) []flow.Record {
	t.Helper()
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        seed,
		Start:       start,
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{src},
		DstPrefix:   targetPfx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}

func attackFlowRecords(t *testing.T, at trace.AttackType, seed int64, src string) []flow.Record {
	t.Helper()
	pkts, err := trace.Generate(at, trace.AttackConfig{
		Seed:      seed,
		Start:     start.Add(time.Hour),
		Src:       netaddr.MustParseAddr(src),
		DstPrefix: targetPfx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}

// trainedEngine trains an EI engine on two peers' normal traffic.
func trainedEngine(t *testing.T, mode Mode) *Engine {
	t.Helper()
	var labeled []LabeledRecord
	for _, r := range flowsFromPackets(t, 1, 900, peer1Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 1, Record: r})
	}
	for _, r := range flowsFromPackets(t, 2, 900, peer2Pfx) {
		labeled = append(labeled, LabeledRecord{Peer: 2, Record: r})
	}
	eng, err := Train(Config{Mode: mode}, labeled)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(Config{}, nil); err == nil {
		t.Error("empty training: want error")
	}
	if _, err := NewEngine(Config{}, nil, nil); err == nil {
		t.Error("nil EIA set: want error")
	}
	set := eia.NewSet(eia.Config{})
	if _, err := NewEngine(Config{Mode: ModeEnhanced}, set, nil); err == nil {
		t.Error("EI without detector: want error")
	}
	if _, err := NewEngine(Config{Mode: ModeBasic}, set, nil); err != nil {
		t.Errorf("BI without detector should work: %v", err)
	}
}

func TestModeString(t *testing.T) {
	if ModeBasic.String() != "BI" || ModeEnhanced.String() != "EI" {
		t.Error("mode names")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode name")
	}
}

func TestLegalFlowPasses(t *testing.T) {
	eng := trainedEngine(t, ModeEnhanced)
	legit := flowsFromPackets(t, 3, 50, peer1Pfx)
	attacks := 0
	for _, r := range legit {
		d := eng.Process(1, r)
		if d.Verdict != eia.Match && d.Attack {
			attacks++
		}
		if d.Verdict == eia.Match && d.Attack {
			t.Fatal("EIA-matching flow flagged as attack")
		}
	}
	// Holdout traffic from trained subnets mostly matches EIA and passes.
	if attacks > len(legit)/10 {
		t.Errorf("%d/%d legal flows flagged", attacks, len(legit))
	}
}

func TestBasicModeFlagsAllSuspects(t *testing.T) {
	eng := trainedEngine(t, ModeBasic)
	// Spoofed flow: peer 2 source arriving at peer 1.
	recs := attackFlowRecords(t, trace.AttackTeardrop, 4, "70.9.9.9")
	for _, r := range recs {
		d := eng.Process(1, r)
		if !d.Attack || d.Stage != idmef.StageEIA {
			t.Errorf("BI decision %+v, want EIA-stage attack", d)
		}
	}
	st := eng.Stats()
	if st.Attacks != len(recs) || st.Suspects != len(recs) {
		t.Errorf("stats %+v", st)
	}
}

func TestEnhancedDetectsScanAttack(t *testing.T) {
	eng := trainedEngine(t, ModeEnhanced)
	recs := attackFlowRecords(t, trace.AttackSlammer, 5, "70.9.9.9")
	detected := 0
	for _, r := range recs {
		d := eng.Process(1, r)
		if d.Attack {
			detected++
			if d.Stage != idmef.StageScan && d.Stage != idmef.StageNNS {
				t.Errorf("stage %v", d.Stage)
			}
		}
	}
	if detected < len(recs)/2 {
		t.Errorf("slammer: %d/%d flows detected", detected, len(recs))
	}
	if eng.Stats().ScanFlagged == 0 {
		t.Error("scan analysis never fired on slammer")
	}
}

func TestEnhancedDetectsExploit(t *testing.T) {
	eng := trainedEngine(t, ModeEnhanced)
	recs := attackFlowRecords(t, trace.AttackFTPExploit, 6, "70.9.9.9")
	detected := 0
	for _, r := range recs {
		if eng.Process(1, r).Attack {
			detected++
		}
	}
	if detected == 0 {
		t.Error("ftp exploit undetected by EI")
	}
}

func TestEnhancedSuppressesRouteChangeFalsePositives(t *testing.T) {
	eng := trainedEngine(t, ModeEnhanced)
	// Route change: benign traffic from peer 2's subnets now arrives at
	// peer 1. EI should vet most of it as normal via NNS.
	moved := flowsFromPackets(t, 7, 200, peer2Pfx)
	fp := 0
	for _, r := range moved {
		d := eng.Process(1, r)
		if d.Attack {
			fp++
		}
	}
	rate := float64(fp) / float64(len(moved))
	if rate > 0.15 {
		t.Errorf("EI flagged %.1f%% of route-changed benign flows", 100*rate)
	}
}

func TestPromotionAdaptsEIA(t *testing.T) {
	eng := trainedEngine(t, ModeEnhanced)
	// Keep sending benign flows from one moved /24 via peer 1.
	moved := flowsFromPackets(t, 8, 300, netaddr.MustParsePrefix("70.4.4.0/24"))
	promoted := false
	for _, r := range moved {
		if eng.Process(1, r).Promoted {
			promoted = true
			break
		}
	}
	if !promoted {
		t.Fatal("no promotion after many vouched flows")
	}
	if eng.Stats().Promotions == 0 {
		t.Error("promotion counter zero")
	}
	// After promotion the subnet matches at peer 1.
	if got := eng.EIASet().Check(1, netaddr.MustParseAddr("70.4.4.77")); got != eia.Match {
		t.Errorf("post-promotion Check = %v", got)
	}
}

func TestAlertSinkReceivesIDMEF(t *testing.T) {
	eng := trainedEngine(t, ModeEnhanced)
	var alerts []idmef.Alert
	eng.SetAlertSink(func(a idmef.Alert) { alerts = append(alerts, a) })
	eng.SetClock(func() time.Time { return start.Add(2 * time.Hour) })

	for _, r := range attackFlowRecords(t, trace.AttackSlammer, 9, "70.9.9.9") {
		eng.Process(1, r)
	}
	if len(alerts) == 0 {
		t.Fatal("no alerts emitted")
	}
	a := alerts[0]
	if a.Assessment.PeerAS != 1 {
		t.Errorf("alert peer %d", a.Assessment.PeerAS)
	}
	if a.MessageID == "" || a.Classification.Text == "" {
		t.Errorf("alert fields empty: %+v", a)
	}
	if !a.CreateTime.Equal(start.Add(2 * time.Hour)) {
		t.Errorf("alert time %v", a.CreateTime)
	}
	ids := map[string]bool{}
	for _, al := range alerts {
		if ids[al.MessageID] {
			t.Fatalf("duplicate alert id %s", al.MessageID)
		}
		ids[al.MessageID] = true
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	eng := trainedEngine(t, ModeBasic)
	recs := attackFlowRecords(t, trace.AttackPuke, 10, "70.9.9.9")
	for _, r := range recs {
		eng.Process(1, r)
	}
	st := eng.Stats()
	st.ByStage[idmef.StageEIA] = 999
	if eng.Stats().ByStage[idmef.StageEIA] == 999 {
		t.Error("Stats map aliases engine state")
	}
}
