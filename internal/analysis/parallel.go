package analysis

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/nns"
	"infilter/internal/scan"
)

// ParallelConfig assembles a ParallelEngine.
type ParallelConfig struct {
	// Config carries the pipeline settings shared with the serial Engine.
	Config
	// Shards is the number of worker shards. Flows are routed by peer AS
	// (shard = peer mod Shards), so every ingress keeps FIFO order and one
	// peer's flows never race each other — the per-peer-AS EIA semantics of
	// §3 carry over shard boundaries unchanged. Zero defaults to
	// runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth bounds each shard's ingest queue. Submit blocks once a
	// shard's queue is full, pushing backpressure onto the producer (for
	// infilterd, the UDP receive loops; the kernel sheds load beyond
	// that). Zero defaults to DefaultQueueDepth.
	QueueDepth int
	// Metrics instruments the engine (nil: no telemetry). It must have
	// been built with NewPipelineMetrics for the same shard count this
	// config resolves to, and belongs to exactly one engine.
	Metrics *PipelineMetrics
}

// DefaultQueueDepth is the per-shard queue bound when none is configured.
const DefaultQueueDepth = 256

// shardBatch is one queue message, in one of three shapes: a single flow
// (payload in single), a mixed-peer item batch (items), or a single-peer
// record batch (recs + peer — the dominant ingest shape, kept as plain
// records so SubmitBatch stages it with one bulk copy instead of a
// per-record struct fill). A non-nil pooled/pooledRecs returns the
// batch's backing slice to its pool once the worker has consumed it.
type shardBatch struct {
	single     shardItem
	items      []shardItem
	pooled     *[]shardItem
	recs       []flow.Record
	peer       eia.PeerAS
	pooledRecs *[]flow.Record
}

// itemSlicePool and recSlicePool recycle batch staging slices between
// Submit*Batch calls and the workers that drain them, keeping the
// steady-state batch path allocation-free.
var (
	itemSlicePool = sync.Pool{New: func() any { return new([]shardItem) }}
	recSlicePool  = sync.Pool{New: func() any { return new([]flow.Record) }}
)

// ErrEngineClosed is returned by Submit after Close.
var ErrEngineClosed = errors.New("analysis: parallel engine closed")

// ParallelEngine is the sharded, concurrency-safe Enhanced-InFilter
// pipeline: the N-shard queue-driven case of the shared pipeline core. It
// partitions work by peer AS across Shards workers; the EIA store is the
// shared copy-on-write snapshot store (Check is a lock-free read,
// promotions go through its single writer), the NNS detector is shared
// read-only (Assess is safe for concurrent use after training), and each
// shard owns a private scan analyzer and stats block so the hot path
// takes no global locks.
//
// Submit and Stats are safe for concurrent use. SetAlertSink and SetClock
// must be called before the first Submit; the installed alert sink is
// invoked from worker goroutines and must itself be concurrency-safe.
type ParallelEngine struct {
	c *core

	submitted atomic.Int64
	processed atomic.Int64

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// NewParallelEngine assembles a sharded engine from pre-trained
// components and starts its workers. detector may be nil only in
// ModeBasic. The set is adopted by an eia.Store and must not be mutated
// directly afterwards.
func NewParallelEngine(cfg ParallelConfig, set *eia.Set, detector *nns.Detector) (*ParallelEngine, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	c, err := newCore(cfg.Config, set, detector, cfg.Shards, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	e := &ParallelEngine{c: c}
	for i, s := range c.shards {
		s.queue = make(chan shardBatch, cfg.QueueDepth)
		if cfg.Metrics != nil {
			q := s.queue
			cfg.Metrics.registerQueueGauge(i, func() int64 { return int64(len(q)) })
		}
	}
	for _, s := range c.shards {
		e.wg.Add(1)
		go e.worker(s)
	}
	return e, nil
}

// TrainParallel builds a fully-trained sharded engine from labeled normal
// traffic, the way Train does for the serial Engine.
func TrainParallel(cfg ParallelConfig, normal []LabeledRecord) (*ParallelEngine, error) {
	set, detector, err := trainComponents(cfg.Config, normal)
	if err != nil {
		return nil, err
	}
	return NewParallelEngine(cfg, set, detector)
}

// SetAlertSink installs a callback receiving an IDMEF alert per detected
// attack. It must be called before the first Submit; the callback runs on
// worker goroutines and must be safe for concurrent use.
func (e *ParallelEngine) SetAlertSink(fn func(idmef.Alert)) { e.c.alertFn = fn }

// SetClock overrides the engine's clock (tests and replay). It must be
// called before the first Submit; the clock is read concurrently by every
// worker and must be safe for concurrent use.
func (e *ParallelEngine) SetClock(now func() time.Time) { e.c.setClock(now) }

// EIASet exposes the engine's shared EIA snapshot store (monitoring,
// tests, checkpointing).
func (e *ParallelEngine) EIASet() *eia.Store { return e.c.store }

// Detector exposes the engine's trained NNS detector (nil in ModeBasic).
func (e *ParallelEngine) Detector() *nns.Detector { return e.c.detector }

// TTLProfile exposes the engine's shared TTL-profile table for
// monitoring and checkpointing; nil when the stage is disabled.
func (e *ParallelEngine) TTLProfile() *scan.TTLProfile { return e.c.ttl }

// Shards returns the number of worker shards.
func (e *ParallelEngine) Shards() int { return len(e.c.shards) }

// shardFor routes a peer AS to its worker.
func (e *ParallelEngine) shardFor(peer eia.PeerAS) *shard {
	return e.c.shards[int(peer)%len(e.c.shards)]
}

// Submit enqueues one flow for its peer's shard, blocking while the
// shard's queue is full (backpressure). It returns ErrEngineClosed after
// Close.
func (e *ParallelEngine) Submit(peer eia.PeerAS, rec flow.Record) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.submitted.Add(1)
	e.enqueue(e.shardFor(peer), shardBatch{single: shardItem{peer: peer, rec: rec}})
	return nil
}

// SubmitBatch enqueues a batch of flows that all entered through peer —
// the shape one ingest reader hands over, since a local port maps to one
// peering link. The whole batch lands on peer's shard as one queue
// message and is classified against one EIA snapshot; per-peer flow order
// is the batch order. Blocks under backpressure like Submit.
func (e *ParallelEngine) SubmitBatch(peer eia.PeerAS, recs []flow.Record) error {
	if len(recs) == 0 {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.submitted.Add(int64(len(recs)))
	p := recSlicePool.Get().(*[]flow.Record)
	staged := append((*p)[:0], recs...) // one bulk copy; caller keeps recs
	*p = staged
	e.enqueue(e.shardFor(peer), shardBatch{recs: staged, peer: peer, pooledRecs: p})
	return nil
}

// SubmitLabeledBatch fans a mixed-peer batch out to the shards in one
// pass: each shard receives the sub-batch of records routed to it,
// preserving the input order within every peer (fanOut). Sub-batches are
// enqueued in shard order; flows for different peers in one call carry no
// cross-peer ordering guarantee, exactly as with concurrent Submits.
func (e *ParallelEngine) SubmitLabeledBatch(batch []LabeledRecord) error {
	if len(batch) == 0 {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.submitted.Add(int64(len(batch)))
	sub := fanOut(batch, make([][]shardItem, len(e.c.shards)))
	for i, items := range sub {
		if len(items) == 0 {
			continue
		}
		e.enqueue(e.c.shards[i], shardBatch{items: items})
	}
	return nil
}

// fanOut partitions a labeled batch into per-shard sub-batches, appending
// each record to sub[peer mod len(sub)] in input order. The result is a
// partition of the input — no record duplicated, dropped, or reordered
// relative to other records of the same peer. sub's existing contents are
// preserved (callers pass emptied scratch slices to reuse capacity).
func fanOut(batch []LabeledRecord, sub [][]shardItem) [][]shardItem {
	n := len(sub)
	for _, lr := range batch {
		i := int(lr.Peer) % n
		sub[i] = append(sub[i], shardItem{peer: lr.Peer, rec: lr.Record})
	}
	return sub
}

// enqueue places one message on s's queue, counting (then waiting out)
// backpressure when the queue is full.
func (e *ParallelEngine) enqueue(s *shard, sb shardBatch) {
	select {
	case s.queue <- sb:
	default:
		// Full queue: count the backpressure event, then block as before.
		s.blocks.Inc() // nil-safe
		s.queue <- sb
	}
}

func (e *ParallelEngine) worker(s *shard) {
	defer e.wg.Done()
	for sb := range s.queue {
		switch {
		case sb.recs != nil:
			n := int64(len(sb.recs))
			e.c.processPeerBatch(s, sb.peer, sb.recs)
			if sb.pooledRecs != nil {
				*sb.pooledRecs = (*sb.pooledRecs)[:0]
				recSlicePool.Put(sb.pooledRecs)
			}
			e.processed.Add(n)
		case sb.items != nil:
			n := int64(len(sb.items))
			e.c.processBatch(s, sb.items)
			if sb.pooled != nil {
				*sb.pooled = (*sb.pooled)[:0]
				itemSlicePool.Put(sb.pooled)
			}
			e.processed.Add(n)
		default:
			e.c.process(s, sb.single.peer, sb.single.rec)
			e.processed.Add(1)
		}
	}
}

// Stats returns the engine counters merged across shards. It may be called
// concurrently with Submit; the snapshot is consistent per shard.
func (e *ParallelEngine) Stats() Stats { return e.c.mergedStats() }

// Flush blocks until every flow submitted before the call has been
// processed. It is a drain barrier for tests and benchmarks; it does not
// stop the engine.
func (e *ParallelEngine) Flush() {
	target := e.submitted.Load()
	for e.processed.Load() < target {
		time.Sleep(50 * time.Microsecond)
	}
}

// Close drains the shard queues, waits for every worker to exit and
// releases the engine. Subsequent Submits return ErrEngineClosed; Close is
// idempotent. Flows already queued are fully processed (graceful drain),
// so counters and alerts for them are emitted before Close returns.
func (e *ParallelEngine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	for _, s := range e.c.shards {
		close(s.queue)
	}
	e.wg.Wait()
	return nil
}
