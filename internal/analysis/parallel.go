package analysis

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/nns"
	"infilter/internal/scan"
	"infilter/internal/telemetry"
)

// ParallelConfig assembles a ParallelEngine.
type ParallelConfig struct {
	// Config carries the pipeline settings shared with the serial Engine.
	Config
	// Shards is the number of worker shards. Flows are routed by peer AS
	// (shard = peer mod Shards), so every ingress keeps FIFO order and one
	// peer's flows never race each other — the per-peer-AS EIA semantics of
	// §3 carry over shard boundaries unchanged. Zero defaults to
	// runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth bounds each shard's ingest queue. Submit blocks once a
	// shard's queue is full, pushing backpressure onto the producer (for
	// infilterd, the UDP receive loops; the kernel sheds load beyond
	// that). Zero defaults to DefaultQueueDepth.
	QueueDepth int
	// Metrics instruments the engine (nil: no telemetry). It must have
	// been built with NewPipelineMetrics for the same shard count this
	// config resolves to, and belongs to exactly one engine.
	Metrics *PipelineMetrics
}

// DefaultQueueDepth is the per-shard queue bound when none is configured.
const DefaultQueueDepth = 256

// ErrEngineClosed is returned by Submit after Close.
var ErrEngineClosed = errors.New("analysis: parallel engine closed")

type shardItem struct {
	peer eia.PeerAS
	rec  flow.Record
}

// shard is one worker's private state: its queue, its own Scan Analysis
// buffer (suspect interleaving is per-shard, matching the per-ingress
// deployment of the paper's prototype) and its own counters, merged only
// when Stats is read.
type shard struct {
	pl     pipeline
	queue  chan shardItem
	blocks *telemetry.Counter // Submits that found the queue full (nil ok)

	mu    sync.Mutex
	stats Stats
}

// ParallelEngine is the sharded, concurrency-safe Enhanced-InFilter
// pipeline. It partitions work by peer AS across Shards workers: the EIA
// set is shared behind an eia.ConcurrentSet (lookups take a read lock,
// promotions a write lock), the NNS detector is shared read-only (Assess
// is safe for concurrent use after training), and each shard owns a
// private scan analyzer and stats block so the hot path takes no global
// locks.
//
// Submit and Stats are safe for concurrent use. SetAlertSink and SetClock
// must be called before the first Submit; the installed alert sink is
// invoked from worker goroutines and must itself be concurrency-safe.
type ParallelEngine struct {
	cfg      ParallelConfig
	eiaSet   *eia.ConcurrentSet
	detector *nns.Detector
	shards   []*shard

	alertFn  func(idmef.Alert)
	alertSeq atomic.Int64
	now      func() time.Time

	submitted atomic.Int64
	processed atomic.Int64

	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup
}

// NewParallelEngine assembles a sharded engine from pre-trained
// components and starts its workers. detector may be nil only in
// ModeBasic. The set is wrapped in an eia.ConcurrentSet and must not be
// mutated directly afterwards.
func NewParallelEngine(cfg ParallelConfig, set *eia.Set, detector *nns.Detector) (*ParallelEngine, error) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeEnhanced
	}
	if set == nil {
		return nil, fmt.Errorf("analysis: nil EIA set")
	}
	if cfg.Mode == ModeEnhanced && detector == nil {
		return nil, fmt.Errorf("analysis: enhanced mode requires a trained NNS detector")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Metrics != nil && cfg.Metrics.Shards() != cfg.Shards {
		return nil, fmt.Errorf("analysis: metrics built for %d shards, engine has %d", cfg.Metrics.Shards(), cfg.Shards)
	}
	e := &ParallelEngine{
		cfg:      cfg,
		eiaSet:   eia.NewConcurrentSet(set),
		detector: detector,
		shards:   make([]*shard, cfg.Shards),
		now:      time.Now,
	}
	if cfg.Metrics != nil {
		e.eiaSet.SetMetrics(cfg.Metrics.eia)
	}
	for i := range e.shards {
		scanner := scan.New(cfg.Scan)
		s := &shard{
			pl: pipeline{
				mode:     cfg.Mode,
				eia:      e.eiaSet,
				scanner:  scanner,
				detector: detector,
			},
			queue: make(chan shardItem, cfg.QueueDepth),
			stats: Stats{ByStage: make(map[idmef.Stage]int)},
		}
		if cfg.Metrics != nil {
			scanner.SetMetrics(cfg.Metrics.scan)
			s.pl.metrics = &cfg.Metrics.shards[i]
			s.blocks = cfg.Metrics.shards[i].blocks
			q := s.queue
			cfg.Metrics.registerQueueGauge(i, func() int64 { return int64(len(q)) })
		}
		e.shards[i] = s
	}
	for _, s := range e.shards {
		e.wg.Add(1)
		go e.worker(s)
	}
	return e, nil
}

// TrainParallel builds a fully-trained sharded engine from labeled normal
// traffic, the way Train does for the serial Engine.
func TrainParallel(cfg ParallelConfig, normal []LabeledRecord) (*ParallelEngine, error) {
	serial, err := Train(cfg.Config, normal)
	if err != nil {
		return nil, err
	}
	return NewParallelEngine(cfg, serial.eiaSet, serial.pl.detector)
}

// SetAlertSink installs a callback receiving an IDMEF alert per detected
// attack. It must be called before the first Submit; the callback runs on
// worker goroutines and must be safe for concurrent use.
func (e *ParallelEngine) SetAlertSink(fn func(idmef.Alert)) { e.alertFn = fn }

// SetClock overrides the engine's clock (tests and replay). It must be
// called before the first Submit; the clock is read concurrently by every
// worker and must be safe for concurrent use.
func (e *ParallelEngine) SetClock(now func() time.Time) {
	if now != nil {
		e.now = now
	}
}

// EIASet exposes the engine's shared EIA state (monitoring, tests).
func (e *ParallelEngine) EIASet() *eia.ConcurrentSet { return e.eiaSet }

// Shards returns the number of worker shards.
func (e *ParallelEngine) Shards() int { return len(e.shards) }

// shardFor routes a peer AS to its worker.
func (e *ParallelEngine) shardFor(peer eia.PeerAS) *shard {
	return e.shards[int(peer)%len(e.shards)]
}

// Submit enqueues one flow for its peer's shard, blocking while the
// shard's queue is full (backpressure). It returns ErrEngineClosed after
// Close.
func (e *ParallelEngine) Submit(peer eia.PeerAS, rec flow.Record) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrEngineClosed
	}
	e.submitted.Add(1)
	s := e.shardFor(peer)
	it := shardItem{peer: peer, rec: rec}
	select {
	case s.queue <- it:
	default:
		// Full queue: count the backpressure event, then block as before.
		s.blocks.Inc() // nil-safe
		s.queue <- it
	}
	return nil
}

func (e *ParallelEngine) worker(s *shard) {
	defer e.wg.Done()
	for it := range s.queue {
		start := e.now()
		d, scanFlagged := s.pl.decide(it.peer, it.rec)
		d.Latency = e.now().Sub(start)

		s.mu.Lock()
		s.stats.record(d, scanFlagged)
		s.mu.Unlock()
		if d.Attack {
			e.emitAlert(it.peer, it.rec, d)
		}
		e.processed.Add(1)
	}
}

func (e *ParallelEngine) emitAlert(peer eia.PeerAS, rec flow.Record, d Decision) {
	if e.alertFn == nil {
		return
	}
	seq := e.alertSeq.Add(1)
	class := "spoofed-traffic/" + string(d.Stage)
	e.alertFn(idmef.NewAlert(
		"infilter-"+strconv.FormatInt(seq, 10),
		e.now(), d.Stage, int(peer), class, rec.Key, d.Assessment.Distance,
	))
}

// Stats returns the engine counters merged across shards. It may be called
// concurrently with Submit; the snapshot is consistent per shard.
func (e *ParallelEngine) Stats() Stats {
	out := Stats{ByStage: make(map[idmef.Stage]int)}
	for _, s := range e.shards {
		s.mu.Lock()
		out.merge(s.stats)
		s.mu.Unlock()
	}
	return out
}

// Flush blocks until every flow submitted before the call has been
// processed. It is a drain barrier for tests and benchmarks; it does not
// stop the engine.
func (e *ParallelEngine) Flush() {
	target := e.submitted.Load()
	for e.processed.Load() < target {
		time.Sleep(50 * time.Microsecond)
	}
}

// Close drains the shard queues, waits for every worker to exit and
// releases the engine. Subsequent Submits return ErrEngineClosed; Close is
// idempotent. Flows already queued are fully processed (graceful drain),
// so counters and alerts for them are emitted before Close returns.
func (e *ParallelEngine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	for _, s := range e.shards {
		close(s.queue)
	}
	e.wg.Wait()
	return nil
}
