package analysis

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/nns"
	"infilter/internal/scan"
	"infilter/internal/telemetry"
)

// core is the single pipeline implementation behind both engines: one
// decide path (pipeline.decide), one stats accounting, one alert emitter.
// Engine is a core with exactly one shard driven synchronously;
// ParallelEngine is a core with N shards driven from queues. Because the
// serial engine is the one-shard degenerate case of the same code, the
// serial/parallel equivalence property holds by construction — there is
// no second implementation to drift.
//
// Shared state is concurrency-safe by composition: the EIA store is a
// lock-free copy-on-write snapshot store, the NNS detector is read-only
// after training, and everything per-shard (scan buffer, stats block,
// stage histograms) is touched only by that shard's driver.
type core struct {
	cfg      Config
	store    *eia.Store
	detector *nns.Detector
	ttl      *scan.TTLProfile // shared across shards; nil unless enabled
	shards   []*shard

	alertFn  func(idmef.Alert)
	alertSeq atomic.Int64
	now      func() time.Time
}

type shardItem struct {
	peer eia.PeerAS
	rec  flow.Record
}

// shard is one driver's private state: its own Scan Analysis buffer
// (suspect interleaving is per-shard, matching the per-ingress deployment
// of the paper's prototype) and its own counters, merged only when Stats
// is read. The queue is set only on ParallelEngine shards; the serial
// Engine dispatches into its single shard directly.
type shard struct {
	pl     pipeline
	queue  chan shardBatch
	blocks *telemetry.Counter // Submits that found the queue full (nil ok)

	// Batch scratch, touched only by the shard's single driver: the
	// column views CheckBatch classifies (one snapshot load per batch)
	// and, on the serial engine, the staging slice ProcessBatch fills.
	items    []shardItem
	peers    []eia.PeerAS
	srcs     []netaddr.Addr
	verdicts []eia.Verdict

	mu    sync.Mutex
	stats Stats
}

// newCore assembles the shared engine substrate: it validates the
// configuration, wraps the EIA set in a copy-on-write snapshot store and
// builds the per-shard pipelines. detector may be nil only in ModeBasic.
// The set must not be mutated directly afterwards (the store adopts it).
func newCore(cfg Config, set *eia.Set, detector *nns.Detector, shards int, metrics *PipelineMetrics) (*core, error) {
	if cfg.Mode == 0 {
		cfg.Mode = ModeEnhanced
	}
	if set == nil {
		return nil, fmt.Errorf("analysis: nil EIA set")
	}
	if cfg.Mode == ModeEnhanced && detector == nil {
		return nil, fmt.Errorf("analysis: enhanced mode requires a trained NNS detector")
	}
	if metrics != nil && metrics.Shards() != shards {
		return nil, fmt.Errorf("analysis: metrics built for %d shards, engine has %d", metrics.Shards(), shards)
	}
	c := &core{
		cfg:      cfg,
		store:    eia.NewStore(set),
		detector: detector,
		shards:   make([]*shard, shards),
		now:      time.Now,
	}
	if metrics != nil {
		c.store.SetMetrics(metrics.eia)
	}
	if cfg.Mode == ModeEnhanced {
		// One profile table for the whole engine: TTL expectations must
		// aggregate a source's flows across shards (the table is
		// stripe-locked), unlike the per-shard scan buffers.
		c.ttl = scan.NewTTLProfile(cfg.TTL) // nil unless enabled
	}
	if metrics != nil && c.ttl != nil {
		c.ttl.SetMetrics(metrics.ttl)
		metrics.registerTTLSourcesGauge(c.ttl)
	}
	for i := range c.shards {
		scanner := scan.New(cfg.Scan)
		var hh *scan.HeavyHitter
		if cfg.Mode == ModeEnhanced {
			hh = scan.NewHeavyHitter(cfg.HeavyHitter) // nil unless enabled
		}
		s := &shard{
			pl: pipeline{
				mode:     cfg.Mode,
				eia:      c.store,
				hh:       hh,
				scanner:  scanner,
				detector: detector,
				ttl:      c.ttl,
				promote:  cfg.PromotionFilter,
			},
			stats: Stats{ByStage: make(map[idmef.Stage]int)},
		}
		if metrics != nil {
			scanner.SetMetrics(metrics.scan)
			hh.SetMetrics(metrics.hh)
			s.pl.metrics = &metrics.shards[i]
			s.blocks = metrics.shards[i].blocks
		}
		c.shards[i] = s
	}
	return c, nil
}

// process runs one flow through shard s: decide, fold the outcome into
// the shard's counters, emit the alert. This is the one normal-processing
// implementation both engines execute.
func (c *core) process(s *shard, peer eia.PeerAS, rec flow.Record) Decision {
	start := c.now()
	d, scanFlagged := s.pl.decide(peer, rec)
	d.Latency = c.now().Sub(start)

	s.mu.Lock()
	s.stats.record(d, scanFlagged)
	s.mu.Unlock()
	if d.Attack {
		c.emitAlert(peer, rec, d)
	}
	return d
}

// processBatch runs a batch of flows through shard s, observationally
// identical to calling process on each item in order. The EIA stage is
// amortized: one CheckBatch classifies the whole batch against a single
// published snapshot (one atomic load, one trie-walk setup), with the
// measured stage cost attributed evenly across the batch so per-record
// stage telemetry keeps its one-observation-per-flow invariant. When a
// record's decision completes a promotion — publishing a new snapshot —
// the still-unconsumed tail is re-classified against it, so a batch never
// reports staler verdicts than the per-record path would. Hit/miss
// counters fold in at consumption time (CountVerdict), once per record,
// tail re-checks notwithstanding. Stats are accumulated locally and
// merged under one lock per batch.
func (c *core) processBatch(s *shard, items []shardItem) {
	n := len(items)
	if n == 0 {
		return
	}
	if cap(s.peers) < n {
		s.peers = make([]eia.PeerAS, n)
		s.srcs = make([]netaddr.Addr, n)
		s.verdicts = make([]eia.Verdict, n)
	}
	peers, srcs, verdicts := s.peers[:n], s.srcs[:n], s.verdicts[:n]
	for i := range items {
		peers[i] = items[i].peer
		srcs[i] = items[i].rec.Key.Src
	}
	m := s.pl.metrics
	var t time.Time
	if m != nil {
		t = time.Now()
	}
	c.store.CheckBatch(peers, srcs, verdicts)
	var eiaShare time.Duration
	if m != nil {
		eiaShare = time.Since(t) / time.Duration(n)
	}

	batch := Stats{ByStage: make(map[idmef.Stage]int)}
	var tally verdictTally
	for i := range items {
		if m != nil {
			m.flows.Inc()
			m.observeStage(stageEIA, eiaShare)
		}
		tally.add(srcs[i], verdicts[i])
		// No per-record Decision.Latency on the batch path: the decision is
		// not returned to any caller here, and stage telemetry already gets
		// its per-flow observations (amortized for EIA, direct for scan/NNS
		// inside decideVerdict), so two clock reads per record would buy
		// nothing and dominate the cheap legal-flow case.
		d, scanFlagged := s.pl.decideVerdict(items[i].peer, &items[i].rec, verdicts[i])
		batch.record(d, scanFlagged)
		if d.Attack {
			c.emitAlert(items[i].peer, items[i].rec, d)
		}
		if d.Promoted && i+1 < n {
			c.store.CheckBatch(peers[i+1:], srcs[i+1:], verdicts[i+1:])
		}
	}
	tally.settle(c.store)
	s.mu.Lock()
	s.stats.merge(batch)
	s.mu.Unlock()
}

// processPeerBatch is processBatch for the dominant ingest shape: a
// whole batch of records observed at one peer (the batch one reader
// socket hands over). It skips the per-item staging processBatch needs
// for mixed-peer input — no shardItem conversion, only the source-column
// fill — and classifies through CheckBatchPeer. Observationally
// identical to calling process(s, peer, rec) on each record in order.
func (c *core) processPeerBatch(s *shard, peer eia.PeerAS, recs []flow.Record) {
	n := len(recs)
	if n == 0 {
		return
	}
	if cap(s.srcs) < n {
		s.peers = make([]eia.PeerAS, n)
		s.srcs = make([]netaddr.Addr, n)
		s.verdicts = make([]eia.Verdict, n)
	}
	srcs, verdicts := s.srcs[:n], s.verdicts[:n]
	for i := range recs {
		srcs[i] = recs[i].Key.Src
	}
	m := s.pl.metrics
	var t time.Time
	if m != nil {
		t = time.Now()
	}
	c.store.CheckBatchPeer(peer, srcs, verdicts)
	var eiaShare time.Duration
	if m != nil {
		eiaShare = time.Since(t) / time.Duration(n)
	}

	batch := Stats{ByStage: make(map[idmef.Stage]int)}
	var tally verdictTally
	for i := range recs {
		if m != nil {
			m.flows.Inc()
			m.observeStage(stageEIA, eiaShare)
		}
		tally.add(srcs[i], verdicts[i])
		d, scanFlagged := s.pl.decideVerdict(peer, &recs[i], verdicts[i])
		batch.record(d, scanFlagged)
		if d.Attack {
			c.emitAlert(peer, recs[i], d)
		}
		if d.Promoted && i+1 < n {
			c.store.CheckBatchPeer(peer, srcs[i+1:], verdicts[i+1:])
		}
	}
	tally.settle(c.store)
	s.mu.Lock()
	s.stats.merge(batch)
	s.mu.Unlock()
}

// verdictTally accumulates a batch's consumed verdicts per address
// family, so the hit/miss settle stays a handful of atomic adds per
// batch (now at most four) instead of one per record.
type verdictTally struct {
	hits, misses [2]int64 // indexed 0=v4, 1=v6
}

func (t *verdictTally) add(src netaddr.Addr, v eia.Verdict) {
	f := 0
	if src.Is6() {
		f = 1
	}
	if v == eia.Match {
		t.hits[f]++
	} else {
		t.misses[f]++
	}
}

func (t *verdictTally) settle(store *eia.Store) {
	store.AddVerdictCounts(netaddr.FamilyV4, t.hits[0], t.misses[0])
	store.AddVerdictCounts(netaddr.FamilyV6, t.hits[1], t.misses[1])
}

func (c *core) emitAlert(peer eia.PeerAS, rec flow.Record, d Decision) {
	if c.alertFn == nil {
		return
	}
	seq := c.alertSeq.Add(1)
	class := "spoofed-traffic/" + string(d.Stage)
	c.alertFn(idmef.NewAlert(
		"infilter-"+strconv.FormatInt(seq, 10),
		c.now(), d.Stage, int(peer), class, rec.Key, d.Assessment.Distance,
	))
}

// mergedStats returns the counters merged across shards. It may run
// concurrently with processing; the snapshot is consistent per shard.
func (c *core) mergedStats() Stats {
	out := Stats{ByStage: make(map[idmef.Stage]int)}
	for _, s := range c.shards {
		s.mu.Lock()
		out.merge(s.stats)
		s.mu.Unlock()
	}
	return out
}

func (c *core) setClock(now func() time.Time) {
	if now != nil {
		c.now = now
	}
}

// trainComponents builds the trained state both engines start from:
// EIA sets initialized from the observed (source, peer) pairs (§5.1.3(a))
// and, in enhanced mode, the partitioned and indexed normal cluster for
// NNS (§5.1.3(b-d)).
func trainComponents(cfg Config, normal []LabeledRecord) (*eia.Set, *nns.Detector, error) {
	if len(normal) == 0 {
		return nil, nil, fmt.Errorf("analysis: empty training set")
	}
	if cfg.Mode == 0 {
		cfg.Mode = ModeEnhanced
	}
	set := eia.NewSet(cfg.EIA)
	obs := make([]eia.TrainingSource, len(normal))
	recs := make([]flow.Record, len(normal))
	for i, lr := range normal {
		obs[i] = eia.TrainingSource{Peer: lr.Peer, Src: lr.Record.Key.Src}
		recs[i] = lr.Record
	}
	set.Train(obs, 0)

	var detector *nns.Detector
	if cfg.Mode == ModeEnhanced {
		var err error
		detector, err = nns.Train(cfg.NNS, recs)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: train NNS: %w", err)
		}
	}
	return set, detector, nil
}
