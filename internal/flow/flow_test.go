package flow

import (
	"testing"
	"time"

	"infilter/internal/netaddr"
)

func key(proto uint8, dstPort uint16) Key {
	return Key{
		Src:     netaddr.MustParseAddr("10.0.0.1"),
		Dst:     netaddr.MustParseAddr("192.0.2.1"),
		Proto:   proto,
		SrcPort: 40000,
		DstPort: dstPort,
	}
}

func TestClassify(t *testing.T) {
	tests := []struct {
		name string
		k    Key
		want Subcluster
	}{
		{"http", key(ProtoTCP, 80), ClusterHTTP},
		{"smtp", key(ProtoTCP, 25), ClusterSMTP},
		{"ftp", key(ProtoTCP, 21), ClusterFTP},
		{"tcp other", key(ProtoTCP, 443), ClusterTCP},
		{"tcp high port", key(ProtoTCP, 54321), ClusterTCP},
		{"dns", key(ProtoUDP, 53), ClusterDNS},
		{"udp other", key(ProtoUDP, 1434), ClusterUDP},
		{"icmp", key(ProtoICMP, 0), ClusterICMP},
		{"gre", key(47, 0), ClusterOther},
	}
	for _, tt := range tests {
		if got := Classify(tt.k); got != tt.want {
			t.Errorf("%s: Classify = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestClassifyIgnoresSrcPort(t *testing.T) {
	// HTTP responses travel src-port 80; the subcluster partition keys on
	// destination port only, like the paper's service clusters.
	k := key(ProtoTCP, 40000)
	k.SrcPort = 80
	if got := Classify(k); got != ClusterTCP {
		t.Errorf("Classify = %v, want tcp", got)
	}
}

func TestSubclusterNames(t *testing.T) {
	want := map[Subcluster]string{
		ClusterHTTP: "http", ClusterSMTP: "smtp", ClusterFTP: "ftp",
		ClusterDNS: "dns", ClusterUDP: "udp", ClusterTCP: "tcp",
		ClusterICMP: "icmp", ClusterOther: "other",
	}
	for c, n := range want {
		if c.String() != n {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), n)
		}
	}
	if got := Subcluster(99).String(); got != "subcluster(99)" {
		t.Errorf("unknown subcluster String() = %q", got)
	}
	if len(Subclusters()) != NumSubclusters {
		t.Errorf("Subclusters() has %d entries, want %d", len(Subclusters()), NumSubclusters)
	}
}

func TestRecordDurationAndRates(t *testing.T) {
	start := time.Date(2005, 4, 1, 12, 0, 0, 0, time.UTC)
	r := Record{
		Key:     key(ProtoTCP, 80),
		Packets: 100,
		Bytes:   150000,
		Start:   start,
		End:     start.Add(2 * time.Second),
	}
	if got := r.Duration(); got != 2*time.Second {
		t.Errorf("Duration = %v", got)
	}
	if got := r.BitRate(); got != 8*150000/2.0 {
		t.Errorf("BitRate = %v, want %v", got, 8*150000/2.0)
	}
	if got := r.PacketRate(); got != 50 {
		t.Errorf("PacketRate = %v, want 50", got)
	}
}

func TestRecordSinglePacketRates(t *testing.T) {
	start := time.Date(2005, 4, 1, 12, 0, 0, 0, time.UTC)
	r := Record{Key: key(ProtoUDP, 1434), Packets: 1, Bytes: 404, Start: start, End: start}
	if got := r.Duration(); got != 0 {
		t.Errorf("Duration = %v, want 0", got)
	}
	// Zero-duration flows clamp to 1ms so rates stay finite.
	if got := r.BitRate(); got != 8*404/0.001 {
		t.Errorf("BitRate = %v", got)
	}
	if got := r.PacketRate(); got != 1/0.001 {
		t.Errorf("PacketRate = %v", got)
	}
}

func TestRecordNegativeDurationClamped(t *testing.T) {
	start := time.Date(2005, 4, 1, 12, 0, 0, 0, time.UTC)
	r := Record{Packets: 1, Bytes: 40, Start: start, End: start.Add(-time.Second)}
	if got := r.Duration(); got != 0 {
		t.Errorf("Duration = %v, want 0 for end<start", got)
	}
}

func TestStatsOf(t *testing.T) {
	start := time.Date(2005, 4, 1, 12, 0, 0, 0, time.UTC)
	r := Record{
		Key:     key(ProtoTCP, 80),
		Packets: 10,
		Bytes:   5000,
		Start:   start,
		End:     start.Add(500 * time.Millisecond),
	}
	s := StatsOf(r)
	if s.Bytes != 5000 || s.Packets != 10 || s.DurationMS != 500 {
		t.Errorf("StatsOf = %+v", s)
	}
	if s.BitRate != 8*5000/0.5 {
		t.Errorf("BitRate = %v", s.BitRate)
	}
	v := s.Vector()
	if v[0] != s.Bytes || v[4] != s.PacketRate {
		t.Errorf("Vector order wrong: %v vs %+v", v, s)
	}
}

func TestKeyString(t *testing.T) {
	k := key(ProtoTCP, 80)
	got := k.String()
	want := "10.0.0.1:40000->192.0.2.1:80 proto=6 tos=0 if=0"
	if got != want {
		t.Errorf("Key.String() = %q, want %q", got, want)
	}
}
