// Package flow defines the traffic-flow model shared by the NetFlow codec,
// the Dagflow replay engine and the analysis pipeline. A flow is a
// unidirectional sequence of packets identified by the NetFlow v5 key fields
// (paper Figure 10) with the per-flow statistics the prototype consumes
// (§5.1.2): byte count, packet count, duration, bit rate and packet rate.
package flow

import (
	"fmt"
	"time"

	"infilter/internal/netaddr"
)

// IP protocol numbers used throughout the testbed.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// Well-known ports driving the subcluster partition (§5.1.3(c)).
const (
	PortFTP  = 21
	PortSMTP = 25
	PortDNS  = 53
	PortHTTP = 80
)

// Key identifies a flow: the seven NetFlow v5 key fields of Figure 10,
// with the addresses widened to either family. Key stays comparable, so
// maps and == work unchanged; the family tag inside netaddr.Addr keeps a
// v4 flow distinct from its 4-in-6 shadow.
type Key struct {
	Src     netaddr.Addr
	Dst     netaddr.Addr
	Proto   uint8
	SrcPort uint16
	DstPort uint16
	TOS     uint8
	InputIf uint16
}

// Family returns the flow's address family (the source address family;
// decoders never mix families within one record).
func (k Key) Family() netaddr.Family { return k.Src.Family() }

// String renders the key compactly for logs and alerts.
func (k Key) String() string {
	return fmt.Sprintf("%s:%d->%s:%d proto=%d tos=%d if=%d",
		k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto, k.TOS, k.InputIf)
}

// Record is a finished flow: key, traffic counters and timing, plus the
// routing context a border router's NetFlow export carries (source/dest AS).
type Record struct {
	Key     Key
	Packets uint32
	Bytes   uint32
	Start   time.Time
	End     time.Time
	SrcAS   uint16
	DstAS   uint16
	SrcMask uint8
	DstMask uint8
	TCPFlag uint8
	// FlowLabel is the IPv6 flow label (flowLabelIPv6, IE 31); zero for
	// v4 flows and for v6 exports that do not carry the IE.
	FlowLabel uint32
	// TTL is the minimum IP time-to-live observed across the flow's
	// packets (minimumTTL, IE 52; ipTTL, IE 192). Zero means the export
	// carried no TTL information (v5, TTL-less templates) — the TTL
	// profile detector skips such flows.
	TTL uint8
}

// Duration returns the flow's active duration. Flows whose start and end
// coincide (single-packet flows) have zero duration.
func (r Record) Duration() time.Duration {
	d := r.End.Sub(r.Start)
	if d < 0 {
		return 0
	}
	return d
}

// BitRate returns the flow's average bit rate in bits/second. Single-packet
// and zero-duration flows report their full size over one millisecond so
// rate-based features stay finite, matching flow-tools behavior of clamping
// the denominator.
func (r Record) BitRate() float64 {
	return 8 * float64(r.Bytes) / r.clampedSeconds()
}

// PacketRate returns the flow's average packet rate in packets/second.
func (r Record) PacketRate() float64 {
	return float64(r.Packets) / r.clampedSeconds()
}

func (r Record) clampedSeconds() float64 {
	s := r.Duration().Seconds()
	if s < 0.001 {
		return 0.001
	}
	return s
}

// Subcluster is the protocol-specific cluster a flow belongs to for NNS
// analysis (§5.1.3(c)): well-known services get their own clusters, the
// rest fall into per-transport catch-alls.
type Subcluster int

// Subclusters in the order the paper lists them.
const (
	ClusterHTTP Subcluster = iota + 1
	ClusterSMTP
	ClusterFTP
	ClusterDNS
	ClusterUDP
	ClusterTCP
	ClusterICMP
	ClusterOther
)

// NumSubclusters is the count of defined subclusters.
const NumSubclusters = 8

var clusterNames = map[Subcluster]string{
	ClusterHTTP:  "http",
	ClusterSMTP:  "smtp",
	ClusterFTP:   "ftp",
	ClusterDNS:   "dns",
	ClusterUDP:   "udp",
	ClusterTCP:   "tcp",
	ClusterICMP:  "icmp",
	ClusterOther: "other",
}

// String returns the subcluster's short name.
func (c Subcluster) String() string {
	if n, ok := clusterNames[c]; ok {
		return n
	}
	return fmt.Sprintf("subcluster(%d)", int(c))
}

// Subclusters returns all subclusters in a stable order.
func Subclusters() []Subcluster {
	return []Subcluster{
		ClusterHTTP, ClusterSMTP, ClusterFTP, ClusterDNS,
		ClusterUDP, ClusterTCP, ClusterICMP, ClusterOther,
	}
}

// Classify assigns a flow key to its subcluster.
func Classify(k Key) Subcluster {
	switch k.Proto {
	case ProtoTCP:
		switch k.DstPort {
		case PortHTTP:
			return ClusterHTTP
		case PortSMTP:
			return ClusterSMTP
		case PortFTP:
			return ClusterFTP
		default:
			return ClusterTCP
		}
	case ProtoUDP:
		if k.DstPort == PortDNS {
			return ClusterDNS
		}
		return ClusterUDP
	case ProtoICMP:
		return ClusterICMP
	default:
		return ClusterOther
	}
}

// Stats extracts the five per-flow statistics the analysis modules consume,
// in the order the paper lists them in §5.1.2.
type Stats struct {
	Bytes      float64
	Packets    float64
	DurationMS float64
	BitRate    float64
	PacketRate float64
}

// StatsOf computes the statistic vector for a record.
func StatsOf(r Record) Stats {
	return Stats{
		Bytes:      float64(r.Bytes),
		Packets:    float64(r.Packets),
		DurationMS: float64(r.Duration().Milliseconds()),
		BitRate:    r.BitRate(),
		PacketRate: r.PacketRate(),
	}
}

// Vector returns the statistics as a fixed-order slice, for encoders that
// iterate over dimensions.
func (s Stats) Vector() [5]float64 {
	return [5]float64{s.Bytes, s.Packets, s.DurationMS, s.BitRate, s.PacketRate}
}

// NumStats is the number of per-flow statistics (dimensions before unary
// encoding).
const NumStats = 5
