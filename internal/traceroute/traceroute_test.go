package traceroute

import (
	"testing"
	"time"

	"infilter/internal/netaddr"
	"infilter/internal/topo"
)

func hop(addr string, fqdn string) topo.Hop {
	return topo.Hop{Addr: netaddr.MustParseAddr(addr), FQDN: fqdn}
}

func TestEqualityLevels(t *testing.T) {
	a := LastHop{Peer: hop("10.0.0.1", "peer.example.net"), BR: hop("10.0.0.2", "br.example.net")}
	sameRaw := a
	sameSubnet := LastHop{Peer: hop("10.0.0.5", "peer.example.net"), BR: hop("10.0.0.6", "br.example.net")}
	crossSubnet := LastHop{Peer: hop("10.0.1.5", "peer.example.net"), BR: hop("10.0.1.6", "br.example.net")}
	otherRouter := LastHop{Peer: hop("10.9.0.1", "other.example.net"), BR: hop("10.9.0.2", "br2.example.net")}

	if !RawEqual(a, sameRaw) || !SubnetEqual(a, sameRaw) || !FQDNEqual(a, sameRaw) {
		t.Error("identical hops must match at all levels")
	}
	// Redundant link in the same /24: raw differs, subnet and FQDN match.
	if RawEqual(a, sameSubnet) {
		t.Error("different interfaces matched raw")
	}
	if !SubnetEqual(a, sameSubnet) || !FQDNEqual(a, sameSubnet) {
		t.Error("same-subnet pair must match aggregated levels")
	}
	// Redundant link across subnets: only FQDN smoothing matches.
	if SubnetEqual(a, crossSubnet) {
		t.Error("cross-subnet pair matched subnet level")
	}
	if !FQDNEqual(a, crossSubnet) {
		t.Error("cross-subnet pair must match FQDN level")
	}
	// A true routing change: nothing matches.
	if RawEqual(a, otherRouter) || SubnetEqual(a, otherRouter) || FQDNEqual(a, otherRouter) {
		t.Error("distinct routers matched")
	}
}

func TestRunValidation(t *testing.T) {
	n := topo.New(topo.Config{Seed: 1})
	if _, err := Run(n, CampaignConfig{}); err == nil {
		t.Error("zero period: want error")
	}
	if _, err := Run(n, CampaignConfig{Period: time.Hour, Duration: time.Minute}); err == nil {
		t.Error("duration < period: want error")
	}
}

// TestCampaign24h reproduces the §3.1.1 24-hour run shape: ~10k samples,
// raw change a few percent, aggregated change an order of magnitude lower.
func TestCampaign24h(t *testing.T) {
	n := topo.New(topo.Config{Seed: 42})
	res, err := Run(n, CampaignConfig{
		Period:         30 * time.Minute,
		Duration:       24 * time.Hour,
		CompletionRate: 0.95,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 24 sites × 20 targets × 49 rounds × 95% ≈ 22,000... the paper's 10k
	// comes from partial completion; we just need the same order.
	if res.Samples < 5000 {
		t.Fatalf("only %d samples", res.Samples)
	}
	raw, agg := res.RawChangePct(), res.FQDNChangePct()
	if raw < 1 || raw > 15 {
		t.Errorf("raw change %.2f%%, want a few percent", raw)
	}
	if agg > 2 {
		t.Errorf("aggregated change %.2f%%, want well under raw", agg)
	}
	if agg >= raw {
		t.Errorf("aggregation did not reduce change rate: %.2f%% vs %.2f%%", agg, raw)
	}
	sub := res.SubnetChangePct()
	if sub > raw || sub < agg {
		t.Errorf("subnet smoothing %.2f%% not between raw %.2f%% and fqdn %.2f%%", sub, raw, agg)
	}
}

func TestCampaignCountsComparisons(t *testing.T) {
	n := topo.New(topo.Config{Seed: 9, Targets: 2, LGSites: 2})
	res, err := Run(n, CampaignConfig{Period: time.Hour, Duration: 5 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// 6 rounds × 4 pairs = 24 samples, 5 comparisons per pair = 20.
	if res.Samples != 24 {
		t.Errorf("samples = %d, want 24", res.Samples)
	}
	if res.Comparisons != 20 {
		t.Errorf("comparisons = %d, want 20", res.Comparisons)
	}
}

// TestHopStabilityFigure1 checks the Figure 1 asymmetry: transit hops
// churn at the IGP rate while the last AS-level hop's routers are nearly
// static.
func TestHopStabilityFigure1(t *testing.T) {
	n := topo.New(topo.Config{Seed: 13})
	rates := HopStability(n, 0, 0, 400)
	if len(rates) < 4 {
		t.Fatalf("only %d hops", len(rates))
	}
	transit := rates[0]
	lastHop := rates[len(rates)-1]
	if transit < 5 {
		t.Errorf("transit hop change %.1f%%, want visible IGP churn", transit)
	}
	if lastHop > 2 {
		t.Errorf("last hop change %.1f%%, want near-static", lastHop)
	}
	if lastHop >= transit {
		t.Errorf("no stability asymmetry: transit %.1f%% vs last %.1f%%", transit, lastHop)
	}
}

func TestHopStabilityTooFewSamples(t *testing.T) {
	n := topo.New(topo.Config{Seed: 13})
	if got := HopStability(n, 0, 0, 1); got != nil {
		t.Errorf("1 sample returned %v", got)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Samples: 10, Comparisons: 8, RawChanges: 2, SubnetChanges: 1, FQDNChanges: 0}
	s := r.String()
	if s == "" || r.RawChangePct() != 25 || r.FQDNChangePct() != 0 {
		t.Errorf("result %q rates %v/%v", s, r.RawChangePct(), r.FQDNChangePct())
	}
	var empty Result
	if empty.RawChangePct() != 0 {
		t.Error("empty result rate not 0")
	}
}
