// Package traceroute implements the paper's §3.1 hypothesis-validation
// methodology: periodic traceroutes from every Looking Glass site to every
// target network, last-hop extraction, and change counting at three
// aggregation levels — raw interface addresses, /24 subnets (smoothing
// same-subnet redundant links), and FQDNs (smoothing cross-subnet pairs).
package traceroute

import (
	"fmt"
	"math/rand"
	"time"

	"infilter/internal/netaddr"
	"infilter/internal/topo"
)

// LastHop is the peer-AS ↔ border-router adjacency extracted from one
// traceroute.
type LastHop struct {
	Peer topo.Hop
	BR   topo.Hop
}

// LastHopOf extracts the final AS-level hop from a path.
func LastHopOf(p topo.Path) LastHop {
	return LastHop{Peer: p.PeerHop(), BR: p.BRHop()}
}

// RawEqual reports whether the raw peer and BR interface addresses match.
func RawEqual(a, b LastHop) bool {
	return a.Peer.Addr == b.Peer.Addr && a.BR.Addr == b.BR.Addr
}

// SubnetEqual reports whether both hops match under /24 aggregation —
// the relaxation §3.1 applies to absorb redundant links in one subnet.
func SubnetEqual(a, b LastHop) bool {
	return subnet24(a.Peer.Addr) == subnet24(b.Peer.Addr) &&
		subnet24(a.BR.Addr) == subnet24(b.BR.Addr)
}

// FQDNEqual reports whether both hops resolve to the same router names —
// the final smoothing step of §3.1.
func FQDNEqual(a, b LastHop) bool {
	return a.Peer.FQDN == b.Peer.FQDN && a.BR.FQDN == b.BR.FQDN
}

// subnet24 masks a hop address to its routing subnet: /24 for v4 (the
// paper's relaxation) and the conventional /64 interface subnet for v6.
func subnet24(ip netaddr.Addr) netaddr.Prefix {
	if ip.Is6() {
		return netaddr.MustPrefix(ip, 64)
	}
	return netaddr.MustPrefix(ip, 24)
}

// CampaignConfig describes one measurement run.
type CampaignConfig struct {
	// Period between successive traceroutes per (site, target) pair.
	Period time.Duration
	// Duration of the run (24h for the first campaign, 4 days for the
	// second).
	Duration time.Duration
	// CompletionRate is the fraction of traceroutes that complete (the
	// paper lost some samples to timeouts); zero means all complete.
	CompletionRate float64
}

// Result aggregates a campaign's change statistics.
type Result struct {
	Samples       int // completed traceroute samples
	Comparisons   int // consecutive-sample comparisons
	RawChanges    int
	SubnetChanges int
	FQDNChanges   int
}

// RawChangePct is the fraction of comparisons whose raw last-hop changed.
func (r Result) RawChangePct() float64 { return pct(r.RawChanges, r.Comparisons) }

// SubnetChangePct is the change rate after /24 smoothing.
func (r Result) SubnetChangePct() float64 { return pct(r.SubnetChanges, r.Comparisons) }

// FQDNChangePct is the change rate after full aggregation.
func (r Result) FQDNChangePct() float64 { return pct(r.FQDNChanges, r.Comparisons) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// String summarizes the result in the style of §3.1.1.
func (r Result) String() string {
	return fmt.Sprintf("samples=%d raw=%.1f%% subnet=%.1f%% aggregated=%.1f%%",
		r.Samples, r.RawChangePct(), r.SubnetChangePct(), r.FQDNChangePct())
}

// HopStability samples one (site, target) pair repeatedly and returns the
// per-hop change rate (router identity, by FQDN) at every hop position —
// the data behind the paper's Figure 1 sketch: transit hops churn with the
// IGP while the last AS-level hop stays put.
func HopStability(n *topo.Network, site, tgt, samples int) []float64 {
	if samples < 2 {
		return nil
	}
	var prev topo.Path
	var changes []int
	for s := 0; s < samples; s++ {
		p := n.Traceroute(site, tgt)
		if changes == nil {
			changes = make([]int, len(p.Hops))
		}
		if s > 0 {
			for h := range p.Hops {
				if h < len(prev.Hops) && p.Hops[h].FQDN != prev.Hops[h].FQDN {
					changes[h]++
				}
			}
		}
		prev = p
	}
	out := make([]float64, len(changes))
	for h, c := range changes {
		out[h] = 100 * float64(c) / float64(samples-1)
	}
	return out
}

// Run executes the campaign over the network: every period, each Looking
// Glass site traceroutes each target; consecutive completed samples per
// pair are compared at the three aggregation levels.
func Run(n *topo.Network, cfg CampaignConfig) (Result, error) {
	if cfg.Period <= 0 || cfg.Duration < cfg.Period {
		return Result{}, fmt.Errorf("traceroute: bad campaign %v/%v", cfg.Period, cfg.Duration)
	}
	rounds := int(cfg.Duration/cfg.Period) + 1
	var (
		res  Result
		prev = make(map[[2]int]LastHop)
		// Completion sampling uses its own deterministic stream so it does
		// not perturb the topology's routing randomness.
		rng = rand.New(rand.NewSource(int64(n.LGSites())*1_000_003 + int64(n.Targets())))
	)
	for round := 0; round < rounds; round++ {
		for site := 0; site < n.LGSites(); site++ {
			for tgt := 0; tgt < n.Targets(); tgt++ {
				if cfg.CompletionRate > 0 && rng.Float64() > cfg.CompletionRate {
					continue // traceroute did not complete
				}
				lh := LastHopOf(n.Traceroute(site, tgt))
				res.Samples++
				key := [2]int{site, tgt}
				if p, ok := prev[key]; ok {
					res.Comparisons++
					if !RawEqual(p, lh) {
						res.RawChanges++
					}
					if !SubnetEqual(p, lh) {
						res.SubnetChanges++
					}
					if !FQDNEqual(p, lh) {
						res.FQDNChanges++
					}
				}
				prev[key] = lh
			}
		}
	}
	return res, nil
}
