package netaddr

import (
	"net/netip"
	"testing"
)

func TestParseAddrV6(t *testing.T) {
	tests := []struct {
		in      string
		want    string // canonical String(), "" means wantErr
		wantErr bool
	}{
		{in: "::", want: "::"},
		{in: "::1", want: "::1"},
		{in: "2001:db8::1", want: "2001:db8::1"},
		{in: "2001:0db8:0000:0000:0000:0000:0000:0001", want: "2001:db8::1"},
		{in: "fe80::", want: "fe80::"},
		{in: "2001:DB8::A", want: "2001:db8::a"},
		{in: "1:2:3:4:5:6:7:8", want: "1:2:3:4:5:6:7:8"},
		{in: "::ffff:192.0.2.1", want: "::ffff:192.0.2.1"},
		{in: "64:ff9b::198.51.100.7", want: "64:ff9b::c633:6407"},
		{in: "1:0:0:2:0:0:0:3", want: "1:0:0:2::3"},      // rightmost longer run wins
		{in: "1:0:0:2:0:0:3:4", want: "1::2:0:0:3:4"},    // leftmost on tie
		{in: "0:0:1:0:0:0:0:2", want: "0:0:1::2"},        // run of 4 beats run of 2
		{in: "1:2:3:4:5:6:7:0", want: "1:2:3:4:5:6:7:0"}, // single zero group not compressed
		{in: ":", wantErr: true},
		{in: ":::", wantErr: true},
		{in: "1::2::3", wantErr: true},
		{in: "1:2:3:4:5:6:7:8:9", wantErr: true},
		{in: "1:2:3:4:5:6:7", wantErr: true},
		{in: "12345::", wantErr: true},
		{in: "g::", wantErr: true},
		{in: "fe80::1%eth0", wantErr: true}, // zones rejected
		{in: "1:2:3:4:5:6:7:8::", wantErr: true},
		{in: "::1.2.3.4.5", wantErr: true},
		{in: "1:2:3:4:5:6:7:1.2.3.4", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseAddr(%q): want error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", tt.in, err)
			continue
		}
		if got.String() != tt.want {
			t.Errorf("ParseAddr(%q).String() = %q, want %q", tt.in, got.String(), tt.want)
		}
		if !got.Is6() {
			t.Errorf("ParseAddr(%q).Is6() = false", tt.in)
		}
	}
}

func TestParseAddrV4(t *testing.T) {
	a, err := ParseAddr("192.0.2.33")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Is4() || a.Is6() {
		t.Errorf("family = %v, want v4", a.Family())
	}
	if a.String() != "192.0.2.33" {
		t.Errorf("String() = %q", a.String())
	}
	v4, ok := a.V4()
	if !ok || v4 != FromOctets(192, 0, 2, 33) {
		t.Errorf("V4() = %v, %v", v4, ok)
	}
}

func TestAddrMatchesNetip(t *testing.T) {
	// Canonical formatting must agree with net/netip on every input both
	// parsers accept.
	for _, s := range []string{
		"::", "::1", "2001:db8::1", "fe80::dead:beef", "::ffff:10.1.2.3",
		"1:0:0:2:0:0:0:3", "ff02::fb", "2001:db8:0:1:1:1:1:1",
		"0.0.0.0", "255.255.255.255", "10.20.30.40",
	} {
		mine, err := ParseAddr(s)
		if err != nil {
			t.Errorf("ParseAddr(%q): %v", s, err)
			continue
		}
		theirs, err := netip.ParseAddr(s)
		if err != nil {
			t.Errorf("netip.ParseAddr(%q): %v", s, err)
			continue
		}
		if mine.String() != theirs.String() {
			t.Errorf("String(%q): mine %q, netip %q", s, mine.String(), theirs.String())
		}
	}
}

func TestAddrIs4In6(t *testing.T) {
	a := MustParseAddr("::ffff:192.0.2.1")
	if !a.Is4In6() || !a.Is6() || a.Is4() {
		t.Errorf("::ffff:192.0.2.1 family flags wrong: %+v", a)
	}
	u := a.Unmap()
	if !u.Is4() {
		t.Error("Unmap did not fold to v4")
	}
	if u != MustParseAddr("192.0.2.1") {
		t.Errorf("Unmap = %v", u)
	}
	// Unmap of a plain v6 address is a no-op.
	b := MustParseAddr("2001:db8::1")
	if b.Unmap() != b {
		t.Error("Unmap changed a non-4-in-6 address")
	}
}

func TestAddrAs16RoundTrip(t *testing.T) {
	a := MustParseAddr("2001:db8::dead:beef")
	if AddrFrom16(a.As16()) != a {
		t.Error("As16/AddrFrom16 round trip failed")
	}
	// v4 maps 4-in-6 through As16 and comes back as 4-in-6 (FamilyV6).
	v4 := MustParseAddr("10.0.0.1")
	back := AddrFrom16(v4.As16())
	if !back.Is4In6() {
		t.Errorf("v4 through As16 = %v, want 4-in-6", back)
	}
	if back.Unmap() != v4 {
		t.Error("v4 As16 round trip lost the address")
	}
}

func TestAddrCompare(t *testing.T) {
	ordered := []Addr{
		{}, // invalid first
		MustParseAddr("0.0.0.0"),
		MustParseAddr("9.9.9.9"),
		MustParseAddr("255.255.255.255"),
		MustParseAddr("::"),
		MustParseAddr("::1"),
		MustParseAddr("2001:db8::1"),
		MustParseAddr("ffff::"),
	}
	for i := range ordered {
		for j := range ordered {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := ordered[i].Compare(ordered[j]); got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestPrefixV6(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	if p.Bits() != 32 || p.Family() != FamilyV6 {
		t.Fatalf("parsed %v bits=%d fam=%v", p, p.Bits(), p.Family())
	}
	if !p.Contains(MustParseAddr("2001:db8:ffff::1")) {
		t.Error("Contains inside /32 = false")
	}
	if p.Contains(MustParseAddr("2001:db9::1")) {
		t.Error("Contains outside /32 = true")
	}
	// Family mismatch is never contained, even for 4-in-6 overlap ranges.
	if MustParsePrefix("::/0").Contains(MustParseAddr("1.2.3.4")) {
		t.Error("::/0 contains a v4 address")
	}
	if MustParsePrefix("0.0.0.0/0").Contains(MustParseAddr("::1")) {
		t.Error("0.0.0.0/0 contains a v6 address")
	}
	if got := p.Last(); got != MustParseAddr("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff") {
		t.Errorf("Last() = %v", got)
	}
	if got := p.First(); got != MustParseAddr("2001:db8::") {
		t.Errorf("First() = %v", got)
	}
}

func TestPrefixV6Boundaries(t *testing.T) {
	// Mask lengths straddling the hi/lo word boundary.
	for _, tt := range []struct{ in, last string }{
		{"8000::/1", "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"},
		{"2001:db8::/63", "2001:db8:0:1:ffff:ffff:ffff:ffff"},
		{"2001:db8::/64", "2001:db8::ffff:ffff:ffff:ffff"},
		{"2001:db8::/65", "2001:db8::7fff:ffff:ffff:ffff"},
		{"2001:db8::1/128", "2001:db8::1"},
		{"::/0", "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"},
	} {
		p := MustParsePrefix(tt.in)
		if got := p.Last(); got != MustParseAddr(tt.last) {
			t.Errorf("%s Last() = %v, want %s", tt.in, got, tt.last)
		}
		if !p.Contains(p.Last()) || !p.Contains(p.First()) {
			t.Errorf("%s does not contain its own bounds", tt.in)
		}
	}
}

func TestPrefixV6SizeNth(t *testing.T) {
	p := MustParsePrefix("2001:db8::/120")
	if p.Size() != 256 {
		t.Errorf("Size() = %d, want 256", p.Size())
	}
	if got := p.Nth(255); got != MustParseAddr("2001:db8::ff") {
		t.Errorf("Nth(255) = %v", got)
	}
	// Wider than /64 host space saturates.
	if MustParsePrefix("2001:db8::/32").Size() != ^uint64(0) {
		t.Error("v6 /32 Size did not saturate")
	}
	// Offsets land in the low word without touching the network bits.
	q := MustParsePrefix("2001:db8:0:ff::/64")
	if got := q.Nth(0x1_0000); got != MustParseAddr("2001:db8:0:ff::1:0") {
		t.Errorf("Nth(0x10000) = %v", got)
	}
}

func TestAddrZeroValue(t *testing.T) {
	var a Addr
	if a.IsValid() || a.Is4() || a.Is6() {
		t.Error("zero Addr claims validity")
	}
	if a.String() != "invalid" {
		t.Errorf("zero Addr String() = %q", a.String())
	}
	if a.BitLen() != 0 {
		t.Errorf("zero Addr BitLen() = %d", a.BitLen())
	}
	var p Prefix
	if !p.IsZero() {
		t.Error("zero Prefix not IsZero")
	}
	if MustParsePrefix("0.0.0.0/0").IsZero() || MustParsePrefix("::/0").IsZero() {
		t.Error("default routes must not be IsZero")
	}
}

func TestTrieV6(t *testing.T) {
	tr := NewPrefixTrie[string]()
	tr.Insert(MustParsePrefix("2001:db8::/32"), "doc")
	tr.Insert(MustParsePrefix("2001:db8:1::/48"), "doc-1")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	tr.Insert(MustParsePrefix("::/0"), "default6")

	if got, _ := tr.Lookup(MustParseAddr("2001:db8:1::5")); got != "doc-1" {
		t.Errorf("Lookup v6 LPM = %q, want doc-1", got)
	}
	if got, _ := tr.Lookup(MustParseAddr("2001:db8:2::5")); got != "doc" {
		t.Errorf("Lookup v6 /32 = %q, want doc", got)
	}
	if got, _ := tr.Lookup(MustParseAddr("fe80::1")); got != "default6" {
		t.Errorf("Lookup v6 default = %q, want default6", got)
	}
	// Families never cross: a v4 address must not match ::/0, and
	// a 4-in-6 v6 address must not match the v4 subtree.
	if got, ok := tr.Lookup(MustParseAddr("10.1.2.3")); !ok || got != "ten" {
		t.Errorf("Lookup v4 = %q, %v", got, ok)
	}
	if got, _ := tr.Lookup(MustParseAddr("::ffff:10.1.2.3")); got != "default6" {
		t.Errorf("Lookup 4-in-6 = %q, want default6 (no family crossing)", got)
	}
	if _, ok := tr.Lookup(Addr{}); ok {
		t.Error("Lookup of zero Addr matched")
	}

	p, v, ok := tr.LookupPrefix(MustParseAddr("2001:db8:1::5"))
	if !ok || v != "doc-1" || p.String() != "2001:db8:1::/48" {
		t.Errorf("LookupPrefix = %v, %q, %v", p, v, ok)
	}
}

func TestTrieV6WalkOrder(t *testing.T) {
	tr := NewPrefixTrie[int]()
	ins := []string{"2001:db8::/32", "10.0.0.0/8", "::/0", "2001:db8::/48", "192.0.2.0/24"}
	for i, s := range ins {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"10.0.0.0/8", "192.0.2.0/24", "::/0", "2001:db8::/32", "2001:db8::/48"}
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk order %v, want %v", got, want)
		}
	}
}

func TestTrieV6InsertPersistentSharesFamilies(t *testing.T) {
	base := NewPrefixTrie[int]()
	base = base.InsertPersistent(MustParsePrefix("10.0.0.0/8"), 1)
	base = base.InsertPersistent(MustParsePrefix("2001:db8::/32"), 2)
	// A v6 insert must share the entire v4 root by pointer, and vice versa.
	next := base.InsertPersistent(MustParsePrefix("2001:db8:1::/48"), 3)
	if base.root4 != next.root4 {
		t.Error("v6 insert copied the v4 subtree")
	}
	if base.root6 == next.root6 {
		t.Error("v6 insert did not produce a new v6 root")
	}
	next4 := base.InsertPersistent(MustParsePrefix("10.1.0.0/16"), 4)
	if base.root6 != next4.root6 {
		t.Error("v4 insert copied the v6 subtree")
	}
	// Old snapshot unchanged.
	if _, ok := base.Lookup(MustParseAddr("2001:db8:1::1")); ok {
		if v, _ := base.Lookup(MustParseAddr("2001:db8:1::1")); v != 2 {
			t.Errorf("base v6 lookup = %d, want 2", v)
		}
	}
}

func TestTrieInsertZeroPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Insert of zero Prefix did not panic")
		}
	}()
	NewPrefixTrie[int]().Insert(Prefix{}, 0)
}
