package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	tests := []struct {
		in      string
		want    IPv4
		wantErr bool
	}{
		{in: "0.0.0.0", want: 0},
		{in: "255.255.255.255", want: 0xffffffff},
		{in: "192.168.1.2", want: FromOctets(192, 168, 1, 2)},
		{in: "4.2.101.20", want: FromOctets(4, 2, 101, 20)},
		{in: "214.96.0.1", want: FromOctets(214, 96, 0, 1)},
		{in: "256.0.0.0", wantErr: true},
		{in: "1.2.3", wantErr: true},
		{in: "1.2.3.4.5", wantErr: true},
		{in: "", wantErr: true},
		{in: "a.b.c.d", wantErr: true},
		{in: "1..2.3", wantErr: true},
		{in: "-1.2.3.4", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseIPv4(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseIPv4(%q): want error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseIPv4(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseIPv4(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestIPv4StringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4(v)
		back, err := ParseIPv4(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefixMasking(t *testing.T) {
	p := MustParsePrefix("192.168.77.200/24")
	if got := p.Addr(); got != FromOctets(192, 168, 77, 0).Addr() {
		t.Errorf("Addr() = %v, want 192.168.77.0", got)
	}
	if p.Bits() != 24 {
		t.Errorf("Bits() = %d, want 24", p.Bits())
	}
	if p.String() != "192.168.77.0/24" {
		t.Errorf("String() = %q", p.String())
	}
}

func TestPrefixContains(t *testing.T) {
	tests := []struct {
		prefix string
		ip     string
		want   bool
	}{
		{"214.32.0.0/11", "214.32.0.0", true},
		{"214.32.0.0/11", "214.63.255.255", true},
		{"214.32.0.0/11", "214.64.0.0", false},
		{"214.32.0.0/11", "214.31.255.255", false},
		{"0.0.0.0/0", "8.8.8.8", true},
		{"10.0.0.0/8", "10.255.0.1", true},
		{"10.0.0.0/8", "11.0.0.0", false},
		{"1.2.3.4/32", "1.2.3.4", true},
		{"1.2.3.4/32", "1.2.3.5", false},
	}
	for _, tt := range tests {
		p := MustParsePrefix(tt.prefix)
		ip := MustParseAddr(tt.ip)
		if got := p.Contains(ip); got != tt.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", p, ip, got, tt.want)
		}
	}
}

func TestPrefixFirstLastSize(t *testing.T) {
	p := MustParsePrefix("214.32.0.0/11")
	if p.First() != MustParseAddr("214.32.0.0") {
		t.Errorf("First() = %v", p.First())
	}
	if p.Last() != MustParseAddr("214.63.255.255") {
		t.Errorf("Last() = %v", p.Last())
	}
	if p.Size() != 1<<21 {
		t.Errorf("Size() = %d, want %d", p.Size(), 1<<21)
	}
	if got := p.Nth(0); got != p.First() {
		t.Errorf("Nth(0) = %v", got)
	}
	if got := p.Nth(p.Size() - 1); got != p.Last() {
		t.Errorf("Nth(last) = %v", got)
	}
}

func TestPrefixNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range did not panic")
		}
	}()
	p := MustParsePrefix("1.2.3.4/32")
	p.Nth(1)
}

func TestPrefixOverlaps(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"4.0.0.0/8", "4.2.101.0/24", true},
		{"4.2.101.0/24", "4.0.0.0/8", true},
		{"4.0.0.0/8", "5.0.0.0/8", false},
		{"0.0.0.0/0", "9.9.9.9/32", true},
		{"214.0.0.0/11", "214.32.0.0/11", false},
	}
	for _, tt := range tests {
		a, b := MustParsePrefix(tt.a), MustParsePrefix(tt.b)
		if got := a.Overlaps(b); got != tt.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, b, got, tt.want)
		}
		if got := b.Overlaps(a); got != tt.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", b, a, got, tt.want)
		}
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, in := range []string{"", "1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "x/8", "1.2.3.4/x"} {
		if _, err := ParsePrefix(in); err == nil {
			t.Errorf("ParsePrefix(%q): want error", in)
		}
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	f := func(v uint32, bits uint8) bool {
		b := int(bits % 33)
		p := PrefixFrom4(IPv4(v), b)
		back, err := ParsePrefix(p.String())
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
