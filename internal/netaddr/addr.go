package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Family tags the address family of an Addr or Prefix. The zero value
// (FamilyNone) marks the invalid/zero Addr, so a zero Addr is never
// mistaken for a real address of either family.
type Family uint8

// Address families.
const (
	FamilyNone Family = 0
	FamilyV4   Family = 4
	FamilyV6   Family = 6
)

// String names the family the way metric labels spell it ("4" / "6").
func (f Family) String() string {
	switch f {
	case FamilyV4:
		return "4"
	case FamilyV6:
		return "6"
	default:
		return "none"
	}
}

// BitLen returns the family's address width in bits: 32 for v4, 128 for
// v6, 0 for FamilyNone.
func (f Family) BitLen() int {
	switch f {
	case FamilyV4:
		return 32
	case FamilyV6:
		return 128
	default:
		return 0
	}
}

// v4InV6 is the 4-in-6 marker in the low word: v4 addresses are stored
// at ::ffff:0:0/96 so the two families share one 128-bit value layout
// and the family tag alone decides rendering and key dispatch.
const v4InV6 = uint64(0xffff) << 32

// Addr is an IP address of either family: a family tag plus a 16-byte
// value held as two big-endian 64-bit words. IPv4 addresses are stored
// 4-in-6 (::ffff:a.b.c.d) with FamilyV4, so the low 32 bits of lo are
// the v4 address and every v4 fast path is a plain 32-bit extraction.
// Addr is comparable (flow keys and maps use ==) and the zero value is
// the invalid address (IsValid reports false).
type Addr struct {
	hi, lo uint64
	fam    Family
}

// AddrFrom4 builds a v4 address from its dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr{lo: v4InV6 | uint64(a)<<24 | uint64(b)<<16 | uint64(c)<<8 | uint64(d), fam: FamilyV4}
}

// AddrFrom16 builds a v6 address from its 16 raw bytes. 4-in-6 values
// stay FamilyV6 (matching net/netip's Is4In6 semantics); use Unmap to
// fold them onto FamilyV4.
func AddrFrom16(b [16]byte) Addr {
	return Addr{
		hi:  beUint64(b[0:8]),
		lo:  beUint64(b[8:16]),
		fam: FamilyV6,
	}
}

// Addr widens an IPv4 to the family-generic address type.
func (ip IPv4) Addr() Addr {
	return Addr{lo: v4InV6 | uint64(uint32(ip)), fam: FamilyV4}
}

func beUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// Family returns the address family tag.
func (a Addr) Family() Family { return a.fam }

// Is4 reports whether a is an IPv4 address (FamilyV4, not 4-in-6).
func (a Addr) Is4() bool { return a.fam == FamilyV4 }

// Is6 reports whether a is an IPv6 address (including 4-in-6 values).
func (a Addr) Is6() bool { return a.fam == FamilyV6 }

// IsValid reports whether a is an address of either family (the zero
// Addr is not).
func (a Addr) IsValid() bool { return a.fam != FamilyNone }

// Is4In6 reports whether a is a v6 address inside ::ffff:0:0/96.
func (a Addr) Is4In6() bool { return a.fam == FamilyV6 && a.hi == 0 && a.lo>>32 == 0xffff }

// BitLen returns the address width in bits (32, 128, or 0 when invalid).
func (a Addr) BitLen() int { return a.fam.BitLen() }

// As16 returns the 16-byte representation (v4 mapped 4-in-6).
func (a Addr) As16() [16]byte {
	var b [16]byte
	bePutUint64(b[0:8], a.hi)
	bePutUint64(b[8:16], a.lo)
	return b
}

func bePutUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// V4 returns the compact IPv4 form of a and whether a is v4 (directly
// or 4-in-6).
func (a Addr) V4() (IPv4, bool) {
	if a.fam == FamilyV4 || a.Is4In6() {
		return IPv4(uint32(a.lo)), true
	}
	return 0, false
}

// Unmap folds a 4-in-6 address onto FamilyV4; every other address is
// returned unchanged.
func (a Addr) Unmap() Addr {
	if a.Is4In6() {
		a.fam = FamilyV4
	}
	return a
}

// Uint64Pair exposes the raw 128-bit value as two big-endian words, for
// hashing. v4 addresses carry the 4-in-6 marker in lo.
func (a Addr) Uint64Pair() (hi, lo uint64) { return a.hi, a.lo }

// Compare orders addresses: invalid first, then v4 before v6, then by
// value.
func (a Addr) Compare(b Addr) int {
	if a.fam != b.fam {
		if a.fam < b.fam {
			return -1
		}
		return 1
	}
	if a.hi != b.hi {
		if a.hi < b.hi {
			return -1
		}
		return 1
	}
	if a.lo != b.lo {
		if a.lo < b.lo {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports whether a orders before b (see Compare).
func (a Addr) Less(b Addr) bool { return a.Compare(b) < 0 }

// masked returns a with everything below the top `bits` bits of its
// family's address space zeroed.
func (a Addr) masked(bits int) Addr {
	switch a.fam {
	case FamilyV4:
		if bits <= 0 {
			a.lo = v4InV6
		} else if bits < 32 {
			a.lo = v4InV6 | (a.lo & (^uint64(0) << (32 - uint(bits))) & 0xffffffff)
		}
	case FamilyV6:
		switch {
		case bits <= 0:
			a.hi, a.lo = 0, 0
		case bits < 64:
			a.hi &= ^uint64(0) << (64 - uint(bits))
			a.lo = 0
		case bits == 64:
			a.lo = 0
		case bits < 128:
			a.lo &= ^uint64(0) << (128 - uint(bits))
		}
	}
	return a
}

// addOffset returns a+n within the family's address space. Callers
// (Prefix.Nth) guarantee the sum does not overflow the space.
func (a Addr) addOffset(n uint64) Addr {
	if a.fam == FamilyV4 {
		a.lo = v4InV6 | uint64(uint32(a.lo)+uint32(n))
		return a
	}
	lo := a.lo + n
	if lo < a.lo {
		a.hi++
	}
	a.lo = lo
	return a
}

// String renders the address: dotted quad for v4, RFC 5952 form for v6
// (lowercase hex, longest zero run compressed, 4-in-6 as ::ffff:a.b.c.d).
func (a Addr) String() string {
	switch {
	case a.fam == FamilyV4:
		return IPv4(uint32(a.lo)).String()
	case a.fam == FamilyV6:
		return a.string6()
	default:
		return "invalid"
	}
}

func (a Addr) string6() string {
	if a.Is4In6() {
		return "::ffff:" + IPv4(uint32(a.lo)).String()
	}
	var g [8]uint16
	for i := 0; i < 4; i++ {
		g[i] = uint16(a.hi >> (48 - 16*uint(i)))
		g[i+4] = uint16(a.lo >> (48 - 16*uint(i)))
	}
	// Longest run of >= 2 zero groups, leftmost on ties (RFC 5952 §4.2).
	best, bestLen := -1, 1
	for i := 0; i < 8; {
		if g[i] != 0 {
			i++
			continue
		}
		j := i
		for j < 8 && g[j] == 0 {
			j++
		}
		if j-i > bestLen {
			best, bestLen = i, j-i
		}
		i = j
	}
	var sb strings.Builder
	sb.Grow(39)
	for i := 0; i < 8; i++ {
		if i == best {
			sb.WriteString("::")
			i += bestLen - 1
			continue
		}
		if i > 0 && i != best+bestLen {
			sb.WriteByte(':')
		}
		sb.WriteString(strconv.FormatUint(uint64(g[i]), 16))
	}
	return sb.String()
}

// ParseAddr parses an address of either family: dotted-quad v4, or v6
// per RFC 4291 text forms (hex groups, one "::", optional embedded v4
// tail). Zoned addresses ("%zone") are rejected — flow records carry no
// scope.
func ParseAddr(s string) (Addr, error) {
	if strings.IndexByte(s, ':') >= 0 {
		return parseV6(s)
	}
	ip, err := ParseIPv4(s)
	if err != nil {
		return Addr{}, err
	}
	return ip.Addr(), nil
}

// MustParseAddr is ParseAddr that panics on error. For tests and constants.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

func hexDigit(c byte) (int, bool) {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0'), true
	case 'a' <= c && c <= 'f':
		return int(c-'a') + 10, true
	case 'A' <= c && c <= 'F':
		return int(c-'A') + 10, true
	default:
		return 0, false
	}
}

func parseV6(s string) (Addr, error) {
	orig := s
	fail := func() (Addr, error) {
		return Addr{}, fmt.Errorf("%w: %q", ErrBadAddress, orig)
	}
	var b [16]byte
	ellipsis := -1 // byte index the "::" expands at
	if len(s) >= 2 && s[0] == ':' && s[1] == ':' {
		ellipsis = 0
		s = s[2:]
		if len(s) == 0 {
			return AddrFrom16(b), nil
		}
	}
	i := 0 // bytes of b filled
	for i < 16 {
		// Parse a hex group (1-4 digits).
		off, val := 0, 0
		for off < len(s) {
			d, ok := hexDigit(s[off])
			if !ok {
				break
			}
			val = val<<4 | d
			off++
			if off > 4 {
				return fail()
			}
		}
		if off == 0 {
			return fail()
		}
		if off < len(s) && s[off] == '.' {
			// Embedded v4 tail: the remainder must be a dotted quad
			// filling the final 32 bits.
			if i+4 > 16 {
				return fail()
			}
			ip, err := ParseIPv4(s)
			if err != nil {
				return fail()
			}
			oa, ob, oc, od := ip.Octets()
			b[i], b[i+1], b[i+2], b[i+3] = oa, ob, oc, od
			i += 4
			s = ""
			break
		}
		if i+2 > 16 {
			return fail()
		}
		b[i], b[i+1] = byte(val>>8), byte(val)
		i += 2
		s = s[off:]
		if len(s) == 0 {
			break
		}
		if s[0] != ':' {
			return fail()
		}
		s = s[1:]
		if len(s) == 0 {
			return fail() // trailing single colon
		}
		if s[0] == ':' {
			if ellipsis >= 0 {
				return fail() // second "::"
			}
			ellipsis = i
			s = s[1:]
			if len(s) == 0 {
				break
			}
		}
	}
	if len(s) != 0 {
		return fail()
	}
	if i < 16 {
		if ellipsis < 0 {
			return fail() // too few groups, no "::"
		}
		n := 16 - i
		for j := i - 1; j >= ellipsis; j-- {
			b[j+n] = b[j]
			b[j] = 0
		}
	} else if ellipsis >= 0 {
		return fail() // "::" must expand to at least one zero group
	}
	return AddrFrom16(b), nil
}
