package netaddr

// PrefixTrie is a binary (path-uncompressed) trie mapping prefixes of
// either family to values of type V, supporting exact insert/delete and
// longest-prefix match. It is the substrate for EIA sets and the BGP
// RIB. Internally it keeps one root per family, so a v4 walk descends at
// most 32 levels exactly as the pre-dual-stack trie did (the v4 fast
// path), while v6 keys walk up to 128 levels of their own subtree. The
// zero value is not usable; construct with NewPrefixTrie.
type PrefixTrie[V any] struct {
	root4 *trieNode[V]
	root6 *trieNode[V]
	size  int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewPrefixTrie returns an empty trie.
func NewPrefixTrie[V any]() *PrefixTrie[V] {
	return &PrefixTrie[V]{root4: &trieNode[V]{}, root6: &trieNode[V]{}}
}

// Len returns the number of prefixes stored.
func (t *PrefixTrie[V]) Len() int { return t.size }

// keyWords returns the walk key of a as two 64-bit words, MSB-first: a
// v4 address contributes its 32 bits at the top of k0 (so bit i of the
// walk is always bit i of k0/k1), a v6 address its full 128 bits.
func keyWords(a Addr) (k0, k1 uint64) {
	if a.fam == FamilyV4 {
		return a.lo << 32, 0
	}
	return a.hi, a.lo
}

// keyBit extracts bit i (0 = MSB) from a walk key.
func keyBit(k0, k1 uint64, i int) uint64 {
	if i < 64 {
		return (k0 >> (63 - uint(i))) & 1
	}
	return (k1 >> (127 - uint(i))) & 1
}

// rootFor returns the family subtree root for f (nil for FamilyNone).
func (t *PrefixTrie[V]) rootFor(f Family) *trieNode[V] {
	switch f {
	case FamilyV4:
		return t.root4
	case FamilyV6:
		return t.root6
	default:
		return nil
	}
}

// Insert stores v at p, replacing any previous value. It reports whether
// the prefix was newly added (false means replaced). Inserting the zero
// Prefix panics: it belongs to no family.
func (t *PrefixTrie[V]) Insert(p Prefix, v V) bool {
	n := t.rootFor(p.addr.fam)
	if n == nil {
		panic("netaddr: Insert of zero Prefix")
	}
	k0, k1 := keyWords(p.addr)
	for i := 0; i < p.Bits(); i++ {
		b := keyBit(k0, k1, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = v, true
	if added {
		t.size++
	}
	return added
}

// Get returns the value stored exactly at p.
func (t *PrefixTrie[V]) Get(p Prefix) (V, bool) {
	n := t.rootFor(p.addr.fam)
	if n == nil {
		var zero V
		return zero, false
	}
	k0, k1 := keyWords(p.addr)
	for i := 0; i < p.Bits(); i++ {
		b := keyBit(k0, k1, i)
		if n.child[b] == nil {
			var zero V
			return zero, false
		}
		n = n.child[b]
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the exact prefix p, reporting whether it was present.
// Interior nodes are left in place; tries in this codebase are built once
// and mutated rarely, so reclaiming chains is not worth the bookkeeping.
func (t *PrefixTrie[V]) Delete(p Prefix) bool {
	n := t.rootFor(p.addr.fam)
	if n == nil {
		return false
	}
	k0, k1 := keyWords(p.addr)
	for i := 0; i < p.Bits(); i++ {
		b := keyBit(k0, k1, i)
		if n.child[b] == nil {
			return false
		}
		n = n.child[b]
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// InsertPersistent returns a new trie equal to the receiver plus v stored
// at p, without modifying the receiver. Only the nodes on the insertion
// path (at most p.Bits()+1 of them) are copied; every other subtree —
// including the entire other-family subtree — is shared between the old
// and new trie. This is the substrate for copy-on-write snapshot stores:
// a reader traversing the old trie never observes a write, so published
// tries can be read lock-free while a writer prepares the next version.
func (t *PrefixTrie[V]) InsertPersistent(p Prefix, v V) *PrefixTrie[V] {
	old := t.rootFor(p.addr.fam)
	if old == nil {
		panic("netaddr: InsertPersistent of zero Prefix")
	}
	k0, k1 := keyWords(p.addr)
	newRoot := old.clone()
	n := newRoot
	for i := 0; i < p.Bits(); i++ {
		b := keyBit(k0, k1, i)
		if old != nil {
			old = old.child[b]
		}
		if old != nil {
			n.child[b] = old.clone()
		} else {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	size := t.size
	if !n.set {
		size++
	}
	n.val, n.set = v, true
	nt := &PrefixTrie[V]{root4: t.root4, root6: t.root6, size: size}
	if p.addr.fam == FamilyV4 {
		nt.root4 = newRoot
	} else {
		nt.root6 = newRoot
	}
	return nt
}

// clone copies one node; the children arrays are copied by value so both
// tries share the subtrees hanging off them.
func (n *trieNode[V]) clone() *trieNode[V] {
	c := *n
	return &c
}

// Lookup returns the value of the longest prefix containing a. The walk
// loops are specialized per family: the v4 loop shifts a single uint32
// exactly like the pre-dual-stack trie (no per-bit word-select branch),
// which keeps the v4 per-check cost at its pre-refactor level; the v6
// loop shifts through hi then lo.
func (t *PrefixTrie[V]) Lookup(a Addr) (V, bool) {
	_, v, ok := t.lookup(a, false)
	return v, ok
}

// LookupPrefix returns both the matched prefix and its value for the
// longest prefix containing a.
func (t *PrefixTrie[V]) LookupPrefix(a Addr) (Prefix, V, bool) {
	depth, v, ok := t.lookup(a, true)
	if !ok {
		return Prefix{}, v, false
	}
	return MustPrefix(a, depth), v, true
}

// lookup is the shared longest-prefix walk. When wantDepth is false the
// depth bookkeeping is dead and the branch predictor eats it; keeping
// one body avoids duplicating the hot loops.
func (t *PrefixTrie[V]) lookup(a Addr, wantDepth bool) (int, V, bool) {
	var (
		best  V
		found bool
		depth int
	)
	if a.fam == FamilyV4 {
		n := t.root4
		if n.set {
			best, found = n.val, true
		}
		key := uint32(a.lo)
		for i := 0; i < 32; i++ {
			n = n.child[key>>31]
			if n == nil {
				return depth, best, found
			}
			key <<= 1
			if n.set {
				best, found = n.val, true
				if wantDepth {
					depth = i + 1
				}
			}
		}
		return depth, best, found
	}
	if a.fam != FamilyV6 {
		return 0, best, false
	}
	n := t.root6
	if n.set {
		best, found = n.val, true
	}
	w := a.hi
	for i := 0; i < 128; i++ {
		n = n.child[w>>63]
		if n == nil {
			return depth, best, found
		}
		w <<= 1
		if i == 63 {
			w = a.lo
		}
		if n.set {
			best, found = n.val, true
			if wantDepth {
				depth = i + 1
			}
		}
	}
	return depth, best, found
}

// Walk visits every stored (prefix, value) pair, v4 prefixes first in
// address order, then v6 prefixes in address order. The callback
// returning false stops the walk early.
func (t *PrefixTrie[V]) Walk(fn func(Prefix, V) bool) {
	if !t.walk4(t.root4, 0, 0, fn) {
		return
	}
	t.walk6(t.root6, 0, 0, 0, fn)
}

func (t *PrefixTrie[V]) walk4(n *trieNode[V], addr uint32, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(PrefixFrom4(IPv4(addr), depth), n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk4(n.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk4(n.child[1], addr|1<<(31-uint(depth)), depth+1, fn)
}

func (t *PrefixTrie[V]) walk6(n *trieNode[V], hi, lo uint64, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(MustPrefix(Addr{hi: hi, lo: lo, fam: FamilyV6}, depth), n.val) {
			return false
		}
	}
	if depth == 128 {
		return true
	}
	if !t.walk6(n.child[0], hi, lo, depth+1, fn) {
		return false
	}
	nhi, nlo := hi, lo
	if depth < 64 {
		nhi |= 1 << (63 - uint(depth))
	} else {
		nlo |= 1 << (127 - uint(depth))
	}
	return t.walk6(n.child[1], nhi, nlo, depth+1, fn)
}
