package netaddr

// PrefixTrie is a binary (path-uncompressed) trie mapping IPv4 prefixes to
// values of type V, supporting exact insert/delete and longest-prefix match.
// It is the substrate for EIA sets and the BGP RIB. The zero value is not
// usable; construct with NewPrefixTrie.
type PrefixTrie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewPrefixTrie returns an empty trie.
func NewPrefixTrie[V any]() *PrefixTrie[V] {
	return &PrefixTrie[V]{root: &trieNode[V]{}}
}

// Len returns the number of prefixes stored.
func (t *PrefixTrie[V]) Len() int { return t.size }

// Insert stores v at p, replacing any previous value. It reports whether the
// prefix was newly added (false means replaced).
func (t *PrefixTrie[V]) Insert(p Prefix, v V) bool {
	n := t.root
	addr := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := (addr >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = v, true
	if added {
		t.size++
	}
	return added
}

// Get returns the value stored exactly at p.
func (t *PrefixTrie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	addr := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := (addr >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			var zero V
			return zero, false
		}
		n = n.child[b]
	}
	if !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes the exact prefix p, reporting whether it was present.
// Interior nodes are left in place; tries in this codebase are built once
// and mutated rarely, so reclaiming chains is not worth the bookkeeping.
func (t *PrefixTrie[V]) Delete(p Prefix) bool {
	n := t.root
	addr := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		b := (addr >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			return false
		}
		n = n.child[b]
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// InsertPersistent returns a new trie equal to the receiver plus v stored
// at p, without modifying the receiver. Only the nodes on the insertion
// path (at most p.Bits()+1 of them) are copied; every other subtree is
// shared between the old and new trie. This is the substrate for
// copy-on-write snapshot stores: a reader traversing the old trie never
// observes a write, so published tries can be read lock-free while a
// writer prepares the next version.
func (t *PrefixTrie[V]) InsertPersistent(p Prefix, v V) *PrefixTrie[V] {
	addr := uint32(p.Addr())
	newRoot := t.root.clone()
	n, old := newRoot, t.root
	for i := 0; i < p.Bits(); i++ {
		b := (addr >> (31 - uint(i))) & 1
		if old != nil {
			old = old.child[b]
		}
		if old != nil {
			n.child[b] = old.clone()
		} else {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	size := t.size
	if !n.set {
		size++
	}
	n.val, n.set = v, true
	return &PrefixTrie[V]{root: newRoot, size: size}
}

// clone copies one node; the children arrays are copied by value so both
// tries share the subtrees hanging off them.
func (n *trieNode[V]) clone() *trieNode[V] {
	c := *n
	return &c
}

// Lookup returns the value of the longest prefix containing ip.
func (t *PrefixTrie[V]) Lookup(ip IPv4) (V, bool) {
	var (
		best    V
		found   bool
		n       = t.root
		addrVal = uint32(ip)
	)
	if n.set {
		best, found = n.val, true
	}
	for i := 0; i < 32; i++ {
		b := (addrVal >> (31 - uint(i))) & 1
		n = n.child[b]
		if n == nil {
			break
		}
		if n.set {
			best, found = n.val, true
		}
	}
	return best, found
}

// LookupPrefix returns both the matched prefix and its value for the longest
// prefix containing ip.
func (t *PrefixTrie[V]) LookupPrefix(ip IPv4) (Prefix, V, bool) {
	var (
		bestP   Prefix
		best    V
		found   bool
		n       = t.root
		addrVal = uint32(ip)
	)
	if n.set {
		bestP, best, found = MustPrefix(0, 0), n.val, true
	}
	for i := 0; i < 32; i++ {
		b := (addrVal >> (31 - uint(i))) & 1
		n = n.child[b]
		if n == nil {
			break
		}
		if n.set {
			bestP = MustPrefix(ip, i+1)
			best, found = n.val, true
		}
	}
	return bestP, best, found
}

// Walk visits every stored (prefix, value) pair in address order. The
// callback returning false stops the walk early.
func (t *PrefixTrie[V]) Walk(fn func(Prefix, V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *PrefixTrie[V]) walk(n *trieNode[V], addr uint32, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(MustPrefix(IPv4(addr), depth), n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], addr|1<<(31-uint(depth)), depth+1, fn)
}
