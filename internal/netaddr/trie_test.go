package netaddr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTrieInsertGet(t *testing.T) {
	tr := NewPrefixTrie[string]()
	p1 := MustParsePrefix("4.0.0.0/8")
	p2 := MustParsePrefix("4.2.101.0/24")

	if !tr.Insert(p1, "as3356") {
		t.Error("first insert should report added")
	}
	if tr.Insert(p1, "as3356b") {
		t.Error("second insert of same prefix should report replaced")
	}
	tr.Insert(p2, "as6325")

	if got, ok := tr.Get(p1); !ok || got != "as3356b" {
		t.Errorf("Get(%v) = %q, %v", p1, got, ok)
	}
	if got, ok := tr.Get(p2); !ok || got != "as6325" {
		t.Errorf("Get(%v) = %q, %v", p2, got, ok)
	}
	if _, ok := tr.Get(MustParsePrefix("4.0.0.0/9")); ok {
		t.Error("Get of absent prefix should miss")
	}
	if tr.Len() != 2 {
		t.Errorf("Len() = %d, want 2", tr.Len())
	}
}

// TestTrieLongestPrefixMatch covers the paper's §3.2 case: 4.2.101.0/24 is
// more specific than 4.0.0.0/8, so 4.2.101.20 must resolve through the /24.
func TestTrieLongestPrefixMatch(t *testing.T) {
	tr := NewPrefixTrie[string]()
	tr.Insert(MustParsePrefix("4.0.0.0/8"), "peer3356")
	tr.Insert(MustParsePrefix("4.2.101.0/24"), "peer6325")

	tests := []struct {
		ip   string
		want string
	}{
		{"4.2.101.20", "peer6325"},
		{"4.2.101.255", "peer6325"},
		{"4.2.102.1", "peer3356"},
		{"4.255.0.1", "peer3356"},
	}
	for _, tt := range tests {
		got, ok := tr.Lookup(MustParseAddr(tt.ip))
		if !ok || got != tt.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", tt.ip, got, ok, tt.want)
		}
	}
	if _, ok := tr.Lookup(MustParseAddr("5.0.0.1")); ok {
		t.Error("Lookup outside any prefix should miss")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	tr := NewPrefixTrie[int]()
	tr.Insert(PrefixFrom4(0, 0), 99)
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)

	if got, ok := tr.Lookup(MustParseAddr("10.1.2.3")); !ok || got != 1 {
		t.Errorf("Lookup under /8 = %d, %v", got, ok)
	}
	if got, ok := tr.Lookup(MustParseAddr("11.1.2.3")); !ok || got != 99 {
		t.Errorf("Lookup default = %d, %v", got, ok)
	}
}

func TestTrieDelete(t *testing.T) {
	tr := NewPrefixTrie[int]()
	p := MustParsePrefix("192.0.2.0/24")
	tr.Insert(p, 7)
	if !tr.Delete(p) {
		t.Error("Delete present prefix should report true")
	}
	if tr.Delete(p) {
		t.Error("Delete absent prefix should report false")
	}
	if _, ok := tr.Lookup(MustParseAddr("192.0.2.1")); ok {
		t.Error("Lookup after delete should miss")
	}
	if tr.Len() != 0 {
		t.Errorf("Len() = %d after delete", tr.Len())
	}
}

func TestTrieLookupPrefix(t *testing.T) {
	tr := NewPrefixTrie[string]()
	tr.Insert(MustParsePrefix("4.0.0.0/8"), "a")
	tr.Insert(MustParsePrefix("4.2.101.0/24"), "b")

	p, v, ok := tr.LookupPrefix(MustParseAddr("4.2.101.20"))
	if !ok || v != "b" || p != MustParsePrefix("4.2.101.0/24") {
		t.Errorf("LookupPrefix = %v, %q, %v", p, v, ok)
	}
	p, v, ok = tr.LookupPrefix(MustParseAddr("4.9.9.9"))
	if !ok || v != "a" || p != MustParsePrefix("4.0.0.0/8") {
		t.Errorf("LookupPrefix = %v, %q, %v", p, v, ok)
	}
}

func TestTrieWalkOrder(t *testing.T) {
	tr := NewPrefixTrie[int]()
	ins := []string{"10.0.0.0/8", "4.0.0.0/8", "4.2.101.0/24", "192.0.2.0/24"}
	for i, s := range ins {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := append([]string(nil), ins...)
	sort.Slice(want, func(i, j int) bool {
		a, b := MustParsePrefix(want[i]), MustParsePrefix(want[j])
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
	if len(got) != len(want) {
		t.Fatalf("Walk visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Walk[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	tr := NewPrefixTrie[int]()
	for i := 0; i < 10; i++ {
		tr.Insert(PrefixFrom4(IPv4(i)<<24, 8), i)
	}
	n := 0
	tr.Walk(func(Prefix, int) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Walk visited %d after early stop, want 3", n)
	}
}

// randomTriePrefix emits a random corpus prefix from either address
// family: a v4 prefix over the full 32-bit space, or a v6 prefix inside
// a deliberately small 2001:db8::/32 pool so lookups land inside stored
// prefixes often enough to exercise real matches, not just misses.
func randomTriePrefix(rng *rand.Rand) Prefix {
	if rng.Intn(2) == 0 {
		return PrefixFrom4(IPv4(rng.Uint32()), rng.Intn(25)+8)
	}
	return MustPrefix(randomTrieAddr6(rng), rng.Intn(89)+40)
}

// randomTrieAddr emits a random probe address, half v4, half from the
// same constrained v6 pool randomTriePrefix draws from.
func randomTrieAddr(rng *rand.Rand) Addr {
	if rng.Intn(2) == 0 {
		return IPv4(rng.Uint32()).Addr()
	}
	return randomTrieAddr6(rng)
}

func randomTrieAddr6(rng *rand.Rand) Addr {
	var b [16]byte
	b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x0d, 0xb8
	b[4] = byte(rng.Intn(4))
	b[7] = byte(rng.Intn(4))
	b[11] = byte(rng.Intn(4))
	b[15] = byte(rng.Intn(8))
	return AddrFrom16(b)
}

// TestTrieMatchesLinearScan cross-checks longest-prefix match against a
// brute-force scan over random dual-stack prefix sets.
func TestTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		tr := NewPrefixTrie[int]()
		var prefixes []Prefix
		for i := 0; i < 50; i++ {
			p := randomTriePrefix(rng)
			prefixes = append(prefixes, p)
			tr.Insert(p, i)
		}
		for i := 0; i < 200; i++ {
			ip := randomTrieAddr(rng)
			wantBits, wantVal, wantOK := -1, -1, false
			for j, p := range prefixes {
				if p.Contains(ip) && p.Bits() > wantBits {
					wantBits, wantVal, wantOK = p.Bits(), j, true
				}
			}
			// Later inserts of an equal prefix overwrite earlier ones.
			if wantOK {
				for j, p := range prefixes {
					if p.Contains(ip) && p.Bits() == wantBits {
						wantVal = j
					}
				}
			}
			got, ok := tr.Lookup(ip)
			if ok != wantOK || (ok && got != wantVal) {
				t.Fatalf("trial %d: Lookup(%v) = %d, %v; want %d, %v",
					trial, ip, got, ok, wantVal, wantOK)
			}
		}
	}
}

// TestTrieInsertPersistent checks the copy-on-write contract: the old
// trie is observationally unchanged by inserts into its successors.
func TestTrieInsertPersistent(t *testing.T) {
	t0 := NewPrefixTrie[string]()
	t1 := t0.InsertPersistent(MustParsePrefix("4.0.0.0/8"), "a")
	t2 := t1.InsertPersistent(MustParsePrefix("4.2.101.0/24"), "b")
	t3 := t2.InsertPersistent(MustParsePrefix("4.0.0.0/8"), "a2") // replace

	if t0.Len() != 0 || t1.Len() != 1 || t2.Len() != 2 || t3.Len() != 2 {
		t.Fatalf("Len chain = %d,%d,%d,%d; want 0,1,2,2",
			t0.Len(), t1.Len(), t2.Len(), t3.Len())
	}
	ip := MustParseAddr("4.2.101.20")
	if _, ok := t0.Lookup(ip); ok {
		t.Error("t0 sees a later insert")
	}
	if got, _ := t1.Lookup(ip); got != "a" {
		t.Errorf("t1.Lookup = %q, want a", got)
	}
	if got, _ := t2.Lookup(ip); got != "b" {
		t.Errorf("t2.Lookup = %q, want b", got)
	}
	if got, _ := t2.Lookup(MustParseAddr("4.9.9.9")); got != "a" {
		t.Errorf("t2 /8 value = %q, want a (replacement must not leak back)", got)
	}
	if got, _ := t3.Lookup(MustParseAddr("4.9.9.9")); got != "a2" {
		t.Errorf("t3 /8 value = %q, want a2", got)
	}
}

// TestTrieInsertPersistentSharesSubtrees asserts structural sharing: a
// persistent insert on one branch must reuse the untouched sibling
// subtree by pointer, not copy it.
func TestTrieInsertPersistentSharesSubtrees(t *testing.T) {
	base := NewPrefixTrie[int]()
	// 128.0.0.0/1 lives entirely under root.child[1].
	base = base.InsertPersistent(MustParsePrefix("128.0.0.0/1"), 1)
	next := base.InsertPersistent(MustParsePrefix("10.0.0.0/8"), 2) // under child[0]
	if base.root4.child[1] != next.root4.child[1] {
		t.Error("untouched subtree was copied instead of shared")
	}
	if base.root4 == next.root4 {
		t.Error("root must be copied, not shared")
	}
}

// TestTrieInsertPersistentMatchesMutable replays a random dual-stack
// insert sequence through both insert paths and requires identical
// lookup behavior.
func TestTrieInsertPersistentMatchesMutable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mut := NewPrefixTrie[int]()
	per := NewPrefixTrie[int]()
	for i := 0; i < 200; i++ {
		p := randomTriePrefix(rng)
		mut.Insert(p, i)
		per = per.InsertPersistent(p, i)
	}
	if mut.Len() != per.Len() {
		t.Fatalf("Len: mutable %d, persistent %d", mut.Len(), per.Len())
	}
	for i := 0; i < 500; i++ {
		ip := randomTrieAddr(rng)
		gm, okm := mut.Lookup(ip)
		gp, okp := per.Lookup(ip)
		if gm != gp || okm != okp {
			t.Fatalf("Lookup(%v): mutable %d,%v persistent %d,%v", ip, gm, okm, gp, okp)
		}
	}
}

func TestTrieInsertLookupProperty(t *testing.T) {
	f := func(addr uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw%32) + 1
		tr := NewPrefixTrie[uint32]()
		p := PrefixFrom4(IPv4(addr), bits)
		tr.Insert(p, addr)
		got, ok := tr.Lookup(p.First())
		got2, ok2 := tr.Lookup(p.Last())
		return ok && ok2 && got == addr && got2 == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Same property over the v6 plane: first/last of any inserted prefix
	// must look up to its value.
	f6 := func(raw [16]byte, bitsRaw uint8) bool {
		bits := int(bitsRaw%128) + 1
		tr := NewPrefixTrie[byte]()
		p := MustPrefix(AddrFrom16(raw), bits)
		tr.Insert(p, raw[15])
		got, ok := tr.Lookup(p.First())
		got2, ok2 := tr.Lookup(p.Last())
		return ok && ok2 && got == raw[15] && got2 == raw[15]
	}
	if err := quick.Check(f6, nil); err != nil {
		t.Error(err)
	}
}
