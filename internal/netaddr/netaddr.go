// Package netaddr provides the compact address and prefix types used
// throughout InFilter. The core model is address-family-generic: Addr is a
// family tag plus a 16-byte value (v4 stored 4-in-6) and Prefix masks up
// to /128, so every layer — flow keys, EIA tries, the BGP RIB — handles
// IPv4 and IPv6 through one type. The IPv4 (host-order uint32) type
// remains for v4-only wire formats and generators where 32-bit prefix
// arithmetic is the natural shape; IPv4.Addr() widens it losslessly.
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host byte order.
type IPv4 uint32

// Errors returned by the parsers in this package.
var (
	ErrBadAddress = errors.New("netaddr: malformed IP address")
	ErrBadPrefix  = errors.New("netaddr: malformed IP prefix")
)

// FromOctets builds an address from its four dotted-quad octets.
func FromOctets(a, b, c, d byte) IPv4 {
	return IPv4(a)<<24 | IPv4(b)<<16 | IPv4(c)<<8 | IPv4(d)
}

// Octets returns the four dotted-quad octets of ip.
func (ip IPv4) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	a, b, c, d := ip.Octets()
	var sb strings.Builder
	sb.Grow(15)
	sb.WriteString(strconv.Itoa(int(a)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(b)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(c)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(d)))
	return sb.String()
}

// ParseIPv4 parses a dotted-quad IPv4 address.
func ParseIPv4(s string) (IPv4, error) {
	var octs [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("%w: %q", ErrBadAddress, s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("%w: %q", ErrBadAddress, s)
		}
		octs[i] = v
	}
	return FromOctets(byte(octs[0]), byte(octs[1]), byte(octs[2]), byte(octs[3])), nil
}

// MustParseIPv4 is ParseIPv4 that panics on error. For tests and constants.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Prefix is a CIDR prefix of either family, masking up to /32 (v4) or
// /128 (v6). The address bits below the mask are kept zero by the
// constructors so two equal prefixes compare equal with ==. The zero
// Prefix is invalid (IsZero reports true) and belongs to no family.
type Prefix struct {
	addr Addr
	bits uint8
}

// NewPrefix builds a prefix from an address and a mask length, zeroing
// host bits. bits must be in [0, addr.BitLen()].
func NewPrefix(addr Addr, bits int) (Prefix, error) {
	if !addr.IsValid() || bits < 0 || bits > addr.BitLen() {
		return Prefix{}, fmt.Errorf("%w: /%d (%s)", ErrBadPrefix, bits, addr.fam)
	}
	return Prefix{addr: addr.masked(bits), bits: uint8(bits)}, nil
}

// MustPrefix is NewPrefix that panics on error.
func MustPrefix(addr Addr, bits int) Prefix {
	p, err := NewPrefix(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// PrefixFrom4 builds a v4 prefix from a compact IPv4 address; it is
// MustPrefix(ip.Addr(), bits) for the v4 generators and wire decoders.
func PrefixFrom4(ip IPv4, bits int) Prefix {
	return MustPrefix(ip.Addr(), bits)
}

// ParsePrefix parses "addr/len" CIDR notation of either family.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > addr.BitLen() {
		return Prefix{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	return NewPrefix(addr, bits)
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskFor(bits int) IPv4 {
	if bits == 0 {
		return 0
	}
	return IPv4(^uint32(0) << (32 - uint(bits)))
}

// Addr returns the (masked) network address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the mask length of p.
func (p Prefix) Bits() int { return int(p.bits) }

// Family returns the prefix's address family.
func (p Prefix) Family() Family { return p.addr.fam }

// Contains reports whether a falls inside p. Addresses of a different
// family are never contained.
func (p Prefix) Contains(a Addr) bool {
	return a.fam == p.addr.fam && a.masked(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// First returns the lowest address in p.
func (p Prefix) First() Addr { return p.addr }

// Last returns the highest address in p.
func (p Prefix) Last() Addr {
	a := p.addr
	switch a.fam {
	case FamilyV4:
		a.lo |= uint64(^uint32(maskFor(int(p.bits))))
	case FamilyV6:
		bits := int(p.bits)
		switch {
		case bits < 64:
			a.hi |= ^(^uint64(0) << (64 - uint(bits)))
			a.lo = ^uint64(0)
		case bits == 64:
			a.lo = ^uint64(0)
		case bits < 128:
			a.lo |= ^(^uint64(0) << (128 - uint(bits)))
		}
	}
	return a
}

// Size returns the number of addresses covered by p, saturating at
// MaxUint64 for v6 prefixes wider than /64.
func (p Prefix) Size() uint64 {
	host := p.addr.BitLen() - int(p.bits)
	if host >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << uint(host)
}

// Nth returns the i-th address inside p. It panics if i is out of range,
// which indicates a programming error in the caller.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.Size() {
		panic(fmt.Sprintf("netaddr: Nth(%d) out of range for %v", i, p))
	}
	return p.addr.addOffset(i)
}

// String renders p in CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// IsZero reports whether p is the zero (invalid) Prefix. Real prefixes
// of either family — including 0.0.0.0/0 and ::/0 — are not zero.
func (p Prefix) IsZero() bool { return !p.addr.IsValid() }
