// Package netaddr provides compact IPv4 address and prefix types used
// throughout InFilter. Addresses are represented as host-order uint32 so
// prefix arithmetic and set membership stay allocation-free on the hot path.
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host byte order.
type IPv4 uint32

// Errors returned by the parsers in this package.
var (
	ErrBadAddress = errors.New("netaddr: malformed IPv4 address")
	ErrBadPrefix  = errors.New("netaddr: malformed IPv4 prefix")
)

// FromOctets builds an address from its four dotted-quad octets.
func FromOctets(a, b, c, d byte) IPv4 {
	return IPv4(a)<<24 | IPv4(b)<<16 | IPv4(c)<<8 | IPv4(d)
}

// Octets returns the four dotted-quad octets of ip.
func (ip IPv4) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	a, b, c, d := ip.Octets()
	var sb strings.Builder
	sb.Grow(15)
	sb.WriteString(strconv.Itoa(int(a)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(b)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(c)))
	sb.WriteByte('.')
	sb.WriteString(strconv.Itoa(int(d)))
	return sb.String()
}

// ParseIPv4 parses a dotted-quad IPv4 address.
func ParseIPv4(s string) (IPv4, error) {
	var octs [4]uint64
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("%w: %q", ErrBadAddress, s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("%w: %q", ErrBadAddress, s)
		}
		octs[i] = v
	}
	return FromOctets(byte(octs[0]), byte(octs[1]), byte(octs[2]), byte(octs[3])), nil
}

// MustParseIPv4 is ParseIPv4 that panics on error. For tests and constants.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// Prefix is an IPv4 CIDR prefix. The address bits below the mask are kept
// zero by the constructors so two equal prefixes compare equal with ==.
type Prefix struct {
	addr IPv4
	bits uint8
}

// NewPrefix builds a prefix from an address and a mask length, zeroing host
// bits. bits must be in [0,32].
func NewPrefix(addr IPv4, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: /%d", ErrBadPrefix, bits)
	}
	return Prefix{addr: addr & maskFor(bits), bits: uint8(bits)}, nil
}

// MustPrefix is NewPrefix that panics on error.
func MustPrefix(addr IPv4, bits int) Prefix {
	p, err := NewPrefix(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses "a.b.c.d/len" CIDR notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	addr, err := ParseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: %q", ErrBadPrefix, s)
	}
	return NewPrefix(addr, bits)
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskFor(bits int) IPv4 {
	if bits == 0 {
		return 0
	}
	return IPv4(^uint32(0) << (32 - uint(bits)))
}

// Addr returns the (masked) network address of p.
func (p Prefix) Addr() IPv4 { return p.addr }

// Bits returns the mask length of p.
func (p Prefix) Bits() int { return int(p.bits) }

// Mask returns the netmask of p as an address.
func (p Prefix) Mask() IPv4 { return maskFor(int(p.bits)) }

// Contains reports whether ip falls inside p.
func (p Prefix) Contains(ip IPv4) bool {
	return ip&maskFor(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// First returns the lowest address in p.
func (p Prefix) First() IPv4 { return p.addr }

// Last returns the highest address in p.
func (p Prefix) Last() IPv4 { return p.addr | ^maskFor(int(p.bits)) }

// Size returns the number of addresses covered by p.
func (p Prefix) Size() uint64 { return uint64(1) << (32 - uint(p.bits)) }

// Nth returns the i-th address inside p. It panics if i is out of range,
// which indicates a programming error in the caller.
func (p Prefix) Nth(i uint64) IPv4 {
	if i >= p.Size() {
		panic(fmt.Sprintf("netaddr: Nth(%d) out of range for %v", i, p))
	}
	return p.addr + IPv4(i)
}

// String renders p in CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// IsZero reports whether p is the zero Prefix (0.0.0.0/0 constructed as a
// zero value). Note 0.0.0.0/0 built through NewPrefix is also zero; callers
// that need a real default route should track it separately.
func (p Prefix) IsZero() bool { return p == Prefix{} }
