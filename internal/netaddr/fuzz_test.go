package netaddr

import (
	"net/netip"
	"strings"
	"testing"
)

// FuzzParseAddr cross-checks ParseAddr against the net/netip oracle.
// Invariants:
//   - anything we parse must round-trip: ParseAddr(a.String()) == a;
//   - when both parsers accept an input, the canonical strings agree
//     (RFC 5952 for v6, dotted quad for v4);
//   - anything netip accepts that we reject must be zoned ("%zone") —
//     the one deliberate grammar difference. (The reverse is allowed:
//     our v4 parser tolerates leading zeros, netip's does not.)
func FuzzParseAddr(f *testing.F) {
	for _, s := range []string{
		"0.0.0.0", "255.255.255.255", "192.0.2.33", "10.0.0.1",
		"::", "::1", "2001:db8::1", "fe80::dead:beef",
		"::ffff:10.1.2.3", "64:ff9b::198.51.100.7",
		"1:0:0:2:0:0:0:3", "1:2:3:4:5:6:7:8",
		"1::2::3", ":::", "fe80::1%eth0", "012.3.4.5", "",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		mine, myErr := ParseAddr(s)
		theirs, theirErr := netip.ParseAddr(s)
		if myErr == nil {
			back, err := ParseAddr(mine.String())
			if err != nil {
				t.Fatalf("round trip: ParseAddr(%q) ok but ParseAddr(%q): %v", s, mine.String(), err)
			}
			if back != mine {
				t.Fatalf("round trip: %q -> %v -> %q -> %v", s, mine, mine.String(), back)
			}
			if theirErr == nil && mine.String() != theirs.String() {
				t.Fatalf("canonical form of %q: mine %q, netip %q", s, mine.String(), theirs.String())
			}
		} else if theirErr == nil && !strings.ContainsRune(s, '%') {
			t.Fatalf("netip accepts %q (-> %v) but ParseAddr rejects: %v", s, theirs, myErr)
		}
	})
}

// FuzzTrieInsertV6 drives the 128-bit trie walk with fuzz-shaped v6 (and
// mixed v4) prefix sets, checking exact Get, longest-prefix Lookup
// against a linear scan, and the copy-on-write contract of
// InsertPersistent (old snapshots never observe later inserts).
func FuzzTrieInsertV6(f *testing.F) {
	f.Add([]byte{0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 32})
	f.Add([]byte{
		0x20, 0x01, 0x0d, 0xb8, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 48,
		0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 128,
		10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 200,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		const rec = 17 // 16 address bytes + 1 bits byte
		n := len(data) / rec
		if n == 0 || n > 64 {
			return
		}
		tr := NewPrefixTrie[int]()
		snap := NewPrefixTrie[int]()
		var prefixes []Prefix
		for i := 0; i < n; i++ {
			chunk := data[i*rec : (i+1)*rec]
			var a Addr
			var bits int
			if chunk[16]&1 == 0 { // mix families on the low bit
				var b16 [16]byte
				copy(b16[:], chunk[:16])
				a = AddrFrom16(b16)
				bits = int(chunk[16]) % 129
			} else {
				a = AddrFrom4(chunk[0], chunk[1], chunk[2], chunk[3])
				bits = int(chunk[16]) % 33
			}
			p := MustPrefix(a, bits)
			prefixes = append(prefixes, p)
			tr.Insert(p, i)
			snap = snap.InsertPersistent(p, i)
		}
		if tr.Len() != snap.Len() {
			t.Fatalf("Len: mutable %d, persistent %d", tr.Len(), snap.Len())
		}
		lpm := func(a Addr) (int, bool) {
			bestBits, bestVal, ok := -1, 0, false
			for j, p := range prefixes {
				if p.Contains(a) && p.Bits() >= bestBits {
					// >= : later equal-length inserts overwrite.
					bestBits, bestVal, ok = p.Bits(), j, true
				}
			}
			return bestVal, ok
		}
		for i, p := range prefixes {
			// Exact Get sees the last value written at that prefix.
			want := i
			for j := i + 1; j < n; j++ {
				if prefixes[j] == p {
					want = j
				}
			}
			for _, u := range []*PrefixTrie[int]{tr, snap} {
				if got, ok := u.Get(p); !ok || got != want {
					t.Fatalf("Get(%v) = %d, %v; want %d", p, got, ok, want)
				}
			}
			for _, probe := range []Addr{p.First(), p.Last()} {
				wantVal, wantOK := lpm(probe)
				for _, u := range []*PrefixTrie[int]{tr, snap} {
					got, ok := u.Lookup(probe)
					if ok != wantOK || (ok && got != wantVal) {
						t.Fatalf("Lookup(%v) = %d, %v; want %d, %v", probe, got, ok, wantVal, wantOK)
					}
				}
			}
		}
		// COW: a snapshot taken mid-sequence never sees the next insert.
		if n >= 2 {
			mid := NewPrefixTrie[int]().InsertPersistent(prefixes[0], 0)
			after := mid.InsertPersistent(prefixes[1], 1)
			if prefixes[0] != prefixes[1] {
				if _, ok := mid.Get(prefixes[1]); ok {
					t.Fatalf("snapshot observed a later insert of %v", prefixes[1])
				}
			}
			if got, ok := after.Get(prefixes[1]); !ok || got != 1 {
				t.Fatalf("successor lost its own insert of %v", prefixes[1])
			}
		}
	})
}
