package sketch

import (
	"encoding/binary"
	"testing"
)

// FuzzKMVInsert feeds arbitrary key streams into arbitrary-sized
// registers and checks the structural invariants: no panic, Count
// bounded by k, estimates exact below k (vs a map oracle) and monotone
// non-decreasing under insertion.
func FuzzKMVInsert(f *testing.F) {
	f.Add(uint8(3), uint64(42), []byte("some seed corpus bytes to chunk"))
	f.Add(uint8(0), uint64(0), []byte{})
	f.Add(uint8(255), uint64(1<<63), []byte{1, 2, 3, 4, 5, 6, 7, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, kRaw uint8, seed uint64, data []byte) {
		k := int(kRaw) // 0 exercises the DefaultK fallback
		s := New(k, seed)
		if k <= 0 {
			k = DefaultK
		}
		oracle := make(map[uint64]struct{})
		prev := 0.0
		for len(data) >= 8 {
			key := binary.LittleEndian.Uint64(data[:8])
			data = data[8:]
			s.Insert(key)
			oracle[key] = struct{}{}
			est := s.Estimate()
			if est < prev {
				t.Fatalf("estimate decreased: %v -> %v", prev, est)
			}
			prev = est
			if s.Count() > k {
				t.Fatalf("Count %d exceeds k %d", s.Count(), k)
			}
			if len(oracle) < k && est != float64(len(oracle)) {
				t.Fatalf("below k: estimate %v, exact %d", est, len(oracle))
			}
		}
	})
}
