package sketch

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"infilter/internal/netaddr"
)

// packAddr folds a dual-stack address into the uint64 key space the
// scan analyzer feeds its registers from.
func packAddr(a netaddr.Addr) uint64 {
	hi, lo := a.Uint64Pair()
	return hi*0x9e3779b97f4a7c15 ^ lo
}

// randomAddr draws a mixed-family address: ~half v4, half v6.
func randomAddr(rng *rand.Rand) netaddr.Addr {
	if rng.Intn(2) == 0 {
		return netaddr.AddrFrom4(byte(rng.Intn(224)+1), byte(rng.Intn(256)),
			byte(rng.Intn(256)), byte(rng.Intn(256)))
	}
	var b [16]byte
	rng.Read(b[:])
	b[0] = 0x20 // keep it out of the v4-mapped range
	return netaddr.AddrFrom16(b)
}

// corpus returns n address keys with duplicates mixed in, plus the
// exact distinct count from a map oracle.
func corpus(rng *rand.Rand, n, distinct int) (keys []uint64, exact int) {
	pool := make([]uint64, 0, distinct)
	seen := make(map[uint64]struct{}, distinct)
	for len(pool) < distinct {
		k := packAddr(randomAddr(rng))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		pool = append(pool, k)
	}
	keys = make([]uint64, n)
	used := make(map[uint64]struct{}, distinct)
	for i := range keys {
		k := pool[rng.Intn(len(pool))]
		keys[i] = k
		used[k] = struct{}{}
	}
	return keys, len(used)
}

func TestExactBelowK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{64, 256, 1024} {
		s := New(k, 42)
		oracle := make(map[uint64]struct{})
		for i := 0; i < 3*(k-1); i++ { // duplicates keep distinct < k
			key := packAddr(randomAddr(rng))
			if len(oracle) >= k-1 {
				break
			}
			oracle[key] = struct{}{}
			s.Insert(key)
			s.Insert(key) // duplicate must not change anything
			if got, want := s.Estimate(), float64(len(oracle)); got != want {
				t.Fatalf("k=%d: estimate %v below k, want exact %v", k, got, want)
			}
		}
		if s.Count() != len(oracle) {
			t.Fatalf("k=%d: Count=%d oracle=%d", k, s.Count(), len(oracle))
		}
	}
}

// TestErrorWithinTheoreticalBound checks the estimator against the map
// oracle over randomized dual-stack corpora: every trial within 5
// relative standard errors, the mean of the trials within 2.
func TestErrorWithinTheoreticalBound(t *testing.T) {
	for _, k := range []int{64, 256, 1024} {
		rng := rand.New(rand.NewSource(int64(1000 + k)))
		rse := 1 / math.Sqrt(float64(k-2))
		const trials = 8
		var meanRel float64
		for trial := 0; trial < trials; trial++ {
			distinct := 20*k + rng.Intn(10*k)
			keys, exact := corpus(rng, 3*distinct, distinct)
			s := New(k, uint64(trial))
			for _, key := range keys {
				s.Insert(key)
			}
			rel := s.Estimate()/float64(exact) - 1
			meanRel += rel
			if math.Abs(rel) > 5*rse {
				t.Errorf("k=%d trial %d: estimate %.1f vs exact %d (rel err %.3f > 5*RSE %.3f)",
					k, trial, s.Estimate(), exact, rel, 5*rse)
			}
		}
		meanRel /= trials
		if math.Abs(meanRel) > 2*rse {
			t.Errorf("k=%d: mean relative error %.4f exceeds 2*RSE %.4f", k, meanRel, 2*rse)
		}
	}
}

func TestEstimateMonotoneUnderInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(64, 9)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		s.Insert(packAddr(randomAddr(rng)))
		if est := s.Estimate(); est < prev {
			t.Fatalf("estimate decreased at insert %d: %v -> %v", i, prev, est)
		} else {
			prev = est
		}
	}
}

// canon returns the kept hash set in canonical (sorted) order; two
// sketches are equal iff their canonical forms match.
func canon(s *KMV) []uint64 {
	c := append([]uint64(nil), s.heap...)
	slices.Sort(c)
	return c
}

func mergeOf(a, b *KMV) *KMV {
	c := a.Clone()
	c.Merge(b)
	return c
}

// TestMergeSemilattice mirrors the eia.Merge suite: union of bottom-k
// sketches is commutative, associative and idempotent.
func TestMergeSemilattice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, k := range []int{64, 256} {
		for trial := 0; trial < 6; trial++ {
			build := func() *KMV {
				s := New(k, 77)
				keys, _ := corpus(rng, 4*k, 1+rng.Intn(3*k))
				for _, key := range keys {
					s.Insert(key)
				}
				return s
			}
			a, b, c := build(), build(), build()
			if !slices.Equal(canon(mergeOf(a, b)), canon(mergeOf(b, a))) {
				t.Fatalf("k=%d: merge not commutative", k)
			}
			if !slices.Equal(canon(mergeOf(mergeOf(a, b), c)), canon(mergeOf(a, mergeOf(b, c)))) {
				t.Fatalf("k=%d: merge not associative", k)
			}
			if !slices.Equal(canon(mergeOf(a, a)), canon(a)) {
				t.Fatalf("k=%d: merge not idempotent", k)
			}
			// UnionEstimate must agree with materializing the merge.
			if got, want := UnionEstimate(a, b), mergeOf(a, b).Estimate(); got != want {
				t.Fatalf("k=%d: UnionEstimate=%v merged estimate=%v", k, got, want)
			}
		}
	}
}

func TestUnionEstimateAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const k = 256
	rse := 1 / math.Sqrt(float64(k-2))
	for trial := 0; trial < 4; trial++ {
		a, b := New(k, 5), New(k, 5)
		oracle := make(map[uint64]struct{})
		keysA, _ := corpus(rng, 3*k, 2*k)
		keysB, _ := corpus(rng, 3*k, 2*k)
		for _, key := range keysA {
			a.Insert(key)
			oracle[key] = struct{}{}
		}
		for _, key := range keysB {
			b.Insert(key)
			oracle[key] = struct{}{}
		}
		est := UnionEstimate(a, b)
		rel := est/float64(len(oracle)) - 1
		if math.Abs(rel) > 5*rse {
			t.Errorf("trial %d: union estimate %.1f vs exact %d (rel %.3f)", trial, est, len(oracle), rel)
		}
	}
	// Degenerate shapes.
	if UnionEstimate(nil, nil) != 0 {
		t.Error("UnionEstimate(nil, nil) != 0")
	}
	s := New(k, 5)
	s.Insert(1)
	if UnionEstimate(s, nil) != 1 || UnionEstimate(nil, s) != 1 {
		t.Error("UnionEstimate with one nil side lost the other")
	}
}

func TestMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge across mismatched seeds did not panic")
		}
	}()
	a, b := New(64, 1), New(64, 2)
	b.Insert(9)
	a.Merge(b)
}

func TestResetAndClone(t *testing.T) {
	s := New(64, 3)
	for i := uint64(0); i < 500; i++ {
		s.Insert(i)
	}
	c := s.Clone()
	s.Reset()
	if s.Count() != 0 || s.Estimate() != 0 {
		t.Errorf("Reset left Count=%d Estimate=%v", s.Count(), s.Estimate())
	}
	if c.Count() != 64 {
		t.Errorf("clone affected by reset: Count=%d", c.Count())
	}
	s.Insert(1)
	if s.Estimate() != 1 {
		t.Errorf("sketch unusable after Reset: %v", s.Estimate())
	}
}
