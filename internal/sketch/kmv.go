// Package sketch provides streaming distinct-count sketches for the
// scan-analysis hot path. The workhorse is KMV, a k-minimum-values
// (bottom-k) estimator: it keeps the k smallest distinct hash values
// observed in a stream and estimates the stream's distinct cardinality
// from the k-th order statistic. Below k distinct elements the kept set
// IS the distinct set, so small streams are counted exactly — which is
// what lets the sketch-based scan analyzer reproduce the ring-buffer
// oracle's trip decisions bit for bit at small cardinalities. Above k
// the estimator is (k-1)/U(k) with U(k) the k-th smallest hash mapped
// to (0,1], unbiased with relative standard error ~ 1/sqrt(k-2)
// (Beyer et al., "On Synopses for Distinct-Value Estimation Under
// Multiset Operations").
//
// Hashing reuses the seeded xxh3-style mix from internal/bloom, so the
// sketches inherit the avalanche quality the Bloom tier already leans
// on, and two sketches built with the same seed are mergeable: the
// union of two bottom-k sets, trimmed back to its bottom k, is exactly
// the bottom-k of the union stream. That merge is commutative,
// associative and idempotent — a semilattice, like eia.Merge — so
// registers can be combined in any order (and the scan analyzer unions
// a register's current and previous decay generations on every probe).
package sketch

import (
	"math"

	"infilter/internal/bloom"
)

// DefaultK is the register size used when a caller passes k <= 0. 256
// keeps per-register error under ~6.3% — far tighter than needed to
// compare against scan thresholds of ~10 — while bounding a register at
// a few KiB.
const DefaultK = 256

// two64 is 2^64 as a float64, the normalization constant mapping a
// uint64 hash to (0, 1].
var two64 = math.Ldexp(1, 64)

// KMV is a k-minimum-values distinct counter. The zero value is not
// usable; construct with New. KMV is not safe for concurrent use.
type KMV struct {
	k    int
	seed uint64
	// heap is a max-heap over the kept hashes, so heap[0] is the k-th
	// smallest value seen once the sketch is full and eviction is O(log k).
	heap []uint64
	// set mirrors heap for O(1) duplicate suppression; it never holds
	// more than k entries.
	set map[uint64]struct{}
}

// New returns an empty KMV keeping the k smallest distinct hashes under
// the given seed. k <= 0 selects DefaultK. Sketches must share both k
// and seed to be merged or union-estimated.
func New(k int, seed uint64) *KMV {
	if k <= 0 {
		k = DefaultK
	}
	return &KMV{k: k, seed: seed, set: make(map[uint64]struct{}, 8)}
}

// K reports the configured register size.
func (s *KMV) K() int { return s.k }

// Seed reports the hash seed the sketch was built with.
func (s *KMV) Seed() uint64 { return s.seed }

// Count reports how many distinct hashes the sketch currently keeps
// (min(k, distinct elements observed)).
func (s *KMV) Count() int { return len(s.heap) }

// Insert adds one element, identified by a packed uint64 key, to the
// stream. Duplicate keys never change the sketch.
func (s *KMV) Insert(key uint64) {
	s.InsertHash(bloom.Hash64(key, s.seed))
}

// InsertHash adds a pre-hashed element. Exposed so merges and callers
// that batch-hash can skip rehashing; h must come from bloom.Hash64
// under the sketch's own seed for estimates to mean anything.
func (s *KMV) InsertHash(h uint64) {
	if _, dup := s.set[h]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.set[h] = struct{}{}
		s.heap = append(s.heap, h)
		s.siftUp(len(s.heap) - 1)
		return
	}
	if h >= s.heap[0] {
		return
	}
	delete(s.set, s.heap[0])
	s.set[h] = struct{}{}
	s.heap[0] = h
	s.siftDown(0)
}

// Estimate returns the estimated distinct cardinality of the inserted
// stream. While fewer than k distinct elements have been seen the
// answer is exact; afterwards it is the unbiased (k-1)/U(k) estimator.
// Estimate is monotone non-decreasing under Insert.
func (s *KMV) Estimate() float64 {
	n := len(s.heap)
	if n < s.k {
		return float64(n)
	}
	return estimateFromKth(s.k, s.heap[0])
}

// RelativeStdError reports the theoretical relative standard error of
// the estimator at this register size, ~= 1/sqrt(k-2).
func (s *KMV) RelativeStdError() float64 {
	if s.k <= 2 {
		return 1
	}
	return 1 / math.Sqrt(float64(s.k-2))
}

// Merge folds other into s, leaving s the bottom-k sketch of the union
// of both input streams. Both sketches must share k and seed; Merge
// panics otherwise, because silently mixing hash spaces would produce
// garbage estimates. other is left unmodified; a nil or empty other is
// a no-op.
func (s *KMV) Merge(other *KMV) {
	if other == nil || len(other.heap) == 0 {
		return
	}
	if other.k != s.k || other.seed != s.seed {
		panic("sketch: Merge across mismatched k or seed")
	}
	for _, h := range other.heap {
		s.InsertHash(h)
	}
}

// Clone returns an independent deep copy.
func (s *KMV) Clone() *KMV {
	c := &KMV{k: s.k, seed: s.seed, heap: append([]uint64(nil), s.heap...),
		set: make(map[uint64]struct{}, len(s.set))}
	for h := range s.set {
		c.set[h] = struct{}{}
	}
	return c
}

// Reset empties the sketch in place, retaining k and seed.
func (s *KMV) Reset() {
	s.heap = s.heap[:0]
	clear(s.set)
}

// UnionEstimate estimates the distinct cardinality of the union of the
// two sketched streams without building a merged sketch. Either
// argument may be nil or empty. Both must share k and seed (panics
// otherwise). When the combined distinct hash count stays below k the
// result is exact, mirroring Estimate.
func UnionEstimate(a, b *KMV) float64 {
	switch {
	case a == nil || len(a.heap) == 0:
		if b == nil {
			return 0
		}
		return b.Estimate()
	case b == nil || len(b.heap) == 0:
		return a.Estimate()
	}
	if a.k != b.k || a.seed != b.seed {
		panic("sketch: UnionEstimate across mismatched k or seed")
	}
	// Distinct union of the kept sets; dedup via the larger set's map.
	big, small := a, b
	if len(small.heap) > len(big.heap) {
		big, small = small, big
	}
	distinct := len(big.heap)
	var extra []uint64
	for _, h := range small.heap {
		if _, dup := big.set[h]; !dup {
			distinct++
			extra = append(extra, h)
		}
	}
	if distinct < a.k {
		// Both sketches were exact and the union still fits below k.
		return float64(distinct)
	}
	// Need the k-th smallest of the union: the k-th smallest element of
	// big.heap ∪ extra. Selection over <= 2k values; a simple bounded
	// max-heap pass keeps this allocation-light and O(n log k).
	kth := kthSmallest(a.k, big.heap, extra)
	return estimateFromKth(a.k, kth)
}

func estimateFromKth(k int, kth uint64) float64 {
	// Map the k-th smallest hash to U in (0, 1]; +1 keeps U nonzero.
	u := (float64(kth) + 1) / two64
	return float64(k-1) / u
}

// kthSmallest returns the k-th smallest value of the concatenation of
// the two slices (which together hold at least k values, all distinct).
func kthSmallest(k int, xs, ys []uint64) uint64 {
	// Max-heap of the k smallest seen so far.
	heap := make([]uint64, 0, k)
	push := func(h uint64) {
		if len(heap) < k {
			heap = append(heap, h)
			for i := len(heap) - 1; i > 0; {
				p := (i - 1) / 2
				if heap[p] >= heap[i] {
					break
				}
				heap[p], heap[i] = heap[i], heap[p]
				i = p
			}
			return
		}
		if h >= heap[0] {
			return
		}
		heap[0] = h
		maxHeapSiftDown(heap, 0)
	}
	for _, h := range xs {
		push(h)
	}
	for _, h := range ys {
		push(h)
	}
	return heap[0]
}

func (s *KMV) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p] >= s.heap[i] {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *KMV) siftDown(i int) { maxHeapSiftDown(s.heap, i) }

func maxHeapSiftDown(heap []uint64, i int) {
	n := len(heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && heap[l] > heap[largest] {
			largest = l
		}
		if r < n && heap[r] > heap[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		heap[i], heap[largest] = heap[largest], heap[i]
		i = largest
	}
}
