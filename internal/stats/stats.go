// Package stats provides the small statistics and table-rendering
// helpers the experiment harness uses to aggregate runs and print the
// paper's figures as text.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	best := xs[0]
	for _, x := range xs[1:] {
		if x > best {
			best = x
		}
	}
	return best
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) of xs by
// nearest-rank, 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Confusion accumulates detection outcomes over labeled flows.
type Confusion struct {
	TruePositives  int // attack flows flagged
	FalseNegatives int // attack flows missed
	FalsePositives int // benign flows flagged
	TrueNegatives  int // benign flows passed
}

// Observe records one flow outcome.
func (c *Confusion) Observe(isAttack, flagged bool) {
	switch {
	case isAttack && flagged:
		c.TruePositives++
	case isAttack && !flagged:
		c.FalseNegatives++
	case !isAttack && flagged:
		c.FalsePositives++
	default:
		c.TrueNegatives++
	}
}

// DetectionRate returns TP/(TP+FN) as a percentage (0 when no attacks).
func (c Confusion) DetectionRate() float64 {
	total := c.TruePositives + c.FalseNegatives
	if total == 0 {
		return 0
	}
	return 100 * float64(c.TruePositives) / float64(total)
}

// FalsePositiveRate returns FP/(FP+TN) as a percentage (0 when no benign
// traffic).
func (c Confusion) FalsePositiveRate() float64 {
	total := c.FalsePositives + c.TrueNegatives
	if total == 0 {
		return 0
	}
	return 100 * float64(c.FalsePositives) / float64(total)
}

// Add merges another confusion matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.TruePositives += o.TruePositives
	c.FalseNegatives += o.FalseNegatives
	c.FalsePositives += o.FalsePositives
	c.TrueNegatives += o.TrueNegatives
}

// Table renders a simple aligned text table: one row per Rows entry, with
// the header repeated from Columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
