package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMaxStddev(t *testing.T) {
	xs := []float64{2, 4, 6, 8}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Max(xs); got != 8 {
		t.Errorf("Max = %v", got)
	}
	if got := Stddev(xs); math.Abs(got-math.Sqrt(5)) > 1e-12 {
		t.Errorf("Stddev = %v, want sqrt(5)", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty-input statistics should be 0")
	}
	if Stddev([]float64{7}) != 0 {
		t.Error("single-element stddev should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {10, 10}, {50, 50}, {90, 90}, {100, 100}, {-5, 10}, {200, 100},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestConfusionRates(t *testing.T) {
	var c Confusion
	// 8 of 10 attacks detected, 2 of 100 benign flagged.
	for i := 0; i < 10; i++ {
		c.Observe(true, i < 8)
	}
	for i := 0; i < 100; i++ {
		c.Observe(false, i < 2)
	}
	if got := c.DetectionRate(); got != 80 {
		t.Errorf("DetectionRate = %v", got)
	}
	if got := c.FalsePositiveRate(); got != 2 {
		t.Errorf("FalsePositiveRate = %v", got)
	}
	if c.TruePositives != 8 || c.FalseNegatives != 2 || c.FalsePositives != 2 || c.TrueNegatives != 98 {
		t.Errorf("counts %+v", c)
	}
}

func TestConfusionEmptyRates(t *testing.T) {
	var c Confusion
	if c.DetectionRate() != 0 || c.FalsePositiveRate() != 0 {
		t.Error("empty confusion rates should be 0")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TruePositives: 1, FalseNegatives: 2, FalsePositives: 3, TrueNegatives: 4}
	b := Confusion{TruePositives: 10, FalseNegatives: 20, FalsePositives: 30, TrueNegatives: 40}
	a.Add(b)
	if a.TruePositives != 11 || a.FalseNegatives != 22 || a.FalsePositives != 33 || a.TrueNegatives != 44 {
		t.Errorf("Add result %+v", a)
	}
}

func TestConfusionObserveProperty(t *testing.T) {
	f := func(events []bool) bool {
		var c Confusion
		for i, attack := range events {
			c.Observe(attack, i%2 == 0)
		}
		total := c.TruePositives + c.FalseNegatives + c.FalsePositives + c.TrueNegatives
		return total == len(events)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "Figure 15: Attack detection rate",
		Columns: []string{"attack volume", "single set", "10 sets"},
	}
	tab.AddRow("2%", "83.1%", "70.4%")
	tab.AddRow("4%", "82.8%", "69.9%")
	out := tab.String()
	for _, want := range []string{"Figure 15", "attack volume", "83.1%", "70.4%", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(3.14159); got != "3.14%" {
		t.Errorf("Pct = %q", got)
	}
}
