package packet

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

func samplePacket(i int) Packet {
	return Packet{
		Time:     time.Date(2005, 4, 1, 0, 0, 0, i*1000, time.UTC),
		Src:      netaddr.IPv4(0x0a000001 + uint32(i)).Addr(),
		Dst:      netaddr.IPv4(0xc0000201).Addr(),
		Proto:    flow.ProtoTCP,
		SrcPort:  uint16(1024 + i),
		DstPort:  80,
		TOS:      0,
		Length:   uint16(40 + i),
		TCPFlags: FlagSYN,
	}
}

func TestFlowKey(t *testing.T) {
	p := samplePacket(0)
	k := p.FlowKey(3)
	if k.Src != p.Src || k.Dst != p.Dst || k.Proto != p.Proto ||
		k.SrcPort != p.SrcPort || k.DstPort != p.DstPort || k.InputIf != 3 {
		t.Errorf("FlowKey = %+v from %+v", k, p)
	}
}

func TestIsFragment(t *testing.T) {
	p := samplePacket(0)
	if p.IsFragment() {
		t.Error("plain packet reported as fragment")
	}
	p.FragOff = 185
	if !p.IsFragment() {
		t.Error("offset fragment not detected")
	}
	p.FragOff = 0
	p.MoreFrag = true
	if !p.IsFragment() {
		t.Error("more-fragments packet not detected")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want []Packet
	for i := 0; i < 100; i++ {
		p := samplePacket(i)
		if i%7 == 0 {
			p.Proto = flow.ProtoUDP
			p.DstPort = 1434
			p.TCPFlags = 0
		}
		if i%11 == 0 {
			p.MoreFrag = true
			p.FragOff = uint16(i)
		}
		want = append(want, p)
		if err := tw.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != 100 {
		t.Errorf("Count = %d", tw.Count())
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("packet %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTraceReaderRejectsBadMagic(t *testing.T) {
	_, err := NewTraceReader(bytes.NewReader([]byte("XXXX\x00\x01\x00\x00")))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("err = %v, want ErrBadTrace", err)
	}
}

func TestTraceReaderRejectsBadVersion(t *testing.T) {
	_, err := NewTraceReader(bytes.NewReader([]byte("IFTR\x00\x09\x00\x00")))
	if !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestTraceReaderShortHeader(t *testing.T) {
	_, err := NewTraceReader(bytes.NewReader([]byte("IF")))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("err = %v, want ErrBadTrace", err)
	}
}

func TestTraceReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(samplePacket(1)); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	tr, err := NewTraceReader(bytes.NewReader(raw[:len(raw)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Read(); !errors.Is(err, ErrShortRecord) {
		t.Errorf("err = %v, want ErrShortRecord", err)
	}
}

func TestTraceEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Read(); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
	pkts, err := NewMustReader(t, buf.Bytes()).ReadAll()
	if err != nil || len(pkts) != 0 {
		t.Errorf("ReadAll on empty trace = %d pkts, %v", len(pkts), err)
	}
}

// NewMustReader is a test helper building a TraceReader over raw bytes.
func NewMustReader(t *testing.T, raw []byte) *TraceReader {
	t.Helper()
	tr, err := NewTraceReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		var buf bytes.Buffer
		tw, err := NewTraceWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(50) + 1
		var want []Packet
		for i := 0; i < n; i++ {
			p := Packet{
				Time:     time.Unix(rng.Int63n(1<<32), int64(rng.Intn(1e9))).UTC(),
				Src:      netaddr.IPv4(rng.Uint32()).Addr(),
				Dst:      netaddr.IPv4(rng.Uint32()).Addr(),
				Proto:    uint8(rng.Intn(256)),
				SrcPort:  uint16(rng.Intn(65536)),
				DstPort:  uint16(rng.Intn(65536)),
				TOS:      uint8(rng.Intn(256)),
				Length:   uint16(rng.Intn(65536)),
				TCPFlags: uint8(rng.Intn(64)),
				FragOff:  uint16(rng.Intn(1 << 13)),
				MoreFrag: rng.Intn(2) == 1,
			}
			want = append(want, p)
			if err := tw.Write(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := NewMustReader(t, buf.Bytes()).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d packet %d mismatch:\n got %+v\nwant %+v", trial, i, got[i], want[i])
			}
		}
	}
}
