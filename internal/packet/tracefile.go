package packet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"infilter/internal/netaddr"
)

// Trace-file format: the DAG-capture substitute the testbed replays. A
// trace is a little header followed by fixed-size packet records ordered by
// timestamp. Binary, big-endian, so traces round-trip across platforms.
//
//	header : magic "IFTR" | uint16 version | uint16 reserved
//	record : int64 unixNanos | uint32 src | uint32 dst |
//	         uint8 proto | uint8 tos | uint8 tcpFlags | uint8 flagBits |
//	         uint16 srcPort | uint16 dstPort | uint16 length | uint16 fragOff
//
// flagBits bit0 = more-fragments.

const (
	traceMagic   = "IFTR"
	traceVersion = 1
	recordSize   = 8 + 4 + 4 + 4 + 2 + 2 + 2 + 2
)

// Errors returned by the trace codec.
var (
	ErrBadTrace    = errors.New("packet: malformed trace file")
	ErrBadVersion  = errors.New("packet: unsupported trace version")
	ErrShortRecord = errors.New("packet: truncated trace record")
)

// TraceWriter streams packets into a trace file.
type TraceWriter struct {
	w     *bufio.Writer
	count int
}

// NewTraceWriter writes the trace header and returns a writer.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, fmt.Errorf("packet: write trace header: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], traceVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("packet: write trace header: %w", err)
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one packet record.
func (tw *TraceWriter) Write(p Packet) error {
	var rec [recordSize]byte
	binary.BigEndian.PutUint64(rec[0:8], uint64(p.Time.UnixNano()))
	binary.BigEndian.PutUint32(rec[8:12], uint32(p.Src))
	binary.BigEndian.PutUint32(rec[12:16], uint32(p.Dst))
	rec[16] = p.Proto
	rec[17] = p.TOS
	rec[18] = p.TCPFlags
	if p.MoreFrag {
		rec[19] = 1
	}
	binary.BigEndian.PutUint16(rec[20:22], p.SrcPort)
	binary.BigEndian.PutUint16(rec[22:24], p.DstPort)
	binary.BigEndian.PutUint16(rec[24:26], p.Length)
	binary.BigEndian.PutUint16(rec[26:28], p.FragOff)
	if _, err := tw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("packet: write trace record: %w", err)
	}
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *TraceWriter) Count() int { return tw.count }

// Flush flushes buffered records to the underlying writer.
func (tw *TraceWriter) Flush() error {
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("packet: flush trace: %w", err)
	}
	return nil
}

// TraceReader streams packets out of a trace file.
type TraceReader struct {
	r *bufio.Reader
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[0:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != traceVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	return &TraceReader{r: br}, nil
}

// Read returns the next packet, or io.EOF at end of trace.
func (tr *TraceReader) Read() (Packet, error) {
	var rec [recordSize]byte
	if _, err := io.ReadFull(tr.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %v", ErrShortRecord, err)
	}
	return Packet{
		Time:     time.Unix(0, int64(binary.BigEndian.Uint64(rec[0:8]))).UTC(),
		Src:      netaddr.IPv4(binary.BigEndian.Uint32(rec[8:12])),
		Dst:      netaddr.IPv4(binary.BigEndian.Uint32(rec[12:16])),
		Proto:    rec[16],
		TOS:      rec[17],
		TCPFlags: rec[18],
		MoreFrag: rec[19]&1 != 0,
		SrcPort:  binary.BigEndian.Uint16(rec[20:22]),
		DstPort:  binary.BigEndian.Uint16(rec[22:24]),
		Length:   binary.BigEndian.Uint16(rec[24:26]),
		FragOff:  binary.BigEndian.Uint16(rec[26:28]),
	}, nil
}

// ReadAll drains the remaining records.
func (tr *TraceReader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
