package packet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"infilter/internal/netaddr"
)

// Trace-file format: the DAG-capture substitute the testbed replays. A
// trace is a little header followed by fixed-size packet records ordered by
// timestamp. Binary, big-endian, so traces round-trip across platforms.
//
//	header    : magic "IFTR" | uint16 version | uint16 reserved
//	record v1 : int64 unixNanos | uint32 src | uint32 dst |
//	            uint8 proto | uint8 tos | uint8 tcpFlags | uint8 flagBits |
//	            uint16 srcPort | uint16 dstPort | uint16 length | uint16 fragOff
//	record v2 : int64 unixNanos | src[16] | dst[16] | uint8 family |
//	            uint8 proto | uint8 tos | uint8 tcpFlags | uint8 flagBits |
//	            uint16 srcPort | uint16 dstPort | uint16 length | uint16 fragOff
//
// flagBits bit0 = more-fragments. v2 carries the addresses as raw
// 16-byte values (v4 mapped 4-in-6) plus a family byte (4 or 6; both
// addresses of a packet share one family). Writers emit v2; readers
// accept v1 traces as v4-only, so pre-dual-stack trace files replay
// unchanged.

const (
	traceMagic      = "IFTR"
	traceVersion    = 2
	traceVersionOld = 1
	recordSizeV1    = 8 + 4 + 4 + 4 + 2 + 2 + 2 + 2
	recordSize      = 8 + 16 + 16 + 1 + 4 + 2 + 2 + 2 + 2
)

// Errors returned by the trace codec.
var (
	ErrBadTrace    = errors.New("packet: malformed trace file")
	ErrBadVersion  = errors.New("packet: unsupported trace version")
	ErrShortRecord = errors.New("packet: truncated trace record")
)

// TraceWriter streams packets into a trace file.
type TraceWriter struct {
	w     *bufio.Writer
	count int
}

// NewTraceWriter writes the trace header and returns a writer.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return nil, fmt.Errorf("packet: write trace header: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], traceVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("packet: write trace header: %w", err)
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one packet record (v2 layout).
func (tw *TraceWriter) Write(p Packet) error {
	var rec [recordSize]byte
	binary.BigEndian.PutUint64(rec[0:8], uint64(p.Time.UnixNano()))
	src16, dst16 := p.Src.As16(), p.Dst.As16()
	copy(rec[8:24], src16[:])
	copy(rec[24:40], dst16[:])
	rec[40] = byte(p.Src.Family())
	rec[41] = p.Proto
	rec[42] = p.TOS
	rec[43] = p.TCPFlags
	if p.MoreFrag {
		rec[44] = 1
	}
	binary.BigEndian.PutUint16(rec[45:47], p.SrcPort)
	binary.BigEndian.PutUint16(rec[47:49], p.DstPort)
	binary.BigEndian.PutUint16(rec[49:51], p.Length)
	binary.BigEndian.PutUint16(rec[51:53], p.FragOff)
	if _, err := tw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("packet: write trace record: %w", err)
	}
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *TraceWriter) Count() int { return tw.count }

// Flush flushes buffered records to the underlying writer.
func (tw *TraceWriter) Flush() error {
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("packet: flush trace: %w", err)
	}
	return nil
}

// TraceReader streams packets out of a trace file.
type TraceReader struct {
	r       *bufio.Reader
	version uint16
}

// NewTraceReader validates the header and returns a reader.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, hdr[0:4])
	}
	v := binary.BigEndian.Uint16(hdr[4:6])
	if v != traceVersion && v != traceVersionOld {
		return nil, fmt.Errorf("%w: version %d", ErrBadVersion, v)
	}
	return &TraceReader{r: br, version: v}, nil
}

// Read returns the next packet, or io.EOF at end of trace.
func (tr *TraceReader) Read() (Packet, error) {
	if tr.version == traceVersionOld {
		return tr.readV1()
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(tr.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %v", ErrShortRecord, err)
	}
	var src16, dst16 [16]byte
	copy(src16[:], rec[8:24])
	copy(dst16[:], rec[24:40])
	src, dst := netaddr.AddrFrom16(src16), netaddr.AddrFrom16(dst16)
	switch rec[40] {
	case byte(netaddr.FamilyV4):
		src, dst = src.Unmap(), dst.Unmap()
	case byte(netaddr.FamilyV6):
	case byte(netaddr.FamilyNone):
		// A record written from a zero Packet round-trips as one.
		src, dst = netaddr.Addr{}, netaddr.Addr{}
	default:
		return Packet{}, fmt.Errorf("%w: family byte %d", ErrBadTrace, rec[40])
	}
	return Packet{
		Time:     time.Unix(0, int64(binary.BigEndian.Uint64(rec[0:8]))).UTC(),
		Src:      src,
		Dst:      dst,
		Proto:    rec[41],
		TOS:      rec[42],
		TCPFlags: rec[43],
		MoreFrag: rec[44]&1 != 0,
		SrcPort:  binary.BigEndian.Uint16(rec[45:47]),
		DstPort:  binary.BigEndian.Uint16(rec[47:49]),
		Length:   binary.BigEndian.Uint16(rec[49:51]),
		FragOff:  binary.BigEndian.Uint16(rec[51:53]),
	}, nil
}

// readV1 parses the pre-dual-stack 28-byte record (v4 addresses only).
func (tr *TraceReader) readV1() (Packet, error) {
	var rec [recordSizeV1]byte
	if _, err := io.ReadFull(tr.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("%w: %v", ErrShortRecord, err)
	}
	return Packet{
		Time:     time.Unix(0, int64(binary.BigEndian.Uint64(rec[0:8]))).UTC(),
		Src:      netaddr.IPv4(binary.BigEndian.Uint32(rec[8:12])).Addr(),
		Dst:      netaddr.IPv4(binary.BigEndian.Uint32(rec[12:16])).Addr(),
		Proto:    rec[16],
		TOS:      rec[17],
		TCPFlags: rec[18],
		MoreFrag: rec[19]&1 != 0,
		SrcPort:  binary.BigEndian.Uint16(rec[20:22]),
		DstPort:  binary.BigEndian.Uint16(rec[22:24]),
		Length:   binary.BigEndian.Uint16(rec[24:26]),
		FragOff:  binary.BigEndian.Uint16(rec[26:28]),
	}, nil
}

// ReadAll drains the remaining records.
func (tr *TraceReader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
