// Package packet models the IP packets (either family) the testbed's
// traffic generators emit and the trace format (a DAG-file substitute)
// Dagflow replays. Only the header fields the flow accounting and attack
// shapes depend on are modeled; payload is represented by length alone.
package packet

import (
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// TCP flag bits (subset used by flow expiry and attack shapes).
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// Packet is one IPv4 packet observation: timestamped headers plus total
// on-wire length.
type Packet struct {
	Time     time.Time
	Src      netaddr.Addr
	Dst      netaddr.Addr
	Proto    uint8
	SrcPort  uint16 // TCP/UDP source port; ICMP type<<8|code
	DstPort  uint16 // TCP/UDP destination port; 0 for ICMP
	TOS      uint8
	Length   uint16 // total IP length in bytes
	TCPFlags uint8  // valid when Proto == flow.ProtoTCP
	FragOff  uint16 // fragment offset in 8-byte units; nonzero marks fragments
	MoreFrag bool   // IP "more fragments" bit
	TTL      uint8  // IP time-to-live (hop limit); 0 means unknown
}

// FlowKey derives the NetFlow key of p as seen on input interface ifIndex.
func (p Packet) FlowKey(ifIndex uint16) flow.Key {
	return flow.Key{
		Src:     p.Src,
		Dst:     p.Dst,
		Proto:   p.Proto,
		SrcPort: p.SrcPort,
		DstPort: p.DstPort,
		TOS:     p.TOS,
		InputIf: ifIndex,
	}
}

// IsFragment reports whether p is a fragment (offset != 0 or more-fragments
// set), the shape Teardrop/Jolt-style attacks exploit.
func (p Packet) IsFragment() bool {
	return p.FragOff != 0 || p.MoreFrag
}
