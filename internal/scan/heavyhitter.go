package scan

import (
	"infilter/internal/bloom"
	"infilter/internal/netaddr"
	"infilter/internal/telemetry"
)

// HeavyHitter identifies flood sources among the suspect stream in
// bounded memory: a multistage conservative-update sketch (bloom.Sketch)
// counts suspect flows per source address, and a source whose estimate
// crosses the threshold is flagged as a heavy hitter. It sits in front
// of Scan Analysis in the enhanced pipeline: a spoofed flood hammering
// from few sources is recognized by volume alone, before its flows can
// churn the scan buffer, and with no per-source state — memory is fixed
// at stages × counters × 4 bytes no matter how many sources the flood
// cycles through.
//
// The sketch decays (all counters halve) every DecayEvery observations,
// so the threshold is effectively "this many suspect flows within the
// recent window": sustained sources keep their counters pinned across
// decays while burst noise ages out — the adaptive behavior of the
// multistage-filter flow-identification scheme the sketch implements.
//
// Estimates never undercount, so a true flood source is never missed;
// a hash-collision overcount can flag a source early, which costs one
// alert for a flow that was already EIA-suspect — the same
// false-positive direction the scan thresholds already accept.
//
// Not safe for concurrent use: like the Analyzer, every pipeline shard
// owns its own HeavyHitter (a flood arrives through one ingress, hence
// one shard, so per-shard counting preserves detection).
type HeavyHitter struct {
	cfg        HeavyHitterConfig
	sketch     *bloom.Sketch
	sinceDecay int
	metrics    *HeavyHitterMetrics
}

// HeavyHitterConfig tunes the flood-source identifier.
type HeavyHitterConfig struct {
	// Threshold is the suspect-flow count (within the decay window) at
	// which a source is flagged. Zero or negative disables the stage
	// entirely — the pipeline then behaves exactly as without it.
	Threshold int
	// Stages is the sketch depth. Zero defaults to 4.
	Stages int
	// Counters is the per-stage counter count (rounded up to a power of
	// two). Zero defaults to 4096 (64 KiB per shard at 4 stages).
	Counters int
	// DecayEvery halves all counters after this many observations. Zero
	// defaults to 8192.
	DecayEvery int
}

// Defaults for HeavyHitterConfig.
const (
	DefaultHeavyHitterStages     = 4
	DefaultHeavyHitterCounters   = 4096
	DefaultHeavyHitterDecayEvery = 8192
)

func (c HeavyHitterConfig) withDefaults() HeavyHitterConfig {
	if c.Stages <= 0 {
		c.Stages = DefaultHeavyHitterStages
	}
	if c.Counters <= 0 {
		c.Counters = DefaultHeavyHitterCounters
	}
	if c.DecayEvery <= 0 {
		c.DecayEvery = DefaultHeavyHitterDecayEvery
	}
	return c
}

// Enabled reports whether the config asks for the stage.
func (c HeavyHitterConfig) Enabled() bool { return c.Threshold > 0 }

// HeavyHitterMetrics count stage activity. One HeavyHitterMetrics may be
// shared by many per-shard HeavyHitters: increments are single atomics.
type HeavyHitterMetrics struct {
	Trips  *telemetry.Counter
	Decays *telemetry.Counter
}

// NewHeavyHitterMetrics registers the heavy-hitter counters on r.
func NewHeavyHitterMetrics(r *telemetry.Registry) *HeavyHitterMetrics {
	return &HeavyHitterMetrics{
		Trips:  r.Counter("infilter_heavyhitter_trips_total", "Suspect flows whose source crossed the heavy-hitter threshold."),
		Decays: r.Counter("infilter_heavyhitter_decays_total", "Heavy-hitter sketch decay (counter-halving) passes."),
	}
}

// heavyHitterSeed keys the sketch hashing; fixed for reproducibility
// (the sketch defends throughput, and estimates only ever overcount).
const heavyHitterSeed = 0x4ea7_1417

// NewHeavyHitter returns a flood-source identifier, or nil when cfg
// disables the stage — callers may Observe on a nil receiver.
func NewHeavyHitter(cfg HeavyHitterConfig) *HeavyHitter {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	return &HeavyHitter{
		cfg:    cfg,
		sketch: bloom.NewSketch(cfg.Stages, cfg.Counters, heavyHitterSeed),
	}
}

// SetMetrics installs stage counters (nil disables). Call before the
// owner starts feeding flows.
func (h *HeavyHitter) SetMetrics(m *HeavyHitterMetrics) {
	if h != nil {
		h.metrics = m
	}
}

// Observe counts one suspect flow from src and reports whether the
// source is a heavy hitter. A nil receiver (stage disabled) never flags.
func (h *HeavyHitter) Observe(src netaddr.Addr) bool {
	if h == nil {
		return false
	}
	est := h.sketch.Observe(sketchKey(src))
	h.sinceDecay++
	if h.sinceDecay >= h.cfg.DecayEvery {
		h.sinceDecay = 0
		h.sketch.Decay()
		if m := h.metrics; m != nil {
			m.Decays.Inc()
		}
	}
	heavy := est >= uint32(h.cfg.Threshold)
	if heavy {
		if m := h.metrics; m != nil {
			m.Trips.Inc()
		}
	}
	return heavy
}

// Estimate returns the current count estimate for src without counting
// (monitoring and tests). Zero on a nil receiver.
func (h *HeavyHitter) Estimate(src netaddr.Addr) uint32 {
	if h == nil {
		return 0
	}
	return h.sketch.Estimate(sketchKey(src))
}

// Reset clears every counter and the decay clock, leaving the stage as
// freshly constructed. Safe on a nil receiver, mirroring Observe, so a
// pipeline reset never needs to know whether the stage is enabled.
func (h *HeavyHitter) Reset() {
	if h == nil {
		return
	}
	h.sketch.Reset()
	h.sinceDecay = 0
}
