package scan

import (
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/sketch"
)

// scanSketchSeed keys every KMV register; fixed for reproducibility
// (the registers defend memory, and below k they count exactly).
const scanSketchSeed = 0x5ca9_90a1

// register is one distinct-count slot of the sketch backend: a KMV for
// the current decay generation plus the previous generation's sketch,
// so estimates cover a sliding window of one-to-two generations and a
// scan burst straddling a rotation is still seen whole. gen records the
// generation the register was last synced to; a register two
// generations stale holds only forgotten history and is dropped.
type register struct {
	cur  *sketch.KMV
	prev *sketch.KMV
	gen  uint64
}

// sync rolls the register forward to generation g, retiring cur to prev
// on a single-step advance and discarding everything on a larger jump.
func (r *register) sync(g uint64, k int) {
	switch {
	case r.gen == g:
	case r.gen+1 == g:
		r.prev = r.cur
		r.cur = sketch.New(k, scanSketchSeed)
		r.gen = g
	default:
		r.cur.Reset()
		r.prev = nil
		r.gen = g
	}
}

// estimate returns the distinct count over the register's window.
func (r *register) estimate(g uint64) float64 {
	switch {
	case r == nil:
		return 0
	case r.gen == g:
		return sketch.UnionEstimate(r.cur, r.prev)
	case r.gen+1 == g:
		// Not yet synced this generation: cur is one window old and
		// still inside the horizon; prev has aged out.
		return r.cur.Estimate()
	default:
		return 0
	}
}

func (a *Analyzer) regEstimate(r *register) float64 { return r.estimate(a.gen) }

// addSketch is the streaming backend's admission path: insert the
// destination host into the port's register and the destination port
// into the host's register, then compare windowed distinct estimates
// against the thresholds. Cost is bounded by the register size k no
// matter how many distinct targets the stream has touched — the
// property the bench gate holds flat from 10x to 1000x cardinality.
func (a *Analyzer) addSketch(rec flow.Record) Result {
	port, host := rec.Key.DstPort, rec.Key.Dst
	res := Result{Buffered: true}

	if pr := a.lookupPortReg(port); pr != nil {
		pr.cur.Insert(sketchKey(host))
		res.NetworkScan = pr.estimate(a.gen) >= float64(a.cfg.NetworkScanThreshold)
	}
	if hr := a.lookupHostReg(host); hr != nil {
		hr.cur.Insert(uint64(rec.Key.DstPort))
		res.HostScan = hr.estimate(a.gen) >= float64(a.cfg.HostScanThreshold)
	}

	a.sinceRotate++
	if a.sinceRotate >= a.cfg.DecayEvery {
		a.rotate()
	}
	return res
}

func (a *Analyzer) lookupPortReg(port uint16) *register {
	if r, ok := a.portRegs[port]; ok {
		r.sync(a.gen, a.cfg.SketchK)
		return r
	}
	if len(a.portRegs) >= a.cfg.MaxRegisters && !a.reclaimPortRegs() {
		a.noteOverflow()
		return nil
	}
	r := &register{cur: sketch.New(a.cfg.SketchK, scanSketchSeed), gen: a.gen}
	a.portRegs[port] = r
	return r
}

func (a *Analyzer) lookupHostReg(host netaddr.Addr) *register {
	if r, ok := a.hostRegs[host]; ok {
		r.sync(a.gen, a.cfg.SketchK)
		return r
	}
	if len(a.hostRegs) >= a.cfg.MaxRegisters && !a.reclaimHostRegs() {
		a.noteOverflow()
		return nil
	}
	r := &register{cur: sketch.New(a.cfg.SketchK, scanSketchSeed), gen: a.gen}
	a.hostRegs[host] = r
	return r
}

// reclaimPortRegs sweeps registers that aged fully out of the window;
// it reports whether any slot was freed.
func (a *Analyzer) reclaimPortRegs() bool {
	freed := false
	for port, r := range a.portRegs {
		if r.gen+1 < a.gen {
			delete(a.portRegs, port)
			freed = true
		}
	}
	return freed
}

func (a *Analyzer) reclaimHostRegs() bool {
	freed := false
	for host, r := range a.hostRegs {
		if r.gen+1 < a.gen {
			delete(a.hostRegs, host)
			freed = true
		}
	}
	return freed
}

// rotate advances the decay generation: registers retire lazily on next
// touch, and registers already two generations stale are dropped so the
// tables shrink back after a burst of distinct targets.
func (a *Analyzer) rotate() {
	a.gen++
	a.sinceRotate = 0
	a.reclaimPortRegs()
	a.reclaimHostRegs()
	if m := a.metrics; m != nil {
		m.SketchDecays.Inc()
	}
}

func (a *Analyzer) noteOverflow() {
	if m := a.metrics; m != nil {
		m.SketchOverflows.Inc()
	}
}
