package scan

import (
	"bufio"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"infilter/internal/netaddr"
	"infilter/internal/telemetry"
)

// TTLProfile is the per-source expected-TTL second-opinion detector
// ("Carrier-Grade Anomaly Detection Using Time-to-Live Header
// Information"): the TTL a source's packets arrive with at an ingress is
// its initial TTL minus its hop distance, which is stable over time, so
// a flow whose observed TTL deviates from the source's learned profile
// by more than a hop-jitter tolerance is being emitted from somewhere
// else — a spoof signal independent of the EIA peer mapping and of the
// NNS traffic statistics. Sources are aggregated to a prefix
// granularity (/24 v4, /48 v6 by default, per the carrier paper) so
// profiles converge quickly even when individual host addresses recur
// rarely.
//
// Unlike Analyzer, one TTLProfile is shared by every pipeline shard:
// profiles must aggregate a source's flows across shards, so the table
// is stripe-locked instead of replicated.
type TTLProfile struct {
	cfg     TTLConfig
	stripes [ttlStripes]ttlStripe
	sources atomic.Int64
	metrics *TTLMetrics
}

type ttlStripe struct {
	mu sync.Mutex
	m  map[netaddr.Addr]ttlEntry
}

type ttlEntry struct {
	expected uint8
	samples  uint32
}

const ttlStripes = 64

// TTLConfig tunes the TTL-profile detector.
type TTLConfig struct {
	// Tolerance is the accepted absolute deviation, in hops, between a
	// flow's TTL and the source's learned expectation. Zero or negative
	// disables the stage entirely.
	Tolerance int
	// MinSamples is how many consistent observations a profile needs
	// before it renders spoof verdicts. Zero defaults to 3.
	MinSamples int
	// MaxSources bounds the profile table. Zero defaults to 262144
	// (~1.3 MiB of entries). At the cap, unseen sources pass unjudged
	// rather than evicting learned state.
	MaxSources int
	// PrefixLen4 / PrefixLen6 set the aggregation granularity. Zero
	// defaults to /24 and /48; use 32/128 for exact per-address
	// profiles.
	PrefixLen4 int
	PrefixLen6 int
}

// Defaults for TTLConfig.
const (
	DefaultTTLMinSamples = 3
	DefaultTTLMaxSources = 262144
	DefaultTTLPrefixLen4 = 24
	DefaultTTLPrefixLen6 = 48
)

// Enabled reports whether the config asks for the stage.
func (c TTLConfig) Enabled() bool { return c.Tolerance > 0 }

func (c TTLConfig) withDefaults() TTLConfig {
	if c.MinSamples <= 0 {
		c.MinSamples = DefaultTTLMinSamples
	}
	if c.MaxSources <= 0 {
		c.MaxSources = DefaultTTLMaxSources
	}
	if c.PrefixLen4 <= 0 {
		c.PrefixLen4 = DefaultTTLPrefixLen4
	}
	if c.PrefixLen6 <= 0 {
		c.PrefixLen6 = DefaultTTLPrefixLen6
	}
	return c
}

// TTLMetrics count detector activity; shared across the pipeline since
// the profile itself is shared.
type TTLMetrics struct {
	Trips  *telemetry.Counter
	Checks *telemetry.Counter
}

// NewTTLMetrics registers the TTL counters on r.
func NewTTLMetrics(r *telemetry.Registry) *TTLMetrics {
	return &TTLMetrics{
		Trips:  r.Counter("infilter_ttl_trips_total", "Flows whose TTL deviated from the source profile beyond tolerance."),
		Checks: r.Counter("infilter_ttl_checks_total", "TTL-bearing flows assessed against a source profile."),
	}
}

// NewTTLProfile returns an empty profile table, or nil when cfg
// disables the stage — callers may Observe on a nil receiver.
func NewTTLProfile(cfg TTLConfig) *TTLProfile {
	if !cfg.Enabled() {
		return nil
	}
	p := &TTLProfile{cfg: cfg.withDefaults()}
	for i := range p.stripes {
		p.stripes[i].m = make(map[netaddr.Addr]ttlEntry)
	}
	return p
}

// SetMetrics installs detector counters (nil disables). Call before the
// owner starts feeding flows. Safe on a nil receiver.
func (p *TTLProfile) SetMetrics(m *TTLMetrics) {
	if p != nil {
		p.metrics = m
	}
}

// Sources reports how many source profiles are currently learned. Zero
// on a nil receiver.
func (p *TTLProfile) Sources() int64 {
	if p == nil {
		return 0
	}
	return p.sources.Load()
}

// key aggregates a source address to the configured prefix granularity.
func (p *TTLProfile) key(src netaddr.Addr) netaddr.Addr {
	bits := p.cfg.PrefixLen4
	if src.Is6() {
		bits = p.cfg.PrefixLen6
	}
	pfx, err := netaddr.NewPrefix(src, bits)
	if err != nil {
		return src
	}
	return pfx.Addr()
}

func (p *TTLProfile) stripe(key netaddr.Addr) *ttlStripe {
	hi, lo := key.Uint64Pair()
	h := (hi*0x9e3779b97f4a7c15 ^ lo) * 0xff51afd7ed558ccd
	return &p.stripes[(h>>58)&(ttlStripes-1)]
}

// Observe assesses one TTL-bearing flow from src and reports whether it
// contradicts the source's learned profile (a spoof verdict).
// Consistent observations fold into the profile; deviating ones do not,
// so a spoofing burst cannot drag a victim's expectation toward the
// attacker's hop distance. ttl == 0 means "no TTL information" (v5
// ingest, TTL-less templates) and is never assessed or learned. Safe on
// a nil receiver, which never flags.
func (p *TTLProfile) Observe(src netaddr.Addr, ttl uint8) bool {
	if p == nil || ttl == 0 || !src.IsValid() {
		return false
	}
	key := p.key(src)
	st := p.stripe(key)
	st.mu.Lock()
	e, known := st.m[key]
	if known && e.samples >= uint32(p.cfg.MinSamples) && deviates(ttl, e.expected, p.cfg.Tolerance) {
		st.mu.Unlock()
		if m := p.metrics; m != nil {
			m.Checks.Inc()
			m.Trips.Inc()
		}
		return true
	}
	if !known {
		if p.sources.Load() >= int64(p.cfg.MaxSources) {
			st.mu.Unlock()
			if m := p.metrics; m != nil {
				m.Checks.Inc()
			}
			return false
		}
		p.sources.Add(1)
	}
	// Learn: expectation is the maximum consistent TTL, i.e. the
	// shortest observed path — route flaps only lengthen paths
	// transiently, and max-folding keeps the profile anchored to the
	// stable shortest route.
	if ttl > e.expected {
		e.expected = ttl
	}
	if e.samples < ^uint32(0) {
		e.samples++
	}
	st.m[key] = e
	st.mu.Unlock()
	if m := p.metrics; m != nil {
		m.Checks.Inc()
	}
	return false
}

// Expected returns the learned TTL and sample count for src's aggregate
// (monitoring and tests); ok is false when no profile exists.
func (p *TTLProfile) Expected(src netaddr.Addr) (ttl uint8, samples uint32, ok bool) {
	if p == nil {
		return 0, 0, false
	}
	key := p.key(src)
	st := p.stripe(key)
	st.mu.Lock()
	e, known := st.m[key]
	st.mu.Unlock()
	return e.expected, e.samples, known
}

func deviates(got, want uint8, tolerance int) bool {
	d := int(got) - int(want)
	if d < 0 {
		d = -d
	}
	return d > tolerance
}

// Checkpoint format: a versioned header then one sorted row per learned
// source, "<addr> <expectedTTL> <samples>". The artifact is additive to
// the state directory — a directory without it simply starts the
// detector cold — matching the EIA checkpoint's forward-compat posture.
const (
	ttlCheckpointMagic   = "# infilter-ttl-checkpoint v"
	ttlCheckpointVersion = 1
)

// WriteCheckpoint writes the learned profiles as a versioned
// checkpoint. Rows are sorted by address so equal states serialize to
// equal bytes.
func (p *TTLProfile) WriteCheckpoint(w io.Writer) error {
	type row struct {
		addr netaddr.Addr
		e    ttlEntry
	}
	var rows []row
	for i := range p.stripes {
		st := &p.stripes[i]
		st.mu.Lock()
		for a, e := range st.m {
			rows = append(rows, row{a, e})
		}
		st.mu.Unlock()
	}
	slices.SortFunc(rows, func(x, y row) int { return x.addr.Compare(y.addr) })
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s%d\n", ttlCheckpointMagic, ttlCheckpointVersion); err != nil {
		return fmt.Errorf("ttl: write checkpoint header: %w", err)
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(bw, "%s %d %d\n", r.addr, r.e.expected, r.e.samples); err != nil {
			return fmt.Errorf("ttl: write checkpoint row: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCheckpointInto loads a checkpoint written by WriteCheckpoint into
// p. Malformed input returns an error and never panics, so a corrupt
// file fails a warm restart loudly instead of poisoning the profiles.
func ReadCheckpointInto(p *TTLProfile, r io.Reader) error {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("ttl: read checkpoint: %w", err)
		}
		return fmt.Errorf("ttl: checkpoint: empty file")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, ttlCheckpointMagic) {
		return fmt.Errorf("ttl: checkpoint: bad header %q", header)
	}
	if v, err := strconv.Atoi(strings.TrimPrefix(header, ttlCheckpointMagic)); err != nil || v != ttlCheckpointVersion {
		return fmt.Errorf("ttl: checkpoint: unsupported version in header %q", header)
	}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return fmt.Errorf("ttl: checkpoint line %d: want 3 fields, got %d", line, len(fields))
		}
		addr, err := netaddr.ParseAddr(fields[0])
		if err != nil {
			return fmt.Errorf("ttl: checkpoint line %d: %w", line, err)
		}
		ttl, err := strconv.ParseUint(fields[1], 10, 8)
		if err != nil {
			return fmt.Errorf("ttl: checkpoint line %d: bad ttl: %w", line, err)
		}
		samples, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return fmt.Errorf("ttl: checkpoint line %d: bad samples: %w", line, err)
		}
		st := p.stripe(addr)
		st.mu.Lock()
		if _, known := st.m[addr]; !known {
			p.sources.Add(1)
		}
		st.m[addr] = ttlEntry{expected: uint8(ttl), samples: uint32(samples)}
		st.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("ttl: read checkpoint: %w", err)
	}
	return nil
}
