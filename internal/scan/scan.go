// Package scan implements the Scan Analysis stage of Enhanced InFilter
// (paper §4.1): suspect-flow counting that recognizes network scans (one
// destination port across many distinct hosts, e.g. Slammer) and host
// scans (many destination ports on one host, e.g. nmap Idlescan). It
// sits between EIA analysis and NNS search.
//
// Two interchangeable counting backends live behind the same Analyzer
// API. The default is streaming: per-port and per-host KMV registers
// (internal/sketch) estimate distinct targets over an unbounded suspect
// stream in fixed memory, with a two-generation rotation that forgets
// old observations the way the paper's bounded buffer does. The paper's
// original 200-entry ring buffer is kept behind Config.ExactBuffer as
// the exact small-N oracle: below the register size k the KMV estimates
// are exact, so the two backends provably emit identical trip decisions
// for streams that fit the ring — the equivalence suite in
// internal/analysis pins that down.
//
// The package also hosts TTLProfile (ttl.go), the per-source
// expected-TTL second-opinion detector.
package scan

import (
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/sketch"
	"infilter/internal/telemetry"
)

// Metrics count scan-threshold trips and sketch-backend activity. One
// Metrics may be shared by many analyzers (analysis.ParallelEngine
// gives each shard its own Analyzer but one shared Metrics):
// increments are single atomics.
type Metrics struct {
	NetworkScans *telemetry.Counter
	HostScans    *telemetry.Counter
	// SketchDecays counts register-generation rotations (the sketch
	// backend's analogue of ring eviction).
	SketchDecays *telemetry.Counter
	// SketchOverflows counts suspect flows that could not open a new
	// register because a register table was at MaxRegisters and held no
	// stale entries to reclaim.
	SketchOverflows *telemetry.Counter
}

// NewMetrics registers the scan counters on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		NetworkScans:    r.Counter("infilter_scan_network_trips_total", "Suspect flows that tripped the network-scan threshold."),
		HostScans:       r.Counter("infilter_scan_host_trips_total", "Suspect flows that tripped the host-scan threshold."),
		SketchDecays:    r.Counter("infilter_sketch_decays_total", "Scan-sketch register generation rotations."),
		SketchOverflows: r.Counter("infilter_sketch_register_overflows_total", "Suspect flows dropped from sketch counting because a register table was full."),
	}
}

// Config tunes the analyzer. Zero values take the paper's settings.
type Config struct {
	// BufferSize bounds the suspect-flow ring of the exact backend and
	// sets the default decay window of the sketch backend. Zero defaults
	// to 200, the size used in the paper's experiments.
	BufferSize int
	// NetworkScanThreshold flags a network scan when one destination port
	// is targeted on at least this many distinct hosts. Zero defaults
	// to 10.
	NetworkScanThreshold int
	// HostScanThreshold flags a host scan when one host is targeted on at
	// least this many distinct ports. Zero defaults to 10.
	HostScanThreshold int
	// ExactBuffer selects the paper's bounded ring buffer instead of the
	// streaming-sketch backend. The ring counts exactly but saturates at
	// BufferSize suspects; it is kept as the small-N oracle the sketch
	// backend is verified against.
	ExactBuffer bool
	// SketchK is the KMV register size of the sketch backend. Zero
	// defaults to sketch.DefaultK (256); larger k tightens estimates at
	// the cost of memory. Ignored under ExactBuffer.
	SketchK int
	// MaxRegisters bounds each register table (per-port and per-host) of
	// the sketch backend. Zero defaults to 65536. Ignored under
	// ExactBuffer.
	MaxRegisters int
	// DecayEvery is the sketch backend's decay window: after this many
	// buffered suspects every register rotates one generation, and a
	// register idle for two generations is dropped, so distinct counts
	// cover the last one-to-two windows of suspects. Zero defaults to
	// BufferSize, aligning the sketch's memory horizon with the ring the
	// oracle keeps. Ignored under ExactBuffer.
	DecayEvery int
}

// Defaults for Config.
const (
	DefaultBufferSize           = 200
	DefaultNetworkScanThreshold = 10
	DefaultHostScanThreshold    = 10
	DefaultMaxRegisters         = 65536
)

func (c Config) withDefaults() Config {
	if c.BufferSize <= 0 {
		c.BufferSize = DefaultBufferSize
	}
	if c.NetworkScanThreshold <= 0 {
		c.NetworkScanThreshold = DefaultNetworkScanThreshold
	}
	if c.HostScanThreshold <= 0 {
		c.HostScanThreshold = DefaultHostScanThreshold
	}
	if c.SketchK <= 0 {
		c.SketchK = sketch.DefaultK
	}
	if c.MaxRegisters <= 0 {
		c.MaxRegisters = DefaultMaxRegisters
	}
	if c.DecayEvery <= 0 {
		c.DecayEvery = c.BufferSize
	}
	return c
}

// Result reports what the analyzer concluded about one suspect flow.
type Result struct {
	// Buffered is set when the flow was probe-like and entered the
	// counting window.
	Buffered bool
	// NetworkScan is set when the flow's destination port crossed the
	// distinct-host threshold.
	NetworkScan bool
	// HostScan is set when the flow's destination host crossed the
	// distinct-port threshold.
	HostScan bool
}

// Attack reports whether either scan counter fired.
func (r Result) Attack() bool { return r.NetworkScan || r.HostScan }

type portHost struct {
	port uint16
	host netaddr.Addr
}

type bufEntry struct {
	port uint16
	host netaddr.Addr
}

// Analyzer runs scan analysis over a suspect stream with one of the two
// counting backends. Not safe for concurrent use: callers that process
// flows in parallel give each worker its own Analyzer, as
// analysis.ParallelEngine does with one per shard (the stream then sees
// only that shard's peers, which preserves detection since scans arrive
// through a single ingress).
type Analyzer struct {
	cfg     Config
	metrics *Metrics

	// Exact ring-buffer oracle (cfg.ExactBuffer).
	ring []bufEntry
	next int
	full bool
	// pairCount tracks duplicate (port,host) pairs inside the buffer so
	// distinct counts stay exact under eviction.
	pairCount map[portHost]int
	// hostsPerPort counts distinct hosts targeted per destination port.
	hostsPerPort map[uint16]int
	// portsPerHost counts distinct ports targeted per destination host.
	portsPerHost map[netaddr.Addr]int

	// Streaming-sketch backend (the default).
	portRegs map[uint16]*register
	hostRegs map[netaddr.Addr]*register
	gen      uint64
	// sinceRotate counts buffered suspects in the current generation;
	// it doubles as the sketch backend's Buffered() answer.
	sinceRotate int
}

// New returns an empty analyzer.
func New(cfg Config) *Analyzer {
	cfg = cfg.withDefaults()
	a := &Analyzer{cfg: cfg}
	if cfg.ExactBuffer {
		a.ring = make([]bufEntry, cfg.BufferSize)
		a.pairCount = make(map[portHost]int)
		a.hostsPerPort = make(map[uint16]int)
		a.portsPerHost = make(map[netaddr.Addr]int)
	} else {
		a.portRegs = make(map[uint16]*register)
		a.hostRegs = make(map[netaddr.Addr]*register)
	}
	return a
}

// probeLike reports whether a flow has the shape of a scan probe: one or
// two packets (a single worm datagram, a bare SYN, a fragment pair).
// Established multi-packet flows never look like probes and are kept out
// of the counting window so benign suspects cannot saturate the counters.
func probeLike(r flow.Record) bool {
	return r.Packets <= 2
}

// Add considers one suspect flow; probe-like flows enter the counting
// window and the result reports whether a scan threshold fired.
func (a *Analyzer) Add(rec flow.Record) Result {
	if !probeLike(rec) {
		return Result{}
	}
	var res Result
	if a.cfg.ExactBuffer {
		res = a.addExact(rec)
	} else {
		res = a.addSketch(rec)
	}
	if m := a.metrics; m != nil {
		if res.NetworkScan {
			m.NetworkScans.Inc()
		}
		if res.HostScan {
			m.HostScans.Inc()
		}
	}
	return res
}

func (a *Analyzer) addExact(rec flow.Record) Result {
	if a.full {
		a.evict(a.ring[a.next])
	}
	e := bufEntry{port: rec.Key.DstPort, host: rec.Key.Dst}
	a.ring[a.next] = e
	a.next++
	if a.next == len(a.ring) {
		a.next = 0
		a.full = true
	}
	a.admit(e)

	return Result{
		Buffered:    true,
		NetworkScan: a.hostsPerPort[e.port] >= a.cfg.NetworkScanThreshold,
		HostScan:    a.portsPerHost[e.host] >= a.cfg.HostScanThreshold,
	}
}

// SetMetrics installs trip counters (nil disables). Call it before the
// analyzer's owner starts feeding it flows.
func (a *Analyzer) SetMetrics(m *Metrics) { a.metrics = m }

func (a *Analyzer) admit(e bufEntry) {
	ph := portHost{port: e.port, host: e.host}
	a.pairCount[ph]++
	if a.pairCount[ph] == 1 {
		a.hostsPerPort[e.port]++
		a.portsPerHost[e.host]++
	}
}

func (a *Analyzer) evict(e bufEntry) {
	ph := portHost{port: e.port, host: e.host}
	a.pairCount[ph]--
	if a.pairCount[ph] == 0 {
		delete(a.pairCount, ph)
		a.hostsPerPort[e.port]--
		if a.hostsPerPort[e.port] == 0 {
			delete(a.hostsPerPort, e.port)
		}
		a.portsPerHost[e.host]--
		if a.portsPerHost[e.host] == 0 {
			delete(a.portsPerHost, e.host)
		}
	}
}

// Buffered returns the number of flows in the current counting window:
// the ring fill level under ExactBuffer, the suspects buffered since
// the last generation rotation otherwise.
func (a *Analyzer) Buffered() int {
	if a.cfg.ExactBuffer {
		if a.full {
			return len(a.ring)
		}
		return a.next
	}
	return a.sinceRotate
}

// HostsOnPort exposes the distinct-host count for a destination port
// (estimated under the sketch backend, exact while below SketchK).
func (a *Analyzer) HostsOnPort(port uint16) int {
	if a.cfg.ExactBuffer {
		return a.hostsPerPort[port]
	}
	return int(a.regEstimate(a.portRegs[port]) + 0.5)
}

// PortsOnHost exposes the distinct-port count for a destination host
// (estimated under the sketch backend, exact while below SketchK).
func (a *Analyzer) PortsOnHost(host netaddr.Addr) int {
	if a.cfg.ExactBuffer {
		return a.portsPerHost[host]
	}
	return int(a.regEstimate(a.hostRegs[host]) + 0.5)
}

// Reset clears all counting state — both backends and the window
// position — leaving the analyzer as freshly constructed.
func (a *Analyzer) Reset() {
	if a.cfg.ExactBuffer {
		a.next = 0
		a.full = false
		clear(a.ring)
		clear(a.pairCount)
		clear(a.hostsPerPort)
		clear(a.portsPerHost)
		return
	}
	clear(a.portRegs)
	clear(a.hostRegs)
	a.gen = 0
	a.sinceRotate = 0
}

// sketchKey folds an address into the 64-bit key space shared by the
// heavy-hitter sketch and the KMV registers. A v4 address keys exactly
// as the pre-dual-stack stage did; v6 mixes both words (collisions only
// inflate an estimate, which is the sketches' contract anyway).
func sketchKey(src netaddr.Addr) uint64 {
	if v4, ok := src.V4(); ok {
		return uint64(v4)
	}
	hi, lo := src.Uint64Pair()
	return hi*0x9e3779b97f4a7c15 ^ lo
}
