// Package scan implements the Scan Analysis stage of Enhanced InFilter
// (paper §4.1): a bounded buffer of suspect flows with two counters that
// recognize network scans (one destination port across many distinct hosts,
// e.g. Slammer) and host scans (many destination ports on one host, e.g.
// nmap Idlescan). It sits between EIA analysis and NNS search.
package scan

import (
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/telemetry"
)

// Metrics count scan-threshold trips. One Metrics may be shared by many
// analyzers (analysis.ParallelEngine gives each shard its own Analyzer
// but one shared Metrics): increments are single atomics.
type Metrics struct {
	NetworkScans *telemetry.Counter
	HostScans    *telemetry.Counter
}

// NewMetrics registers the scan counters on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		NetworkScans: r.Counter("infilter_scan_network_trips_total", "Suspect flows that tripped the network-scan threshold."),
		HostScans:    r.Counter("infilter_scan_host_trips_total", "Suspect flows that tripped the host-scan threshold."),
	}
}

// Config tunes the analyzer. Zero values take the paper's settings.
type Config struct {
	// BufferSize bounds the suspect-flow buffer. Zero defaults to 200,
	// the size used in the paper's experiments.
	BufferSize int
	// NetworkScanThreshold flags a network scan when one destination port
	// is targeted on at least this many distinct hosts. Zero defaults
	// to 10.
	NetworkScanThreshold int
	// HostScanThreshold flags a host scan when one host is targeted on at
	// least this many distinct ports. Zero defaults to 10.
	HostScanThreshold int
}

// Defaults for Config.
const (
	DefaultBufferSize           = 200
	DefaultNetworkScanThreshold = 10
	DefaultHostScanThreshold    = 10
)

func (c Config) withDefaults() Config {
	if c.BufferSize <= 0 {
		c.BufferSize = DefaultBufferSize
	}
	if c.NetworkScanThreshold <= 0 {
		c.NetworkScanThreshold = DefaultNetworkScanThreshold
	}
	if c.HostScanThreshold <= 0 {
		c.HostScanThreshold = DefaultHostScanThreshold
	}
	return c
}

// Result reports what the analyzer concluded about one suspect flow.
type Result struct {
	// Buffered is set when the flow was probe-like and entered the buffer.
	Buffered bool
	// NetworkScan is set when the flow's destination port crossed the
	// distinct-host threshold.
	NetworkScan bool
	// HostScan is set when the flow's destination host crossed the
	// distinct-port threshold.
	HostScan bool
}

// Attack reports whether either scan counter fired.
func (r Result) Attack() bool { return r.NetworkScan || r.HostScan }

type portHost struct {
	port uint16
	host netaddr.Addr
}

type bufEntry struct {
	port uint16
	host netaddr.Addr
}

// Analyzer keeps the suspect-flow ring buffer and the two counting
// structures. Not safe for concurrent use: callers that process flows in
// parallel give each worker its own Analyzer, as analysis.ParallelEngine
// does with one per shard (the buffer then sees only that shard's peers,
// which preserves detection since scans arrive through a single ingress).
type Analyzer struct {
	cfg     Config
	metrics *Metrics

	ring []bufEntry
	next int
	full bool

	// pairCount tracks duplicate (port,host) pairs inside the buffer so
	// distinct counts stay exact under eviction.
	pairCount map[portHost]int
	// hostsPerPort counts distinct hosts targeted per destination port.
	hostsPerPort map[uint16]int
	// portsPerHost counts distinct ports targeted per destination host.
	portsPerHost map[netaddr.Addr]int
}

// New returns an empty analyzer.
func New(cfg Config) *Analyzer {
	cfg = cfg.withDefaults()
	return &Analyzer{
		cfg:          cfg,
		ring:         make([]bufEntry, cfg.BufferSize),
		pairCount:    make(map[portHost]int),
		hostsPerPort: make(map[uint16]int),
		portsPerHost: make(map[netaddr.Addr]int),
	}
}

// probeLike reports whether a flow has the shape of a scan probe: one or
// two packets (a single worm datagram, a bare SYN, a fragment pair).
// Established multi-packet flows never look like probes and are kept out
// of the buffer so benign suspects cannot saturate the counters.
func probeLike(r flow.Record) bool {
	return r.Packets <= 2
}

// Add considers one suspect flow; probe-like flows enter the buffer and
// the result reports whether a scan threshold fired.
func (a *Analyzer) Add(rec flow.Record) Result {
	if !probeLike(rec) {
		return Result{}
	}
	if a.full {
		a.evict(a.ring[a.next])
	}
	e := bufEntry{port: rec.Key.DstPort, host: rec.Key.Dst}
	a.ring[a.next] = e
	a.next++
	if a.next == len(a.ring) {
		a.next = 0
		a.full = true
	}
	a.admit(e)

	res := Result{
		Buffered:    true,
		NetworkScan: a.hostsPerPort[e.port] >= a.cfg.NetworkScanThreshold,
		HostScan:    a.portsPerHost[e.host] >= a.cfg.HostScanThreshold,
	}
	if m := a.metrics; m != nil {
		if res.NetworkScan {
			m.NetworkScans.Inc()
		}
		if res.HostScan {
			m.HostScans.Inc()
		}
	}
	return res
}

// SetMetrics installs trip counters (nil disables). Call it before the
// analyzer's owner starts feeding it flows.
func (a *Analyzer) SetMetrics(m *Metrics) { a.metrics = m }

func (a *Analyzer) admit(e bufEntry) {
	ph := portHost{port: e.port, host: e.host}
	a.pairCount[ph]++
	if a.pairCount[ph] == 1 {
		a.hostsPerPort[e.port]++
		a.portsPerHost[e.host]++
	}
}

func (a *Analyzer) evict(e bufEntry) {
	ph := portHost{port: e.port, host: e.host}
	a.pairCount[ph]--
	if a.pairCount[ph] == 0 {
		delete(a.pairCount, ph)
		a.hostsPerPort[e.port]--
		if a.hostsPerPort[e.port] == 0 {
			delete(a.hostsPerPort, e.port)
		}
		a.portsPerHost[e.host]--
		if a.portsPerHost[e.host] == 0 {
			delete(a.portsPerHost, e.host)
		}
	}
}

// Buffered returns the number of flows currently in the buffer.
func (a *Analyzer) Buffered() int {
	if a.full {
		return len(a.ring)
	}
	return a.next
}

// HostsOnPort exposes the distinct-host count for a destination port.
func (a *Analyzer) HostsOnPort(port uint16) int { return a.hostsPerPort[port] }

// PortsOnHost exposes the distinct-port count for a destination host.
func (a *Analyzer) PortsOnHost(host netaddr.Addr) int { return a.portsPerHost[host] }

// Reset clears the buffer and counters.
func (a *Analyzer) Reset() {
	a.next = 0
	a.full = false
	a.pairCount = make(map[portHost]int)
	a.hostsPerPort = make(map[uint16]int)
	a.portsPerHost = make(map[netaddr.Addr]int)
}
