package scan

import (
	"testing"

	"infilter/internal/netaddr"
	"infilter/internal/telemetry"
)

func TestHeavyHitterDisabled(t *testing.T) {
	if hh := NewHeavyHitter(HeavyHitterConfig{}); hh != nil {
		t.Fatal("zero-value config built a HeavyHitter")
	}
	var hh *HeavyHitter
	hh.SetMetrics(nil) // must not panic
	if hh.Observe(netaddr.IPv4(1).Addr()) {
		t.Error("nil HeavyHitter flagged a source")
	}
	if hh.Estimate(netaddr.IPv4(1).Addr()) != 0 {
		t.Error("nil HeavyHitter reported a nonzero estimate")
	}
}

func TestHeavyHitterFlagsFloodSource(t *testing.T) {
	hh := NewHeavyHitter(HeavyHitterConfig{Threshold: 50})
	flood := netaddr.IPv4(0x0a000001).Addr()
	for i := 0; i < 49; i++ {
		if hh.Observe(flood) {
			t.Fatalf("flagged at observation %d, below threshold 50", i+1)
		}
	}
	if !hh.Observe(flood) {
		t.Fatal("not flagged at the threshold")
	}
	// Once heavy, stays heavy while the flood continues.
	for i := 0; i < 10; i++ {
		if !hh.Observe(flood) {
			t.Fatal("flood source unflagged while still flooding")
		}
	}
	// An unrelated quiet source is untouched.
	if hh.Observe(netaddr.IPv4(0x0a000002).Addr()) {
		t.Error("single-flow source flagged")
	}
}

// TestHeavyHitterDecayAges: burst noise ages out — after enough decay
// windows a stopped source falls back under the threshold.
func TestHeavyHitterDecayAges(t *testing.T) {
	hh := NewHeavyHitter(HeavyHitterConfig{Threshold: 40, DecayEvery: 100})
	burst := netaddr.IPv4(0xc0a80101).Addr()
	for i := 0; i < 60; i++ {
		hh.Observe(burst)
	}
	if hh.Estimate(burst) < 40 {
		t.Fatalf("estimate %d below threshold right after the burst", hh.Estimate(burst))
	}
	// Drive decay windows with other traffic; the burst source is silent.
	for i := 0; i < 400; i++ {
		hh.Observe(netaddr.IPv4(0x01020304 + uint32(i%32)).Addr())
	}
	if est := hh.Estimate(burst); est >= 40 {
		t.Errorf("estimate %d still at threshold after 4 decay windows", est)
	}
}

func TestHeavyHitterMetrics(t *testing.T) {
	r := telemetry.NewRegistry()
	m := NewHeavyHitterMetrics(r)
	hh := NewHeavyHitter(HeavyHitterConfig{Threshold: 10, DecayEvery: 64})
	hh.SetMetrics(m)
	src := netaddr.IPv4(7).Addr()
	for i := 0; i < 64; i++ {
		hh.Observe(src)
	}
	if got := m.Trips.Value(); got != 64-9 {
		t.Errorf("Trips = %d, want %d (observations 10..64)", got, 64-9)
	}
	if got := m.Decays.Value(); got != 1 {
		t.Errorf("Decays = %d, want 1 after exactly DecayEvery observations", got)
	}
}
