package scan

import (
	"testing"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/sketch"
	"infilter/internal/trace"
)

func suspect(dst string, port uint16) flow.Record {
	return flow.Record{
		Key: flow.Key{
			Src:     netaddr.MustParseAddr("61.1.1.1"),
			Dst:     netaddr.MustParseAddr(dst),
			Proto:   flow.ProtoUDP,
			DstPort: port,
		},
		Packets: 1,
		Bytes:   60,
	}
}

func TestNetworkScanDetection(t *testing.T) {
	a := New(Config{NetworkScanThreshold: 5})
	var fired bool
	for i := 0; i < 10; i++ {
		dst := netaddr.FromOctets(192, 0, 2, byte(i+1))
		r := a.Add(suspect(dst.String(), 1434))
		if r.Attack() {
			fired = true
			if i < 4 {
				t.Fatalf("network scan fired after only %d hosts", i+1)
			}
			break
		}
	}
	if !fired {
		t.Fatal("network scan never detected")
	}
}

func TestHostScanDetection(t *testing.T) {
	a := New(Config{HostScanThreshold: 5})
	var fired bool
	for i := 0; i < 10; i++ {
		r := a.Add(suspect("192.0.2.7", uint16(100+i)))
		if r.Attack() {
			fired = true
			if i < 4 {
				t.Fatalf("host scan fired after only %d ports", i+1)
			}
			if !r.HostScan || r.NetworkScan {
				t.Errorf("result flags %+v", r)
			}
			break
		}
	}
	if !fired {
		t.Fatal("host scan never detected")
	}
}

func TestDuplicatePairsDoNotInflateCounts(t *testing.T) {
	a := New(Config{NetworkScanThreshold: 3, HostScanThreshold: 3})
	for i := 0; i < 20; i++ {
		r := a.Add(suspect("192.0.2.1", 80)) // same host, same port
		if r.Attack() {
			t.Fatalf("repeated identical flow flagged as scan at %d", i)
		}
	}
	if a.HostsOnPort(80) != 1 || a.PortsOnHost(netaddr.MustParseAddr("192.0.2.1")) != 1 {
		t.Errorf("distinct counts inflated: %d hosts, %d ports",
			a.HostsOnPort(80), a.PortsOnHost(netaddr.MustParseAddr("192.0.2.1")))
	}
}

func TestBufferEvictionDecaysCounts(t *testing.T) {
	a := New(Config{BufferSize: 4, NetworkScanThreshold: 100, ExactBuffer: true})
	// Fill buffer with 4 distinct hosts on port 9.
	for i := 0; i < 4; i++ {
		a.Add(suspect(netaddr.FromOctets(192, 0, 2, byte(i+1)).String(), 9))
	}
	if a.HostsOnPort(9) != 4 {
		t.Fatalf("HostsOnPort = %d", a.HostsOnPort(9))
	}
	// Push 4 unrelated flows; the port-9 entries must age out.
	for i := 0; i < 4; i++ {
		a.Add(suspect(netaddr.FromOctets(10, 0, 0, byte(i+1)).String(), uint16(5000+i)))
	}
	if a.HostsOnPort(9) != 0 {
		t.Errorf("HostsOnPort(9) = %d after eviction", a.HostsOnPort(9))
	}
	if a.Buffered() != 4 {
		t.Errorf("Buffered = %d, want 4", a.Buffered())
	}
}

func TestBufferedGrowth(t *testing.T) {
	a := New(Config{BufferSize: 10, ExactBuffer: true})
	if a.Buffered() != 0 {
		t.Errorf("empty Buffered = %d", a.Buffered())
	}
	for i := 0; i < 7; i++ {
		a.Add(suspect("192.0.2.1", uint16(i)))
	}
	if a.Buffered() != 7 {
		t.Errorf("Buffered = %d, want 7", a.Buffered())
	}
	for i := 0; i < 10; i++ {
		a.Add(suspect("192.0.2.1", uint16(100+i)))
	}
	if a.Buffered() != 10 {
		t.Errorf("Buffered = %d at capacity", a.Buffered())
	}
}

func TestReset(t *testing.T) {
	a := New(Config{})
	for i := 0; i < 50; i++ {
		a.Add(suspect(netaddr.FromOctets(192, 0, 2, byte(i)).String(), 1434))
	}
	a.Reset()
	if a.Buffered() != 0 || a.HostsOnPort(1434) != 0 {
		t.Error("Reset did not clear state")
	}
	// Still usable after reset.
	r := a.Add(suspect("192.0.2.1", 1434))
	if r.Attack() {
		t.Error("attack flagged right after reset")
	}
}

func TestDefaultsApplied(t *testing.T) {
	a := New(Config{ExactBuffer: true})
	if len(a.ring) != DefaultBufferSize {
		t.Errorf("default buffer %d", len(a.ring))
	}
	if a.cfg.NetworkScanThreshold != DefaultNetworkScanThreshold ||
		a.cfg.HostScanThreshold != DefaultHostScanThreshold {
		t.Errorf("defaults %+v", a.cfg)
	}
	s := New(Config{})
	if s.cfg.SketchK != sketch.DefaultK || s.cfg.MaxRegisters != DefaultMaxRegisters ||
		s.cfg.DecayEvery != DefaultBufferSize {
		t.Errorf("sketch defaults %+v", s.cfg)
	}
	if s.ring != nil || s.portRegs == nil {
		t.Error("default backend is not the sketch path")
	}
}

// TestSlammerFlowsTriggerNetworkScan drives the analyzer with real Slammer
// attack flows aggregated from the trace generator.
func TestSlammerFlowsTriggerNetworkScan(t *testing.T) {
	pkts, err := trace.Generate(trace.AttackSlammer, trace.AttackConfig{
		Seed:      3,
		Src:       netaddr.MustParseAddr("61.1.1.1"),
		DstPrefix: netaddr.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{})
	var fired bool
	for _, p := range pkts {
		if a.Add(flow.Record{Key: p.FlowKey(1), Packets: 1}).NetworkScan {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("slammer flows did not trigger network scan detection")
	}
}

// TestIdlescanFlowsTriggerHostScan does the same with the nmap Idlescan
// shape.
func TestIdlescanFlowsTriggerHostScan(t *testing.T) {
	pkts, err := trace.Generate(trace.AttackIdlescan, trace.AttackConfig{
		Seed:      3,
		Src:       netaddr.MustParseAddr("61.1.1.1"),
		DstPrefix: netaddr.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{})
	var fired bool
	for _, p := range pkts {
		if a.Add(flow.Record{Key: p.FlowKey(1), Packets: 1}).HostScan {
			fired = true
			break
		}
	}
	if !fired {
		t.Error("idlescan flows did not trigger host scan detection")
	}
}

// TestBenignSuspectsRarelyFire feeds benign suspect flows — service traffic
// concentrated on small server pools, as in real ISP traces — and expects
// no scan verdicts.
func TestBenignSuspectsRarelyFire(t *testing.T) {
	a := New(Config{})
	ports := []uint16{80, 25, 21, 53, 443, 110}
	for i := 0; i < 300; i++ {
		// Each service has a handful of servers; hosts per port stay small.
		dst := netaddr.FromOctets(192, 0, 2, byte((i%len(ports))*8+i%4))
		r := a.Add(suspect(dst.String(), ports[i%len(ports)]))
		if r.Attack() {
			t.Fatalf("benign mix flagged at %d: %+v", i, r)
		}
	}
}

// TestEstablishedFlowsBypassBuffer checks that multi-packet flows never
// enter the scan buffer regardless of their spread.
func TestEstablishedFlowsBypassBuffer(t *testing.T) {
	a := New(Config{NetworkScanThreshold: 3})
	for i := 0; i < 20; i++ {
		r := suspect(netaddr.FromOctets(192, 0, 2, byte(i+1)).String(), 80)
		r.Packets = 25
		res := a.Add(r)
		if res.Buffered || res.Attack() {
			t.Fatalf("established flow buffered or flagged: %+v", res)
		}
	}
	if a.Buffered() != 0 {
		t.Errorf("buffer holds %d established flows", a.Buffered())
	}
}
