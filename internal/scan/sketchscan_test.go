package scan

import (
	"math/rand"
	"testing"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// randomSuspect draws a probe-like suspect from a small universe of
// hosts and ports so duplicate (port,host) pairs occur.
func randomSuspect(rng *rand.Rand, hosts, ports int) flow.Record {
	return suspect(
		netaddr.AddrFrom4(10, 0, byte(rng.Intn(hosts)/256), byte(rng.Intn(hosts)%256)).String(),
		uint16(1+rng.Intn(ports)),
	)
}

// TestSketchMatchesExactOracleSmallN drives both backends with the same
// suspect streams, short enough to fit the oracle's ring, and demands
// identical per-flow results — the package-level half of the
// equivalence suite (internal/analysis runs the engine-level half).
func TestSketchMatchesExactOracleSmallN(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		cfg := Config{
			BufferSize:           200,
			NetworkScanThreshold: 2 + rng.Intn(10),
			HostScanThreshold:    2 + rng.Intn(10),
		}
		exact := New(Config{BufferSize: cfg.BufferSize, NetworkScanThreshold: cfg.NetworkScanThreshold,
			HostScanThreshold: cfg.HostScanThreshold, ExactBuffer: true})
		sk := New(cfg)
		n := 1 + rng.Intn(cfg.BufferSize) // never exceeds the ring
		for i := 0; i < n; i++ {
			rec := randomSuspect(rng, 40, 30)
			if rng.Intn(5) == 0 {
				rec.Packets = 10 // established flows bypass both backends
			}
			re, rs := exact.Add(rec), sk.Add(rec)
			if re != rs {
				t.Fatalf("trial %d flow %d: exact=%+v sketch=%+v", trial, i, re, rs)
			}
		}
		// Distinct counts agree too while below k.
		for port := uint16(1); port <= 30; port++ {
			if exact.HostsOnPort(port) != sk.HostsOnPort(port) {
				t.Fatalf("trial %d: HostsOnPort(%d): exact=%d sketch=%d",
					trial, port, exact.HostsOnPort(port), sk.HostsOnPort(port))
			}
		}
	}
}

// TestSketchDetectsBeyondRingCapacity is the point of the rework: a
// network scan spread across far more suspects than the ring holds
// still trips, where the ring's 200-entry window forgets early probes.
func TestSketchDetectsBeyondRingCapacity(t *testing.T) {
	cfg := Config{NetworkScanThreshold: 1000, DecayEvery: 1 << 20}
	a := New(cfg)
	fired := false
	for i := 0; i < 4096 && !fired; i++ {
		dst := netaddr.AddrFrom4(192, 0, byte(i>>8), byte(i))
		fired = a.Add(suspect(dst.String(), 1434)).NetworkScan
	}
	if !fired {
		t.Fatal("sketch backend never tripped a 1000-host scan")
	}
	ring := New(Config{NetworkScanThreshold: 1000, ExactBuffer: true})
	for i := 0; i < 4096; i++ {
		dst := netaddr.AddrFrom4(192, 0, byte(i>>8), byte(i))
		if ring.Add(suspect(dst.String(), 1434)).NetworkScan {
			t.Fatal("ring oracle tripped a threshold above its own capacity — saturation contract changed")
		}
	}
}

// TestSketchDecayForgets checks the generation rotation: distinct
// counts age out after the register sits idle for two windows.
func TestSketchDecayForgets(t *testing.T) {
	a := New(Config{DecayEvery: 8, NetworkScanThreshold: 100})
	for i := 0; i < 8; i++ {
		a.Add(suspect(netaddr.AddrFrom4(192, 0, 2, byte(i+1)).String(), 9))
	}
	if got := a.HostsOnPort(9); got != 8 {
		t.Fatalf("HostsOnPort(9) = %d before decay", got)
	}
	// The 8th add above rotated to generation 1; while the next window
	// fills, port 9's register is one generation old — still within the
	// two-generation horizon.
	for i := 0; i < 7; i++ {
		a.Add(suspect(netaddr.AddrFrom4(10, 0, 0, byte(i+1)).String(), uint16(5000+i)))
	}
	if got := a.HostsOnPort(9); got != 8 {
		t.Fatalf("HostsOnPort(9) = %d one idle window later, want 8", got)
	}
	// Two more rotations push the idle register out entirely.
	for i := 0; i < 17; i++ {
		a.Add(suspect(netaddr.AddrFrom4(10, 0, 1, byte(i+1)).String(), uint16(6000+i)))
	}
	if got := a.HostsOnPort(9); got != 0 {
		t.Fatalf("HostsOnPort(9) = %d after two idle windows, want 0", got)
	}
}

// TestSketchRegisterCapOverflow: at MaxRegisters with nothing stale to
// reclaim, new ports are not admitted (and existing counting still
// works) instead of growing without bound.
func TestSketchRegisterCapOverflow(t *testing.T) {
	a := New(Config{MaxRegisters: 4, DecayEvery: 1 << 20, NetworkScanThreshold: 3})
	for port := uint16(1); port <= 4; port++ {
		a.Add(suspect("192.0.2.1", port))
	}
	a.Add(suspect("192.0.2.1", 999)) // fifth port register: over cap
	if len(a.portRegs) > 4 {
		t.Fatalf("port registers grew past cap: %d", len(a.portRegs))
	}
	if a.HostsOnPort(999) != 0 {
		t.Error("over-cap port acquired a register")
	}
	// Established registers keep counting.
	for i := 0; i < 3; i++ {
		r := a.Add(suspect(netaddr.AddrFrom4(192, 0, 2, byte(10+i)).String(), 1))
		if i == 2 && !r.NetworkScan {
			t.Error("existing register stopped tripping after overflow")
		}
	}
}

// TestResetConsistency is the satellite fix's regression test: Reset on
// either backend and on the heavy hitter clears every counter, not just
// the subset the old test-only paths happened to touch.
func TestResetConsistency(t *testing.T) {
	for _, exact := range []bool{false, true} {
		a := New(Config{ExactBuffer: exact})
		for i := 0; i < 150; i++ {
			a.Add(suspect(netaddr.AddrFrom4(192, 0, 2, byte(i)).String(), uint16(1000+i%7)))
		}
		a.Reset()
		if a.Buffered() != 0 {
			t.Errorf("exact=%v: Buffered=%d after Reset", exact, a.Buffered())
		}
		for p := uint16(1000); p < 1007; p++ {
			if a.HostsOnPort(p) != 0 {
				t.Errorf("exact=%v: HostsOnPort(%d)=%d after Reset", exact, p, a.HostsOnPort(p))
			}
		}
		if a.PortsOnHost(netaddr.AddrFrom4(192, 0, 2, 5)) != 0 {
			t.Errorf("exact=%v: PortsOnHost nonzero after Reset", exact)
		}
		if exact {
			for _, e := range a.ring {
				if e != (bufEntry{}) {
					t.Errorf("ring retains stale entries after Reset")
					break
				}
			}
			if len(a.pairCount) != 0 {
				t.Errorf("pairCount retains %d entries after Reset", len(a.pairCount))
			}
		} else if len(a.portRegs) != 0 || len(a.hostRegs) != 0 || a.gen != 0 {
			t.Errorf("sketch state survives Reset: %d/%d regs gen=%d",
				len(a.portRegs), len(a.hostRegs), a.gen)
		}
		// Usable and quiet right after reset.
		if r := a.Add(suspect("192.0.2.1", 1434)); r.Attack() {
			t.Errorf("exact=%v: attack flagged immediately after Reset", exact)
		}
	}

	src := netaddr.MustParseAddr("61.1.1.1")
	hh := NewHeavyHitter(HeavyHitterConfig{Threshold: 5, DecayEvery: 7})
	for i := 0; i < 6; i++ {
		hh.Observe(src)
	}
	if hh.Estimate(src) == 0 {
		t.Fatal("heavy hitter never counted")
	}
	hh.Reset()
	if hh.Estimate(src) != 0 {
		t.Errorf("heavy hitter estimate %d after Reset", hh.Estimate(src))
	}
	if hh.sinceDecay != 0 {
		t.Errorf("heavy hitter decay clock %d after Reset", hh.sinceDecay)
	}
	if hh.Observe(src) {
		t.Error("heavy hitter flagged first flow after Reset")
	}
	var nilHH *HeavyHitter
	nilHH.Reset() // must not panic
}
