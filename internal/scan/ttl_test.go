package scan

import (
	"bytes"
	"strings"
	"testing"

	"infilter/internal/netaddr"
)

func ttlProfile(tol int) *TTLProfile {
	return NewTTLProfile(TTLConfig{Tolerance: tol})
}

func TestTTLProfileLearnsThenFlags(t *testing.T) {
	p := ttlProfile(3)
	src := netaddr.MustParseAddr("61.1.1.9")
	// Learning phase: consistent TTLs never flag.
	for i := 0; i < DefaultTTLMinSamples; i++ {
		if p.Observe(src, 57) {
			t.Fatalf("flagged during learning at sample %d", i)
		}
	}
	// Within tolerance: clean, and folds into the profile.
	if p.Observe(src, 59) {
		t.Error("TTL within tolerance flagged")
	}
	// Beyond tolerance either way: spoof verdict.
	if !p.Observe(src, 64) {
		t.Error("TTL 64 vs learned 59 (tolerance 3) not flagged")
	}
	if !p.Observe(src, 48) {
		t.Error("TTL 48 vs learned 59 not flagged")
	}
	// A deviating burst must not have dragged the expectation.
	if exp, _, ok := p.Expected(src); !ok || exp != 59 {
		t.Errorf("expected TTL %d after spoof burst, want 59", exp)
	}
}

func TestTTLProfileAggregatesByPrefix(t *testing.T) {
	p := ttlProfile(2)
	// Two hosts in one /24 share a profile.
	a := netaddr.MustParseAddr("203.0.113.10")
	b := netaddr.MustParseAddr("203.0.113.200")
	for i := 0; i < 4; i++ {
		p.Observe(a, 60)
	}
	if !p.Observe(b, 40) {
		t.Error("sibling host in learned /24 not judged against the prefix profile")
	}
	if p.Sources() != 1 {
		t.Errorf("Sources = %d, want 1 aggregate", p.Sources())
	}
}

func TestTTLProfileSkipsZeroTTLAndNil(t *testing.T) {
	p := ttlProfile(1)
	src := netaddr.MustParseAddr("61.1.1.9")
	for i := 0; i < 10; i++ {
		p.Observe(src, 60)
	}
	if p.Observe(src, 0) {
		t.Error("zero TTL (no information) flagged")
	}
	var nilP *TTLProfile
	if nilP.Observe(src, 7) {
		t.Error("nil profile flagged")
	}
	if NewTTLProfile(TTLConfig{}) != nil {
		t.Error("disabled config built a profile")
	}
}

func TestTTLProfileSourceCap(t *testing.T) {
	p := NewTTLProfile(TTLConfig{Tolerance: 2, MaxSources: 3, PrefixLen4: 32})
	for i := 0; i < 10; i++ {
		src := netaddr.AddrFrom4(10, 0, 0, byte(i+1))
		p.Observe(src, 60)
	}
	if p.Sources() != 3 {
		t.Errorf("Sources = %d, want cap 3", p.Sources())
	}
	// Uncapped sources pass unjudged rather than evicting learned state.
	if p.Observe(netaddr.AddrFrom4(10, 0, 0, 9), 5) {
		t.Error("over-cap source was judged")
	}
}

func TestTTLCheckpointRoundTrip(t *testing.T) {
	p := NewTTLProfile(TTLConfig{Tolerance: 3})
	srcs := []string{"61.1.1.9", "203.0.113.77", "2001:db8:77::1"}
	for _, s := range srcs {
		for i := 0; i < 5; i++ {
			p.Observe(netaddr.MustParseAddr(s), 55)
		}
	}
	var buf bytes.Buffer
	if err := p.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# infilter-ttl-checkpoint v1\n") {
		t.Fatalf("missing versioned header: %q", buf.String()[:40])
	}

	q := NewTTLProfile(TTLConfig{Tolerance: 3})
	if err := ReadCheckpointInto(q, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if q.Sources() != p.Sources() {
		t.Fatalf("Sources: got %d want %d", q.Sources(), p.Sources())
	}
	for _, s := range srcs {
		addr := netaddr.MustParseAddr(s)
		gotTTL, gotN, ok := q.Expected(addr)
		wantTTL, wantN, _ := p.Expected(addr)
		if !ok || gotTTL != wantTTL || gotN != wantN {
			t.Errorf("%s: got (%d,%d,%v) want (%d,%d,true)", s, gotTTL, gotN, ok, wantTTL, wantN)
		}
	}
	// Restored profiles keep judging.
	if !q.Observe(netaddr.MustParseAddr("61.1.1.9"), 40) {
		t.Error("restored profile did not flag a deviating TTL")
	}

	// Deterministic serialization: equal state, equal bytes.
	var buf2 bytes.Buffer
	if err := p.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("checkpoint serialization is not deterministic")
	}
}

func TestTTLCheckpointRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"",
		"not a checkpoint\n",
		"# infilter-ttl-checkpoint v9\n",
		"# infilter-ttl-checkpoint v1\nbadrow\n",
		"# infilter-ttl-checkpoint v1\n1.2.3.4 999 1\n",
		"# infilter-ttl-checkpoint v1\n1.2.3.4 60 notanumber\n",
	} {
		p := NewTTLProfile(TTLConfig{Tolerance: 3})
		if err := ReadCheckpointInto(p, strings.NewReader(in)); err == nil {
			t.Errorf("input %q: no error", in)
		}
	}
}
