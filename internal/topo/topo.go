// Package topo models the slice of the Internet that the paper's
// hypothesis validation measures (§3): target networks with a handful of
// peer ASes, Looking Glass sites scattered around the world, BGP-policy
// path selection from each site to each target (stable, changing only on
// rare policy events), redundant/load-shared links on the peer-AS ↔ border
// router adjacency (the source of "raw" last-hop flapping), and IGP churn
// inside transit ASes (the source of mid-path variability).
package topo

import (
	"fmt"
	"math/rand"
	"strconv"

	"infilter/internal/netaddr"
)

// Config parameterizes the simulated topology. Zero values take the
// paper's measurement-campaign defaults.
type Config struct {
	// Seed fixes the construction and all sampling randomness.
	Seed int64
	// Targets is the number of target networks (paper: 20, in the USA).
	Targets int
	// LGSites is the number of Looking Glass sites (paper: 24, global).
	LGSites int
	// MinPeers and MaxPeers bound each target's peer-AS count.
	MinPeers, MaxPeers int
	// ParallelLinkProb is the probability a peer-BR adjacency is realized
	// as a redundant/load-sharing link pair (Figure 4).
	ParallelLinkProb float64
	// CrossSubnetPairProb is the probability a parallel pair's two links
	// sit in different /24 subnets (the case FQDN smoothing handles).
	CrossSubnetPairProb float64
	// LoadShareSwitchProb is the per-sample probability a traceroute takes
	// the other link of a pair.
	LoadShareSwitchProb float64
	// PolicyChangeProb is the per-sample probability that a (site, target)
	// pair's BGP policy shifts it to a different peer AS — a true
	// last-hop change.
	PolicyChangeProb float64
	// MidPathHops is the number of transit hops before the last AS-level
	// hop; IGP churn re-rolls them frequently.
	MidPathHops int
	// IGPChurnProb is the per-sample probability a transit hop's router
	// differs from the previous sample (affects full-path stability only).
	IGPChurnProb float64
}

// Defaults chosen to match the measured change rates of §3.1.1.
const (
	DefaultTargets             = 20
	DefaultLGSites             = 24
	DefaultMinPeers            = 2
	DefaultMaxPeers            = 6
	DefaultParallelLinkProb    = 0.5
	DefaultCrossSubnetPairProb = 0.25
	DefaultLoadShareSwitchProb = 0.08
	DefaultPolicyChangeProb    = 0.005
	DefaultMidPathHops         = 6
	DefaultIGPChurnProb        = 0.15
)

func (c Config) withDefaults() Config {
	if c.Targets <= 0 {
		c.Targets = DefaultTargets
	}
	if c.LGSites <= 0 {
		c.LGSites = DefaultLGSites
	}
	if c.MinPeers <= 0 {
		c.MinPeers = DefaultMinPeers
	}
	if c.MaxPeers < c.MinPeers {
		c.MaxPeers = DefaultMaxPeers
	}
	if c.ParallelLinkProb == 0 {
		c.ParallelLinkProb = DefaultParallelLinkProb
	}
	if c.CrossSubnetPairProb == 0 {
		c.CrossSubnetPairProb = DefaultCrossSubnetPairProb
	}
	if c.LoadShareSwitchProb == 0 {
		c.LoadShareSwitchProb = DefaultLoadShareSwitchProb
	}
	if c.PolicyChangeProb == 0 {
		c.PolicyChangeProb = DefaultPolicyChangeProb
	}
	if c.MidPathHops <= 0 {
		c.MidPathHops = DefaultMidPathHops
	}
	if c.IGPChurnProb == 0 {
		c.IGPChurnProb = DefaultIGPChurnProb
	}
	return c
}

// Hop is one traceroute hop: a router interface address and its DNS name.
type Hop struct {
	Addr netaddr.Addr
	FQDN string
}

// Path is a full IP-level path from a Looking Glass site to a target; the
// last two hops are the peer-AS router and the target's border router.
type Path struct {
	Hops []Hop
}

// PeerHop returns the peer-AS-side hop of the last AS-level adjacency.
func (p Path) PeerHop() Hop { return p.Hops[len(p.Hops)-2] }

// BRHop returns the target-side border-router hop.
func (p Path) BRHop() Hop { return p.Hops[len(p.Hops)-1] }

// link is one physical link of a peer-BR adjacency: addresses + names for
// both ends.
type link struct {
	peer Hop
	br   Hop
}

// adjacency is a peer-AS ↔ border-router adjacency, possibly realized as
// a redundant pair of links.
type adjacency struct {
	links []link
}

// target is one target network with its peers.
type target struct {
	id    int
	peers []adjacency // index = peer AS slot
}

// pairState is the per-(site,target) routing state: the chosen peer slot
// (BGP policy) and the link in use (load sharing).
type pairState struct {
	peerSlot int
	linkIdx  int
}

// Network is the simulated topology plus its mutable routing state.
type Network struct {
	cfg     Config
	rng     *rand.Rand
	targets []target
	state   map[[2]int]*pairState // [site, target] -> state
}

// New constructs the topology.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{
		cfg:   cfg,
		rng:   rng,
		state: make(map[[2]int]*pairState),
	}
	for t := 0; t < cfg.Targets; t++ {
		numPeers := cfg.MinPeers + rng.Intn(cfg.MaxPeers-cfg.MinPeers+1)
		tg := target{id: t}
		for p := 0; p < numPeers; p++ {
			tg.peers = append(tg.peers, n.makeAdjacency(t, p))
		}
		n.targets = append(n.targets, tg)
	}
	return n
}

// makeAdjacency builds the peer-BR links for target t's peer slot p.
func (n *Network) makeAdjacency(t, p int) adjacency {
	base := netaddr.FromOctets(10, byte(t), byte(p*8), 0)
	peerName := fmt.Sprintf("ge-0-0.peer%d.as%d.example.net", p, 65000+t*8+p)
	brName := fmt.Sprintf("br%02d.target%d.example.net", p, t)
	adj := adjacency{links: []link{{
		peer: Hop{Addr: (base + 1).Addr(), FQDN: peerName},
		br:   Hop{Addr: (base + 2).Addr(), FQDN: brName},
	}}}
	if n.rng.Float64() < n.cfg.ParallelLinkProb {
		// Redundant pair: same routers (same FQDNs), second interface pair.
		second := base + 5
		if n.rng.Float64() < n.cfg.CrossSubnetPairProb {
			// The pair's links sit in different /24s.
			second = base + 256 + 5
		}
		adj.links = append(adj.links, link{
			peer: Hop{Addr: second.Addr(), FQDN: peerName},
			br:   Hop{Addr: (second + 1).Addr(), FQDN: brName},
		})
	}
	return adj
}

// Targets returns the number of target networks.
func (n *Network) Targets() int { return n.cfg.Targets }

// LGSites returns the number of Looking Glass sites.
func (n *Network) LGSites() int { return n.cfg.LGSites }

// PeerCount returns how many peer ASes target t has.
func (n *Network) PeerCount(t int) int { return len(n.targets[t].peers) }

// CurrentPeer returns the peer slot currently routing site→target traffic.
func (n *Network) CurrentPeer(site, tgt int) int {
	return n.stateFor(site, tgt).peerSlot
}

func (n *Network) stateFor(site, tgt int) *pairState {
	key := [2]int{site, tgt}
	st, ok := n.state[key]
	if !ok {
		st = &pairState{
			peerSlot: n.rng.Intn(len(n.targets[tgt].peers)),
		}
		n.state[key] = st
	}
	return st
}

// Traceroute samples the IP path from a Looking Glass site to a target,
// advancing the simulated routing state: policy changes occasionally move
// the pair to another peer, load sharing occasionally flips the link in
// use, and IGP churn re-rolls transit hops.
func (n *Network) Traceroute(site, tgt int) Path {
	if site < 0 || site >= n.cfg.LGSites || tgt < 0 || tgt >= n.cfg.Targets {
		panic(fmt.Sprintf("topo: traceroute(%d,%d) out of range", site, tgt))
	}
	st := n.stateFor(site, tgt)
	tg := n.targets[tgt]

	// BGP policy event: move to a different peer AS.
	if len(tg.peers) > 1 && n.rng.Float64() < n.cfg.PolicyChangeProb {
		next := n.rng.Intn(len(tg.peers) - 1)
		if next >= st.peerSlot {
			next++
		}
		st.peerSlot = next
		st.linkIdx = 0
	}
	adj := tg.peers[st.peerSlot]
	// Load sharing: flip between the parallel links.
	if len(adj.links) > 1 && n.rng.Float64() < n.cfg.LoadShareSwitchProb {
		st.linkIdx = 1 - st.linkIdx
	}
	if st.linkIdx >= len(adj.links) {
		st.linkIdx = 0
	}
	lk := adj.links[st.linkIdx]

	// Transit hops: deterministic router identity per (site,hop) with IGP
	// churn re-rolling the interface used.
	hops := make([]Hop, 0, n.cfg.MidPathHops+2)
	for h := 0; h < n.cfg.MidPathHops; h++ {
		variant := 0
		if n.rng.Float64() < n.cfg.IGPChurnProb {
			variant = n.rng.Intn(4)
		}
		hops = append(hops, Hop{
			Addr: netaddr.FromOctets(172, byte(site), byte(h), byte(variant+1)).Addr(),
			FQDN: "core" + strconv.Itoa(h) + "-" + strconv.Itoa(variant) +
				".transit" + strconv.Itoa(site) + ".example.net",
		})
	}
	hops = append(hops, lk.peer, lk.br)
	return Path{Hops: hops}
}
