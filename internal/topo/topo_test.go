package topo

import (
	"testing"
)

func TestNewDefaults(t *testing.T) {
	n := New(Config{Seed: 1})
	if n.Targets() != DefaultTargets || n.LGSites() != DefaultLGSites {
		t.Errorf("sizes %d/%d", n.Targets(), n.LGSites())
	}
	for tgt := 0; tgt < n.Targets(); tgt++ {
		if pc := n.PeerCount(tgt); pc < DefaultMinPeers || pc > DefaultMaxPeers {
			t.Errorf("target %d has %d peers", tgt, pc)
		}
	}
}

func TestTracerouteShape(t *testing.T) {
	n := New(Config{Seed: 2})
	p := n.Traceroute(0, 0)
	if len(p.Hops) != DefaultMidPathHops+2 {
		t.Fatalf("path has %d hops", len(p.Hops))
	}
	peer, br := p.PeerHop(), p.BRHop()
	if peer.FQDN == "" || br.FQDN == "" {
		t.Error("last-hop FQDNs empty")
	}
	if peer.Addr == br.Addr {
		t.Error("peer and BR share an address")
	}
}

func TestTracerouteOutOfRangePanics(t *testing.T) {
	n := New(Config{Seed: 3})
	defer func() {
		if recover() == nil {
			t.Error("out-of-range traceroute did not panic")
		}
	}()
	n.Traceroute(999, 0)
}

// TestLastHopStability verifies the InFilter hypothesis holds in the
// simulated topology: the last-hop *routers* (FQDN identity) rarely change,
// even though interface addresses flap with load sharing.
func TestLastHopStability(t *testing.T) {
	n := New(Config{Seed: 4})
	const samples = 400
	var rawChanges, fqdnChanges int
	var prev Path
	for i := 0; i < samples; i++ {
		p := n.Traceroute(3, 5)
		if i > 0 {
			if p.PeerHop().Addr != prev.PeerHop().Addr || p.BRHop().Addr != prev.BRHop().Addr {
				rawChanges++
			}
			if p.PeerHop().FQDN != prev.PeerHop().FQDN || p.BRHop().FQDN != prev.BRHop().FQDN {
				fqdnChanges++
			}
		}
		prev = p
	}
	if fqdnChanges > rawChanges {
		t.Errorf("fqdn changes %d exceed raw changes %d", fqdnChanges, rawChanges)
	}
	if fqdnChanges > samples/20 {
		t.Errorf("last-hop router changed %d/%d times — hypothesis violated in sim", fqdnChanges, samples)
	}
}

// TestPolicyChangesMovePeers runs long enough that policy events occur and
// verifies the current peer changes only through them.
func TestPolicyChangesMovePeers(t *testing.T) {
	n := New(Config{Seed: 5, PolicyChangeProb: 0.2})
	first := n.CurrentPeer(0, 0)
	changed := false
	for i := 0; i < 100; i++ {
		n.Traceroute(0, 0)
		if n.CurrentPeer(0, 0) != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("no policy change in 100 samples at 20% rate")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a, b := New(Config{Seed: 7}), New(Config{Seed: 7})
	for i := 0; i < 50; i++ {
		pa, pb := a.Traceroute(1, 2), b.Traceroute(1, 2)
		if len(pa.Hops) != len(pb.Hops) {
			t.Fatal("hop counts differ")
		}
		for h := range pa.Hops {
			if pa.Hops[h] != pb.Hops[h] {
				t.Fatalf("sample %d hop %d differs", i, h)
			}
		}
	}
}

// TestSingleTargetManyPeersDistinctAdjacencies checks adjacency identities
// are unique per peer slot.
func TestDistinctAdjacencies(t *testing.T) {
	n := New(Config{Seed: 8, Targets: 1, MinPeers: 6, MaxPeers: 6, PolicyChangeProb: 0.9})
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		p := n.Traceroute(0, 0)
		seen[p.BRHop().FQDN] = true
	}
	if len(seen) < 3 {
		t.Errorf("only %d distinct BRs observed under heavy policy churn", len(seen))
	}
}
