package trace

import (
	"testing"

	"infilter/internal/netaddr"
)

var (
	srcBlock6 = netaddr.MustParsePrefix("2001:db8:1000::/48")
	dstBlock6 = netaddr.MustParsePrefix("2001:db8:2000::/64")
)

func normalCfg6(flows int) NormalConfig {
	return NormalConfig{
		Seed:        1,
		Start:       testStart,
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{srcBlock6},
		DstPrefix:   dstBlock6,
	}
}

// TestGenerateNormalV6 runs the benign generator over v6 prefixes: the
// generator is family-generic, so every packet must stay inside the
// configured v6 blocks.
func TestGenerateNormalV6(t *testing.T) {
	pkts, err := GenerateNormal(normalCfg6(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 200 {
		t.Fatalf("generated %d packets for 200 flows", len(pkts))
	}
	for i, p := range pkts {
		if !p.Src.Is6() || !p.Dst.Is6() {
			t.Fatalf("packet %d not v6: %v -> %v", i, p.Src, p.Dst)
		}
		if !srcBlock6.Contains(p.Src) {
			t.Fatalf("packet %d src %v outside %v", i, p.Src, srcBlock6)
		}
		if !dstBlock6.Contains(p.Dst) {
			t.Fatalf("packet %d dst %v outside %v", i, p.Dst, dstBlock6)
		}
		if i > 0 && p.Time.Before(pkts[i-1].Time) {
			t.Fatalf("packets not time-ordered at %d", i)
		}
	}
}

// TestGenerateNormalMixedFamilies draws sources from both families at
// once: each packet's source must land in whichever family's block it
// was drawn from, and both families must actually appear.
func TestGenerateNormalMixedFamilies(t *testing.T) {
	cfg := normalCfg6(400)
	cfg.SrcPrefixes = []netaddr.Prefix{srcBlock, srcBlock6}
	pkts, err := GenerateNormal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	saw4, saw6 := false, false
	for i, p := range pkts {
		switch {
		case srcBlock.Contains(p.Src):
			saw4 = true
		case srcBlock6.Contains(p.Src):
			saw6 = true
		default:
			t.Fatalf("packet %d src %v outside both blocks", i, p.Src)
		}
	}
	if !saw4 || !saw6 {
		t.Errorf("source families missing: v4=%t v6=%t", saw4, saw6)
	}
}

// TestAllAttacksGenerateV6 launches every cataloged attack against a v6
// target: the generators carry the configured (spoofed) v6 source and
// aim every packet inside the v6 destination block.
func TestAllAttacksGenerateV6(t *testing.T) {
	src6 := netaddr.MustParseAddr("2001:db8:bad::1")
	for _, info := range AllAttacks() {
		t.Run(info.Name, func(t *testing.T) {
			pkts, err := Generate(info.Type, AttackConfig{
				Seed:      3,
				Start:     testStart,
				Src:       src6,
				DstPrefix: dstBlock6,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(pkts) == 0 {
				t.Fatal("no packets generated")
			}
			for i, p := range pkts {
				if p.Src != src6 {
					t.Fatalf("packet %d src %v, want %v", i, p.Src, src6)
				}
				if !dstBlock6.Contains(p.Dst) {
					t.Fatalf("packet %d dst %v outside %v", i, p.Dst, dstBlock6)
				}
			}
		})
	}
}

// TestAttackOnWidePrefix aims a scan at a prefix with more host bits
// than int63 can index — the draw must fall back to the full-width path
// instead of overflowing, and still land inside the block.
func TestAttackOnWidePrefix(t *testing.T) {
	wide := netaddr.MustParsePrefix("2001:db8::/32") // 96 host bits
	pkts, err := Generate(AttackNetworkScan, AttackConfig{
		Seed:      5,
		Start:     testStart,
		Src:       netaddr.MustParseAddr("2001:db8:bad::2"),
		DstPrefix: wide,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pkts {
		if !wide.Contains(p.Dst) {
			t.Fatalf("packet %d dst %v outside %v", i, p.Dst, wide)
		}
	}
}
