package trace

import (
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
)

var (
	testStart = time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	srcBlock  = netaddr.MustParsePrefix("61.0.0.0/11")
	dstBlock  = netaddr.MustParsePrefix("192.0.2.0/24")
)

func normalCfg(flows int) NormalConfig {
	return NormalConfig{
		Seed:        1,
		Start:       testStart,
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{srcBlock},
		DstPrefix:   dstBlock,
	}
}

func TestGenerateNormalBasics(t *testing.T) {
	pkts, err := GenerateNormal(normalCfg(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 200 {
		t.Fatalf("generated %d packets for 200 flows", len(pkts))
	}
	for i, p := range pkts {
		if !srcBlock.Contains(p.Src) {
			t.Fatalf("packet %d src %v outside %v", i, p.Src, srcBlock)
		}
		if !dstBlock.Contains(p.Dst) {
			t.Fatalf("packet %d dst %v outside %v", i, p.Dst, dstBlock)
		}
		if i > 0 && p.Time.Before(pkts[i-1].Time) {
			t.Fatalf("packets not time-ordered at %d", i)
		}
	}
}

func TestGenerateNormalDeterministic(t *testing.T) {
	a, err := GenerateNormal(normalCfg(50))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateNormal(normalCfg(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs with same seed", i)
		}
	}
	cfg := normalCfg(50)
	cfg.Seed = 2
	c, err := GenerateNormal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateNormalServiceMix(t *testing.T) {
	pkts, err := GenerateNormal(normalCfg(2000))
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate into flows through the router cache to count per cluster.
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	counts := map[flow.Subcluster]int{}
	total := 0
	for _, r := range cache.Drain() {
		counts[flow.Classify(r.Key)]++
		total++
	}
	if total < 1800 {
		t.Fatalf("only %d flows out of 2000 generated", total)
	}
	// HTTP should dominate, and every cluster should appear.
	if counts[flow.ClusterHTTP] < total/3 {
		t.Errorf("http flows %d of %d, want dominant share", counts[flow.ClusterHTTP], total)
	}
	for _, c := range []flow.Subcluster{
		flow.ClusterHTTP, flow.ClusterSMTP, flow.ClusterFTP, flow.ClusterDNS,
		flow.ClusterTCP, flow.ClusterUDP, flow.ClusterICMP,
	} {
		if counts[c] == 0 {
			t.Errorf("cluster %v absent from normal mix", c)
		}
	}
	if counts[flow.ClusterOther] != 0 {
		t.Errorf("unexpected %d flows in other cluster", counts[flow.ClusterOther])
	}
}

func TestGenerateNormalValidation(t *testing.T) {
	cfg := normalCfg(10)
	cfg.Flows = 0
	if _, err := GenerateNormal(cfg); err == nil {
		t.Error("Flows=0: want error")
	}
	cfg = normalCfg(10)
	cfg.SrcPrefixes = nil
	if _, err := GenerateNormal(cfg); err == nil {
		t.Error("no SrcPrefixes: want error")
	}
	cfg = normalCfg(10)
	cfg.DstPrefix = netaddr.Prefix{}
	if _, err := GenerateNormal(cfg); err == nil {
		t.Error("no DstPrefix: want error")
	}
}

func attackCfg(seed int64) AttackConfig {
	return AttackConfig{
		Seed:      seed,
		Start:     testStart,
		Src:       netaddr.MustParseAddr("61.5.5.5"),
		DstPrefix: dstBlock,
	}
}

func TestAttackCatalogComplete(t *testing.T) {
	all := AllAttacks()
	if len(all) != NumAttackTypes {
		t.Fatalf("catalog has %d attacks, want %d", len(all), NumAttackTypes)
	}
	seen := map[string]bool{}
	for _, info := range all {
		if info.Name == "" {
			t.Errorf("attack %d has empty name", info.Type)
		}
		if seen[info.Name] {
			t.Errorf("duplicate attack name %q", info.Name)
		}
		seen[info.Name] = true
		if info.Type.String() != info.Name {
			t.Errorf("String() = %q, want %q", info.Type.String(), info.Name)
		}
	}
	if AttackType(99).String() != "attack(99)" {
		t.Errorf("unknown String() = %q", AttackType(99).String())
	}
	if _, ok := Info(AttackSlammer); !ok {
		t.Error("Info(AttackSlammer) missing")
	}
	if _, ok := Info(AttackType(99)); ok {
		t.Error("Info(99) should miss")
	}
}

func TestAllAttacksGenerate(t *testing.T) {
	for _, info := range AllAttacks() {
		pkts, err := Generate(info.Type, attackCfg(3))
		if err != nil {
			t.Errorf("%v: %v", info.Type, err)
			continue
		}
		if len(pkts) == 0 {
			t.Errorf("%v produced no packets", info.Type)
			continue
		}
		for i, p := range pkts {
			if p.Src != netaddr.MustParseAddr("61.5.5.5") {
				t.Errorf("%v packet %d src %v", info.Type, i, p.Src)
				break
			}
			if !dstBlock.Contains(p.Dst) {
				t.Errorf("%v packet %d dst %v outside target", info.Type, i, p.Dst)
				break
			}
			if i > 0 && p.Time.Before(pkts[i-1].Time) {
				t.Errorf("%v not time-ordered", info.Type)
				break
			}
		}
	}
}

func TestGenerateUnknownAttack(t *testing.T) {
	if _, err := Generate(AttackType(0), attackCfg(1)); err == nil {
		t.Error("unknown attack: want error")
	}
	cfg := attackCfg(1)
	cfg.DstPrefix = netaddr.Prefix{}
	if _, err := Generate(AttackSlammer, cfg); err == nil {
		t.Error("missing DstPrefix: want error")
	}
}

func TestStealthyAttacksAreSmall(t *testing.T) {
	for _, info := range AllAttacks() {
		if !info.Stealthy {
			continue
		}
		pkts, err := Generate(info.Type, attackCfg(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) > 100 {
			t.Errorf("stealthy %v produced %d packets", info.Type, len(pkts))
		}
	}
}

func TestVoluminousAttacksAreLarge(t *testing.T) {
	for _, tt := range []AttackType{AttackTFN2K, AttackSYNFlood} {
		pkts, err := Generate(tt, attackCfg(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) < 200 {
			t.Errorf("%v produced only %d packets", tt, len(pkts))
		}
	}
}

func TestSlammerShape(t *testing.T) {
	pkts, err := Generate(AttackSlammer, attackCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[netaddr.Addr]bool{}
	for _, p := range pkts {
		if p.Proto != flow.ProtoUDP || p.DstPort != 1434 || p.Length != 404 {
			t.Fatalf("slammer packet wrong shape: %+v", p)
		}
		hosts[p.Dst] = true
	}
	if len(hosts) < 10 {
		t.Errorf("slammer hit %d distinct hosts, want many", len(hosts))
	}
}

func TestIdlescanShape(t *testing.T) {
	pkts, err := Generate(AttackIdlescan, attackCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[netaddr.Addr]bool{}
	ports := map[uint16]bool{}
	for _, p := range pkts {
		hosts[p.Dst] = true
		ports[p.DstPort] = true
		if p.TCPFlags != packet.FlagSYN {
			t.Fatalf("idlescan packet not a bare SYN: %+v", p)
		}
	}
	if len(hosts) != 1 {
		t.Errorf("idlescan hit %d hosts, want 1", len(hosts))
	}
	if len(ports) < 20 {
		t.Errorf("idlescan swept %d ports, want many", len(ports))
	}
}

func TestNetworkScanShape(t *testing.T) {
	pkts, err := Generate(AttackNetworkScan, attackCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[netaddr.Addr]bool{}
	for _, p := range pkts {
		hosts[p.Dst] = true
		if p.DstPort != flow.PortFTP {
			t.Fatalf("network scan port %d varies", p.DstPort)
		}
	}
	if len(hosts) < 10 {
		t.Errorf("network scan hit %d hosts, want many", len(hosts))
	}
}

func TestTeardropShape(t *testing.T) {
	pkts, err := Generate(AttackTeardrop, attackCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 2 {
		t.Fatalf("teardrop is %d packets, want 2", len(pkts))
	}
	if !pkts[0].IsFragment() || !pkts[1].IsFragment() {
		t.Error("teardrop packets not fragments")
	}
}

func TestScaleGrowsVolume(t *testing.T) {
	small, err := Generate(AttackTFN2K, attackCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := attackCfg(1)
	cfg.Scale = 3
	big, err := Generate(AttackTFN2K, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != 3*len(small) {
		t.Errorf("scale 3: %d packets vs %d at scale 1", len(big), len(small))
	}
}

func TestExploitFlowStatsAnomalous(t *testing.T) {
	// The HTTP exploit's flow must have a byte rate far above the benign
	// envelope (normal http: ≤1400-byte packets spread over ≥100ms).
	pkts, err := Generate(AttackHTTPExploit, attackCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	recs := cache.Drain()
	if len(recs) != 1 {
		t.Fatalf("exploit produced %d flows, want 1", len(recs))
	}
	r := recs[0]
	if flow.Classify(r.Key) != flow.ClusterHTTP {
		t.Errorf("exploit classified as %v", flow.Classify(r.Key))
	}
	if r.BitRate() < 5e6 {
		t.Errorf("exploit bit rate %.0f too tame to stand out", r.BitRate())
	}
}
