package trace

import (
	"fmt"
	"math/rand"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/packet"
)

// AttackType enumerates the 12 unique attacks used in the evaluation
// (§6.2): stealthy denial-of-service tools (Puke, Jolt, Teardrop), the
// Slammer worm, the TFN2K DDoS flood, scan attacks, and service exploits
// against http, ftp, smtp and dns.
type AttackType int

// The attack catalog.
const (
	AttackPuke AttackType = iota + 1
	AttackJolt
	AttackTeardrop
	AttackSlammer
	AttackTFN2K
	AttackSYNFlood
	AttackIdlescan
	AttackNetworkScan
	AttackHTTPExploit
	AttackFTPExploit
	AttackSMTPExploit
	AttackDNSExploit
)

// NumAttackTypes is the size of the attack catalog.
const NumAttackTypes = 12

// AttackInfo describes an attack's shape.
type AttackInfo struct {
	Type     AttackType
	Name     string
	Stealthy bool // one-or-few packets, invisible to volume sensors
	Scan     bool // network or host scan shape
}

var attackCatalog = map[AttackType]AttackInfo{
	AttackPuke:        {AttackPuke, "puke", true, false},
	AttackJolt:        {AttackJolt, "jolt", true, false},
	AttackTeardrop:    {AttackTeardrop, "teardrop", true, false},
	AttackSlammer:     {AttackSlammer, "slammer", true, true},
	AttackTFN2K:       {AttackTFN2K, "tfn2k", false, false},
	AttackSYNFlood:    {AttackSYNFlood, "synflood", false, false},
	AttackIdlescan:    {AttackIdlescan, "idlescan", true, true},
	AttackNetworkScan: {AttackNetworkScan, "netscan", true, true},
	AttackHTTPExploit: {AttackHTTPExploit, "http-exploit", true, false},
	AttackFTPExploit:  {AttackFTPExploit, "ftp-exploit", true, false},
	AttackSMTPExploit: {AttackSMTPExploit, "smtp-exploit", true, false},
	AttackDNSExploit:  {AttackDNSExploit, "dns-exploit", true, false},
}

// Info returns the catalog entry for t.
func Info(t AttackType) (AttackInfo, bool) {
	info, ok := attackCatalog[t]
	return info, ok
}

// AllAttacks returns the catalog in enum order.
func AllAttacks() []AttackInfo {
	out := make([]AttackInfo, 0, NumAttackTypes)
	for t := AttackPuke; t <= AttackDNSExploit; t++ {
		out = append(out, attackCatalog[t])
	}
	return out
}

// String returns the attack's short name.
func (t AttackType) String() string {
	if info, ok := attackCatalog[t]; ok {
		return info.Name
	}
	return fmt.Sprintf("attack(%d)", int(t))
}

// AttackConfig parameterizes one attack instance.
type AttackConfig struct {
	// Seed fixes the PRNG.
	Seed int64
	// Start is the attack launch time.
	Start time.Time
	// Src is the (spoofed) source address. Dagflow rewrites it per the
	// experiment's spoofing policy; generators still need a placeholder.
	Src netaddr.Addr
	// DstPrefix is the target network; scan attacks pick many hosts from
	// it, point attacks pick one.
	DstPrefix netaddr.Prefix
	// Scale multiplies the volume of voluminous attacks (floods) and the
	// breadth of scans. Zero means 1.
	Scale int
}

func (c AttackConfig) scale() int {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// Generate produces the packet trace of one attack instance, time-ordered.
func Generate(t AttackType, cfg AttackConfig) ([]packet.Packet, error) {
	if cfg.DstPrefix.IsZero() {
		return nil, fmt.Errorf("trace: attack %v: DstPrefix required", t)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dst := randomAddr(rng, cfg.DstPrefix)
	switch t {
	case AttackPuke:
		return genPuke(rng, cfg, dst), nil
	case AttackJolt:
		return genJolt(rng, cfg, dst), nil
	case AttackTeardrop:
		return genTeardrop(cfg, dst), nil
	case AttackSlammer:
		return genSlammer(rng, cfg), nil
	case AttackTFN2K:
		return genTFN2K(rng, cfg, dst), nil
	case AttackSYNFlood:
		return genSYNFlood(rng, cfg, dst), nil
	case AttackIdlescan:
		return genIdlescan(rng, cfg, dst), nil
	case AttackNetworkScan:
		return genNetworkScan(rng, cfg), nil
	case AttackHTTPExploit:
		return genExploit(rng, cfg, dst, flow.ProtoTCP, flow.PortHTTP), nil
	case AttackFTPExploit:
		return genExploit(rng, cfg, dst, flow.ProtoTCP, flow.PortFTP), nil
	case AttackSMTPExploit:
		return genExploit(rng, cfg, dst, flow.ProtoTCP, flow.PortSMTP), nil
	case AttackDNSExploit:
		return genExploit(rng, cfg, dst, flow.ProtoUDP, flow.PortDNS), nil
	default:
		return nil, fmt.Errorf("trace: unknown attack type %d", int(t))
	}
}

// genPuke forges a burst of ICMP destination-unreachable messages at a
// victim to tear down its sessions. A handful of packets.
func genPuke(rng *rand.Rand, cfg AttackConfig, dst netaddr.Addr) []packet.Packet {
	n := 3 + rng.Intn(3)
	pkts := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		pkts = append(pkts, packet.Packet{
			Time:    cfg.Start.Add(time.Duration(i) * 2 * time.Millisecond),
			Src:     cfg.Src,
			Dst:     dst,
			Proto:   flow.ProtoICMP,
			SrcPort: 0x0303, // type 3 code 3: port unreachable
			Length:  56,
		})
	}
	return pkts
}

// genJolt sends an oversized fragmented ICMP echo (the "ping of death"
// family): dozens of max-size fragments reassembling past 65535 bytes.
func genJolt(rng *rand.Rand, cfg AttackConfig, dst netaddr.Addr) []packet.Packet {
	frags := 45 + rng.Intn(5)
	pkts := make([]packet.Packet, 0, frags)
	for i := 0; i < frags; i++ {
		pkts = append(pkts, packet.Packet{
			Time:     cfg.Start.Add(time.Duration(i) * 100 * time.Microsecond),
			Src:      cfg.Src,
			Dst:      dst,
			Proto:    flow.ProtoICMP,
			SrcPort:  0x0800,
			Length:   1480,
			FragOff:  uint16(i * 185),
			MoreFrag: i < frags-1,
		})
	}
	return pkts
}

// genTeardrop sends two UDP fragments with overlapping offsets, crashing
// vulnerable reassembly code. Two packets total.
func genTeardrop(cfg AttackConfig, dst netaddr.Addr) []packet.Packet {
	return []packet.Packet{
		{
			Time: cfg.Start, Src: cfg.Src, Dst: dst,
			Proto: flow.ProtoUDP, SrcPort: 53, DstPort: 53,
			Length: 56, MoreFrag: true,
		},
		{
			Time: cfg.Start.Add(time.Millisecond), Src: cfg.Src, Dst: dst,
			Proto: flow.ProtoUDP, SrcPort: 53, DstPort: 53,
			Length: 24, FragOff: 3, // overlaps the first fragment
		},
	}
}

// genSlammer reproduces the worm's propagation shape: one 404-byte UDP
// packet to port 1434 at each of many random hosts in the target network.
func genSlammer(rng *rand.Rand, cfg AttackConfig) []packet.Packet {
	hosts := 20 * cfg.scale()
	pkts := make([]packet.Packet, 0, hosts)
	for i := 0; i < hosts; i++ {
		pkts = append(pkts, packet.Packet{
			Time:    cfg.Start.Add(time.Duration(i) * time.Millisecond),
			Src:     cfg.Src,
			Dst:     randomAddr(rng, cfg.DstPrefix),
			Proto:   flow.ProtoUDP,
			SrcPort: uint16(1024 + rng.Intn(60000)),
			DstPort: 1434,
			Length:  404,
		})
	}
	return pkts
}

// genTFN2K emulates a TFN2K flood slice: a sustained mixed UDP/ICMP
// packet stream at one victim.
func genTFN2K(rng *rand.Rand, cfg AttackConfig, dst netaddr.Addr) []packet.Packet {
	n := 400 * cfg.scale()
	pkts := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		p := packet.Packet{
			Time:   cfg.Start.Add(time.Duration(i) * 500 * time.Microsecond),
			Src:    cfg.Src,
			Dst:    dst,
			Length: uint16(28 + rng.Intn(1000)),
		}
		if rng.Intn(2) == 0 {
			p.Proto = flow.ProtoUDP
			p.SrcPort = uint16(rng.Intn(65536))
			p.DstPort = uint16(rng.Intn(65536))
		} else {
			p.Proto = flow.ProtoICMP
			p.SrcPort = 0x0800
		}
		pkts = append(pkts, p)
	}
	return pkts
}

// genSYNFlood sends a burst of bare SYNs at one service port.
func genSYNFlood(rng *rand.Rand, cfg AttackConfig, dst netaddr.Addr) []packet.Packet {
	n := 300 * cfg.scale()
	pkts := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		pkts = append(pkts, packet.Packet{
			Time:     cfg.Start.Add(time.Duration(i) * time.Millisecond),
			Src:      cfg.Src,
			Dst:      dst,
			Proto:    flow.ProtoTCP,
			SrcPort:  uint16(rng.Intn(64512) + 1024),
			DstPort:  flow.PortHTTP,
			Length:   40,
			TCPFlags: packet.FlagSYN,
		})
	}
	return pkts
}

// genIdlescan reproduces nmap's blind Idlescan against one host: spoofed
// SYN probes sweeping many destination ports (a host scan).
func genIdlescan(rng *rand.Rand, cfg AttackConfig, dst netaddr.Addr) []packet.Packet {
	ports := 25 * cfg.scale()
	pkts := make([]packet.Packet, 0, ports)
	for i := 0; i < ports; i++ {
		pkts = append(pkts, packet.Packet{
			Time:     cfg.Start.Add(time.Duration(i) * 10 * time.Millisecond),
			Src:      cfg.Src,
			Dst:      dst,
			Proto:    flow.ProtoTCP,
			SrcPort:  uint16(rng.Intn(64512) + 1024),
			DstPort:  uint16(1 + i*7%4096),
			Length:   40,
			TCPFlags: packet.FlagSYN,
		})
	}
	return pkts
}

// genNetworkScan sweeps one TCP service port across many hosts in the
// target network (a network scan).
func genNetworkScan(rng *rand.Rand, cfg AttackConfig) []packet.Packet {
	hosts := 25 * cfg.scale()
	pkts := make([]packet.Packet, 0, hosts)
	for i := 0; i < hosts; i++ {
		pkts = append(pkts, packet.Packet{
			Time:     cfg.Start.Add(time.Duration(i) * 5 * time.Millisecond),
			Src:      cfg.Src,
			Dst:      randomAddr(rng, cfg.DstPrefix),
			Proto:    flow.ProtoTCP,
			SrcPort:  uint16(rng.Intn(64512) + 1024),
			DstPort:  flow.PortFTP,
			Length:   40,
			TCPFlags: packet.FlagSYN,
		})
	}
	return pkts
}

// genExploit emulates a service exploit: a short flow whose statistics sit
// far outside the service's normal envelope — a rapid burst of maximum-size
// segments carrying an overflow payload.
func genExploit(rng *rand.Rand, cfg AttackConfig, dst netaddr.Addr, proto uint8, port uint16) []packet.Packet {
	if proto == flow.ProtoUDP {
		// One oversized UDP datagram (e.g. a malformed DNS TKEY blob).
		return []packet.Packet{{
			Time:    cfg.Start,
			Src:     cfg.Src,
			Dst:     dst,
			Proto:   flow.ProtoUDP,
			SrcPort: uint16(1024 + rng.Intn(60000)),
			DstPort: port,
			Length:  4096,
		}}
	}
	// TCP: ~80 back-to-back 1460-byte segments inside ~40ms, a byte/packet
	// rate far above any benign flow to the same service.
	n := 80
	srcPort := uint16(1024 + rng.Intn(60000))
	pkts := make([]packet.Packet, 0, n)
	for i := 0; i < n; i++ {
		flags := uint8(packet.FlagACK | packet.FlagPSH)
		if i == 0 {
			flags = packet.FlagSYN
		}
		pkts = append(pkts, packet.Packet{
			Time:     cfg.Start.Add(time.Duration(i) * 500 * time.Microsecond),
			Src:      cfg.Src,
			Dst:      dst,
			Proto:    flow.ProtoTCP,
			SrcPort:  srcPort,
			DstPort:  port,
			Length:   1460,
			TCPFlags: flags,
		})
	}
	return pkts
}
