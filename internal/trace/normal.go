// Package trace generates the synthetic traffic the testbed replays. It
// substitutes for the CAIDA/NLANR captures ("normal" traffic) and the
// Nessus/nmap-derived attack captures of paper §6.2: generators produce
// packet-level traces with the same flow-statistic shapes, which Dagflow
// turns into NetFlow records exactly as the original tool did.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/packet"
)

// NormalConfig parameterizes the normal-traffic generator.
type NormalConfig struct {
	// Seed fixes the PRNG so experiments are reproducible.
	Seed int64
	// Start is the timestamp of the first flow.
	Start time.Time
	// Flows is the number of flows to generate.
	Flows int
	// SrcPrefixes are the address blocks sources are drawn from (a Dagflow
	// instance's allocated sub-blocks). Must be non-empty.
	SrcPrefixes []netaddr.Prefix
	// DstPrefix is the target network address range.
	DstPrefix netaddr.Prefix
	// MeanInterarrival is the mean gap between flow starts. Zero defaults
	// to 10ms (about 100 flows/s per source).
	MeanInterarrival time.Duration
}

// Service mix of the synthetic Internet traffic, approximating the
// early-2000s backbone mixes the paper's traces carried. Weights sum to 100.
var serviceMix = []struct {
	cluster flow.Subcluster
	weight  int
}{
	{flow.ClusterHTTP, 48},
	{flow.ClusterSMTP, 10},
	{flow.ClusterFTP, 5},
	{flow.ClusterDNS, 15},
	{flow.ClusterTCP, 12},
	{flow.ClusterUDP, 7},
	{flow.ClusterICMP, 3},
}

// GenerateNormal produces a time-ordered packet trace of benign flows.
func GenerateNormal(cfg NormalConfig) ([]packet.Packet, error) {
	if cfg.Flows <= 0 {
		return nil, fmt.Errorf("trace: Flows must be positive, got %d", cfg.Flows)
	}
	if len(cfg.SrcPrefixes) == 0 {
		return nil, fmt.Errorf("trace: SrcPrefixes must be non-empty")
	}
	if cfg.DstPrefix.IsZero() {
		return nil, fmt.Errorf("trace: DstPrefix required")
	}
	mean := cfg.MeanInterarrival
	if mean <= 0 {
		mean = 10 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var pkts []packet.Packet
	now := cfg.Start
	for i := 0; i < cfg.Flows; i++ {
		now = now.Add(expDuration(rng, mean))
		src := randomAddr(rng, cfg.SrcPrefixes[rng.Intn(len(cfg.SrcPrefixes))])
		cluster := pickCluster(rng)
		dst := serverAddr(rng, cfg.DstPrefix, cluster)
		pkts = append(pkts, normalFlowPackets(rng, now, src, dst, cluster)...)
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].Time.Before(pkts[j].Time) })
	return pkts, nil
}

// serverPoolSizes models that benign traffic into an ISP concentrates on a
// small pool of servers per service (web farms, mail exchangers, the
// network's resolvers) — unlike scans, which spray random hosts. These
// pool sizes keep the per-port distinct-host counts of benign traffic well
// under the Scan Analysis thresholds, as in the paper's real traces.
var serverPoolSizes = map[flow.Subcluster]uint64{
	flow.ClusterHTTP: 8,
	flow.ClusterSMTP: 4,
	flow.ClusterFTP:  4,
	flow.ClusterDNS:  3,
	flow.ClusterTCP:  24,
	flow.ClusterUDP:  24,
	flow.ClusterICMP: 16,
}

// serverAddr picks a destination host from the service's server pool
// inside the target prefix. Pool members are spread deterministically
// through the prefix.
func serverAddr(rng *rand.Rand, p netaddr.Prefix, cluster flow.Subcluster) netaddr.Addr {
	pool := serverPoolSizes[cluster]
	if pool == 0 || pool > p.Size() {
		return randomAddr(rng, p)
	}
	slot := uint64(rng.Int63n(int64(pool)))
	// Offset each service's pool so services do not share hosts: stride the
	// prefix by cluster index.
	off := (slot*uint64(flow.NumSubclusters) + uint64(cluster)) % p.Size()
	return p.Nth(off)
}

// normalFlowPackets emits the packets of one benign flow with statistics
// typical for its service class.
func normalFlowPackets(rng *rand.Rand, start time.Time, src, dst netaddr.Addr, cluster flow.Subcluster) []packet.Packet {
	srcPort := uint16(rng.Intn(64512) + 1024)

	var (
		proto    uint8
		dstPort  uint16
		nPackets int
		pktSize  func() uint16
		dur      time.Duration
		tcpFlow  bool
	)
	switch cluster {
	case flow.ClusterHTTP:
		proto, dstPort, tcpFlow = flow.ProtoTCP, flow.PortHTTP, true
		nPackets = 4 + int(paretoInt(rng, 6, 1.3, 200))
		pktSize = func() uint16 { return uint16(200 + rng.Intn(1200)) }
	case flow.ClusterSMTP:
		proto, dstPort, tcpFlow = flow.ProtoTCP, flow.PortSMTP, true
		nPackets = 6 + rng.Intn(30)
		pktSize = func() uint16 { return uint16(100 + rng.Intn(900)) }
	case flow.ClusterFTP:
		proto, dstPort, tcpFlow = flow.ProtoTCP, flow.PortFTP, true
		nPackets = 5 + rng.Intn(20)
		pktSize = func() uint16 { return uint16(60 + rng.Intn(400)) }
	case flow.ClusterDNS:
		proto, dstPort = flow.ProtoUDP, flow.PortDNS
		nPackets = 1 + rng.Intn(2)
		pktSize = func() uint16 { return uint16(60 + rng.Intn(200)) }
		dur = time.Duration(1+rng.Intn(80)) * time.Millisecond
	case flow.ClusterTCP:
		proto, dstPort, tcpFlow = flow.ProtoTCP, otherTCPPort(rng), true
		nPackets = 3 + int(paretoInt(rng, 5, 1.2, 150))
		pktSize = func() uint16 { return uint16(80 + rng.Intn(1300)) }
	case flow.ClusterUDP:
		proto, dstPort = flow.ProtoUDP, uint16(1024+rng.Intn(30000))
		nPackets = 1 + rng.Intn(10)
		pktSize = func() uint16 { return uint16(60 + rng.Intn(500)) }
		dur = time.Duration(10+rng.Intn(2000)) * time.Millisecond
	default: // ClusterICMP
		proto, dstPort = flow.ProtoICMP, 0
		srcPort = 0x0800 // echo request type/code
		nPackets = 1 + rng.Intn(4)
		pktSize = func() uint16 { return uint16(64 + rng.Intn(64)) }
		dur = time.Duration(10+rng.Intn(1000)) * time.Millisecond
	}

	sizes := make([]uint16, nPackets)
	totalBytes := 0
	for j := range sizes {
		sizes[j] = pktSize()
		totalBytes += int(sizes[j])
	}
	if tcpFlow {
		// A benign TCP flow's duration follows from its size over the
		// sender's access bandwidth (dial-up through low-end broadband in
		// the paper's era), so big flows are slow flows. Exploits break
		// exactly this correlation.
		bw := float64(64_000 + rng.Intn(4_000_000)) // bits/second
		seconds := float64(totalBytes) * 8 / bw
		dur = time.Duration(seconds * float64(time.Second))
		if dur < 30*time.Millisecond {
			dur = 30 * time.Millisecond
		}
		if dur > 60*time.Second {
			dur = 60 * time.Second
		}
	}

	pkts := make([]packet.Packet, 0, nPackets)
	for j := 0; j < nPackets; j++ {
		var ts time.Time
		if nPackets == 1 {
			ts = start
		} else {
			ts = start.Add(time.Duration(float64(dur) * float64(j) / float64(nPackets-1)))
		}
		var flags uint8
		if proto == flow.ProtoTCP {
			switch {
			case j == 0:
				flags = packet.FlagSYN
			case j == nPackets-1:
				flags = packet.FlagFIN | packet.FlagACK
			default:
				flags = packet.FlagACK
			}
		}
		pkts = append(pkts, packet.Packet{
			Time:     ts,
			Src:      src,
			Dst:      dst,
			Proto:    proto,
			SrcPort:  srcPort,
			DstPort:  dstPort,
			Length:   sizes[j],
			TCPFlags: flags,
		})
	}
	return pkts
}

func pickCluster(rng *rand.Rand) flow.Subcluster {
	r := rng.Intn(100)
	for _, m := range serviceMix {
		if r < m.weight {
			return m.cluster
		}
		r -= m.weight
	}
	return flow.ClusterICMP
}

// otherTCPPort returns a non-well-known TCP destination port (avoids the
// dedicated-cluster services).
func otherTCPPort(rng *rand.Rand) uint16 {
	for {
		p := uint16(rng.Intn(64000) + 100)
		if p != flow.PortHTTP && p != flow.PortSMTP && p != flow.PortFTP {
			return p
		}
	}
}

// randomAddr draws a uniform address inside p. Wide v6 prefixes (more
// host bits than int63 can index) fall back to a full-width draw; Nth
// wraps the offset into the prefix.
func randomAddr(rng *rand.Rand, p netaddr.Prefix) netaddr.Addr {
	size := p.Size()
	if size > math.MaxInt64 {
		return p.Nth(rng.Uint64())
	}
	return p.Nth(uint64(rng.Int63n(int64(size))))
}

// expDuration samples an exponential interarrival time with the given mean.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// paretoInt samples a bounded Pareto-ish heavy tail: xm * U^(-1/alpha),
// capped at maxVal.
func paretoInt(rng *rand.Rand, xm, alpha, maxVal float64) float64 {
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	v := xm * math.Pow(u, -1/alpha)
	if v > maxVal {
		return maxVal
	}
	return v
}
