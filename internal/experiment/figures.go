package experiment

import (
	"fmt"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/stats"
	"infilter/internal/trace"
)

// Options scale the figure sweeps: the CLI uses full scale, tests and
// benchmarks shrink the traffic so the sweeps stay fast.
type Options struct {
	Seed                 int64
	Runs                 int
	NormalFlowsPerSource int
	TrainingFlows        int
}

func (o Options) config() Config {
	return Config{
		Seed:                 o.Seed,
		Runs:                 o.Runs,
		NormalFlowsPerSource: o.NormalFlowsPerSource,
		TrainingFlows:        o.TrainingFlows,
	}
}

// AttackVolumes is the paper's attack-volume sweep (% of normal traffic).
var AttackVolumes = []int{2, 4, 8}

// RouteChangeRates is the paper's route-instability sweep (§6.3.3).
var RouteChangeRates = []int{1, 2, 4, 8}

// SpoofedSweep holds the §6.3.1/§6.3.2 grid behind Figures 15 and 16:
// Enhanced InFilter detection and false positives at three attack volumes,
// for a single attack set and for attack sets at all ten peers.
type SpoofedSweep struct {
	Volumes []int
	Single  []Result // AttackSets=1, indexed like Volumes
	Ten     []Result // AttackSets=10
}

// RunSpoofedSweep executes the grid.
func RunSpoofedSweep(opts Options) (*SpoofedSweep, error) {
	sw := &SpoofedSweep{Volumes: AttackVolumes}
	for _, vol := range AttackVolumes {
		for _, sets := range []int{1, 10} {
			cfg := opts.config()
			cfg.Mode = analysis.ModeEnhanced
			cfg.AttackPercent = vol
			cfg.AttackSets = sets
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("spoofed sweep vol=%d sets=%d: %w", vol, sets, err)
			}
			if sets == 1 {
				sw.Single = append(sw.Single, res)
			} else {
				sw.Ten = append(sw.Ten, res)
			}
		}
	}
	return sw, nil
}

// Figure15 renders the attack-detection-rate figure.
func (sw *SpoofedSweep) Figure15() stats.Table {
	t := stats.Table{
		Title:   "Figure 15: Attack detection rate (Enhanced InFilter)",
		Columns: []string{"attack volume", "single attack set", "10 attack sets"},
	}
	for i, vol := range sw.Volumes {
		t.AddRow(fmt.Sprintf("%d%%", vol),
			stats.Pct(sw.Single[i].DetectionRate),
			stats.Pct(sw.Ten[i].DetectionRate))
	}
	return t
}

// Figure16 renders the false-positive-rate figure.
func (sw *SpoofedSweep) Figure16() stats.Table {
	t := stats.Table{
		Title:   "Figure 16: False positive rate (Enhanced InFilter)",
		Columns: []string{"attack volume", "single attack set", "10 attack sets"},
	}
	for i, vol := range sw.Volumes {
		t.AddRow(fmt.Sprintf("%d%%", vol),
			stats.Pct(sw.Single[i].FPRate),
			stats.Pct(sw.Ten[i].FPRate))
	}
	return t
}

// RouteChangeSweep holds the §6.3.3 grid behind Figures 17-19: false
// positive rate at attack volume × route instability, for one mode.
type RouteChangeSweep struct {
	Mode    analysis.Mode
	Volumes []int
	Rates   []int
	// Grid[i][j] is the result at Volumes[i] × Rates[j].
	Grid [][]Result
}

// RunRouteChangeSweep executes the grid for one software configuration.
func RunRouteChangeSweep(opts Options, mode analysis.Mode) (*RouteChangeSweep, error) {
	sw := &RouteChangeSweep{Mode: mode, Volumes: AttackVolumes, Rates: RouteChangeRates}
	for _, vol := range AttackVolumes {
		var row []Result
		for _, rate := range RouteChangeRates {
			cfg := opts.config()
			cfg.Mode = mode
			cfg.AttackPercent = vol
			cfg.AttackSets = 1
			cfg.RouteChangePercent = rate
			res, err := Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("route sweep %v vol=%d rc=%d: %w", mode, vol, rate, err)
			}
			row = append(row, res)
		}
		sw.Grid = append(sw.Grid, row)
	}
	return sw, nil
}

// Figure renders the sweep as the paper's Figure 17 (BI) or 18 (EI).
func (sw *RouteChangeSweep) Figure() stats.Table {
	num := 17
	if sw.Mode == analysis.ModeEnhanced {
		num = 18
	}
	t := stats.Table{
		Title: fmt.Sprintf("Figure %d: False positive rate with route change — %s",
			num, longModeName(sw.Mode)),
		Columns: []string{"route change"},
	}
	for _, vol := range sw.Volumes {
		t.Columns = append(t.Columns, fmt.Sprintf("%d%% attacks", vol))
	}
	for j, rate := range sw.Rates {
		row := []string{fmt.Sprintf("%d%%", rate)}
		for i := range sw.Volumes {
			row = append(row, stats.Pct(sw.Grid[i][j].FPRate))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure19 contrasts BI and EI false positives at 8% attack volume.
func Figure19(bi, ei *RouteChangeSweep) stats.Table {
	t := stats.Table{
		Title:   "Figure 19: False positive rate at 8% attack volume — Basic vs Enhanced",
		Columns: []string{"route change", "Basic InFilter", "Enhanced InFilter"},
	}
	volIdx := len(AttackVolumes) - 1 // the 8% column
	for j, rate := range RouteChangeRates {
		t.AddRow(fmt.Sprintf("%d%%", rate),
			stats.Pct(bi.Grid[volIdx][j].FPRate),
			stats.Pct(ei.Grid[volIdx][j].FPRate))
	}
	return t
}

// LatencyComparison runs a single point in both modes and reports the mean
// per-flow processing latency (the §6.4 BI≈0.5ms vs EI≈2-6ms comparison;
// absolute numbers reflect this substrate, the ordering is what carries).
func LatencyComparison(opts Options) (biLat, eiLat time.Duration, err error) {
	for _, mode := range []analysis.Mode{analysis.ModeBasic, analysis.ModeEnhanced} {
		cfg := opts.config()
		cfg.Mode = mode
		cfg.AttackPercent = 4
		cfg.AttackSets = 1
		cfg.RouteChangePercent = 2 // suspects must exist for EI to do work
		res, runErr := Run(cfg)
		if runErr != nil {
			return 0, 0, runErr
		}
		if mode == analysis.ModeBasic {
			biLat = res.AvgLatency
		} else {
			eiLat = res.AvgLatency
		}
	}
	return biLat, eiLat, nil
}

// AttackBreakdown runs one EI point and renders the per-attack-type
// detection table (§6.3's "various kinds of attacks, stealthy and
// voluminous"), aggregated over the runs.
func AttackBreakdown(opts Options) (stats.Table, error) {
	cfg := opts.config()
	cfg.Mode = analysis.ModeEnhanced
	cfg.AttackPercent = 8
	cfg.AttackSets = 1
	res, err := Run(cfg)
	if err != nil {
		return stats.Table{}, err
	}
	agg := make(map[trace.AttackType]TypeStats)
	for _, rr := range res.Runs {
		for at, ts := range rr.ByType {
			cur := agg[at]
			cur.Launched += ts.Launched
			cur.Detected += ts.Detected
			agg[at] = cur
		}
	}
	t := stats.Table{
		Title:   "Per-attack detection (Enhanced InFilter, 8% attack volume)",
		Columns: []string{"attack", "kind", "launched", "detected", "rate"},
	}
	for _, info := range trace.AllAttacks() {
		ts := agg[info.Type]
		kind := "stealthy"
		if !info.Stealthy {
			kind = "voluminous"
		}
		if info.Scan {
			kind += "+scan"
		}
		rate := 0.0
		if ts.Launched > 0 {
			rate = 100 * float64(ts.Detected) / float64(ts.Launched)
		}
		t.AddRow(info.Name, kind,
			fmt.Sprintf("%d", ts.Launched),
			fmt.Sprintf("%d", ts.Detected),
			stats.Pct(rate))
	}
	return t, nil
}

func longModeName(m analysis.Mode) string {
	switch m {
	case analysis.ModeBasic:
		return "Basic InFilter"
	case analysis.ModeEnhanced:
		return "Enhanced InFilter"
	default:
		return m.String()
	}
}
