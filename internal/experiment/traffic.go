package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"infilter/internal/blocks"
	"infilter/internal/dagflow"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/nns"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

// meanInterarrival matches the trace generator default so phase spans can
// be sized.
const meanInterarrival = 10 * time.Millisecond

// phaseSpan returns the wall-clock span one phase of a source's traffic
// occupies, with slack so phases do not overlap.
func phaseSpan(flowsPerPhase int) time.Duration {
	return time.Duration(flowsPerPhase)*meanInterarrival + 5*time.Second
}

// trainDetector builds the NNS detector from the training flows.
func trainDetector(cfg Config, seed int64, training []flow.Record) (*nns.Detector, error) {
	return nns.Train(nns.DetectorConfig{
		Params: nns.Params{
			D: nns.DefaultD, M1: 1, M2: 12, M3: 3,
			Seed: seed ^ 0x6b0c,
		},
		Ranges: nns.DefaultRanges(),
	}, training)
}

// normalSourceFlows replays source src's benign traffic through its
// emulated border router and returns the labeled flows plus the packet
// volume (the base for attack budgets).
func normalSourceFlows(cfg Config, seed int64, src int) ([]labeledFlow, int, error) {
	phases, err := sourcePhases(cfg, src)
	if err != nil {
		return nil, 0, err
	}
	flowsPerPhase := cfg.NormalFlowsPerSource / len(phases)
	if flowsPerPhase <= 0 {
		flowsPerPhase = 1
	}
	span := phaseSpan(flowsPerPhase)

	var (
		out     []labeledFlow
		packets int
	)
	for k, prefixes := range phases {
		pkts, err := trace.GenerateNormal(trace.NormalConfig{
			Seed:        seed + int64(src)*101 + int64(k)*13,
			Start:       experimentEpoch.Add(time.Duration(k) * span),
			Flows:       flowsPerPhase,
			SrcPrefixes: prefixes,
			DstPrefix:   TargetNetwork,
		})
		if err != nil {
			return nil, 0, err
		}
		packets += len(pkts)
		recs, err := replayThroughRouter(fmt.Sprintf("S%d-p%d", src, k), pkts, nil, uint16(src))
		if err != nil {
			return nil, 0, err
		}
		for _, r := range recs {
			out = append(out, labeledFlow{peer: eia.PeerAS(src), rec: r})
		}
	}
	return out, packets, nil
}

// sourcePhases returns, per allocation phase, the address-block prefixes
// source src draws from. Without route instability there is a single
// phase using the source's Table 3 blocks; with instability the four
// Table 2-style allocations rotate in.
func sourcePhases(cfg Config, src int) ([][]netaddr.Prefix, error) {
	if cfg.RouteChangePercent <= 0 {
		alloc, err := blocks.EIAAllocation(src)
		if err != nil {
			return nil, err
		}
		return [][]netaddr.Prefix{subBlockPrefixes(alloc)}, nil
	}
	sched, err := blocks.NewSchedule(cfg.RouteChangePercent, 4)
	if err != nil {
		return nil, err
	}
	out := make([][]netaddr.Prefix, 0, len(sched.Allocations))
	for _, alloc := range sched.Allocations {
		sa := alloc[src-1]
		prefixes := subBlockPrefixes(sa.NormalSet)
		prefixes = append(prefixes, subBlockPrefixes(sa.ChangeSet)...)
		out = append(out, prefixes)
	}
	return out, nil
}

func subBlockPrefixes(sbs []blocks.SubBlock) []netaddr.Prefix {
	out := make([]netaddr.Prefix, len(sbs))
	for i, sb := range sbs {
		out[i] = sb.Prefix()
	}
	return out
}

// attackSetFlows launches one attack set against peer AS s: the full
// 12-attack catalog at least once, then repeated round-robin until the
// configured fraction of the border router's packet volume is consumed.
// Sources are spoofed from the 900 sub-blocks belonging to other peers,
// exactly as §6.3.1 describes.
func attackSetFlows(cfg Config, seed int64, s, normalPkts int, attackID *int) ([]labeledFlow, map[int]trace.AttackType, error) {
	if cfg.AttackPercent <= 0 {
		return nil, nil, nil
	}
	budget := normalPkts * cfg.AttackPercent / 100
	foreign := foreignPrefixes(s)
	rng := rand.New(rand.NewSource(seed ^ int64(s)<<16))
	order := rng.Perm(trace.NumAttackTypes)
	catalog := trace.AllAttacks()

	// The replay window attacks land in.
	phases := 1
	if cfg.RouteChangePercent > 0 {
		phases = 4
	}
	flowsPerPhase := cfg.NormalFlowsPerSource / phases
	if flowsPerPhase <= 0 {
		flowsPerPhase = 1
	}
	window := time.Duration(phases) * phaseSpan(flowsPerPhase)

	var (
		out      []labeledFlow
		launched = make(map[int]trace.AttackType)
		packets  int
	)
	for i := 0; ; i++ {
		// Always complete at least one full catalog pass (the paper uses
		// all 12 attacks); beyond that, stop once the budget is consumed.
		if i >= trace.NumAttackTypes && packets >= budget {
			break
		}
		if i >= 20*trace.NumAttackTypes {
			break // safety bound for huge budgets in tiny configs
		}
		info := catalog[order[i%trace.NumAttackTypes]]
		*attackID++
		id := *attackID
		launchAt := experimentEpoch.Add(time.Duration(rng.Int63n(int64(window * 9 / 10))))
		pkts, err := trace.Generate(info.Type, trace.AttackConfig{
			Seed:      seed + int64(id)*37,
			Start:     launchAt,
			Src:       netaddr.IPv4(rng.Uint32()).Addr(),
			DstPrefix: TargetNetwork,
		})
		if err != nil {
			return nil, nil, err
		}
		packets += len(pkts)
		spoof, err := dagflow.NewSpoofPolicy(foreign, seed+int64(id))
		if err != nil {
			return nil, nil, err
		}
		recs, err := replayThroughRouter(fmt.Sprintf("atk%d", id), pkts, spoof, uint16(s))
		if err != nil {
			return nil, nil, err
		}
		for _, r := range recs {
			out = append(out, labeledFlow{peer: eia.PeerAS(s), rec: r, attackID: id})
		}
		launched[id] = info.Type
	}
	return out, launched, nil
}

// foreignPrefixes returns the sub-block prefixes of every peer except s.
func foreignPrefixes(s int) []netaddr.Prefix {
	out := make([]netaddr.Prefix, 0, blocks.NumUsedSubBlocks-blocks.SubBlocksPerSource)
	for as := 1; as <= blocks.DefaultSources; as++ {
		if as == s {
			continue
		}
		alloc, err := blocks.EIAAllocation(as)
		if err != nil {
			continue
		}
		out = append(out, subBlockPrefixes(alloc)...)
	}
	return out
}

// replayThroughRouter pushes a packet trace through one Dagflow instance
// (source rewriting + router flow cache + NetFlow export) and decodes the
// exported datagrams back into flow records — the same path a record takes
// from a real border router to the analysis module.
func replayThroughRouter(name string, pkts []packet.Packet, policy dagflow.SourcePolicy, inputIf uint16) ([]flow.Record, error) {
	in := dagflow.New(dagflow.Config{
		Name:    name,
		Policy:  policy,
		InputIf: inputIf,
		Cache:   netflow.CacheConfig{ExpireOnFINRST: true},
	}, experimentEpoch.Add(-time.Hour))
	dgs, err := in.Replay(pkts)
	if err != nil {
		return nil, err
	}
	db := netflow.NewDecodeBuffer(nil)
	var out []flow.Record
	for _, d := range dgs {
		msg, err := netflow.Decode(d.Raw, db)
		if err != nil {
			return nil, err
		}
		out = append(out, msg.Records...)
	}
	return out, nil
}
