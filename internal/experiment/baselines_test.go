package experiment

import (
	"strings"
	"testing"
)

func TestCompareBaselines(t *testing.T) {
	results, err := CompareBaselines(Options{
		Seed: 4, Runs: 1, NormalFlowsPerSource: 250, TrainingFlows: 700,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d detectors", len(results))
	}
	byName := map[string]BaselineResult{}
	for _, r := range results {
		byName[r.Name] = r
		if r.AttacksLaunched == 0 || r.BenignFlows == 0 {
			t.Fatalf("%s saw no traffic: %+v", r.Name, r)
		}
	}
	bi := byName["Basic InFilter"]
	ei := byName["Enhanced InFilter"]
	urpf := byName["uRPF (strict)"]
	hif := byName["History-based IP filtering"]

	// BI and strict uRPF both catch all spoofed attacks in this symmetric
	// testbed and both suffer route-change false positives.
	if bi.DetectionRate() < 99 || urpf.DetectionRate() < 99 {
		t.Errorf("BI/uRPF detection %.1f/%.1f, want ~100", bi.DetectionRate(), urpf.DetectionRate())
	}
	if bi.FalsePositiveRate() < 0.5 || urpf.FalsePositiveRate() < 0.5 {
		t.Errorf("BI/uRPF FP %.2f/%.2f, want route-change false positives", bi.FalsePositiveRate(), urpf.FalsePositiveRate())
	}
	// EI keeps most of the detection at a fraction of the false positives.
	if ei.DetectionRate() < 60 {
		t.Errorf("EI detection %.1f", ei.DetectionRate())
	}
	if ei.FalsePositiveRate() >= bi.FalsePositiveRate() {
		t.Errorf("EI FP %.2f not below BI %.2f", ei.FalsePositiveRate(), bi.FalsePositiveRate())
	}
	// HIF is blind to the stealthy attacks: well below the InFilter modes.
	if hif.DetectionRate() >= ei.DetectionRate() {
		t.Errorf("HIF detection %.1f should trail EI %.1f", hif.DetectionRate(), ei.DetectionRate())
	}

	tab := BaselineTable(results).String()
	if !strings.Contains(tab, "uRPF") || !strings.Contains(tab, "History") {
		t.Errorf("table missing detectors:\n%s", tab)
	}
}
