package experiment

import (
	"os"
	"testing"
)

// campaignConfig is the deterministic tier-1 campaign: small enough to
// run in the default test budget, large enough that every peer's TTL
// profiles densify before the late TTL-spoof events launch.
func campaignConfig() CampaignConfig {
	return CampaignConfig{
		Seed:                 7,
		DeploymentRates:      []float64{0.5, 1.0},
		NormalFlowsPerSource: 150,
		TrainingFlows:        600,
	}
}

// TestCampaignDeploymentSweep is the acceptance gate of the scenario
// suite: at full SAV deployment at least 95% of injected events are
// detected (with the TTL-spoof class — invisible to EIA — fully caught
// by the second opinion), a half deployment catches strictly fewer, and
// the benign-only control at full deployment raises zero false
// positives. When CAMPAIGN_OUT is set the figure JSON is also written,
// which is how CI archives the sweep as an artifact.
func TestCampaignDeploymentSweep(t *testing.T) {
	res, err := RunCampaign(campaignConfig())
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	half, full := res.Points[0], res.Points[1]

	wantLaunched := 4 * 10 // four event kinds at each of ten peers
	if full.Launched != wantLaunched {
		t.Fatalf("full deployment launched %d events, want %d", full.Launched, wantLaunched)
	}
	if full.DetectionRate < 95 {
		t.Errorf("full-deployment detection = %.1f%% (%d/%d), want >= 95%%; by kind: %v",
			full.DetectionRate, full.Detected, full.Launched, full.ByKind)
	}
	ttl := full.ByKind[EventTTLSpoof]
	if ttl.Launched != 10 || ttl.Detected != ttl.Launched {
		t.Errorf("ttl-spoof events detected %d/%d, want all %d caught",
			ttl.Detected, ttl.Launched, 10)
	}
	if full.TTLStageAlerts == 0 {
		t.Error("no flow was flagged at the ttl-profile stage; second opinion inert")
	}

	if half.Launched != wantLaunched {
		t.Fatalf("half deployment launched %d events, want %d (launches are deployment-independent)",
			half.Launched, wantLaunched)
	}
	if half.Detected >= full.Detected {
		t.Errorf("half deployment detected %d, full %d; partial deployment must catch strictly fewer",
			half.Detected, full.Detected)
	}
	if half.DeployedPeers != 5 || full.DeployedPeers != 10 {
		t.Errorf("deployed peers = %d/%d, want 5/10", half.DeployedPeers, full.DeployedPeers)
	}

	ctl := res.BenignOnly
	if ctl.BenignFlows < 1000 {
		t.Fatalf("benign-only control processed %d flows; too small to gate on", ctl.BenignFlows)
	}
	if ctl.FalsePositives != 0 {
		t.Errorf("benign-only control raised %d false positives over %d flows, want 0",
			ctl.FalsePositives, ctl.BenignFlows)
	}
	if ctl.Launched != 0 {
		t.Errorf("benign-only control launched %d events, want 0", ctl.Launched)
	}

	if out := os.Getenv("CAMPAIGN_OUT"); out != "" {
		f, err := os.Create(out)
		if err != nil {
			t.Fatalf("CAMPAIGN_OUT: %v", err)
		}
		defer f.Close()
		if err := WriteCampaignFigures(f, res); err != nil {
			t.Fatalf("writing campaign figures: %v", err)
		}
		t.Logf("campaign figures written to %s", out)
	}
}

// TestCampaignDeterministic pins that the suite is seed-reproducible:
// two runs with the same config agree event for event.
func TestCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run skipped in -short")
	}
	cfg := campaignConfig()
	cfg.DeploymentRates = []float64{1.0}
	a, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Points[0], b.Points[0]
	if pa.Detected != pb.Detected || pa.FalsePositives != pb.FalsePositives ||
		pa.BenignFlows != pb.BenignFlows || pa.TTLStageAlerts != pb.TTLStageAlerts {
		t.Errorf("campaign not deterministic:\n  run A %+v\n  run B %+v", pa, pb)
	}
}

// TestCampaignRejectsBadRate pins config validation.
func TestCampaignRejectsBadRate(t *testing.T) {
	_, err := RunCampaign(CampaignConfig{DeploymentRates: []float64{1.5}})
	if err == nil {
		t.Fatal("deployment rate 1.5 accepted")
	}
}
