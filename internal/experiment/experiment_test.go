package experiment

import (
	"strings"
	"testing"

	"infilter/internal/analysis"
	"infilter/internal/trace"
)

// tiny returns a fast configuration for tests.
func tiny() Config {
	return Config{
		Seed:                 1,
		NormalFlowsPerSource: 250,
		TrainingFlows:        700,
		AttackPercent:        4,
		AttackSets:           1,
		Runs:                 1,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{AttackPercent: -1},
		{AttackPercent: 99},
		{AttackSets: 11},
		{RouteChangePercent: 9},
	}
	for _, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%+v): want error", cfg)
		}
	}
}

func TestBasicInFilterPoint(t *testing.T) {
	cfg := tiny()
	cfg.Mode = analysis.ModeBasic
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Runs[0]
	// BI flags every spoofed flow: detection must be complete.
	if res.DetectionRate < 99 {
		t.Errorf("BI detection %.1f%%, want ~100%%", res.DetectionRate)
	}
	// Without route instability there is nothing benign to mis-flag.
	if res.FPRate > 0.5 {
		t.Errorf("BI FP %.2f%% without route change", res.FPRate)
	}
	if rr.AttacksLaunched < trace.NumAttackTypes {
		t.Errorf("launched %d attacks, want the full catalog", rr.AttacksLaunched)
	}
	if rr.BenignFlows < 2000 {
		t.Errorf("only %d benign flows", rr.BenignFlows)
	}
}

func TestEnhancedInFilterPoint(t *testing.T) {
	res, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports ~80% detection for EI; allow the band 60-100.
	if res.DetectionRate < 60 {
		t.Errorf("EI detection %.1f%%, want ≥60%%", res.DetectionRate)
	}
	if res.FPRate > 2.5 {
		t.Errorf("EI FP %.2f%%, want ≈2%% or less", res.FPRate)
	}
}

func TestRouteChangeShape(t *testing.T) {
	// BI FP must track the route-change rate; EI must stay well below BI
	// (the Figure 19 relationship).
	biFP := map[int]float64{}
	eiFP := map[int]float64{}
	for _, rc := range []int{2, 8} {
		for _, mode := range []analysis.Mode{analysis.ModeBasic, analysis.ModeEnhanced} {
			cfg := tiny()
			cfg.Mode = mode
			cfg.AttackPercent = 8
			cfg.RouteChangePercent = rc
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if mode == analysis.ModeBasic {
				biFP[rc] = res.FPRate
			} else {
				eiFP[rc] = res.FPRate
			}
		}
	}
	if biFP[8] <= biFP[2] {
		t.Errorf("BI FP not rising with route change: %.2f vs %.2f", biFP[2], biFP[8])
	}
	// BI FP should roughly track the instability percentage.
	if biFP[8] < 4 || biFP[8] > 14 {
		t.Errorf("BI FP at 8%% route change = %.2f%%, want near 8%%", biFP[8])
	}
	for _, rc := range []int{2, 8} {
		if eiFP[rc] >= biFP[rc] {
			t.Errorf("EI FP %.2f%% not below BI %.2f%% at %d%% route change",
				eiFP[rc], biFP[rc], rc)
		}
	}
}

func TestStressTestDegradesDetection(t *testing.T) {
	single := tiny()
	stress := tiny()
	stress.AttackSets = 10
	r1, err := Run(single)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := Run(stress)
	if err != nil {
		t.Fatal(err)
	}
	if r10.Runs[0].AttacksLaunched <= r1.Runs[0].AttacksLaunched {
		t.Errorf("stress test launched %d attacks vs %d single",
			r10.Runs[0].AttacksLaunched, r1.Runs[0].AttacksLaunched)
	}
	// The paper sees detection drop under high attack load; at minimum the
	// stress test must not improve detection.
	if r10.DetectionRate > r1.DetectionRate+10 {
		t.Errorf("stress detection %.1f%% above single-set %.1f%%",
			r10.DetectionRate, r1.DetectionRate)
	}
}

func TestLatencyOrdering(t *testing.T) {
	bi, ei, err := LatencyComparison(Options{
		Seed: 3, Runs: 1, NormalFlowsPerSource: 250, TrainingFlows: 700,
	})
	if err != nil {
		t.Fatal(err)
	}
	// EI does strictly more work per flow (scan + NNS on suspects).
	if ei <= bi {
		t.Errorf("EI latency %v not above BI %v", ei, bi)
	}
}

func TestRunDeterministicAccounting(t *testing.T) {
	a, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tiny())
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Runs[0], b.Runs[0]
	if ra.AttacksLaunched != rb.AttacksLaunched || ra.AttacksDetected != rb.AttacksDetected ||
		ra.BenignFlows != rb.BenignFlows || ra.FalsePositives != rb.FalsePositives {
		t.Errorf("identical seeds diverged: %+v vs %+v", ra, rb)
	}
}

func TestSpoofedSweepFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	sw, err := RunSpoofedSweep(Options{Seed: 5, Runs: 1, NormalFlowsPerSource: 200, TrainingFlows: 600})
	if err != nil {
		t.Fatal(err)
	}
	f15, f16 := sw.Figure15().String(), sw.Figure16().String()
	if !strings.Contains(f15, "Figure 15") || !strings.Contains(f15, "2%") {
		t.Errorf("figure 15 table:\n%s", f15)
	}
	if !strings.Contains(f16, "Figure 16") {
		t.Errorf("figure 16 table:\n%s", f16)
	}
	if len(sw.Single) != len(AttackVolumes) || len(sw.Ten) != len(AttackVolumes) {
		t.Error("sweep grid incomplete")
	}
}

func TestRouteChangeSweepFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	opts := Options{Seed: 6, Runs: 1, NormalFlowsPerSource: 150, TrainingFlows: 600}
	bi, err := RunRouteChangeSweep(opts, analysis.ModeBasic)
	if err != nil {
		t.Fatal(err)
	}
	ei, err := RunRouteChangeSweep(opts, analysis.ModeEnhanced)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bi.Figure().String(), "Figure 17") {
		t.Error("BI sweep mislabeled")
	}
	if !strings.Contains(ei.Figure().String(), "Figure 18") {
		t.Error("EI sweep mislabeled")
	}
	f19 := Figure19(bi, ei).String()
	if !strings.Contains(f19, "Basic InFilter") || !strings.Contains(f19, "Enhanced InFilter") {
		t.Errorf("figure 19 table:\n%s", f19)
	}
}
