package experiment

import (
	"time"

	"infilter/internal/analysis"
	"infilter/internal/baseline"
	"infilter/internal/blocks"
	"infilter/internal/stats"
)

// BaselineResult is one detector's score on the shared workload.
type BaselineResult struct {
	Name            string
	AttacksLaunched int
	AttacksDetected int
	BenignFlows     int
	FalsePositives  int
}

// DetectionRate is the percentage of launched attacks detected.
func (b BaselineResult) DetectionRate() float64 {
	if b.AttacksLaunched == 0 {
		return 0
	}
	return 100 * float64(b.AttacksDetected) / float64(b.AttacksLaunched)
}

// FalsePositiveRate is the percentage of benign flows flagged.
func (b BaselineResult) FalsePositiveRate() float64 {
	if b.BenignFlows == 0 {
		return 0
	}
	return 100 * float64(b.FalsePositives) / float64(b.BenignFlows)
}

// CompareBaselines runs the same workload through Basic InFilter, Enhanced
// InFilter, strict uRPF, and Peng-style history-based IP filtering — the
// §2 comparison the paper argues qualitatively, quantified. The workload
// includes route instability so uRPF's asymmetry weakness shows.
func CompareBaselines(opts Options) ([]BaselineResult, error) {
	cfg := opts.config()
	cfg.Mode = analysis.ModeEnhanced
	cfg.AttackPercent = 8
	cfg.AttackSets = 1
	cfg.RouteChangePercent = 2
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed

	wl, err := buildWorkload(cfg, seed)
	if err != nil {
		return nil, err
	}

	// Engines for BI and EI.
	setBI, err := preloadEIA()
	if err != nil {
		return nil, err
	}
	biEngine, err := analysis.NewEngine(analysis.Config{Mode: analysis.ModeBasic}, setBI, nil)
	if err != nil {
		return nil, err
	}
	setEI, err := preloadEIA()
	if err != nil {
		return nil, err
	}
	cfgEI := cfg
	cfgEI.Mode = analysis.ModeEnhanced
	eiEngine, err := buildEngine(cfgEI, seed, setEI)
	if err != nil {
		return nil, err
	}

	// uRPF: routes mirror the Table 3 allocations — traffic to a block
	// leaves through its owning peer's interface, so strict uRPF accepts a
	// source only at that same interface.
	urpf := baseline.NewURPF()
	for as := 1; as <= blocks.DefaultSources; as++ {
		alloc, err := blocks.EIAAllocation(as)
		if err != nil {
			return nil, err
		}
		for _, sb := range alloc {
			urpf.AddRoute(sb.Prefix(), uint16(as))
		}
	}

	// HIF: history learned from the workload's first benign second, then
	// overload-gated admission; overload is declared when the per-second
	// flow count exceeds three times the observed benign mean.
	hif := baseline.NewHIF()
	benignPerSecond := trainHIF(hif, wl)

	results := []BaselineResult{
		{Name: "Basic InFilter"},
		{Name: "Enhanced InFilter"},
		{Name: "uRPF (strict)"},
		{Name: "History-based IP filtering"},
	}
	detected := make([]map[int]bool, len(results))
	for i := range detected {
		detected[i] = make(map[int]bool)
	}

	var (
		curSecond time.Time
		curCount  int
	)
	for _, lf := range wl.flows {
		// Drive the HIF overload clock.
		sec := lf.rec.End.Truncate(time.Second)
		if !sec.Equal(curSecond) {
			hif.SetOverloaded(float64(curCount) > 3*benignPerSecond)
			curSecond, curCount = sec, 0
		}
		curCount++

		verdicts := []bool{
			biEngine.Process(lf.peer, lf.rec).Attack,
			eiEngine.Process(lf.peer, lf.rec).Attack,
			!urpf.Check(lf.rec.Key.Src, uint16(lf.peer)),
			!hif.Admit(lf.rec.Key.Src),
		}
		for i, flagged := range verdicts {
			if lf.attackID == 0 {
				results[i].BenignFlows++
				if flagged {
					results[i].FalsePositives++
				}
			} else if flagged {
				detected[i][lf.attackID] = true
			}
		}
	}
	for i := range results {
		results[i].AttacksLaunched = len(wl.launchedTypes)
		results[i].AttacksDetected = len(detected[i])
	}
	return results, nil
}

// trainHIF seeds the history filter with the benign sources of the
// workload's opening phase and returns the mean benign flows/second.
func trainHIF(hif *baseline.HIF, wl *workload) float64 {
	if len(wl.flows) == 0 {
		return 1
	}
	start := wl.flows[0].rec.End
	var (
		trained int
		last    time.Time
	)
	for _, lf := range wl.flows {
		if lf.rec.End.Sub(start) > 5*time.Second {
			break
		}
		if lf.attackID == 0 {
			hif.Learn(lf.rec.Key.Src)
			trained++
			last = lf.rec.End
		}
	}
	span := last.Sub(start).Seconds()
	if span <= 0 || trained == 0 {
		return 1
	}
	return float64(trained) / span
}

// BaselineTable renders the comparison.
func BaselineTable(results []BaselineResult) stats.Table {
	t := stats.Table{
		Title:   "Detector comparison on one workload (8% attacks, 2% route change)",
		Columns: []string{"detector", "detection rate", "false positive rate"},
	}
	for _, r := range results {
		t.AddRow(r.Name, stats.Pct(r.DetectionRate()), stats.Pct(r.FalsePositiveRate()))
	}
	return t
}
