package experiment

// Campaign: an SMap-style scenario suite sweeping SAV deployment rate.
// Where the figure experiments of experiment.go measure detection against
// the paper's attack catalog at one fully-instrumented ISP, the campaign
// asks the deployment question the SMap line of work poses: as the
// fraction of peer ingresses running InFilter grows, what share of
// spoofing events launched across the whole topology gets caught, and
// does a deployment that monitors everything stay silent on benign-only
// traffic? Four event kinds are injected per peer — a spoofed SYN flood,
// a Slammer-style network scan, an Idlescan host scan, and a
// TTL-inconsistent spoof whose sources are *inside* the ingress peer's
// own prefixes (an EIA Match only the TTL-profile second opinion can
// contradict). Every flow reaches the engine the long way: packet trace →
// Dagflow source rewriting → router flow cache → IPFIX export → decode,
// so the TTL information elements ride the real wire format (v5 would
// drop them).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/blocks"
	"infilter/internal/dagflow"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/scan"
	"infilter/internal/topo"
	"infilter/internal/trace"
)

// CampaignEventKind names one injected event class.
type CampaignEventKind string

// The campaign's event classes.
const (
	EventSpoofedFlood CampaignEventKind = "spoofed-flood"
	EventNetworkScan  CampaignEventKind = "network-scan"
	EventHostScan     CampaignEventKind = "host-scan"
	EventTTLSpoof     CampaignEventKind = "ttl-spoof"
)

// CampaignEventKinds lists the classes in launch order.
var CampaignEventKinds = []CampaignEventKind{
	EventSpoofedFlood, EventNetworkScan, EventHostScan, EventTTLSpoof,
}

// CampaignConfig parameterizes a deployment-sweep campaign.
type CampaignConfig struct {
	// Seed fixes the whole campaign.
	Seed int64
	// DeploymentRates is the swept fraction of peer ingresses monitored.
	// Nil defaults to DefaultDeploymentRates.
	DeploymentRates []float64
	// NormalFlowsPerSource is the benign flow count each peer replays.
	// Zero defaults to 150.
	NormalFlowsPerSource int
	// TrainingFlows sizes the NNS training cluster. Zero defaults to 600.
	TrainingFlows int
	// TTLTolerance is the TTL-profile hop tolerance. Zero defaults to 2.
	TTLTolerance int
}

// Campaign defaults.
const (
	DefaultCampaignNormalFlows  = 150
	DefaultCampaignTrainingRows = 600
	DefaultCampaignTTLTolerance = 2
)

// DefaultDeploymentRates is the default SAV deployment sweep.
var DefaultDeploymentRates = []float64{0.2, 0.5, 0.8, 1.0}

// campaignSubBlocks restricts each peer's benign (and in-peer spoof)
// sources to its first few /11 sub-blocks, so the TTL profiles, which
// aggregate at sub-block granularity, densify quickly.
const campaignSubBlocks = 4

// campaignInitialTTL is the initial TTL every modeled host sends with.
const campaignInitialTTL = 64

// campaignAttackerExtraHops is how much farther than the victim network
// the spoofing attacker sits — far beyond any hop-jitter tolerance.
const campaignAttackerExtraHops = 15

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.DeploymentRates == nil {
		c.DeploymentRates = DefaultDeploymentRates
	}
	if c.NormalFlowsPerSource <= 0 {
		c.NormalFlowsPerSource = DefaultCampaignNormalFlows
	}
	if c.TrainingFlows <= 0 {
		c.TrainingFlows = DefaultCampaignTrainingRows
	}
	if c.TTLTolerance <= 0 {
		c.TTLTolerance = DefaultCampaignTTLTolerance
	}
	return c
}

func (c CampaignConfig) validate() error {
	for _, r := range c.DeploymentRates {
		if r <= 0 || r > 1 {
			return fmt.Errorf("experiment: deployment rate %v out of (0,1]", r)
		}
	}
	return nil
}

// CampaignPoint is the outcome at one deployment rate.
type CampaignPoint struct {
	DeploymentRate float64
	DeployedPeers  int
	// Launched counts every injected event, monitored ingress or not;
	// events at unmonitored ingresses are launched-but-undetectable,
	// which is exactly what the sweep measures.
	Launched       int
	Detected       int
	DetectionRate  float64
	BenignFlows    int
	FalsePositives int
	FPRate         float64
	// TTLStageAlerts counts attack flows flagged by the TTL second
	// opinion specifically.
	TTLStageAlerts int
	ByKind         map[CampaignEventKind]TypeStats
}

// CampaignResult is the full sweep plus the benign-only control.
type CampaignResult struct {
	Config CampaignConfig
	// PeerHops[s] is peer AS s's modeled hop distance (index 0 unused).
	PeerHops []int
	Points   []CampaignPoint
	// BenignOnly replays benign traffic alone at full deployment: its
	// FalsePositives is the campaign's zero-FP gate.
	BenignOnly CampaignPoint
}

// campaignEvent is one injected event's ground truth.
type campaignEvent struct {
	kind CampaignEventKind
	peer int
}

// campaignWorkload is one campaign's labeled traffic in expiry order.
type campaignWorkload struct {
	flows  []labeledFlow
	events map[int]campaignEvent
}

// RunCampaign executes the sweep: one fresh engine per deployment point
// over the same injected workload, then the benign-only control.
func RunCampaign(cfg CampaignConfig) (*CampaignResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	hops, err := campaignPeerHops(cfg.Seed)
	if err != nil {
		return nil, err
	}
	wl, err := buildCampaignWorkload(cfg, hops, true)
	if err != nil {
		return nil, err
	}
	benign, err := buildCampaignWorkload(cfg, hops, false)
	if err != nil {
		return nil, err
	}
	res := &CampaignResult{Config: cfg, PeerHops: hops}
	for _, rate := range cfg.DeploymentRates {
		pt, err := runCampaignPoint(cfg, wl, rate)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, pt)
	}
	ctl, err := runCampaignPoint(cfg, benign, 1.0)
	if err != nil {
		return nil, err
	}
	res.BenignOnly = ctl
	return res, nil
}

// campaignPeerHops derives each peer AS's hop distance from the topology
// model: one modeled path per peer with per-peer transit depth, so the
// campaign's TTLs are a function of simulated path length, not pinned
// constants. Hop counts land in [5,12], i.e. arrival TTLs in [52,59].
func campaignPeerHops(seed int64) ([]int, error) {
	hops := make([]int, blocks.DefaultSources+1)
	for s := 1; s <= blocks.DefaultSources; s++ {
		net := topo.New(topo.Config{
			Seed:    seed + int64(s),
			Targets: 1, LGSites: 1,
			MinPeers: 1, MaxPeers: 1,
			MidPathHops: 3 + (s*3)%8,
		})
		hops[s] = len(net.Traceroute(0, 0).Hops)
		if hops[s] <= 0 || hops[s] >= campaignInitialTTL {
			return nil, fmt.Errorf("experiment: modeled hop count %d for peer %d out of range", hops[s], s)
		}
	}
	return hops, nil
}

// campaignTTL is the TTL peer s's legitimate traffic arrives with.
func campaignTTL(hops []int, s int) uint8 {
	return uint8(campaignInitialTTL - hops[s])
}

// attackerTTL is the TTL spoofed traffic arrives with when the real
// sender sits campaignAttackerExtraHops beyond peer s's legitimate path.
func attackerTTL(hops []int, s int) uint8 {
	return uint8(campaignInitialTTL - hops[s] - campaignAttackerExtraHops)
}

// campaignPrefixes returns peer s's first campaignSubBlocks /11s.
func campaignPrefixes(s int) ([]netaddr.Prefix, error) {
	alloc, err := blocks.EIAAllocation(s)
	if err != nil {
		return nil, err
	}
	return subBlockPrefixes(alloc[:campaignSubBlocks]), nil
}

func stampTTL(pkts []packet.Packet, ttl uint8) {
	for i := range pkts {
		pkts[i].TTL = ttl
	}
}

// campaignReplay is replayThroughRouter pinned to IPFIX export, the wire
// format that carries the minimumTTL information element. Replaying the
// campaign over v5 would silently zero every TTL and blind the second
// opinion — the wire version is part of what the campaign validates.
func campaignReplay(name string, pkts []packet.Packet, policy dagflow.SourcePolicy, inputIf uint16) ([]flow.Record, error) {
	in := dagflow.New(dagflow.Config{
		Name:    name,
		Policy:  policy,
		InputIf: inputIf,
		Cache:   netflow.CacheConfig{ExpireOnFINRST: true},
		Version: netflow.VersionIPFIX,
	}, experimentEpoch.Add(-time.Hour))
	dgs, err := in.Replay(pkts)
	if err != nil {
		return nil, err
	}
	db := netflow.NewDecodeBuffer(nil)
	var out []flow.Record
	for _, d := range dgs {
		msg, err := netflow.Decode(d.Raw, db)
		if err != nil {
			return nil, err
		}
		out = append(out, msg.Records...)
	}
	return out, nil
}

// buildCampaignWorkload assembles benign traffic for all ten peers and,
// when withEvents is set, the four event kinds at every peer.
func buildCampaignWorkload(cfg CampaignConfig, hops []int, withEvents bool) (*campaignWorkload, error) {
	wl := &campaignWorkload{events: make(map[int]campaignEvent)}
	window := phaseSpan(cfg.NormalFlowsPerSource)
	id := 0
	for s := 1; s <= blocks.DefaultSources; s++ {
		prefixes, err := campaignPrefixes(s)
		if err != nil {
			return nil, err
		}
		pkts, err := trace.GenerateNormal(trace.NormalConfig{
			Seed:        cfg.Seed + int64(s)*211,
			Start:       experimentEpoch,
			Flows:       cfg.NormalFlowsPerSource,
			SrcPrefixes: prefixes,
			DstPrefix:   TargetNetwork,
		})
		if err != nil {
			return nil, err
		}
		stampTTL(pkts, campaignTTL(hops, s))
		recs, err := campaignReplay(fmt.Sprintf("C%d", s), pkts, nil, uint16(s))
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			wl.flows = append(wl.flows, labeledFlow{peer: eia.PeerAS(s), rec: r})
		}
		if !withEvents {
			continue
		}
		evFlows, err := campaignEventFlows(cfg, hops, s, window, &id, wl.events)
		if err != nil {
			return nil, err
		}
		wl.flows = append(wl.flows, evFlows...)
	}
	sort.SliceStable(wl.flows, func(i, j int) bool {
		return wl.flows[i].rec.End.Before(wl.flows[j].rec.End)
	})
	return wl, nil
}

// campaignEventFlows injects the four event kinds at peer s's ingress.
// The foreign-source events (flood and both scans) spoof addresses from
// other peers' blocks, as the catalog experiments do; the TTL-spoof
// event instead draws sources from peer s's *own* prefixes — an EIA
// Match — but arrives with the attacker's hop distance, and launches
// late in the window so the benign replay has densified the profiles
// the way a live deployment's would be.
func campaignEventFlows(cfg CampaignConfig, hops []int, s int, window time.Duration, id *int, events map[int]campaignEvent) ([]labeledFlow, error) {
	foreign := foreignPrefixes(s)
	var out []labeledFlow

	launch := func(kind CampaignEventKind, pkts []packet.Packet, policy dagflow.SourcePolicy) error {
		*id++
		stampTTL(pkts, attackerTTL(hops, s))
		recs, err := campaignReplay(fmt.Sprintf("C%d-%s", s, kind), pkts, policy, uint16(s))
		if err != nil {
			return err
		}
		for _, r := range recs {
			out = append(out, labeledFlow{peer: eia.PeerAS(s), rec: r, attackID: *id})
		}
		events[*id] = campaignEvent{kind: kind, peer: s}
		return nil
	}

	for i, kind := range []CampaignEventKind{EventSpoofedFlood, EventNetworkScan, EventHostScan} {
		at := map[CampaignEventKind]trace.AttackType{
			EventSpoofedFlood: trace.AttackSYNFlood,
			EventNetworkScan:  trace.AttackSlammer,
			EventHostScan:     trace.AttackIdlescan,
		}[kind]
		pkts, err := trace.Generate(at, trace.AttackConfig{
			Seed:      cfg.Seed + int64(*id+1)*37,
			Start:     experimentEpoch.Add(window * time.Duration(3+i) / 10),
			Src:       netaddr.AddrFrom4(203, 0, 113, byte(s)),
			DstPrefix: TargetNetwork,
		})
		if err != nil {
			return nil, err
		}
		spoof, err := dagflow.NewSpoofPolicy(foreign, cfg.Seed+int64(*id+1))
		if err != nil {
			return nil, err
		}
		if err := launch(kind, pkts, spoof); err != nil {
			return nil, err
		}
	}

	ownPrefixes, err := campaignPrefixes(s)
	if err != nil {
		return nil, err
	}
	spoofPkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        cfg.Seed ^ int64(s)<<8,
		Start:       experimentEpoch.Add(window * 85 / 100),
		Flows:       30,
		SrcPrefixes: ownPrefixes,
		DstPrefix:   TargetNetwork,
	})
	if err != nil {
		return nil, err
	}
	if err := launch(EventTTLSpoof, spoofPkts, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// campaignEngine trains one fresh Enhanced engine with the TTL second
// opinion aggregating at the /11 sub-block granularity the campaign's
// address plan uses (every source behind a sub-block shares its peer's
// path, so the aggregation is exact, not approximate).
func campaignEngine(cfg CampaignConfig) (*analysis.Engine, error) {
	set, err := preloadEIA()
	if err != nil {
		return nil, err
	}
	var prefixes []netaddr.Prefix
	for s := 1; s <= blocks.DefaultSources; s++ {
		p, err := campaignPrefixes(s)
		if err != nil {
			return nil, err
		}
		prefixes = append(prefixes, p...)
	}
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        cfg.Seed ^ 0x7ea1,
		Start:       experimentEpoch.Add(-time.Hour),
		Flows:       cfg.TrainingFlows,
		SrcPrefixes: prefixes,
		DstPrefix:   TargetNetwork,
	})
	if err != nil {
		return nil, err
	}
	detector, err := trainDetector(Config{}, cfg.Seed, aggregateFlows(pkts, 0))
	if err != nil {
		return nil, err
	}
	return analysis.NewEngine(analysis.Config{
		Mode: analysis.ModeEnhanced,
		TTL: scan.TTLConfig{
			Tolerance:  cfg.TTLTolerance,
			PrefixLen4: 11,
		},
	}, set, detector)
}

// runCampaignPoint replays the workload at one deployment rate: flows
// arriving at unmonitored ingresses (peers above the deployed count)
// never reach the engine, so their events stay launched-but-undetected.
func runCampaignPoint(cfg CampaignConfig, wl *campaignWorkload, rate float64) (CampaignPoint, error) {
	engine, err := campaignEngine(cfg)
	if err != nil {
		return CampaignPoint{}, err
	}
	deployed := int(rate*float64(blocks.DefaultSources) + 0.5)
	pt := CampaignPoint{
		DeploymentRate: rate,
		DeployedPeers:  deployed,
		ByKind:         make(map[CampaignEventKind]TypeStats),
	}
	detected := make(map[int]bool)
	for _, lf := range wl.flows {
		if int(lf.peer) > deployed {
			continue
		}
		d := engine.Process(lf.peer, lf.rec)
		if lf.attackID == 0 {
			pt.BenignFlows++
			if d.Attack {
				pt.FalsePositives++
			}
			continue
		}
		if d.Attack {
			detected[lf.attackID] = true
			if d.Stage == idmef.StageTTL {
				pt.TTLStageAlerts++
			}
		}
	}
	pt.Launched = len(wl.events)
	for id, ev := range wl.events {
		ts := pt.ByKind[ev.kind]
		ts.Launched++
		if detected[id] {
			pt.Detected++
			ts.Detected++
		}
		pt.ByKind[ev.kind] = ts
	}
	if pt.Launched > 0 {
		pt.DetectionRate = 100 * float64(pt.Detected) / float64(pt.Launched)
	}
	if pt.BenignFlows > 0 {
		pt.FPRate = 100 * float64(pt.FalsePositives) / float64(pt.BenignFlows)
	}
	return pt, nil
}

// campaignFigure is the serialized figure format CI archives: one row
// per deployment point plus the benign-only control.
type campaignFigure struct {
	Seed       int64               `json:"seed"`
	PeerHops   []int               `json:"peer_hops"`
	Points     []campaignFigureRow `json:"points"`
	BenignOnly campaignFigureRow   `json:"benign_only"`
}

type campaignFigureRow struct {
	DeploymentRate float64                         `json:"deployment_rate"`
	DeployedPeers  int                             `json:"deployed_peers"`
	Launched       int                             `json:"launched"`
	Detected       int                             `json:"detected"`
	DetectionRate  float64                         `json:"detection_rate"`
	BenignFlows    int                             `json:"benign_flows"`
	FalsePositives int                             `json:"false_positives"`
	FPRate         float64                         `json:"fp_rate"`
	TTLStageAlerts int                             `json:"ttl_stage_alerts"`
	ByKind         map[CampaignEventKind]TypeStats `json:"by_kind"`
}

func figureRow(pt CampaignPoint) campaignFigureRow {
	return campaignFigureRow{
		DeploymentRate: pt.DeploymentRate,
		DeployedPeers:  pt.DeployedPeers,
		Launched:       pt.Launched,
		Detected:       pt.Detected,
		DetectionRate:  pt.DetectionRate,
		BenignFlows:    pt.BenignFlows,
		FalsePositives: pt.FalsePositives,
		FPRate:         pt.FPRate,
		TTLStageAlerts: pt.TTLStageAlerts,
		ByKind:         pt.ByKind,
	}
}

// WriteCampaignFigures serializes the sweep as indented JSON — the
// detection-vs-deployment and false-positive figure data CI uploads as
// an artifact next to the benchmark baselines.
func WriteCampaignFigures(w io.Writer, res *CampaignResult) error {
	fig := campaignFigure{
		Seed:       res.Config.Seed,
		PeerHops:   res.PeerHops,
		BenignOnly: figureRow(res.BenignOnly),
	}
	for _, pt := range res.Points {
		fig.Points = append(fig.Points, figureRow(pt))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fig)
}
