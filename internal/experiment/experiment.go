// Package experiment implements the paper's testbed evaluation (§6): the
// emulated 10-peer-AS ISP (Figures 13/14), Table 3 EIA preloading, Dagflow
// replay of normal and attack traffic with controlled spoofing and route
// instability, and the experiment series behind Figures 15-19.
package experiment

import (
	"fmt"
	"sort"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/blocks"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/stats"
	"infilter/internal/trace"
)

// TargetNetwork is the victim ISP's address range the attacks aim at.
var TargetNetwork = netaddr.MustParsePrefix("192.0.2.0/24")

// Config parameterizes one experiment (a point in the paper's sweeps).
type Config struct {
	// Seed fixes everything; runs within the experiment derive their own
	// seeds from it.
	Seed int64
	// Mode selects BI or EI (§6.3's software configurations).
	Mode analysis.Mode
	// NormalFlowsPerSource is how many benign flows each of the 10 Dagflow
	// sources replays. Zero defaults to 600.
	NormalFlowsPerSource int
	// TrainingFlows sizes the normal training cluster. Zero defaults
	// to 1200.
	TrainingFlows int
	// AttackPercent is attack traffic volume as a percentage of the
	// normal packet volume at each attacked border router (2, 4 or 8).
	AttackPercent int
	// AttackSets is how many peer ASes receive an attack set: 1 for
	// §6.3.1, 10 for the §6.3.2 stress test.
	AttackSets int
	// RouteChangePercent emulates route instability per §6.3.3 (0, 1, 2,
	// 4 or 8): that percentage of each source's sub-blocks is replaced by
	// foreign sub-blocks, rotating through four allocations.
	RouteChangePercent int
	// Runs is the number of averaged repetitions. Zero defaults to 5.
	Runs int
}

// Defaults for Config.
const (
	DefaultNormalFlows   = 600
	DefaultTrainingFlows = 1200
	DefaultRuns          = 5
)

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = analysis.ModeEnhanced
	}
	if c.NormalFlowsPerSource <= 0 {
		c.NormalFlowsPerSource = DefaultNormalFlows
	}
	if c.TrainingFlows <= 0 {
		c.TrainingFlows = DefaultTrainingFlows
	}
	if c.AttackSets <= 0 {
		c.AttackSets = 1
	}
	if c.Runs <= 0 {
		c.Runs = DefaultRuns
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.AttackPercent < 0 || c.AttackPercent > 50:
		return fmt.Errorf("experiment: attack percent %d out of range", c.AttackPercent)
	case c.AttackSets > blocks.DefaultSources:
		return fmt.Errorf("experiment: %d attack sets exceed %d peers", c.AttackSets, blocks.DefaultSources)
	case c.RouteChangePercent < 0 || c.RouteChangePercent > 8:
		return fmt.Errorf("experiment: route change percent %d out of range", c.RouteChangePercent)
	default:
		return nil
	}
}

// TypeStats counts launches and detections of one attack type.
type TypeStats struct {
	Launched int
	Detected int
}

// RunResult is one repetition's outcome.
type RunResult struct {
	AttacksLaunched int
	AttacksDetected int
	BenignFlows     int
	FalsePositives  int
	AttackFlows     int
	AttackFlagged   int
	AvgLatency      time.Duration
	Promotions      int
	// ByType breaks detection down per attack type.
	ByType map[trace.AttackType]TypeStats
}

// DetectionRate is the percentage of launched attacks detected.
func (r RunResult) DetectionRate() float64 {
	if r.AttacksLaunched == 0 {
		return 0
	}
	return 100 * float64(r.AttacksDetected) / float64(r.AttacksLaunched)
}

// FalsePositiveRate is the percentage of benign flows flagged.
func (r RunResult) FalsePositiveRate() float64 {
	if r.BenignFlows == 0 {
		return 0
	}
	return 100 * float64(r.FalsePositives) / float64(r.BenignFlows)
}

// Result aggregates the repetitions of one experiment point.
type Result struct {
	Config        Config
	Runs          []RunResult
	DetectionRate float64 // mean over runs
	FPRate        float64 // mean over runs
	AvgLatency    time.Duration
}

// Run executes the experiment: Runs repetitions, averaged.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	res := Result{Config: cfg}
	var det, fp []float64
	var lat time.Duration
	for run := 0; run < cfg.Runs; run++ {
		rr, err := runOnce(cfg, cfg.Seed+int64(run)*7919)
		if err != nil {
			return Result{}, fmt.Errorf("experiment: run %d: %w", run, err)
		}
		res.Runs = append(res.Runs, rr)
		det = append(det, rr.DetectionRate())
		fp = append(fp, rr.FalsePositiveRate())
		lat += rr.AvgLatency
	}
	res.DetectionRate = stats.Mean(det)
	res.FPRate = stats.Mean(fp)
	res.AvgLatency = lat / time.Duration(len(res.Runs))
	return res, nil
}

// labeledFlow is one replayed flow with its ground truth.
type labeledFlow struct {
	peer     eia.PeerAS
	rec      flow.Record
	attackID int // 0 = benign
}

var experimentEpoch = time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)

// preloadEIA builds the Table 3 EIA configuration.
func preloadEIA() (*eia.Set, error) {
	set := eia.NewSet(eia.Config{})
	for as := 1; as <= blocks.DefaultSources; as++ {
		alloc, err := blocks.EIAAllocation(as)
		if err != nil {
			return nil, err
		}
		for _, sb := range alloc {
			set.AddPrefix(eia.PeerAS(as), sb.Prefix())
		}
	}
	return set, nil
}

// workload is one run's labeled traffic, sorted in flow-expiry order.
type workload struct {
	flows         []labeledFlow
	launchedTypes map[int]trace.AttackType
}

// buildWorkload replays the 10 normal sources (with route instability if
// asked) and the attack sets, labeled and time-ordered.
func buildWorkload(cfg Config, seed int64) (*workload, error) {
	var all []labeledFlow
	normalPackets := make([]int, blocks.DefaultSources+1)
	for src := 1; src <= blocks.DefaultSources; src++ {
		flows, pkts, err := normalSourceFlows(cfg, seed, src)
		if err != nil {
			return nil, err
		}
		normalPackets[src] = pkts
		all = append(all, flows...)
	}
	attackID := 0
	launchedTypes := make(map[int]trace.AttackType)
	for s := 1; s <= cfg.AttackSets; s++ {
		flows, launched, err := attackSetFlows(cfg, seed, s, normalPackets[s], &attackID)
		if err != nil {
			return nil, err
		}
		for id, at := range launched {
			launchedTypes[id] = at
		}
		all = append(all, flows...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].rec.End.Before(all[j].rec.End) })
	return &workload{flows: all, launchedTypes: launchedTypes}, nil
}

func runOnce(cfg Config, seed int64) (RunResult, error) {
	set, err := preloadEIA()
	if err != nil {
		return RunResult{}, err
	}
	engine, err := buildEngine(cfg, seed, set)
	if err != nil {
		return RunResult{}, err
	}
	wl, err := buildWorkload(cfg, seed)
	if err != nil {
		return RunResult{}, err
	}
	all, launchedTypes := wl.flows, wl.launchedTypes

	var rr RunResult
	rr.AttacksLaunched = len(launchedTypes)
	detected := make(map[int]bool)
	var totalLatency time.Duration
	for _, lf := range all {
		d := engine.Process(lf.peer, lf.rec)
		totalLatency += d.Latency
		if lf.attackID == 0 {
			rr.BenignFlows++
			if d.Attack {
				rr.FalsePositives++
			}
			continue
		}
		rr.AttackFlows++
		if d.Attack {
			rr.AttackFlagged++
			detected[lf.attackID] = true
		}
	}
	rr.AttacksDetected = len(detected)
	if n := len(all); n > 0 {
		rr.AvgLatency = totalLatency / time.Duration(n)
	}
	rr.Promotions = engine.Stats().Promotions
	rr.ByType = make(map[trace.AttackType]TypeStats)
	for id, at := range launchedTypes {
		ts := rr.ByType[at]
		ts.Launched++
		if detected[id] {
			ts.Detected++
		}
		rr.ByType[at] = ts
	}
	return rr, nil
}

// buildEngine trains the analysis engine for this run.
func buildEngine(cfg Config, seed int64, set *eia.Set) (*analysis.Engine, error) {
	if cfg.Mode == analysis.ModeBasic {
		return analysis.NewEngine(analysis.Config{Mode: analysis.ModeBasic}, set, nil)
	}
	// Training traffic comes from across the full experiment address space.
	var prefixes []netaddr.Prefix
	for i := 0; i < blocks.NumUsedSubBlocks; i += 25 {
		prefixes = append(prefixes, blocks.MustSubBlockAt(i).Prefix())
	}
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        seed ^ 0x7ea1,
		Start:       experimentEpoch.Add(-time.Hour),
		Flows:       cfg.TrainingFlows,
		SrcPrefixes: prefixes,
		DstPrefix:   TargetNetwork,
	})
	if err != nil {
		return nil, err
	}
	training := aggregateFlows(pkts, 0)
	detector, err := trainDetector(cfg, seed, training)
	if err != nil {
		return nil, err
	}
	return analysis.NewEngine(analysis.Config{Mode: analysis.ModeEnhanced}, set, detector)
}

// aggregateFlows runs a packet trace through a router flow cache.
func aggregateFlows(pkts []packet.Packet, ifIndex uint16) []flow.Record {
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, ifIndex)
	}
	cache.FlushAll()
	return cache.Drain()
}
