// Package baseline implements the two comparison schemes the paper
// discusses in §2: Unicast Reverse Path Forwarding (uRPF), which assumes
// ingress interface == egress interface per the local routing table, and
// Peng et al.'s history-based IP filtering (HIF), which admits sources
// previously seen anywhere in the network when the edge is overloaded.
// Both exist so the evaluation can show where InFilter's per-peer
// expectation model differs.
package baseline

import (
	"infilter/internal/netaddr"
)

// URPF models a border router's unicast reverse-path-forwarding check: a
// packet passes only when the local routing table routes its source
// address back out the interface it arrived on. At boundaries between
// large networks this assumption breaks (asymmetric routing), which is why
// InFilter does not rely on it (§2).
type URPF struct {
	routes *netaddr.PrefixTrie[uint16] // prefix -> egress interface
}

// NewURPF returns an empty uRPF checker.
func NewURPF() *URPF {
	return &URPF{routes: netaddr.NewPrefixTrie[uint16]()}
}

// AddRoute installs a route: traffic to p leaves through ifIndex.
func (u *URPF) AddRoute(p netaddr.Prefix, ifIndex uint16) {
	u.routes.Insert(p, ifIndex)
}

// Check reports whether a packet with the given source arriving on
// ifIndex passes the strict uRPF test.
func (u *URPF) Check(src netaddr.Addr, ifIndex uint16) bool {
	egress, ok := u.routes.Lookup(src)
	return ok && egress == ifIndex
}

// RouteCount returns the number of installed routes.
func (u *URPF) RouteCount() int { return u.routes.Len() }

// HIF is Peng et al.'s history-based IP filtering: an edge router keeps a
// history of source addresses that previously appeared; under overload it
// admits only sources in the history. Unlike InFilter it keeps no per-peer
// mapping, so any previously-seen address passes regardless of ingress —
// and it only helps against volume attacks (the overload trigger), not
// stealthy ones.
type HIF struct {
	history    map[netaddr.Addr]struct{}
	overloaded bool
}

// NewHIF returns an empty history filter.
func NewHIF() *HIF {
	return &HIF{history: make(map[netaddr.Addr]struct{})}
}

// Learn records a source address in the history (normal operation).
func (h *HIF) Learn(src netaddr.Addr) {
	h.history[src] = struct{}{}
}

// SetOverloaded toggles the overload state; filtering applies only while
// overloaded.
func (h *HIF) SetOverloaded(v bool) { h.overloaded = v }

// Overloaded reports the current overload state.
func (h *HIF) Overloaded() bool { return h.overloaded }

// Admit reports whether a packet from src is admitted: always when not
// overloaded; only if historically seen when overloaded.
func (h *HIF) Admit(src netaddr.Addr) bool {
	if !h.overloaded {
		return true
	}
	_, ok := h.history[src]
	return ok
}

// HistorySize returns the number of learned sources.
func (h *HIF) HistorySize() int { return len(h.history) }
