package baseline

import (
	"testing"

	"infilter/internal/netaddr"
)

func TestURPFSymmetricRoutingPasses(t *testing.T) {
	u := NewURPF()
	u.AddRoute(netaddr.MustParsePrefix("61.0.0.0/11"), 1)
	u.AddRoute(netaddr.MustParsePrefix("70.0.0.0/11"), 2)
	if u.RouteCount() != 2 {
		t.Fatalf("RouteCount = %d", u.RouteCount())
	}
	if !u.Check(netaddr.MustParseAddr("61.1.2.3"), 1) {
		t.Error("symmetric source failed uRPF")
	}
	if u.Check(netaddr.MustParseAddr("61.1.2.3"), 2) {
		t.Error("spoofed/asymmetric source passed uRPF")
	}
	if u.Check(netaddr.MustParseAddr("99.1.2.3"), 1) {
		t.Error("unrouted source passed uRPF")
	}
}

// TestURPFAsymmetryFalsePositive documents the failure mode InFilter
// avoids: legitimate traffic arriving on a different interface than the
// best route back (asymmetric inter-domain routing) is dropped by uRPF.
func TestURPFAsymmetryFalsePositive(t *testing.T) {
	u := NewURPF()
	u.AddRoute(netaddr.MustParsePrefix("61.0.0.0/11"), 1)
	// Legit traffic from 61/11 actually enters via interface 3 because the
	// neighbor's policy differs from our best path.
	if u.Check(netaddr.MustParseAddr("61.5.5.5"), 3) {
		t.Fatal("expected uRPF to (wrongly) reject the asymmetric flow")
	}
}

func TestURPFLongestPrefix(t *testing.T) {
	u := NewURPF()
	u.AddRoute(netaddr.MustParsePrefix("4.0.0.0/8"), 1)
	u.AddRoute(netaddr.MustParsePrefix("4.2.101.0/24"), 2)
	if !u.Check(netaddr.MustParseAddr("4.2.101.20"), 2) {
		t.Error("more-specific route not honored")
	}
	if u.Check(netaddr.MustParseAddr("4.2.101.20"), 1) {
		t.Error("covering route won over more-specific")
	}
}

func TestHIFAdmitsEverythingWhenNotOverloaded(t *testing.T) {
	h := NewHIF()
	if !h.Admit(netaddr.MustParseAddr("1.2.3.4")) {
		t.Error("not-overloaded HIF rejected a flow")
	}
	if h.Overloaded() {
		t.Error("fresh HIF overloaded")
	}
}

func TestHIFFiltersUnderOverload(t *testing.T) {
	h := NewHIF()
	known := netaddr.MustParseAddr("61.1.1.1")
	h.Learn(known)
	h.Learn(known) // idempotent
	if h.HistorySize() != 1 {
		t.Errorf("HistorySize = %d", h.HistorySize())
	}
	h.SetOverloaded(true)
	if !h.Admit(known) {
		t.Error("known source rejected under overload")
	}
	if h.Admit(netaddr.MustParseAddr("99.9.9.9")) {
		t.Error("unknown source admitted under overload")
	}
	h.SetOverloaded(false)
	if !h.Admit(netaddr.MustParseAddr("99.9.9.9")) {
		t.Error("unknown source rejected after overload cleared")
	}
}

// TestHIFBlindToStealthySpoofing documents the gap InFilter fills: a
// stealthy attack never triggers overload, so HIF admits its spoofed
// packets; and a spoofed address that appeared anywhere before passes even
// under overload.
func TestHIFBlindToStealthySpoofing(t *testing.T) {
	h := NewHIF()
	spoofed := netaddr.MustParseAddr("70.9.9.9")
	h.Learn(spoofed) // the real owner's traffic was seen once
	// Stealthy attack: no overload — everything admitted.
	if !h.Admit(spoofed) {
		t.Error("stealthy spoofed packet rejected without overload")
	}
	// Even under overload, the historically-seen spoofed address passes.
	h.SetOverloaded(true)
	if !h.Admit(spoofed) {
		t.Error("historically-seen spoofed source rejected")
	}
}
