package cluster

import (
	"bytes"
	"net"
	"testing"
	"time"

	"infilter/internal/eia"
	"infilter/internal/netaddr"
	"infilter/internal/testutil"
)

func testNode(t *testing.T, set *eia.Set, peers ...string) (*Node, *eia.Store) {
	t.Helper()
	store := eia.NewStore(set)
	n, err := NewNode(Config{
		Listen:      "127.0.0.1:0",
		Peers:       peers,
		Interval:    20 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		DialTimeout: time.Second,
		IOTimeout:   2 * time.Second,
	}, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, store
}

func storeBytes(t *testing.T, st *eia.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitFor(t *testing.T, what string, deadline time.Duration, cond func() bool) {
	t.Helper()
	stop := time.Now().Add(deadline)
	for time.Now().Before(stop) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTwoNodeConvergence is the core replication loop: two nodes with
// disjoint EIA state, peered at each other, must converge to the same
// byte-identical checkpoint — the Merge of both sides.
func TestTwoNodeConvergence(t *testing.T) {
	setA := eia.NewSet(eia.Config{})
	setA.AddPrefix(1, netaddr.MustParsePrefix("10.1.0.0/16"))
	setA.AddPrefix(2, netaddr.MustParsePrefix("2001:db8::/48"))
	setB := eia.NewSet(eia.Config{})
	setB.AddPrefix(3, netaddr.MustParsePrefix("192.0.2.0/24"))
	setB.AddPrefix(4, netaddr.MustParsePrefix("2001:db8:ff::/64"))

	// The merged fixpoint both stores must reach.
	mergedA := eia.NewSet(eia.Config{})
	mergedA.AddPrefix(1, netaddr.MustParsePrefix("10.1.0.0/16"))
	mergedA.AddPrefix(2, netaddr.MustParsePrefix("2001:db8::/48"))
	mergedB := eia.NewSet(eia.Config{})
	mergedB.AddPrefix(3, netaddr.MustParsePrefix("192.0.2.0/24"))
	mergedB.AddPrefix(4, netaddr.MustParsePrefix("2001:db8:ff::/64"))
	var want bytes.Buffer
	if err := eia.Merge(mergedA, mergedB).WriteCheckpoint(&want); err != nil {
		t.Fatal(err)
	}

	nodeA, storeA := testNode(t, setA)
	nodeB, storeB := testNode(t, setB, nodeA.Addr())
	// A learns B's address only after B binds; rebuild A with the peer.
	nodeA.Close()
	storeA = eia.NewStore(mustSetClone(t, setA))
	nodeA2, err := NewNode(Config{
		Listen:      "127.0.0.1:0",
		Peers:       []string{nodeB.Addr()},
		Interval:    20 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		DialTimeout: time.Second,
		IOTimeout:   2 * time.Second,
	}, storeA, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer nodeA2.Close()

	nodeA2.Start()
	nodeB.Start()

	// B pushes to the *original* nodeA listener which is closed — but A2
	// pushes to B, and B's state reaches A2 only via B→A2 replication,
	// which B doesn't have configured. So assert one-way first: B must
	// converge to the merge (it receives A2's snapshots and A2 reads back
	// B's post-merge count via acks).
	waitFor(t, "node B to fold node A's snapshot", 3*time.Second, func() bool {
		return bytes.Equal(storeBytes(t, storeB), want.Bytes())
	})
	waitFor(t, "node A to see B's post-merge prefix count", 3*time.Second, func() bool {
		st := nodeA2.Status()
		return len(st.Peers) == 1 && st.Peers[0].Up && st.Peers[0].RemotePrefixes == 4
	})
	if st := nodeA2.Status(); st.Peers[0].RemoteNode != nodeB.NodeID() {
		t.Errorf("ack node ID = %q, want %q", st.Peers[0].RemoteNode, nodeB.NodeID())
	}
}

// mustSetClone round-trips a set through the checkpoint codec — the
// canonical way to copy one.
func mustSetClone(t *testing.T, s *eia.Set) *eia.Set {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := eia.DecodeCheckpoint(eia.Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBidirectionalConvergence wires a full mesh by pre-allocating both
// listen ports, so each node starts already knowing its peer.
func TestBidirectionalConvergence(t *testing.T) {
	addrA, closeA := reservePort(t)
	addrB, closeB := reservePort(t)
	closeA()
	closeB()

	setA := eia.NewSet(eia.Config{})
	setA.AddPrefix(1, netaddr.MustParsePrefix("10.1.0.0/16"))
	setA.AddPrefix(3, netaddr.MustParsePrefix("172.16.0.0/12"))
	setB := eia.NewSet(eia.Config{})
	setB.AddPrefix(2, netaddr.MustParsePrefix("10.1.0.0/16")) // conflict: 1 wins
	setB.AddPrefix(4, netaddr.MustParsePrefix("2001:db8::/48"))

	var want bytes.Buffer
	if err := eia.Merge(mustSetClone(t, setA), mustSetClone(t, setB)).WriteCheckpoint(&want); err != nil {
		t.Fatal(err)
	}

	mk := func(listen, peer string, set *eia.Set) (*Node, *eia.Store) {
		store := eia.NewStore(set)
		n, err := NewNode(Config{
			Listen:      listen,
			Peers:       []string{peer},
			Interval:    20 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
			DialTimeout: time.Second,
			IOTimeout:   2 * time.Second,
		}, store, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		n.Start()
		return n, store
	}
	nodeA, storeA := mk(addrA, addrB, setA)
	nodeB, storeB := mk(addrB, addrA, setB)

	waitFor(t, "both stores to reach the merged fixpoint", 5*time.Second, func() bool {
		return bytes.Equal(storeBytes(t, storeA), want.Bytes()) &&
			bytes.Equal(storeBytes(t, storeB), want.Bytes())
	})

	// Both rings agree on membership and therefore on ownership.
	if got, want := nodeA.Ring().Nodes(), nodeB.Ring().Nodes(); len(got) != 2 || len(want) != 2 ||
		got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ring membership disagrees: A=%v B=%v", got, want)
	}
	for p := uint16(1); p <= 16; p++ {
		if nodeA.Ring().Owner(peerASExporter, uint32(p)) != nodeB.Ring().Owner(peerASExporter, uint32(p)) {
			t.Errorf("nodes disagree on owner of peer AS %d", p)
		}
	}

	waitFor(t, "status to report a converged cluster", 5*time.Second, func() bool {
		st := nodeA.Status()
		return st.Cluster.Converged && st.Cluster.PeersUp == 1 &&
			st.Cluster.TotalKnownPrefixes == 2*st.LocalPrefixes
	})
}

func reservePort(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln.Addr().String(), func() { ln.Close() }
}

// TestPeerDownDoesNotBlockLocal proves graceful degradation: with its
// only peer unreachable, a node keeps answering checks, counts send
// errors, and marks the peer down — and recovers once the peer appears.
func TestPeerDownDoesNotBlockLocal(t *testing.T) {
	peerAddr, release := reservePort(t)
	release() // nothing listening there yet

	set := eia.NewSet(eia.Config{})
	set.AddPrefix(1, netaddr.MustParsePrefix("10.0.0.0/8"))
	node, store := testNode(t, set, peerAddr)
	node.Start()

	waitFor(t, "send errors against the dead peer", 3*time.Second, func() bool {
		return node.Status().Peers[0].Errors > 0
	})
	st := node.Status()
	if st.Peers[0].Up {
		t.Error("dead peer reported up")
	}
	if st.Cluster.Converged {
		t.Error("cluster reported converged with its only peer down")
	}
	// Local checking is unaffected while replication fails.
	if v := store.Check(1, netaddr.MustParseAddr("10.1.2.3")); v != eia.Match {
		t.Errorf("Check during peer outage = %v, want match", v)
	}

	// Bring the peer up at the reserved address; backoff must recover.
	peerSet := eia.NewSet(eia.Config{})
	peerStore := eia.NewStore(peerSet)
	peer, err := NewNode(Config{Listen: peerAddr, Interval: 20 * time.Millisecond}, peerStore, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	peer.Start()

	waitFor(t, "replication to recover after the peer came up", 5*time.Second, func() bool {
		s := node.Status()
		return s.Peers[0].Up && s.Peers[0].Rounds > 0
	})
	waitFor(t, "late-started peer to learn the snapshot", 3*time.Second, func() bool {
		return peerStore.Len() == 1
	})
}

// TestReceiverRejectsBadMagic: a stranger speaking the wrong protocol is
// dropped at the hello and counted as a receive error.
func TestReceiverRejectsBadMagic(t *testing.T) {
	set := eia.NewSet(eia.Config{})
	node, store := testNode(t, set)
	node.Start()

	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("receiver answered a bad-magic hello instead of hanging up")
	}
	waitFor(t, "receive error counter", 3*time.Second, func() bool {
		return node.metrics.RecvErrors.Value() > 0
	})
	if store.Len() != 0 {
		t.Errorf("store gained %d prefixes from a rejected connection", store.Len())
	}
}

// TestReceiverRejectsGarbageSnapshot: a well-formed hello followed by a
// frame that isn't a checkpoint must not corrupt the store.
func TestReceiverRejectsGarbageSnapshot(t *testing.T) {
	set := eia.NewSet(eia.Config{})
	set.AddPrefix(1, netaddr.MustParsePrefix("10.0.0.0/8"))
	node, store := testNode(t, set)
	node.Start()
	before := storeBytes(t, store)

	conn, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHello(conn, "stranger"); err != nil {
		t.Fatal(err)
	}
	if _, err := readHello(conn); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, []byte("not a checkpoint\n")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "garbage frame counted as receive error", 3*time.Second, func() bool {
		return node.metrics.RecvErrors.Value() > 0
	})
	if !bytes.Equal(storeBytes(t, store), before) {
		t.Error("garbage snapshot changed the store")
	}
}

// TestClusterGoroutineHygiene runs a full two-node converge-and-close
// cycle under the goroutine-leak gate.
func TestClusterGoroutineHygiene(t *testing.T) {
	testutil.ExpectNoGoroutineGrowth(t, func() {
		addrA, closeA := reservePort(t)
		addrB, closeB := reservePort(t)
		closeA()
		closeB()

		mk := func(listen, peer string, seed netaddr.Prefix, as eia.PeerAS) (*Node, *eia.Store) {
			set := eia.NewSet(eia.Config{})
			set.AddPrefix(as, seed)
			store := eia.NewStore(set)
			n, err := NewNode(Config{
				Listen:     listen,
				Peers:      []string{peer},
				Interval:   10 * time.Millisecond,
				MaxBackoff: 50 * time.Millisecond,
			}, store, nil)
			if err != nil {
				t.Fatal(err)
			}
			n.Start()
			return n, store
		}
		nodeA, storeA := mk(addrA, addrB, netaddr.MustParsePrefix("10.0.0.0/8"), 1)
		nodeB, storeB := mk(addrB, addrA, netaddr.MustParsePrefix("192.0.2.0/24"), 2)
		waitFor(t, "cross-replication", 5*time.Second, func() bool {
			return storeA.Len() == 2 && storeB.Len() == 2
		})
		if err := nodeA.Close(); err != nil {
			t.Errorf("close A: %v", err)
		}
		if err := nodeB.Close(); err != nil {
			t.Errorf("close B: %v", err)
		}
		// Double-close is safe.
		nodeA.Close()
	})
}
