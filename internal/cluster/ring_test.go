package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingValidates(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("NewRing(nil) succeeded, want error")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Error("NewRing with empty ID succeeded, want error")
	}
	r, err := NewRing([]string{"b", "a", "b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Errorf("Size = %d after dedupe, want 2", r.Size())
	}
	if n := r.Nodes(); n[0] != "a" || n[1] != "b" {
		t.Errorf("Nodes = %v, want sorted [a b]", n)
	}
}

func TestRingAgreesAcrossMemberOrderings(t *testing.T) {
	r1, _ := NewRing([]string{"node-a", "node-b", "node-c"})
	r2, _ := NewRing([]string{"node-c", "node-a", "node-b"})
	for d := uint32(0); d < 500; d++ {
		key := fmt.Sprintf("exporter-%d", d%7)
		if r1.Owner(key, d) != r2.Owner(key, d) {
			t.Fatalf("ownership of (%s,%d) depends on membership order", key, d)
		}
	}
}

func TestRingSingleOwnerPerKey(t *testing.T) {
	r, _ := NewRing([]string{"node-a", "node-b", "node-c"})
	for d := uint32(0); d < 300; d++ {
		owner := r.Owner("exp", d)
		owned := 0
		for _, n := range r.Nodes() {
			if r.Owns(n, "exp", d) {
				owned++
				if n != owner {
					t.Fatalf("domain %d: Owns(%s) true but Owner = %s", d, n, owner)
				}
			}
		}
		if owned != 1 {
			t.Fatalf("domain %d has %d owners", d, owned)
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"10.0.0.1:9201", "10.0.0.2:9201", "10.0.0.3:9201"}
	r, _ := NewRing(nodes)
	counts := make(map[string]int)
	const keys = 3000
	for d := uint32(0); d < keys; d++ {
		counts[r.Owner("exporter", d)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / keys
		if share < 0.20 || share > 0.47 {
			t.Errorf("node %s owns %.0f%% of keys, want roughly a third", n, share*100)
		}
	}
}

// TestRingMinimalDisruption checks the consistent-hash property: removing
// one node only moves the keys it owned; every other key keeps its owner.
func TestRingMinimalDisruption(t *testing.T) {
	full, _ := NewRing([]string{"a", "b", "c"})
	sansC, _ := NewRing([]string{"a", "b"})
	moved := 0
	for d := uint32(0); d < 1000; d++ {
		before := full.Owner("exp", d)
		after := sansC.Owner("exp", d)
		if before == "c" {
			moved++
			continue
		}
		if before != after {
			t.Fatalf("domain %d moved %s→%s although its owner survived", d, before, after)
		}
	}
	if moved == 0 {
		t.Error("node c owned no keys; balance test should have caught this")
	}
}

func TestRingPeerASOwnershipPartition(t *testing.T) {
	r, _ := NewRing([]string{"a", "b", "c"})
	const peers = 64
	total := 0
	for _, n := range r.Nodes() {
		total += r.OwnedPeerASCount(n, peers)
	}
	if total != peers {
		t.Errorf("OwnedPeerASCount sums to %d over all nodes, want %d", total, peers)
	}
	for p := uint16(1); p <= peers; p++ {
		owners := 0
		for _, n := range r.Nodes() {
			if r.OwnsPeerAS(n, p) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("peer AS %d has %d owners, want exactly 1", p, owners)
		}
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, _ := NewRing([]string{"solo"})
	if got := r.OwnedPeerASCount("solo", 32); got != 32 {
		t.Errorf("single node owns %d/32 peer ASes", got)
	}
}
