// Package cluster scales InFilter past one collector: N infilterd
// instances run as one logical deployment. A rendezvous hash ring over
// (exporter, observation domain) decides which node owns each exporter's
// EIA training, and nodes periodically replicate EIA snapshots to their
// peers by shipping the existing versioned checkpoint format over TCP
// (see proto.go), folding remote state in through eia merge semantics.
// Replication is strictly off the verdict hot path: a peer being down
// costs retries and a gauge flip, never a blocked check.
package cluster

import (
	"fmt"
	"sort"
)

// Ring is a rendezvous (highest-random-weight) hash ring over the
// cluster's node IDs. Every node builds the same ring from the same
// membership list, so ownership decisions agree cluster-wide without
// coordination: Owner(key) is a pure function of (membership, key).
// Rendezvous hashing gives the consistent-hash property with no virtual
// node bookkeeping — when a node leaves, only the keys it owned move,
// and they scatter evenly over the survivors.
type Ring struct {
	nodes []string
}

// NewRing builds a ring over the given node IDs. IDs are deduplicated;
// at least one is required. Every node in the cluster must construct its
// ring from the same ID set (typically: its own advertised replication
// address plus its configured peers).
func NewRing(nodes []string) (*Ring, error) {
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	return &Ring{nodes: uniq}, nil
}

// Nodes returns the ring membership, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Size returns the number of nodes in the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// Owner returns the node that owns (exporter, domain): the node whose
// seeded hash of the key scores highest, ties broken by the
// lexicographically smallest node ID so the choice is total.
func (r *Ring) Owner(exporter string, domain uint32) string {
	best, bestScore := "", uint64(0)
	for _, n := range r.nodes {
		s := ringScore(n, exporter, domain)
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Owns reports whether node owns (exporter, domain).
func (r *Ring) Owns(node, exporter string, domain uint32) bool {
	return r.Owner(exporter, domain) == node
}

// peerASExporter is the exporter label of the testbed demultiplexing
// convention (one UDP port per peer AS): the daemon keys ownership of a
// peer AS's EIA training as (peerASExporter, uint32(peerAS)). Real
// multi-exporter deployments key by the exporter's address and
// observation domain instead; both go through the same Owner function.
const peerASExporter = "peer-as"

// OwnsPeerAS reports whether node owns the EIA training of the given
// peer AS under the testbed port-per-peer convention.
func (r *Ring) OwnsPeerAS(node string, peer uint16) bool {
	return r.Owns(node, peerASExporter, uint32(peer))
}

// OwnedPeerASCount counts how many of the peer ASes 1..n the node owns
// (the ring ownership gauge of a daemon serving n ports).
func (r *Ring) OwnedPeerASCount(node string, n int) int {
	owned := 0
	for p := 1; p <= n; p++ {
		if r.OwnsPeerAS(node, uint16(p)) {
			owned++
		}
	}
	return owned
}

// ringScore is the rendezvous weight of node for (exporter, domain):
// 64-bit FNV-1a over the three components with length framing between
// them, so ("ab","c") and ("a","bc") score differently.
func ringScore(node, exporter string, domain uint32) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(s string) {
		h ^= uint64(len(s))
		h *= prime64
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	mix(node)
	mix(exporter)
	for shift := 0; shift < 32; shift += 8 {
		h ^= uint64(byte(domain >> shift))
		h *= prime64
	}
	return h
}
