package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"time"

	"infilter/internal/eia"
)

// Defaults for Config.
const (
	// DefaultInterval is the replication period: how often each peer
	// receives a fresh snapshot of the local EIA state.
	DefaultInterval = 5 * time.Second
	// DefaultDialTimeout bounds one connection attempt to a peer.
	DefaultDialTimeout = 3 * time.Second
	// DefaultIOTimeout bounds one handshake, snapshot write or ack read.
	DefaultIOTimeout = 10 * time.Second
	// DefaultMaxBackoff caps the retry backoff after repeated failures to
	// reach a peer; the first retry waits one Interval and doubles from
	// there.
	DefaultMaxBackoff = time.Minute
)

// Config assembles a Node.
type Config struct {
	// NodeID is this node's identity on the ring and in hellos. It must
	// be the address peers dial it at (every node builds the ring from
	// its own NodeID plus its Peers list, so the sets must agree
	// cluster-wide). Defaults to Listen.
	NodeID string
	// Listen is the TCP address for inbound replication ("" disables the
	// receive side; the node then only pushes snapshots out).
	Listen string
	// Peers are the replication addresses of the other nodes. Each gets
	// a dedicated sender loop.
	Peers []string
	// Interval between replication rounds. Zero defaults to
	// DefaultInterval.
	Interval time.Duration
	// DialTimeout / IOTimeout bound the network operations of one round.
	// Zero applies the defaults.
	DialTimeout time.Duration
	IOTimeout   time.Duration
	// MaxBackoff caps the doubling retry backoff toward an unreachable
	// peer. Zero defaults to DefaultMaxBackoff.
	MaxBackoff time.Duration
	// EIA is the Config remote snapshots are decoded under (prefix rows
	// carry no tuning, so this only seeds the scratch Set).
	EIA eia.Config
}

func (c Config) withDefaults() Config {
	if c.NodeID == "" {
		c.NodeID = c.Listen
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = DefaultIOTimeout
	}
	if c.MaxBackoff < c.Interval {
		c.MaxBackoff = DefaultMaxBackoff
		if c.MaxBackoff < c.Interval {
			c.MaxBackoff = c.Interval
		}
	}
	return c
}

// peerState is one peer's sender-side bookkeeping. The sender goroutine
// owns conn; the mutex guards the status fields read by Status.
type peerState struct {
	addr string
	conn net.Conn // owned by the sender loop, nil when down

	mu          sync.Mutex
	up          bool
	rounds      uint64
	errors      uint64
	bytesSent   uint64
	lastError   string
	lastSuccess time.Time
	remote      mergeAck // last ack received from this peer
	hasRemote   bool
}

// PeerStatus is one peer's replication status as exposed on /cluster.
type PeerStatus struct {
	Addr        string    `json:"addr"`
	Up          bool      `json:"up"`
	Rounds      uint64    `json:"rounds"`
	Errors      uint64    `json:"errors"`
	BytesSent   uint64    `json:"bytes_sent"`
	LastError   string    `json:"last_error,omitempty"`
	LastSuccess time.Time `json:"last_success,omitzero"`
	// RemoteNode / RemotePrefixes echo the peer's last merge ack: its
	// node ID and its post-merge EIA prefix count.
	RemoteNode     string `json:"remote_node,omitempty"`
	RemotePrefixes int    `json:"remote_prefixes"`
}

// Status is the cluster view exposed on the admin /cluster endpoint:
// this node's identity and ring, per-peer replication status, and
// cluster-wide aggregates assembled from the last ack of every peer.
type Status struct {
	Node     string        `json:"node"`
	Listen   string        `json:"listen,omitempty"`
	Interval time.Duration `json:"interval_ns"`
	Ring     []string      `json:"ring"`

	// LocalPrefixes is this node's current EIA prefix count.
	LocalPrefixes int `json:"local_prefixes"`
	// RecvRounds / RecvErrors / MergedAdded / MergedRehomed summarize the
	// receive side (inbound snapshots folded into the local store).
	RecvRounds    uint64 `json:"recv_rounds"`
	RecvErrors    uint64 `json:"recv_errors"`
	MergedAdded   uint64 `json:"merged_added"`
	MergedRehomed uint64 `json:"merged_rehomed"`

	Peers []PeerStatus `json:"peers"`

	// Cluster aggregates the known state across the whole deployment:
	// nodes on the ring, peers currently reachable, and the per-node
	// prefix counts from the latest acks (this node included under its
	// own ID). TotalKnownPrefixes sums them — on a converged cluster it
	// is nodes × the common prefix count.
	Cluster ClusterAggregate `json:"cluster"`
}

// ClusterAggregate is the cluster-wide rollup inside Status.
type ClusterAggregate struct {
	Nodes              int            `json:"nodes"`
	PeersUp            int            `json:"peers_up"`
	PrefixesByNode     map[string]int `json:"prefixes_by_node"`
	TotalKnownPrefixes int            `json:"total_known_prefixes"`
	Converged          bool           `json:"converged"`
}

// Node runs one infilterd's share of the cluster: per-peer sender loops
// pushing the local EIA snapshot, and (with Listen set) an acceptor
// folding inbound snapshots into the local store. All networking is
// background work; the verdict path never waits on it.
type Node struct {
	cfg     Config
	ring    *Ring
	store   *eia.Store
	metrics *Metrics

	ln    net.Listener
	peers []*peerState

	mu     sync.Mutex // guards conns, closed
	conns  map[net.Conn]struct{}
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewNode validates cfg, builds the ring from NodeID plus Peers, and
// binds the replication listener (when configured). Start launches the
// background loops; a node that was never started may still be Closed.
func NewNode(cfg Config, store *eia.Store, m *Metrics) (*Node, error) {
	cfg = cfg.withDefaults()
	if store == nil {
		return nil, fmt.Errorf("cluster: nil EIA store")
	}
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: node needs a NodeID or Listen address")
	}
	ring, err := NewRing(append([]string{cfg.NodeID}, cfg.Peers...))
	if err != nil {
		return nil, err
	}
	if m == nil {
		m = unregisteredMetrics(cfg.Peers)
	}
	n := &Node{
		cfg:     cfg,
		ring:    ring,
		store:   store,
		metrics: m,
		conns:   make(map[net.Conn]struct{}),
		stop:    make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		n.peers = append(n.peers, &peerState{addr: p})
	}
	if cfg.Listen != "" {
		ln, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("cluster: listen %s: %w", cfg.Listen, err)
		}
		n.ln = ln
	}
	return n, nil
}

// NodeID returns this node's ring identity.
func (n *Node) NodeID() string { return n.cfg.NodeID }

// Ring returns the cluster's ownership ring.
func (n *Node) Ring() *Ring { return n.ring }

// Addr returns the bound replication listen address ("" when the
// receive side is disabled).
func (n *Node) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Start launches the acceptor and one sender loop per peer. Call at
// most once.
func (n *Node) Start() {
	if n.ln != nil {
		n.wg.Add(1)
		go n.acceptLoop()
	}
	for _, p := range n.peers {
		n.wg.Add(1)
		go n.senderLoop(p)
	}
}

// Close stops every background loop, closes the listener and all open
// connections, and waits for the goroutines to exit. Safe to call more
// than once.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return nil
	}
	n.closed = true
	close(n.stop)
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()

	var firstErr error
	if n.ln != nil {
		if err := n.ln.Close(); err != nil {
			firstErr = err
		}
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
	return firstErr
}

// track registers a connection for Close teardown; it reports false —
// and closes the connection — when the node is already closing.
func (n *Node) track(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		c.Close()
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrack(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
	c.Close()
}

// --- receive side -----------------------------------------------------

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !n.track(conn) {
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn handles one inbound replication connection: hello exchange,
// then a loop of snapshot frames, each decoded through the single EIA
// checkpoint codec, folded into the store under one snapshot swap, and
// acked with the merge outcome.
func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer n.untrack(conn)
	m := n.metrics

	conn.SetDeadline(time.Now().Add(n.cfg.IOTimeout))
	if _, err := readHello(conn); err != nil {
		m.RecvErrors.Inc()
		return
	}
	if err := writeHello(conn, n.cfg.NodeID); err != nil {
		m.RecvErrors.Inc()
		return
	}
	for {
		// Block indefinitely waiting for the next round's frame (the
		// sender idles between rounds), but once a frame starts, its body
		// and our ack must complete within the I/O timeout.
		conn.SetDeadline(time.Time{})
		payload, err := readFrame(conn)
		if err != nil {
			return // clean EOF between frames, a torn frame, or Close
		}
		conn.SetDeadline(time.Now().Add(n.cfg.IOTimeout))
		start := time.Now()
		remote, err := eia.DecodeCheckpoint(n.cfg.EIA, bytes.NewReader(payload))
		if err != nil {
			m.RecvErrors.Inc()
			return
		}
		added, rehomed := n.store.MergeSet(remote)
		m.MergeLatency.ObserveDuration(time.Since(start))
		m.RecvRounds.Inc()
		m.RecvBytes.Add(int64(len(payload)))
		m.MergedAdded.Add(int64(added))
		m.MergedRehomed.Add(int64(rehomed))
		if err := writeAck(conn, mergeAck{
			Prefixes: n.store.Len(),
			Added:    added,
			Rehomed:  rehomed,
			Node:     n.cfg.NodeID,
		}); err != nil {
			return
		}
	}
}

// --- send side --------------------------------------------------------

// senderLoop pushes the local snapshot to one peer every Interval,
// backing off exponentially (up to MaxBackoff) while the peer is down.
// The loop owns the connection: it dials lazily, reuses the connection
// across rounds, and drops it on any error.
func (n *Node) senderLoop(p *peerState) {
	defer n.wg.Done()
	defer func() {
		if p.conn != nil {
			n.untrack(p.conn)
			p.conn = nil
		}
	}()
	delay := n.cfg.Interval
	timer := time.NewTimer(delay)
	defer timer.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-timer.C:
		}
		if err := n.replicateOnce(p); err != nil {
			p.noteFailure(err)
			n.metrics.SendErrors.Inc()
			n.metrics.setPeerUp(p.addr, false)
			delay *= 2
			if delay > n.cfg.MaxBackoff {
				delay = n.cfg.MaxBackoff
			}
		} else {
			n.metrics.SendRounds.Inc()
			n.metrics.setPeerUp(p.addr, true)
			delay = n.cfg.Interval
		}
		timer.Reset(delay)
	}
}

// replicateOnce ships one snapshot to p and waits for its ack. Any
// error tears the connection down; the next round redials.
func (n *Node) replicateOnce(p *peerState) (err error) {
	if p.conn == nil {
		conn, derr := net.DialTimeout("tcp", p.addr, n.cfg.DialTimeout)
		if derr != nil {
			return derr
		}
		if !n.track(conn) {
			return fmt.Errorf("cluster: node closed")
		}
		conn.SetDeadline(time.Now().Add(n.cfg.IOTimeout))
		if herr := n.handshake(conn); herr != nil {
			n.untrack(conn)
			return herr
		}
		p.conn = conn
	}
	defer func() {
		if err != nil && p.conn != nil {
			n.untrack(p.conn)
			p.conn = nil
		}
	}()

	// Serialize one consistent snapshot; WriteCheckpoint reads the COW
	// store without blocking checks or the promotion writer.
	var buf bytes.Buffer
	if err := n.store.WriteCheckpoint(&buf); err != nil {
		return err
	}
	p.conn.SetDeadline(time.Now().Add(n.cfg.IOTimeout))
	if err := writeFrame(p.conn, buf.Bytes()); err != nil {
		return err
	}
	ack, err := readAck(p.conn)
	if err != nil {
		return err
	}
	p.noteSuccess(uint64(buf.Len()), ack)
	n.metrics.SendBytes.Add(int64(buf.Len()))
	return nil
}

// handshake runs the client side of the hello exchange.
func (n *Node) handshake(conn net.Conn) error {
	if err := writeHello(conn, n.cfg.NodeID); err != nil {
		return err
	}
	_, err := readHello(conn)
	return err
}

func (p *peerState) noteSuccess(payloadBytes uint64, ack mergeAck) {
	p.mu.Lock()
	p.up = true
	p.rounds++
	p.bytesSent += payloadBytes
	p.lastError = ""
	p.lastSuccess = time.Now()
	p.remote = ack
	p.hasRemote = true
	p.mu.Unlock()
}

func (p *peerState) noteFailure(err error) {
	p.mu.Lock()
	p.up = false
	p.errors++
	p.lastError = err.Error()
	p.mu.Unlock()
}

func (p *peerState) status() PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PeerStatus{
		Addr:        p.addr,
		Up:          p.up,
		Rounds:      p.rounds,
		Errors:      p.errors,
		BytesSent:   p.bytesSent,
		LastError:   p.lastError,
		LastSuccess: p.lastSuccess,
	}
	if p.hasRemote {
		st.RemoteNode = p.remote.Node
		st.RemotePrefixes = p.remote.Prefixes
	}
	return st
}

// Status snapshots the node's cluster view for the /cluster endpoint.
func (n *Node) Status() Status {
	local := n.store.Len()
	st := Status{
		Node:          n.cfg.NodeID,
		Listen:        n.Addr(),
		Interval:      n.cfg.Interval,
		Ring:          n.ring.Nodes(),
		LocalPrefixes: local,
		RecvRounds:    uint64(n.metrics.RecvRounds.Value()),
		RecvErrors:    uint64(n.metrics.RecvErrors.Value()),
		MergedAdded:   uint64(n.metrics.MergedAdded.Value()),
		MergedRehomed: uint64(n.metrics.MergedRehomed.Value()),
	}
	agg := ClusterAggregate{
		Nodes:          n.ring.Size(),
		PrefixesByNode: map[string]int{n.cfg.NodeID: local},
		Converged:      true,
	}
	for _, p := range n.peers {
		ps := p.status()
		st.Peers = append(st.Peers, ps)
		if ps.Up {
			agg.PeersUp++
		}
		if ps.RemoteNode != "" {
			agg.PrefixesByNode[ps.RemoteNode] = ps.RemotePrefixes
		} else {
			agg.PrefixesByNode[ps.Addr] = ps.RemotePrefixes
		}
		if !ps.Up || ps.RemotePrefixes != local {
			agg.Converged = false
		}
	}
	for _, c := range agg.PrefixesByNode {
		agg.TotalKnownPrefixes += c
	}
	st.Cluster = agg
	return st
}
