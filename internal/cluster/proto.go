package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Wire protocol. Replication deliberately defines no new serialization
// for EIA state: the payload of every snapshot frame is exactly the
// bytes eia.(*Store).WriteCheckpoint produces (the versioned checkpoint
// v2 text format), decoded on the far side by eia.DecodeCheckpoint — the
// same single codec pair the on-disk warm-restart path uses. The wire
// layer adds only a hello handshake and length framing:
//
//	hello (each side sends one, client first):
//	    magic "IFCR" | uint16 protocol version (1) | uint16 len | node ID
//
//	then, repeatedly, client → server:
//	    uint32 payload length | payload (checkpoint v2 bytes)
//	and server → client, after folding the snapshot in:
//	    uint32 length | JSON mergeAck
//
// All integers are big-endian. A malformed hello, an unknown protocol
// version or an oversized frame aborts the connection; the sender
// reconnects with backoff on its next round.
const (
	protoMagic   = "IFCR"
	protoVersion = 1

	// maxFrameBytes bounds a snapshot or ack frame. EIA checkpoints are
	// ~30 bytes per prefix, so 64 MiB covers ~2M prefixes — far past any
	// deployment this codebase targets — while keeping a garbage length
	// word from allocating unbounded memory.
	maxFrameBytes = 64 << 20
	// maxNodeIDBytes bounds the hello's node ID field.
	maxNodeIDBytes = 256
)

// mergeAck is the receiver's reply to one snapshot frame: what the merge
// changed and how much state the receiver now holds. The sender uses it
// to expose per-peer and cluster-aggregated state on /cluster without a
// second RPC.
type mergeAck struct {
	// Prefixes is the receiver's post-merge EIA prefix count.
	Prefixes int `json:"prefixes"`
	// Added and Rehomed report what this snapshot changed on the receiver.
	Added   int `json:"added"`
	Rehomed int `json:"rehomed"`
	// Node is the receiver's node ID (cross-checks the dialed peer).
	Node string `json:"node"`
}

// writeHello sends one hello message.
func writeHello(w io.Writer, nodeID string) error {
	if len(nodeID) > maxNodeIDBytes {
		return fmt.Errorf("cluster: node ID %q too long", nodeID)
	}
	buf := make([]byte, 0, len(protoMagic)+4+len(nodeID))
	buf = append(buf, protoMagic...)
	buf = binary.BigEndian.AppendUint16(buf, protoVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(nodeID)))
	buf = append(buf, nodeID...)
	_, err := w.Write(buf)
	return err
}

// readHello validates the peer's hello and returns its node ID.
func readHello(r io.Reader) (string, error) {
	var head [len(protoMagic) + 4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return "", fmt.Errorf("cluster: read hello: %w", err)
	}
	if string(head[:4]) != protoMagic {
		return "", fmt.Errorf("cluster: bad hello magic %q", head[:4])
	}
	if v := binary.BigEndian.Uint16(head[4:6]); v != protoVersion {
		return "", fmt.Errorf("cluster: protocol version %d, want %d", v, protoVersion)
	}
	n := int(binary.BigEndian.Uint16(head[6:8]))
	if n > maxNodeIDBytes {
		return "", fmt.Errorf("cluster: hello node ID length %d exceeds %d", n, maxNodeIDBytes)
	}
	id := make([]byte, n)
	if _, err := io.ReadFull(r, id); err != nil {
		return "", fmt.Errorf("cluster: read hello node ID: %w", err)
	}
	return string(id), nil
}

// writeFrame sends one length-framed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("cluster: frame of %d bytes exceeds %d", len(payload), maxFrameBytes)
	}
	var head [4]byte
	binary.BigEndian.PutUint32(head[:], uint32(len(payload)))
	if _, err := w.Write(head[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-framed payload. io.EOF before the length
// word is returned as-is (clean shutdown between frames); everything
// else is wrapped.
func readFrame(r io.Reader) ([]byte, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("cluster: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(head[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("cluster: frame of %d bytes exceeds %d", n, maxFrameBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("cluster: read frame body: %w", err)
	}
	return payload, nil
}

// writeAck sends a mergeAck as a JSON frame.
func writeAck(w io.Writer, ack mergeAck) error {
	b, err := json.Marshal(ack)
	if err != nil {
		return err
	}
	return writeFrame(w, b)
}

// readAck reads and decodes a mergeAck frame.
func readAck(r io.Reader) (mergeAck, error) {
	var ack mergeAck
	b, err := readFrame(r)
	if err != nil {
		return ack, err
	}
	if err := json.Unmarshal(b, &ack); err != nil {
		return ack, fmt.Errorf("cluster: decode ack: %w", err)
	}
	return ack, nil
}
