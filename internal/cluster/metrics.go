package cluster

import (
	"infilter/internal/telemetry"
)

// Metrics are the cluster runtime series. Directions are from this
// node's point of view: "send" is the per-peer replication loops pushing
// local snapshots out, "recv" is inbound snapshots folded into the local
// store. Replication never touches the verdict hot path, so all of these
// move on replication cadence, not flow cadence.
type Metrics struct {
	// SendRounds / RecvRounds count completed replication rounds (one
	// snapshot shipped and acked, resp. one snapshot received and merged).
	SendRounds *telemetry.Counter
	RecvRounds *telemetry.Counter
	// SendErrors / RecvErrors count failed rounds (dial, frame or
	// handshake errors; the sender retries with backoff).
	SendErrors *telemetry.Counter
	RecvErrors *telemetry.Counter
	// SendBytes / RecvBytes count snapshot payload bytes over the wire.
	SendBytes *telemetry.Counter
	RecvBytes *telemetry.Counter
	// MergeLatency observes the cost of folding one received snapshot
	// into the store (decode + MergeSet + snapshot publication).
	MergeLatency *telemetry.Histogram
	// MergedAdded / MergedRehomed count prefixes the receive side learned
	// from peers, split by whether they were new or re-homed conflicts.
	MergedAdded   *telemetry.Counter
	MergedRehomed *telemetry.Counter
	// RingOwned is how many of the daemon's peer ASes this node owns on
	// the ring (set once at startup; membership is static per process).
	RingOwned *telemetry.Gauge

	peerUp map[string]*telemetry.Gauge
}

// NewMetrics registers the cluster series on r, with one peer-up gauge
// per configured peer address.
func NewMetrics(r *telemetry.Registry, peers []string) *Metrics {
	m := &Metrics{
		SendRounds: r.Counter("infilter_cluster_replication_rounds_total",
			"Completed replication rounds, by direction.",
			telemetry.Label{Key: "direction", Value: "send"}),
		RecvRounds: r.Counter("infilter_cluster_replication_rounds_total",
			"Completed replication rounds, by direction.",
			telemetry.Label{Key: "direction", Value: "recv"}),
		SendErrors: r.Counter("infilter_cluster_replication_errors_total",
			"Failed replication rounds, by direction.",
			telemetry.Label{Key: "direction", Value: "send"}),
		RecvErrors: r.Counter("infilter_cluster_replication_errors_total",
			"Failed replication rounds, by direction.",
			telemetry.Label{Key: "direction", Value: "recv"}),
		SendBytes: r.Counter("infilter_cluster_replication_bytes_total",
			"Snapshot payload bytes over the replication wire, by direction.",
			telemetry.Label{Key: "direction", Value: "send"}),
		RecvBytes: r.Counter("infilter_cluster_replication_bytes_total",
			"Snapshot payload bytes over the replication wire, by direction.",
			telemetry.Label{Key: "direction", Value: "recv"}),
		MergeLatency: r.Histogram("infilter_cluster_merge_seconds",
			"Latency of folding one received snapshot into the EIA store.",
			telemetry.LatencyBuckets(), telemetry.UnitSeconds),
		MergedAdded: r.Counter("infilter_cluster_merged_prefixes_total",
			"EIA prefixes learned from peer snapshots, by merge outcome.",
			telemetry.Label{Key: "kind", Value: "added"}),
		MergedRehomed: r.Counter("infilter_cluster_merged_prefixes_total",
			"EIA prefixes learned from peer snapshots, by merge outcome.",
			telemetry.Label{Key: "kind", Value: "rehomed"}),
		RingOwned: r.Gauge("infilter_cluster_ring_owned",
			"Peer ASes whose EIA training this node owns on the ring."),
		peerUp: make(map[string]*telemetry.Gauge, len(peers)),
	}
	for _, p := range peers {
		m.peerUp[p] = r.Gauge("infilter_cluster_peer_up",
			"1 while the last replication round to the peer succeeded, 0 after a failure.",
			telemetry.Label{Key: "peer", Value: p})
	}
	return m
}

// unregisteredMetrics backs a node built without a registry (tests).
func unregisteredMetrics(peers []string) *Metrics {
	m := &Metrics{
		SendRounds:    telemetry.NewCounter(),
		RecvRounds:    telemetry.NewCounter(),
		SendErrors:    telemetry.NewCounter(),
		RecvErrors:    telemetry.NewCounter(),
		SendBytes:     telemetry.NewCounter(),
		RecvBytes:     telemetry.NewCounter(),
		MergeLatency:  telemetry.NewHistogram(telemetry.LatencyBuckets()),
		MergedAdded:   telemetry.NewCounter(),
		MergedRehomed: telemetry.NewCounter(),
		RingOwned:     telemetry.NewGauge(),
		peerUp:        make(map[string]*telemetry.Gauge, len(peers)),
	}
	for _, p := range peers {
		m.peerUp[p] = telemetry.NewGauge()
	}
	return m
}

// setPeerUp flips the peer's up gauge.
func (m *Metrics) setPeerUp(peer string, up bool) {
	g, ok := m.peerUp[peer]
	if !ok {
		return
	}
	if up {
		g.Set(1)
	} else {
		g.Set(0)
	}
}
