// Package eia implements the Expected source IP Address sets at the heart
// of Basic InFilter (paper §3, §5.1.3). An EIA set maps each peer AS to the
// source address ranges whose traffic is expected to enter the target
// network through it. Lookups are longest-prefix, so a promoted /24 or /32
// learned after a route change overrides the broad training-time block.
package eia

import (
	"fmt"
	"sort"

	"infilter/internal/netaddr"
)

// PeerAS identifies one peering autonomous system / border router ingress.
type PeerAS uint16

// Verdict classifies one source-address check (paper §5.2 normal
// processing phase case analysis).
type Verdict int

// Verdicts.
const (
	// Match: the source's expected peer AS is the observed one (case b —
	// legal flow).
	Match Verdict = iota + 1
	// WrongPeer: the source belongs to a different peer AS's EIA set
	// (case a — possible spoofing or route change).
	WrongPeer
	// Unknown: the source is in no EIA set (case a — possible spoofing).
	Unknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Match:
		return "match"
	case WrongPeer:
		return "wrong-peer"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Config tunes the EIA set behavior.
type Config struct {
	// PromoteThreshold is how many flows from the same source must be seen
	// (and pass deeper analysis) at an unexpected peer AS before the source
	// is added to that peer's EIA set (§5.2(a)). Zero defaults to 20 — it
	// must exceed the Scan Analysis thresholds, or a scan whose flows slip
	// past NNS gets its spoofed source promoted before the scan counters
	// can fire.
	PromoteThreshold int
	// PromoteMaskBits is the prefix length learned on v4 promotion. Zero
	// defaults to 24 (the subnet granularity used throughout §3.1).
	PromoteMaskBits int
	// PromoteMaskBitsV6 is the prefix length learned when the promoted
	// source is IPv6. Zero defaults to 48, the customer-site granularity
	// that plays the role a /24 does in v4.
	PromoteMaskBitsV6 int
	// BloomBitsPerEntry, when positive, enables the probabilistic fast
	// tier on Store: per-peer blocked Bloom filters (plus one global
	// filter) published inside each snapshot, sized at this many bits per
	// trie prefix. The tier short-circuits only provably-Unknown checks —
	// Bloom positives always confirm against the exact trie — so verdicts
	// are identical with the tier on or off; the knob trades memory for
	// fewer fallback walks (10 bits/entry ≈ 1% false-positive rate).
	// Zero (the default) disables the tier. Set-level checks (Set.Check)
	// never use it.
	BloomBitsPerEntry int
	// BloomHashes fixes the probe count per Bloom query. Zero (the
	// default) derives the information-optimal count from
	// BloomBitsPerEntry.
	BloomHashes int
}

// Defaults for Config.
const (
	DefaultPromoteThreshold  = 20
	DefaultPromoteMaskBits   = 24
	DefaultPromoteMaskBitsV6 = 48
)

func (c Config) withDefaults() Config {
	if c.PromoteThreshold <= 0 {
		c.PromoteThreshold = DefaultPromoteThreshold
	}
	if c.PromoteMaskBits <= 0 {
		c.PromoteMaskBits = DefaultPromoteMaskBits
	}
	if c.PromoteMaskBitsV6 <= 0 {
		c.PromoteMaskBitsV6 = DefaultPromoteMaskBitsV6
	}
	return c
}

// promoteBits returns the promotion prefix length for fam.
func (c Config) promoteBits(fam netaddr.Family) int {
	if fam == netaddr.FamilyV6 {
		return c.PromoteMaskBitsV6
	}
	return c.PromoteMaskBits
}

type pendingKey struct {
	peer PeerAS
	pfx  netaddr.Prefix
}

// Set holds the per-peer EIA sets with a longest-prefix global index.
// It is not safe for concurrent use.
type Set struct {
	cfg     Config
	index   *netaddr.PrefixTrie[PeerAS]
	perPeer map[PeerAS]int // prefixes per peer, for introspection
	pending map[pendingKey]int
}

// NewSet returns an empty EIA set.
func NewSet(cfg Config) *Set {
	return &Set{
		cfg:     cfg.withDefaults(),
		index:   netaddr.NewPrefixTrie[PeerAS](),
		perPeer: make(map[PeerAS]int),
		pending: make(map[pendingKey]int),
	}
}

// AddPrefix records that sources inside p are expected at peer. Inserting
// the same prefix for a different peer re-homes it (route change handling).
func (s *Set) AddPrefix(peer PeerAS, p netaddr.Prefix) {
	if prev, ok := s.index.Get(p); ok {
		if prev == peer {
			return
		}
		s.perPeer[prev]--
	}
	s.index.Insert(p, peer)
	s.perPeer[peer]++
}

// ExpectedPeer returns the peer AS whose EIA set contains src, by
// longest-prefix match.
func (s *Set) ExpectedPeer(src netaddr.Addr) (PeerAS, bool) {
	return s.index.Lookup(src)
}

// Check classifies a flow's source address observed at peer.
func (s *Set) Check(peer PeerAS, src netaddr.Addr) Verdict {
	expected, ok := s.index.Lookup(src)
	switch {
	case !ok:
		return Unknown
	case expected == peer:
		return Match
	default:
		return WrongPeer
	}
}

// RecordLegal notes that a flow from src observed at peer passed the
// deeper (scan + NNS) analysis despite failing the EIA check. After the
// promotion threshold, the source's subnet is added to peer's EIA set so
// the route change stops raising suspicions. Reports whether promotion
// happened on this call.
func (s *Set) RecordLegal(peer PeerAS, src netaddr.Addr) bool {
	pfx := netaddr.MustPrefix(src, s.cfg.promoteBits(src.Family()))
	k := pendingKey{peer: peer, pfx: pfx}
	s.pending[k]++
	if s.pending[k] >= s.cfg.PromoteThreshold {
		delete(s.pending, k)
		s.AddPrefix(peer, pfx)
		return true
	}
	return false
}

// PendingCount exposes the current promotion progress for a source subnet
// at a peer, for tests and monitoring.
func (s *Set) PendingCount(peer PeerAS, src netaddr.Addr) int {
	return s.pending[pendingKey{peer: peer, pfx: netaddr.MustPrefix(src, s.cfg.promoteBits(src.Family()))}]
}

// Len returns the total number of prefixes across all peers.
func (s *Set) Len() int { return s.index.Len() }

// PeerPrefixCount returns how many prefixes map to peer.
func (s *Set) PeerPrefixCount(peer PeerAS) int { return s.perPeer[peer] }

// Peers returns the peer ASes with at least one prefix, ascending.
func (s *Set) Peers() []PeerAS { return peersOf(s.perPeer) }

func peersOf(perPeer map[PeerAS]int) []PeerAS {
	out := make([]PeerAS, 0, len(perPeer))
	for p, n := range perPeer {
		if n > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TrainingSource is one (source address, ingress peer) observation used to
// initialize EIA sets from live traffic (§5.1.3(a)).
type TrainingSource struct {
	Peer PeerAS
	Src  netaddr.Addr
}

// Train initializes EIA sets from observed traffic: each source address is
// aggregated and added to the EIA set of the peer AS it was seen at.
// maskBits applies to v4 sources (<= 0 defaults to the config's promote
// mask); v6 sources always aggregate at the config's v6 promote mask,
// since a v4 subnet length is meaningless at 128-bit width.
func (s *Set) Train(obs []TrainingSource, maskBits int) {
	if maskBits <= 0 {
		maskBits = s.cfg.PromoteMaskBits
	}
	for _, o := range obs {
		bits := maskBits
		if o.Src.Family() == netaddr.FamilyV6 {
			bits = s.cfg.PromoteMaskBitsV6
		}
		s.AddPrefix(o.Peer, netaddr.MustPrefix(o.Src, bits))
	}
}
