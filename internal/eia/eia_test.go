package eia

import (
	"testing"

	"infilter/internal/blocks"
	"infilter/internal/netaddr"
)

func TestCheckVerdicts(t *testing.T) {
	s := NewSet(Config{})
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	s.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))

	tests := []struct {
		peer PeerAS
		src  string
		want Verdict
	}{
		{1, "61.5.5.5", Match},
		{2, "70.1.2.3", Match},
		{2, "61.5.5.5", WrongPeer},
		{1, "70.1.2.3", WrongPeer},
		{1, "9.9.9.9", Unknown},
	}
	for _, tt := range tests {
		if got := s.Check(tt.peer, netaddr.MustParseAddr(tt.src)); got != tt.want {
			t.Errorf("Check(%d, %s) = %v, want %v", tt.peer, tt.src, got, tt.want)
		}
	}
}

func TestVerdictString(t *testing.T) {
	if Match.String() != "match" || WrongPeer.String() != "wrong-peer" || Unknown.String() != "unknown" {
		t.Error("verdict names wrong")
	}
	if Verdict(9).String() != "verdict(9)" {
		t.Errorf("unknown verdict = %q", Verdict(9).String())
	}
}

func TestExpectedPeerLongestPrefixWins(t *testing.T) {
	s := NewSet(Config{})
	s.AddPrefix(1, netaddr.MustParsePrefix("4.0.0.0/8"))
	s.AddPrefix(2, netaddr.MustParsePrefix("4.2.101.0/24"))
	// The §3.2 worked example: 4.2.101.20 routes via the /24's peer.
	if p, ok := s.ExpectedPeer(netaddr.MustParseAddr("4.2.101.20")); !ok || p != 2 {
		t.Errorf("ExpectedPeer = %d, %v; want 2", p, ok)
	}
	if p, ok := s.ExpectedPeer(netaddr.MustParseAddr("4.9.9.9")); !ok || p != 1 {
		t.Errorf("ExpectedPeer = %d, %v; want 1", p, ok)
	}
}

func TestAddPrefixRehoming(t *testing.T) {
	s := NewSet(Config{})
	p := netaddr.MustParsePrefix("61.0.0.0/11")
	s.AddPrefix(1, p)
	if s.PeerPrefixCount(1) != 1 {
		t.Fatalf("peer 1 count = %d", s.PeerPrefixCount(1))
	}
	s.AddPrefix(2, p) // route change: same block now enters via peer 2
	if got := s.Check(2, netaddr.MustParseAddr("61.1.1.1")); got != Match {
		t.Errorf("after rehoming Check = %v, want Match", got)
	}
	if s.PeerPrefixCount(1) != 0 || s.PeerPrefixCount(2) != 1 {
		t.Errorf("counts after rehome: peer1=%d peer2=%d", s.PeerPrefixCount(1), s.PeerPrefixCount(2))
	}
	// Re-adding same mapping is a no-op.
	s.AddPrefix(2, p)
	if s.Len() != 1 || s.PeerPrefixCount(2) != 1 {
		t.Errorf("idempotent add broke counts: len=%d", s.Len())
	}
}

func TestPromotionAfterThreshold(t *testing.T) {
	s := NewSet(Config{PromoteThreshold: 3, PromoteMaskBits: 24})
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	src := netaddr.MustParseAddr("61.10.1.7")

	// Route change: traffic from 61.40.1/24 now arrives at peer 2.
	if s.Check(2, src) != WrongPeer {
		t.Fatal("precondition: expected WrongPeer")
	}
	if s.RecordLegal(2, src) {
		t.Error("promoted after 1 flow, threshold 3")
	}
	if s.PendingCount(2, src) != 1 {
		t.Errorf("pending = %d", s.PendingCount(2, src))
	}
	if s.RecordLegal(2, src) {
		t.Error("promoted after 2 flows")
	}
	if !s.RecordLegal(2, src) {
		t.Error("not promoted after 3 flows")
	}
	if s.PendingCount(2, src) != 0 {
		t.Errorf("pending not cleared: %d", s.PendingCount(2, src))
	}
	// Now the whole /24 matches at peer 2; the rest of the /11 still
	// matches at peer 1.
	if got := s.Check(2, netaddr.MustParseAddr("61.10.1.200")); got != Match {
		t.Errorf("promoted subnet Check = %v", got)
	}
	if got := s.Check(1, netaddr.MustParseAddr("61.20.0.1")); got != Match {
		t.Errorf("rest of block Check = %v", got)
	}
}

func TestPromotionCountsPerPeerAndSubnet(t *testing.T) {
	s := NewSet(Config{PromoteThreshold: 2})
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	a := netaddr.MustParseAddr("61.10.1.1")
	b := netaddr.MustParseAddr("61.22.1.1") // different /24
	s.RecordLegal(2, a)
	if s.RecordLegal(2, b) {
		t.Error("counts leaked across subnets")
	}
	if s.RecordLegal(3, a) {
		t.Error("counts leaked across peers")
	}
	if !s.RecordLegal(2, a) {
		t.Error("same subnet+peer should promote at threshold 2")
	}
}

func TestTrainBuildsSets(t *testing.T) {
	s := NewSet(Config{})
	obs := []TrainingSource{
		{Peer: 1, Src: netaddr.MustParseAddr("61.1.2.3")},
		{Peer: 1, Src: netaddr.MustParseAddr("61.1.2.99")}, // same /24
		{Peer: 2, Src: netaddr.MustParseAddr("70.4.5.6")},
	}
	s.Train(obs, 24)
	if s.Len() != 2 {
		t.Errorf("trained %d prefixes, want 2", s.Len())
	}
	if got := s.Check(1, netaddr.MustParseAddr("61.1.2.200")); got != Match {
		t.Errorf("Check in trained /24 = %v", got)
	}
	if got := s.Check(1, netaddr.MustParseAddr("61.9.9.9")); got != Unknown {
		t.Errorf("Check outside trained subnets = %v", got)
	}
	peers := s.Peers()
	if len(peers) != 2 || peers[0] != 1 || peers[1] != 2 {
		t.Errorf("Peers() = %v", peers)
	}
}

func TestTrainDefaultMask(t *testing.T) {
	s := NewSet(Config{PromoteMaskBits: 16})
	s.Train([]TrainingSource{{Peer: 1, Src: netaddr.MustParseAddr("61.1.2.3")}}, 0)
	if got := s.Check(1, netaddr.MustParseAddr("61.1.200.200")); got != Match {
		t.Errorf("default mask not honored: %v", got)
	}
}

// TestTable3Preload reproduces the testbed EIA configuration: peer AS i
// holds the i-th hundred of the 1000 experiment sub-blocks.
func TestTable3Preload(t *testing.T) {
	s := NewSet(Config{})
	for as := 1; as <= blocks.DefaultSources; as++ {
		set, err := blocks.EIAAllocation(as)
		if err != nil {
			t.Fatal(err)
		}
		for _, sb := range set {
			s.AddPrefix(PeerAS(as), sb.Prefix())
		}
	}
	if s.Len() != blocks.NumUsedSubBlocks {
		t.Fatalf("preloaded %d prefixes", s.Len())
	}
	// 1a = 3.0.0.0/11 belongs to peer AS 1; 113e (index 900) to AS 10.
	if got := s.Check(1, netaddr.MustParseAddr("3.1.2.3")); got != Match {
		t.Errorf("3.1.2.3 at AS1 = %v", got)
	}
	sb := blocks.MustParseNotation("113e")
	if got := s.Check(10, sb.Prefix().First()); got != Match {
		t.Errorf("113e at AS10 = %v", got)
	}
	if got := s.Check(4, netaddr.MustParseAddr("3.1.2.3")); got != WrongPeer {
		t.Errorf("3.1.2.3 at AS4 = %v", got)
	}
	// 205/8 onward was not allocated to any source.
	if got := s.Check(1, netaddr.MustParseAddr("205.1.1.1")); got != Unknown {
		t.Errorf("205.1.1.1 = %v", got)
	}
}
