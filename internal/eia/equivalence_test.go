package eia

import (
	"bytes"
	"math/rand"
	"testing"

	"infilter/internal/netaddr"
)

// refV4Entry / refV4Set are an independent re-implementation of the
// pre-dual-stack engine: prefixes held as (base, bits) uint32 pairs and
// looked up by linear longest-prefix scan, exactly the semantics the
// original uint32-keyed trie had. The dual-stack refactor must not
// perturb v4 verdicts, so the verdict stream the family-generic Store
// produces over a v4-only trace has to be byte-identical to this
// reference. scripts/check.sh and the CI race job both run this test
// under the race detector alongside the dual-stack e2e.
type refV4Entry struct {
	base uint32
	bits int
	peer PeerAS
}

type refV4Set []refV4Entry

func (s refV4Set) check(peer PeerAS, src uint32) Verdict {
	best := -1
	var owner PeerAS
	for _, e := range s {
		mask := ^uint32(0) << (32 - e.bits)
		if src&mask == e.base && e.bits > best {
			best = e.bits
			owner = e.peer
		}
	}
	switch {
	case best < 0:
		return Unknown
	case owner == peer:
		return Match
	default:
		return WrongPeer
	}
}

func TestV4VerdictStreamEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	set := NewSet(Config{})
	var ref refV4Set
	seen := make(map[refV4Entry]int) // keyed base+bits, value index in ref
	for len(ref) < 48 {
		bits := 8 + rng.Intn(17) // /8 .. /24
		base := rng.Uint32() & (^uint32(0) << (32 - bits))
		peer := PeerAS(1 + rng.Intn(8))
		key := refV4Entry{base: base, bits: bits}
		pfx := netaddr.PrefixFrom4(netaddr.IPv4(base), bits)
		set.AddPrefix(peer, pfx)
		if i, dup := seen[key]; dup {
			ref[i].peer = peer // AddPrefix overwrote; mirror it
			continue
		}
		seen[key] = len(ref)
		ref = append(ref, refV4Entry{base: base, bits: bits, peer: peer})
	}
	store := NewStore(set)

	const n = 20000
	peers := make([]PeerAS, n)
	srcs := make([]netaddr.Addr, n)
	raw := make([]uint32, n)
	for i := 0; i < n; i++ {
		peers[i] = PeerAS(1 + rng.Intn(8))
		var v uint32
		if i%2 == 0 {
			// Draw from an inserted prefix so Match and WrongPeer appear.
			e := ref[rng.Intn(len(ref))]
			v = e.base | (rng.Uint32() &^ (^uint32(0) << (32 - e.bits)))
		} else {
			v = rng.Uint32()
		}
		raw[i] = v
		srcs[i] = netaddr.IPv4(v).Addr()
	}

	got := make([]Verdict, n)
	store.CheckBatch(peers, srcs, got)

	gotStream := make([]byte, n)
	wantStream := make([]byte, n)
	counts := map[Verdict]int{}
	for i := 0; i < n; i++ {
		gotStream[i] = byte(got[i])
		wantStream[i] = byte(ref.check(peers[i], raw[i]))
		counts[got[i]]++
	}
	if !bytes.Equal(gotStream, wantStream) {
		for i := range gotStream {
			if gotStream[i] != wantStream[i] {
				t.Fatalf("verdict stream diverges at %d: src %v peer %d: got %v, want %v",
					i, srcs[i], peers[i], got[i], Verdict(wantStream[i]))
			}
		}
	}
	for _, v := range []Verdict{Match, WrongPeer, Unknown} {
		if counts[v] == 0 {
			t.Errorf("verdict %v never produced; stream not representative", v)
		}
	}

	// The scalar path must agree with the batch path record by record.
	for i := 0; i < n; i += 97 {
		if v := store.Check(peers[i], srcs[i]); v != got[i] {
			t.Errorf("scalar Check(%d, %v) = %v, batch said %v", peers[i], srcs[i], v, got[i])
		}
	}
}
