package eia

import (
	"bytes"
	"math/rand"
	"testing"

	"infilter/internal/netaddr"
	"infilter/internal/telemetry"
)

// bloomCfg is the tier-enabled config the tests in this file exercise.
var bloomCfg = Config{BloomBitsPerEntry: 10}

// v4In returns a v4 host address inside a v4 prefix with low bits set.
func v4In(p netaddr.Prefix, low uint32) netaddr.Addr {
	v4, _ := p.Addr().V4()
	return (v4 | netaddr.IPv4(low)).Addr()
}

// trainRandom loads n random /24 prefixes spread over nPeers into a
// fresh Set built with cfg and returns it with the prefixes used.
func trainRandom(rng *rand.Rand, cfg Config, n, nPeers int) (*Set, []Assignment) {
	set := NewSet(cfg)
	assigns := make([]Assignment, 0, n)
	for i := 0; i < n; i++ {
		pfx := netaddr.PrefixFrom4(netaddr.IPv4(rng.Uint32()), 24)
		peer := PeerAS(rng.Intn(nPeers))
		set.AddPrefix(peer, pfx)
		assigns = append(assigns, Assignment{Peer: peer, Prefix: pfx})
	}
	return set, assigns
}

// TestBloomDisabledByDefault: the zero-value Config publishes snapshots
// with no tier, so library users opt in explicitly.
func TestBloomDisabledByDefault(t *testing.T) {
	st := NewStore(NewSet(Config{}))
	if st.snap.Load().tier != nil {
		t.Fatal("zero-value Config produced a Bloom tier")
	}
	st = NewStore(NewSet(bloomCfg))
	if st.snap.Load().tier == nil {
		t.Fatal("BloomBitsPerEntry > 0 did not produce a Bloom tier")
	}
}

// TestBloomVerdictEquivalence is the tier's contract: for a shared
// randomized mutation-and-check schedule — training, re-homes,
// promotions via RecordLegal, probes mixing known sources, near-misses
// and random addresses — a tier-enabled store must emit exactly the
// verdicts of a tier-free one, across Check, CheckBatch and
// CheckBatchPeer. Run at a deliberately undersized 2 bits/entry too, so
// heavy false-positive pressure exercises the fallback path hard.
func TestBloomVerdictEquivalence(t *testing.T) {
	for _, bits := range []int{2, 10} {
		rng := rand.New(rand.NewSource(int64(31 + bits)))
		base := Config{PromoteThreshold: 3, BloomBitsPerEntry: bits}
		exactCfg := base
		exactCfg.BloomBitsPerEntry = 0

		setA, assigns := trainRandom(rng, base, 400, 6)
		setB := NewSet(exactCfg)
		for _, a := range assigns {
			setB.AddPrefix(a.Peer, a.Prefix)
		}
		probed, exact := NewStore(setA), NewStore(setB)

		const nPeers = 6
		srcOf := func() netaddr.Addr {
			switch rng.Intn(3) {
			case 0: // inside a trained prefix
				a := assigns[rng.Intn(len(assigns))]
				return v4In(a.Prefix, uint32(rng.Intn(256)))
			case 1: // adjacent /24 (near-miss)
				a := assigns[rng.Intn(len(assigns))]
				v4, _ := a.Prefix.Addr().V4()
				return (v4 ^ (1 << 8) | netaddr.IPv4(rng.Intn(256))).Addr()
			default: // anywhere
				return netaddr.IPv4(rng.Uint32()).Addr()
			}
		}

		for round := 0; round < 200; round++ {
			switch rng.Intn(4) {
			case 0: // re-home an existing prefix
				a := assigns[rng.Intn(len(assigns))]
				np := PeerAS(rng.Intn(nPeers))
				probed.AddPrefix(np, a.Prefix)
				exact.AddPrefix(np, a.Prefix)
			case 1: // drive a source toward promotion on both stores
				peer, src := PeerAS(rng.Intn(nPeers)), srcOf()
				for i := 0; i < 3; i++ {
					if probed.RecordLegal(peer, src) != exact.RecordLegal(peer, src) {
						t.Fatalf("bits=%d round %d: promotion outcomes diverged", bits, round)
					}
				}
			case 2: // fresh prefix batch
				batch := []Assignment{
					{Peer: PeerAS(rng.Intn(nPeers)), Prefix: netaddr.PrefixFrom4(netaddr.IPv4(rng.Uint32()), 16)},
					{Peer: PeerAS(rng.Intn(nPeers)), Prefix: netaddr.PrefixFrom4(netaddr.IPv4(rng.Uint32()), 28)},
				}
				probed.AddPrefixes(batch)
				exact.AddPrefixes(batch)
				assigns = append(assigns, batch...)
			}

			peers := make([]PeerAS, 32)
			srcs := make([]netaddr.Addr, 32)
			gotB := make([]Verdict, 32)
			wantB := make([]Verdict, 32)
			for i := range srcs {
				peers[i], srcs[i] = PeerAS(rng.Intn(nPeers)), srcOf()
				if got, want := probed.Check(peers[i], srcs[i]), exact.Check(peers[i], srcs[i]); got != want {
					t.Fatalf("bits=%d round %d: Check(%d, %v) = %v, exact store says %v",
						bits, round, peers[i], srcs[i], got, want)
				}
			}
			probed.CheckBatch(peers, srcs, gotB)
			exact.CheckBatch(peers, srcs, wantB)
			for i := range gotB {
				if gotB[i] != wantB[i] {
					t.Fatalf("bits=%d round %d: CheckBatch[%d] = %v, want %v", bits, round, i, gotB[i], wantB[i])
				}
			}
			probed.CheckBatchPeer(peers[0], srcs, gotB)
			exact.CheckBatchPeer(peers[0], srcs, wantB)
			for i := range gotB {
				if gotB[i] != wantB[i] {
					t.Fatalf("bits=%d round %d: CheckBatchPeer[%d] = %v, want %v", bits, round, i, gotB[i], wantB[i])
				}
			}
		}

		// The two stores must have converged to identical serialized state.
		var a, b bytes.Buffer
		if _, err := probed.WriteTo(&a); err != nil {
			t.Fatal(err)
		}
		if _, err := exact.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("bits=%d: serialized state diverged", bits)
		}
	}
}

// TestBloomRebuildOnOverflow: publishing far more prefixes than the
// initial tier was sized for must trigger the full rebuild from the
// trie, restoring capacity headroom — and stay correct throughout.
func TestBloomRebuildOnOverflow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	set, _ := trainRandom(rng, bloomCfg, 50, 3)
	st := NewStore(set)
	t0 := st.snap.Load().tier
	if t0 == nil {
		t.Fatal("no tier")
	}
	cap0 := t0.global.Capacity()

	// Push well past the initial 2x-headroom sizing, one small batch at a
	// time so the incremental clone-and-insert path runs until it can't.
	var added []Assignment
	for i := 0; i < 40; i++ {
		batch := make([]Assignment, 8)
		for j := range batch {
			batch[j] = Assignment{
				Peer:   PeerAS(rng.Intn(3)),
				Prefix: netaddr.PrefixFrom4(netaddr.IPv4(rng.Uint32()), 24),
			}
		}
		st.AddPrefixes(batch)
		added = append(added, batch...)
	}
	t1 := st.snap.Load().tier
	if t1.global.Capacity() <= cap0 {
		t.Fatalf("global filter capacity never grew: %d -> %d after %d inserts",
			cap0, t1.global.Capacity(), len(added))
	}
	if t1.global.Overflowed() {
		t.Fatalf("published tier left overflowed: %d entries, capacity %d",
			t1.global.Entries(), t1.global.Capacity())
	}
	for _, a := range added {
		if got := st.Check(a.Peer, v4In(a.Prefix, 1)); got != Match {
			t.Fatalf("after rebuild: Check(%d, in %v) = %v, want Match", a.Peer, a.Prefix, got)
		}
	}
}

// TestBloomCheckpointRehydration: filters are not serialized; a store
// built from a checkpoint-restored Set must come up with a live tier
// answering exactly like the store that wrote the checkpoint.
func TestBloomCheckpointRehydration(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	set, assigns := trainRandom(rng, bloomCfg, 200, 4)
	orig := NewStore(set)

	var ckpt bytes.Buffer
	if err := orig.WriteCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	restoredSet := NewSet(bloomCfg)
	if err := ReadCheckpointInto(restoredSet, &ckpt); err != nil {
		t.Fatal(err)
	}
	restored := NewStore(restoredSet)
	if restored.snap.Load().tier == nil {
		t.Fatal("restored store has no Bloom tier")
	}
	for i := 0; i < 2000; i++ {
		peer, src := PeerAS(rng.Intn(4)), netaddr.IPv4(rng.Uint32()).Addr()
		if i%2 == 0 { // half the probes inside trained space
			a := assigns[rng.Intn(len(assigns))]
			src = v4In(a.Prefix, uint32(rng.Intn(256)))
		}
		if got, want := restored.Check(peer, src), orig.Check(peer, src); got != want {
			t.Fatalf("probe %d: restored Check(%d, %v) = %v, original says %v", i, peer, src, got, want)
		}
	}
}

// TestBloomMetrics: the diagnostic counters must account for every
// check (fastpath + fallbacks + bypassed = checks), false positives can
// only be a subset of fallbacks, and the writer refreshes the gauges.
func TestBloomMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	set, _ := trainRandom(rng, bloomCfg, 300, 4)
	st := NewStore(set)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	st.SetMetrics(m)

	if m.BloomBits.Value() == 0 {
		t.Error("BloomBits gauge not seeded by SetMetrics")
	}

	const n = 5000
	srcs := make([]netaddr.Addr, n)
	out := make([]Verdict, n)
	for i := range srcs {
		srcs[i] = netaddr.IPv4(rng.Uint32()).Addr()
	}
	st.CheckBatchPeer(1, srcs, out)
	for i := 0; i < 100; i++ {
		st.Check(2, netaddr.IPv4(rng.Uint32()).Addr())
	}

	fast, fall := m.BloomFastpath.Value(), m.BloomFallbacks.Value()
	fp, byp := m.BloomFalsePositives.Value(), m.BloomBypassed.Value()
	if fast+fall+byp != n+100 {
		t.Errorf("fastpath(%d) + fallbacks(%d) + bypassed(%d) = %d, want %d checks",
			fast, fall, byp, fast+fall+byp, n+100)
	}
	if fp > fall {
		t.Errorf("false positives (%d) exceed fallbacks (%d)", fp, fall)
	}
	if fast == 0 {
		t.Error("random-source probes never hit the fast path")
	}

	// A publication refreshes the fill gauge. It may move either way — a
	// big batch can trigger a rebuild at doubled capacity, lowering the
	// ratio — but it must change from the seeded value and stay sane.
	before := m.BloomFillPermille.Value()
	var batch []Assignment
	for i := 0; i < 200; i++ {
		batch = append(batch, Assignment{Peer: 1, Prefix: netaddr.PrefixFrom4(netaddr.IPv4(rng.Uint32()), 24)})
	}
	st.AddPrefixes(batch)
	after := m.BloomFillPermille.Value()
	if after == before {
		t.Errorf("fill gauge not refreshed on publication (still %d)", before)
	}
	if after <= 0 || after >= 1000 {
		t.Errorf("fill gauge out of range after publication: %d", after)
	}
}

// TestBloomBatchBypass: a batch of expected traffic — every probe falls
// back to the exact walk — must stop probing after the adaptive
// threshold and go straight to the trie for the remainder, while a
// spoofed-flood batch (fast-path resolutions) never trips the bypass.
// Verdicts are unaffected either way; that is what the equivalence tests
// pin down.
func TestBloomBatchBypass(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	set, inserted := trainRandom(rng, bloomCfg, 300, 4)
	st := NewStore(set)
	reg := telemetry.NewRegistry()
	m := NewMetrics(reg)
	st.SetMetrics(m)

	const n = 256
	legal := make([]netaddr.Addr, n)
	out := make([]Verdict, n)
	for i := range legal {
		a := inserted[i%len(inserted)]
		legal[i] = v4In(a.Prefix, 1)
	}
	// Mixed-peer lane: sources in-set, so every probe defers to the walk.
	peers := make([]PeerAS, n)
	for i := range peers {
		peers[i] = inserted[i%len(inserted)].Peer
	}
	st.CheckBatch(peers, legal, out)
	if got := m.BloomBypassed.Value(); got != n-bloomBypassAfter {
		t.Errorf("CheckBatch on expected traffic bypassed %d probes, want %d", got, n-bloomBypassAfter)
	}
	if got := m.BloomFallbacks.Value(); got != bloomBypassAfter {
		t.Errorf("CheckBatch on expected traffic fell back %d times, want %d", got, bloomBypassAfter)
	}
	for i := range out {
		if out[i] != Match {
			t.Fatalf("bypassed check [%d] = %v, want Match", i, out[i])
		}
	}

	// Single-peer lane, same shape.
	st.CheckBatchPeer(inserted[0].Peer, legal[:64], out[:64])
	if got := m.BloomBypassed.Value(); got <= n-bloomBypassAfter {
		t.Errorf("CheckBatchPeer on expected traffic never bypassed (total still %d)", got)
	}

	// A spoofed flood resolves on the fast path; the occasional filter
	// false positive must not accumulate into a bypass streak.
	before := m.BloomBypassed.Value()
	flood := make([]netaddr.Addr, n)
	for i := range flood {
		flood[i] = netaddr.IPv4(rng.Uint32()).Addr()
	}
	st.CheckBatchPeer(1, flood, out)
	if got := m.BloomBypassed.Value(); got != before {
		t.Errorf("flood batch bypassed %d probes, want 0", got-before)
	}
}
