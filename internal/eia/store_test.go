package eia

import (
	"bytes"
	"sync"
	"testing"

	"infilter/internal/netaddr"
	"infilter/internal/telemetry"
)

func TestStoreSemantics(t *testing.T) {
	cs := NewStore(nil)
	cs.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	cs.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))

	if got := cs.Check(1, netaddr.MustParseAddr("61.1.1.1")); got != Match {
		t.Errorf("Check = %v, want Match", got)
	}
	if got := cs.Check(1, netaddr.MustParseAddr("70.1.1.1")); got != WrongPeer {
		t.Errorf("Check = %v, want WrongPeer", got)
	}
	if got := cs.Check(1, netaddr.MustParseAddr("99.1.1.1")); got != Unknown {
		t.Errorf("Check = %v, want Unknown", got)
	}
	if peer, ok := cs.ExpectedPeer(netaddr.MustParseAddr("70.1.1.1")); !ok || peer != 2 {
		t.Errorf("ExpectedPeer = %v, %v", peer, ok)
	}
	if cs.Len() != 2 || cs.PeerPrefixCount(1) != 1 {
		t.Errorf("Len = %d, PeerPrefixCount(1) = %d", cs.Len(), cs.PeerPrefixCount(1))
	}

	// Promotion through the store behaves like the bare set.
	src := netaddr.MustParseAddr("99.2.3.4")
	var promoted bool
	for i := 0; i < DefaultPromoteThreshold; i++ {
		promoted = cs.RecordLegal(3, src)
	}
	if !promoted {
		t.Fatal("RecordLegal never promoted at the threshold")
	}
	if got := cs.Check(3, src); got != Match {
		t.Errorf("post-promotion Check = %v, want Match", got)
	}
}

// TestStoreRehoming covers the route-change path: re-inserting a prefix
// for a different peer must move it (and its count) in the next snapshot.
func TestStoreRehoming(t *testing.T) {
	cs := NewStore(nil)
	p := netaddr.MustParsePrefix("61.0.0.0/11")
	cs.AddPrefix(1, p)
	cs.AddPrefix(2, p)
	if cs.Len() != 1 {
		t.Errorf("Len = %d after re-home, want 1", cs.Len())
	}
	if got := cs.PeerPrefixCount(1); got != 0 {
		t.Errorf("PeerPrefixCount(1) = %d, want 0", got)
	}
	if got := cs.PeerPrefixCount(2); got != 1 {
		t.Errorf("PeerPrefixCount(2) = %d, want 1", got)
	}
	if got := cs.Check(2, netaddr.MustParseAddr("61.1.1.1")); got != Match {
		t.Errorf("Check after re-home = %v, want Match", got)
	}
	// Re-inserting the same mapping publishes nothing and changes nothing.
	cs.AddPrefix(2, p)
	if cs.Len() != 1 || cs.PeerPrefixCount(2) != 1 {
		t.Errorf("idempotent re-insert: Len=%d count=%d", cs.Len(), cs.PeerPrefixCount(2))
	}
}

// TestStoreBatchPublish checks that AddPrefixes lands a whole batch and
// Train aggregates to the promote mask, as Set.Train does.
func TestStoreBatchPublish(t *testing.T) {
	cs := NewStore(nil)
	cs.AddPrefixes([]Assignment{
		{Peer: 1, Prefix: netaddr.MustParsePrefix("61.0.0.0/11")},
		{Peer: 1, Prefix: netaddr.MustParsePrefix("88.32.0.0/11")},
		{Peer: 2, Prefix: netaddr.MustParsePrefix("70.0.0.0/11")},
	})
	if cs.Len() != 3 || cs.PeerPrefixCount(1) != 2 {
		t.Errorf("Len = %d, PeerPrefixCount(1) = %d", cs.Len(), cs.PeerPrefixCount(1))
	}
	cs.Train([]TrainingSource{{Peer: 3, Src: netaddr.MustParseAddr("10.1.2.3")}}, 0)
	if got := cs.Check(3, netaddr.MustParseAddr("10.1.2.99")); got != Match {
		t.Errorf("trained /24 Check = %v, want Match", got)
	}
	if got := len(cs.Peers()); got != 3 {
		t.Errorf("Peers = %d, want 3", got)
	}
}

// TestStoreAdoptsSetState verifies NewStore carries over prefixes, config
// and in-flight pending promotion counters from the seed Set.
func TestStoreAdoptsSetState(t *testing.T) {
	set := NewSet(Config{PromoteThreshold: 3})
	set.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	src := netaddr.MustParseAddr("99.2.3.4")
	set.RecordLegal(2, src) // 1 of 3

	cs := NewStore(set)
	if got := cs.PendingCount(2, src); got != 1 {
		t.Errorf("adopted PendingCount = %d, want 1", got)
	}
	if cs.RecordLegal(2, src) {
		t.Error("promoted at 2 of 3")
	}
	if !cs.RecordLegal(2, src) {
		t.Error("not promoted at 3 of 3")
	}
	var a, b bytes.Buffer
	if _, err := cs.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Error("WriteTo wrote nothing")
	}
	if err := cs.WriteCheckpoint(&b); err != nil {
		t.Fatal(err)
	}
	// The checkpoint carries exactly the WriteTo state, re-encoded as
	// family-tagged v2 rows under the version header.
	fromPlain, fromCkpt := NewSet(Config{}), NewSet(Config{})
	if err := ReadInto(fromPlain, &a); err != nil {
		t.Fatal(err)
	}
	if err := ReadCheckpointInto(fromCkpt, &b); err != nil {
		t.Fatal(err)
	}
	var aa, bb bytes.Buffer
	if _, err := fromPlain.WriteTo(&aa); err != nil {
		t.Fatal(err)
	}
	if _, err := fromCkpt.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aa.Bytes(), bb.Bytes()) {
		t.Error("checkpoint state diverges from WriteTo state")
	}
}

// TestStoreCheckBatchMatchesCheck replays a mixed batch through both the
// per-record and the batched entry points: the verdicts must be
// identical, since CheckBatch only amortizes the snapshot load.
func TestStoreCheckBatchMatchesCheck(t *testing.T) {
	cs := NewStore(nil)
	cs.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	cs.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))

	peers := []PeerAS{1, 1, 1, 2, 2, 9}
	srcs := []netaddr.Addr{
		netaddr.MustParseAddr("61.1.1.1"),  // Match
		netaddr.MustParseAddr("70.1.1.1"),  // WrongPeer
		netaddr.MustParseAddr("99.1.1.1"),  // Unknown
		netaddr.MustParseAddr("70.31.0.9"), // Match
		netaddr.MustParseAddr("61.0.0.1"),  // WrongPeer
		netaddr.MustParseAddr("61.2.3.4"),  // WrongPeer (unknown peer)
	}
	out := make([]Verdict, len(peers))
	cs.CheckBatch(peers, srcs, out)
	for i := range peers {
		if want := cs.Check(peers[i], srcs[i]); out[i] != want {
			t.Errorf("entry %d: CheckBatch = %v, Check = %v", i, out[i], want)
		}
	}

	// A promotion published between batches shows up in the next batch,
	// exactly as it would for per-record Check.
	for i := 0; i < DefaultPromoteThreshold; i++ {
		cs.RecordLegal(9, srcs[5])
	}
	cs.CheckBatch(peers, srcs, out)
	if out[5] != Match {
		t.Errorf("post-promotion batch verdict = %v, want Match", out[5])
	}
}

// TestStoreCheckBatchPeerMatchesCheck pins the single-peer batch lane to
// per-record Check: verdicts must be identical for every source, and a
// promotion published between batches is visible to the next one.
func TestStoreCheckBatchPeerMatchesCheck(t *testing.T) {
	cs := NewStore(nil)
	cs.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	cs.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))

	srcs := []netaddr.Addr{
		netaddr.MustParseAddr("61.1.1.1"),  // Match
		netaddr.MustParseAddr("70.1.1.1"),  // WrongPeer
		netaddr.MustParseAddr("99.1.1.1"),  // Unknown
		netaddr.MustParseAddr("61.31.0.9"), // Match
	}
	out := make([]Verdict, len(srcs))
	cs.CheckBatchPeer(1, srcs, out)
	for i := range srcs {
		if want := cs.Check(1, srcs[i]); out[i] != want {
			t.Errorf("src %d: CheckBatchPeer = %v, Check = %v", i, out[i], want)
		}
	}

	for i := 0; i < DefaultPromoteThreshold; i++ {
		cs.RecordLegal(1, srcs[2])
	}
	cs.CheckBatchPeer(1, srcs, out)
	if out[2] != Match {
		t.Errorf("post-promotion batch verdict = %v, want Match", out[2])
	}
}

func TestStoreCheckBatchPeerLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CheckBatchPeer with mismatched slice lengths did not panic")
		}
	}()
	cs := NewStore(nil)
	cs.CheckBatchPeer(1, make([]netaddr.Addr, 2), make([]Verdict, 1))
}

// TestStoreAddVerdictCounts pins the bulk counting entry point the batch
// consumers use in place of per-verdict CountVerdict calls.
func TestStoreAddVerdictCounts(t *testing.T) {
	cs := NewStore(nil)
	cs.AddVerdictCounts(netaddr.FamilyV4, 1, 2) // no metrics installed: must not panic
	m := &Metrics{
		Hits:       telemetry.NewFamilyCounter(),
		Misses:     telemetry.NewFamilyCounter(),
		Promotions: telemetry.NewCounter(),
	}
	cs.SetMetrics(m)
	cs.AddVerdictCounts(netaddr.FamilyV4, 3, 5)
	cs.AddVerdictCounts(netaddr.FamilyV6, 2, 1)
	if m.Hits.Value() != 5 || m.Misses.Value() != 6 {
		t.Errorf("after AddVerdictCounts: hits=%d misses=%d, want 5/6", m.Hits.Value(), m.Misses.Value())
	}
	if m.Hits.V6.Value() != 2 || m.Misses.V6.Value() != 1 {
		t.Errorf("v6 counts: hits=%d misses=%d, want 2/1", m.Hits.V6.Value(), m.Misses.V6.Value())
	}
}

func TestStoreCheckBatchLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CheckBatch with mismatched slice lengths did not panic")
		}
	}()
	cs := NewStore(nil)
	cs.CheckBatch(make([]PeerAS, 2), make([]netaddr.Addr, 2), make([]Verdict, 1))
}

// TestStoreCheckBatchMetrics pins the counting contract: CheckBatch
// leaves the hit/miss counters alone (a batched pipeline may re-check a
// batch tail after a mid-batch promotion), and CountVerdict folds in
// exactly one outcome per call — matching what Check does internally.
func TestStoreCheckBatchMetrics(t *testing.T) {
	cs := NewStore(nil)
	cs.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	m := &Metrics{
		Hits:       telemetry.NewFamilyCounter(),
		Misses:     telemetry.NewFamilyCounter(),
		Promotions: telemetry.NewCounter(),
	}
	cs.SetMetrics(m)

	peers := []PeerAS{1, 1, 1}
	srcs := []netaddr.Addr{
		netaddr.MustParseAddr("61.1.1.1"), // Match
		netaddr.MustParseAddr("99.1.1.1"), // Unknown
		netaddr.MustParseAddr("99.2.2.2"), // Unknown
	}
	out := make([]Verdict, len(peers))
	cs.CheckBatch(peers, srcs, out)
	if m.Hits.Value() != 0 || m.Misses.Value() != 0 {
		t.Errorf("CheckBatch counted: hits=%d misses=%d, want 0/0", m.Hits.Value(), m.Misses.Value())
	}
	for i, v := range out {
		cs.CountVerdict(v, srcs[i].Family())
	}
	if m.Hits.Value() != 1 || m.Misses.Value() != 2 {
		t.Errorf("after CountVerdict: hits=%d misses=%d, want 1/2", m.Hits.Value(), m.Misses.Value())
	}
	// Per-record Check still counts inline.
	cs.Check(1, srcs[0])
	if m.Hits.Value() != 2 {
		t.Errorf("Check did not count: hits=%d, want 2", m.Hits.Value())
	}
}

// TestStoreParallelAccess hammers the store from many goroutines; under
// -race it proves the lock-free Check path and the single-writer side
// are coherent (readers only ever see fully published snapshots).
func TestStoreParallelAccess(t *testing.T) {
	cs := NewStore(nil)
	for i := 0; i < 8; i++ {
		cs.AddPrefix(PeerAS(i+1), netaddr.PrefixFrom4(netaddr.IPv4(uint32(i+10)<<24), 8))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := PeerAS(g + 1)
			base := netaddr.IPv4(uint32(g+100) << 24)
			for i := 0; i < 500; i++ {
				src := (base + netaddr.IPv4(i%7)<<8).Addr()
				cs.Check(peer, src)
				cs.RecordLegal(peer, src)
				cs.ExpectedPeer(src)
				if i%100 == 0 {
					cs.Len()
					cs.Peers()
					var buf bytes.Buffer
					if _, err := cs.WriteTo(&buf); err != nil {
						t.Errorf("WriteTo: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Each goroutine vouched ~72 times for each of 7 disjoint /24s, far
	// past the promotion threshold: every subnet must have been promoted.
	for g := 0; g < 8; g++ {
		if got := cs.Check(PeerAS(g+1), netaddr.IPv4(uint32(g+100)<<24).Addr()); got != Match {
			t.Errorf("goroutine %d subnet not promoted: %v", g, got)
		}
	}
}
