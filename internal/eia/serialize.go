package eia

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"infilter/internal/netaddr"
)

// WriteTo serializes the EIA sets as "<peerAS> <cidr>" lines, sorted for
// stable output. Pending promotion counters are transient and not saved.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	return writeRows(w, s.index, false)
}

// writeRows emits the sorted body shared by the Set and Store
// serializers: "<peerAS> <cidr>" rows when tagFamily is false (the plain
// WriteTo format), "<peerAS> <family> <cidr>" rows when true (the v2
// checkpoint format). Rows sort peer-major, then v4 before v6, then by
// address, so output is stable and diffs cleanly.
func writeRows(w io.Writer, index *netaddr.PrefixTrie[PeerAS], tagFamily bool) (int64, error) {
	type row struct {
		peer PeerAS
		pfx  netaddr.Prefix
	}
	var rows []row
	index.Walk(func(p netaddr.Prefix, peer PeerAS) bool {
		rows = append(rows, row{peer: peer, pfx: p})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].peer != rows[j].peer {
			return rows[i].peer < rows[j].peer
		}
		if rows[i].pfx.Addr() != rows[j].pfx.Addr() {
			return rows[i].pfx.Addr().Less(rows[j].pfx.Addr())
		}
		return rows[i].pfx.Bits() < rows[j].pfx.Bits()
	})
	bw := bufio.NewWriter(w)
	var total int64
	for _, r := range rows {
		var n int
		var err error
		if tagFamily {
			n, err = fmt.Fprintf(bw, "%d %s %s\n", r.peer, r.pfx.Family(), r.pfx)
		} else {
			n, err = fmt.Fprintf(bw, "%d %s\n", r.peer, r.pfx)
		}
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("eia: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return total, fmt.Errorf("eia: flush: %w", err)
	}
	return total, nil
}

// ReadInto loads "<peerAS> <cidr>" lines into the set (either family;
// ParsePrefix tells them apart). Blank lines and '#' comments are
// skipped.
func ReadInto(s *Set, r io.Reader) error {
	return readLines(bufio.NewScanner(r), 0, s, 0)
}

// readLines parses prefix rows from sc into s, with line numbers in
// errors offset by startLine (the count of lines a caller already
// consumed, e.g. a checkpoint header). version selects the row grammar:
// 0 (plain WriteTo) and 1 (legacy checkpoint) are "<peerAS> <cidr>" —
// with v1 additionally rejecting v6 rows, since the v1 format predates
// dual-stack and a v6 row in one means the file is corrupt — and 2 is
// the family-tagged "<peerAS> <family> <cidr>", where the tag must agree
// with the parsed prefix.
func readLines(sc *bufio.Scanner, startLine int, s *Set, version int) error {
	line := startLine
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		cidr, famTag := "", ""
		switch {
		case version < 2 && len(fields) == 2:
			cidr = fields[1]
		case version != 1 && len(fields) == 3:
			// v2 checkpoint rows — or a family-tagged checkpoint body
			// loaded through plain ReadInto, which stays a valid EIA file.
			famTag, cidr = fields[1], fields[2]
		case version == 2:
			return fmt.Errorf("eia: line %d: want '<peerAS> <family> <cidr>', got %q", line, text)
		default:
			return fmt.Errorf("eia: line %d: want '<peerAS> <cidr>', got %q", line, text)
		}
		peer, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return fmt.Errorf("eia: line %d: peer AS: %w", line, err)
		}
		pfx, err := netaddr.ParsePrefix(cidr)
		if err != nil {
			return fmt.Errorf("eia: line %d: %w", line, err)
		}
		if version == 1 && pfx.Family() != netaddr.FamilyV4 {
			return fmt.Errorf("eia: line %d: v1 checkpoint carries non-v4 prefix %q", line, cidr)
		}
		if famTag != "" && famTag != pfx.Family().String() {
			return fmt.Errorf("eia: line %d: family tag %q does not match prefix %q", line, famTag, cidr)
		}
		s.AddPrefix(PeerAS(peer), pfx)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("eia: read: %w", err)
	}
	return nil
}

// Checkpoint format: a mandatory versioned header line followed by the
// prefix rows. The header is a '#' comment, so a v1 checkpoint file
// still loads through plain ReadInto; ReadCheckpointInto additionally
// rejects files that lack the header or carry an unknown version, which
// is what the warm-restart path wants (a truncated or foreign file must
// not be silently accepted as empty EIA state).
//
// v1 rows are "<peerAS> <cidr>" and v4-only (the format predates
// dual-stack). v2 rows are "<peerAS> <family> <cidr>" with family "4" or
// "6". Writers always emit v2; readers accept both, so a daemon restarted
// over a v1 state directory loads it as v4-only EIA state and upgrades
// the file to v2 at its next checkpoint flush.
const (
	checkpointMagic      = "# infilter-eia-checkpoint v"
	checkpointVersion    = 2
	checkpointVersionOld = 1
)

// WriteCheckpoint writes a versioned EIA checkpoint: header plus the
// sorted rows of WriteTo.
func (s *Set) WriteCheckpoint(w io.Writer) error {
	return writeCheckpoint(w, s.index)
}

func writeCheckpoint(w io.Writer, index *netaddr.PrefixTrie[PeerAS]) error {
	if _, err := fmt.Fprintf(w, "%s%d\n", checkpointMagic, checkpointVersion); err != nil {
		return fmt.Errorf("eia: write checkpoint header: %w", err)
	}
	_, err := writeRows(w, index, true)
	return err
}

// DecodeCheckpoint is the single decode entry point for the versioned
// checkpoint format: it reads one checkpoint stream into a fresh Set
// carrying cfg. Every consumer of the format goes through it (or through
// ReadCheckpointInto, which it wraps) — the warm-restart load from
// -state-dir and the cluster replication receiver both decode the exact
// bytes WriteCheckpoint produced, so the v2 format has exactly one
// reader and one writer in the codebase.
func DecodeCheckpoint(cfg Config, r io.Reader) (*Set, error) {
	s := NewSet(cfg)
	if err := ReadCheckpointInto(s, r); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadCheckpointInto loads a checkpoint written by WriteCheckpoint into
// s. Malformed input — a missing or unversioned header, an unsupported
// version, or any malformed row — returns an error; it never panics, so
// a corrupt or truncated checkpoint file fails a warm restart loudly
// instead of poisoning the EIA state.
func ReadCheckpointInto(s *Set, r io.Reader) error {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return fmt.Errorf("eia: read checkpoint: %w", err)
		}
		return fmt.Errorf("eia: checkpoint: empty file")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, checkpointMagic) {
		return fmt.Errorf("eia: checkpoint: bad header %q", header)
	}
	v, err := strconv.Atoi(strings.TrimPrefix(header, checkpointMagic))
	if err != nil {
		return fmt.Errorf("eia: checkpoint: bad version in header %q", header)
	}
	if v != checkpointVersion && v != checkpointVersionOld {
		return fmt.Errorf("eia: checkpoint version %d, want %d or %d", v, checkpointVersionOld, checkpointVersion)
	}
	return readLines(sc, 1, s, v)
}
