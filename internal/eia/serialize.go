package eia

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"infilter/internal/netaddr"
)

// WriteTo serializes the EIA sets as "<peerAS> <cidr>" lines, sorted for
// stable output. Pending promotion counters are transient and not saved.
func (s *Set) WriteTo(w io.Writer) (int64, error) {
	type row struct {
		peer PeerAS
		pfx  netaddr.Prefix
	}
	var rows []row
	s.index.Walk(func(p netaddr.Prefix, peer PeerAS) bool {
		rows = append(rows, row{peer: peer, pfx: p})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].peer != rows[j].peer {
			return rows[i].peer < rows[j].peer
		}
		if rows[i].pfx.Addr() != rows[j].pfx.Addr() {
			return rows[i].pfx.Addr() < rows[j].pfx.Addr()
		}
		return rows[i].pfx.Bits() < rows[j].pfx.Bits()
	})
	bw := bufio.NewWriter(w)
	var total int64
	for _, r := range rows {
		n, err := fmt.Fprintf(bw, "%d %s\n", r.peer, r.pfx)
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("eia: write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return total, fmt.Errorf("eia: flush: %w", err)
	}
	return total, nil
}

// ReadInto loads "<peerAS> <cidr>" lines into the set. Blank lines and
// '#' comments are skipped.
func ReadInto(s *Set, r io.Reader) error {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return fmt.Errorf("eia: line %d: want '<peerAS> <cidr>', got %q", line, text)
		}
		peer, err := strconv.ParseUint(fields[0], 10, 16)
		if err != nil {
			return fmt.Errorf("eia: line %d: peer AS: %w", line, err)
		}
		pfx, err := netaddr.ParsePrefix(fields[1])
		if err != nil {
			return fmt.Errorf("eia: line %d: %w", line, err)
		}
		s.AddPrefix(PeerAS(peer), pfx)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("eia: read: %w", err)
	}
	return nil
}
