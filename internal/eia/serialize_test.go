package eia

import (
	"bytes"
	"strings"
	"testing"

	"infilter/internal/netaddr"
)

func TestSetWriteReadRoundTrip(t *testing.T) {
	s := NewSet(Config{})
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	s.AddPrefix(1, netaddr.MustParsePrefix("88.32.0.0/11"))
	s.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))
	s.AddPrefix(3, netaddr.MustParsePrefix("4.2.101.0/24"))

	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	loaded := NewSet(Config{})
	if err := ReadInto(loaded, &buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("loaded %d prefixes, want %d", loaded.Len(), s.Len())
	}
	checks := []struct {
		peer PeerAS
		src  string
		want Verdict
	}{
		{1, "61.5.5.5", Match},
		{2, "70.5.5.5", Match},
		{3, "4.2.101.20", Match},
		{1, "70.5.5.5", WrongPeer},
		{1, "9.9.9.9", Unknown},
	}
	for _, c := range checks {
		if got := loaded.Check(c.peer, netaddr.MustParseIPv4(c.src)); got != c.want {
			t.Errorf("loaded Check(%d,%s) = %v, want %v", c.peer, c.src, got, c.want)
		}
	}
}

func TestWriteToStableOrder(t *testing.T) {
	s := NewSet(Config{})
	s.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))
	s.AddPrefix(1, netaddr.MustParsePrefix("88.0.0.0/11"))
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))

	var a, b bytes.Buffer
	if _, err := s.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteTo output not deterministic")
	}
	want := "1 61.0.0.0/11\n1 88.0.0.0/11\n2 70.0.0.0/11\n"
	if a.String() != want {
		t.Errorf("WriteTo = %q, want %q", a.String(), want)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := NewSet(Config{})
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	s.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))
	s.AddPrefix(3, netaddr.MustParsePrefix("4.2.101.0/24"))

	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# infilter-eia-checkpoint v1\n") {
		t.Errorf("checkpoint header missing: %q", buf.String())
	}
	loaded := NewSet(Config{})
	if err := ReadCheckpointInto(loaded, &buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("loaded %d prefixes, want %d", loaded.Len(), s.Len())
	}
	if got := loaded.Check(3, netaddr.MustParseIPv4("4.2.101.20")); got != Match {
		t.Errorf("loaded Check = %v, want Match", got)
	}
	// A checkpoint is also a valid plain EIA file (header is a comment).
	var buf2 bytes.Buffer
	if err := s.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	plain := NewSet(Config{})
	if err := ReadInto(plain, &buf2); err != nil {
		t.Errorf("ReadInto of checkpoint: %v", err)
	}
	if plain.Len() != s.Len() {
		t.Errorf("plain load got %d prefixes, want %d", plain.Len(), s.Len())
	}
}

func TestReadCheckpointIntoRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",                                  // empty file
		"1 61.0.0.0/11\n",                   // no header
		"# infilter-eia-checkpoint vX\n",    // unparsable version
		"# infilter-eia-checkpoint v99\n",   // future version
		"# some other comment\n1 6.0.0.0/8", // wrong header
		"# infilter-eia-checkpoint v1\n1 notacidr\n", // bad row
		"# infilter-eia-checkpoint v1\nonlyfield\n",  // truncated row
	} {
		if err := ReadCheckpointInto(NewSet(Config{}), strings.NewReader(bad)); err == nil {
			t.Errorf("ReadCheckpointInto(%q): want error", bad)
		}
	}
}

func TestReadIntoSkipsCommentsAndErrors(t *testing.T) {
	s := NewSet(Config{})
	if err := ReadInto(s, strings.NewReader("# header\n\n1 61.0.0.0/11\n")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("loaded %d prefixes", s.Len())
	}
	for _, bad := range []string{"onlyfield\n", "x 61.0.0.0/11\n", "1 notacidr\n", "1 2 3\n"} {
		if err := ReadInto(NewSet(Config{}), strings.NewReader(bad)); err == nil {
			t.Errorf("ReadInto(%q): want error", bad)
		}
	}
}
