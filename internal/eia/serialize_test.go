package eia

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"infilter/internal/netaddr"
)

func TestSetWriteReadRoundTrip(t *testing.T) {
	s := NewSet(Config{})
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	s.AddPrefix(1, netaddr.MustParsePrefix("88.32.0.0/11"))
	s.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))
	s.AddPrefix(3, netaddr.MustParsePrefix("4.2.101.0/24"))

	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}

	loaded := NewSet(Config{})
	if err := ReadInto(loaded, &buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("loaded %d prefixes, want %d", loaded.Len(), s.Len())
	}
	checks := []struct {
		peer PeerAS
		src  string
		want Verdict
	}{
		{1, "61.5.5.5", Match},
		{2, "70.5.5.5", Match},
		{3, "4.2.101.20", Match},
		{1, "70.5.5.5", WrongPeer},
		{1, "9.9.9.9", Unknown},
	}
	for _, c := range checks {
		if got := loaded.Check(c.peer, netaddr.MustParseAddr(c.src)); got != c.want {
			t.Errorf("loaded Check(%d,%s) = %v, want %v", c.peer, c.src, got, c.want)
		}
	}
}

func TestWriteToStableOrder(t *testing.T) {
	s := NewSet(Config{})
	s.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))
	s.AddPrefix(1, netaddr.MustParsePrefix("88.0.0.0/11"))
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))

	var a, b bytes.Buffer
	if _, err := s.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteTo output not deterministic")
	}
	want := "1 61.0.0.0/11\n1 88.0.0.0/11\n2 70.0.0.0/11\n"
	if a.String() != want {
		t.Errorf("WriteTo = %q, want %q", a.String(), want)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := NewSet(Config{})
	s.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	s.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))
	s.AddPrefix(3, netaddr.MustParsePrefix("4.2.101.0/24"))

	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# infilter-eia-checkpoint v2\n") {
		t.Errorf("checkpoint header missing: %q", buf.String())
	}
	loaded := NewSet(Config{})
	if err := ReadCheckpointInto(loaded, &buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != s.Len() {
		t.Fatalf("loaded %d prefixes, want %d", loaded.Len(), s.Len())
	}
	if got := loaded.Check(3, netaddr.MustParseAddr("4.2.101.20")); got != Match {
		t.Errorf("loaded Check = %v, want Match", got)
	}
	// A checkpoint is also a valid plain EIA file (header is a comment).
	var buf2 bytes.Buffer
	if err := s.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	plain := NewSet(Config{})
	if err := ReadInto(plain, &buf2); err != nil {
		t.Errorf("ReadInto of checkpoint: %v", err)
	}
	if plain.Len() != s.Len() {
		t.Errorf("plain load got %d prefixes, want %d", plain.Len(), s.Len())
	}
}

// TestCheckpointV1GoldenUpgrade restores from a committed pre-dual-stack
// checkpoint file (the exact bytes a v1 daemon wrote) and proves
// upgrade-on-write: the loaded state answers verdicts, and the next
// WriteCheckpoint emits the v2 family-tagged format — including any v6
// prefixes promoted after the restore, which v1 could not express.
func TestCheckpointV1GoldenUpgrade(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "checkpoint_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s := NewSet(Config{})
	if err := ReadCheckpointInto(s, f); err != nil {
		t.Fatalf("restore from v1 golden: %v", err)
	}
	if s.Len() != 4 {
		t.Fatalf("restored %d prefixes, want 4", s.Len())
	}
	for _, c := range []struct {
		peer PeerAS
		src  string
		want Verdict
	}{
		{1, "61.5.5.5", Match},
		{1, "88.40.0.1", Match},
		{2, "70.5.5.5", Match},
		{3, "4.2.101.20", Match},
		{2, "61.5.5.5", WrongPeer},
		{1, "9.9.9.9", Unknown},
	} {
		if got := s.Check(c.peer, netaddr.MustParseAddr(c.src)); got != c.want {
			t.Errorf("restored Check(%d,%s) = %v, want %v", c.peer, c.src, got, c.want)
		}
	}

	// The restarted daemon keeps learning — including v6 now — and its
	// next checkpoint flush rewrites the file in the v2 format.
	s.AddPrefix(2, netaddr.MustParsePrefix("2001:db8:4000::/48"))
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	want := "# infilter-eia-checkpoint v2\n" +
		"1 4 61.0.0.0/11\n" +
		"1 4 88.32.0.0/11\n" +
		"2 4 70.0.0.0/11\n" +
		"2 6 2001:db8:4000::/48\n" +
		"3 4 4.2.101.0/24\n"
	if buf.String() != want {
		t.Errorf("upgraded checkpoint:\n%s\nwant:\n%s", buf.String(), want)
	}
	reloaded := NewSet(Config{})
	if err := ReadCheckpointInto(reloaded, bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("reload of upgraded checkpoint: %v", err)
	}
	if reloaded.Len() != 5 {
		t.Errorf("reloaded %d prefixes, want 5", reloaded.Len())
	}
	if got := reloaded.Check(2, netaddr.MustParseAddr("2001:db8:4000::99")); got != Match {
		t.Errorf("reloaded v6 Check = %v, want Match", got)
	}
}

func TestReadCheckpointIntoRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",                                  // empty file
		"1 61.0.0.0/11\n",                   // no header
		"# infilter-eia-checkpoint vX\n",    // unparsable version
		"# infilter-eia-checkpoint v99\n",   // future version
		"# some other comment\n1 6.0.0.0/8", // wrong header
		"# infilter-eia-checkpoint v1\n1 notacidr\n",        // bad row
		"# infilter-eia-checkpoint v1\nonlyfield\n",         // truncated row
		"# infilter-eia-checkpoint v1\n1 2001:db8::/32\n",   // v6 row predates v1
		"# infilter-eia-checkpoint v2\n1 61.0.0.0/11\n",     // v2 row without family tag
		"# infilter-eia-checkpoint v2\n1 6 61.0.0.0/11\n",   // family tag contradicts prefix
		"# infilter-eia-checkpoint v2\n1 4 2001:db8::/32\n", // family tag contradicts prefix
	} {
		if err := ReadCheckpointInto(NewSet(Config{}), strings.NewReader(bad)); err == nil {
			t.Errorf("ReadCheckpointInto(%q): want error", bad)
		}
	}
}

func TestReadIntoSkipsCommentsAndErrors(t *testing.T) {
	s := NewSet(Config{})
	if err := ReadInto(s, strings.NewReader("# header\n\n1 61.0.0.0/11\n")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("loaded %d prefixes", s.Len())
	}
	for _, bad := range []string{"onlyfield\n", "x 61.0.0.0/11\n", "1 notacidr\n", "1 2 3\n"} {
		if err := ReadInto(NewSet(Config{}), strings.NewReader(bad)); err == nil {
			t.Errorf("ReadInto(%q): want error", bad)
		}
	}
}
