package eia

import (
	"sync"
	"testing"

	"infilter/internal/netaddr"
)

func TestConcurrentSetSemantics(t *testing.T) {
	cs := NewConcurrentSet(nil)
	cs.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	cs.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))

	if got := cs.Check(1, netaddr.MustParseIPv4("61.1.1.1")); got != Match {
		t.Errorf("Check = %v, want Match", got)
	}
	if got := cs.Check(1, netaddr.MustParseIPv4("70.1.1.1")); got != WrongPeer {
		t.Errorf("Check = %v, want WrongPeer", got)
	}
	if got := cs.Check(1, netaddr.MustParseIPv4("99.1.1.1")); got != Unknown {
		t.Errorf("Check = %v, want Unknown", got)
	}
	if peer, ok := cs.ExpectedPeer(netaddr.MustParseIPv4("70.1.1.1")); !ok || peer != 2 {
		t.Errorf("ExpectedPeer = %v, %v", peer, ok)
	}
	if cs.Len() != 2 || cs.PeerPrefixCount(1) != 1 {
		t.Errorf("Len = %d, PeerPrefixCount(1) = %d", cs.Len(), cs.PeerPrefixCount(1))
	}

	// Promotion through the wrapper behaves like the bare set.
	src := netaddr.MustParseIPv4("99.2.3.4")
	var promoted bool
	for i := 0; i < DefaultPromoteThreshold; i++ {
		promoted = cs.RecordLegal(3, src)
	}
	if !promoted {
		t.Fatal("RecordLegal never promoted at the threshold")
	}
	if got := cs.Check(3, src); got != Match {
		t.Errorf("post-promotion Check = %v, want Match", got)
	}
}

// TestConcurrentSetParallelAccess hammers the wrapper from many goroutines;
// it exists to fail under -race if any accessor skips the lock.
func TestConcurrentSetParallelAccess(t *testing.T) {
	cs := NewConcurrentSet(nil)
	for i := 0; i < 8; i++ {
		cs.AddPrefix(PeerAS(i+1), netaddr.MustPrefix(netaddr.IPv4(uint32(i+10)<<24), 8))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			peer := PeerAS(g + 1)
			base := netaddr.IPv4(uint32(g+100) << 24)
			for i := 0; i < 500; i++ {
				src := base + netaddr.IPv4(i%7)<<8
				cs.Check(peer, src)
				cs.RecordLegal(peer, src)
				cs.ExpectedPeer(src)
				if i%100 == 0 {
					cs.Len()
					cs.Peers()
				}
			}
		}(g)
	}
	wg.Wait()
	// Each goroutine vouched ~72 times for each of 7 disjoint /24s, far
	// past the promotion threshold: every subnet must have been promoted.
	for g := 0; g < 8; g++ {
		if got := cs.Check(PeerAS(g+1), netaddr.IPv4(uint32(g+100)<<24)); got != Match {
			t.Errorf("goroutine %d subnet not promoted: %v", g, got)
		}
	}
}
