package eia

import (
	"io"
	"sync"

	"infilter/internal/netaddr"
)

// ConcurrentSet wraps a Set for shared use by concurrent analysis shards.
// The EIA set is read-mostly at run time — the hot path is Check, a pure
// longest-prefix lookup — while the only writers are promotions of
// repeatedly-vouched sources (RecordLegal) and operator preloads. An
// RWMutex therefore keeps lookups uncontended: Check and the other
// read-side accessors take the read lock; RecordLegal, AddPrefix and Train
// take the write lock.
//
// All methods are safe for concurrent use. The wrapped Set must not be
// used directly while the ConcurrentSet is shared.
type ConcurrentSet struct {
	mu sync.RWMutex
	s  *Set
}

// NewConcurrentSet wraps set; a nil set gets a fresh empty Set with the
// default Config.
func NewConcurrentSet(set *Set) *ConcurrentSet {
	if set == nil {
		set = NewSet(Config{})
	}
	return &ConcurrentSet{s: set}
}

// Check classifies a flow's source address observed at peer.
func (c *ConcurrentSet) Check(peer PeerAS, src netaddr.IPv4) Verdict {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Check(peer, src)
}

// ExpectedPeer returns the peer AS whose EIA set contains src.
func (c *ConcurrentSet) ExpectedPeer(src netaddr.IPv4) (PeerAS, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.ExpectedPeer(src)
}

// RecordLegal notes a vouched source and reports whether it was promoted
// into peer's EIA set on this call.
func (c *ConcurrentSet) RecordLegal(peer PeerAS, src netaddr.IPv4) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.RecordLegal(peer, src)
}

// AddPrefix records that sources inside p are expected at peer.
func (c *ConcurrentSet) AddPrefix(peer PeerAS, p netaddr.Prefix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.AddPrefix(peer, p)
}

// Train initializes EIA sets from observed traffic (see Set.Train).
func (c *ConcurrentSet) Train(obs []TrainingSource, maskBits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Train(obs, maskBits)
}

// PendingCount exposes the promotion progress for a source subnet at peer.
func (c *ConcurrentSet) PendingCount(peer PeerAS, src netaddr.IPv4) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.PendingCount(peer, src)
}

// Len returns the total number of prefixes across all peers.
func (c *ConcurrentSet) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Len()
}

// PeerPrefixCount returns how many prefixes map to peer.
func (c *ConcurrentSet) PeerPrefixCount(peer PeerAS) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.PeerPrefixCount(peer)
}

// Peers returns the peer ASes with at least one prefix, ascending.
func (c *ConcurrentSet) Peers() []PeerAS {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Peers()
}

// WriteTo serializes the wrapped set in the text format of Set.WriteTo.
func (c *ConcurrentSet) WriteTo(w io.Writer) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.WriteTo(w)
}
