package eia

import (
	"io"
	"sync"

	"infilter/internal/netaddr"
	"infilter/internal/telemetry"
)

// Metrics are the EIA runtime counters: Check outcomes split into hits
// (expected ingress) and misses (wrong peer or unknown source), plus
// completed promotions. All counters are shared across every shard that
// uses the set — increments are single atomics, so sharing adds no lock.
type Metrics struct {
	Hits       *telemetry.Counter
	Misses     *telemetry.Counter
	Promotions *telemetry.Counter
}

// NewMetrics registers the EIA counters on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Hits:       r.Counter("infilter_eia_hits_total", "EIA checks whose source matched the observed peer's set."),
		Misses:     r.Counter("infilter_eia_misses_total", "EIA checks flagged suspect (wrong peer or unknown source)."),
		Promotions: r.Counter("infilter_eia_promotions_total", "Vouched sources promoted into a peer's EIA set."),
	}
}

// ConcurrentSet wraps a Set for shared use by concurrent analysis shards.
// The EIA set is read-mostly at run time — the hot path is Check, a pure
// longest-prefix lookup — while the only writers are promotions of
// repeatedly-vouched sources (RecordLegal) and operator preloads. An
// RWMutex therefore keeps lookups uncontended: Check and the other
// read-side accessors take the read lock; RecordLegal, AddPrefix and Train
// take the write lock.
//
// All methods are safe for concurrent use. The wrapped Set must not be
// used directly while the ConcurrentSet is shared.
type ConcurrentSet struct {
	mu      sync.RWMutex
	s       *Set
	metrics *Metrics
}

// NewConcurrentSet wraps set; a nil set gets a fresh empty Set with the
// default Config.
func NewConcurrentSet(set *Set) *ConcurrentSet {
	if set == nil {
		set = NewSet(Config{})
	}
	return &ConcurrentSet{s: set}
}

// SetMetrics installs runtime counters (nil disables). Like the alert
// sink of the engines, it must be called before the set is shared with
// concurrent checkers.
func (c *ConcurrentSet) SetMetrics(m *Metrics) { c.metrics = m }

// Check classifies a flow's source address observed at peer.
func (c *ConcurrentSet) Check(peer PeerAS, src netaddr.IPv4) Verdict {
	c.mu.RLock()
	v := c.s.Check(peer, src)
	c.mu.RUnlock()
	if m := c.metrics; m != nil {
		if v == Match {
			m.Hits.Inc()
		} else {
			m.Misses.Inc()
		}
	}
	return v
}

// ExpectedPeer returns the peer AS whose EIA set contains src.
func (c *ConcurrentSet) ExpectedPeer(src netaddr.IPv4) (PeerAS, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.ExpectedPeer(src)
}

// RecordLegal notes a vouched source and reports whether it was promoted
// into peer's EIA set on this call.
func (c *ConcurrentSet) RecordLegal(peer PeerAS, src netaddr.IPv4) bool {
	c.mu.Lock()
	promoted := c.s.RecordLegal(peer, src)
	c.mu.Unlock()
	if promoted {
		if m := c.metrics; m != nil {
			m.Promotions.Inc()
		}
	}
	return promoted
}

// AddPrefix records that sources inside p are expected at peer.
func (c *ConcurrentSet) AddPrefix(peer PeerAS, p netaddr.Prefix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.AddPrefix(peer, p)
}

// Train initializes EIA sets from observed traffic (see Set.Train).
func (c *ConcurrentSet) Train(obs []TrainingSource, maskBits int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Train(obs, maskBits)
}

// PendingCount exposes the promotion progress for a source subnet at peer.
func (c *ConcurrentSet) PendingCount(peer PeerAS, src netaddr.IPv4) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.PendingCount(peer, src)
}

// Len returns the total number of prefixes across all peers.
func (c *ConcurrentSet) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Len()
}

// PeerPrefixCount returns how many prefixes map to peer.
func (c *ConcurrentSet) PeerPrefixCount(peer PeerAS) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.PeerPrefixCount(peer)
}

// Peers returns the peer ASes with at least one prefix, ascending.
func (c *ConcurrentSet) Peers() []PeerAS {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.Peers()
}

// WriteTo serializes the wrapped set in the text format of Set.WriteTo.
func (c *ConcurrentSet) WriteTo(w io.Writer) (int64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.s.WriteTo(w)
}
