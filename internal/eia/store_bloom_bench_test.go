package eia

import (
	"math/rand"
	"testing"

	"infilter/internal/netaddr"
)

// BenchmarkCheckBatchPeerMatch measures the Bloom tier's worst case: a
// 256-record single-peer batch of expected traffic, where every probe
// that runs is wasted work and the adaptive bypass is what keeps the
// tier's tax near zero. Contrast the exact sub-benchmark against bloom
// to read the residual per-record cost of having the tier enabled.
func BenchmarkCheckBatchPeerMatch(b *testing.B) {
	const n = 256
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"exact", Config{}},
		{"bloom", Config{BloomBitsPerEntry: 10}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			set, inserted := trainRandom(rng, tc.cfg, 600, 1)
			st := NewStore(set)
			srcs := make([]netaddr.Addr, n)
			out := make([]Verdict, n)
			for i := range srcs {
				srcs[i] = v4In(inserted[i%len(inserted)].Prefix, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.CheckBatchPeer(0, srcs, out)
			}
		})
	}
}
