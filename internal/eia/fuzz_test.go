package eia

import (
	"bytes"
	"strings"
	"testing"

	"infilter/internal/netaddr"
)

// FuzzCheckpointRoundTrip throws arbitrary bytes at the warm-restart
// checkpoint loader. Corrupt or truncated checkpoints must be rejected
// with an error, never a panic — a daemon restarting from a half-written
// state dir must fail loudly, not crash or load garbage. Inputs the
// loader accepts must survive a full round trip: re-serializing the
// loaded set and loading it again yields identical bytes and size.
func FuzzCheckpointRoundTrip(f *testing.F) {
	// Seed corpus: a real checkpoint, the bare header, truncations and
	// near-miss corruptions of each.
	seed := NewSet(Config{})
	seed.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	seed.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))
	seed.AddPrefix(3, netaddr.MustParsePrefix("4.2.101.0/24"))
	var buf bytes.Buffer
	if err := seed.WriteCheckpoint(&buf); err != nil {
		f.Fatal(err)
	}
	raw := buf.Bytes()
	f.Add(raw)
	f.Add(raw[:len(raw)/2])                                          // truncated mid-row
	f.Add([]byte("# infilter-eia-checkpoint v1\n"))                  // header only (valid, empty)
	f.Add([]byte("# infilter-eia-checkpoint v2\n1 6.0.0.0/8\n"))     // future version
	f.Add([]byte("1 61.0.0.0/11\n"))                                 // headerless
	f.Add([]byte("# infilter-eia-checkpoint v1\n65536 6.0.0.0/8\n")) // peer AS overflow
	f.Add([]byte("# infilter-eia-checkpoint v1\n1 6.0.0.0/33\n"))    // bad mask
	f.Add(bytes.Repeat([]byte{0xff}, 64))                            // binary garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewSet(Config{})
		if err := ReadCheckpointInto(s, bytes.NewReader(data)); err != nil {
			return // rejected input: only panics are failures here
		}
		// Accepted: the loaded state must serialize and reload to a
		// fixed point.
		var out bytes.Buffer
		if err := s.WriteCheckpoint(&out); err != nil {
			t.Fatalf("re-serialize accepted checkpoint: %v", err)
		}
		reloaded := NewSet(Config{})
		if err := ReadCheckpointInto(reloaded, strings.NewReader(out.String())); err != nil {
			t.Fatalf("reload of canonical checkpoint: %v", err)
		}
		if reloaded.Len() != s.Len() {
			t.Fatalf("reload has %d prefixes, first load %d", reloaded.Len(), s.Len())
		}
		var out2 bytes.Buffer
		if err := reloaded.WriteCheckpoint(&out2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("canonical form not stable:\n%q\nvs\n%q", out.String(), out2.String())
		}
	})
}
