package eia

import (
	"infilter/internal/netaddr"
)

// Merge returns the union of two EIA sets as a new Set, leaving both
// inputs untouched. It is the convergence operator of cluster mode: each
// node folds the snapshots its peers replicate into its own state, and
// because Merge is commutative, associative and idempotent, every node
// that has seen every snapshot converges to the same EIA state no matter
// the delivery order or how often a snapshot is re-delivered.
//
// A prefix present in exactly one input keeps its peer. A prefix present
// in both with different peers is a conflict — two observation points
// disagree about which ingress carries the subnet — and resolves
// deterministically to the numerically lowest peer AS. Lowest-peer-AS is
// the tie-break (rather than, say, most-recently-written) because it is
// the only order-free rule available: the checkpoint format carries no
// per-prefix hit counts or timestamps to arbitrate with, and any rule
// that depends on merge order would break the convergence guarantee
// above.
//
// Merge is a pure function on copy-on-write tries: the larger input's
// trie is reused as the base and only the overlay's differing paths are
// path-copied (InsertPersistent), so merging a mostly-identical
// replicated snapshot costs little and shares almost every subtree with
// the base input. The returned Set therefore shares structure with its
// inputs — like a Set adopted by NewStore, the inputs must not be
// mutated afterwards (decode a fresh Set per replication round, as the
// cluster receiver does).
//
// The result inherits a's Config. Pending promotion counters are
// transient, node-local state and are not merged.
func Merge(a, b *Set) *Set {
	base, overlay := a, b
	if base.index.Len() < overlay.index.Len() {
		base, overlay = overlay, base
	}
	index := base.index
	per := clonePeerCounts(base.perPeer)
	overlay.index.Walk(func(p netaddr.Prefix, peer PeerAS) bool {
		if prev, ok := index.Get(p); ok {
			if prev <= peer {
				return true // base already holds the winner
			}
			per[prev]--
			per[peer]++
		} else {
			per[peer]++
		}
		index = index.InsertPersistent(p, peer)
		return true
	})
	return &Set{
		cfg:     a.cfg,
		index:   index,
		perPeer: per,
		pending: make(map[pendingKey]int),
	}
}
