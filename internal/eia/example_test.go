package eia_test

import (
	"fmt"

	"infilter/internal/eia"
	"infilter/internal/netaddr"
)

// Example walks the Basic InFilter check: sources are expected at the peer
// AS their block was trained on; a spoofed source shows up at the wrong
// ingress.
func Example() {
	set := eia.NewSet(eia.Config{})
	set.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	set.AddPrefix(2, netaddr.MustParsePrefix("70.0.0.0/11"))

	legit := netaddr.MustParseAddr("61.5.5.5")
	spoofed := netaddr.MustParseAddr("70.9.9.9")

	fmt.Println("61.5.5.5 at peer 1:", set.Check(1, legit))
	fmt.Println("70.9.9.9 at peer 1:", set.Check(1, spoofed))
	fmt.Println("9.9.9.9  at peer 1:", set.Check(1, netaddr.MustParseAddr("9.9.9.9")))
	// Output:
	// 61.5.5.5 at peer 1: match
	// 70.9.9.9 at peer 1: wrong-peer
	// 9.9.9.9  at peer 1: unknown
}
