package eia

import (
	"io"
	"sync"
	"sync/atomic"

	"infilter/internal/netaddr"
	"infilter/internal/telemetry"
)

// Metrics are the EIA runtime counters: Check outcomes split into hits
// (expected ingress) and misses (wrong peer or unknown source), plus
// completed promotions. The hit and miss series carry a `family` label
// ("4" or "6") keyed on the checked source address, so a dual-stack
// deployment can see per-family verdict rates; summing over the label
// recovers the pre-split totals. All counters are shared across every
// shard that uses the store — increments are single atomics, so sharing
// adds no lock.
//
// The Bloom* series observes the probabilistic fast tier (when enabled):
// fastpath counts checks the filters resolved without a trie walk,
// fallbacks counts checks that had to confirm exactly, and false
// positives counts fallback walks that ended Unknown anyway — i.e. walks
// a perfect filter would have skipped, so fp/fallbacks is the observed
// false-positive rate. Bypassed counts batch checks that skipped the
// probe entirely after a run of consecutive fallbacks told the batch it
// was carrying expected traffic the tier cannot help with. The gauges
// are refreshed by the writer at each snapshot publication: fill
// permille of the global filter and total bits across every filter in
// the tier.
type Metrics struct {
	Hits       telemetry.FamilyCounter
	Misses     telemetry.FamilyCounter
	Promotions *telemetry.Counter

	BloomFastpath       *telemetry.Counter
	BloomFallbacks      *telemetry.Counter
	BloomFalsePositives *telemetry.Counter
	BloomBypassed       *telemetry.Counter
	BloomFillPermille   *telemetry.Gauge
	BloomBits           *telemetry.Gauge
}

// NewMetrics registers the EIA counters on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Hits:       r.FamilyCounter("infilter_eia_hits_total", "EIA checks whose source matched the observed peer's set."),
		Misses:     r.FamilyCounter("infilter_eia_misses_total", "EIA checks flagged suspect (wrong peer or unknown source)."),
		Promotions: r.Counter("infilter_eia_promotions_total", "Vouched sources promoted into a peer's EIA set."),

		BloomFastpath:       r.Counter("infilter_eia_bloom_fastpath_total", "EIA checks resolved by the Bloom tier without a trie walk (provably unknown sources)."),
		BloomFallbacks:      r.Counter("infilter_eia_bloom_fallbacks_total", "EIA checks the Bloom tier deferred to an exact trie walk."),
		BloomFalsePositives: r.Counter("infilter_eia_bloom_false_positives_total", "Bloom-tier fallback walks that ended Unknown (filter false positives)."),
		BloomBypassed:       r.Counter("infilter_eia_bloom_bypassed_total", "Batch checks that skipped the Bloom probe after consecutive in-batch fallbacks."),
		BloomFillPermille:   r.Gauge("infilter_eia_bloom_fill_permille", "Set-bit permille of the global Bloom filter, refreshed at snapshot publication."),
		BloomBits:           r.Gauge("infilter_eia_bloom_bits", "Total bits across all Bloom-tier filters, refreshed at snapshot publication."),
	}
}

// snapshot is one immutable published version of the EIA state. Its trie
// is extended exclusively through persistent inserts, its perPeer map is
// never written after publication, and its Bloom tier (nil unless
// Config.BloomBitsPerEntry enables it) is derived from the trie before
// the snapshot is stored — so readers may traverse all of it freely
// while the writer assembles a successor.
type snapshot struct {
	index   *netaddr.PrefixTrie[PeerAS]
	perPeer map[PeerAS]int
	tier    *bloomTier
}

// Store is the shared EIA state for concurrent analysis shards, built as
// a copy-on-write snapshot store. The hot path — Check, one longest-prefix
// lookup per flow (paper §5.2) — is a pure lock-free read: it loads the
// current snapshot through an atomic pointer and walks an immutable trie,
// acquiring no mutex and issuing no writes beyond its metric counters.
//
// All mutation funnels through a single writer side guarded by one
// mutex: promotions of repeatedly-vouched sources (RecordLegal), operator
// preloads (AddPrefix/AddPrefixes) and bulk training (Train). The writer
// prepares a new snapshot — path-copying only the trie nodes it touches,
// sharing every unchanged subtree — and publishes it with one atomic
// pointer swap. Batch mutations build the whole batch against one base
// and publish once.
//
// Readers therefore never block and never retry; the price is a staleness
// window: a Check racing a promotion may classify against the pre-swap
// snapshot. That is exactly the tolerance the paper's promotion semantics
// already grant — a source being vouched was, by definition, still
// suspect a moment earlier, so one extra WrongPeer/Unknown verdict during
// the swap is indistinguishable from the flow having arrived slightly
// sooner.
//
// All methods are safe for concurrent use. The Set passed to NewStore
// must not be used directly afterwards (the store adopts its trie).
type Store struct {
	cfg     Config
	snap    atomic.Pointer[snapshot]
	metrics *Metrics

	mu      sync.Mutex // writer side: pending counters + snapshot publication
	pending map[pendingKey]int
}

// NewStore adopts set's contents as the first published snapshot; a nil
// set gets a fresh empty Set with the default Config.
func NewStore(set *Set) *Store {
	if set == nil {
		set = NewSet(Config{})
	}
	per := make(map[PeerAS]int, len(set.perPeer))
	for p, n := range set.perPeer {
		per[p] = n
	}
	st := &Store{
		cfg:     set.cfg,
		pending: make(map[pendingKey]int, len(set.pending)),
	}
	for k, v := range set.pending {
		st.pending[k] = v
	}
	// The tier is always rebuilt from the adopted trie, never carried
	// over: a Set restored from a checkpoint (which serializes only
	// prefixes) gets correct filters here for free on warm restart.
	st.snap.Store(&snapshot{
		index:   set.index,
		perPeer: per,
		tier:    buildBloomTier(set.index, per, st.cfg),
	})
	return st
}

// SetMetrics installs runtime counters (nil disables). Like the alert
// sink of the engines, it must be called before the store is shared with
// concurrent checkers.
func (c *Store) SetMetrics(m *Metrics) {
	c.metrics = m
	if t := c.snap.Load().tier; t != nil && m != nil {
		m.BloomFillPermille.Set(int64(t.global.FillRatio() * 1000))
		m.BloomBits.Set(t.totalBits())
	}
}

// Check classifies a flow's source address observed at peer. It is the
// per-flow hot path and performs no locking: one atomic snapshot load,
// then — when the Bloom tier is enabled — a handful of cache-line probes
// that either prove the source unknown outright or defer to the exact
// longest-prefix walk over the immutable trie. Verdicts are identical
// with the tier on or off; only the cost profile changes.
func (c *Store) Check(peer PeerAS, src netaddr.Addr) Verdict {
	snap := c.snap.Load()
	m := c.metrics
	if t := snap.tier; t != nil {
		if v, ok := t.probe(t.peerFilter(peer), src); ok {
			if m != nil {
				m.BloomFastpath.Inc()
				m.Misses.Pick(src.Is6()).Inc() // fast path only ever yields Unknown
			}
			return v
		}
		if m != nil {
			m.BloomFallbacks.Inc()
		}
	}
	expected, ok := snap.index.Lookup(src)
	var v Verdict
	switch {
	case !ok:
		v = Unknown
	case expected == peer:
		v = Match
	default:
		v = WrongPeer
	}
	if m != nil {
		if v == Match {
			m.Hits.Pick(src.Is6()).Inc()
		} else {
			m.Misses.Pick(src.Is6()).Inc()
		}
		if v == Unknown && snap.tier != nil {
			m.BloomFalsePositives.Inc()
		}
	}
	return v
}

// CheckBatch classifies a batch of (peer, source) observations against a
// single published snapshot: one atomic load amortized over the whole
// batch, then one longest-prefix walk per entry over the same immutable
// trie. The three slices must have equal length; out[i] receives the
// verdict for (peers[i], srcs[i]).
//
// Unlike Check, CheckBatch does NOT fold outcomes into the hit/miss
// counters: a batched pipeline may refresh the still-unconsumed tail of a
// batch after a mid-batch promotion swaps in a new snapshot, and counting
// at check time would then count those entries twice. Consumers count
// each verdict exactly once, at consumption time, via CountVerdict.
//
// When the Bloom tier is enabled, batch checks adapt to the batch's
// traffic mix: after bloomBypassAfter consecutive probes deferred to the
// exact walk, the rest of the batch skips the probe (see the constant's
// doc). Verdicts are identical with or without the bypass.
func (c *Store) CheckBatch(peers []PeerAS, srcs []netaddr.Addr, out []Verdict) {
	if len(peers) != len(srcs) || len(srcs) != len(out) {
		panic("eia: CheckBatch slice lengths differ")
	}
	snap := c.snap.Load()
	index := snap.index
	if t := snap.tier; t != nil {
		var fast, fall, fp int64
		i, miss := 0, 0
		for ; i < len(srcs) && miss < bloomBypassAfter; i++ {
			src := srcs[i]
			if v, ok := t.probe(t.peerFilter(peers[i]), src); ok {
				out[i] = v
				fast++
				miss = 0
				continue
			}
			fall++
			miss++
			expected, ok := index.Lookup(src)
			switch {
			case !ok:
				out[i] = Unknown
				fp++
			case expected == peers[i]:
				out[i] = Match
			default:
				out[i] = WrongPeer
			}
		}
		// Bypass: the remainder runs the same lean walk-only loop as the
		// tier-free path — segmenting (rather than branching per record)
		// keeps the inlined trie walk's code tight for the common all-
		// expected batch.
		c.addBloomCounts(fast, fall, fp, int64(len(srcs)-i))
		srcs, peers, out = srcs[i:], peers[i:], out[i:]
	}
	for i, src := range srcs {
		expected, ok := index.Lookup(src)
		switch {
		case !ok:
			out[i] = Unknown
		case expected == peers[i]:
			out[i] = Match
		default:
			out[i] = WrongPeer
		}
	}
}

// CheckBatchPeer is CheckBatch for the common ingest shape: a whole
// batch observed at one peer (a local export port maps to one peering
// link). One atomic snapshot load covers the batch; out[i] receives the
// verdict for (peer, srcs[i]). Like CheckBatch it does not touch the
// hit/miss counters — consumers count at consumption time.
func (c *Store) CheckBatchPeer(peer PeerAS, srcs []netaddr.Addr, out []Verdict) {
	if len(srcs) != len(out) {
		panic("eia: CheckBatchPeer slice lengths differ")
	}
	snap := c.snap.Load()
	index := snap.index
	if t := snap.tier; t != nil {
		hoisted := t.peerFilter(peer) // one lookup covers the batch
		var fast, fall, fp int64
		i, miss := 0, 0
		for ; i < len(srcs) && miss < bloomBypassAfter; i++ {
			src := srcs[i]
			if v, ok := t.probe(hoisted, src); ok {
				out[i] = v
				fast++
				miss = 0
				continue
			}
			fall++
			miss++
			expected, ok := index.Lookup(src)
			switch {
			case !ok:
				out[i] = Unknown
				fp++
			case expected == peer:
				out[i] = Match
			default:
				out[i] = WrongPeer
			}
		}
		// Bypass: fall through to the lean walk-only loop below for the
		// remainder (see CheckBatch).
		c.addBloomCounts(fast, fall, fp, int64(len(srcs)-i))
		srcs, out = srcs[i:], out[i:]
	}
	for i, src := range srcs {
		expected, ok := index.Lookup(src)
		switch {
		case !ok:
			out[i] = Unknown
		case expected == peer:
			out[i] = Match
		default:
			out[i] = WrongPeer
		}
	}
}

// bloomBypassAfter is the adaptive-bypass threshold for batch checks:
// after this many consecutive probes deferred to the exact walk, the
// rest of the batch skips the probe and goes straight to the trie. A
// fallback streak means the batch is carrying expected traffic — the one
// case the tier cannot shortcut, where probing is pure tax — while a
// spoofed-flood batch resolves on the fast path and resets the streak
// immediately. The bypass affects cost only, never verdicts: the walk it
// falls through to is the same exact walk a fallback performs. State is
// per-call, so every batch starts probing again.
const bloomBypassAfter = 8

// addBloomCounts settles a batch's Bloom-tier diagnostics in at most
// four atomic adds (telemetry.Counter.Add ignores non-positive n).
func (c *Store) addBloomCounts(fast, fall, fp, bypassed int64) {
	if m := c.metrics; m != nil {
		m.BloomFastpath.Add(fast)
		m.BloomFallbacks.Add(fall)
		m.BloomFalsePositives.Add(fp)
		m.BloomBypassed.Add(bypassed)
	}
}

// CountVerdict folds one consumed verdict into the hit/miss counters,
// exactly as Check does internally, attributed to the checked source's
// address family. It pairs with CheckBatch: call it once per verdict
// the batch actually acted on.
func (c *Store) CountVerdict(v Verdict, fam netaddr.Family) {
	if m := c.metrics; m != nil {
		if v == Match {
			m.Hits.Pick(fam == netaddr.FamilyV6).Inc()
		} else {
			m.Misses.Pick(fam == netaddr.FamilyV6).Inc()
		}
	}
}

// AddVerdictCounts folds a batch's consumed verdicts for one address
// family into the hit/miss counters in two atomic adds: batched
// pipelines tally hits (Match) and misses (everything else) per family
// locally while consuming and settle once per family per batch instead
// of once per record.
func (c *Store) AddVerdictCounts(fam netaddr.Family, hits, misses int64) {
	if m := c.metrics; m != nil {
		v6 := fam == netaddr.FamilyV6
		m.Hits.Pick(v6).Add(hits)
		m.Misses.Pick(v6).Add(misses)
	}
}

// ExpectedPeer returns the peer AS whose EIA set contains src, by
// longest-prefix match against the current snapshot (lock-free).
func (c *Store) ExpectedPeer(src netaddr.Addr) (PeerAS, bool) {
	return c.snap.Load().index.Lookup(src)
}

// Assignment maps one prefix to the peer AS expected to carry its
// traffic; batches of them are applied under a single snapshot swap.
type Assignment struct {
	Peer   PeerAS
	Prefix netaddr.Prefix
}

// publishLocked swaps in a snapshot with the given prefixes added on top
// of the current one, preserving the re-homing semantics of Set.AddPrefix.
// Callers hold c.mu. The whole batch lands in one pointer swap.
//
// When the Bloom tier is enabled, the successor tier is derived here as
// well — normally by cloning only the filters the applied assignments
// touch, or by a full rebuild from the new trie when a filter outgrows
// its sized capacity — and the tier gauges are refreshed. A re-homed
// prefix leaves its key in the old peer's filter; that stale key can
// only cause a false positive (an extra exact walk), never a wrong
// verdict, and the next overflow-triggered rebuild sheds it.
func (c *Store) publishLocked(assign []Assignment) {
	cur := c.snap.Load()
	index := cur.index
	per := cur.perPeer
	copied := false
	applied := assign[:0:0]
	for _, a := range assign {
		if prev, ok := index.Get(a.Prefix); ok {
			if prev == a.Peer {
				continue
			}
			if !copied {
				per, copied = clonePeerCounts(per), true
			}
			per[prev]--
			per[a.Peer]++
		} else {
			if !copied {
				per, copied = clonePeerCounts(per), true
			}
			per[a.Peer]++
		}
		index = index.InsertPersistent(a.Prefix, a.Peer)
		applied = append(applied, a)
	}
	if !copied {
		return // every assignment was already in place
	}
	tier := cur.tier
	if tier != nil {
		tier = tier.withAssignments(applied, index, per, c.cfg)
	}
	c.snap.Store(&snapshot{index: index, perPeer: per, tier: tier})
	if m := c.metrics; m != nil && tier != nil {
		m.BloomFillPermille.Set(int64(tier.global.FillRatio() * 1000))
		m.BloomBits.Set(tier.totalBits())
	}
}

func clonePeerCounts(per map[PeerAS]int) map[PeerAS]int {
	out := make(map[PeerAS]int, len(per)+1)
	for p, n := range per {
		out[p] = n
	}
	return out
}

// RecordLegal notes a vouched source and reports whether it was promoted
// into peer's EIA set on this call (§5.2(a)). Promotion publishes a new
// snapshot; concurrent Checks keep reading the previous one until the
// swap lands.
func (c *Store) RecordLegal(peer PeerAS, src netaddr.Addr) bool {
	pfx := netaddr.MustPrefix(src, c.cfg.promoteBits(src.Family()))
	k := pendingKey{peer: peer, pfx: pfx}
	c.mu.Lock()
	c.pending[k]++
	promoted := c.pending[k] >= c.cfg.PromoteThreshold
	if promoted {
		delete(c.pending, k)
		c.publishLocked([]Assignment{{Peer: peer, Prefix: pfx}})
	}
	c.mu.Unlock()
	if promoted {
		if m := c.metrics; m != nil {
			m.Promotions.Inc()
		}
	}
	return promoted
}

// AddPrefix records that sources inside p are expected at peer. Inserting
// the same prefix for a different peer re-homes it (route change
// handling), exactly as Set.AddPrefix does.
func (c *Store) AddPrefix(peer PeerAS, p netaddr.Prefix) {
	c.AddPrefixes([]Assignment{{Peer: peer, Prefix: p}})
}

// AddPrefixes applies a batch of assignments under one snapshot swap:
// readers observe either none or all of the batch.
func (c *Store) AddPrefixes(assign []Assignment) {
	c.mu.Lock()
	c.publishLocked(assign)
	c.mu.Unlock()
}

// MergeSet folds a remote EIA set into the store with the semantics of
// Merge(local, remote): prefixes absent locally are added, and a prefix
// present in both re-homes only when the remote peer AS is numerically
// lower (the deterministic conflict rule — see Merge). The whole merge
// lands as one snapshot swap through the normal publication path, so the
// Bloom tier and every concurrent Check stay consistent: readers observe
// either the pre-merge or the post-merge snapshot, never a partial
// merge. It reports how many prefixes were added and how many re-homed.
//
// This is the receive side of cluster replication: the remote set is a
// freshly decoded checkpoint, and folding it in never blocks the Check
// hot path (checks are lock-free snapshot reads; only other writers
// briefly serialize behind the merge).
func (c *Store) MergeSet(remote *Set) (added, rehomed int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.snap.Load()
	var assign []Assignment
	remote.index.Walk(func(p netaddr.Prefix, peer PeerAS) bool {
		if prev, ok := cur.index.Get(p); ok {
			if peer < prev {
				rehomed++
				assign = append(assign, Assignment{Peer: peer, Prefix: p})
			}
		} else {
			added++
			assign = append(assign, Assignment{Peer: peer, Prefix: p})
		}
		return true
	})
	if len(assign) > 0 {
		c.publishLocked(assign)
	}
	return added, rehomed
}

// Train initializes EIA sets from observed traffic the way Set.Train
// does, publishing the whole training set as one snapshot swap.
func (c *Store) Train(obs []TrainingSource, maskBits int) {
	if maskBits <= 0 {
		maskBits = c.cfg.PromoteMaskBits
	}
	assign := make([]Assignment, len(obs))
	for i, o := range obs {
		bits := maskBits
		if o.Src.Family() == netaddr.FamilyV6 {
			bits = c.cfg.PromoteMaskBitsV6
		}
		assign[i] = Assignment{Peer: o.Peer, Prefix: netaddr.MustPrefix(o.Src, bits)}
	}
	c.AddPrefixes(assign)
}

// PendingCount exposes the promotion progress for a source subnet at peer.
func (c *Store) PendingCount(peer PeerAS, src netaddr.Addr) int {
	k := pendingKey{peer: peer, pfx: netaddr.MustPrefix(src, c.cfg.promoteBits(src.Family()))}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending[k]
}

// Len returns the total number of prefixes across all peers.
func (c *Store) Len() int { return c.snap.Load().index.Len() }

// PeerPrefixCount returns how many prefixes map to peer.
func (c *Store) PeerPrefixCount(peer PeerAS) int { return c.snap.Load().perPeer[peer] }

// Peers returns the peer ASes with at least one prefix, ascending.
func (c *Store) Peers() []PeerAS { return peersOf(c.snap.Load().perPeer) }

// WriteTo serializes the current snapshot in the text format of
// Set.WriteTo. It reads one consistent snapshot without blocking writers
// or the Check hot path.
func (c *Store) WriteTo(w io.Writer) (int64, error) {
	return writeRows(w, c.snap.Load().index, false)
}

// WriteCheckpoint writes the current snapshot as a versioned checkpoint
// (see Set.WriteCheckpoint), again without blocking the hot path.
func (c *Store) WriteCheckpoint(w io.Writer) error {
	return writeCheckpoint(w, c.snap.Load().index)
}
