package eia

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"infilter/internal/netaddr"
)

// randomDualStackSet builds a random EIA set mixing v4 and v6 prefixes,
// with deliberate peer collisions (small peer space, small address pool)
// so merges exercise the conflict rule, not just disjoint unions.
func randomDualStackSet(rng *rand.Rand, n int) *Set {
	s := NewSet(Config{})
	for i := 0; i < n; i++ {
		peer := PeerAS(rng.Intn(5) + 1)
		if rng.Intn(2) == 0 {
			// Small v4 pool: addresses collide across sets often.
			addr := netaddr.IPv4(rng.Uint32() & 0x0000ffff)
			s.AddPrefix(peer, netaddr.MustPrefix(addr.Addr(), rng.Intn(25)+8))
		} else {
			var b [16]byte
			b[0], b[1] = 0x20, 0x01
			b[7] = byte(rng.Intn(4))
			b[15] = byte(rng.Intn(8))
			s.AddPrefix(peer, netaddr.MustPrefix(netaddr.AddrFrom16(b), rng.Intn(81)+48))
		}
	}
	return s
}

// checkpointBytes canonicalizes a set as its v2 checkpoint encoding; two
// sets are equal iff their encodings are byte-identical (rows are
// sorted, so the encoding is canonical).
func checkpointBytes(t *testing.T, s *Set) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	return buf.Bytes()
}

func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		a := randomDualStackSet(rng, rng.Intn(60))
		b := randomDualStackSet(rng, rng.Intn(60))
		ab := checkpointBytes(t, Merge(a, b))
		ba := checkpointBytes(t, Merge(b, a))
		if !bytes.Equal(ab, ba) {
			t.Fatalf("trial %d: Merge(a,b) != Merge(b,a)\n--- ab ---\n%s--- ba ---\n%s", trial, ab, ba)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		a := randomDualStackSet(rng, rng.Intn(40))
		b := randomDualStackSet(rng, rng.Intn(40))
		c := randomDualStackSet(rng, rng.Intn(40))
		left := checkpointBytes(t, Merge(Merge(a, b), c))
		right := checkpointBytes(t, Merge(a, Merge(b, c)))
		if !bytes.Equal(left, right) {
			t.Fatalf("trial %d: (a∪b)∪c != a∪(b∪c)\n--- left ---\n%s--- right ---\n%s", trial, left, right)
		}
	}
}

func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		a := randomDualStackSet(rng, rng.Intn(80))
		want := checkpointBytes(t, a)
		if got := checkpointBytes(t, Merge(a, a)); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: Merge(a,a) != a\n--- got ---\n%s--- want ---\n%s", trial, got, want)
		}
		// Re-merging an already-folded set must also be a fixpoint.
		b := randomDualStackSet(rng, rng.Intn(80))
		ab := Merge(a, b)
		want = checkpointBytes(t, ab)
		if got := checkpointBytes(t, Merge(ab, b)); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: Merge(a∪b, b) != a∪b", trial)
		}
	}
}

func TestMergeLeavesInputsUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a := randomDualStackSet(rng, 40)
	b := randomDualStackSet(rng, 40)
	beforeA, beforeB := checkpointBytes(t, a), checkpointBytes(t, b)
	Merge(a, b)
	if !bytes.Equal(checkpointBytes(t, a), beforeA) {
		t.Error("Merge mutated its first input")
	}
	if !bytes.Equal(checkpointBytes(t, b), beforeB) {
		t.Error("Merge mutated its second input")
	}
}

func TestMergeConflictResolvesToLowestPeer(t *testing.T) {
	p4 := netaddr.MustParsePrefix("10.1.0.0/16")
	p6 := netaddr.MustParsePrefix("2001:db8::/48")

	a := NewSet(Config{})
	a.AddPrefix(3, p4)
	a.AddPrefix(2, p6)
	b := NewSet(Config{})
	b.AddPrefix(1, p4)
	b.AddPrefix(5, p6)

	for name, m := range map[string]*Set{"ab": Merge(a, b), "ba": Merge(b, a)} {
		if got, _ := m.ExpectedPeer(netaddr.MustParseAddr("10.1.2.3")); got != 1 {
			t.Errorf("%s: v4 conflict resolved to peer %d, want 1", name, got)
		}
		if got, _ := m.ExpectedPeer(netaddr.MustParseAddr("2001:db8::9")); got != 2 {
			t.Errorf("%s: v6 conflict resolved to peer %d, want 2", name, got)
		}
		if m.PeerPrefixCount(3) != 0 || m.PeerPrefixCount(5) != 0 {
			t.Errorf("%s: losing peers still count prefixes: peer3=%d peer5=%d",
				name, m.PeerPrefixCount(3), m.PeerPrefixCount(5))
		}
		if m.Len() != 2 {
			t.Errorf("%s: Len = %d, want 2", name, m.Len())
		}
	}
}

// TestMergeGoldenCheckpointRoundTrip pins the byte-level contract of the
// replication path: merging two fixed dual-stack sets and checkpointing
// the result must produce exactly the committed v2 golden bytes, and
// decoding those bytes through the single codec entry point and
// re-encoding must round-trip byte-identically. A change to the row
// codec, the sort order or the merge tie-break shows up here as a golden
// diff, not as silent cluster divergence.
func TestMergeGoldenCheckpointRoundTrip(t *testing.T) {
	a := NewSet(Config{})
	a.AddPrefix(2, netaddr.MustParsePrefix("4.0.0.0/8"))
	a.AddPrefix(3, netaddr.MustParsePrefix("10.1.0.0/16"))
	a.AddPrefix(1, netaddr.MustParsePrefix("2001:db8::/48"))
	b := NewSet(Config{})
	b.AddPrefix(1, netaddr.MustParsePrefix("10.1.0.0/16")) // conflict: 1 < 3 wins
	b.AddPrefix(4, netaddr.MustParsePrefix("192.0.2.0/24"))
	b.AddPrefix(4, netaddr.MustParsePrefix("2001:db8:ff::/64"))

	got := checkpointBytes(t, Merge(a, b))

	goldenPath := filepath.Join("testdata", "merge_checkpoint_v2.golden")
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("merged checkpoint differs from %s:\n--- got ---\n%s--- want ---\n%s",
			goldenPath, got, golden)
	}

	decoded, err := DecodeCheckpoint(Config{}, bytes.NewReader(golden))
	if err != nil {
		t.Fatalf("DecodeCheckpoint(golden): %v", err)
	}
	if again := checkpointBytes(t, decoded); !bytes.Equal(again, golden) {
		t.Fatalf("decode→re-encode not byte-identical:\n--- got ---\n%s--- want ---\n%s", again, golden)
	}
}

func TestDecodeCheckpointRejectsGarbage(t *testing.T) {
	if _, err := DecodeCheckpoint(Config{}, strings.NewReader("not a checkpoint\n")); err == nil {
		t.Error("DecodeCheckpoint accepted a headerless stream")
	}
}

func TestStoreMergeSet(t *testing.T) {
	local := NewSet(Config{})
	local.AddPrefix(3, netaddr.MustParsePrefix("10.1.0.0/16"))
	local.AddPrefix(1, netaddr.MustParsePrefix("4.0.0.0/8"))
	st := NewStore(local)

	remote := NewSet(Config{})
	remote.AddPrefix(1, netaddr.MustParsePrefix("10.1.0.0/16")) // re-homes (1 < 3)
	remote.AddPrefix(2, netaddr.MustParsePrefix("4.0.0.0/8"))   // loses (1 < 2)
	remote.AddPrefix(5, netaddr.MustParsePrefix("192.0.2.0/24"))
	remote.AddPrefix(5, netaddr.MustParsePrefix("2001:db8::/48"))

	added, rehomed := st.MergeSet(remote)
	if added != 2 || rehomed != 1 {
		t.Fatalf("MergeSet = (added %d, rehomed %d), want (2, 1)", added, rehomed)
	}
	if v := st.Check(1, netaddr.MustParseAddr("10.1.2.3")); v != Match {
		t.Errorf("re-homed prefix: Check(1) = %v, want match", v)
	}
	if v := st.Check(1, netaddr.MustParseAddr("4.4.4.4")); v != Match {
		t.Errorf("conflict loser applied: Check(1, 4.4.4.4) = %v, want match", v)
	}
	if v := st.Check(5, netaddr.MustParseAddr("2001:db8::7")); v != Match {
		t.Errorf("added v6 prefix: Check(5) = %v, want match", v)
	}

	// Idempotent: folding the same snapshot again is a no-op.
	added, rehomed = st.MergeSet(remote)
	if added != 0 || rehomed != 0 {
		t.Errorf("second MergeSet = (added %d, rehomed %d), want (0, 0)", added, rehomed)
	}

	// The store's state must equal the pure Merge of the inputs.
	var fromStore bytes.Buffer
	if err := st.WriteCheckpoint(&fromStore); err != nil {
		t.Fatal(err)
	}
	localAgain := NewSet(Config{})
	localAgain.AddPrefix(3, netaddr.MustParsePrefix("10.1.0.0/16"))
	localAgain.AddPrefix(1, netaddr.MustParsePrefix("4.0.0.0/8"))
	want := checkpointBytes(t, Merge(localAgain, remote))
	if !bytes.Equal(fromStore.Bytes(), want) {
		t.Errorf("MergeSet result differs from Merge:\n--- store ---\n%s--- merge ---\n%s",
			fromStore.Bytes(), want)
	}
}

// TestStoreMergeSetBloomTier proves a merged snapshot keeps the Bloom
// tier consistent: post-merge checks through the tier-enabled store are
// identical to an exact tier-free store over the same state.
func TestStoreMergeSetBloomTier(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	local := randomDualStackSet(rng, 50)
	remote := randomDualStackSet(rng, 50)

	bloomLocal := NewSet(Config{BloomBitsPerEntry: 10})
	exactLocal := NewSet(Config{})
	local.index.Walk(func(p netaddr.Prefix, peer PeerAS) bool {
		bloomLocal.AddPrefix(peer, p)
		exactLocal.AddPrefix(peer, p)
		return true
	})
	bloomed, exact := NewStore(bloomLocal), NewStore(exactLocal)
	bloomed.MergeSet(remote)
	exact.MergeSet(remote)

	for i := 0; i < 2000; i++ {
		peer := PeerAS(rng.Intn(6) + 1)
		var src netaddr.Addr
		if rng.Intn(2) == 0 {
			src = netaddr.IPv4(rng.Uint32() & 0x0003ffff).Addr()
		} else {
			var b [16]byte
			b[0], b[1] = 0x20, 0x01
			b[7] = byte(rng.Intn(4))
			b[15] = byte(rng.Intn(16))
			src = netaddr.AddrFrom16(b)
		}
		if got, want := bloomed.Check(peer, src), exact.Check(peer, src); got != want {
			t.Fatalf("check %d: bloom-tier store = %v, exact store = %v (peer %d, src %s)",
				i, got, want, peer, src)
		}
	}
}
