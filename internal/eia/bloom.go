package eia

import (
	"sort"

	"infilter/internal/bloom"
	"infilter/internal/netaddr"
)

// This file is the probabilistic fast tier published inside Store
// snapshots: per-peer Bloom filters plus one global filter over every
// (prefix, length) key in the trie.
//
// Why the fast path answers only the "definitely unknown" case: a Bloom
// positive can be a false positive, so no "present" fact — and therefore
// neither a Match nor a WrongPeer verdict, both of which assert that some
// prefix IS in some set — may ever be concluded from the filters alone.
// The one verdict that rests purely on absence is Unknown, and Bloom
// negatives prove absence exactly (no false negatives): if, for every
// prefix length present in the snapshot, the global filter rejects the
// masked source, then the trie holds no prefix of that source and the
// longest-prefix walk must end empty-handed. That absence proof is the
// tier's fast path, and it is precisely the hot case that matters at
// scale — a spoofed flood from randomized sources is almost entirely
// Unknown traffic, and its per-check cost collapses from a 32-level trie
// descent over an ever-larger tree to a couple of cache-line probes that
// stay flat as EIA sets grow 10–1000×.
//
// Every other outcome falls back to the exact trie walk (Bloom-positive
// ⇒ must confirm), so enabling the tier can never flip a verdict: the
// batched and serial check paths produce byte-identical verdict streams
// with the tier on or off. The per-peer filter is probed first: expected
// traffic resolves to the confirm path on its first positive probe
// (typically one cache line), and a peer-negative proves "not expected
// here" early, which the global loop then refines into Unknown-or-walk.
//
// Filters are derived from the trie at publication time and live inside
// the immutable snapshot. Routine publications clone only the touched
// filters and insert the new keys (a re-homed prefix leaves a stale key
// in its old peer's filter, which is only ever a false positive — safe);
// once any touched filter exceeds the capacity it was sized for, the
// whole tier is rebuilt from the trie at double capacity, restoring the
// designed false-positive rate. Checkpoints never serialize filters:
// warm restart loads the trie and rebuilds the tier from it, so the
// filters are correct by construction on every path that creates them.

// Filter seeds. Fixed (not per-process random) so behavior is
// reproducible under test and across warm restarts; the tier defends
// throughput, not secrecy, and the worst an engineered collision set can
// cause is extra fallback walks.
const (
	bloomSeedGlobal = 0x1f117e_e1a_0001
	bloomSeedPeer   = 0x1f117e_e1a_0002
)

// bloomKey packs a masked v4 address and its prefix length into the
// uint64 the filters hash. Length lives in the low byte so /24 and /25
// views of the same address never collide structurally. This is the
// exact pre-dual-stack key, so v4 filter behavior (and the benchmarked
// probe cost) is unchanged by the family-generic refactor.
func bloomKey(masked netaddr.IPv4, bits int) uint64 {
	return uint64(masked)<<8 | uint64(bits)
}

// bloomKey6 condenses a masked v6 address (as its two raw words) and
// prefix length into one hashable word. The 128→64 bit fold can collide
// distinct prefixes, but a filter collision is just a false positive —
// the exact trie confirms — so soundness is untouched. The multiplier
// spreads hi's entropy before xor-folding lo so structured allocations
// (sequential /48s) don't cancel.
func bloomKey6(hi, lo uint64, bits int) uint64 {
	return (hi*0x9e3779b97f4a7c15^lo)<<8 | uint64(bits)
}

// bloomKeyAddr computes the filter key for a prefix of either family.
// Only the build/publish paths use it; the per-check probe loops use the
// family-specialized forms directly.
func bloomKeyAddr(p netaddr.Prefix) uint64 {
	a := p.Addr()
	hi, lo := a.Uint64Pair()
	if a.Family() == netaddr.FamilyV4 {
		return bloomKey(netaddr.IPv4(uint32(lo)), p.Bits())
	}
	return bloomKey6(hi, lo, p.Bits())
}

// lenMask is one v4 prefix length present in the snapshot, with its
// netmask precomputed for the hot loop.
type lenMask struct {
	mask netaddr.IPv4
	bits uint8
}

func maskOf(bits int) netaddr.IPv4 {
	// Shifts ≥ 32 are defined in Go and yield 0, handling /0.
	return ^netaddr.IPv4(0) << (32 - uint(bits))
}

// lenMask6 is one v6 prefix length, with the two mask words precomputed.
type lenMask6 struct {
	maskHi, maskLo uint64
	bits           uint8
}

func maskOf6(bits int) (hi, lo uint64) {
	switch {
	case bits <= 0:
		return 0, 0
	case bits < 64:
		return ^uint64(0) << (64 - uint(bits)), 0
	case bits == 64:
		return ^uint64(0), 0
	case bits < 128:
		return ^uint64(0), ^uint64(0) << (128 - uint(bits))
	default:
		return ^uint64(0), ^uint64(0)
	}
}

// bloomTier is the immutable probabilistic state of one snapshot. peers
// is indexed by PeerAS (small dense ints in this system); nil entries
// are peers with no prefixes. The length lists are kept per family and
// ordered most-populated first so positive probes exit early on the
// common granularity; a check only ever walks its own family's list, so
// v6 prefixes in the snapshot add zero probes to a v4 check.
type bloomTier struct {
	global   *bloom.Filter
	peers    []*bloom.Filter
	lengths  []lenMask
	lengths6 []lenMask6
}

// bloomEnabled reports whether cfg asks for the tier.
func (c Config) bloomEnabled() bool { return c.BloomBitsPerEntry > 0 }

// bloomCapacity sizes a filter with growth headroom: promotions trickle
// in after publication, and 2× slack keeps routine publications on the
// cheap clone-and-insert path instead of forcing rebuilds.
func bloomCapacity(entries int) int {
	if entries < 32 {
		return 64
	}
	return entries * 2
}

// buildBloomTier derives the tier from the trie, the one source of
// truth. Called for the first snapshot (including warm restart, which
// checkpoints only the trie), and whenever an incremental publication
// overflows a filter's sized capacity.
func buildBloomTier(index *netaddr.PrefixTrie[PeerAS], perPeer map[PeerAS]int, cfg Config) *bloomTier {
	if !cfg.bloomEnabled() {
		return nil
	}
	maxPeer := PeerAS(0)
	for p, n := range perPeer {
		if n > 0 && p > maxPeer {
			maxPeer = p
		}
	}
	t := &bloomTier{
		global: bloom.New(bloomCapacity(index.Len()), cfg.BloomBitsPerEntry, cfg.BloomHashes, bloomSeedGlobal),
		peers:  make([]*bloom.Filter, int(maxPeer)+1),
	}
	for p, n := range perPeer {
		if n > 0 {
			t.peers[p] = bloom.New(bloomCapacity(n), cfg.BloomBitsPerEntry, cfg.BloomHashes, bloomSeedPeer^uint64(p))
		}
	}
	var perLen [33]int
	var perLen6 [129]int
	index.Walk(func(pfx netaddr.Prefix, peer PeerAS) bool {
		key := bloomKeyAddr(pfx)
		t.global.Add(key)
		if f := t.peers[peer]; f != nil {
			f.Add(key)
		}
		if pfx.Family() == netaddr.FamilyV6 {
			perLen6[pfx.Bits()]++
		} else {
			perLen[pfx.Bits()]++
		}
		return true
	})
	for bits, n := range perLen {
		if n > 0 {
			t.lengths = append(t.lengths, lenMask{mask: maskOf(bits), bits: uint8(bits)})
		}
	}
	sort.SliceStable(t.lengths, func(i, j int) bool {
		return perLen[t.lengths[i].bits] > perLen[t.lengths[j].bits]
	})
	for bits, n := range perLen6 {
		if n > 0 {
			hi, lo := maskOf6(bits)
			t.lengths6 = append(t.lengths6, lenMask6{maskHi: hi, maskLo: lo, bits: uint8(bits)})
		}
	}
	sort.SliceStable(t.lengths6, func(i, j int) bool {
		return perLen6[t.lengths6[i].bits] > perLen6[t.lengths6[j].bits]
	})
	return t
}

// withAssignments returns the tier for a successor snapshot holding the
// applied assignments on top of t: touched filters are cloned once and
// the new keys inserted. If any touched filter overflows its sized
// capacity the whole tier is rebuilt from the (already-updated) trie.
func (t *bloomTier) withAssignments(applied []Assignment, index *netaddr.PrefixTrie[PeerAS], perPeer map[PeerAS]int, cfg Config) *bloomTier {
	nt := &bloomTier{global: t.global.Clone(), peers: t.peers, lengths: t.lengths, lengths6: t.lengths6}
	peersCloned := false
	for _, a := range applied {
		key := bloomKeyAddr(a.Prefix)
		nt.global.Add(key)
		if !peersCloned {
			nt.peers, peersCloned = clonePeerFilters(t.peers, a.Peer), true
		} else if int(a.Peer) >= len(nt.peers) {
			grown := make([]*bloom.Filter, int(a.Peer)+1)
			copy(grown, nt.peers)
			nt.peers = grown
		}
		f := nt.peers[a.Peer]
		switch {
		case f == nil:
			f = bloom.New(bloomCapacity(perPeer[a.Peer]), cfg.BloomBitsPerEntry, cfg.BloomHashes, bloomSeedPeer^uint64(a.Peer))
			nt.peers[a.Peer] = f
		case f == t.peers[a.Peer]:
			f = f.Clone()
			nt.peers[a.Peer] = f
		}
		f.Add(key)
		if a.Prefix.Family() == netaddr.FamilyV6 {
			if !nt.hasLength6(a.Prefix.Bits()) {
				lengths := make([]lenMask6, len(nt.lengths6), len(nt.lengths6)+1)
				copy(lengths, nt.lengths6)
				hi, lo := maskOf6(a.Prefix.Bits())
				nt.lengths6 = append(lengths, lenMask6{maskHi: hi, maskLo: lo, bits: uint8(a.Prefix.Bits())})
			}
		} else if !nt.hasLength(a.Prefix.Bits()) {
			lengths := make([]lenMask, len(nt.lengths), len(nt.lengths)+1)
			copy(lengths, nt.lengths)
			nt.lengths = append(lengths, lenMask{mask: maskOf(a.Prefix.Bits()), bits: uint8(a.Prefix.Bits())})
		}
	}
	if nt.overflowed() {
		return buildBloomTier(index, perPeer, cfg)
	}
	return nt
}

// clonePeerFilters shallow-copies the filter slice (the filters stay
// shared; withAssignments clones each one before its first insert),
// growing it to fit peer.
func clonePeerFilters(peers []*bloom.Filter, peer PeerAS) []*bloom.Filter {
	n := len(peers)
	if int(peer)+1 > n {
		n = int(peer) + 1
	}
	out := make([]*bloom.Filter, n)
	copy(out, peers)
	return out
}

func (t *bloomTier) hasLength(bits int) bool {
	for _, l := range t.lengths {
		if int(l.bits) == bits {
			return true
		}
	}
	return false
}

func (t *bloomTier) hasLength6(bits int) bool {
	for _, l := range t.lengths6 {
		if int(l.bits) == bits {
			return true
		}
	}
	return false
}

func (t *bloomTier) overflowed() bool {
	if t.global.Overflowed() {
		return true
	}
	for _, f := range t.peers {
		if f != nil && f.Overflowed() {
			return true
		}
	}
	return false
}

// peerFilter returns peer's filter (nil when the peer has no prefixes).
func (t *bloomTier) peerFilter(peer PeerAS) *bloom.Filter {
	if int(peer) < len(t.peers) {
		return t.peers[peer]
	}
	return nil
}

// probe runs the fast-tier case analysis for one (peer, source) check
// against an already-fetched peer filter (hoisted by the batch paths).
// It returns (Unknown, true) when the absence proof lands — no prefix of
// src at any present length is in any set — and (0, false) when the
// caller must confirm against the exact trie. The loops are specialized
// per family: a v4 check masks with one 32-bit AND exactly as before the
// dual-stack refactor, and only walks v4 lengths.
func (t *bloomTier) probe(pf *bloom.Filter, src netaddr.Addr) (Verdict, bool) {
	hi, lo := src.Uint64Pair()
	if src.Family() == netaddr.FamilyV4 {
		v4 := netaddr.IPv4(uint32(lo))
		if pf != nil {
			for _, l := range t.lengths {
				if pf.Test(bloomKey(v4&l.mask, int(l.bits))) {
					return 0, false // maybe expected here: confirm exact
				}
			}
		}
		// Not expected at this peer, definitively. Unknown iff no other
		// set holds a prefix of src either; WrongPeer needs the walk.
		for _, l := range t.lengths {
			if t.global.Test(bloomKey(v4&l.mask, int(l.bits))) {
				return 0, false
			}
		}
		return Unknown, true
	}
	if pf != nil {
		for _, l := range t.lengths6 {
			if pf.Test(bloomKey6(hi&l.maskHi, lo&l.maskLo, int(l.bits))) {
				return 0, false
			}
		}
	}
	for _, l := range t.lengths6 {
		if t.global.Test(bloomKey6(hi&l.maskHi, lo&l.maskLo, int(l.bits))) {
			return 0, false
		}
	}
	return Unknown, true
}

// totalBits sums the bit size of every filter in the tier.
func (t *bloomTier) totalBits() int64 {
	total := int64(t.global.Bits())
	for _, f := range t.peers {
		if f != nil {
			total += int64(f.Bits())
		}
	}
	return total
}
