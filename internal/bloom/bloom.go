// Package bloom provides the probabilistic-membership substrate for the
// EIA fast tier and the heavy-hitter stage: a cache-line-blocked Bloom
// filter and a conservative-update counting sketch, both keyed by packed
// uint64 values hashed with a seeded xxh3-style mix.
//
// The filter is "blocked" (Putze, Sanders, Singler — Cache-, Hash- and
// Space-Efficient Bloom Filters): the first hash selects one 512-bit
// block and every probe lands inside it, so a query touches exactly one
// cache line no matter how large the filter grows. That is what keeps
// per-check cost flat as EIA sets scale 10–1000×: a classic Bloom filter
// takes k scattered misses into an ever-larger bit array, while the
// blocked layout pays one miss and then reads hot words. The price is a
// slightly worse false-positive rate at equal size (block loads are
// Poisson-spread around the mean), which only costs fallback walks —
// never a wrong verdict.
package bloom

import "math/bits"

const (
	// blockWords is one cache line of filter state: 8×64 = 512 bits.
	blockWords = 8
	blockBits  = blockWords * 64
)

// Filter is a blocked Bloom filter over uint64 keys. The block count is
// a power of two so block selection is a mask, and the k in-block probes
// are derived from one hash by double hashing (Kirsch–Mitzenmacher) with
// an odd step, which cycles the full 512-bit block. A Filter has no
// false negatives: Test returns true for every key ever Added. It is not
// safe for concurrent mutation; readers may Test concurrently with each
// other but not with Add (the EIA tier publishes filters immutably
// inside copy-on-write snapshots instead of locking).
type Filter struct {
	blocks    [][blockWords]uint64
	blockMask uint64
	k         uint32
	seed      uint64
	n         int
	capacity  int
}

// New sizes a filter for capacity keys at bitsPerEntry bits each,
// rounding the block count up to a power of two (so the real bit budget
// is never below the request). hashes is the probe count per key; 0
// derives the information-optimal k = bitsPerEntry·ln2, clamped to
// [1, 9] — beyond 9 probes a 512-bit block saturates faster than the
// extra probes pay back.
func New(capacity, bitsPerEntry, hashes int, seed uint64) *Filter {
	if capacity < 1 {
		capacity = 1
	}
	if bitsPerEntry < 2 {
		bitsPerEntry = 2
	}
	nblocks := nextPow2((uint64(capacity)*uint64(bitsPerEntry) + blockBits - 1) / blockBits)
	k := hashes
	if k <= 0 {
		k = int(float64(bitsPerEntry)*0.6931 + 0.5)
	}
	if k < 1 {
		k = 1
	}
	if k > 9 {
		k = 9
	}
	return &Filter{
		blocks:    make([][blockWords]uint64, nblocks),
		blockMask: nblocks - 1,
		k:         uint32(k),
		seed:      seed,
		n:         0,
		capacity:  capacity,
	}
}

func nextPow2(v uint64) uint64 {
	if v <= 1 {
		return 1
	}
	return 1 << (64 - bits.LeadingZeros64(v-1))
}

// probes splits one hash into the block index (low bits) and the in-block
// double-hashing pair (high bits; the step is forced odd so consecutive
// probes cycle through all 512 positions).
func (f *Filter) probes(key uint64) (block uint64, h1, h2 uint32) {
	h := hash64(key, f.seed)
	return h & f.blockMask, uint32(h >> 32), uint32(h>>52) | 1
}

// Add inserts key.
func (f *Filter) Add(key uint64) {
	bi, h1, h2 := f.probes(key)
	b := &f.blocks[bi]
	for i := uint32(0); i < f.k; i++ {
		p := (h1 + i*h2) & (blockBits - 1)
		b[p>>6] |= 1 << (p & 63)
	}
	f.n++
}

// Test reports whether key may have been added. False means definitely
// not added; true means added or a false positive.
func (f *Filter) Test(key uint64) bool {
	bi, h1, h2 := f.probes(key)
	b := &f.blocks[bi]
	for i := uint32(0); i < f.k; i++ {
		p := (h1 + i*h2) & (blockBits - 1)
		if b[p>>6]&(1<<(p&63)) == 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy (the copy-on-write insert path of
// the EIA tier: clone, add, publish).
func (f *Filter) Clone() *Filter {
	c := *f
	c.blocks = make([][blockWords]uint64, len(f.blocks))
	copy(c.blocks, f.blocks)
	return &c
}

// Entries returns how many keys have been added (including duplicates —
// the filter cannot distinguish them).
func (f *Filter) Entries() int { return f.n }

// Capacity returns the key count the filter was sized for.
func (f *Filter) Capacity() int { return f.capacity }

// Overflowed reports whether more keys were added than the filter was
// sized for; the owner should rebuild at a larger size to restore the
// designed false-positive rate.
func (f *Filter) Overflowed() bool { return f.n > f.capacity }

// Bits returns the total bit size.
func (f *Filter) Bits() int { return len(f.blocks) * blockBits }

// K returns the probe count per key.
func (f *Filter) K() int { return int(f.k) }

// FillRatio returns the fraction of set bits, the direct health signal
// for the designed false-positive rate (≈ (fill)^k).
func (f *Filter) FillRatio() float64 {
	if len(f.blocks) == 0 {
		return 0
	}
	set := 0
	for i := range f.blocks {
		for _, w := range f.blocks[i] {
			set += bits.OnesCount64(w)
		}
	}
	return float64(set) / float64(f.Bits())
}
