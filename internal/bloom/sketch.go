package bloom

// Sketch is a multistage counting filter with conservative update — the
// bounded-memory heavy-hitter identifier of "Adaptive algorithms for
// identifying large flows in IP traffic": d stages of 2^b counters, each
// key hashing to one counter per stage, its estimate the minimum across
// stages. Conservative update only raises counters that sit at the
// current minimum, which cuts overestimation from hash collisions by an
// order of magnitude at flood-detection loads. Decay halves every
// counter, aging out burst noise while sustained flood sources keep
// their counters pinned — the adaptive part: the sketch tracks the
// current heavy hitters in fixed memory forever, with no per-source
// state.
//
// A Sketch never undercounts: Estimate(k) is always ≥ the number of
// Observe(k) calls since the last Decay-halvings could account for, so a
// threshold trip is at worst early (a collision), never missed.
// Not safe for concurrent use; every pipeline shard owns its own.
type Sketch struct {
	stages int
	mask   uint64
	counts []uint32 // stages rows of (mask+1) counters, row-major
	seed   uint64
}

// NewSketch builds a sketch with the given stage count and counters per
// stage (rounded up to a power of two). Memory is fixed at
// stages × counters × 4 bytes.
func NewSketch(stages, counters int, seed uint64) *Sketch {
	if stages < 1 {
		stages = 1
	}
	n := nextPow2(uint64(max(counters, 16)))
	return &Sketch{
		stages: stages,
		mask:   n - 1,
		counts: make([]uint32, uint64(stages)*n),
		seed:   seed,
	}
}

// index returns the counter index of key in stage s, derived from one
// hash by double hashing (the odd step decorrelates stages).
func (s *Sketch) index(h1, h2 uint64, stage int) uint64 {
	return (h1 + uint64(stage)*h2) & s.mask
}

func (s *Sketch) hashes(key uint64) (h1, h2 uint64) {
	h := hash64(key, s.seed)
	return h, (h >> 32) | 1
}

// Observe counts one occurrence of key with conservative update and
// returns the new estimate. Counters saturate at MaxUint32 instead of
// wrapping.
func (s *Sketch) Observe(key uint64) uint32 {
	h1, h2 := s.hashes(key)
	min := uint32(1<<32 - 1)
	row := 0
	for st := 0; st < s.stages; st, row = st+1, row+int(s.mask)+1 {
		if c := s.counts[row+int(s.index(h1, h2, st))]; c < min {
			min = c
		}
	}
	if min == 1<<32-1 {
		return min
	}
	// Conservative update: only the minimum counters advance.
	row = 0
	for st := 0; st < s.stages; st, row = st+1, row+int(s.mask)+1 {
		if i := row + int(s.index(h1, h2, st)); s.counts[i] == min {
			s.counts[i] = min + 1
		}
	}
	return min + 1
}

// Estimate returns the current count estimate for key without updating.
func (s *Sketch) Estimate(key uint64) uint32 {
	h1, h2 := s.hashes(key)
	min := uint32(1<<32 - 1)
	row := 0
	for st := 0; st < s.stages; st, row = st+1, row+int(s.mask)+1 {
		if c := s.counts[row+int(s.index(h1, h2, st))]; c < min {
			min = c
		}
	}
	return min
}

// Decay halves every counter (the periodic aging step).
func (s *Sketch) Decay() {
	for i, c := range s.counts {
		s.counts[i] = c >> 1
	}
}

// Reset zeroes the sketch.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
}

// Counters returns the per-stage counter count.
func (s *Sketch) Counters() int { return int(s.mask) + 1 }

// Stages returns the stage count.
func (s *Sketch) Stages() int { return s.stages }
