package bloom

import (
	"math/bits"
	"math/rand"
	"testing"
)

func TestFilterMembership(t *testing.T) {
	f := New(1000, 10, 0, 1)
	keys := []uint64{0, 1, 0xdeadbeef, 1 << 63, ^uint64(0)}
	for _, k := range keys {
		if f.Test(k) {
			t.Errorf("empty filter claims %#x", k)
		}
	}
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Errorf("added key %#x missing", k)
		}
	}
	if f.Entries() != len(keys) {
		t.Errorf("Entries = %d, want %d", f.Entries(), len(keys))
	}
}

// TestFilterNoFalseNegatives is the correctness property the EIA tier
// rests on: a key ever added must always test positive, at every fill
// level including far past the sized capacity.
func TestFilterNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := New(256, 8, 0, 42)
	added := make([]uint64, 0, 4*256)
	for i := 0; i < 4*256; i++ { // overfill to 4x capacity
		k := rng.Uint64()
		f.Add(k)
		added = append(added, k)
		for _, a := range added {
			if !f.Test(a) {
				t.Fatalf("false negative for %#x after %d adds", a, i+1)
			}
		}
	}
	if !f.Overflowed() {
		t.Error("filter at 4x capacity not Overflowed")
	}
}

// TestFilterFPRateUnderBound measures the false-positive rate at 1×,
// 10× and 100× of a base set size, all at the same bits-per-entry
// budget: the measured rate must stay under a bound derived from the
// blocked-filter geometry, and — the scaling property the fast tier
// sells — must not grow with set size.
func TestFilterFPRateUnderBound(t *testing.T) {
	const (
		base         = 1000
		bitsPerEntry = 10
		probes       = 200000
		// Blocked filters pay a Poisson block-load spread over the ideal
		// Bloom rate; at 10 bits/entry the ideal is ~0.8% and the blocked
		// expectation ~1.2%. 2.5% gives margin without hiding regressions
		// (a halved size or broken probe derivation lands far above it).
		bound = 0.025
	)
	for _, scale := range []int{1, 10, 100} {
		n := base * scale
		f := New(n, bitsPerEntry, 0, 99)
		rng := rand.New(rand.NewSource(int64(scale)))
		present := make(map[uint64]bool, n)
		for i := 0; i < n; i++ {
			k := rng.Uint64()
			present[k] = true
			f.Add(k)
		}
		fp := 0
		for i := 0; i < probes; i++ {
			k := rng.Uint64()
			if present[k] {
				continue
			}
			if f.Test(k) {
				fp++
			}
		}
		rate := float64(fp) / float64(probes)
		t.Logf("scale %4dx: n=%d bits=%d fill=%.3f fp=%.4f", scale, n, f.Bits(), f.FillRatio(), rate)
		if rate > bound {
			t.Errorf("scale %dx: false-positive rate %.4f exceeds bound %.4f", scale, rate, bound)
		}
	}
}

func TestFilterCloneIndependent(t *testing.T) {
	f := New(100, 10, 0, 3)
	f.Add(1)
	c := f.Clone()
	c.Add(2)
	if f.Test(2) {
		t.Error("Add on clone visible in original")
	}
	if !c.Test(1) || !c.Test(2) {
		t.Error("clone lost keys")
	}
	if c.Entries() != 2 || f.Entries() != 1 {
		t.Errorf("entries: clone %d (want 2), original %d (want 1)", c.Entries(), f.Entries())
	}
}

func TestFilterSizing(t *testing.T) {
	f := New(1000, 10, 0, 0)
	if got := f.Bits(); got < 1000*10 {
		t.Errorf("Bits = %d, below requested budget %d", got, 1000*10)
	}
	if k := f.K(); k < 1 || k > 9 {
		t.Errorf("derived K = %d out of [1,9]", k)
	}
	if k := New(10, 4, 3, 0).K(); k != 3 {
		t.Errorf("explicit hashes: K = %d, want 3", k)
	}
	// Degenerate requests still produce a usable filter.
	tiny := New(0, 0, 0, 0)
	tiny.Add(5)
	if !tiny.Test(5) {
		t.Error("degenerate filter lost its key")
	}
}

// TestHashMix sanity-checks the xxh3-style finisher: deterministic,
// seed-sensitive, and avalanching (flipping one input bit flips ~half
// the output bits on average).
func TestHashMix(t *testing.T) {
	if hash64(123, 9) != hash64(123, 9) {
		t.Fatal("hash not deterministic")
	}
	if hash64(123, 1) == hash64(123, 2) {
		t.Error("seed has no effect")
	}
	rng := rand.New(rand.NewSource(11))
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		flipped := k ^ (1 << (i % 64))
		total += bits.OnesCount64(hash64(k, 0) ^ hash64(flipped, 0))
	}
	avg := float64(total) / trials
	if avg < 24 || avg > 40 {
		t.Errorf("avalanche average %.1f bits, want ~32", avg)
	}
}

func TestSketchConservativeUpdate(t *testing.T) {
	s := NewSketch(4, 1024, 5)
	for i := 0; i < 100; i++ {
		s.Observe(77)
	}
	if got := s.Estimate(77); got < 100 {
		t.Errorf("Estimate = %d after 100 observations, must never undercount", got)
	}
	// With 1024 counters and a handful of keys, collisions are absent and
	// conservative update keeps single-key estimates exact.
	if got := s.Estimate(77); got != 100 {
		t.Errorf("Estimate = %d, want exactly 100 in a collision-free sketch", got)
	}
	if got := s.Estimate(78); got != 0 {
		t.Errorf("unobserved key estimate = %d, want 0", got)
	}
}

func TestSketchNeverUndercounts(t *testing.T) {
	s := NewSketch(4, 64, 13) // small: force collisions
	rng := rand.New(rand.NewSource(17))
	truth := make(map[uint64]uint32)
	for i := 0; i < 5000; i++ {
		k := uint64(rng.Intn(300))
		truth[k]++
		s.Observe(k)
	}
	for k, n := range truth {
		if got := s.Estimate(k); got < n {
			t.Errorf("key %d: estimate %d under true count %d", k, got, n)
		}
	}
}

func TestSketchDecay(t *testing.T) {
	s := NewSketch(4, 1024, 5)
	for i := 0; i < 100; i++ {
		s.Observe(9)
	}
	s.Decay()
	if got := s.Estimate(9); got != 50 {
		t.Errorf("after Decay estimate = %d, want 50", got)
	}
	s.Reset()
	if got := s.Estimate(9); got != 0 {
		t.Errorf("after Reset estimate = %d, want 0", got)
	}
}

func BenchmarkFilterTestNegative(b *testing.B) {
	f := New(1_000_000, 10, 0, 1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1_000_000; i++ {
		f.Add(rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Test(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkSketchObserve(b *testing.B) {
	s := NewSketch(4, 4096, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i % 1024))
	}
}
