package bloom

import "math/bits"

// hash64 is the seeded 64-bit mix every structure in this package keys
// its probes from. It is the XXH3-64 short-input (4–8 byte) path
// specialized to exactly-8-byte little-endian keys: the two 32-bit input
// halves are folded against the seed-perturbed secret and finished with
// the rrmxmx avalanche. Specializing to the fixed width keeps the whole
// hash branch-free and inlineable — the filter keys (masked address,
// prefix length) and sketch keys (source address) are always packed into
// one uint64 — while retaining xxh3's avalanche quality, which the
// double-hashing probe derivation below leans on.
//
// The two secret words are readLE64(kSecret+8) and readLE64(kSecret+16)
// of the reference implementation's default secret.
const (
	xxhSecret8  = 0x1cad21f72c81017c
	xxhSecret16 = 0xdb979083e96dd4de
	rrmxmxMul   = 0x9fb21c651e98df25
)

// Hash64 exposes the seeded mix to sibling packages that key other
// probabilistic structures from the same hash family — the KMV distinct
// counters in internal/sketch draw their order statistics from it, so
// sketch quality rides on the same avalanche the filters already trust.
func Hash64(key, seed uint64) uint64 {
	return hash64(key, seed)
}

func hash64(key, seed uint64) uint64 {
	seed ^= uint64(bits.ReverseBytes32(uint32(seed))) << 32
	// An 8-byte little-endian buffer holding key reads back as:
	// first four bytes = low word, last four bytes = high word.
	input1 := uint64(uint32(key))       // readLE32(buf)
	input2 := uint64(uint32(key >> 32)) // readLE32(buf+4)
	bitflip := (xxhSecret8 ^ xxhSecret16) - seed
	keyed := (input2 + input1<<32) ^ bitflip
	// rrmxmx(keyed, len=8)
	h := keyed
	h ^= bits.RotateLeft64(h, 49) ^ bits.RotateLeft64(h, 24)
	h *= rrmxmxMul
	h ^= (h >> 35) + 8
	h *= rrmxmxMul
	h ^= h >> 28
	return h
}
