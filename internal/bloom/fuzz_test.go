package bloom

import (
	"encoding/binary"
	"testing"
)

// FuzzBloomMembership replays a random insert/query sequence against a
// map oracle: the filter must never report a false negative (a key the
// oracle holds testing negative), at any fill level, for any filter
// geometry the input selects. False positives are expected and ignored —
// they are the contract's allowed error direction.
func FuzzBloomMembership(f *testing.F) {
	f.Add(uint16(64), uint8(10), uint8(0), []byte{})
	f.Add(uint16(1), uint8(2), uint8(1), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint16(1000), uint8(8), uint8(4),
		[]byte{1, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, capacity uint16, bitsPerEntry, hashes uint8, ops []byte) {
		filter := New(int(capacity), int(bitsPerEntry), int(hashes%12), uint64(capacity)^uint64(bitsPerEntry)<<8)
		oracle := make(map[uint64]bool)
		for len(ops) >= 9 {
			op, key := ops[0], binary.LittleEndian.Uint64(ops[1:9])
			ops = ops[9:]
			if op&1 == 0 {
				filter.Add(key)
				oracle[key] = true
			}
			if oracle[key] && !filter.Test(key) {
				t.Fatalf("false negative: key %#x inserted but Test says absent (n=%d, bits=%d, k=%d)",
					key, filter.Entries(), filter.Bits(), filter.K())
			}
		}
		if len(oracle) != 0 {
			// Full sweep: every inserted key must still test positive, and a
			// clone must agree with the original on the oracle set.
			c := filter.Clone()
			for key := range oracle {
				if !filter.Test(key) {
					t.Fatalf("final sweep: false negative for %#x", key)
				}
				if !c.Test(key) {
					t.Fatalf("clone lost key %#x", key)
				}
			}
		}
	})
}
