package flowtools

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// Binary flow-store format (flow-capture's on-disk role): a short header
// followed by fixed-size flow records, big-endian.
//
//	header : magic "IFFS" | uint16 version | uint16 reserved
//	record : uint32 src | uint32 dst | uint8 proto | uint8 tos |
//	         uint8 tcpFlags | uint8 srcMask | uint16 srcPort | uint16 dstPort |
//	         uint16 inputIf | uint8 dstMask | uint8 pad |
//	         uint32 packets | uint32 bytes |
//	         int64 startUnixNanos | int64 endUnixNanos |
//	         uint16 srcAS | uint16 dstAS

const (
	storeMagic      = "IFFS"
	storeVersion    = 1
	storeRecordSize = 4 + 4 + 4 + 2 + 2 + 2 + 2 + 4 + 4 + 8 + 8 + 2 + 2
)

// Errors returned by the store codec.
var (
	ErrBadStore     = errors.New("flowtools: malformed flow store")
	ErrBadStoreVers = errors.New("flowtools: unsupported flow store version")
)

// StoreWriter writes flow records in the binary store format.
type StoreWriter struct {
	w     *bufio.Writer
	count int
}

// NewStoreWriter writes the store header and returns a writer.
func NewStoreWriter(w io.Writer) (*StoreWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(storeMagic); err != nil {
		return nil, fmt.Errorf("flowtools: write store header: %w", err)
	}
	var v [4]byte
	binary.BigEndian.PutUint16(v[0:2], storeVersion)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, fmt.Errorf("flowtools: write store header: %w", err)
	}
	return &StoreWriter{w: bw}, nil
}

// appendStoreWriter wraps a store file that already carries its header,
// for appending further records (archive rotation re-opening a slot file).
func appendStoreWriter(w io.Writer) (*StoreWriter, error) {
	return &StoreWriter{w: bufio.NewWriter(w)}, nil
}

// Write appends one record.
func (sw *StoreWriter) Write(r flow.Record) error {
	var rec [storeRecordSize]byte
	binary.BigEndian.PutUint32(rec[0:4], uint32(r.Key.Src))
	binary.BigEndian.PutUint32(rec[4:8], uint32(r.Key.Dst))
	rec[8] = r.Key.Proto
	rec[9] = r.Key.TOS
	rec[10] = r.TCPFlag
	rec[11] = r.SrcMask
	binary.BigEndian.PutUint16(rec[12:14], r.Key.SrcPort)
	binary.BigEndian.PutUint16(rec[14:16], r.Key.DstPort)
	binary.BigEndian.PutUint16(rec[16:18], r.Key.InputIf)
	rec[18] = r.DstMask
	binary.BigEndian.PutUint32(rec[20:24], r.Packets)
	binary.BigEndian.PutUint32(rec[24:28], r.Bytes)
	binary.BigEndian.PutUint64(rec[28:36], uint64(r.Start.UnixNano()))
	binary.BigEndian.PutUint64(rec[36:44], uint64(r.End.UnixNano()))
	binary.BigEndian.PutUint16(rec[44:46], r.SrcAS)
	binary.BigEndian.PutUint16(rec[46:48], r.DstAS)
	if _, err := sw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("flowtools: write store record: %w", err)
	}
	sw.count++
	return nil
}

// Count returns the records written so far.
func (sw *StoreWriter) Count() int { return sw.count }

// Flush flushes buffered data.
func (sw *StoreWriter) Flush() error {
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("flowtools: flush store: %w", err)
	}
	return nil
}

// StoreReader reads records back from the binary store format.
type StoreReader struct {
	r *bufio.Reader
}

// NewStoreReader validates the header and returns a reader.
func NewStoreReader(r io.Reader) (*StoreReader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if string(hdr[0:4]) != storeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadStore, hdr[0:4])
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != storeVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadStoreVers, v)
	}
	return &StoreReader{r: br}, nil
}

// Read returns the next record, or io.EOF at end of store.
func (sr *StoreReader) Read() (flow.Record, error) {
	var rec [storeRecordSize]byte
	if _, err := io.ReadFull(sr.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return flow.Record{}, io.EOF
		}
		return flow.Record{}, fmt.Errorf("%w: truncated record: %v", ErrBadStore, err)
	}
	return flow.Record{
		Key: flow.Key{
			Src:     netaddr.IPv4(binary.BigEndian.Uint32(rec[0:4])),
			Dst:     netaddr.IPv4(binary.BigEndian.Uint32(rec[4:8])),
			Proto:   rec[8],
			TOS:     rec[9],
			SrcPort: binary.BigEndian.Uint16(rec[12:14]),
			DstPort: binary.BigEndian.Uint16(rec[14:16]),
			InputIf: binary.BigEndian.Uint16(rec[16:18]),
		},
		TCPFlag: rec[10],
		SrcMask: rec[11],
		DstMask: rec[18],
		Packets: binary.BigEndian.Uint32(rec[20:24]),
		Bytes:   binary.BigEndian.Uint32(rec[24:28]),
		Start:   time.Unix(0, int64(binary.BigEndian.Uint64(rec[28:36]))).UTC(),
		End:     time.Unix(0, int64(binary.BigEndian.Uint64(rec[36:44]))).UTC(),
		SrcAS:   binary.BigEndian.Uint16(rec[44:46]),
		DstAS:   binary.BigEndian.Uint16(rec[46:48]),
	}, nil
}

// ReadAll drains the remaining records.
func (sr *StoreReader) ReadAll() ([]flow.Record, error) {
	var out []flow.Record
	for {
		r, err := sr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
