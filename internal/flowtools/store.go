package flowtools

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// Binary flow-store format (flow-capture's on-disk role): a short header
// followed by fixed-size flow records, big-endian.
//
//	header    : magic "IFFS" | uint16 version | uint16 reserved
//	record v1 : uint32 src | uint32 dst | uint8 proto | uint8 tos |
//	            uint8 tcpFlags | uint8 srcMask | uint16 srcPort | uint16 dstPort |
//	            uint16 inputIf | uint8 dstMask | uint8 pad |
//	            uint32 packets | uint32 bytes |
//	            int64 startUnixNanos | int64 endUnixNanos |
//	            uint16 srcAS | uint16 dstAS
//	record v2 : src[16] | dst[16] | uint8 family | (rest as v1 from proto on)
//
// v2 widens the two addresses to raw 16-byte values (v4 mapped 4-in-6)
// plus one family byte (4 or 6; a flow key never mixes families). Writers
// emit v2; readers accept v1 stores as v4-only, so archives written
// before the dual-stack refactor keep replaying.

const (
	storeMagic        = "IFFS"
	storeVersion      = 2
	storeVersionOld   = 1
	storeRecordSizeV1 = 4 + 4 + 4 + 2 + 2 + 2 + 2 + 4 + 4 + 8 + 8 + 2 + 2
	storeRecordSize   = 16 + 16 + 1 + 4 + 2 + 2 + 2 + 2 + 4 + 4 + 8 + 8 + 2 + 2
)

// Errors returned by the store codec.
var (
	ErrBadStore     = errors.New("flowtools: malformed flow store")
	ErrBadStoreVers = errors.New("flowtools: unsupported flow store version")
)

// StoreWriter writes flow records in the binary store format.
type StoreWriter struct {
	w     *bufio.Writer
	count int
}

// NewStoreWriter writes the store header and returns a writer.
func NewStoreWriter(w io.Writer) (*StoreWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(storeMagic); err != nil {
		return nil, fmt.Errorf("flowtools: write store header: %w", err)
	}
	var v [4]byte
	binary.BigEndian.PutUint16(v[0:2], storeVersion)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, fmt.Errorf("flowtools: write store header: %w", err)
	}
	return &StoreWriter{w: bw}, nil
}

// appendStoreWriter wraps a store file that already carries its header,
// for appending further records (archive rotation re-opening a slot file).
func appendStoreWriter(w io.Writer) (*StoreWriter, error) {
	return &StoreWriter{w: bufio.NewWriter(w)}, nil
}

// Write appends one record (v2 layout).
func (sw *StoreWriter) Write(r flow.Record) error {
	var rec [storeRecordSize]byte
	src16, dst16 := r.Key.Src.As16(), r.Key.Dst.As16()
	copy(rec[0:16], src16[:])
	copy(rec[16:32], dst16[:])
	rec[32] = byte(r.Key.Family())
	rec[33] = r.Key.Proto
	rec[34] = r.Key.TOS
	rec[35] = r.TCPFlag
	rec[36] = r.SrcMask
	binary.BigEndian.PutUint16(rec[37:39], r.Key.SrcPort)
	binary.BigEndian.PutUint16(rec[39:41], r.Key.DstPort)
	binary.BigEndian.PutUint16(rec[41:43], r.Key.InputIf)
	rec[43] = r.DstMask
	binary.BigEndian.PutUint32(rec[45:49], r.Packets)
	binary.BigEndian.PutUint32(rec[49:53], r.Bytes)
	binary.BigEndian.PutUint64(rec[53:61], uint64(r.Start.UnixNano()))
	binary.BigEndian.PutUint64(rec[61:69], uint64(r.End.UnixNano()))
	binary.BigEndian.PutUint16(rec[69:71], r.SrcAS)
	binary.BigEndian.PutUint16(rec[71:73], r.DstAS)
	if _, err := sw.w.Write(rec[:]); err != nil {
		return fmt.Errorf("flowtools: write store record: %w", err)
	}
	sw.count++
	return nil
}

// Count returns the records written so far.
func (sw *StoreWriter) Count() int { return sw.count }

// Flush flushes buffered data.
func (sw *StoreWriter) Flush() error {
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("flowtools: flush store: %w", err)
	}
	return nil
}

// StoreReader reads records back from the binary store format.
type StoreReader struct {
	r       *bufio.Reader
	version uint16
}

// NewStoreReader validates the header and returns a reader.
func NewStoreReader(r io.Reader) (*StoreReader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadStore, err)
	}
	if string(hdr[0:4]) != storeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadStore, hdr[0:4])
	}
	v := binary.BigEndian.Uint16(hdr[4:6])
	if v != storeVersion && v != storeVersionOld {
		return nil, fmt.Errorf("%w: version %d", ErrBadStoreVers, v)
	}
	return &StoreReader{r: br, version: v}, nil
}

// Read returns the next record, or io.EOF at end of store.
func (sr *StoreReader) Read() (flow.Record, error) {
	if sr.version == storeVersionOld {
		return sr.readV1()
	}
	var rec [storeRecordSize]byte
	if _, err := io.ReadFull(sr.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return flow.Record{}, io.EOF
		}
		return flow.Record{}, fmt.Errorf("%w: truncated record: %v", ErrBadStore, err)
	}
	var src16, dst16 [16]byte
	copy(src16[:], rec[0:16])
	copy(dst16[:], rec[16:32])
	src, dst := netaddr.AddrFrom16(src16), netaddr.AddrFrom16(dst16)
	switch rec[32] {
	case byte(netaddr.FamilyV4):
		src, dst = src.Unmap(), dst.Unmap()
	case byte(netaddr.FamilyV6):
	case byte(netaddr.FamilyNone):
		src, dst = netaddr.Addr{}, netaddr.Addr{}
	default:
		return flow.Record{}, fmt.Errorf("%w: family byte %d", ErrBadStore, rec[32])
	}
	return flow.Record{
		Key: flow.Key{
			Src:     src,
			Dst:     dst,
			Proto:   rec[33],
			TOS:     rec[34],
			SrcPort: binary.BigEndian.Uint16(rec[37:39]),
			DstPort: binary.BigEndian.Uint16(rec[39:41]),
			InputIf: binary.BigEndian.Uint16(rec[41:43]),
		},
		TCPFlag: rec[35],
		SrcMask: rec[36],
		DstMask: rec[43],
		Packets: binary.BigEndian.Uint32(rec[45:49]),
		Bytes:   binary.BigEndian.Uint32(rec[49:53]),
		Start:   time.Unix(0, int64(binary.BigEndian.Uint64(rec[53:61]))).UTC(),
		End:     time.Unix(0, int64(binary.BigEndian.Uint64(rec[61:69]))).UTC(),
		SrcAS:   binary.BigEndian.Uint16(rec[69:71]),
		DstAS:   binary.BigEndian.Uint16(rec[71:73]),
	}, nil
}

// readV1 parses the pre-dual-stack 48-byte record (v4 addresses only).
func (sr *StoreReader) readV1() (flow.Record, error) {
	var rec [storeRecordSizeV1]byte
	if _, err := io.ReadFull(sr.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return flow.Record{}, io.EOF
		}
		return flow.Record{}, fmt.Errorf("%w: truncated record: %v", ErrBadStore, err)
	}
	return flow.Record{
		Key: flow.Key{
			Src:     netaddr.IPv4(binary.BigEndian.Uint32(rec[0:4])).Addr(),
			Dst:     netaddr.IPv4(binary.BigEndian.Uint32(rec[4:8])).Addr(),
			Proto:   rec[8],
			TOS:     rec[9],
			SrcPort: binary.BigEndian.Uint16(rec[12:14]),
			DstPort: binary.BigEndian.Uint16(rec[14:16]),
			InputIf: binary.BigEndian.Uint16(rec[16:18]),
		},
		TCPFlag: rec[10],
		SrcMask: rec[11],
		DstMask: rec[18],
		Packets: binary.BigEndian.Uint32(rec[20:24]),
		Bytes:   binary.BigEndian.Uint32(rec[24:28]),
		Start:   time.Unix(0, int64(binary.BigEndian.Uint64(rec[28:36]))).UTC(),
		End:     time.Unix(0, int64(binary.BigEndian.Uint64(rec[36:44]))).UTC(),
		SrcAS:   binary.BigEndian.Uint16(rec[44:46]),
		DstAS:   binary.BigEndian.Uint16(rec[46:48]),
	}, nil
}

// ReadAll drains the remaining records.
func (sr *StoreReader) ReadAll() ([]flow.Record, error) {
	var out []flow.Record
	for {
		r, err := sr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
