package flowtools

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
)

func rec(src string, dstPort uint16, proto uint8, packets, bytes uint32, dur time.Duration) flow.Record {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	return flow.Record{
		Key: flow.Key{
			Src:     netaddr.MustParseAddr(src),
			Dst:     netaddr.MustParseAddr("192.0.2.1"),
			Proto:   proto,
			SrcPort: 1234,
			DstPort: dstPort,
		},
		Packets: packets,
		Bytes:   bytes,
		Start:   start,
		End:     start.Add(dur),
		SrcAS:   77,
		DstAS:   1,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStoreWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want []flow.Record
	for i := 0; i < 50; i++ {
		r := rec("61.0.0.1", uint16(80+i), flow.ProtoTCP, uint32(i+1), uint32(100*i+40), time.Duration(i)*time.Millisecond)
		r.TCPFlag = uint8(i % 64)
		r.SrcMask = 11
		r.DstMask = 24
		want = append(want, r)
		if err := sw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Count() != 50 {
		t.Errorf("Count = %d", sw.Count())
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStoreReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestStoreReaderErrors(t *testing.T) {
	if _, err := NewStoreReader(bytes.NewReader([]byte("NOPE\x00\x01\x00\x00"))); !errors.Is(err, ErrBadStore) {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := NewStoreReader(bytes.NewReader([]byte("IFFS\x00\x07\x00\x00"))); !errors.Is(err, ErrBadStoreVers) {
		t.Errorf("bad version: %v", err)
	}
	var buf bytes.Buffer
	sw, _ := NewStoreWriter(&buf)
	if err := sw.Write(rec("1.2.3.4", 80, flow.ProtoTCP, 1, 40, 0)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	sr, err := NewStoreReader(bytes.NewReader(raw[:len(raw)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record: %v", err)
	}
}

func TestReportGroupByDstPort(t *testing.T) {
	recs := []flow.Record{
		rec("61.0.0.1", 80, flow.ProtoTCP, 10, 1000, time.Second),
		rec("61.0.0.2", 80, flow.ProtoTCP, 20, 3000, time.Second),
		rec("61.0.0.3", 25, flow.ProtoTCP, 5, 500, 2*time.Second),
	}
	groups := Report(recs, []GroupField{GroupDstPort})
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	// Sorted by key string: "25" < "80".
	if groups[0].Key != "25" || groups[1].Key != "80" {
		t.Errorf("group keys %q, %q", groups[0].Key, groups[1].Key)
	}
	g80 := groups[1]
	if g80.Flows != 2 || g80.Packets != 30 || g80.Bytes != 4000 {
		t.Errorf("port 80 group = %+v", g80)
	}
	if g80.Duration != 2*time.Second {
		t.Errorf("summed duration %v", g80.Duration)
	}
	// Mean of 8*1000/1 and 8*3000/1.
	if g80.AvgBitRate != (8000+24000)/2.0 {
		t.Errorf("AvgBitRate = %v", g80.AvgBitRate)
	}
}

func TestReportAllKeyFieldsIsPerFlow(t *testing.T) {
	recs := []flow.Record{
		rec("61.0.0.1", 80, flow.ProtoTCP, 10, 1000, time.Second),
		rec("61.0.0.1", 80, flow.ProtoTCP, 10, 1000, time.Second), // same key
		rec("61.0.0.2", 80, flow.ProtoTCP, 20, 3000, time.Second),
	}
	groups := Report(recs, AllKeyFields())
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2 (duplicate keys merge)", len(groups))
	}
}

func TestReportGroupBySrcAS(t *testing.T) {
	a := rec("61.0.0.1", 80, flow.ProtoTCP, 1, 40, 0)
	b := rec("61.0.0.2", 80, flow.ProtoTCP, 1, 40, 0)
	b.SrcAS = 88
	groups := Report([]flow.Record{a, b}, []GroupField{GroupSrcAS})
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
}

func TestGroupFieldNames(t *testing.T) {
	if GroupSrcAddr.String() != "ip-source-address" {
		t.Errorf("GroupSrcAddr = %q", GroupSrcAddr.String())
	}
	if GroupField(99).String() != "group-field(99)" {
		t.Errorf("unknown = %q", GroupField(99).String())
	}
}

func TestFilter(t *testing.T) {
	recs := []flow.Record{
		rec("61.0.0.1", 80, flow.ProtoTCP, 1, 40, 0),
		rec("61.0.0.2", 53, flow.ProtoUDP, 1, 60, 0),
		rec("61.0.0.3", 80, flow.ProtoTCP, 1, 40, 0),
	}
	got := Filter(recs, func(r flow.Record) bool { return r.Key.Proto == flow.ProtoTCP })
	if len(got) != 2 {
		t.Errorf("filtered %d, want 2", len(got))
	}
	if got := Filter(nil, func(flow.Record) bool { return true }); got != nil {
		t.Errorf("Filter(nil) = %v", got)
	}
}

func TestASCIIRoundTrip(t *testing.T) {
	var want []flow.Record
	for i := 0; i < 20; i++ {
		r := rec("214.96.0.1", uint16(1000+i), flow.ProtoUDP, uint32(i+1), uint32(i*13+7), time.Duration(i)*time.Second)
		want = append(want, r)
	}
	var buf bytes.Buffer
	if err := WriteASCII(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadASCII(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestASCIIIgnoresCommentsAndBlanks(t *testing.T) {
	input := "# header comment\n\n61.0.0.1,192.0.2.1,6,1234,80,0,0,1,40,0,0,77,1\n"
	got, err := ReadASCII(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("parsed %d records", len(got))
	}
}

func TestASCIIParseErrors(t *testing.T) {
	for _, in := range []string{
		"not,enough,fields\n",
		"bad-ip,192.0.2.1,6,1,80,0,0,1,40,0,0,0,0\n",
		"61.0.0.1,bad-ip,6,1,80,0,0,1,40,0,0,0,0\n",
		"61.0.0.1,192.0.2.1,x,1,80,0,0,1,40,0,0,0,0\n",
	} {
		if _, err := ReadASCII(strings.NewReader(in)); err == nil {
			t.Errorf("ReadASCII(%q): want error", in)
		}
	}
}

// testCollectorReceives drives 45 records through one listener with the
// given encoder (split 30+15 across datagrams, template datagrams if the
// format uses them) and checks delivery, source metadata and stats.
func testCollectorReceives(t *testing.T, enc netflow.WireEncoder) {
	t.Helper()
	var (
		mu   sync.Mutex
		got  []flow.Record
		srcs []Source
		port int
	)
	// MaxRecords 1 is the per-record path: every batch is one datagram's
	// records, so Batch.Exporter/Version fully reconstruct the Source.
	c := New(Config{MaxRecords: 1}, func(b Batch) {
		mu.Lock()
		defer mu.Unlock()
		if b.Port == port {
			got = append(got, b.Records...)
			srcs = append(srcs, Source{LocalPort: b.Port, Exporter: b.Exporter, Version: b.Version})
		}
	})
	var err error
	port, err = c.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	e := netflow.NewExporter(enc)
	for i := 0; i < 45; i++ {
		e.Add(rec("61.0.0.1", uint16(80+i), flow.ProtoTCP, 2, 120, time.Second))
	}
	conn, err := net.Dial("udp", net.JoinHostPort("127.0.0.1", itoa(port)))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, d := range e.Export(boot.Add(time.Minute)) {
		if _, err := conn.Write(d.Raw); err != nil {
			t.Fatal(err)
		}
	}
	// Also send garbage; the collector must drop it and keep running.
	if _, err := conn.Write([]byte("garbage")); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 45 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d records, want 45", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	first := got[0]
	src := srcs[0]
	mu.Unlock()
	if first.Key.Src.String() != "61.0.0.1" || first.Packets != 2 {
		t.Errorf("first record %+v", first)
	}
	if src.Version != enc.Version() {
		t.Errorf("source version %d, want %d", src.Version, enc.Version())
	}
	if src.Exporter == "" {
		t.Error("source exporter empty")
	}

	// Malformed counter eventually ticks.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, mal := c.Stats(); mal >= 1 {
			break
		}
		if time.Now().After(deadline) {
			recv, mal := c.Stats()
			t.Fatalf("stats recv=%d malformed=%d, want malformed>=1", recv, mal)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if recv, _ := c.Stats(); recv != 45 {
		t.Errorf("stats recv=%d, want 45", recv)
	}
}

func TestCollectorReceivesDatagrams(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	t.Run("v5", func(t *testing.T) { testCollectorReceives(t, netflow.NewV5Encoder(boot, 1)) })
	t.Run("v9", func(t *testing.T) { testCollectorReceives(t, netflow.NewV9Encoder(boot, 1)) })
	t.Run("ipfix", func(t *testing.T) { testCollectorReceives(t, netflow.NewIPFIXEncoder(1)) })
}

func TestCollectorCloseIdempotentAndBlocksListen(t *testing.T) {
	c := New(Config{}, func(Batch) {})
	if _, err := c.Listen(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Listen(0); !errors.Is(err, ErrCollectorClosed) {
		t.Errorf("Listen after Close: %v", err)
	}
}

func TestStoreRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var buf bytes.Buffer
	sw, err := NewStoreWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want []flow.Record
	for i := 0; i < 200; i++ {
		r := flow.Record{
			Key: flow.Key{
				Src:     netaddr.IPv4(rng.Uint32()).Addr(),
				Dst:     netaddr.IPv4(rng.Uint32()).Addr(),
				Proto:   uint8(rng.Intn(256)),
				SrcPort: uint16(rng.Intn(65536)),
				DstPort: uint16(rng.Intn(65536)),
				TOS:     uint8(rng.Intn(256)),
				InputIf: uint16(rng.Intn(65536)),
			},
			Packets: rng.Uint32(),
			Bytes:   rng.Uint32(),
			Start:   time.Unix(rng.Int63n(1<<31), int64(rng.Intn(1e9))).UTC(),
			End:     time.Unix(rng.Int63n(1<<31), int64(rng.Intn(1e9))).UTC(),
			SrcAS:   uint16(rng.Intn(65536)),
			DstAS:   uint16(rng.Intn(65536)),
			SrcMask: uint8(rng.Intn(33)),
			DstMask: uint8(rng.Intn(33)),
			TCPFlag: uint8(rng.Intn(256)),
		}
		want = append(want, r)
		if err := sw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStoreReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
