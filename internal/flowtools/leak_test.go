package flowtools

import (
	"net"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/testutil"
)

// TestCollectorGoroutineLeak cycles Listen/Close with live traffic and
// fails if any receive-loop goroutine survives Close.
func TestCollectorGoroutineLeak(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	dgs := netflow.NewV5Encoder(boot, 1).Encode([]flow.Record{{
		Key: flow.Key{
			Src:   netaddr.MustParseAddr("61.1.1.1"),
			Dst:   netaddr.MustParseAddr("192.0.2.1"),
			Proto: flow.ProtoUDP, DstPort: 1434,
		},
		Packets: 1, Bytes: 404, Start: boot, End: boot,
	}}, boot.Add(time.Minute))
	raw := dgs[0].Raw
	testutil.ExpectNoGoroutineGrowth(t, func() {
		for i := 0; i < 3; i++ {
			got := make(chan struct{}, 16)
			c := New(Config{MaxRecords: 1}, func(Batch) {
				got <- struct{}{}
			})
			var ports []int
			for j := 0; j < 3; j++ {
				p, err := c.Listen(0)
				if err != nil {
					t.Fatal(err)
				}
				ports = append(ports, p)
			}
			// Push one datagram through each listener so Close races with
			// real handler activity, not idle loops.
			for _, p := range ports {
				conn, err := net.Dial("udp", net.JoinHostPort("127.0.0.1", itoa(p)))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := conn.Write(raw); err != nil {
					t.Fatal(err)
				}
				conn.Close()
			}
			for range ports {
				select {
				case <-got:
				case <-time.After(5 * time.Second):
					t.Fatal("datagram never delivered")
				}
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Listen(0); err != ErrCollectorClosed {
				t.Errorf("Listen after Close = %v, want ErrCollectorClosed", err)
			}
		}
	})
}

// TestCaptureCloseCycle exercises the capture writer's start/stop cycle:
// Close must flush everything and further Writes must fail cleanly.
func TestCaptureCloseCycle(t *testing.T) {
	dir := t.TempDir()
	rec := flow.Record{
		Key:     flow.Key{Src: netaddr.MustParseAddr("61.1.1.1"), Dst: netaddr.MustParseAddr("192.0.2.1")},
		Packets: 3, Bytes: 1200,
		Start: time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2005, 4, 1, 0, 0, 2, 0, time.UTC),
	}
	testutil.ExpectNoGoroutineGrowth(t, func() {
		for i := 0; i < 3; i++ {
			cap, err := NewCapture(dir, time.Minute)
			if err != nil {
				t.Fatal(err)
			}
			if err := cap.Write(rec); err != nil {
				t.Fatal(err)
			}
			if err := cap.Close(); err != nil {
				t.Fatal(err)
			}
			if err := cap.Close(); err != nil {
				t.Errorf("second Close = %v", err)
			}
			if err := cap.Write(rec); err == nil {
				t.Error("Write after Close: want error")
			}
		}
	})
	recs, err := ReadArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Errorf("archive has %d records, want 3", len(recs))
	}
}
