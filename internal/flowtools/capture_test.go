package flowtools

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"infilter/internal/flow"
)

// writeJunk drops non-archive files into dir to check they are ignored.
func writeJunk(dir string) error {
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("junk"), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "other.dat"), []byte("junk"), 0o644)
}

func TestCaptureRotatesByInterval(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCapture(dir, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2005, 4, 1, 12, 0, 0, 0, time.UTC)
	var want []flow.Record
	for i := 0; i < 30; i++ {
		r := rec("61.0.0.1", uint16(1000+i), flow.ProtoTCP, uint32(i+1), 100, time.Second)
		r.Start = base.Add(time.Duration(i) * time.Minute)
		r.End = r.Start.Add(time.Second)
		want = append(want, r)
		if err := c.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if c.Written() != 30 {
		t.Errorf("Written = %d", c.Written())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	files, err := ArchiveFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 30 minutes of flows at a 10-minute rotation: 3-4 files.
	if len(files) < 3 || len(files) > 4 {
		t.Errorf("archive has %d files: %v", len(files), files)
	}
	got, err := ReadArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("archive holds %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestCaptureAppendsToExistingSlot(t *testing.T) {
	dir := t.TempDir()
	base := time.Date(2005, 4, 1, 12, 0, 0, 0, time.UTC)
	write := func(n int, port uint16) {
		t.Helper()
		c, err := NewCapture(dir, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			r := rec("61.0.0.1", port, flow.ProtoTCP, 1, 40, 0)
			r.Start, r.End = base, base.Add(time.Second)
			if err := c.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write(3, 80)
	write(2, 443) // re-open the same hour slot

	files, err := ArchiveFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("archive has %d files, want 1", len(files))
	}
	got, err := ReadArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("archive holds %d records, want 5", len(got))
	}
	if got[3].Key.DstPort != 443 {
		t.Errorf("appended record port %d", got[3].Key.DstPort)
	}
}

func TestCaptureClosedRejectsWrites(t *testing.T) {
	c, err := NewCapture(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	if err := c.Write(rec("61.0.0.1", 80, flow.ProtoTCP, 1, 40, 0)); err == nil {
		t.Error("Write after Close: want error")
	}
}

func TestArchiveIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCapture(dir, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	r := rec("61.0.0.1", 80, flow.ProtoTCP, 1, 40, 0)
	if err := c.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writeJunk(dir); err != nil {
		t.Fatal(err)
	}
	files, err := ArchiveFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Errorf("archive lists %d files, want only the capture file", len(files))
	}
}

func TestReadArchiveMissingDir(t *testing.T) {
	if _, err := ReadArchive("/no/such/dir/anywhere"); err == nil {
		t.Error("missing dir: want error")
	}
}
