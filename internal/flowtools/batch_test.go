package flowtools

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netflow"
	"infilter/internal/telemetry"
	"infilter/internal/testutil"
)

// indexedRecords builds n records whose DstPort carries the index, so a
// received sequence identifies exactly which records arrived and in what
// order.
func indexedRecords(n int) []flow.Record {
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = rec("61.0.0.1", uint16(i), flow.ProtoTCP, 2, 120, time.Second)
	}
	return recs
}

// encodeV5 packs records into v5 export datagrams.
func encodeV5(recs []flow.Record) [][]byte {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	dgs := netflow.NewV5Encoder(boot, 1).Encode(recs, boot.Add(time.Minute))
	raws := make([][]byte, len(dgs))
	for i, d := range dgs {
		raws[i] = d.Raw
	}
	return raws
}

// sendAll writes every datagram to the port from one sender socket.
func sendAll(t *testing.T, port int, raws [][]byte) {
	t.Helper()
	conn, err := net.Dial("udp", net.JoinHostPort("127.0.0.1", itoa(port)))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, raw := range raws {
		if _, err := conn.Write(raw); err != nil {
			t.Fatal(err)
		}
	}
}

// awaitRecords polls until fn() reports want records or the deadline
// passes.
func awaitRecords(t *testing.T, want int, fn func() int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := fn(); got >= want {
			if got > want {
				t.Fatalf("received %d records, want %d", got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d records, want %d", fn(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBatchCollectorMatchesClassic replays the same datagram stream
// through the per-datagram configuration (MaxRecords 1) and batched
// configurations across the pinned batch sizes and two flush timeouts:
// the concatenated record sequences must be identical — batching changes
// delivery granularity, never content or order.
func TestBatchCollectorMatchesClassic(t *testing.T) {
	const n = 300
	raws := encodeV5(indexedRecords(n))

	// Classic reference sequence.
	var mu sync.Mutex
	var want []flow.Record
	classic := New(Config{MaxRecords: 1}, func(b Batch) {
		mu.Lock()
		want = append(want, b.Records...)
		mu.Unlock()
	})
	port, err := classic.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	sendAll(t, port, raws)
	awaitRecords(t, n, func() int { mu.Lock(); defer mu.Unlock(); return len(want) })
	if err := classic.Close(); err != nil {
		t.Fatal(err)
	}

	for _, size := range []int{1, 16, 256} {
		for _, timeout := range []time.Duration{2 * time.Millisecond, 50 * time.Millisecond} {
			t.Run(fmt.Sprintf("batch=%d/timeout=%s", size, timeout), func(t *testing.T) {
				var bmu sync.Mutex
				var got []flow.Record
				var batches int
				bc := New(Config{MaxRecords: size, FlushTimeout: timeout},
					func(b Batch) {
						bmu.Lock()
						got = append(got, b.Records...)
						batches++
						bmu.Unlock()
					})
				bport, err := bc.Listen(0)
				if err != nil {
					t.Fatal(err)
				}
				sendAll(t, bport, raws)
				awaitRecords(t, n, func() int { bmu.Lock(); defer bmu.Unlock(); return len(got) })
				if err := bc.Close(); err != nil {
					t.Fatal(err)
				}
				bmu.Lock()
				defer bmu.Unlock()
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("record %d differs: batched %+v, classic %+v", i, got[i], want[i])
					}
				}
				if batches == 0 {
					t.Error("no batches delivered")
				}
			})
		}
	}
}

// TestBatchCollectorTrickleFlush is the regression test for the
// trickle-traffic fix: one datagram far below MaxRecords must still be
// delivered within FlushTimeout (plus scheduling slack), not held until
// a full batch accumulates.
func TestBatchCollectorTrickleFlush(t *testing.T) {
	raws := encodeV5(indexedRecords(5)) // one datagram, 5 records
	if len(raws) != 1 {
		t.Fatalf("trickle input spans %d datagrams, want 1", len(raws))
	}
	delivered := make(chan Batch, 1)
	m := NewIngestMetrics(telemetry.NewRegistry())
	bc := New(Config{MaxRecords: 4096, FlushTimeout: 25 * time.Millisecond},
		func(b Batch) {
			recs := append([]flow.Record(nil), b.Records...)
			delivered <- Batch{Port: b.Port, Records: recs}
		})
	bc.SetMetrics(m)
	defer bc.Close()
	port, err := bc.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sendAll(t, port, raws)
	select {
	case b := <-delivered:
		if len(b.Records) != 5 {
			t.Errorf("trickle batch has %d records, want 5", len(b.Records))
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Errorf("trickle batch took %s", waited)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("partial batch never flushed: trickle traffic is stranded")
	}
	if m.FlushTimeout.Value() != 1 {
		t.Errorf("flushes{reason=timeout} = %d, want 1", m.FlushTimeout.Value())
	}
	if m.BatchRecords.Snapshot().Count() != 1 {
		t.Errorf("batch-size histogram count = %d, want 1", m.BatchRecords.Snapshot().Count())
	}
}

// TestBatchCollectorCloseDeliversPartialBatch pins the shutdown drain: a
// batch still short of MaxRecords with a long FlushTimeout must be
// handed over when the collector closes, not dropped with the sockets.
func TestBatchCollectorCloseDeliversPartialBatch(t *testing.T) {
	raws := encodeV5(indexedRecords(5))
	var mu sync.Mutex
	var got int
	m := NewIngestMetrics(telemetry.NewRegistry())
	bc := New(Config{MaxRecords: 4096, FlushTimeout: time.Hour},
		func(b Batch) {
			mu.Lock()
			got += len(b.Records)
			mu.Unlock()
		})
	bc.SetMetrics(m)
	port, err := bc.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	sendAll(t, port, raws)
	// Wait until the reader has decoded the records (they now sit in its
	// partial batch), then close underneath it.
	awaitRecords(t, 5, func() int { r, _ := bc.Stats(); return r })
	if err := bc.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if got != 5 {
		t.Errorf("close delivered %d records, want 5", got)
	}
	if m.FlushClose.Value() != 1 {
		t.Errorf("flushes{reason=close} = %d, want 1", m.FlushClose.Value())
	}
}

// TestBatchCollectorReaderPoolLeak cycles a multi-reader pool with live
// traffic and fails if any reader goroutine survives Close.
func TestBatchCollectorReaderPoolLeak(t *testing.T) {
	raws := encodeV5(indexedRecords(30))
	testutil.ExpectNoGoroutineGrowth(t, func() {
		for i := 0; i < 3; i++ {
			var mu sync.Mutex
			var got int
			bc := New(Config{Readers: 4, MaxRecords: 8, FlushTimeout: 5 * time.Millisecond},
				func(b Batch) {
					mu.Lock()
					got += len(b.Records)
					mu.Unlock()
				})
			port, err := bc.Listen(0)
			if err != nil {
				t.Fatal(err)
			}
			sendAll(t, port, raws)
			awaitRecords(t, 30, func() int { mu.Lock(); defer mu.Unlock(); return got })
			if err := bc.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := bc.Listen(0); err != ErrCollectorClosed {
				t.Errorf("Listen after Close = %v, want ErrCollectorClosed", err)
			}
		}
	})
}

// TestBatchCollectorMultiReader exercises the SO_REUSEPORT pool from
// several sender sockets: every record must arrive exactly once across
// the readers' batches (kernel hashing decides which reader, so only
// the multiset is deterministic).
func TestBatchCollectorMultiReader(t *testing.T) {
	const n = 600
	raws := encodeV5(indexedRecords(n))
	var mu sync.Mutex
	seen := make(map[uint16]int, n)
	var total int
	bc := New(Config{Readers: 4, MaxRecords: 64, FlushTimeout: 5 * time.Millisecond},
		func(b Batch) {
			mu.Lock()
			for _, r := range b.Records {
				seen[r.Key.DstPort]++
			}
			total += len(b.Records)
			mu.Unlock()
		})
	defer bc.Close()
	if reusePortSupported && bc.Readers() != 4 {
		t.Fatalf("Readers() = %d, want 4", bc.Readers())
	}
	port, err := bc.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	// Spread the datagrams over several sender sockets so reuseport
	// hashing can involve more than one reader.
	for i := 0; i < len(raws); i += 4 {
		end := i + 4
		if end > len(raws) {
			end = len(raws)
		}
		sendAll(t, port, raws[i:end])
	}
	awaitRecords(t, n, func() int { mu.Lock(); defer mu.Unlock(); return total })
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if seen[uint16(i)] != 1 {
			t.Fatalf("record %d seen %d times, want 1", i, seen[uint16(i)])
		}
	}
}
