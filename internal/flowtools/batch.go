package flowtools

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netflow"
	"infilter/internal/telemetry"
)

// Batch collector defaults.
const (
	// DefaultBatchRecords is the flush threshold when Config leaves
	// MaxRecords zero: enough to amortize per-batch costs, small enough to
	// keep queue latency in the tens of microseconds at line rate.
	DefaultBatchRecords = 256
	// DefaultFlushTimeout bounds how long a partial batch may wait for
	// more datagrams, so trickle traffic keeps the per-record detection
	// latency of the classic collector.
	DefaultFlushTimeout = 5 * time.Millisecond
)

// Config assembles a Collector.
type Config struct {
	// Readers is the number of reader sockets (and goroutines) per
	// listened port. More than one requires SO_REUSEPORT kernel load
	// balancing; on platforms without it the count is clamped to 1.
	// Zero defaults to 1.
	Readers int
	// MaxRecords flushes a reader's batch once it holds at least this
	// many records. Zero defaults to DefaultBatchRecords.
	MaxRecords int
	// FlushTimeout delivers a partially filled batch after this long
	// even if no further datagrams arrive (the trickle-traffic bound).
	// Zero defaults to DefaultFlushTimeout.
	FlushTimeout time.Duration
	// ReadBuffer sets SO_RCVBUF on each reader socket when positive, so
	// bursts ride out handler latency in the kernel instead of dropping.
	ReadBuffer int
}

func (cfg *Config) applyDefaults() {
	if cfg.Readers <= 0 {
		cfg.Readers = 1
	}
	if !reusePortSupported && cfg.Readers > 1 {
		cfg.Readers = 1
	}
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = DefaultBatchRecords
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = DefaultFlushTimeout
	}
}

// Batch is one batched delivery: flow records decoded from export
// datagrams that arrived on one local UDP port, in arrival order as seen
// by one reader. The Records slice is reused by the reader and valid
// only for the duration of the call.
//
// Exporter and Version identify where the records came from when the
// whole batch shares one origin — always the case at MaxRecords 1, where
// every batch is exactly one datagram's records (the classic per-record
// path). A batch aggregated from datagrams of different exporters or
// export versions carries ""/0 instead.
type Batch struct {
	Port     int
	Exporter string
	Version  uint16
	Records  []flow.Record
}

// Handler consumes one batch. It is invoked concurrently from every
// reader goroutine and must be safe for concurrent use.
type Handler func(b Batch)

// IngestMetrics instruments the batched ingest path: the classic
// collector counters plus batch-shape telemetry (records per delivered
// batch, flush causes) and a records/sec gauge derived from the record
// counter between scrapes.
type IngestMetrics struct {
	*CollectorMetrics
	// BatchRecords is the infilter_ingest_batch_records histogram.
	BatchRecords *telemetry.Histogram
	// FlushFull/FlushTimeout/FlushClose split
	// infilter_ingest_batch_flushes_total by reason.
	FlushFull    *telemetry.Counter
	FlushTimeout *telemetry.Counter
	FlushClose   *telemetry.Counter
}

// NewIngestMetrics registers the batched-ingest series on r, including
// the classic collector counters (a daemon runs one ingest path, so the
// names never collide).
func NewIngestMetrics(r *telemetry.Registry) *IngestMetrics {
	m := &IngestMetrics{
		CollectorMetrics: NewCollectorMetrics(r),
		BatchRecords: r.Histogram("infilter_ingest_batch_records",
			"Flow records per delivered ingest batch.",
			telemetry.BatchSizeBuckets(), telemetry.UnitNone),
	}
	flushes := func(reason string) *telemetry.Counter {
		return r.Counter("infilter_ingest_batch_flushes_total",
			"Ingest batches delivered, by what triggered the flush.",
			telemetry.Label{Key: "reason", Value: reason})
	}
	m.FlushFull = flushes("full")
	m.FlushTimeout = flushes("timeout")
	m.FlushClose = flushes("close")
	r.GaugeFunc("infilter_ingest_records_per_second",
		"Flow records decoded per second, averaged between scrapes.",
		telemetry.NewRate(m.Records.Value).PerSecond)
	return m
}

func unregisteredIngestMetrics() *IngestMetrics {
	return &IngestMetrics{
		CollectorMetrics: unregisteredCollectorMetrics(),
		BatchRecords:     telemetry.NewHistogram(telemetry.BatchSizeBuckets()),
		FlushFull:        telemetry.NewCounter(),
		FlushTimeout:     telemetry.NewCounter(),
		FlushClose:       telemetry.NewCounter(),
	}
}

// datagramView is one received datagram as seen by a reader: the raw
// payload and the exporter's remote address. Views alias reader-owned
// buffers and are valid only until the reader's next read call.
type datagramView struct {
	raw      []byte
	exporter string
}

// datagramReader is the platform seam of the batch collector: the Linux
// implementation drains multiple datagrams per wakeup with recvmmsg, the
// portable fallback reads one at a time. Readers honor the connection's
// read deadline (timeouts surface as net.Error timeouts).
type datagramReader interface {
	read() ([]datagramView, error)
}

// singleReader is the portable datagramReader: one blocking ReadFromUDP
// per call. Used on platforms without recvmmsg and as the degraded mode
// when the raw descriptor is unavailable.
type singleReader struct {
	conn *net.UDPConn
	buf  []byte
	view [1]datagramView
}

func newSingleReader(conn *net.UDPConn) *singleReader {
	return &singleReader{conn: conn, buf: make([]byte, 65536)}
}

func (r *singleReader) read() ([]datagramView, error) {
	n, remote, err := r.conn.ReadFromUDP(r.buf)
	if err != nil {
		return nil, err
	}
	r.view[0] = datagramView{raw: r.buf[:n], exporter: remote.String()}
	return r.view[:1], nil
}

// Collector is the flow-capture path: per listened port it runs one or
// more reader sockets (SO_REUSEPORT when more than one), each reader
// decoding datagrams through its own DecodeBuffer and accumulating
// records into a batch delivered to the Handler when it reaches
// MaxRecords — or after FlushTimeout, so a trickle of traffic is never
// stranded waiting for a full batch. MaxRecords 1 makes every delivery
// exactly one datagram's records, reproducing the classic per-record
// collector. Close stops every reader, delivering any partially filled
// batches first.
type Collector struct {
	handler   Handler
	cfg       Config
	metrics   *IngestMetrics
	templates *netflow.TemplateCache

	mu     sync.Mutex
	conns  []*net.UDPConn
	closed bool

	wg sync.WaitGroup
}

// New returns a collector delivering to handler with a private template
// cache of default bounds (see SetTemplateCache).
func New(cfg Config, handler Handler) *Collector {
	cfg.applyDefaults()
	return &Collector{
		handler:   handler,
		cfg:       cfg,
		metrics:   unregisteredIngestMetrics(),
		templates: netflow.NewTemplateCache(netflow.TemplateCacheConfig{}),
	}
}

// Readers reports the per-port reader count after platform clamping.
func (c *Collector) Readers() int { return c.cfg.Readers }

// SetMetrics installs runtime instrumentation (nil reverts to
// unregistered counters). Call before the first Listen.
func (c *Collector) SetMetrics(m *IngestMetrics) {
	if m == nil {
		m = unregisteredIngestMetrics()
	}
	c.metrics = m
}

// SetTemplateCache installs the v9/IPFIX template cache shared by all
// readers (nil reverts to a private default one). Call before the first
// Listen.
func (c *Collector) SetTemplateCache(tc *netflow.TemplateCache) {
	if tc == nil {
		tc = netflow.NewTemplateCache(netflow.TemplateCacheConfig{})
	}
	c.templates = tc
}

// TemplateCache returns the cache the readers decode through.
func (c *Collector) TemplateCache() *netflow.TemplateCache { return c.templates }

// Listen binds cfg.Readers sockets to the given UDP port (0 picks an
// ephemeral port; the remaining readers then bind the chosen one) and
// starts their reader goroutines. It returns the bound port.
func (c *Collector) Listen(port int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrCollectorClosed
	}
	reuse := c.cfg.Readers > 1
	bound := port
	var conns []*net.UDPConn
	for i := 0; i < c.cfg.Readers; i++ {
		conn, err := listenUDPPort(bound, c.cfg.ReadBuffer, reuse)
		if err != nil {
			for _, pc := range conns {
				pc.Close()
			}
			return 0, fmt.Errorf("flowtools: listen udp %d (reader %d): %w", bound, i, err)
		}
		conns = append(conns, conn)
		if addr, ok := conn.LocalAddr().(*net.UDPAddr); ok {
			bound = addr.Port
		}
	}
	c.conns = append(c.conns, conns...)
	for _, conn := range conns {
		c.wg.Add(1)
		go c.readLoop(conn, newDatagramReader(conn), bound)
	}
	return bound, nil
}

// readLoop is one reader: drain datagrams, decode, batch, flush. The
// flush deadline is armed when the first records of a batch land and
// disarmed on flush, so an idle reader blocks indefinitely while a
// partial batch waits at most FlushTimeout.
func (c *Collector) readLoop(conn *net.UDPConn, r datagramReader, port int) {
	defer c.wg.Done()
	db := netflow.NewDecodeBuffer(c.templates)
	batch := make([]flow.Record, 0, c.cfg.MaxRecords)
	var (
		flushAt       time.Time
		batchExporter string
		batchVersion  uint16
		batchMixed    bool
	)
	flush := func(reason *telemetry.Counter) {
		if len(batch) == 0 {
			return
		}
		c.metrics.BatchRecords.Observe(int64(len(batch)))
		reason.Inc()
		b := Batch{Port: port, Records: batch}
		if !batchMixed {
			b.Exporter, b.Version = batchExporter, batchVersion
		}
		c.handler(b)
		batch = batch[:0]
		batchMixed = false
		flushAt = time.Time{}
	}
	for {
		conn.SetReadDeadline(flushAt) // zero flushAt: no deadline
		views, err := r.read()
		if err != nil {
			if isTimeout(err) {
				flush(c.metrics.FlushTimeout)
				continue
			}
			// Closed socket (or fatal error): deliver the partial batch,
			// stop this reader.
			flush(c.metrics.FlushClose)
			return
		}
		m := c.metrics
		for _, v := range views {
			m.Datagrams.Inc()
			db.SetExporter(v.exporter)
			msg, err := netflow.Decode(v.raw, db)
			if err != nil {
				m.DecodeErrors.Inc()
				continue
			}
			countRecords(m.Records, msg.Records)
			if len(msg.Records) == 0 {
				continue
			}
			if len(batch) == 0 {
				flushAt = time.Now().Add(c.cfg.FlushTimeout)
				batchExporter, batchVersion = v.exporter, msg.Version
			} else if v.exporter != batchExporter || msg.Version != batchVersion {
				batchMixed = true
			}
			// The decoded records alias db and the next Decode reuses it,
			// so the batch takes a copy (this append is also what
			// aggregates multiple datagrams into one delivery).
			batch = append(batch, msg.Records...)
			if len(batch) >= c.cfg.MaxRecords {
				flush(m.FlushFull)
			}
		}
	}
}

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr) && nerr.Timeout()
}

// Stats reports received records and malformed datagrams, as
// Collector.Stats does.
func (c *Collector) Stats() (received, malformed int) {
	return int(c.metrics.Records.Value()), int(c.metrics.DecodeErrors.Value())
}

// Close shuts down every reader socket and waits for the reader
// goroutines to exit. Partially filled batches are delivered before the
// readers stop. Safe to call more than once.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()

	var firstErr error
	for _, conn := range conns {
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.wg.Wait()
	return firstErr
}
