package flowtools_test

import (
	"fmt"
	"time"

	"infilter/internal/flow"
	"infilter/internal/flowtools"
	"infilter/internal/netaddr"
)

// ExampleCompileFilter shows the flow-filter expression language selecting
// Slammer-shaped flows out of a mixed set.
func ExampleCompileFilter() {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	mk := func(src string, port uint16, proto uint8) flow.Record {
		return flow.Record{
			Key: flow.Key{
				Src:     netaddr.MustParseAddr(src),
				Dst:     netaddr.MustParseAddr("192.0.2.1"),
				Proto:   proto,
				DstPort: port,
			},
			Packets: 1, Bytes: 404,
			Start: start, End: start,
		}
	}
	recs := []flow.Record{
		mk("61.0.0.1", 80, flow.ProtoTCP),
		mk("70.0.0.1", 1434, flow.ProtoUDP),
		mk("70.0.0.2", 1434, flow.ProtoUDP),
		mk("61.0.0.2", 53, flow.ProtoUDP),
	}
	pred, err := flowtools.CompileFilter("proto udp and dst-port 1434")
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range flowtools.Filter(recs, pred) {
		fmt.Println(r.Key.Src)
	}
	// Output:
	// 70.0.0.1
	// 70.0.0.2
}

// ExampleReport groups flows by destination port, the flow-report role.
func ExampleReport() {
	start := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	mk := func(port uint16, packets uint32) flow.Record {
		return flow.Record{
			Key:     flow.Key{Proto: flow.ProtoTCP, DstPort: port},
			Packets: packets, Bytes: packets * 100,
			Start: start, End: start.Add(time.Second),
		}
	}
	groups := flowtools.Report(
		[]flow.Record{mk(80, 10), mk(80, 20), mk(25, 5)},
		[]flowtools.GroupField{flowtools.GroupDstPort},
	)
	for _, g := range groups {
		fmt.Printf("port %s: %d flows, %d packets\n", g.Key, g.Flows, g.Packets)
	}
	// Output:
	// port 25: 1 flows, 5 packets
	// port 80: 2 flows, 30 packets
}
