package flowtools

import (
	"sync"
	"testing"
	"time"

	"infilter/internal/flow"
)

// TestDeprecatedConstructorsStillDeliver keeps the one-release
// compatibility wrappers honest: both pre-unification constructors must
// deliver the same records as the unified API, and NewCollector must
// reconstruct per-datagram Sources exactly.
func TestDeprecatedConstructorsStillDeliver(t *testing.T) {
	raws := encodeV5(indexedRecords(40))

	var (
		mu      sync.Mutex
		perRec  []flow.Record
		srcs    []Source
		batched int
	)
	classic := NewCollector(func(src Source, recs []flow.Record) {
		mu.Lock()
		perRec = append(perRec, recs...)
		srcs = append(srcs, src)
		mu.Unlock()
	})
	port, err := classic.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer classic.Close()
	sendAll(t, port, raws)
	awaitRecords(t, 40, func() int { mu.Lock(); defer mu.Unlock(); return len(perRec) })
	mu.Lock()
	for _, s := range srcs {
		if s.LocalPort != port || s.Exporter == "" || s.Version != 5 {
			t.Fatalf("reconstructed Source %+v, want port %d, non-empty exporter, version 5", s, port)
		}
	}
	mu.Unlock()

	bc := NewBatchCollector(BatchConfig{MaxRecords: 8, FlushTimeout: 2 * time.Millisecond},
		func(b Batch) {
			mu.Lock()
			batched += len(b.Records)
			mu.Unlock()
		})
	bport, err := bc.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	sendAll(t, bport, raws)
	awaitRecords(t, 40, func() int { mu.Lock(); defer mu.Unlock(); return batched })
}
