//go:build linux

package flowtools

import (
	"context"
	"net"
	"strconv"
	"syscall"
	"unsafe"
)

// reusePortSupported gates multi-reader listen: Linux load-balances
// datagrams across SO_REUSEPORT sockets bound to the same port.
const reusePortSupported = true

// soReusePort is SO_REUSEPORT, absent from the syscall package's Linux
// constants (it postdates the package freeze).
const soReusePort = 0xf

// listenUDPPort binds one reader socket to the loopback UDP port,
// optionally marked SO_REUSEPORT before bind so several readers can
// share the port.
func listenUDPPort(port, readBuf int, reuse bool) (*net.UDPConn, error) {
	var lc net.ListenConfig
	if reuse {
		lc.Control = func(network, address string, rc syscall.RawConn) error {
			var serr error
			if err := rc.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		}
	}
	pc, err := lc.ListenPacket(context.Background(), "udp4", "127.0.0.1:"+strconv.Itoa(port))
	if err != nil {
		return nil, err
	}
	conn := pc.(*net.UDPConn)
	if readBuf > 0 {
		conn.SetReadBuffer(readBuf)
	}
	return conn, nil
}

// newDatagramReader prefers the recvmmsg reader; if the raw descriptor
// is unavailable it degrades to single-datagram reads.
func newDatagramReader(conn *net.UDPConn) datagramReader {
	if r, err := newMmsgReader(conn); err == nil {
		return r
	}
	return newSingleReader(conn)
}

// Multi-datagram read sizing: up to mmsgBatch datagrams per syscall,
// each up to the UDP maximum so no export datagram truncates.
const (
	mmsgBatch   = 32
	mmsgBufSize = 65536
)

// mmsghdr mirrors the kernel's struct mmsghdr on linux/amd64: a msghdr
// plus the received length, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// mmsgReader drains multiple datagrams per wakeup with recvmmsg(2): it
// parks in RawConn.Read (which honors the connection's read deadline)
// until the socket is readable, then pulls up to mmsgBatch datagrams in
// one non-blocking syscall. All receive state — payload buffers, iovecs,
// sockaddr storage, header array — is allocated once at construction;
// the steady-state read path allocates only when the exporter address
// changes between datagrams (the formatted address string is cached).
type mmsgReader struct {
	rc    syscall.RawConn
	bufs  [mmsgBatch][]byte
	names [mmsgBatch][syscall.SizeofSockaddrInet4]byte
	iovs  [mmsgBatch]syscall.Iovec
	hdrs  [mmsgBatch]mmsghdr
	views [mmsgBatch]datagramView

	lastName     [syscall.SizeofSockaddrInet4]byte
	lastExporter string
}

func newMmsgReader(conn *net.UDPConn) (*mmsgReader, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	r := &mmsgReader{rc: rc}
	for i := range r.bufs {
		r.bufs[i] = make([]byte, mmsgBufSize)
		r.iovs[i] = syscall.Iovec{Base: &r.bufs[i][0], Len: mmsgBufSize}
		r.hdrs[i].hdr.Name = &r.names[i][0]
		r.hdrs[i].hdr.Namelen = uint32(len(r.names[i]))
		r.hdrs[i].hdr.Iov = &r.iovs[i]
		r.hdrs[i].hdr.Iovlen = 1
	}
	return r, nil
}

func (r *mmsgReader) read() ([]datagramView, error) {
	var n int
	var errno syscall.Errno
	err := r.rc.Read(func(fd uintptr) bool {
		n0, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&r.hdrs[0])), uintptr(len(r.hdrs)),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN {
			return false // not readable after all: park again
		}
		n, errno = int(n0), e
		return true
	})
	if err != nil {
		return nil, err // deadline expiry or closed socket
	}
	if errno != 0 {
		if errno == syscall.EINTR {
			return r.views[:0], nil
		}
		return nil, errno
	}
	for i := 0; i < n; i++ {
		r.views[i] = datagramView{
			raw:      r.bufs[i][:r.hdrs[i].len],
			exporter: r.exporterFor(i),
		}
		r.hdrs[i].hdr.Namelen = uint32(len(r.names[i]))
	}
	return r.views[:n], nil
}

// exporterFor formats datagram i's sockaddr_in as "ip:port" (matching
// (*net.UDPAddr).String()), caching the last formatted address — export
// streams repeat the same few sources, so this is nearly always a hit.
func (r *mmsgReader) exporterFor(i int) string {
	name := r.names[i]
	if name == r.lastName && r.lastExporter != "" {
		return r.lastExporter
	}
	ip := net.IPv4(name[4], name[5], name[6], name[7])
	port := int(name[2])<<8 | int(name[3])
	r.lastName = name
	r.lastExporter = net.JoinHostPort(ip.String(), strconv.Itoa(port))
	return r.lastExporter
}
