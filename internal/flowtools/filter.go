package flowtools

import (
	"fmt"
	"strconv"
	"strings"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// CompileFilter builds a flow predicate from a flow-filter style
// expression. The grammar:
//
//	expr    := and { "or" and }
//	and     := unary { "and" unary }
//	unary   := "not" unary | "(" expr ")" | primary
//	primary := "proto" (tcp|udp|icmp|<num>)
//	         | "src-port" <num>  | "dst-port" <num>
//	         | "src-net" <cidr>  | "dst-net" <cidr>
//	         | "src-as" <num>    | "dst-as" <num>
//	         | "input-if" <num>
//	         | "packets-min" <num> | "bytes-min" <num>
//
// Examples:
//
//	proto udp and dst-port 1434
//	src-net 61.0.0.0/11 or ( proto tcp and dst-port 80 )
//	not dst-net 192.0.2.0/24
func CompileFilter(expr string) (func(flow.Record) bool, error) {
	toks := tokenizeFilter(expr)
	p := &filterParser{toks: toks}
	pred, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("flowtools: filter: trailing input at %q", p.peek())
	}
	return pred, nil
}

func tokenizeFilter(s string) []string {
	s = strings.ReplaceAll(s, "(", " ( ")
	s = strings.ReplaceAll(s, ")", " ) ")
	return strings.Fields(s)
}

type filterParser struct {
	toks []string
	pos  int
}

func (p *filterParser) eof() bool { return p.pos >= len(p.toks) }

func (p *filterParser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *filterParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *filterParser) parseOr() (func(flow.Record) bool, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(r flow.Record) bool { return l(r) || right(r) }
	}
	return left, nil
}

func (p *filterParser) parseAnd() (func(flow.Record) bool, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l := left
		left = func(r flow.Record) bool { return l(r) && right(r) }
	}
	return left, nil
}

func (p *filterParser) parseUnary() (func(flow.Record) bool, error) {
	switch {
	case strings.EqualFold(p.peek(), "not"):
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return func(r flow.Record) bool { return !inner(r) }, nil
	case p.peek() == "(":
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("flowtools: filter: missing ')'")
		}
		return inner, nil
	default:
		return p.parsePrimary()
	}
}

func (p *filterParser) parsePrimary() (func(flow.Record) bool, error) {
	field := strings.ToLower(p.next())
	if field == "" {
		return nil, fmt.Errorf("flowtools: filter: unexpected end of expression")
	}
	arg := p.next()
	if arg == "" {
		return nil, fmt.Errorf("flowtools: filter: %s needs an argument", field)
	}
	switch field {
	case "proto":
		proto, err := parseProto(arg)
		if err != nil {
			return nil, err
		}
		return func(r flow.Record) bool { return r.Key.Proto == proto }, nil
	case "src-port", "dst-port", "src-as", "dst-as", "input-if":
		v, err := strconv.ParseUint(arg, 10, 16)
		if err != nil {
			return nil, fmt.Errorf("flowtools: filter: %s %q: %w", field, arg, err)
		}
		n := uint16(v)
		switch field {
		case "src-port":
			return func(r flow.Record) bool { return r.Key.SrcPort == n }, nil
		case "dst-port":
			return func(r flow.Record) bool { return r.Key.DstPort == n }, nil
		case "src-as":
			return func(r flow.Record) bool { return r.SrcAS == n }, nil
		case "dst-as":
			return func(r flow.Record) bool { return r.DstAS == n }, nil
		default:
			return func(r flow.Record) bool { return r.Key.InputIf == n }, nil
		}
	case "src-net", "dst-net":
		pfx, err := netaddr.ParsePrefix(arg)
		if err != nil {
			return nil, fmt.Errorf("flowtools: filter: %s %q: %w", field, arg, err)
		}
		if field == "src-net" {
			return func(r flow.Record) bool { return pfx.Contains(r.Key.Src) }, nil
		}
		return func(r flow.Record) bool { return pfx.Contains(r.Key.Dst) }, nil
	case "packets-min", "bytes-min":
		v, err := strconv.ParseUint(arg, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("flowtools: filter: %s %q: %w", field, arg, err)
		}
		n := uint32(v)
		if field == "packets-min" {
			return func(r flow.Record) bool { return r.Packets >= n }, nil
		}
		return func(r flow.Record) bool { return r.Bytes >= n }, nil
	default:
		return nil, fmt.Errorf("flowtools: filter: unknown field %q", field)
	}
}

func parseProto(arg string) (uint8, error) {
	switch strings.ToLower(arg) {
	case "tcp":
		return flow.ProtoTCP, nil
	case "udp":
		return flow.ProtoUDP, nil
	case "icmp":
		return flow.ProtoICMP, nil
	default:
		v, err := strconv.ParseUint(arg, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("flowtools: filter: proto %q: %w", arg, err)
		}
		return uint8(v), nil
	}
}
