package flowtools

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// GroupField selects one flow key field for report grouping, mirroring
// flow-report's ip-source-address, ip-destination-address, input-interface,
// source-as etc. options.
type GroupField int

// Grouping fields.
const (
	GroupSrcAddr GroupField = iota + 1
	GroupDstAddr
	GroupProto
	GroupSrcPort
	GroupDstPort
	GroupTOS
	GroupInputIf
	GroupSrcAS
	GroupDstAS
)

var groupFieldNames = map[GroupField]string{
	GroupSrcAddr: "ip-source-address",
	GroupDstAddr: "ip-destination-address",
	GroupProto:   "ip-protocol",
	GroupSrcPort: "ip-source-port",
	GroupDstPort: "ip-destination-port",
	GroupTOS:     "ip-tos",
	GroupInputIf: "input-interface",
	GroupSrcAS:   "source-as",
	GroupDstAS:   "destination-as",
}

// String returns the flow-report style name of f.
func (f GroupField) String() string {
	if n, ok := groupFieldNames[f]; ok {
		return n
	}
	return fmt.Sprintf("group-field(%d)", int(f))
}

// AllKeyFields is the full key grouping, producing per-flow statistics.
func AllKeyFields() []GroupField {
	return []GroupField{
		GroupSrcAddr, GroupDstAddr, GroupProto, GroupSrcPort,
		GroupDstPort, GroupTOS, GroupInputIf,
	}
}

func fieldValue(r flow.Record, f GroupField) string {
	switch f {
	case GroupSrcAddr:
		return r.Key.Src.String()
	case GroupDstAddr:
		return r.Key.Dst.String()
	case GroupProto:
		return strconv.Itoa(int(r.Key.Proto))
	case GroupSrcPort:
		return strconv.Itoa(int(r.Key.SrcPort))
	case GroupDstPort:
		return strconv.Itoa(int(r.Key.DstPort))
	case GroupTOS:
		return strconv.Itoa(int(r.Key.TOS))
	case GroupInputIf:
		return strconv.Itoa(int(r.Key.InputIf))
	case GroupSrcAS:
		return strconv.Itoa(int(r.SrcAS))
	case GroupDstAS:
		return strconv.Itoa(int(r.DstAS))
	default:
		return "?"
	}
}

// GroupStats aggregates the flows sharing one grouping key.
type GroupStats struct {
	Key        string
	Flows      int
	Packets    uint64
	Bytes      uint64
	Duration   time.Duration // summed active duration
	AvgBitRate float64       // mean of per-flow bit rates
	AvgPktRate float64       // mean of per-flow packet rates
}

// Report groups records by the given fields and aggregates statistics per
// group, sorted by group key for deterministic output.
func Report(recs []flow.Record, fields []GroupField) []GroupStats {
	groups := make(map[string]*GroupStats)
	for _, r := range recs {
		parts := make([]string, len(fields))
		for i, f := range fields {
			parts[i] = fieldValue(r, f)
		}
		key := strings.Join(parts, "|")
		g, ok := groups[key]
		if !ok {
			g = &GroupStats{Key: key}
			groups[key] = g
		}
		g.Flows++
		g.Packets += uint64(r.Packets)
		g.Bytes += uint64(r.Bytes)
		g.Duration += r.Duration()
		g.AvgBitRate += r.BitRate()
		g.AvgPktRate += r.PacketRate()
	}
	out := make([]GroupStats, 0, len(groups))
	for _, g := range groups {
		g.AvgBitRate /= float64(g.Flows)
		g.AvgPktRate /= float64(g.Flows)
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Filter returns the records matching pred, preserving order.
func Filter(recs []flow.Record, pred func(flow.Record) bool) []flow.Record {
	var out []flow.Record
	for _, r := range recs {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// asciiFields is the column count of the ASCII interchange format.
const asciiFields = 13

// WriteASCII emits records in a flow-export-style ASCII format: one flow
// per line, comma-separated:
//
//	src,dst,proto,srcPort,dstPort,tos,inputIf,packets,bytes,startUnixNano,endUnixNano,srcAS,dstAS
func WriteASCII(w io.Writer, recs []flow.Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		_, err := fmt.Fprintf(bw, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			r.Key.Src, r.Key.Dst, r.Key.Proto, r.Key.SrcPort, r.Key.DstPort,
			r.Key.TOS, r.Key.InputIf, r.Packets, r.Bytes,
			r.Start.UnixNano(), r.End.UnixNano(), r.SrcAS, r.DstAS)
		if err != nil {
			return fmt.Errorf("flowtools: write ascii: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flowtools: flush ascii: %w", err)
	}
	return nil
}

// ReadASCII parses records from the ASCII interchange format.
func ReadASCII(r io.Reader) ([]flow.Record, error) {
	var out []flow.Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != asciiFields {
			return nil, fmt.Errorf("flowtools: ascii line %d: %d fields, want %d", line, len(parts), asciiFields)
		}
		src, err := netaddr.ParseAddr(parts[0])
		if err != nil {
			return nil, fmt.Errorf("flowtools: ascii line %d: %w", line, err)
		}
		dst, err := netaddr.ParseAddr(parts[1])
		if err != nil {
			return nil, fmt.Errorf("flowtools: ascii line %d: %w", line, err)
		}
		nums := make([]int64, asciiFields-2)
		for i, p := range parts[2:] {
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("flowtools: ascii line %d field %d: %w", line, i+3, err)
			}
			nums[i] = v
		}
		out = append(out, flow.Record{
			Key: flow.Key{
				Src: src, Dst: dst,
				Proto:   uint8(nums[0]),
				SrcPort: uint16(nums[1]),
				DstPort: uint16(nums[2]),
				TOS:     uint8(nums[3]),
				InputIf: uint16(nums[4]),
			},
			Packets: uint32(nums[5]),
			Bytes:   uint32(nums[6]),
			Start:   time.Unix(0, nums[7]).UTC(),
			End:     time.Unix(0, nums[8]).UTC(),
			SrcAS:   uint16(nums[9]),
			DstAS:   uint16(nums[10]),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("flowtools: read ascii: %w", err)
	}
	return out, nil
}
