package flowtools

import (
	"testing"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

func filterRec(src string, dstPort uint16, proto uint8) flow.Record {
	r := rec(src, dstPort, proto, 10, 4000, 0)
	return r
}

func TestCompileFilterPrimaries(t *testing.T) {
	tests := []struct {
		expr  string
		match flow.Record
		miss  flow.Record
	}{
		{"proto tcp", filterRec("61.0.0.1", 80, flow.ProtoTCP), filterRec("61.0.0.1", 53, flow.ProtoUDP)},
		{"proto udp", filterRec("61.0.0.1", 53, flow.ProtoUDP), filterRec("61.0.0.1", 80, flow.ProtoTCP)},
		{"proto icmp", filterRec("61.0.0.1", 0, flow.ProtoICMP), filterRec("61.0.0.1", 80, flow.ProtoTCP)},
		{"proto 47", filterRec("61.0.0.1", 0, 47), filterRec("61.0.0.1", 0, flow.ProtoICMP)},
		{"dst-port 1434", filterRec("61.0.0.1", 1434, flow.ProtoUDP), filterRec("61.0.0.1", 53, flow.ProtoUDP)},
		{"src-net 61.0.0.0/11", filterRec("61.5.5.5", 80, flow.ProtoTCP), filterRec("70.5.5.5", 80, flow.ProtoTCP)},
		{"dst-net 192.0.2.0/24", filterRec("61.0.0.1", 80, flow.ProtoTCP), func() flow.Record {
			r := filterRec("61.0.0.1", 80, flow.ProtoTCP)
			r.Key.Dst = netaddr.MustParseAddr("10.0.0.1")
			return r
		}()},
		{"packets-min 5", filterRec("61.0.0.1", 80, flow.ProtoTCP), func() flow.Record {
			r := filterRec("61.0.0.1", 80, flow.ProtoTCP)
			r.Packets = 1
			return r
		}()},
		{"bytes-min 4000", filterRec("61.0.0.1", 80, flow.ProtoTCP), func() flow.Record {
			r := filterRec("61.0.0.1", 80, flow.ProtoTCP)
			r.Bytes = 100
			return r
		}()},
		{"src-as 77", filterRec("61.0.0.1", 80, flow.ProtoTCP), func() flow.Record {
			r := filterRec("61.0.0.1", 80, flow.ProtoTCP)
			r.SrcAS = 9
			return r
		}()},
	}
	for _, tt := range tests {
		pred, err := CompileFilter(tt.expr)
		if err != nil {
			t.Errorf("CompileFilter(%q): %v", tt.expr, err)
			continue
		}
		if !pred(tt.match) {
			t.Errorf("%q should match %+v", tt.expr, tt.match.Key)
		}
		if pred(tt.miss) {
			t.Errorf("%q should not match %+v", tt.expr, tt.miss.Key)
		}
	}
}

func TestCompileFilterBoolean(t *testing.T) {
	slammer := filterRec("70.1.1.1", 1434, flow.ProtoUDP)
	web := filterRec("61.0.0.1", 80, flow.ProtoTCP)
	dns := filterRec("61.0.0.1", 53, flow.ProtoUDP)

	pred, err := CompileFilter("proto udp and dst-port 1434")
	if err != nil {
		t.Fatal(err)
	}
	if !pred(slammer) || pred(web) || pred(dns) {
		t.Error("and-expression wrong")
	}

	pred, err = CompileFilter("dst-port 80 or dst-port 53")
	if err != nil {
		t.Fatal(err)
	}
	if !pred(web) || !pred(dns) || pred(slammer) {
		t.Error("or-expression wrong")
	}

	pred, err = CompileFilter("not proto tcp")
	if err != nil {
		t.Fatal(err)
	}
	if pred(web) || !pred(dns) {
		t.Error("not-expression wrong")
	}

	// Precedence: and binds tighter than or.
	pred, err = CompileFilter("dst-port 80 or proto udp and dst-port 1434")
	if err != nil {
		t.Fatal(err)
	}
	if !pred(web) || !pred(slammer) || pred(dns) {
		t.Error("precedence wrong")
	}

	// Parentheses override precedence.
	pred, err = CompileFilter("( dst-port 80 or proto udp ) and src-net 61.0.0.0/11")
	if err != nil {
		t.Fatal(err)
	}
	if !pred(web) || !pred(dns) || pred(slammer) {
		t.Error("parenthesized expression wrong")
	}

	// Parens without surrounding spaces tokenize too.
	pred, err = CompileFilter("(dst-port 80)or(dst-port 53)")
	if err != nil {
		t.Fatal(err)
	}
	if !pred(web) || !pred(dns) {
		t.Error("tight-paren expression wrong")
	}
}

func TestCompileFilterErrors(t *testing.T) {
	for _, expr := range []string{
		"",
		"bogus-field 5",
		"proto",
		"proto xyz",
		"dst-port notanumber",
		"dst-port 99999999",
		"src-net notacidr",
		"( proto tcp",
		"proto tcp )",
		"proto tcp proto udp",
		"not",
	} {
		if _, err := CompileFilter(expr); err == nil {
			t.Errorf("CompileFilter(%q): want error", expr)
		}
	}
}

func TestFilterIntegrationWithReport(t *testing.T) {
	recs := []flow.Record{
		filterRec("61.0.0.1", 80, flow.ProtoTCP),
		filterRec("61.0.0.2", 80, flow.ProtoTCP),
		filterRec("70.0.0.1", 1434, flow.ProtoUDP),
	}
	pred, err := CompileFilter("proto tcp and dst-port 80")
	if err != nil {
		t.Fatal(err)
	}
	kept := Filter(recs, pred)
	if len(kept) != 2 {
		t.Fatalf("filtered %d, want 2", len(kept))
	}
	groups := Report(kept, []GroupField{GroupDstPort})
	if len(groups) != 1 || groups[0].Key != "80" {
		t.Errorf("report %v", groups)
	}
}
