// Package flowtools reimplements the slice of the flow-tools suite the
// InFilter prototype depends on (paper §5.1.2): flow-capture (a UDP
// receiver for NetFlow v5/v9/IPFIX export datagrams), a binary flow
// store, and flow-report (per-flow and grouped statistics with ASCII
// import/export).
//
// Flow capture is one Collector type, built with New. Batch shape is
// configuration, not API: Config.MaxRecords chooses between batched
// delivery (the default, amortizing per-batch costs) and the classic
// per-datagram path (MaxRecords 1 delivers every datagram's records the
// moment they decode). The pre-unification constructors NewCollector and
// NewBatchCollector remain as deprecated wrappers in deprecated.go.
package flowtools

import (
	"errors"

	"infilter/internal/flow"
	"infilter/internal/telemetry"
)

// CollectorMetrics are the ingest-side runtime counters: datagrams
// received off the wire, flow records decoded from them, and datagrams
// dropped as undecodable. They are the collector's single source of
// truth — Stats derives from them. The record series carries a `family`
// label ("4" or "6") keyed on each record's source address, so a
// dual-stack deployment can see its ingest mix; summing over the label
// recovers the total.
type CollectorMetrics struct {
	Datagrams    *telemetry.Counter
	Records      telemetry.FamilyCounter
	DecodeErrors *telemetry.Counter
}

// NewCollectorMetrics registers the collector counters on r.
func NewCollectorMetrics(r *telemetry.Registry) *CollectorMetrics {
	return &CollectorMetrics{
		Datagrams:    r.Counter("infilter_collector_datagrams_total", "Flow-export datagrams received on the UDP listeners."),
		Records:      r.FamilyCounter("infilter_collector_records_total", "Flow records decoded and handed to the pipeline."),
		DecodeErrors: r.Counter("infilter_collector_decode_errors_total", "Datagrams dropped as malformed flow export."),
	}
}

// unregisteredCollectorMetrics backs a collector whose metrics were never
// wired to a registry, so Stats works regardless.
func unregisteredCollectorMetrics() *CollectorMetrics {
	return &CollectorMetrics{
		Datagrams:    telemetry.NewCounter(),
		Records:      telemetry.NewFamilyCounter(),
		DecodeErrors: telemetry.NewCounter(),
	}
}

// countRecords folds one decoded datagram's records into the family-
// split record counter: one pass to count v6 sources, two atomic adds.
func countRecords(fc telemetry.FamilyCounter, recs []flow.Record) {
	var v6 int64
	for i := range recs {
		if recs[i].Key.Src.Is6() {
			v6++
		}
	}
	fc.V4.Add(int64(len(recs)) - v6)
	fc.V6.Add(v6)
}

// Source identifies where one export datagram came from: the local UDP
// port it arrived on (the testbed multiplexes one emulated border router
// per port, §6.2), the exporter's remote address, and the flow-export
// format version that carried the records.
type Source struct {
	LocalPort int
	Exporter  string
	Version   uint16
}

// RecordHandler is the per-datagram callback of the deprecated
// NewCollector wrapper: the flow records parsed from one datagram plus
// their Source. The records slice is reused by the receive loop and
// valid only for the duration of the call.
type RecordHandler func(src Source, recs []flow.Record)

// ErrCollectorClosed is returned when Listen is called after Close.
var ErrCollectorClosed = errors.New("flowtools: collector closed")
