// Package flowtools reimplements the slice of the flow-tools suite the
// InFilter prototype depends on (paper §5.1.2): flow-capture (a UDP
// receiver for NetFlow v5/v9/IPFIX export datagrams), a binary flow
// store, and flow-report (per-flow and grouped statistics with ASCII
// import/export).
package flowtools

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"infilter/internal/flow"
	"infilter/internal/netflow"
	"infilter/internal/telemetry"
)

// CollectorMetrics are the ingest-side runtime counters: datagrams
// received off the wire, flow records decoded from them, and datagrams
// dropped as undecodable. They are the collector's single source of
// truth — Stats derives from them. The record series carries a `family`
// label ("4" or "6") keyed on each record's source address, so a
// dual-stack deployment can see its ingest mix; summing over the label
// recovers the total.
type CollectorMetrics struct {
	Datagrams    *telemetry.Counter
	Records      telemetry.FamilyCounter
	DecodeErrors *telemetry.Counter
}

// NewCollectorMetrics registers the collector counters on r.
func NewCollectorMetrics(r *telemetry.Registry) *CollectorMetrics {
	return &CollectorMetrics{
		Datagrams:    r.Counter("infilter_collector_datagrams_total", "Flow-export datagrams received on the UDP listeners."),
		Records:      r.FamilyCounter("infilter_collector_records_total", "Flow records decoded and handed to the pipeline."),
		DecodeErrors: r.Counter("infilter_collector_decode_errors_total", "Datagrams dropped as malformed flow export."),
	}
}

// unregisteredCollectorMetrics backs a collector whose metrics were never
// wired to a registry, so Stats works regardless.
func unregisteredCollectorMetrics() *CollectorMetrics {
	return &CollectorMetrics{
		Datagrams:    telemetry.NewCounter(),
		Records:      telemetry.NewFamilyCounter(),
		DecodeErrors: telemetry.NewCounter(),
	}
}

// countRecords folds one decoded datagram's records into the family-
// split record counter: one pass to count v6 sources, two atomic adds.
func countRecords(fc telemetry.FamilyCounter, recs []flow.Record) {
	var v6 int64
	for i := range recs {
		if recs[i].Key.Src.Is6() {
			v6++
		}
	}
	fc.V4.Add(int64(len(recs)) - v6)
	fc.V6.Add(v6)
}

// Source identifies where one export datagram came from: the local UDP
// port it arrived on (the testbed multiplexes one emulated border router
// per port, §6.2), the exporter's remote address, and the flow-export
// format version that carried the records.
type Source struct {
	LocalPort int
	Exporter  string
	Version   uint16
}

// Handler consumes the flow records parsed from one datagram. The records
// slice is reused by the receive loop and valid only for the duration of
// the call; handlers keeping records must copy them.
type Handler func(src Source, recs []flow.Record)

// Collector is the flow-capture equivalent: it listens on one or more UDP
// ports, decodes NetFlow v5/v9/IPFIX datagrams through a shared template
// cache and hands flow records to a Handler. Close stops all listeners
// and waits for their goroutines to exit.
type Collector struct {
	handler   Handler
	metrics   *CollectorMetrics
	templates *netflow.TemplateCache

	mu     sync.Mutex
	conns  []*net.UDPConn
	closed bool

	wg sync.WaitGroup
}

// ErrCollectorClosed is returned when Listen is called after Close.
var ErrCollectorClosed = errors.New("flowtools: collector closed")

// NewCollector returns a collector delivering records to handler, with a
// private template cache of default bounds (see SetTemplateCache).
func NewCollector(handler Handler) *Collector {
	return &Collector{
		handler:   handler,
		metrics:   unregisteredCollectorMetrics(),
		templates: netflow.NewTemplateCache(netflow.TemplateCacheConfig{}),
	}
}

// SetMetrics installs runtime counters (nil reverts to unregistered
// ones). It must be called before the first Listen: the receive loops
// read the pointer without locking.
func (c *Collector) SetMetrics(m *CollectorMetrics) {
	if m == nil {
		m = unregisteredCollectorMetrics()
	}
	c.metrics = m
}

// SetTemplateCache installs the v9/IPFIX template cache shared by all
// listeners (nil reverts to a private default one). Call before the first
// Listen; the daemon shares one cache so templates learned on any port
// resolve data from the same exporter everywhere.
func (c *Collector) SetTemplateCache(tc *netflow.TemplateCache) {
	if tc == nil {
		tc = netflow.NewTemplateCache(netflow.TemplateCacheConfig{})
	}
	c.templates = tc
}

// TemplateCache returns the cache the listeners decode through.
func (c *Collector) TemplateCache() *netflow.TemplateCache { return c.templates }

// Listen opens a UDP listener on the given port (0 picks an ephemeral
// port) and starts receiving datagrams. It returns the bound port.
func (c *Collector) Listen(port int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrCollectorClosed
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		return 0, fmt.Errorf("flowtools: listen udp %d: %w", port, err)
	}
	c.conns = append(c.conns, conn)
	addr, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		conn.Close()
		return 0, fmt.Errorf("flowtools: unexpected addr type %T", conn.LocalAddr())
	}
	bound := addr.Port
	c.wg.Add(1)
	go c.receiveLoop(conn, bound)
	return bound, nil
}

func (c *Collector) receiveLoop(conn *net.UDPConn, port int) {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	// Each listener owns a DecodeBuffer (not concurrency-safe); template
	// state lives in the shared cache.
	db := netflow.NewDecodeBuffer(c.templates)
	for {
		n, remote, err := conn.ReadFromUDP(buf)
		if err != nil {
			// Closed socket (or fatal error): stop this listener.
			return
		}
		m := c.metrics
		m.Datagrams.Inc()
		exporter := remote.String()
		db.SetExporter(exporter)
		msg, err := netflow.Decode(buf[:n], db)
		if err != nil {
			m.DecodeErrors.Inc()
			continue
		}
		countRecords(m.Records, msg.Records)
		if len(msg.Records) == 0 {
			// Template-only or fully orphaned datagram: nothing to hand on.
			continue
		}
		c.handler(Source{LocalPort: port, Exporter: exporter, Version: msg.Version}, msg.Records)
	}
}

// Stats reports how many records were received and how many datagrams
// were dropped as malformed, derived from the telemetry counters.
func (c *Collector) Stats() (received, malformed int) {
	return int(c.metrics.Records.Value()), int(c.metrics.DecodeErrors.Value())
}

// Close shuts down every listener and waits for receive loops to exit.
// It is safe to call more than once.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()

	var firstErr error
	for _, conn := range conns {
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.wg.Wait()
	return firstErr
}
