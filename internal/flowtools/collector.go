// Package flowtools reimplements the slice of the flow-tools suite the
// InFilter prototype depends on (paper §5.1.2): flow-capture (a UDP
// receiver for NetFlow v5 datagrams), a binary flow store, and flow-report
// (per-flow and grouped statistics with ASCII import/export).
package flowtools

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"infilter/internal/flow"
	"infilter/internal/netflow"
	"infilter/internal/telemetry"
)

// CollectorMetrics are the ingest-side runtime counters: datagrams
// received off the wire, flow records decoded from them, and datagrams
// dropped as undecodable.
type CollectorMetrics struct {
	Datagrams    *telemetry.Counter
	Records      *telemetry.Counter
	DecodeErrors *telemetry.Counter
}

// NewCollectorMetrics registers the collector counters on r.
func NewCollectorMetrics(r *telemetry.Registry) *CollectorMetrics {
	return &CollectorMetrics{
		Datagrams:    r.Counter("infilter_collector_datagrams_total", "NetFlow datagrams received on the UDP listeners."),
		Records:      r.Counter("infilter_collector_records_total", "Flow records decoded and handed to the pipeline."),
		DecodeErrors: r.Counter("infilter_collector_decode_errors_total", "Datagrams dropped as malformed NetFlow v5."),
	}
}

// Handler consumes flow records parsed from one datagram. localPort is the
// UDP port the datagram arrived on — the testbed multiplexes one emulated
// border router per port (§6.2).
type Handler func(localPort int, recs []flow.Record)

// Collector is the flow-capture equivalent: it listens on one or more UDP
// ports, decodes NetFlow v5 datagrams and hands flow records to a Handler.
// Close stops all listeners and waits for their goroutines to exit.
type Collector struct {
	handler Handler
	metrics *CollectorMetrics

	mu     sync.Mutex
	conns  []*net.UDPConn
	closed bool

	wg sync.WaitGroup

	statsMu  sync.Mutex
	received int
	malfed   int
}

// ErrCollectorClosed is returned when Listen is called after Close.
var ErrCollectorClosed = errors.New("flowtools: collector closed")

// NewCollector returns a collector delivering records to handler.
func NewCollector(handler Handler) *Collector {
	return &Collector{handler: handler}
}

// SetMetrics installs runtime counters (nil disables). It must be called
// before the first Listen: the receive loops read the pointer without
// locking.
func (c *Collector) SetMetrics(m *CollectorMetrics) { c.metrics = m }

// Listen opens a UDP listener on the given port (0 picks an ephemeral
// port) and starts receiving datagrams. It returns the bound port.
func (c *Collector) Listen(port int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrCollectorClosed
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		return 0, fmt.Errorf("flowtools: listen udp %d: %w", port, err)
	}
	c.conns = append(c.conns, conn)
	addr, ok := conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		conn.Close()
		return 0, fmt.Errorf("flowtools: unexpected addr type %T", conn.LocalAddr())
	}
	bound := addr.Port
	c.wg.Add(1)
	go c.receiveLoop(conn, bound)
	return bound, nil
}

func (c *Collector) receiveLoop(conn *net.UDPConn, port int) {
	defer c.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			// Closed socket (or fatal error): stop this listener.
			return
		}
		m := c.metrics
		if m != nil {
			m.Datagrams.Inc()
		}
		d, err := netflow.Unmarshal(buf[:n])
		if err != nil {
			c.statsMu.Lock()
			c.malfed++
			c.statsMu.Unlock()
			if m != nil {
				m.DecodeErrors.Inc()
			}
			continue
		}
		recs := make([]flow.Record, len(d.Records))
		for i, r := range d.Records {
			recs[i] = r.ToFlowRecord(d.Header, r.InputIf)
		}
		c.statsMu.Lock()
		c.received += len(recs)
		c.statsMu.Unlock()
		if m != nil {
			m.Records.Add(int64(len(recs)))
		}
		c.handler(port, recs)
	}
}

// Stats reports how many records were received and how many datagrams were
// dropped as malformed.
func (c *Collector) Stats() (received, malformed int) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.received, c.malfed
}

// Close shuts down every listener and waits for receive loops to exit.
// It is safe to call more than once.
func (c *Collector) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()

	var firstErr error
	for _, conn := range conns {
		if err := conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.wg.Wait()
	return firstErr
}
