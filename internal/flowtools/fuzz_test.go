package flowtools

import (
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// FuzzCompileFilter throws arbitrary expressions at the flow-filter
// compiler. Compilation must never panic, and any predicate it accepts
// must evaluate cleanly over representative records.
func FuzzCompileFilter(f *testing.F) {
	// Seed corpus: the documented grammar examples and the existing test
	// vectors, plus shapes that probe the parser's edges.
	for _, expr := range []string{
		"proto udp and dst-port 1434",
		"src-net 61.0.0.0/11 or ( proto tcp and dst-port 80 )",
		"not dst-net 192.0.2.0/24",
		"proto tcp",
		"proto 47",
		"src-port 53 or dst-port 53",
		"packets-min 10 and bytes-min 4000",
		"src-as 65001 and not input-if 3",
		"not not proto icmp",
		"((proto udp))",
		"(",
		")",
		"proto",
		"proto udp trailing",
		"dst-port 99999",
		"src-net notacidr",
		"and and and",
		"",
	} {
		f.Add(expr)
	}

	recs := []flow.Record{
		{},
		{
			Key: flow.Key{
				Src: netaddr.MustParseAddr("61.1.2.3"), Dst: netaddr.MustParseAddr("192.0.2.9"),
				Proto: flow.ProtoTCP, SrcPort: 1024, DstPort: 80, TOS: 4, InputIf: 3,
			},
			Packets: 12, Bytes: 4800,
			Start: time.Unix(1112313600, 0), End: time.Unix(1112313660, 0),
			SrcAS: 65001, DstAS: 65002,
		},
		{
			Key:     flow.Key{Proto: flow.ProtoUDP, DstPort: 1434},
			Packets: 1, Bytes: 404,
		},
	}

	f.Fuzz(func(t *testing.T, expr string) {
		pred, err := CompileFilter(expr)
		if err != nil {
			return // rejected expression: only panics are failures here
		}
		if pred == nil {
			t.Fatal("CompileFilter returned nil predicate without error")
		}
		for _, r := range recs {
			_ = pred(r)
		}
	})
}
