//go:build !linux

package flowtools

import "net"

// reusePortSupported: without SO_REUSEPORT load balancing the batch
// collector clamps to one reader per port.
const reusePortSupported = false

// listenUDPPort binds one reader socket to the loopback UDP port. The
// reuse flag is never set here (Readers is clamped to 1).
func listenUDPPort(port, readBuf int, reuse bool) (*net.UDPConn, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		return nil, err
	}
	if readBuf > 0 {
		conn.SetReadBuffer(readBuf)
	}
	return conn, nil
}

// newDatagramReader: portable single-datagram reads.
func newDatagramReader(conn *net.UDPConn) datagramReader { return newSingleReader(conn) }
