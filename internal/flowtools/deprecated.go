package flowtools

// Pre-unification collector API. The per-record Collector and the
// BatchCollector collapsed into the single New(Config, Handler)
// constructor: batch shape is configuration (Config.MaxRecords 1 is the
// per-record path), not a separate type. These wrappers keep the old
// constructors compiling for one release and will be removed.

// BatchConfig is the pre-unification name of Config.
//
// Deprecated: use Config.
type BatchConfig = Config

// BatchHandler is the pre-unification name of Handler.
//
// Deprecated: use Handler.
type BatchHandler = Handler

// BatchCollector is the pre-unification name of Collector.
//
// Deprecated: use Collector.
type BatchCollector = Collector

// NewBatchCollector returns a batched collector.
//
// Deprecated: use New.
func NewBatchCollector(cfg Config, handler Handler) *Collector {
	return New(cfg, handler)
}

// NewCollector returns a collector that delivers each datagram's records
// immediately with their Source, as the pre-unification per-record
// Collector did. It is New with Config{MaxRecords: 1} and a Handler
// adapter: at batch size 1 every Batch is one datagram, so its
// Exporter/Version always reconstruct the Source exactly.
//
// The returned Collector's SetMetrics takes *IngestMetrics where the old
// type took *CollectorMetrics; wrap with NewIngestMetrics, or leave
// metrics unset.
//
// Deprecated: use New with Config{MaxRecords: 1}.
func NewCollector(handler RecordHandler) *Collector {
	return New(Config{MaxRecords: 1}, func(b Batch) {
		handler(Source{LocalPort: b.Port, Exporter: b.Exporter, Version: b.Version}, b.Records)
	})
}
