package flowtools

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"infilter/internal/flow"
)

// Capture persists received flows into time-rotated binary store files in
// a directory, the way flow-capture organizes its archive: each file is
// named ft-<start>.iffs and covers one rotation interval of flow end
// times. Safe for concurrent Write calls.
type Capture struct {
	dir      string
	interval time.Duration

	mu      sync.Mutex
	curName string
	curFile *os.File
	curW    *StoreWriter
	written int
	closed  bool
}

// DefaultRotation is the default file rotation interval.
const DefaultRotation = 15 * time.Minute

// capturePrefix and captureSuffix frame archive file names.
const (
	capturePrefix = "ft-"
	captureSuffix = ".iffs"
)

// NewCapture creates (if needed) the archive directory and returns a
// rotating capture writer.
func NewCapture(dir string, interval time.Duration) (*Capture, error) {
	if interval <= 0 {
		interval = DefaultRotation
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flowtools: capture dir: %w", err)
	}
	return &Capture{dir: dir, interval: interval}, nil
}

// fileFor returns the archive file name covering t.
func (c *Capture) fileFor(t time.Time) string {
	slot := t.UTC().Truncate(c.interval)
	return capturePrefix + slot.Format("20060102-150405") + captureSuffix
}

// Write appends one flow record to the archive file covering its end time,
// rotating as needed.
func (c *Capture) Write(r flow.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("flowtools: capture closed")
	}
	name := c.fileFor(r.End)
	if name != c.curName {
		if err := c.rotateLocked(name); err != nil {
			return err
		}
	}
	if err := c.curW.Write(r); err != nil {
		return err
	}
	c.written++
	return nil
}

func (c *Capture) rotateLocked(name string) error {
	if err := c.closeCurrentLocked(); err != nil {
		return err
	}
	path := filepath.Join(c.dir, name)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("flowtools: open archive %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("flowtools: stat archive %s: %w", path, err)
	}
	var sw *StoreWriter
	if info.Size() == 0 {
		sw, err = NewStoreWriter(f)
	} else {
		// Appending to an existing slot file: header already present.
		sw, err = appendStoreWriter(f)
	}
	if err != nil {
		f.Close()
		return err
	}
	c.curName, c.curFile, c.curW = name, f, sw
	return nil
}

func (c *Capture) closeCurrentLocked() error {
	if c.curFile == nil {
		return nil
	}
	if err := c.curW.Flush(); err != nil {
		c.curFile.Close()
		return err
	}
	err := c.curFile.Close()
	c.curName, c.curFile, c.curW = "", nil, nil
	if err != nil {
		return fmt.Errorf("flowtools: close archive: %w", err)
	}
	return nil
}

// Written returns the number of records written so far.
func (c *Capture) Written() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.written
}

// Close flushes and closes the current archive file. Further Writes fail.
func (c *Capture) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.closeCurrentLocked()
}

// ArchiveFiles lists the archive's store files in chronological order.
func ArchiveFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("flowtools: read archive dir: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, capturePrefix) && strings.HasSuffix(name, captureSuffix) {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// ReadArchive loads every record from the archive, in file order.
func ReadArchive(dir string) ([]flow.Record, error) {
	files, err := ArchiveFiles(dir)
	if err != nil {
		return nil, err
	}
	var out []flow.Record
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("flowtools: open %s: %w", path, err)
		}
		sr, err := NewStoreReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("flowtools: %s: %w", path, err)
		}
		recs, err := sr.ReadAll()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("flowtools: %s: %w", path, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}
