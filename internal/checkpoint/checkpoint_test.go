package checkpoint

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/nns"
	"infilter/internal/telemetry"
	"infilter/internal/testutil"
	"infilter/internal/trace"
)

func writeString(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func TestNewManagerValidation(t *testing.T) {
	dir := t.TempDir()
	ok := Artifact{Name: "a.ckpt", Write: writeString("x")}
	cases := []struct {
		name string
		cfg  Config
		arts []Artifact
	}{
		{"empty dir", Config{}, []Artifact{ok}},
		{"no artifacts", Config{Dir: dir}, nil},
		{"empty name", Config{Dir: dir}, []Artifact{{Name: "", Write: ok.Write}}},
		{"path name", Config{Dir: dir}, []Artifact{{Name: "sub/a.ckpt", Write: ok.Write}}},
		{"nil writer", Config{Dir: dir}, []Artifact{{Name: "a.ckpt"}}},
		{"duplicate", Config{Dir: dir}, []Artifact{ok, ok}},
	}
	for _, tc := range cases {
		if _, err := NewManager(tc.cfg, nil, tc.arts...); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	m, err := NewManager(Config{Dir: filepath.Join(dir, "fresh")}, nil, ok)
	if err != nil {
		t.Fatal(err)
	}
	// The state dir is created eagerly so startup fails fast on bad paths.
	if _, err := os.Stat(filepath.Join(dir, "fresh")); err != nil {
		t.Errorf("state dir not created: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtomicAndLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")

	if err := WriteAtomic(path, writeString("generation-1")); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	ok, err := Load(dir, "state.ckpt", func(r io.Reader) error {
		_, err := got.ReadFrom(r)
		return err
	})
	if err != nil || !ok {
		t.Fatalf("Load: ok=%v err=%v", ok, err)
	}
	if got.String() != "generation-1" {
		t.Fatalf("loaded %q", got.String())
	}

	// A failed write leaves the previous generation intact and no temp file.
	boom := fmt.Errorf("serializer exploded")
	if err := WriteAtomic(path, func(io.Writer) error { return boom }); err == nil {
		t.Fatal("want write error")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "generation-1" {
		t.Fatalf("previous checkpoint damaged: %q, %v", data, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}

	// Missing checkpoint: first boot, not an error.
	ok, err = Load(dir, "absent.ckpt", func(io.Reader) error { return nil })
	if ok || err != nil {
		t.Fatalf("absent: ok=%v err=%v", ok, err)
	}

	// A loader error surfaces so a corrupt state dir fails the restart
	// loudly instead of silently starting cold.
	if _, err := Load(dir, "state.ckpt", func(io.Reader) error { return boom }); err == nil {
		t.Fatal("want loader error")
	}
}

// TestCrashMidWriteNeverLoaded simulates the crash the atomic rename
// protects against: a half-written temporary file sitting in the state
// dir. Load must not see it, and the next checkpoint pass must replace
// it cleanly.
func TestCrashMidWriteNeverLoaded(t *testing.T) {
	dir := t.TempDir()
	if err := WriteAtomic(filepath.Join(dir, "eia.ckpt"), writeString("good")); err != nil {
		t.Fatal(err)
	}
	// The "crash": a partial temp file from an interrupted write.
	partial := filepath.Join(dir, "eia.ckpt.tmp")
	if err := os.WriteFile(partial, []byte("gar"), 0o644); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	ok, err := Load(dir, "eia.ckpt", func(r io.Reader) error {
		_, err := got.ReadFrom(r)
		return err
	})
	if err != nil || !ok || got.String() != "good" {
		t.Fatalf("partial temp file leaked into Load: ok=%v err=%v data=%q", ok, err, got.String())
	}

	// The next pass overwrites the stale temp file and publishes normally.
	if err := WriteAtomic(filepath.Join(dir, "eia.ckpt"), writeString("good-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(partial); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived the next pass: %v", err)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "eia.ckpt"))
	if string(data) != "good-2" {
		t.Fatalf("second generation not published: %q", data)
	}
}

func TestManagerLoopWritesAndCloseFlushes(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	metrics := NewMetrics(reg)
	gen := 0
	m, err := NewManager(Config{Dir: dir, Interval: 5 * time.Millisecond}, metrics,
		Artifact{Name: "state.ckpt", Write: func(w io.Writer) error {
			gen++ // single writer goroutine until Close; no race
			_, err := fmt.Fprintf(w, "gen-%d", gen)
			return err
		}})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for metrics.Writes.Value() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := metrics.Writes.Value(); n < 3 {
		t.Fatalf("background loop wrote %d checkpoints, want >=3", n)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	closeGen := gen
	data, err := os.ReadFile(filepath.Join(dir, "state.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	// Close writes the final flush; the newest generation must be on disk.
	if want := fmt.Sprintf("gen-%d", closeGen); string(data) != want {
		t.Fatalf("final flush: have %q want %q", data, want)
	}
	// Idempotent: a second Close neither writes nor errors.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if gen != closeGen {
		t.Fatalf("second Close wrote again: gen %d -> %d", closeGen, gen)
	}
	if metrics.Errors.Value() != 0 {
		t.Fatalf("unexpected checkpoint errors: %d", metrics.Errors.Value())
	}
}

func TestManagerCountsErrorsAndKeepsGoing(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	metrics := NewMetrics(reg)
	m, err := NewManager(Config{Dir: dir, Interval: time.Hour}, metrics,
		Artifact{Name: "bad.ckpt", Write: func(io.Writer) error { return fmt.Errorf("nope") }},
		Artifact{Name: "good.ckpt", Write: writeString("fine")})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteNow(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("WriteNow error = %v", err)
	}
	// The failing artifact must not block the healthy one.
	if _, err := os.Stat(filepath.Join(dir, "good.ckpt")); err != nil {
		t.Errorf("healthy artifact skipped: %v", err)
	}
	if metrics.Errors.Value() != 1 {
		t.Errorf("errors counter = %d, want 1", metrics.Errors.Value())
	}
	if metrics.Writes.Value() != 0 {
		t.Errorf("writes counter = %d, want 0 (pass had a failure)", metrics.Writes.Value())
	}
	m.Close()
}

func TestManagerNoGoroutineLeak(t *testing.T) {
	testutil.ExpectNoGoroutineGrowth(t, func() {
		for i := 0; i < 5; i++ {
			m, err := NewManager(Config{Dir: t.TempDir(), Interval: time.Millisecond}, nil,
				Artifact{Name: "a.ckpt", Write: writeString("x")})
			if err != nil {
				t.Fatal(err)
			}
			m.Start()
			time.Sleep(3 * time.Millisecond)
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
		}
		// Close without Start must not hang waiting for a loop that never ran.
		m, err := NewManager(Config{Dir: t.TempDir()}, nil,
			Artifact{Name: "a.ckpt", Write: writeString("x")})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// trainFlows builds a small normal-traffic flow set the way the nns tests
// do: synthetic packets through the netflow cache.
func trainFlows(t *testing.T, flows int, seed int64) []flow.Record {
	t.Helper()
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        seed,
		Start:       time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC),
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("61.0.0.0/11")},
		DstPrefix:   netaddr.MustParsePrefix("192.0.2.0/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	return cache.Drain()
}

// TestRestartPreservesEIAAndNNS is the warm-restart property end to end at
// the package level: runtime-learned EIA promotions and the trained NNS
// clusters written by a manager's final flush are reproduced by a fresh
// process loading the same state dir.
func TestRestartPreservesEIAAndNNS(t *testing.T) {
	dir := t.TempDir()

	// "First process": a store that learns a promotion at runtime, plus a
	// trained detector.
	store := eia.NewStore(nil)
	store.AddPrefix(1, netaddr.MustParsePrefix("61.0.0.0/11"))
	src := netaddr.MustParseAddr("70.9.9.9")
	promoted := false
	for i := 0; i < eia.DefaultPromoteThreshold; i++ {
		promoted = store.RecordLegal(2, src) || promoted
	}
	if !promoted {
		t.Fatal("source never promoted")
	}
	detector, err := nns.Train(nns.DetectorConfig{}, trainFlows(t, 1200, 7))
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(Config{Dir: dir, Interval: time.Hour}, nil,
		Artifact{Name: "eia.ckpt", Write: store.WriteCheckpoint},
		Artifact{Name: "nns.ckpt", Write: detector.Save})
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	if err := m.Close(); err != nil { // the SIGTERM flush
		t.Fatal(err)
	}

	// "Second process": load both checkpoints cold.
	restored := eia.NewSet(eia.Config{})
	ok, err := Load(dir, "eia.ckpt", func(r io.Reader) error {
		return eia.ReadCheckpointInto(restored, r)
	})
	if err != nil || !ok {
		t.Fatalf("load eia: ok=%v err=%v", ok, err)
	}
	store2 := eia.NewStore(restored)
	if got := store2.Check(1, netaddr.MustParseAddr("61.1.2.3")); got != eia.Match {
		t.Errorf("trained prefix lost across restart: %v", got)
	}
	if got := store2.Check(2, src); got != eia.Match {
		t.Errorf("runtime promotion lost across restart: %v", got)
	}
	if store2.Len() != store.Len() {
		t.Errorf("restored %d prefixes, had %d", store2.Len(), store.Len())
	}

	var detector2 *nns.Detector
	ok, err = Load(dir, "nns.ckpt", func(r io.Reader) error {
		d, err := nns.LoadDetector(r)
		detector2 = d
		return err
	})
	if err != nil || !ok {
		t.Fatalf("load nns: ok=%v err=%v", ok, err)
	}
	if len(detector2.Clusters()) != len(detector.Clusters()) {
		t.Fatalf("clusters %v vs %v", detector2.Clusters(), detector.Clusters())
	}
	for i, r := range trainFlows(t, 200, 8) {
		a, b := detector.Assess(r), detector2.Assess(r)
		if a.Anomalous != b.Anomalous || a.Distance != b.Distance {
			t.Fatalf("flow %d: pre-restart %+v vs post-restart %+v", i, a, b)
		}
	}
}
