// Package checkpoint runs the warm-restart loop of infilterd: it
// periodically serializes runtime state artifacts (the EIA snapshot
// store, the trained NNS detector) into a state directory, each write
// going to a temporary file that is atomically renamed into place, so a
// crash mid-write can never corrupt the previous good checkpoint. On
// startup the daemon loads whatever checkpoints the directory holds and
// resumes with its learned state — EIA promotions and the trained NNS
// clusters survive a restart.
package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"infilter/internal/telemetry"
)

// DefaultInterval is the checkpoint period when none is configured.
const DefaultInterval = 30 * time.Second

// Metrics instruments the checkpoint loop: completed passes, failed
// artifact writes, and the latency of one full checkpoint pass.
type Metrics struct {
	Writes  *telemetry.Counter
	Errors  *telemetry.Counter
	Latency *telemetry.Histogram
}

// NewMetrics registers the checkpoint series on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	return &Metrics{
		Writes: r.Counter("infilter_checkpoint_writes_total",
			"Completed checkpoint passes (all artifacts written and renamed)."),
		Errors: r.Counter("infilter_checkpoint_errors_total",
			"Artifact writes that failed (previous checkpoint left in place)."),
		Latency: r.Histogram("infilter_checkpoint_write_seconds",
			"Latency of one full checkpoint pass.",
			telemetry.LatencyBuckets(), telemetry.UnitSeconds),
	}
}

// Artifact is one piece of state the manager checkpoints: a file name
// inside the state directory and a serializer. Write must produce a
// complete, self-validating encoding (the EIA and NNS serializers both
// carry format versions) and must be safe to call from the manager's
// background goroutine — both engine stores satisfy this by serializing
// an immutable snapshot.
type Artifact struct {
	Name  string
	Write func(io.Writer) error
}

// Config tunes a Manager.
type Config struct {
	// Dir is the state directory; it is created if absent.
	Dir string
	// Interval between background checkpoint passes. Zero defaults to
	// DefaultInterval.
	Interval time.Duration
}

// Manager owns the background checkpoint loop. Start launches it; Close
// stops it and writes one final checkpoint, which is the SIGTERM flush —
// by running after the analysis engine has drained, it captures every
// promotion the drain produced.
type Manager struct {
	cfg     Config
	arts    []Artifact
	metrics *Metrics // nil: uninstrumented

	stop    chan struct{}
	done    chan struct{}
	started bool
	once    sync.Once
}

// NewManager validates the configuration and prepares the state
// directory. Artifact names must be plain file names, unique within the
// manager.
func NewManager(cfg Config, m *Metrics, arts ...Artifact) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("checkpoint: empty state dir")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if len(arts) == 0 {
		return nil, fmt.Errorf("checkpoint: no artifacts")
	}
	seen := make(map[string]bool, len(arts))
	for _, a := range arts {
		if a.Name == "" || a.Name != filepath.Base(a.Name) {
			return nil, fmt.Errorf("checkpoint: bad artifact name %q", a.Name)
		}
		if a.Write == nil {
			return nil, fmt.Errorf("checkpoint: artifact %s has no writer", a.Name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("checkpoint: duplicate artifact %s", a.Name)
		}
		seen[a.Name] = true
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: state dir: %w", err)
	}
	return &Manager{
		cfg:     cfg,
		arts:    arts,
		metrics: m,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the background loop. It must be called at most once.
func (m *Manager) Start() {
	m.started = true
	go m.loop()
}

func (m *Manager) loop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.WriteNow() // errors are counted; the loop keeps trying
		case <-m.stop:
			return
		}
	}
}

// WriteNow performs one checkpoint pass: every artifact is serialized to
// a temporary file and renamed into place. The first error is returned;
// remaining artifacts are still attempted, and a failed artifact leaves
// its previous checkpoint untouched.
func (m *Manager) WriteNow() error {
	start := time.Now()
	var firstErr error
	failed := false
	for _, a := range m.arts {
		if err := WriteAtomic(filepath.Join(m.cfg.Dir, a.Name), a.Write); err != nil {
			failed = true
			if mm := m.metrics; mm != nil {
				mm.Errors.Inc()
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if mm := m.metrics; mm != nil {
		mm.Latency.ObserveDuration(time.Since(start))
		if !failed {
			mm.Writes.Inc()
		}
	}
	return firstErr
}

// Close stops the background loop (if started) and writes the final
// checkpoint. It is idempotent; only the first call writes.
func (m *Manager) Close() error {
	var err error
	m.once.Do(func() {
		if m.started {
			close(m.stop)
			<-m.done
		}
		err = m.WriteNow()
	})
	return err
}

// WriteAtomic serializes via write into path.tmp and renames it over
// path, so readers only ever observe the previous complete file or the
// new complete file. On any failure the temporary file is removed and
// path is left untouched.
func WriteAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: create %s: %w", tmp, err)
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return cleanup(fmt.Errorf("checkpoint: write %s: %w", tmp, err))
	}
	// Flush to stable storage before the rename publishes the file: a
	// crash after rename must not leave a renamed-but-empty checkpoint.
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("checkpoint: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: publish %s: %w", path, err)
	}
	return nil
}

// Load opens the named artifact in dir and feeds it to load. It reports
// ok=false without error when no checkpoint exists (first boot), and
// never reads temporary files — a crash mid-write leaves only a *.tmp,
// which is invisible to Load. A checkpoint that exists but fails load
// returns the loader's error so a corrupt state dir fails the restart
// loudly instead of silently starting cold.
func Load(dir, name string, load func(io.Reader) error) (ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, name))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("checkpoint: open %s: %w", name, err)
	}
	defer f.Close()
	if err := load(f); err != nil {
		return false, fmt.Errorf("checkpoint: load %s: %w", name, err)
	}
	return true, nil
}
