// Package testutil holds helpers shared by tests across packages. It must
// only be imported from _test.go files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// ExpectNoGoroutineGrowth runs fn and fails t if the process goroutine
// count has not returned to its starting level shortly after fn returns.
// It is the leak gate for every background worker with a Stop/Close:
// wrap a start/stop cycle in fn and any goroutine the cycle leaves behind
// fails the test with a full stack dump.
func ExpectNoGoroutineGrowth(t testing.TB, fn func()) {
	t.Helper()
	// Let goroutines from earlier tests finish dying before the baseline.
	settle()
	base := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > base {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutine leak: %d before, %d after\n%s",
			base, n, buf[:runtime.Stack(buf, true)])
	}
}

// settle waits briefly for the goroutine count to stop shrinking.
func settle() {
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= prev {
			return
		}
		prev = n
	}
}
