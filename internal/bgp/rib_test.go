package bgp

import (
	"strings"
	"testing"

	"infilter/internal/netaddr"
)

func entry(prefix, nextHop string, path ...uint16) Entry {
	return Entry{
		Network: netaddr.MustParsePrefix(prefix),
		NextHop: netaddr.MustParseAddr(nextHop),
		Path:    path,
	}
}

func TestRIBAnnounceAndBestPath(t *testing.T) {
	r := NewRIB()
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.1", 3333, 9057, 3356, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.2", 2497, 1)); err != nil {
		t.Fatal(err)
	}
	best, ok := r.Best(netaddr.MustParsePrefix("4.0.0.0/8"))
	if !ok {
		t.Fatal("no best path")
	}
	if best.NextHop != netaddr.MustParseAddr("10.0.0.2") {
		t.Errorf("best path via %v, want the shorter AS path", best.NextHop)
	}
	if r.Prefixes() != 1 || r.PathCount() != 2 {
		t.Errorf("prefixes=%d paths=%d", r.Prefixes(), r.PathCount())
	}
}

func TestRIBBestPathTieBreak(t *testing.T) {
	r := NewRIB()
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.9", 7500, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.2", 852, 1)); err != nil {
		t.Fatal(err)
	}
	best, _ := r.Best(netaddr.MustParsePrefix("4.0.0.0/8"))
	if best.NextHop != netaddr.MustParseAddr("10.0.0.2") {
		t.Errorf("tie-break chose %v, want lowest next hop", best.NextHop)
	}
}

func TestRIBAnnounceReplacesPerNextHop(t *testing.T) {
	r := NewRIB()
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.1", 3333, 3356, 1)); err != nil {
		t.Fatal(err)
	}
	// The same neighbor re-announces with a new path: replace, not add.
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.1", 3333, 1)); err != nil {
		t.Fatal(err)
	}
	if r.PathCount() != 1 {
		t.Fatalf("paths=%d, want 1 after re-announce", r.PathCount())
	}
	best, _ := r.Best(netaddr.MustParsePrefix("4.0.0.0/8"))
	if len(best.Path) != 2 {
		t.Errorf("best path %v not updated", best.Path)
	}
}

func TestRIBAnnounceEmptyPath(t *testing.T) {
	r := NewRIB()
	if err := r.Announce(Entry{Network: netaddr.MustParsePrefix("4.0.0.0/8")}); err == nil {
		t.Error("empty path: want error")
	}
}

func TestRIBWithdraw(t *testing.T) {
	r := NewRIB()
	p := netaddr.MustParsePrefix("4.0.0.0/8")
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.1", 2497, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.2", 3333, 3356, 1)); err != nil {
		t.Fatal(err)
	}
	if !r.Withdraw(p, netaddr.MustParseAddr("10.0.0.1")) {
		t.Fatal("withdraw reported nothing removed")
	}
	// Best path must fail over to the remaining longer path.
	best, ok := r.Best(p)
	if !ok || best.NextHop != netaddr.MustParseAddr("10.0.0.2") {
		t.Errorf("after withdraw best=%v ok=%v", best, ok)
	}
	if r.Withdraw(p, netaddr.MustParseAddr("10.0.0.1")) {
		t.Error("second withdraw of same path should be a no-op")
	}
	if !r.Withdraw(p, netaddr.MustParseAddr("10.0.0.2")) {
		t.Fatal("final withdraw failed")
	}
	if r.Prefixes() != 0 {
		t.Errorf("prefixes=%d after full withdrawal", r.Prefixes())
	}
	if _, ok := r.Best(p); ok {
		t.Error("best path exists for withdrawn prefix")
	}
}

func TestRIBLookupLongestPrefix(t *testing.T) {
	r := NewRIB()
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.1", 3356, 1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Announce(entry("4.2.101.0/24", "10.0.0.2", 6325, 1)); err != nil {
		t.Fatal(err)
	}
	e, ok := r.Lookup(netaddr.MustParseAddr("4.2.101.20"))
	if !ok || e.Network != netaddr.MustParsePrefix("4.2.101.0/24") {
		t.Errorf("lookup = %+v, %v", e, ok)
	}
	e, ok = r.Lookup(netaddr.MustParseAddr("4.9.9.9"))
	if !ok || e.Network != netaddr.MustParsePrefix("4.0.0.0/8") {
		t.Errorf("lookup = %+v, %v", e, ok)
	}
	if _, ok := r.Lookup(netaddr.MustParseAddr("99.0.0.1")); ok {
		t.Error("lookup outside table should miss")
	}
}

func TestRIBLoadDumpAndMapping(t *testing.T) {
	entries, err := ParseShowIPBGP(strings.NewReader(paperDump))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRIB()
	if err := r.LoadDump(entries); err != nil {
		t.Fatal(err)
	}
	if r.PathCount() != len(entries) {
		t.Errorf("loaded %d paths, want %d", r.PathCount(), len(entries))
	}
	// The RIB-derived mapping must equal the direct derivation.
	want := DeriveMapping(entries, netaddr.MustParseAddr("4.2.101.20"))
	got := r.Mapping(netaddr.MustParseAddr("4.2.101.20"))
	if len(got) != len(want) {
		t.Fatalf("mapping peers %v vs %v", got.Peers(), want.Peers())
	}
	for peer, srcs := range want {
		g := got[peer]
		if len(g) != len(srcs) {
			t.Errorf("peer %d: %v vs %v", peer, g, srcs)
			continue
		}
		for i := range srcs {
			if g[i] != srcs[i] {
				t.Errorf("peer %d: %v vs %v", peer, g, srcs)
				break
			}
		}
	}
}

func TestRIBEntriesSorted(t *testing.T) {
	r := NewRIB()
	if err := r.Announce(entry("9.0.0.0/8", "10.0.0.1", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.2", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.1", 3, 2)); err != nil {
		t.Fatal(err)
	}
	got := r.Entries()
	if len(got) != 3 {
		t.Fatalf("%d entries", len(got))
	}
	if got[0].Network != netaddr.MustParsePrefix("4.0.0.0/8") ||
		got[0].NextHop != netaddr.MustParseAddr("10.0.0.1") {
		t.Errorf("entries not sorted: first = %+v", got[0])
	}
	if got[2].Network != netaddr.MustParsePrefix("9.0.0.0/8") {
		t.Errorf("entries not sorted: last = %+v", got[2])
	}
}

// TestRIBMappingFollowsRouteChange drives an announce/withdraw sequence
// and watches the mapping move — the §3.2 change events at RIB level.
func TestRIBMappingFollowsRouteChange(t *testing.T) {
	r := NewRIB()
	target := netaddr.MustParseAddr("4.1.2.3")
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.1", 1224, 38, 3356, 1)); err != nil {
		t.Fatal(err)
	}
	m := r.Mapping(target)
	if m.SourcePeer()[1224] != 3356 {
		t.Fatalf("initial mapping %v", m)
	}
	// The route moves: 1224's traffic now transits 6325.
	r.Withdraw(netaddr.MustParsePrefix("4.0.0.0/8"), netaddr.MustParseAddr("10.0.0.1"))
	if err := r.Announce(entry("4.0.0.0/8", "10.0.0.1", 1224, 38, 6325, 1)); err != nil {
		t.Fatal(err)
	}
	m2 := r.Mapping(target)
	if m2.SourcePeer()[1224] != 6325 {
		t.Fatalf("post-change mapping %v", m2)
	}
	if got := FractionChanged(m, m2); got != 1 {
		t.Errorf("fraction changed %v, want 1 (both sources moved)", got)
	}
}
