package bgp

import (
	"fmt"
	"math/rand"

	"infilter/internal/netaddr"
)

// SimConfig parameterizes the 30-day Routeviews-style observation
// (§3.2): a set of target networks tracked every two hours.
type SimConfig struct {
	// Seed fixes all randomness.
	Seed int64
	// Targets is the number of target networks (paper: 20).
	Targets int
	// Readings is the number of RIB snapshots (paper: 346 over 30 days at
	// 2-hour intervals, some missing).
	Readings int
	// MinPeers and MaxPeers bound peers per target (Figure 5's x axis
	// spans up to ~55 peers).
	MinPeers, MaxPeers int
	// SourcesPerTarget is the number of source ASes routed per target.
	SourcesPerTarget int
	// BaseChangeProb scales the per-reading probability a source AS's
	// policy moves it to another peer; the effective probability grows
	// with peer count (more peers, more alternatives).
	BaseChangeProb float64
}

// Defaults matched to the paper's observation campaign.
const (
	DefaultSimTargets     = 20
	DefaultSimReadings    = 346
	DefaultSimMinPeers    = 2
	DefaultSimMaxPeers    = 55
	DefaultSimSources     = 200
	DefaultBaseChangeProb = 0.018
)

func (c SimConfig) withDefaults() SimConfig {
	if c.Targets <= 0 {
		c.Targets = DefaultSimTargets
	}
	if c.Readings <= 0 {
		c.Readings = DefaultSimReadings
	}
	if c.MinPeers <= 0 {
		c.MinPeers = DefaultSimMinPeers
	}
	if c.MaxPeers < c.MinPeers {
		c.MaxPeers = DefaultSimMaxPeers
	}
	if c.SourcesPerTarget <= 0 {
		c.SourcesPerTarget = DefaultSimSources
	}
	if c.BaseChangeProb == 0 {
		c.BaseChangeProb = DefaultBaseChangeProb
	}
	return c
}

// TargetSeries is the Figure 5 data for one target network.
type TargetSeries struct {
	TargetAS   uint16
	NumPeers   int
	AvgChange  float64 // mean fractional source-AS-set change per reading
	MaxChange  float64
	NumSources int
}

// Simulate runs the 30-day observation and returns one point per target —
// the data behind Figure 5. For every reading it builds RIB entries,
// derives the mapping through the same DeriveMapping used on real dumps,
// and compares consecutive mappings.
func Simulate(cfg SimConfig) ([]TargetSeries, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxPeers >= 60 {
		return nil, fmt.Errorf("bgp: MaxPeers %d beyond Figure 5 scale", cfg.MaxPeers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]TargetSeries, 0, cfg.Targets)
	for t := 0; t < cfg.Targets; t++ {
		numPeers := cfg.MinPeers
		if cfg.MaxPeers > cfg.MinPeers {
			numPeers += rng.Intn(cfg.MaxPeers - cfg.MinPeers + 1)
		}
		series := simulateTarget(rng, cfg, uint16(100+t), numPeers)
		out = append(out, series)
	}
	return out, nil
}

func simulateTarget(rng *rand.Rand, cfg SimConfig, targetAS uint16, numPeers int) TargetSeries {
	// Peer AS numbers and the target prefix.
	peers := make([]uint16, numPeers)
	for i := range peers {
		peers[i] = uint16(1000 + int(targetAS)*64 + i)
	}
	targetPrefix := netaddr.MustPrefix(netaddr.FromOctets(byte(4+targetAS%120), 0, 0, 0).Addr(), 8)
	targetIP := targetPrefix.Nth(42)

	// Source ASes and their current peer assignment.
	srcPeer := make([]int, cfg.SourcesPerTarget)
	for i := range srcPeer {
		srcPeer[i] = rng.Intn(numPeers)
	}
	srcAS := func(i int) uint16 { return uint16(20000 + i) }

	// Per-reading policy change probability grows with the number of
	// alternatives: a single-peer target cannot change at all.
	prob := cfg.BaseChangeProb * (1 - 1/float64(numPeers))

	var (
		prev      Mapping
		changes   []float64
		avg, peak float64
	)
	for reading := 0; reading < cfg.Readings; reading++ {
		if reading > 0 {
			for i := range srcPeer {
				if numPeers > 1 && rng.Float64() < prob {
					next := rng.Intn(numPeers - 1)
					if next >= srcPeer[i] {
						next++
					}
					srcPeer[i] = next
				}
			}
		}
		entries := buildEntries(rng, targetPrefix, targetAS, peers, srcPeer, srcAS)
		m := DeriveMapping(entries, targetIP)
		if prev != nil {
			changes = append(changes, FractionChanged(prev, m))
		}
		prev = m
	}
	for _, c := range changes {
		avg += c
		if c > peak {
			peak = c
		}
	}
	if len(changes) > 0 {
		avg /= float64(len(changes))
	}
	return TargetSeries{
		TargetAS:   targetAS,
		NumPeers:   numPeers,
		AvgChange:  avg,
		MaxChange:  peak,
		NumSources: cfg.SourcesPerTarget,
	}
}

// buildEntries encodes the current source→peer assignment as RIB paths:
// each peer's sources are chained into AS paths of at most three sources,
// so DeriveMapping reconstructs the assignment the same way it would from
// a real dump.
func buildEntries(rng *rand.Rand, prefix netaddr.Prefix, targetAS uint16, peers []uint16, srcPeer []int, srcAS func(int) uint16) []Entry {
	byPeer := make([][]uint16, len(peers))
	for i, p := range srcPeer {
		byPeer[p] = append(byPeer[p], srcAS(i))
	}
	var entries []Entry
	for pi, sources := range byPeer {
		if len(sources) == 0 {
			// Peer still advertises a path with no upstream sources.
			entries = append(entries, Entry{
				Network: prefix,
				NextHop: netaddr.IPv4(rng.Uint32()).Addr(),
				Path:    []uint16{peers[pi], targetAS},
			})
			continue
		}
		for start := 0; start < len(sources); start += 3 {
			end := start + 3
			if end > len(sources) {
				end = len(sources)
			}
			chain := sources[start:end]
			path := make([]uint16, 0, len(chain)+2)
			path = append(path, chain...)
			path = append(path, peers[pi], targetAS)
			entries = append(entries, Entry{
				Network: prefix,
				NextHop: netaddr.IPv4(rng.Uint32()).Addr(),
				Path:    path,
			})
		}
	}
	return entries
}
