package bgp

import (
	"bytes"
	"strings"
	"testing"

	"infilter/internal/netaddr"
	"infilter/internal/stats"
)

// paperDump is the worked example from §3.2 (2002-06-23-1000.dat excerpt).
const paperDump = `
* 4.0.0.0 193.0.0.56 3333 9057 3356 1 i
* 217.75.96.60 16150 8434 286 1 i
* 141.142.12.1 1224 38 10514 3356 1 i
* 4.2.101.0/24 141.142.12.1 1224 38 6325 1 i
* 202.249.2.86 7500 2497 1 i
* 203.194.0.5 9942 1 i
* 66.203.205.62 852 1 i
* 167.142.3.6 5056 1 e
* 206.220.240.95 10764 1 i
* 157.130.182.254 19092 1 i
* 203.62.252.26 1221 4637 1 i
* 202.232.1.91 2497 1 i
*> 4.0.4.90 1 i
`

func TestParseShowIPBGP(t *testing.T) {
	entries, err := ParseShowIPBGP(strings.NewReader(paperDump))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 13 {
		t.Fatalf("parsed %d entries, want 13", len(entries))
	}
	e := entries[0]
	if e.Network != netaddr.MustParsePrefix("4.0.0.0/8") {
		t.Errorf("first network %v, want classful 4.0.0.0/8", e.Network)
	}
	if len(e.Path) != 4 || e.Path[0] != 3333 || e.Path[3] != 1 {
		t.Errorf("first path %v", e.Path)
	}
	// Continuation lines inherit the previous network.
	if entries[1].Network != netaddr.MustParsePrefix("4.0.0.0/8") {
		t.Errorf("continuation network %v", entries[1].Network)
	}
	if entries[3].Network != netaddr.MustParsePrefix("4.2.101.0/24") {
		t.Errorf("explicit /24 network %v", entries[3].Network)
	}
	if !entries[12].Best {
		t.Error("*> entry not marked best")
	}
	if origin, ok := entries[0].OriginAS(); !ok || origin != 1 {
		t.Errorf("origin %d, %v", origin, ok)
	}
}

func TestEntryPeerAndSources(t *testing.T) {
	entries, err := ParseShowIPBGP(strings.NewReader(paperDump))
	if err != nil {
		t.Fatal(err)
	}
	// Path 1224 38 10514 3356 1: peer 3356, sources {1224,38,10514}.
	e := entries[2]
	peer, ok := e.PeerAS()
	if !ok || peer != 3356 {
		t.Errorf("peer = %d", peer)
	}
	srcs := e.SourceASes()
	if len(srcs) != 3 || srcs[0] != 1224 || srcs[2] != 10514 {
		t.Errorf("sources %v", srcs)
	}
	// Single-AS path 1: the neighbor AS peers directly.
	last := entries[12]
	if peer, ok := last.PeerAS(); !ok || peer != 1 {
		t.Errorf("direct peer = %d, %v", peer, ok)
	}
	if last.SourceASes() != nil {
		t.Errorf("direct path has sources %v", last.SourceASes())
	}
}

// TestDeriveMappingPaperExample reproduces the §3.2 worked mapping for
// target 4.2.101.20 exactly, including the more-specific-prefix rule for
// ASes 1224 and 38.
func TestDeriveMappingPaperExample(t *testing.T) {
	entries, err := ParseShowIPBGP(strings.NewReader(paperDump))
	if err != nil {
		t.Fatal(err)
	}
	m := DeriveMapping(entries, netaddr.MustParseAddr("4.2.101.20"))

	want := map[uint16][]uint16{
		3356: {3333, 9057, 10514},
		286:  {8434, 16150},
		6325: {38, 1224},
		2497: {7500},
		4637: {1221},
	}
	for peer, srcs := range want {
		got := m[peer]
		if len(got) != len(srcs) {
			t.Errorf("peer %d sources %v, want %v", peer, got, srcs)
			continue
		}
		for i := range srcs {
			if got[i] != srcs[i] {
				t.Errorf("peer %d sources %v, want %v", peer, got, srcs)
				break
			}
		}
	}
	// 1224 and 38 must NOT appear under 3356.
	for _, s := range m[3356] {
		if s == 1224 || s == 38 {
			t.Errorf("source %d wrongly mapped to 3356 instead of the /24's 6325", s)
		}
	}
}

func TestDeriveMappingOutsideTarget(t *testing.T) {
	entries, err := ParseShowIPBGP(strings.NewReader(paperDump))
	if err != nil {
		t.Fatal(err)
	}
	// 4.0.4.90 is covered by 4/8 only: the /24's paths must not apply.
	m := DeriveMapping(entries, netaddr.MustParseAddr("4.0.4.90"))
	peerOf := m.SourcePeer()
	if peerOf[1224] != 3356 {
		t.Errorf("1224 maps to %d for 4.0.4.90, want 3356", peerOf[1224])
	}
	// An address outside every prefix yields an empty mapping.
	if got := DeriveMapping(entries, netaddr.MustParseAddr("99.9.9.9")); len(got) != 0 {
		t.Errorf("mapping for uncovered address: %v", got)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	entries, err := ParseShowIPBGP(strings.NewReader(paperDump))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Format(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ParseShowIPBGP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(entries) {
		t.Fatalf("round trip %d entries, want %d", len(back), len(entries))
	}
	for i := range entries {
		if back[i].Network != entries[i].Network || len(back[i].Path) != len(entries[i].Path) {
			t.Errorf("entry %d differs: %+v vs %+v", i, back[i], entries[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"* bad-ip 1 2 3 i\n",
		"* 4.0.0.0 not-an-ip 1 2 i\n",
		"* 4.0.0.0 1.2.3.4 99999999 i\n",
	} {
		if _, err := ParseShowIPBGP(strings.NewReader(in)); err == nil {
			t.Errorf("ParseShowIPBGP(%q): want error", in)
		}
	}
	// Non-asterisk lines are skipped silently.
	got, err := ParseShowIPBGP(strings.NewReader("Network Next Hop Path\nsome header\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("header-only parse: %v, %v", got, err)
	}
}

func TestClassfulDefaults(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"4.0.0.0", "4.0.0.0/8"},
		{"141.142.0.0", "141.142.0.0/16"},
		{"203.194.0.0", "203.194.0.0/24"},
		{"4.2.101.0/24", "4.2.101.0/24"},
	}
	for _, tt := range tests {
		got, err := parsePrefixClassful(tt.in)
		if err != nil {
			t.Errorf("parsePrefixClassful(%q): %v", tt.in, err)
			continue
		}
		if got.String() != tt.want {
			t.Errorf("parsePrefixClassful(%q) = %v, want %s", tt.in, got, tt.want)
		}
	}
}

func TestFractionChanged(t *testing.T) {
	a := Mapping{1: {10, 11}, 2: {12, 13}}
	same := Mapping{1: {10, 11}, 2: {12, 13}}
	if got := FractionChanged(a, same); got != 0 {
		t.Errorf("identical mappings changed %v", got)
	}
	moved := Mapping{1: {10}, 2: {11, 12, 13}} // source 11 moved peers
	if got := FractionChanged(a, moved); got != 0.25 {
		t.Errorf("one of four moved: %v, want 0.25", got)
	}
	if got := FractionChanged(Mapping{}, Mapping{}); got != 0 {
		t.Errorf("empty mappings changed %v", got)
	}
	// A vanished source counts as changed.
	gone := Mapping{1: {10, 11}, 2: {12}}
	if got := FractionChanged(a, gone); got != 0.25 {
		t.Errorf("vanished source: %v, want 0.25", got)
	}
}

// TestSimulateFigure5 reproduces Figure 5's envelope: average change
// around 1-2%, maximum around 5%, growing with peer count.
func TestSimulateFigure5(t *testing.T) {
	series, err := Simulate(SimConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != DefaultSimTargets {
		t.Fatalf("%d series, want %d", len(series), DefaultSimTargets)
	}
	var avgs, maxes []float64
	for _, s := range series {
		if s.NumPeers < DefaultSimMinPeers || s.NumPeers > DefaultSimMaxPeers {
			t.Errorf("target %d has %d peers", s.TargetAS, s.NumPeers)
		}
		avgs = append(avgs, s.AvgChange)
		maxes = append(maxes, s.MaxChange)
	}
	grandAvg := stats.Mean(avgs)
	grandMax := stats.Max(maxes)
	if grandAvg < 0.005 || grandAvg > 0.03 {
		t.Errorf("average change %.4f, want ≈0.016 (paper: 1.6%%)", grandAvg)
	}
	if grandMax > 0.08 {
		t.Errorf("max change %.4f, want ≈0.05 (paper: 5%%)", grandMax)
	}
	// Dependence on peer count: the busiest targets change more than the
	// single-digit-peer ones on average.
	var small, large []float64
	for _, s := range series {
		if s.NumPeers <= 10 {
			small = append(small, s.AvgChange)
		} else if s.NumPeers >= 30 {
			large = append(large, s.AvgChange)
		}
	}
	if len(small) > 0 && len(large) > 0 && stats.Mean(large) <= stats.Mean(small)*0.8 {
		t.Errorf("change does not grow with peers: small=%.4f large=%.4f",
			stats.Mean(small), stats.Mean(large))
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimConfig{MaxPeers: 100, MinPeers: 2}); err == nil {
		t.Error("MaxPeers beyond scale: want error")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(SimConfig{Seed: 5, Targets: 3, Readings: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(SimConfig{Seed: 5, Targets: 3, Readings: 50})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("series %d differs across identical seeds", i)
		}
	}
}
