package bgp

import (
	"fmt"
	"sort"

	"infilter/internal/netaddr"
)

// RIB is a routing information base holding every learned path per prefix
// and computing best paths with the classic decision steps this codebase
// needs: shortest AS path first, then lowest next hop as the
// deterministic tie-breaker. It backs incremental §3.2-style analyses:
// announcements and withdrawals update the table and the derived
// peer-AS → source-AS mapping can be recomputed after each event.
type RIB struct {
	// paths maps prefix -> learned entries (at most one per next hop).
	paths map[netaddr.Prefix][]Entry
}

// NewRIB returns an empty RIB.
func NewRIB() *RIB {
	return &RIB{paths: make(map[netaddr.Prefix][]Entry)}
}

// Announce inserts or replaces the path learned from e.NextHop for
// e.Network, then recomputes best-path marks for that prefix.
func (r *RIB) Announce(e Entry) error {
	if len(e.Path) == 0 {
		return fmt.Errorf("bgp: announce %v with empty AS path", e.Network)
	}
	entries := r.paths[e.Network]
	replaced := false
	for i := range entries {
		if entries[i].NextHop == e.NextHop {
			entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		entries = append(entries, e)
	}
	r.paths[e.Network] = entries
	r.selectBest(e.Network)
	return nil
}

// Withdraw removes the path learned from nextHop for prefix, reporting
// whether anything was removed.
func (r *RIB) Withdraw(prefix netaddr.Prefix, nextHop netaddr.Addr) bool {
	entries := r.paths[prefix]
	for i := range entries {
		if entries[i].NextHop == nextHop {
			entries = append(entries[:i], entries[i+1:]...)
			if len(entries) == 0 {
				delete(r.paths, prefix)
			} else {
				r.paths[prefix] = entries
				r.selectBest(prefix)
			}
			return true
		}
	}
	return false
}

// selectBest re-marks the best entry for prefix: shortest AS path, ties
// broken by lowest next hop.
func (r *RIB) selectBest(prefix netaddr.Prefix) {
	entries := r.paths[prefix]
	best := -1
	for i := range entries {
		entries[i].Best = false
		if best < 0 {
			best = i
			continue
		}
		switch {
		case len(entries[i].Path) < len(entries[best].Path):
			best = i
		case len(entries[i].Path) == len(entries[best].Path) &&
			entries[i].NextHop.Less(entries[best].NextHop):
			best = i
		}
	}
	if best >= 0 {
		entries[best].Best = true
	}
}

// Best returns the best entry for prefix.
func (r *RIB) Best(prefix netaddr.Prefix) (Entry, bool) {
	for _, e := range r.paths[prefix] {
		if e.Best {
			return e, true
		}
	}
	return Entry{}, false
}

// Lookup returns the best entry of the longest prefix covering ip.
func (r *RIB) Lookup(ip netaddr.Addr) (Entry, bool) {
	var (
		found    bool
		bestBits = -1
		bestE    Entry
	)
	for prefix := range r.paths {
		if !prefix.Contains(ip) || prefix.Bits() <= bestBits {
			continue
		}
		if e, ok := r.Best(prefix); ok {
			bestBits, bestE, found = prefix.Bits(), e, true
		}
	}
	return bestE, found
}

// Entries returns every learned entry, sorted by prefix then next hop —
// the "show ip bgp" order.
func (r *RIB) Entries() []Entry {
	var out []Entry
	for _, entries := range r.paths {
		out = append(out, entries...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Network != b.Network {
			if a.Network.Addr() != b.Network.Addr() {
				return a.Network.Addr().Less(b.Network.Addr())
			}
			return a.Network.Bits() < b.Network.Bits()
		}
		return a.NextHop.Less(b.NextHop)
	})
	return out
}

// Prefixes returns the number of prefixes with at least one path.
func (r *RIB) Prefixes() int { return len(r.paths) }

// PathCount returns the total number of learned paths.
func (r *RIB) PathCount() int {
	n := 0
	for _, entries := range r.paths {
		n += len(entries)
	}
	return n
}

// Mapping derives the peer-AS → source-AS mapping for target from the
// RIB's full table (all learned paths, as §3.2 uses the entire Routeviews
// view rather than only best paths).
func (r *RIB) Mapping(target netaddr.Addr) Mapping {
	return DeriveMapping(r.Entries(), target)
}

// LoadDump replaces the RIB contents with the entries of a parsed
// "show ip bgp" dump.
func (r *RIB) LoadDump(entries []Entry) error {
	r.paths = make(map[netaddr.Prefix][]Entry, len(entries))
	for _, e := range entries {
		if err := r.Announce(e); err != nil {
			return err
		}
	}
	return nil
}
