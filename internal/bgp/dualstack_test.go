package bgp

import (
	"testing"

	"infilter/internal/netaddr"
)

func entry6(network string, nextHop string, path ...uint16) Entry {
	return Entry{
		Network: netaddr.MustParsePrefix(network),
		NextHop: netaddr.MustParseAddr(nextHop),
		Path:    path,
	}
}

// TestRIBLookupV6LongestPrefix announces nested v6 routes: Lookup must
// honor v6 longest-prefix specificity exactly as it does for v4, and
// keep the families from shadowing each other.
func TestRIBLookupV6LongestPrefix(t *testing.T) {
	r := NewRIB()
	for _, e := range []Entry{
		entry6("2001:db8::/32", "2001:db8:ffff::1", 701, 7018, 80),
		entry6("2001:db8:4000::/34", "2001:db8:ffff::2", 1239, 80),
		entry6("2001:db8:4000::/48", "2001:db8:ffff::3", 3356, 209, 80),
		{Network: netaddr.MustParsePrefix("32.0.0.0/8"), NextHop: netaddr.MustParseAddr("10.0.0.1"), Path: []uint16{64512, 80}},
	} {
		if err := r.Announce(e); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		ip      string
		wantHop string
	}{
		{"2001:db8:0001::1", "2001:db8:ffff::1"},  // only the /32 covers
		{"2001:db8:6000::1", "2001:db8:ffff::2"},  // /34, not the /32
		{"2001:db8:4000::99", "2001:db8:ffff::3"}, // the /48 wins
		{"32.1.2.3", "10.0.0.1"},                  // v4 unaffected
	}
	for _, tt := range tests {
		e, ok := r.Lookup(netaddr.MustParseAddr(tt.ip))
		if !ok {
			t.Errorf("Lookup(%s): no route", tt.ip)
			continue
		}
		if e.NextHop != netaddr.MustParseAddr(tt.wantHop) {
			t.Errorf("Lookup(%s) next hop %v, want %s", tt.ip, e.NextHop, tt.wantHop)
		}
	}
	if _, ok := r.Lookup(netaddr.MustParseAddr("2001:db9::1")); ok {
		t.Error("Lookup outside every announced v6 prefix found a route")
	}
}

// TestDeriveMappingV6 derives the peer→sources mapping for a v6 target
// network: a source AS on paths for several covering v6 prefixes must
// follow the most specific one (the paper's 4.2.101.0/24 vs 4.0.0.0/8
// case, transplanted to v6).
func TestDeriveMappingV6(t *testing.T) {
	target := netaddr.MustParseAddr("2001:db8:4000::1")
	entries := []Entry{
		// Source 3356 reaches the covering /32 via peer 7018 ...
		entry6("2001:db8::/32", "2001:db8:ffff::1", 3356, 7018, 80),
		// ... but the more specific /48 re-homes it to peer 209.
		entry6("2001:db8:4000::/48", "2001:db8:ffff::3", 3356, 209, 80),
		// A route for an unrelated v6 block must not contribute.
		entry6("2001:dead::/32", "2001:db8:ffff::4", 9, 10, 11),
	}
	m := DeriveMapping(entries, target)
	peers := m.Peers()
	if len(peers) != 1 || peers[0] != 209 {
		t.Fatalf("peers = %v, want [209] (the /48 overrides the /32)", peers)
	}
	srcs := m[209]
	if len(srcs) != 1 || srcs[0] != 3356 {
		t.Fatalf("sources via 209 = %v, want [3356]", srcs)
	}
}

// TestRIBMappingFollowsV6RouteChange withdraws the more-specific v6
// path: the mapping must fall back to the covering route's peer, the
// same re-homing semantics the v4 validation relies on.
func TestRIBMappingFollowsV6RouteChange(t *testing.T) {
	r := NewRIB()
	target := netaddr.MustParseAddr("2001:db8:4000::1")
	cover := entry6("2001:db8::/32", "2001:db8:ffff::1", 3356, 7018, 80)
	specific := entry6("2001:db8:4000::/48", "2001:db8:ffff::3", 3356, 209, 80)
	if err := r.Announce(cover); err != nil {
		t.Fatal(err)
	}
	if err := r.Announce(specific); err != nil {
		t.Fatal(err)
	}
	if peers := r.Mapping(target).Peers(); len(peers) != 1 || peers[0] != 209 {
		t.Fatalf("before withdraw: peers = %v, want [209]", peers)
	}
	if !r.Withdraw(specific.Network, specific.NextHop) {
		t.Fatal("withdraw of announced v6 route failed")
	}
	if peers := r.Mapping(target).Peers(); len(peers) != 1 || peers[0] != 7018 {
		t.Fatalf("after withdraw: peers = %v, want [7018]", peers)
	}
}
