package bgp_test

import (
	"fmt"
	"strings"

	"infilter/internal/bgp"
	"infilter/internal/netaddr"
)

// ExampleDeriveMapping reproduces the paper's §3.2 worked example: which
// peer AS each source AS uses to reach 4.2.101.20, with ASes 1224 and 38
// following the more-specific /24.
func ExampleDeriveMapping() {
	dump := `
* 4.0.0.0 193.0.0.56 3333 9057 3356 1 i
* 141.142.12.1 1224 38 10514 3356 1 i
* 4.2.101.0/24 141.142.12.1 1224 38 6325 1 i
* 202.249.2.86 7500 2497 1 i
`
	entries, err := bgp.ParseShowIPBGP(strings.NewReader(dump))
	if err != nil {
		fmt.Println(err)
		return
	}
	m := bgp.DeriveMapping(entries, netaddr.MustParseAddr("4.2.101.20"))
	for _, peer := range m.Peers() {
		fmt.Printf("peer %d <- sources %v\n", peer, m[peer])
	}
	// Output:
	// peer 2497 <- sources [7500]
	// peer 3356 <- sources [3333 9057 10514]
	// peer 6325 <- sources [38 1224]
}
