// Package bgp implements the BGP-based validation of the InFilter
// hypothesis (paper §3.2): a "show ip bgp" text codec for
// Routeviews-style RIB dumps, the derivation of the peer-AS → source-AS
// mapping for a target network (honoring longest-prefix specificity), and
// a 30-day simulation reproducing Figure 5's source-AS-set change rates.
package bgp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"infilter/internal/netaddr"
)

// Entry is one RIB line: a network prefix, its next hop, and the AS path
// (last element is the origin AS of the target network).
type Entry struct {
	Network netaddr.Prefix
	NextHop netaddr.Addr
	Path    []uint16
	Best    bool
}

// OriginAS returns the last AS on the path (the target network's AS).
func (e Entry) OriginAS() (uint16, bool) {
	if len(e.Path) == 0 {
		return 0, false
	}
	return e.Path[len(e.Path)-1], true
}

// PeerAS returns the AS adjacent to the origin — the last AS-level hop
// traffic on this path uses to enter the target network. Single-AS paths
// mean the collector's neighbor peers directly with the target.
func (e Entry) PeerAS() (uint16, bool) {
	switch len(e.Path) {
	case 0:
		return 0, false
	case 1:
		return e.Path[0], true
	default:
		return e.Path[len(e.Path)-2], true
	}
}

// SourceASes returns the ASes upstream of the peer on this path.
func (e Entry) SourceASes() []uint16 {
	if len(e.Path) < 3 {
		return nil
	}
	out := make([]uint16, len(e.Path)-2)
	copy(out, e.Path[:len(e.Path)-2])
	return out
}

// ParseShowIPBGP parses Routeviews "show ip bgp" output lines of the form
//
//   - 4.0.0.0          141.142.12.1  1224 38 10514 3356 1 i
//     *> 4.2.101.0/24     202.249.2.86  7500 2497 1 i
//
// Prefixes without an explicit mask get their classful default. Lines not
// starting with '*' are skipped. A bare-prefix continuation (the dump
// omits the network on subsequent paths for the same prefix) inherits the
// previous network.
func ParseShowIPBGP(r io.Reader) ([]Entry, error) {
	var (
		out  []Entry
		last netaddr.Prefix
		ln   int
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "*") {
			continue
		}
		best := strings.HasPrefix(line, "*>")
		line = strings.TrimLeft(line, "*> ")
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bgp: line %d: too few fields", ln)
		}
		var (
			network netaddr.Prefix
			rest    []string
			err     error
		)
		// A network line carries both the prefix and the next hop (two
		// consecutive address-like fields, or an explicit /len); a
		// continuation line starts directly with the next hop.
		explicitMask := strings.ContainsRune(fields[0], '/')
		_, e0 := netaddr.ParseIPv4(fields[0])
		_, e1 := netaddr.ParseIPv4(fields[1])
		if explicitMask || (e0 == nil && e1 == nil) {
			network, err = parsePrefixClassful(fields[0])
			if err != nil {
				return nil, fmt.Errorf("bgp: line %d: %w", ln, err)
			}
			rest = fields[1:]
			last = network
		} else {
			if last.IsZero() {
				return nil, fmt.Errorf("bgp: line %d: continuation with no prior network", ln)
			}
			network = last
			rest = fields
		}
		if len(rest) < 1 {
			return nil, fmt.Errorf("bgp: line %d: missing next hop", ln)
		}
		nextHop, err := netaddr.ParseAddr(rest[0])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: next hop: %w", ln, err)
		}
		var path []uint16
		for _, f := range rest[1:] {
			if f == "i" || f == "e" || f == "?" || f == "I" {
				break // origin code terminates the path
			}
			v, err := strconv.ParseUint(f, 10, 16)
			if err != nil {
				return nil, fmt.Errorf("bgp: line %d: AS %q: %w", ln, f, err)
			}
			path = append(path, uint16(v))
		}
		out = append(out, Entry{Network: network, NextHop: nextHop, Path: path, Best: best})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bgp: read: %w", err)
	}
	return out, nil
}

// parsePrefixClassful parses "a.b.c.d/len" or a bare classful network.
func parsePrefixClassful(s string) (netaddr.Prefix, error) {
	if strings.ContainsRune(s, '/') {
		return netaddr.ParsePrefix(s)
	}
	ip, err := netaddr.ParseIPv4(s)
	if err != nil {
		return netaddr.Prefix{}, err
	}
	first, _, _, _ := ip.Octets()
	bits := 24
	switch {
	case first < 128:
		bits = 8
	case first < 192:
		bits = 16
	}
	return netaddr.NewPrefix(ip.Addr(), bits)
}

// Format renders entries back into "show ip bgp" style lines.
func Format(w io.Writer, entries []Entry) error {
	for _, e := range entries {
		marker := "* "
		if e.Best {
			marker = "*>"
		}
		parts := make([]string, 0, len(e.Path))
		for _, as := range e.Path {
			parts = append(parts, strconv.Itoa(int(as)))
		}
		if _, err := fmt.Fprintf(w, "%s %-18s %-15s %s i\n",
			marker, e.Network, e.NextHop, strings.Join(parts, " ")); err != nil {
			return fmt.Errorf("bgp: format: %w", err)
		}
	}
	return nil
}

// Mapping is the peer-AS → source-AS-set mapping for one target.
type Mapping map[uint16][]uint16

// DeriveMapping computes, from RIB entries, which peer AS each source AS
// uses to reach the target address — the §3.2 construction. A source AS
// appearing on paths for several prefixes covering the target follows the
// most specific prefix (the paper's 4.2.101.0/24 vs 4.0.0.0/8 case).
func DeriveMapping(entries []Entry, target netaddr.Addr) Mapping {
	type choice struct {
		peer uint16
		bits int
	}
	chosen := make(map[uint16]choice)
	for _, e := range entries {
		if !e.Network.Contains(target) {
			continue
		}
		peer, ok := e.PeerAS()
		if !ok {
			continue
		}
		for _, src := range e.SourceASes() {
			c, seen := chosen[src]
			if !seen || e.Network.Bits() > c.bits {
				chosen[src] = choice{peer: peer, bits: e.Network.Bits()}
			}
		}
	}
	m := make(Mapping)
	for src, c := range chosen {
		m[c.peer] = append(m[c.peer], src)
	}
	for peer := range m {
		sort.Slice(m[peer], func(i, j int) bool { return m[peer][i] < m[peer][j] })
	}
	return m
}

// Peers returns the mapping's peer ASes in ascending order.
func (m Mapping) Peers() []uint16 {
	out := make([]uint16, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SourcePeer inverts the mapping: source AS → peer AS.
func (m Mapping) SourcePeer() map[uint16]uint16 {
	out := make(map[uint16]uint16)
	for peer, srcs := range m {
		for _, s := range srcs {
			out[s] = peer
		}
	}
	return out
}

// FractionChanged computes the fraction of source ASes whose peer mapping
// differs between two mappings, over the union of sources.
func FractionChanged(a, b Mapping) float64 {
	pa, pb := a.SourcePeer(), b.SourcePeer()
	union := make(map[uint16]struct{}, len(pa)+len(pb))
	for s := range pa {
		union[s] = struct{}{}
	}
	for s := range pb {
		union[s] = struct{}{}
	}
	if len(union) == 0 {
		return 0
	}
	changed := 0
	for s := range union {
		va, oka := pa[s]
		vb, okb := pb[s]
		if !oka || !okb || va != vb {
			changed++
		}
	}
	return float64(changed) / float64(len(union))
}
