package telemetry

import (
	"sync"
	"time"
)

// Rate derives a per-second rate from a monotonically increasing source
// (typically Counter.Value), measured between consecutive reads. It is
// built for GaugeFunc registration: each scrape observes the average rate
// over the interval since the previous scrape, so the exported gauge is
// exact over scrape windows without any background sampling goroutine.
//
// The first read establishes the baseline and reports zero; a read
// arriving within the same clock instant as the previous one repeats the
// last computed rate rather than dividing by zero. PerSecond is safe for
// concurrent use.
type Rate struct {
	src func() int64
	now func() time.Time

	mu    sync.Mutex
	lastV int64
	lastT time.Time
	rate  int64
}

// NewRate returns a rate over src. src must be monotonically
// non-decreasing and safe for concurrent use (Counter.Value is both).
func NewRate(src func() int64) *Rate {
	return &Rate{src: src, now: time.Now}
}

// PerSecond returns the average per-second increase of the source since
// the previous call (0 on the first call, which only sets the baseline).
func (r *Rate) PerSecond() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, v := r.now(), r.src()
	if r.lastT.IsZero() {
		r.lastT, r.lastV = t, v
		return 0
	}
	dt := t.Sub(r.lastT)
	if dt <= 0 {
		return r.rate
	}
	r.rate = int64(float64(v-r.lastV) / dt.Seconds())
	r.lastT, r.lastV = t, v
	return r.rate
}

// BatchSizeBuckets returns power-of-two bounds for batch-size histograms
// (1 to 1024, +Inf implicit). Encode these with UnitNone.
func BatchSizeBuckets() []int64 {
	return []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}
