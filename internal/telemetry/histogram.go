package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits in ascending order; one implicit +Inf bucket catches the
// rest. Observe is lock-free — a short bound scan plus two atomic adds —
// so it is safe on the analysis hot path under full concurrency. The
// observation count is derived from the buckets at snapshot time, keeping
// the record cost at exactly two atomic RMWs.
//
// A nil *Histogram discards observations.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is +Inf
	sum     atomic.Int64
}

// NewHistogram returns an unregistered histogram over the given bucket
// bounds (see Registry.Histogram for registered ones). Bounds must be
// non-empty and strictly ascending.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic("telemetry: histogram bounds must be strictly ascending")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] == bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~16) and typical latencies
	// land in the first few buckets, so this beats a binary search on the
	// hot path and keeps the branch predictor warm.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot is a consistent-enough copy of a histogram for merging and
// encoding. Buckets are per-bucket (not cumulative) counts.
type Snapshot struct {
	Bounds  []int64
	Buckets []int64 // len(Bounds)+1; last is +Inf
	Sum     int64
}

// Snapshot copies the current state. Concurrent Observes may land between
// bucket reads; each observation is still counted exactly once, which is
// the consistency monitoring needs.
func (h *Histogram) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Bounds:  h.bounds,
		Buckets: make([]int64, len(h.buckets)),
		Sum:     h.sum.Load(),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns the total number of observations in the snapshot.
func (s Snapshot) Count() int64 {
	var n int64
	for _, b := range s.Buckets {
		n += b
	}
	return n
}

// Merge adds other's buckets and sum into s. The histograms must share
// bucket bounds — per-shard histograms of one metric always do.
func (s *Snapshot) Merge(other Snapshot) error {
	if len(other.Buckets) == 0 {
		return nil
	}
	if len(s.Buckets) == 0 {
		s.Bounds = other.Bounds
		s.Buckets = append([]int64(nil), other.Buckets...)
		s.Sum = other.Sum
		return nil
	}
	if len(s.Bounds) != len(other.Bounds) {
		return fmt.Errorf("telemetry: merge of mismatched histograms (%d vs %d bounds)", len(s.Bounds), len(other.Bounds))
	}
	for i, b := range s.Bounds {
		if other.Bounds[i] != b {
			return fmt.Errorf("telemetry: merge of mismatched histograms (bound %d: %d vs %d)", i, b, other.Bounds[i])
		}
	}
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
	s.Sum += other.Sum
	return nil
}

// MergeHistograms snapshots and merges per-shard histograms of one metric
// into a single series — the O(shards) scrape-side aggregation. All
// histograms must share bounds (they do when built from one bound slice);
// mismatches panic since they are construction bugs, not runtime state.
func MergeHistograms(hs ...*Histogram) Snapshot {
	var out Snapshot
	for _, h := range hs {
		if err := out.Merge(h.Snapshot()); err != nil {
			panic(err.Error())
		}
	}
	return out
}

// LatencyBuckets returns the default nanosecond bounds for hot-path
// latency histograms: 1µs to 1s in a 1-5-10 progression. Encode these
// with UnitSeconds so /metrics reports seconds.
func LatencyBuckets() []int64 {
	return []int64{
		int64(1 * time.Microsecond),
		int64(5 * time.Microsecond),
		int64(10 * time.Microsecond),
		int64(50 * time.Microsecond),
		int64(100 * time.Microsecond),
		int64(500 * time.Microsecond),
		int64(1 * time.Millisecond),
		int64(5 * time.Millisecond),
		int64(10 * time.Millisecond),
		int64(50 * time.Millisecond),
		int64(100 * time.Millisecond),
		int64(500 * time.Millisecond),
		int64(1 * time.Second),
	}
}
