package telemetry

import (
	"sync/atomic"
	"testing"
)

// The acceptance bar for hot-path instrumentation: recording must stay
// under 50 ns/op with no mutex. These benches cover the uncontended
// single-writer case (per-shard histograms) and the fully contended case
// (counters shared across shards).

func BenchmarkTelemetryCounterInc(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Rotate across the bucket range so the bound scan is not
		// unrealistically short.
		h.Observe(int64(i%1000) * 1000)
	}
}

func BenchmarkTelemetryHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(LatencyBuckets())
	b.ReportAllocs()
	var n atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := n.Add(1) * 7919
		for pb.Next() {
			h.Observe(i % 1_000_000)
			i++
		}
	})
}

func BenchmarkTelemetrySnapshotMerge16(b *testing.B) {
	hs := make([]*Histogram, 16)
	for i := range hs {
		hs[i] = NewHistogram(LatencyBuckets())
		for v := int64(0); v < 100; v++ {
			hs[i].Observe(v * 10_000)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MergeHistograms(hs...)
	}
}
