package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// WritePrometheus encodes every registered metric in the Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; histogram series are expanded into cumulative _bucket lines plus
// _sum and _count. Values are read live (counters/gauges) or snapshotted
// and merged (histogram funcs) — the scrape path is the only place any
// cross-shard aggregation happens.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(f.help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, renderLabels(s.labels), formatInt(s.c.Value()))
			case kindGauge:
				v := s.gf
				if v == nil {
					v = s.g.Value
				}
				writeSample(bw, f.name, renderLabels(s.labels), formatInt(v()))
			case kindHistogram:
				var snap Snapshot
				if s.hf != nil {
					snap = s.hf()
				} else {
					snap = s.h.Snapshot()
				}
				writeHistogram(bw, f, s, snap)
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, f *family, s *series, snap Snapshot) {
	var cum int64
	for i, n := range snap.Buckets {
		cum += n
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatScaled(snap.Bounds[i], f.unit)
		}
		labels := renderLabels(s.labels, Label{Key: "le", Value: le})
		writeSample(bw, f.name+"_bucket", labels, formatInt(cum))
	}
	writeSample(bw, f.name+"_sum", renderLabels(s.labels), formatScaled(snap.Sum, f.unit))
	writeSample(bw, f.name+"_count", renderLabels(s.labels), formatInt(cum))
}

func writeSample(bw *bufio.Writer, name, labels, value string) {
	bw.WriteString(name)
	bw.WriteString(labels)
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatScaled renders a recorded integer divided by the family unit
// (e.g. nanoseconds as seconds).
func formatScaled(v int64, unit float64) string {
	if unit == UnitNone || unit == 0 {
		return formatInt(v)
	}
	return strconv.FormatFloat(float64(v)/unit, 'g', -1, 64)
}
