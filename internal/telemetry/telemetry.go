// Package telemetry is the daemon's dependency-free runtime metrics
// layer: atomic counters and gauges, fixed-bucket latency histograms with
// lock-free hot-path recording, and a Prometheus text-format encoder.
//
// The design mirrors the per-shard stats-merge pattern of
// analysis.ParallelEngine: hot-path writers touch only their own atomics
// (a counter increment or a histogram bucket add — never a mutex), and
// aggregation happens on the cold scrape path, where per-shard Snapshots
// are merged in O(shards). Registration is the only locked operation and
// happens once at startup.
//
// All recording methods are nil-receiver safe: a component whose metrics
// were never wired records into nil and the call is a no-op, so
// instrumentation needs no "enabled" flag on the hot path.
package telemetry

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter discards increments.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns an unregistered counter (see Registry.Counter for
// registered ones).
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n; negative n is ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready to use;
// a nil *Gauge discards writes.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
