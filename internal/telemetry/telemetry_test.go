package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := NewGauge()
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count() != 0 {
		t.Error("nil metrics must read as zero")
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 0, 1} // ≤10: {1,10}; ≤100: {11,100}; ≤1000: none; +Inf: 5000
	for i, n := range want {
		if s.Buckets[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], n)
		}
	}
	if s.Count() != 5 {
		t.Errorf("count = %d, want 5", s.Count())
	}
	if s.Sum != 1+10+11+100+5000 {
		t.Errorf("sum = %d", s.Sum)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewHistogram([]int64{10, 100})
	b := NewHistogram([]int64{10, 100})
	a.Observe(5)
	b.Observe(50)
	b.Observe(500)
	m := MergeHistograms(a, b)
	if m.Count() != 3 || m.Sum != 555 {
		t.Errorf("merged count=%d sum=%d, want 3/555", m.Count(), m.Sum)
	}
	var empty Snapshot
	if err := empty.Merge(a.Snapshot()); err != nil {
		t.Fatalf("merge into empty: %v", err)
	}
	if empty.Count() != 1 {
		t.Errorf("merge into empty count = %d", empty.Count())
	}
	other := NewHistogram([]int64{10, 200}).Snapshot()
	s := a.Snapshot()
	if err := s.Merge(other); err == nil {
		t.Error("merge of mismatched bounds: want error")
	}
}

func TestNewHistogramValidatesBounds(t *testing.T) {
	for _, bounds := range [][]int64{nil, {}, {10, 10}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v): want panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_flows_total", "Flows seen.", Label{Key: "shard", Value: "0"})
	c.Add(3)
	r.Counter("test_flows_total", "Flows seen.", Label{Key: "shard", Value: "1"}).Add(4)
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(9)
	r.GaugeFunc("test_fn", "Func gauge.", func() int64 { return 42 })
	h := r.Histogram("test_latency_seconds", "Latency.", []int64{1000, 1000000}, UnitSeconds)
	h.Observe(500)
	h.Observe(2000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_flows_total Flows seen.",
		"# TYPE test_flows_total counter",
		`test_flows_total{shard="0"} 3`,
		`test_flows_total{shard="1"} 4`,
		"# TYPE test_depth gauge",
		"test_depth 9",
		"test_fn 42",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="1e-06"} 1`,
		`test_latency_seconds_bucket{le="0.001"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 2`,
		"test_latency_seconds_sum 2.5e-06",
		"test_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestRegistryHistogramFuncMergesShards(t *testing.T) {
	r := NewRegistry()
	shards := []*Histogram{NewHistogram(LatencyBuckets()), NewHistogram(LatencyBuckets())}
	r.HistogramFunc("test_stage_seconds", "Merged.", UnitSeconds,
		func() Snapshot { return MergeHistograms(shards...) })
	shards[0].ObserveDuration(2 * time.Microsecond)
	shards[1].ObserveDuration(3 * time.Microsecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_stage_seconds_count 2\n") {
		t.Errorf("merged count missing:\n%s", sb.String())
	}
}

func TestRegistryPanicsOnConflicts(t *testing.T) {
	for name, fn := range map[string]func(r *Registry){
		"bad name":      func(r *Registry) { r.Counter("7bad", "") },
		"bad label":     func(r *Registry) { r.Counter("ok_total", "", Label{Key: "le", Value: "x"}) },
		"kind mismatch": func(r *Registry) { r.Counter("m", ""); r.Gauge("m", "") },
		"duplicate":     func(r *Registry) { r.Counter("d", ""); r.Counter("d", "") },
		"duplicate label": func(r *Registry) {
			r.Counter("d", "", Label{Key: "a", Value: "b"})
			r.Counter("d", "", Label{Key: "a", Value: "b"})
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			fn(NewRegistry())
		})
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Label{Key: "v", Value: "a\"b\\c\nd"}).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping:\n%s", sb.String())
	}
}

// TestConcurrentRecordAndScrape hammers the hot-path recorders while
// scraping; run under -race this is the lock-freedom gate.
func TestConcurrentRecordAndScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "")
	h := r.Histogram("ch_seconds", "", LatencyBuckets(), UnitSeconds)
	g := r.Gauge("cg", "")
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if got := h.Snapshot().Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}
