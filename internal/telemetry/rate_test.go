package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestRatePerSecond(t *testing.T) {
	var count int64
	clock := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	r := NewRate(func() int64 { return count })
	r.now = func() time.Time { return clock }

	// First read only establishes the baseline.
	count = 100
	if got := r.PerSecond(); got != 0 {
		t.Errorf("first read = %d, want 0", got)
	}
	// 900 increments over 3 seconds: 300/s.
	count = 1000
	clock = clock.Add(3 * time.Second)
	if got := r.PerSecond(); got != 300 {
		t.Errorf("rate = %d, want 300", got)
	}
	// A zero-interval re-read repeats the last rate instead of dividing
	// by zero.
	if got := r.PerSecond(); got != 300 {
		t.Errorf("zero-interval rate = %d, want 300", got)
	}
	// An idle interval reads zero.
	clock = clock.Add(5 * time.Second)
	if got := r.PerSecond(); got != 0 {
		t.Errorf("idle rate = %d, want 0", got)
	}
	// Sub-second intervals scale up.
	count += 50
	clock = clock.Add(100 * time.Millisecond)
	if got := r.PerSecond(); got != 500 {
		t.Errorf("sub-second rate = %d, want 500", got)
	}
}

func TestRateGaugeFuncRegistration(t *testing.T) {
	c := NewCounter()
	reg := NewRegistry()
	reg.GaugeFunc("test_rate_per_second", "test", NewRate(c.Value).PerSecond)
	c.Add(10)
	// The scrape must not panic and the series must exist; the value is
	// clock-dependent (0 on the baseline-setting first scrape).
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_rate_per_second") {
		t.Error("rate gauge series missing from scrape")
	}
}

func TestBatchSizeBucketsAreValidBounds(t *testing.T) {
	h := NewHistogram(BatchSizeBuckets()) // panics on invalid bounds
	h.Observe(1)
	h.Observe(256)
	h.Observe(4096) // +Inf bucket
	if got := h.Snapshot().Count(); got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
}
