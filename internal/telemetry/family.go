package telemetry

// FamilyCounter splits one counter series by address family: both
// counters share the metric name and differ only in their `family`
// label ("4" and "6"). Consumers that never cared about the split keep
// working — Value sums the pair, so a scrape-side sum over the label
// equals the old unlabeled total. The zero value discards increments
// (both pointers nil), matching the nil-safety of Counter.
type FamilyCounter struct {
	V4, V6 *Counter
}

// NewFamilyCounter returns an unregistered pair (see
// Registry.FamilyCounter for registered ones).
func NewFamilyCounter() FamilyCounter {
	return FamilyCounter{V4: NewCounter(), V6: NewCounter()}
}

// Pick returns the per-family counter: V6 when v6 is true, V4
// otherwise. Addresses of no family (zero values) land in the V4
// bucket — they cannot occur on a decoded-record path.
func (fc FamilyCounter) Pick(v6 bool) *Counter {
	if v6 {
		return fc.V6
	}
	return fc.V4
}

// Value returns the total across both families.
func (fc FamilyCounter) Value() int64 {
	return fc.V4.Value() + fc.V6.Value()
}

// FamilyCounter registers one counter series per address family on r:
// the same name and help, labeled family="4" and family="6" (plus any
// extra labels given).
func (r *Registry) FamilyCounter(name, help string, labels ...Label) FamilyCounter {
	fam := func(v string) *Counter {
		ls := append(append([]Label(nil), labels...), Label{Key: "family", Value: v})
		return r.Counter(name, help, ls...)
	}
	return FamilyCounter{V4: fam("4"), V6: fam("6")}
}
