package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name/value pair attached to a series.
type Label struct {
	Key, Value string
}

// Units convert recorded integer values into the float values encoded on
// /metrics. Histograms recording nanoseconds use UnitSeconds so bounds
// and sums follow the Prometheus convention of seconds.
const (
	UnitNone    float64 = 1
	UnitSeconds float64 = 1e9 // recorded nanoseconds, encoded as seconds
)

type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one labeled instance of a family. Exactly one of the value
// sources is set.
type series struct {
	labels []Label

	c  *Counter
	g  *Gauge
	gf func() int64
	h  *Histogram
	hf func() Snapshot
}

// family is one metric name: its help text, kind, encoding unit and the
// registered label combinations.
type family struct {
	name, help string
	kind       kind
	unit       float64
	series     []*series
	byLabel    map[string]struct{}
}

// Registry holds registered metrics and encodes them in Prometheus text
// format. Registration locks; recording never does (it goes straight to
// the returned Counter/Gauge/Histogram atomics). Registration errors —
// invalid names, a name reused with a different kind, a duplicate
// (name, labels) series — panic: they are wiring bugs that must fail at
// startup, not scrape time.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	families []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers (or panics on conflict) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := NewCounter()
	r.register(name, help, kindCounter, UnitNone, &series{labels: labels, c: c})
	return c
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := NewGauge()
	r.register(name, help, kindGauge, UnitNone, &series{labels: labels, g: g})
	return g
}

// GaugeFunc registers a gauge series whose value is read from fn at
// scrape time (e.g. a queue depth). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	r.register(name, help, kindGauge, UnitNone, &series{labels: labels, gf: fn})
}

// Histogram registers a histogram series over the given bounds, encoded
// divided by unit (UnitSeconds for nanosecond latencies).
func (r *Registry) Histogram(name, help string, bounds []int64, unit float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, kindHistogram, unit, &series{labels: labels, h: h})
	return h
}

// HistogramFunc registers a histogram series whose snapshot is produced
// by fn at scrape time — the hook for merging per-shard histograms into
// one exported series. fn must be safe for concurrent use.
func (r *Registry) HistogramFunc(name, help string, unit float64, fn func() Snapshot, labels ...Label) {
	r.register(name, help, kindHistogram, unit, &series{labels: labels, hf: fn})
}

func (r *Registry) register(name, help string, k kind, unit float64, s *series) {
	if !validName(name) {
		panic("telemetry: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range s.labels {
		if !validName(l.Key) || l.Key == "le" {
			panic("telemetry: invalid label key " + strconv.Quote(l.Key) + " on " + name)
		}
	}
	sort.SliceStable(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	key := renderLabels(s.labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, unit: unit, byLabel: make(map[string]struct{})}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != k {
		panic(fmt.Sprintf("telemetry: %s registered as %s and %s", name, f.kind, k))
	}
	if _, dup := f.byLabel[key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate series %s%s", name, key))
	}
	f.byLabel[key] = struct{}{}
	f.series = append(f.series, s)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels formats a sorted label set as {k="v",...}, or "" when
// empty. Values are escaped per the Prometheus text exposition format.
func renderLabels(labels []Label, extra ...Label) string {
	all := labels
	if len(extra) > 0 {
		all = append(append([]Label(nil), labels...), extra...)
	}
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
