// Package dagflow reimplements the paper's Dagflow traffic-replay tool
// (§6.1): it synthesizes flow-export streams (NetFlow v5, v9 or IPFIX)
// from packet traces without any routers, supports controlled rewriting
// of source IP addresses (both
// benign re-homing onto allocated address blocks and attack spoofing),
// controls the distribution of source addresses across blocks, and directs
// each instance's export datagrams at a configurable UDP destination port.
package dagflow

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
)

// SourcePolicy rewrites the source address of every replayed packet. The
// mapping must be deterministic per original address within one replay so a
// multi-packet flow stays one flow after rewriting.
type SourcePolicy interface {
	Rewrite(orig netaddr.Addr) netaddr.Addr
}

// IdentityPolicy keeps source addresses unchanged.
type IdentityPolicy struct{}

// Rewrite returns orig unchanged.
func (IdentityPolicy) Rewrite(orig netaddr.Addr) netaddr.Addr { return orig }

// WeightedBlock pairs an address block with a selection weight.
type WeightedBlock struct {
	Prefix netaddr.Prefix
	Weight float64
}

// BlockPolicy deterministically re-homes source addresses onto a weighted
// set of address blocks — Dagflow's "control the distribution of the source
// IP addresses" feature (e.g. 25% in 192.4/16, 25% in 214.96/16, 50% in
// 145.25/16). The same original address always maps to the same rewritten
// address, keeping flows intact.
type BlockPolicy struct {
	blocks []WeightedBlock
	total  float64
	salt   uint64
}

// ErrNoBlocks is returned when a policy is built with no usable blocks.
var ErrNoBlocks = errors.New("dagflow: no address blocks with positive weight")

// NewBlockPolicy builds a policy over the given weighted blocks. salt
// varies the mapping between instances without losing determinism.
func NewBlockPolicy(blocks []WeightedBlock, salt uint64) (*BlockPolicy, error) {
	var kept []WeightedBlock
	total := 0.0
	for _, b := range blocks {
		if b.Weight <= 0 {
			continue
		}
		kept = append(kept, b)
		total += b.Weight
	}
	if len(kept) == 0 {
		return nil, ErrNoBlocks
	}
	return &BlockPolicy{blocks: kept, total: total, salt: salt}, nil
}

// UniformBlocks wraps prefixes with equal weights.
func UniformBlocks(prefixes []netaddr.Prefix) []WeightedBlock {
	out := make([]WeightedBlock, len(prefixes))
	for i, p := range prefixes {
		out[i] = WeightedBlock{Prefix: p, Weight: 1}
	}
	return out
}

// Rewrite maps orig onto one of the policy's blocks, weighted, determined
// entirely by a hash of the original address and the salt. A v4 original
// hashes exactly as the pre-dual-stack engine did, so existing replay
// fixtures keep their mappings; v6 originals fold both address words in.
func (p *BlockPolicy) Rewrite(orig netaddr.Addr) netaddr.Addr {
	var h uint64
	if v4, ok := orig.V4(); ok {
		h = splitmix64(uint64(v4) ^ p.salt)
	} else {
		hi, lo := orig.Uint64Pair()
		h = splitmix64(hi ^ splitmix64(lo) ^ p.salt)
	}
	// Select a block by weight using the top bits.
	sel := float64(h>>11) / float64(1<<53) * p.total
	idx := 0
	for i, b := range p.blocks {
		if sel < b.Weight {
			idx = i
			break
		}
		sel -= b.Weight
		idx = i
	}
	blk := p.blocks[idx].Prefix
	// Offset within the block from an independent hash.
	off := splitmix64(h) % blk.Size()
	return blk.Nth(off)
}

// SpoofPolicy rewrites every source address pseudo-randomly into a set of
// foreign blocks — the attack-side spoofing knob. Unlike BlockPolicy the
// mapping is still deterministic per original address, so a multi-packet
// attack flow keeps a single (spoofed) source.
type SpoofPolicy struct {
	inner *BlockPolicy
}

// NewSpoofPolicy builds a spoofing policy drawing uniformly from blocks.
func NewSpoofPolicy(prefixes []netaddr.Prefix, seed int64) (*SpoofPolicy, error) {
	bp, err := NewBlockPolicy(UniformBlocks(prefixes), splitmix64(uint64(seed)))
	if err != nil {
		return nil, err
	}
	return &SpoofPolicy{inner: bp}, nil
}

// Rewrite returns the spoofed source for orig.
func (p *SpoofPolicy) Rewrite(orig netaddr.Addr) netaddr.Addr {
	return p.inner.Rewrite(orig)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Config parameterizes one Dagflow instance, which emulates one border
// router: it owns a flow cache, an export engine and a destination port.
type Config struct {
	// Name labels the instance (e.g. "S1").
	Name string
	// Policy rewrites source addresses. Nil keeps them unchanged.
	Policy SourcePolicy
	// InputIf is the ifIndex stamped on emitted flows.
	InputIf uint16
	// Cache configures the emulated router flow cache.
	Cache netflow.CacheConfig
	// ExportInterval batches expirations into datagrams at this period.
	// Zero defaults to one second.
	ExportInterval time.Duration
	// EngineID tags the export stream: the v5 engine id, or the v9 source
	// id / IPFIX observation domain id.
	EngineID uint8
	// Version selects the export wire format: netflow.VersionV5 (the
	// default when zero), VersionV9 or VersionIPFIX.
	Version uint16
	// TemplateDelay (v9/IPFIX only) withholds the template datagram until
	// this many data datagrams have been sent, to exercise a receiver's
	// orphan buffering. Zero announces the template first, as real
	// exporters do.
	TemplateDelay int
}

// Instance replays packet traces as flow-export datagrams.
type Instance struct {
	cfg      Config
	cache    *netflow.Cache
	exporter *netflow.Exporter
}

// New builds an instance. boot anchors the exporter's sysUptime clock.
func New(cfg Config, boot time.Time) *Instance {
	if cfg.Policy == nil {
		cfg.Policy = IdentityPolicy{}
	}
	if cfg.ExportInterval <= 0 {
		cfg.ExportInterval = time.Second
	}
	var enc netflow.WireEncoder
	switch cfg.Version {
	case netflow.VersionV9:
		v9 := netflow.NewV9Encoder(boot, uint32(cfg.EngineID))
		v9.SetTemplateDelay(cfg.TemplateDelay)
		enc = v9
	case netflow.VersionIPFIX:
		ix := netflow.NewIPFIXEncoder(uint32(cfg.EngineID))
		ix.SetTemplateDelay(cfg.TemplateDelay)
		enc = ix
	default:
		enc = netflow.NewV5Encoder(boot, cfg.EngineID)
	}
	return &Instance{
		cfg:      cfg,
		cache:    netflow.NewCache(cfg.Cache),
		exporter: netflow.NewExporter(enc),
	}
}

// Version reports the export wire format the instance emits.
func (in *Instance) Version() uint16 { return in.exporter.Version() }

// Name returns the instance label.
func (in *Instance) Name() string { return in.cfg.Name }

// Replay runs a time-ordered packet trace through source rewriting and the
// flow cache, returning the export datagrams a router would have emitted
// in the instance's configured wire format. The trace's own timestamps
// drive the clock, so replay is deterministic and much faster than real
// time (the paper's motivation for Dagflow).
func (in *Instance) Replay(pkts []packet.Packet) ([]netflow.WireDatagram, error) {
	if len(pkts) == 0 {
		return nil, nil
	}
	var (
		out        []netflow.WireDatagram
		nextExport = pkts[0].Time.Add(in.cfg.ExportInterval)
	)
	for i, p := range pkts {
		if i > 0 && p.Time.Before(pkts[i-1].Time) {
			return nil, fmt.Errorf("dagflow: %s: trace not time-ordered at packet %d", in.cfg.Name, i)
		}
		p.Src = in.cfg.Policy.Rewrite(p.Src)
		in.cache.Observe(p, in.cfg.InputIf)
		for !p.Time.Before(nextExport) {
			in.cache.Advance(nextExport)
			in.exporter.Add(in.cache.Drain()...)
			out = append(out, in.exporter.Export(nextExport)...)
			nextExport = nextExport.Add(in.cfg.ExportInterval)
		}
	}
	// End of trace: flush everything still cached, then the encoder (a
	// template-delayed replay must still end decodable).
	last := pkts[len(pkts)-1].Time
	in.cache.FlushAll()
	in.exporter.Add(in.cache.Drain()...)
	out = append(out, in.exporter.Export(last.Add(in.cfg.ExportInterval))...)
	out = append(out, in.exporter.Flush(last.Add(in.cfg.ExportInterval))...)
	return out, nil
}

// SendUDP transmits datagrams to a UDP destination ("127.0.0.1:port" in
// the testbed — each instance targets a distinct port so the analysis side
// can demultiplex border routers).
func SendUDP(dst string, dgs []netflow.WireDatagram) error {
	conn, err := net.Dial("udp", dst)
	if err != nil {
		return fmt.Errorf("dagflow: dial %s: %w", dst, err)
	}
	defer conn.Close()
	for _, d := range dgs {
		if _, err := conn.Write(d.Raw); err != nil {
			return fmt.Errorf("dagflow: send to %s: %w", dst, err)
		}
	}
	return nil
}

// MixTraces merges several time-ordered traces into one, preserving order.
// It is how an experiment interleaves normal and attack traffic arriving at
// the same border router.
func MixTraces(traces ...[]packet.Packet) []packet.Packet {
	total := 0
	for _, tr := range traces {
		total += len(tr)
	}
	out := make([]packet.Packet, 0, total)
	idx := make([]int, len(traces))
	for len(out) < total {
		best := -1
		var bestTime time.Time
		for i, tr := range traces {
			if idx[i] >= len(tr) {
				continue
			}
			if best == -1 || tr[idx[i]].Time.Before(bestTime) {
				best = i
				bestTime = tr[idx[i]].Time
			}
		}
		out = append(out, traces[best][idx[best]])
		idx[best]++
	}
	return out
}

// JitterTrace shifts every packet timestamp by a bounded pseudo-random
// offset, used to decorrelate repeated attack replays across experiment
// runs. Offsets are deterministic in seed. The result is re-sorted.
func JitterTrace(pkts []packet.Packet, maxJitter time.Duration, seed int64) []packet.Packet {
	rng := rand.New(rand.NewSource(seed))
	out := make([]packet.Packet, len(pkts))
	copy(out, pkts)
	for i := range out {
		out[i].Time = out[i].Time.Add(time.Duration(rng.Int63n(int64(maxJitter) + 1)))
	}
	// Insertion sort: traces are nearly sorted after small jitter.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Time.Before(out[j-1].Time); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
