package dagflow

import (
	"testing"
	"time"

	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

var dstBlock6 = netaddr.MustParsePrefix("2001:db8:2000::/64")

func normalTrace6(t *testing.T, flows int, seed int64) []packet.Packet {
	t.Helper()
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        seed,
		Start:       boot.Add(time.Minute),
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("2001:db8:1000::/48")},
		DstPrefix:   dstBlock6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

// TestBlockPolicyV6 re-homes v6 originals onto v6 blocks: deterministic
// per address, always inside a configured block, and spread across the
// blocks rather than collapsing onto one.
func TestBlockPolicyV6(t *testing.T) {
	blocks := []WeightedBlock{
		{Prefix: netaddr.MustParsePrefix("2001:db8:aa00::/40"), Weight: 1},
		{Prefix: netaddr.MustParsePrefix("2001:db8:bb00::/40"), Weight: 1},
	}
	p, err := NewBlockPolicy(blocks, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := netaddr.MustParsePrefix("2001:db8:1000::/48")
	hit := make([]int, len(blocks))
	for i := uint64(0); i < 500; i++ {
		orig := base.Nth(i * 7919)
		a := p.Rewrite(orig)
		if a != p.Rewrite(orig) {
			t.Fatalf("Rewrite not deterministic for %v", orig)
		}
		inAny := false
		for j, blk := range blocks {
			if blk.Prefix.Contains(a) {
				hit[j]++
				inAny = true
			}
		}
		if !inAny {
			t.Fatalf("rewritten %v outside all blocks", a)
		}
	}
	for j, n := range hit {
		if n == 0 {
			t.Errorf("block %d never selected across 500 rewrites", j)
		}
	}
}

// TestBlockPolicyV4MappingUnchangedByV6Blocks pins the dual-stack hash
// contract: a v4 original hashes from its 32-bit value alone, so its
// mapping depends only on the salt and block weights — not on whether
// v6 blocks were appended to the policy after it.
func TestBlockPolicyV4HashStability(t *testing.T) {
	v4blocks := []WeightedBlock{
		{Prefix: netaddr.MustParsePrefix("192.4.0.0/16"), Weight: 1},
		{Prefix: netaddr.MustParsePrefix("145.25.0.0/16"), Weight: 1},
	}
	p1, err := NewBlockPolicy(v4blocks, 99)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewBlockPolicy(v4blocks, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 200; i++ {
		orig := netaddr.IPv4(i * 2654435761).Addr()
		if p1.Rewrite(orig) != p2.Rewrite(orig) {
			t.Fatalf("same-salt policies disagree for %v", orig)
		}
	}
}

// TestReplayV6EndToEnd replays a v6 trace through a v9-format instance
// and decodes the export stream: the flow records must come back with
// their v6 addresses intact (via the v6 template the encoder announces).
func TestReplayV6EndToEnd(t *testing.T) {
	for _, version := range []uint16{netflow.VersionV9, netflow.VersionIPFIX} {
		in := New(Config{Name: "S6", InputIf: 3, Version: version}, boot)
		pkts := normalTrace6(t, 150, 17)
		dgs, err := in.Replay(pkts)
		if err != nil {
			t.Fatal(err)
		}
		if len(dgs) == 0 {
			t.Fatal("no datagrams exported")
		}
		buf := netflow.NewDecodeBuffer(nil)
		flows := 0
		for _, d := range dgs {
			msg, err := netflow.Decode(d.Raw, buf)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range msg.Records {
				flows++
				if !r.Key.Src.Is6() || !r.Key.Dst.Is6() {
					t.Fatalf("version %d: decoded non-v6 record %+v", version, r.Key)
				}
				if !dstBlock6.Contains(r.Key.Dst) {
					t.Fatalf("version %d: dst %v outside %v", version, r.Key.Dst, dstBlock6)
				}
				if r.Key.InputIf != 3 {
					t.Fatalf("version %d: InputIf %d, want 3", version, r.Key.InputIf)
				}
			}
		}
		if flows == 0 {
			t.Fatalf("version %d: no flow records decoded", version)
		}
	}
}

// TestReplayMixedFamilies replays an interleaved v4+v6 trace through one
// instance: both families must survive the cache, the per-family
// export templates and the decode side by side.
func TestReplayMixedFamilies(t *testing.T) {
	mixed := MixTraces(normalTrace(t, 100, 23), normalTrace6(t, 100, 23))
	in := New(Config{Name: "SM", InputIf: 2, Version: netflow.VersionIPFIX}, boot)
	dgs, err := in.Replay(mixed)
	if err != nil {
		t.Fatal(err)
	}
	buf := netflow.NewDecodeBuffer(nil)
	n4, n6 := 0, 0
	for _, d := range dgs {
		msg, err := netflow.Decode(d.Raw, buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range msg.Records {
			if r.Key.Src.Is6() {
				n6++
			} else {
				n4++
			}
		}
	}
	if n4 == 0 || n6 == 0 {
		t.Fatalf("family missing from mixed replay: v4=%d v6=%d flows", n4, n6)
	}
}
