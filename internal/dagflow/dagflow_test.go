package dagflow

import (
	"math"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/packet"
	"infilter/internal/trace"
)

var (
	boot     = time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	dstBlock = netaddr.MustParsePrefix("192.0.2.0/24")
)

func normalTrace(t *testing.T, flows int, seed int64) []packet.Packet {
	t.Helper()
	pkts, err := trace.GenerateNormal(trace.NormalConfig{
		Seed:        seed,
		Start:       boot.Add(time.Minute),
		Flows:       flows,
		SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("61.0.0.0/11")},
		DstPrefix:   dstBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkts
}

func TestBlockPolicyDeterministicAndInRange(t *testing.T) {
	blocks := []WeightedBlock{
		{Prefix: netaddr.MustParsePrefix("192.4.0.0/16"), Weight: 25},
		{Prefix: netaddr.MustParsePrefix("214.96.0.0/16"), Weight: 25},
		{Prefix: netaddr.MustParsePrefix("145.25.0.0/16"), Weight: 50},
	}
	p, err := NewBlockPolicy(blocks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 1000; i++ {
		orig := netaddr.IPv4(i * 7919).Addr()
		a := p.Rewrite(orig)
		b := p.Rewrite(orig)
		if a != b {
			t.Fatalf("Rewrite not deterministic for %v", orig)
		}
		inAny := false
		for _, blk := range blocks {
			if blk.Prefix.Contains(a) {
				inAny = true
				break
			}
		}
		if !inAny {
			t.Fatalf("rewritten %v outside all blocks", a)
		}
	}
}

// TestBlockPolicyDistribution checks the paper's worked example: 25% /
// 25% / 50% splits should hold approximately.
func TestBlockPolicyDistribution(t *testing.T) {
	blocks := []WeightedBlock{
		{Prefix: netaddr.MustParsePrefix("192.4.0.0/16"), Weight: 25},
		{Prefix: netaddr.MustParsePrefix("214.96.0.0/16"), Weight: 25},
		{Prefix: netaddr.MustParsePrefix("145.25.0.0/16"), Weight: 50},
	}
	p, err := NewBlockPolicy(blocks, 42)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	const n = 20000
	for i := 0; i < n; i++ {
		a := p.Rewrite(netaddr.IPv4(uint32(i) * 2654435761).Addr())
		for j, blk := range blocks {
			if blk.Prefix.Contains(a) {
				counts[j]++
			}
		}
	}
	for j, want := range []float64{0.25, 0.25, 0.50} {
		got := float64(counts[j]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("block %d share %.3f, want %.2f±0.02", j, got, want)
		}
	}
}

func TestNewBlockPolicyRejectsEmpty(t *testing.T) {
	if _, err := NewBlockPolicy(nil, 0); err == nil {
		t.Error("empty blocks: want error")
	}
	if _, err := NewBlockPolicy([]WeightedBlock{{Prefix: dstBlock, Weight: 0}}, 0); err == nil {
		t.Error("zero weights: want error")
	}
}

func TestSpoofPolicyKeepsFlowsIntact(t *testing.T) {
	sp, err := NewSpoofPolicy([]netaddr.Prefix{netaddr.MustParsePrefix("70.0.0.0/11")}, 9)
	if err != nil {
		t.Fatal(err)
	}
	orig := netaddr.MustParseAddr("61.9.9.9")
	if sp.Rewrite(orig) != sp.Rewrite(orig) {
		t.Error("spoof mapping not stable within a replay")
	}
	if !netaddr.MustParsePrefix("70.0.0.0/11").Contains(sp.Rewrite(orig)) {
		t.Error("spoofed address outside target block")
	}
}

func TestReplayProducesFlows(t *testing.T) {
	in := New(Config{Name: "S1", InputIf: 1}, boot)
	pkts := normalTrace(t, 300, 11)
	dgs, err := in.Replay(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(dgs) == 0 {
		t.Fatal("no datagrams exported")
	}
	buf := netflow.NewDecodeBuffer(nil)
	totalFlows := 0
	var lastSeq uint32
	for i, d := range dgs {
		totalFlows += d.Flows
		if d.Flows > netflow.MaxRecords {
			t.Errorf("datagram %d has %d records", i, d.Flows)
		}
		msg, err := netflow.Decode(d.Raw, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(msg.Records) != d.Flows {
			t.Errorf("datagram %d: decoded %d records, Flows says %d", i, len(msg.Records), d.Flows)
		}
		if i > 0 && msg.Sequence < lastSeq {
			t.Error("flow sequence not monotone")
		}
		lastSeq = msg.Sequence
	}
	// Roughly one flow per generated flow (some may merge on key collision).
	if totalFlows < 250 || totalFlows > 400 {
		t.Errorf("replay produced %d flows for 300 generated", totalFlows)
	}
}

func TestReplayAppliesPolicy(t *testing.T) {
	target := netaddr.MustParsePrefix("88.0.0.0/11")
	bp, err := NewBlockPolicy(UniformBlocks([]netaddr.Prefix{target}), 5)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Name: "S2", Policy: bp, InputIf: 2}, boot)
	dgs, err := in.Replay(normalTrace(t, 100, 12))
	if err != nil {
		t.Fatal(err)
	}
	buf := netflow.NewDecodeBuffer(nil)
	for _, d := range dgs {
		msg, err := netflow.Decode(d.Raw, buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range msg.Records {
			if !target.Contains(r.Key.Src) {
				t.Fatalf("record src %v escaped policy block", r.Key.Src)
			}
			if r.Key.InputIf != 2 {
				t.Fatalf("record ifIndex %d, want 2", r.Key.InputIf)
			}
		}
	}
}

// TestReplayV9MatchesV5 replays the same trace as v5 and as v9: the two
// streams must decode to the same number of flows in the same order.
func TestReplayV9MatchesV5(t *testing.T) {
	decodeAll := func(dgs []netflow.WireDatagram) []flow.Record {
		buf := netflow.NewDecodeBuffer(nil)
		var out []flow.Record
		for _, d := range dgs {
			msg, err := netflow.Decode(d.Raw, buf)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, msg.Records...)
		}
		return out
	}
	v5, err := New(Config{Name: "S1", InputIf: 1}, boot).Replay(normalTrace(t, 200, 13))
	if err != nil {
		t.Fatal(err)
	}
	v9, err := New(Config{Name: "S1", InputIf: 1, Version: netflow.VersionV9, EngineID: 4}, boot).Replay(normalTrace(t, 200, 13))
	if err != nil {
		t.Fatal(err)
	}
	a, b := decodeAll(v5), decodeAll(v9)
	if len(a) != len(b) {
		t.Fatalf("v5 decoded %d flows, v9 %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Packets != b[i].Packets || a[i].Bytes != b[i].Bytes {
			t.Fatalf("flow %d differs across versions:\nv5 %+v\nv9 %+v", i, a[i], b[i])
		}
	}
}

// TestReplayV9DelayedTemplate withholds the template: data datagrams
// orphan at the receiver until the Flush-emitted template resolves them.
func TestReplayV9DelayedTemplate(t *testing.T) {
	in := New(Config{
		Name: "S1", InputIf: 1,
		Version: netflow.VersionV9, EngineID: 4, TemplateDelay: 1000,
	}, boot)
	dgs, err := in.Replay(normalTrace(t, 120, 14))
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	for _, d := range dgs {
		sent += d.Flows
	}
	buf := netflow.NewDecodeBuffer(nil)
	decoded, orphaned, resolved := 0, 0, 0
	for _, d := range dgs {
		msg, err := netflow.Decode(d.Raw, buf)
		if err != nil {
			t.Fatal(err)
		}
		decoded += len(msg.Records)
		orphaned += msg.Orphaned
		resolved += msg.Resolved
	}
	if orphaned == 0 {
		t.Error("no data sets were orphaned despite the delayed template")
	}
	if resolved == 0 || decoded != sent {
		t.Errorf("decoded %d of %d flows (resolved %d)", decoded, sent, resolved)
	}
}

// TestReplayIPFIX covers the third wire format end to end.
func TestReplayIPFIX(t *testing.T) {
	in := New(Config{Name: "S1", InputIf: 1, Version: netflow.VersionIPFIX, EngineID: 4}, boot)
	if in.Version() != netflow.VersionIPFIX {
		t.Fatalf("Version() = %d", in.Version())
	}
	dgs, err := in.Replay(normalTrace(t, 120, 15))
	if err != nil {
		t.Fatal(err)
	}
	buf := netflow.NewDecodeBuffer(nil)
	decoded, sent := 0, 0
	for _, d := range dgs {
		sent += d.Flows
		msg, err := netflow.Decode(d.Raw, buf)
		if err != nil {
			t.Fatal(err)
		}
		decoded += len(msg.Records)
	}
	if sent == 0 || decoded != sent {
		t.Errorf("decoded %d of %d flows", decoded, sent)
	}
}

func TestReplayRejectsUnorderedTrace(t *testing.T) {
	in := New(Config{Name: "S3"}, boot)
	pkts := []packet.Packet{
		{Time: boot.Add(2 * time.Second), Proto: flow.ProtoUDP, Length: 40},
		{Time: boot.Add(1 * time.Second), Proto: flow.ProtoUDP, Length: 40},
	}
	if _, err := in.Replay(pkts); err == nil {
		t.Error("unordered trace: want error")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	in := New(Config{Name: "S4"}, boot)
	dgs, err := in.Replay(nil)
	if err != nil || dgs != nil {
		t.Errorf("empty replay = %v, %v", dgs, err)
	}
}

func TestReplayDeterministic(t *testing.T) {
	mk := func(version uint16) []netflow.WireDatagram {
		in := New(Config{Name: "S5", InputIf: 1, Version: version}, boot)
		dgs, err := in.Replay(normalTrace(t, 150, 20))
		if err != nil {
			t.Fatal(err)
		}
		return dgs
	}
	for _, version := range []uint16{netflow.VersionV5, netflow.VersionV9, netflow.VersionIPFIX} {
		a, b := mk(version), mk(version)
		if len(a) != len(b) {
			t.Fatalf("v%d datagram counts differ: %d vs %d", version, len(a), len(b))
		}
		for i := range a {
			if string(a[i].Raw) != string(b[i].Raw) {
				t.Fatalf("v%d datagram %d differs across identical replays", version, i)
			}
		}
	}
}

func TestMixTracesPreservesOrder(t *testing.T) {
	a := normalTrace(t, 50, 31)
	b, err := trace.Generate(trace.AttackSlammer, trace.AttackConfig{
		Seed:      1,
		Start:     boot.Add(90 * time.Second),
		Src:       netaddr.MustParseAddr("70.1.2.3"),
		DstPrefix: dstBlock,
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed := MixTraces(a, b)
	if len(mixed) != len(a)+len(b) {
		t.Fatalf("mixed %d packets, want %d", len(mixed), len(a)+len(b))
	}
	for i := 1; i < len(mixed); i++ {
		if mixed[i].Time.Before(mixed[i-1].Time) {
			t.Fatalf("mixed trace unordered at %d", i)
		}
	}
}

func TestMixTracesEmptyInputs(t *testing.T) {
	if got := MixTraces(nil, nil); len(got) != 0 {
		t.Errorf("MixTraces(nil,nil) = %d packets", len(got))
	}
	a := normalTrace(t, 10, 32)
	if got := MixTraces(a, nil); len(got) != len(a) {
		t.Errorf("MixTraces(a,nil) = %d packets", len(got))
	}
}

func TestJitterTraceOrderedAndBounded(t *testing.T) {
	a := normalTrace(t, 50, 33)
	j := JitterTrace(a, 100*time.Millisecond, 7)
	if len(j) != len(a) {
		t.Fatalf("jittered length %d", len(j))
	}
	for i := 1; i < len(j); i++ {
		if j[i].Time.Before(j[i-1].Time) {
			t.Fatalf("jittered trace unordered at %d", i)
		}
	}
	// Original must be untouched.
	for i := range a {
		if a[i] != normalTrace(t, 50, 33)[i] {
			t.Fatal("JitterTrace mutated its input")
			break
		}
	}
}

func TestReplayEndToEndOverUDPShape(t *testing.T) {
	// Datagrams must round-trip the wire codec after a replay.
	in := New(Config{Name: "S6", InputIf: 3}, boot)
	dgs, err := in.Replay(normalTrace(t, 40, 44))
	if err != nil {
		t.Fatal(err)
	}
	buf := netflow.NewDecodeBuffer(nil)
	for _, d := range dgs {
		msg, err := netflow.Decode(d.Raw, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(msg.Records) != d.Flows {
			t.Fatal("wire round trip lost records")
		}
	}
}
