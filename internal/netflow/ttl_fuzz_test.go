package netflow

import (
	"testing"
)

// FuzzDecodeTTLFields aims the fuzzer specifically at the TTL
// information elements: templates carrying minimumTTL/maximumTTL/ipTTL
// in arbitrary (including hostile) field lengths, with fuzzed and
// corrupted record payloads. Properties: the decoder never panics, and
// a template carrying none of the TTL IEs always leaves Record.TTL
// zero, whatever the payload bytes say.
func FuzzDecodeTTLFields(f *testing.F) {
	f.Add(uint16(52), uint8(1), uint8(57), true, []byte{})
	f.Add(uint16(53), uint8(2), uint8(64), true, []byte{1, 2, 3})
	f.Add(uint16(192), uint8(0), uint8(0), true, []byte{0xff})
	f.Add(uint16(7), uint8(4), uint8(9), false, []byte{})

	f.Fuzz(func(t *testing.T, ttlID uint16, ttlLen, ttlVal uint8, includeTTL bool, corrupt []byte) {
		fields := []TemplateField{
			{ID: ieSourceIPv4Address, Length: 4},
			{ID: ieDestIPv4Address, Length: 4},
			{ID: iePacketDeltaCount, Length: 4},
		}
		payload := []byte{61, 1, 1, 9, 192, 0, 2, 7, 0, 0, 0, 1}
		if includeTTL {
			// Arbitrary IE id and length — only sometimes a real TTL IE,
			// and sometimes a hostile length (0, 9, 16, 255...).
			fields = append(fields, TemplateField{ID: ttlID, Length: uint16(ttlLen)})
			for i := 0; i < int(ttlLen); i++ {
				payload = append(payload, ttlVal)
			}
		}
		payload = append(payload, corrupt...)

		cache := NewTemplateCache(TemplateCacheConfig{})
		buf := NewDecodeBuffer(cache)
		buf.SetExporter("fuzz")
		msg, err := Decode(buildV9TTL(300, fields, payload), buf)
		if err != nil {
			return // rejected input; only panics are failures
		}
		hasTTLIE := includeTTL && (ttlID == ieMinimumTTL || ttlID == ieMaximumTTL || ttlID == ieIPTTL)
		for _, rec := range msg.Records {
			if !hasTTLIE && rec.TTL != 0 {
				t.Fatalf("template without TTL IEs decoded TTL %d", rec.TTL)
			}
		}

		// Second round: the corrupt bytes as a raw datagram against the
		// same template state — must not panic either.
		if _, err := Decode(corrupt, buf); err != nil {
			return
		}
	})
}
