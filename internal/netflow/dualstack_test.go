package netflow

import (
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// exportSample6 builds n distinct finished IPv6 flows, exercising the
// v6-only elements (16-byte addresses, /0..128 prefix lens, flow label).
func exportSample6(n int) []flow.Record {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	base := netaddr.MustParsePrefix("2001:db8:ffff::/64")
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src: base.Nth(uint64(i) + 1), Dst: netaddr.MustParseAddr("2001:db8::53"),
				Proto: flow.ProtoUDP, SrcPort: uint16(2048 + i), DstPort: 53,
				TOS: 0x10, InputIf: 4,
			},
			Packets: uint32(3 + i), Bytes: uint32(120 * (1 + i)),
			Start: boot.Add(time.Duration(i) * time.Second),
			End:   boot.Add(time.Duration(i)*time.Second + 250*time.Millisecond),
			SrcAS: 65101, DstAS: 65102, SrcMask: 48, DstMask: 64,
			FlowLabel: uint32(0xbeef0 + i),
		}
	}
	return recs
}

// exportSampleMixed interleaves v4 and v6 flows record by record — the
// worst case for the encoders' family-run segmentation.
func exportSampleMixed(n int) []flow.Record {
	v4 := exportSample(n)
	v6 := exportSample6(n)
	recs := make([]flow.Record, 0, 2*n)
	for i := 0; i < n; i++ {
		recs = append(recs, v4[i], v6[i])
	}
	return recs
}

func checkRecords(t *testing.T, got, want []flow.Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key {
			t.Errorf("record %d key: got %+v want %+v", i, got[i].Key, want[i].Key)
		}
		if got[i].Packets != want[i].Packets || got[i].Bytes != want[i].Bytes ||
			got[i].SrcAS != want[i].SrcAS || got[i].DstAS != want[i].DstAS ||
			got[i].SrcMask != want[i].SrcMask || got[i].DstMask != want[i].DstMask ||
			got[i].FlowLabel != want[i].FlowLabel {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
		if !got[i].Start.Equal(want[i].Start) || !got[i].End.Equal(want[i].End) {
			t.Errorf("record %d times: got %v-%v want %v-%v",
				i, got[i].Start, got[i].End, want[i].Start, want[i].End)
		}
	}
}

// TestEncodeDecodeRoundTripV6 drives an all-v6 batch through the
// template-based encoders and back through Decode: addresses, masks and
// the IPv6 flow label must survive the wire.
func TestEncodeDecodeRoundTripV6(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	encoders := map[string]WireEncoder{
		"v9":    NewV9Encoder(boot, 7),
		"ipfix": NewIPFIXEncoder(7),
	}
	for name, enc := range encoders {
		t.Run(name, func(t *testing.T) {
			want := exportSample6(45) // forces a 30/15 split
			buf := NewDecodeBuffer(NewTemplateCache(TemplateCacheConfig{}))
			buf.SetExporter("test")
			var got []flow.Record
			for _, wd := range enc.Encode(want, now) {
				msg, err := Decode(wd.Raw, buf)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, msg.Records...)
			}
			checkRecords(t, got, want)
			for i := range got {
				if !got[i].Key.Src.Is6() || !got[i].Key.Dst.Is6() {
					t.Fatalf("record %d decoded as non-v6: %+v", i, got[i].Key)
				}
			}
		})
	}
}

// TestEncodeDecodeRoundTripMixed interleaves the families record by
// record: the encoders must segment the batch into per-family data sets
// (each referencing its own template) while preserving record order, and
// announce each family's template exactly once.
func TestEncodeDecodeRoundTripMixed(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	encoders := map[string]WireEncoder{
		"v9":    NewV9Encoder(boot, 7),
		"ipfix": NewIPFIXEncoder(7),
	}
	for name, enc := range encoders {
		t.Run(name, func(t *testing.T) {
			want := exportSampleMixed(20) // 40 records, alternating families
			dgs := enc.Encode(want, now)
			templates := 0
			for _, wd := range dgs {
				if wd.Flows == 0 {
					templates++
				}
			}
			if templates != 2 {
				t.Errorf("emitted %d template datagrams, want 2 (one per family)", templates)
			}
			buf := NewDecodeBuffer(NewTemplateCache(TemplateCacheConfig{}))
			buf.SetExporter("test")
			var got []flow.Record
			for _, wd := range dgs {
				msg, err := Decode(wd.Raw, buf)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, msg.Records...)
			}
			checkRecords(t, got, want)
		})
	}
}

// TestFamilyRunSegmentation pins the run-length helper the encoders
// segment batches with.
func TestFamilyRunSegmentation(t *testing.T) {
	mixed := append(exportSample(3), append(exportSample6(2), exportSample(1)...)...)
	wantRuns := []struct {
		n  int
		v6 bool
	}{{3, false}, {2, true}, {1, false}}
	recs := mixed
	for i, w := range wantRuns {
		n, v6 := familyRun(recs)
		if n != w.n || v6 != w.v6 {
			t.Fatalf("run %d: got (%d, v6=%t), want (%d, v6=%t)", i, n, v6, w.n, w.v6)
		}
		recs = recs[n:]
	}
	if len(recs) != 0 {
		t.Fatalf("%d records left after expected runs", len(recs))
	}
}

// TestV6TemplateDelayFlush withholds templates on a mixed stream: both
// families' data sets orphan, and Flush must emit both templates so the
// buffered orphans resolve. A v4-only stream under the same delay must
// flush only the v4 template — the v6 one was never referenced.
func TestV6TemplateDelayFlush(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	type delayEncoder interface {
		WireEncoder
		SetTemplateDelay(int)
	}
	encoders := map[string]func() delayEncoder{
		"v9":    func() delayEncoder { return NewV9Encoder(boot, 7) },
		"ipfix": func() delayEncoder { return NewIPFIXEncoder(7) },
	}
	for name, mk := range encoders {
		t.Run(name, func(t *testing.T) {
			enc := mk()
			enc.SetTemplateDelay(100) // withhold until Flush
			want := exportSampleMixed(5)
			dgs := enc.Encode(want, now)
			flushed := enc.Flush(now)
			if len(flushed) != 2 {
				t.Fatalf("Flush emitted %d datagrams, want 2 (v4 + v6 template)", len(flushed))
			}
			dgs = append(dgs, flushed...)

			cache := NewTemplateCache(TemplateCacheConfig{})
			buf := NewDecodeBuffer(cache)
			buf.SetExporter("test")
			var got []flow.Record
			resolved := 0
			for _, wd := range dgs {
				msg, err := Decode(wd.Raw, buf)
				if err != nil {
					t.Fatal(err)
				}
				resolved += msg.Resolved
				got = append(got, msg.Records...)
			}
			if resolved != len(want) {
				t.Errorf("resolved %d orphaned records, want %d", resolved, len(want))
			}
			// Orphans resolve per family as each template lands: the v4
			// template (flushed first) releases the v4 records in arrival
			// order, then the v6 template releases the v6 ones.
			wantResolved := append(exportSample(5), exportSample6(5)...)
			checkRecords(t, got, wantResolved)
			if cache.OrphanCount() != 0 {
				t.Errorf("%d orphans still buffered", cache.OrphanCount())
			}

			// v4-only stream: Flush has no v6 template to emit.
			enc4 := mk()
			enc4.SetTemplateDelay(100)
			enc4.Encode(exportSample(5), now)
			if flushed := enc4.Flush(now); len(flushed) != 1 {
				t.Errorf("v4-only Flush emitted %d datagrams, want 1", len(flushed))
			}
		})
	}
}
