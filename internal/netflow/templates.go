package netflow

import (
	"sync"
	"time"

	"infilter/internal/telemetry"
)

// TemplateField is one field specifier of a v9/IPFIX template: the
// information element id, its encoded length in bytes (lenVariable for
// IPFIX variable-length encoding) and, for IPFIX enterprise-specific
// elements, the enterprise number.
type TemplateField struct {
	ID         uint16
	Length     uint16
	Enterprise uint32
}

// lenVariable is the IPFIX field-length sentinel for variable-length
// encoding (RFC 7011 §7).
const lenVariable = 0xFFFF

// Template is one compiled flow-record layout learned from a template
// set. Fields is immutable after insertion into the cache, so decoders
// may read it without holding the cache lock.
type Template struct {
	ID     uint16
	Fields []TemplateField

	// fixedLen is the per-record byte length when no field is
	// variable-length; minLen is the smallest possible record length
	// (equal to fixedLen for fixed templates), used to separate trailing
	// set padding from a truncated record.
	fixedLen int
	minLen   int
	variable bool

	refreshed time.Time // last time a template set (re)announced it
}

// compile derives the length bookkeeping from Fields.
func (t *Template) compile() {
	t.fixedLen, t.minLen, t.variable = 0, 0, false
	for _, f := range t.Fields {
		if f.Length == lenVariable {
			t.variable = true
			t.minLen++ // at least the 1-byte length prefix
			continue
		}
		t.fixedLen += int(f.Length)
		t.minLen += int(f.Length)
	}
	if t.variable {
		t.fixedLen = -1
	}
}

// Template/orphan cache defaults.
const (
	DefaultMaxTemplates = 4096
	DefaultTemplateTTL  = 30 * time.Minute
	DefaultMaxOrphans   = 512
	DefaultOrphanTTL    = time.Minute
)

// TemplateCacheConfig bounds the per-exporter template and orphan state.
// Zero values take the defaults above.
type TemplateCacheConfig struct {
	// MaxTemplates caps learned templates across all exporters; at the
	// cap the least-recently-refreshed template is evicted.
	MaxTemplates int
	// TemplateTTL expires a template that has not been re-announced for
	// this long (exporters periodically resend templates; silence means
	// the exporter restarted or the template was retired).
	TemplateTTL time.Duration
	// MaxOrphans caps buffered data sets that arrived before their
	// template, across all exporters; at the cap new orphans are dropped
	// and counted.
	MaxOrphans int
	// OrphanTTL expires buffered orphans whose template never arrived.
	OrphanTTL time.Duration
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

func (c TemplateCacheConfig) withDefaults() TemplateCacheConfig {
	if c.MaxTemplates <= 0 {
		c.MaxTemplates = DefaultMaxTemplates
	}
	if c.TemplateTTL <= 0 {
		c.TemplateTTL = DefaultTemplateTTL
	}
	if c.MaxOrphans <= 0 {
		c.MaxOrphans = DefaultMaxOrphans
	}
	if c.OrphanTTL <= 0 {
		c.OrphanTTL = DefaultOrphanTTL
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Metrics are the ingest-side decode counters: datagrams per export
// version, template cache lifecycle events, orphaned data sets and
// per-exporter sequence gaps.
type Metrics struct {
	DatagramsV5    *telemetry.Counter
	DatagramsV9    *telemetry.Counter
	DatagramsIPFIX *telemetry.Counter

	TemplatesLearned *telemetry.Counter
	TemplatesExpired *telemetry.Counter

	OrphansBuffered *telemetry.Counter
	OrphansResolved *telemetry.Counter
	OrphansDropped  *telemetry.Counter

	SequenceGaps *telemetry.Counter
}

// NewMetrics registers the decode counters on r.
func NewMetrics(r *telemetry.Registry) *Metrics {
	dg := func(v string) *telemetry.Counter {
		return r.Counter("infilter_netflow_datagrams_total",
			"Flow-export datagrams decoded, by export format version.",
			telemetry.Label{Key: "version", Value: v})
	}
	return &Metrics{
		DatagramsV5:      dg("5"),
		DatagramsV9:      dg("9"),
		DatagramsIPFIX:   dg("10"),
		TemplatesLearned: r.Counter("infilter_netflow_templates_learned_total", "v9/IPFIX templates learned or changed."),
		TemplatesExpired: r.Counter("infilter_netflow_templates_expired_total", "Templates evicted by TTL or cache pressure."),
		OrphansBuffered:  r.Counter("infilter_netflow_orphans_buffered_total", "Data sets buffered because their template was not yet known."),
		OrphansResolved:  r.Counter("infilter_netflow_orphans_resolved_total", "Buffered data sets decoded after their template arrived."),
		OrphansDropped:   r.Counter("infilter_netflow_orphans_dropped_total", "Orphan data sets dropped at the buffer bound or by TTL."),
		SequenceGaps:     r.Counter("infilter_netflow_sequence_gaps_total", "Per-exporter export sequence gaps (lost datagrams or records)."),
	}
}

// domainKey identifies one (exporter, observation domain) template scope:
// v9 calls the domain a source id, IPFIX an observation domain id, and v5
// maps its engine id into the same space.
type domainKey struct {
	exporter string
	domain   uint32
}

// orphan is one buffered data set awaiting its template, with the header
// context of the datagram it arrived in (needed to resolve v9
// sysUptime-relative timestamps once decodable).
type orphan struct {
	data        []byte
	exportTime  time.Time
	sysUptimeMS uint32
	version     uint16
	stored      time.Time
}

// seqState tracks the expected next export sequence number for one
// (exporter, domain): v9 counts datagrams, v5 and IPFIX count records.
type seqState struct {
	init bool
	next uint32
}

type domainState struct {
	templates map[uint16]*Template
	orphans   map[uint16][]orphan
	seq       seqState
}

// TemplateCache is the shared per-exporter, per-observation-domain decode
// state: learned templates (bounded, expiring), buffered orphan data sets
// (bounded, with a drop counter) and export sequence tracking. It is safe
// for concurrent use by multiple listeners sharing one cache; all decode
// buffers derived from the same cache resolve templates consistently.
type TemplateCache struct {
	cfg     TemplateCacheConfig
	metrics *Metrics

	mu            sync.Mutex
	domains       map[domainKey]*domainState
	templateCount int
	orphanCount   int
}

// NewTemplateCache returns an empty cache with the given bounds.
func NewTemplateCache(cfg TemplateCacheConfig) *TemplateCache {
	return &TemplateCache{
		cfg:     cfg.withDefaults(),
		metrics: &Metrics{}, // unregistered: nil counters discard records
		domains: make(map[domainKey]*domainState),
	}
}

// SetMetrics installs decode counters (nil disables). Call before the
// cache is shared with running listeners: decoders read the pointer
// without locking.
func (c *TemplateCache) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	c.metrics = m
}

// Len reports learned templates across all exporters.
func (c *TemplateCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.templateCount
}

// OrphanCount reports buffered orphan data sets across all exporters.
func (c *TemplateCache) OrphanCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.orphanCount
}

func (c *TemplateCache) state(key domainKey) *domainState {
	st, ok := c.domains[key]
	if !ok {
		st = &domainState{
			templates: make(map[uint16]*Template),
			orphans:   make(map[uint16][]orphan),
		}
		c.domains[key] = st
	}
	return st
}

// lookup returns the live template for (key, id), or nil. Expired
// templates are removed on access so a stale layout can never decode
// fresh data.
func (c *TemplateCache) lookup(key domainKey, id uint16) *Template {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.domains[key]
	if !ok {
		return nil
	}
	t, ok := st.templates[id]
	if !ok {
		return nil
	}
	if c.cfg.Now().Sub(t.refreshed) > c.cfg.TemplateTTL {
		delete(st.templates, id)
		c.templateCount--
		c.metrics.TemplatesExpired.Inc()
		return nil
	}
	return t
}

// learn inserts or refreshes a template and returns any buffered orphan
// data sets it unblocks (removed from the buffer; the caller decodes
// them). Re-announcements with an unchanged layout only refresh the TTL.
func (c *TemplateCache) learn(key domainKey, t *Template) []orphan {
	now := c.cfg.Now()
	t.compile()
	t.refreshed = now

	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(key)
	prev, existed := st.templates[t.ID]
	if existed && sameFields(prev.Fields, t.Fields) {
		prev.refreshed = now
	} else {
		if !existed {
			c.templateCount++
			if c.templateCount > c.cfg.MaxTemplates {
				c.evictLocked(now)
			}
		}
		st.templates[t.ID] = t
		c.metrics.TemplatesLearned.Inc()
	}

	resolved := st.orphans[t.ID]
	if len(resolved) > 0 {
		delete(st.orphans, t.ID)
		c.orphanCount -= len(resolved)
		c.metrics.OrphansResolved.Add(int64(len(resolved)))
	}
	return resolved
}

// withdraw removes a template (IPFIX template withdrawal).
func (c *TemplateCache) withdraw(key domainKey, id uint16) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.domains[key]
	if !ok {
		return
	}
	if _, ok := st.templates[id]; ok {
		delete(st.templates, id)
		c.templateCount--
		c.metrics.TemplatesExpired.Inc()
	}
}

// evictLocked drops expired templates, and if none were expired, the
// least-recently-refreshed one, restoring the MaxTemplates bound.
func (c *TemplateCache) evictLocked(now time.Time) {
	var (
		oldestKey domainKey
		oldestID  uint16
		oldest    time.Time
		found     bool
	)
	for key, st := range c.domains {
		for id, t := range st.templates {
			if now.Sub(t.refreshed) > c.cfg.TemplateTTL {
				delete(st.templates, id)
				c.templateCount--
				c.metrics.TemplatesExpired.Inc()
				continue
			}
			if !found || t.refreshed.Before(oldest) {
				oldestKey, oldestID, oldest, found = key, id, t.refreshed, true
			}
		}
	}
	if c.templateCount > c.cfg.MaxTemplates && found {
		delete(c.domains[oldestKey].templates, oldestID)
		c.templateCount--
		c.metrics.TemplatesExpired.Inc()
	}
}

// buffer stores a copy of an unresolvable data set until its template
// arrives. At the bound (after expiring stale orphans) the set is dropped
// and counted. Returns whether the orphan was kept.
func (c *TemplateCache) buffer(key domainKey, templateID uint16, o orphan) bool {
	now := c.cfg.Now()
	o.stored = now

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.orphanCount >= c.cfg.MaxOrphans {
		c.expireOrphansLocked(now)
	}
	if c.orphanCount >= c.cfg.MaxOrphans {
		c.metrics.OrphansDropped.Inc()
		return false
	}
	st := c.state(key)
	st.orphans[templateID] = append(st.orphans[templateID], o)
	c.orphanCount++
	c.metrics.OrphansBuffered.Inc()
	return true
}

// expireOrphansLocked drops buffered orphans older than OrphanTTL.
func (c *TemplateCache) expireOrphansLocked(now time.Time) {
	for _, st := range c.domains {
		for id, list := range st.orphans {
			kept := list[:0]
			for _, o := range list {
				if now.Sub(o.stored) > c.cfg.OrphanTTL {
					c.orphanCount--
					c.metrics.OrphansDropped.Inc()
					continue
				}
				kept = append(kept, o)
			}
			if len(kept) == 0 {
				delete(st.orphans, id)
			} else {
				st.orphans[id] = kept
			}
		}
	}
}

// seqCheck validates the observed export sequence value against the
// expected one and advances the expectation by inc (1 datagram for v9;
// the record count for v5/IPFIX). It returns the number of missed units
// when a forward gap is detected. Backward jumps (reordering, exporter
// restart) resynchronize silently.
func (c *TemplateCache) seqCheck(key domainKey, observed, inc uint32) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.state(key)
	var gap uint64
	if st.seq.init {
		delta := observed - st.seq.next // uint32 wraparound arithmetic
		if delta != 0 && delta < 1<<31 {
			gap = uint64(delta)
			c.metrics.SequenceGaps.Inc()
		}
	}
	st.seq.init = true
	st.seq.next = observed + inc
	return gap
}

// seqReset forgets the sequence expectation for one domain so the next
// datagram resynchronizes. Used when a datagram's record count cannot be
// known (IPFIX data sets orphaned without their template), which would
// otherwise make every following datagram report a false gap.
func (c *TemplateCache) seqReset(key domainKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.domains[key]; ok {
		st.seq.init = false
	}
}

func sameFields(a, b []TemplateField) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
