package netflow

import (
	"encoding/binary"
	"fmt"
	"time"
)

// IPFIX wire constants (RFC 7011).
const (
	ipfixHeaderSize = 16

	ipfixSetTemplate        = 2
	ipfixSetOptionsTemplate = 3
)

// decodeIPFIX decodes one IPFIX message. The set grammar matches v9
// closely; the differences are the 16-byte header carrying an explicit
// message length and export time in seconds, enterprise-specific template
// fields, variable-length fields, and sequence numbers that count data
// records rather than datagrams.
func decodeIPFIX(raw []byte, buf *DecodeBuffer) (Message, error) {
	if len(raw) < ipfixHeaderSize {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrShortDatagram, len(raw))
	}
	msgLen := int(binary.BigEndian.Uint16(raw[2:4]))
	if msgLen < ipfixHeaderSize || msgLen > len(raw) {
		return Message{}, fmt.Errorf("%w: message length %d of %d bytes", ErrBadCount, msgLen, len(raw))
	}
	raw = raw[:msgLen]
	var (
		exportSecs = binary.BigEndian.Uint32(raw[4:8])
		seq        = binary.BigEndian.Uint32(raw[8:12])
		domain     = binary.BigEndian.Uint32(raw[12:16])
	)
	export := time.Unix(int64(exportSecs), 0).UTC()
	// IPFIX has no sysUptime basis; absolute timestamp elements (150-153)
	// are the norm, so relative stamps fall back to the export time.
	ctx := recordContext{boot: export, export: export}
	key := domainKey{exporter: buf.exporter, domain: domain}

	buf.recs = buf.recs[:0]
	msg := Message{
		Version:    VersionIPFIX,
		Exporter:   buf.exporter,
		Domain:     domain,
		ExportTime: export,
		Sequence:   seq,
	}

	off := ipfixHeaderSize
	for off+4 <= len(raw) {
		setID := binary.BigEndian.Uint16(raw[off : off+2])
		setLen := int(binary.BigEndian.Uint16(raw[off+2 : off+4]))
		if setLen < 4 || off+setLen > len(raw) {
			return Message{}, fmt.Errorf("%w: set id=%d len=%d at offset %d", ErrBadSet, setID, setLen, off)
		}
		payload := raw[off+4 : off+setLen]
		switch {
		case setID == ipfixSetTemplate:
			n, err := decodeTemplateSet(payload, true, key, ctx, buf, &msg)
			if err != nil {
				return Message{}, err
			}
			msg.TemplateSets += n
		case setID == ipfixSetOptionsTemplate:
			// Exporter self-description; skip.
		case setID >= minDataSetID:
			decodeDataSet(payload, setID, VersionIPFIX, 0, key, ctx, buf, &msg)
		default:
			// Set ids 0,1 and 4-255 are reserved in IPFIX; skip.
		}
		off += setLen
	}

	buf.cache.metrics.DatagramsIPFIX.Inc()
	// Sequence numbers count data records at their original export, so
	// orphan-recovered records (already counted by the message that
	// carried them) must not advance the expectation here.
	newRecords := len(buf.recs) - msg.Resolved
	if newRecords < 0 {
		newRecords = 0
	}
	msg.SeqGap = buf.cache.seqCheck(key, seq, uint32(newRecords))
	if msg.Orphaned > 0 {
		// The orphaned sets' record counts are unknown until their
		// template arrives, so the next expected sequence value is
		// unknowable; resynchronize on the next message instead of
		// reporting false gaps.
		buf.cache.seqReset(key)
	}
	msg.Records = buf.recs
	return msg, nil
}
