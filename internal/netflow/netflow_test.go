package netflow

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/packet"
)

func sampleRecord(i int) v5Record {
	return v5Record{
		SrcAddr:  netaddr.IPv4(0x0a000000 + uint32(i)),
		DstAddr:  netaddr.IPv4(0xc0000201),
		NextHop:  netaddr.IPv4(0xc0000101),
		InputIf:  uint16(i % 4),
		OutputIf: 9,
		Packets:  uint32(10 + i),
		Octets:   uint32(4000 + i),
		FirstMS:  uint32(1000 * i),
		LastMS:   uint32(1000*i + 500),
		SrcPort:  uint16(1024 + i),
		DstPort:  80,
		TCPFlags: packet.FlagSYN | packet.FlagACK,
		Proto:    flow.ProtoTCP,
		TOS:      0,
		SrcAS:    uint16(100 + i),
		DstAS:    65000,
		SrcMask:  11,
		DstMask:  24,
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	d := &v5Datagram{
		Header: v5Header{
			SysUptimeMS:  123456,
			UnixSecs:     1112345678,
			UnixNsecs:    987654,
			FlowSequence: 42,
			EngineType:   1,
			EngineID:     7,
		},
	}
	for i := 0; i < 17; i++ {
		d.Records = append(d.Records, sampleRecord(i))
	}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != v5HeaderSize+17*v5RecordSize {
		t.Fatalf("marshaled %d bytes", len(raw))
	}
	got, err := unmarshalV5(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Count != 17 || got.Header.FlowSequence != 42 ||
		got.Header.SysUptimeMS != 123456 || got.Header.EngineID != 7 {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	for i := range d.Records {
		if got.Records[i] != d.Records[i] {
			t.Errorf("record %d: got %+v want %+v", i, got.Records[i], d.Records[i])
		}
	}
}

// TestDecodeV5MatchesUnmarshal pins the fused hot-loop decoder
// (decodeV5FlowRecord) to the field-by-field reference path
// (unmarshalV5 + ToFlowRecord): both must produce identical flow
// records for every wire field.
func TestDecodeV5MatchesUnmarshal(t *testing.T) {
	d := &v5Datagram{
		Header: v5Header{
			SysUptimeMS:  777777,
			UnixSecs:     1112345678,
			UnixNsecs:    987654,
			FlowSequence: 42,
			EngineID:     3,
		},
	}
	for i := 0; i < MaxRecords; i++ {
		r := sampleRecord(i)
		if i%2 == 1 { // vary every byte-sized field too
			r.Proto = flow.ProtoUDP
			r.TOS = uint8(i)
			r.TCPFlags = 0
			r.SrcMask = uint8(8 + i%24)
			r.DstMask = uint8(i)
		}
		d.Records = append(d.Records, r)
	}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := Decode(raw, NewDecodeBuffer(nil))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := unmarshalV5(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Records) != len(ref.Records) {
		t.Fatalf("decoded %d records, reference %d", len(msg.Records), len(ref.Records))
	}
	for i, r := range ref.Records {
		want := r.ToFlowRecord(ref.Header, r.InputIf)
		if msg.Records[i] != want {
			t.Errorf("record %d: fused decode %+v, reference %+v", i, msg.Records[i], want)
		}
	}
}

func TestMarshalRejectsTooManyRecords(t *testing.T) {
	d := &v5Datagram{Records: make([]v5Record, MaxRecords+1)}
	if _, err := d.Marshal(); err == nil {
		t.Error("Marshal with 31 records: want error")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := unmarshalV5(make([]byte, 10)); !errors.Is(err, ErrShortDatagram) {
		t.Errorf("short datagram: %v", err)
	}
	d := &v5Datagram{Records: []v5Record{sampleRecord(0)}}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[1] = 99 // unknown version
	if _, err := unmarshalV5(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	if _, err := Decode(bad, NewDecodeBuffer(nil)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("Decode bad version: %v", err)
	}
	trunc := raw[:len(raw)-1]
	if _, err := unmarshalV5(trunc); !errors.Is(err, ErrBadCount) {
		t.Errorf("truncated records: %v", err)
	}
	if _, err := Decode(trunc, NewDecodeBuffer(nil)); !errors.Is(err, ErrBadCount) {
		t.Errorf("Decode truncated records: %v", err)
	}
}

func TestFlowRecordConversionRoundTrip(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	fr := flow.Record{
		Key: flow.Key{
			Src:     netaddr.MustParseAddr("61.2.3.4"),
			Dst:     netaddr.MustParseAddr("192.0.2.9"),
			Proto:   flow.ProtoUDP,
			SrcPort: 9999,
			DstPort: 53,
			InputIf: 2,
		},
		Packets: 3,
		Bytes:   300,
		Start:   boot.Add(90 * time.Second),
		End:     boot.Add(91 * time.Second),
		SrcAS:   1224,
		DstAS:   1,
		SrcMask: 11,
	}
	wire := v5FromFlowRecord(fr, boot)
	hdr := v5Header{
		SysUptimeMS: uint32(200 * 1000),
		UnixSecs:    uint32(boot.Add(200 * time.Second).Unix()),
	}
	back := wire.ToFlowRecord(hdr, 2)
	if back.Key != fr.Key {
		t.Errorf("key: got %+v want %+v", back.Key, fr.Key)
	}
	if back.Packets != fr.Packets || back.Bytes != fr.Bytes {
		t.Errorf("counters: got %d/%d", back.Packets, back.Bytes)
	}
	if !back.Start.Equal(fr.Start) || !back.End.Equal(fr.End) {
		t.Errorf("times: got %v-%v want %v-%v", back.Start, back.End, fr.Start, fr.End)
	}
	if back.SrcAS != 1224 || back.DstAS != 1 {
		t.Errorf("AS fields: %d %d", back.SrcAS, back.DstAS)
	}
}

func pkt(ts time.Time, src string, dport uint16, proto uint8, length uint16, tcpFlags uint8) packet.Packet {
	return packet.Packet{
		Time:     ts,
		Src:      netaddr.MustParseAddr(src),
		Dst:      netaddr.MustParseAddr("192.0.2.1"),
		Proto:    proto,
		SrcPort:  5555,
		DstPort:  dport,
		Length:   length,
		TCPFlags: tcpFlags,
	}
}

func TestCacheAggregatesPackets(t *testing.T) {
	c := NewCache(CacheConfig{})
	t0 := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		c.Observe(pkt(t0.Add(time.Duration(i)*time.Second), "10.0.0.1", 80, flow.ProtoTCP, 100, packet.FlagACK), 1)
	}
	if c.Len() != 1 {
		t.Fatalf("cache has %d flows, want 1", c.Len())
	}
	c.FlushAll()
	recs := c.Drain()
	if len(recs) != 1 {
		t.Fatalf("drained %d records", len(recs))
	}
	r := recs[0]
	if r.Packets != 5 || r.Bytes != 500 {
		t.Errorf("counters %d/%d, want 5/500", r.Packets, r.Bytes)
	}
	if r.Duration() != 4*time.Second {
		t.Errorf("duration %v", r.Duration())
	}
}

func TestCacheIdleTimeout(t *testing.T) {
	c := NewCache(CacheConfig{IdleTimeout: 10 * time.Second})
	t0 := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	c.Observe(pkt(t0, "10.0.0.1", 80, flow.ProtoTCP, 40, packet.FlagACK), 1)
	c.Advance(t0.Add(5 * time.Second))
	if len(c.Drain()) != 0 {
		t.Error("flow expired before idle timeout")
	}
	c.Advance(t0.Add(11 * time.Second))
	if got := len(c.Drain()); got != 1 {
		t.Errorf("drained %d after idle timeout, want 1", got)
	}
	if c.Len() != 0 {
		t.Errorf("cache still holds %d", c.Len())
	}
}

func TestCacheActiveTimeout(t *testing.T) {
	c := NewCache(CacheConfig{ActiveTimeout: 30 * time.Second, IdleTimeout: time.Hour})
	t0 := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	// Continuous traffic: active timeout must still chop the flow.
	for i := 0; i < 40; i++ {
		c.Observe(pkt(t0.Add(time.Duration(i)*time.Second), "10.0.0.1", 80, flow.ProtoTCP, 40, packet.FlagACK), 1)
	}
	recs := c.Drain()
	if len(recs) != 1 {
		t.Fatalf("drained %d mid-flow records, want 1 active-timeout chop", len(recs))
	}
	if recs[0].Packets != 30 {
		t.Errorf("first segment had %d packets, want 30", recs[0].Packets)
	}
	c.FlushAll()
	rest := c.Drain()
	if len(rest) != 1 || rest[0].Packets != 10 {
		t.Errorf("second segment %+v", rest)
	}
}

func TestCacheFINExpiry(t *testing.T) {
	c := NewCache(CacheConfig{ExpireOnFINRST: true})
	t0 := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	c.Observe(pkt(t0, "10.0.0.1", 80, flow.ProtoTCP, 40, packet.FlagSYN), 1)
	c.Observe(pkt(t0.Add(time.Second), "10.0.0.1", 80, flow.ProtoTCP, 40, packet.FlagACK), 1)
	c.Observe(pkt(t0.Add(2*time.Second), "10.0.0.1", 80, flow.ProtoTCP, 40, packet.FlagFIN|packet.FlagACK), 1)
	recs := c.Drain()
	if len(recs) != 1 {
		t.Fatalf("drained %d after FIN, want 1", len(recs))
	}
	if recs[0].Packets != 3 {
		t.Errorf("packets = %d, want 3", recs[0].Packets)
	}
	if recs[0].TCPFlag&packet.FlagFIN == 0 {
		t.Error("cumulative TCP flags missing FIN")
	}
	// RST also expires.
	c.Observe(pkt(t0.Add(3*time.Second), "10.0.0.2", 80, flow.ProtoTCP, 40, packet.FlagRST), 1)
	if len(c.Drain()) != 1 {
		t.Error("RST did not expire flow")
	}
}

func TestCacheUDPIgnoresFINConfig(t *testing.T) {
	c := NewCache(CacheConfig{ExpireOnFINRST: true})
	t0 := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	p := pkt(t0, "10.0.0.1", 53, flow.ProtoUDP, 60, packet.FlagFIN) // garbage flags on UDP
	c.Observe(p, 1)
	if len(c.Drain()) != 0 {
		t.Error("UDP flow expired on TCP flag bits")
	}
}

func TestCacheEvictionAtCapacity(t *testing.T) {
	c := NewCache(CacheConfig{MaxEntries: 3})
	t0 := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	srcs := []string{"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"}
	for i, s := range srcs {
		c.Observe(pkt(t0.Add(time.Duration(i)*time.Millisecond), s, 80, flow.ProtoTCP, 40, packet.FlagACK), 1)
	}
	if c.Len() != 3 {
		t.Errorf("cache len %d, want 3", c.Len())
	}
	recs := c.Drain()
	if len(recs) != 1 {
		t.Fatalf("evicted %d, want 1", len(recs))
	}
	if got := recs[0].Key.Src.String(); got != "10.0.0.1" {
		t.Errorf("evicted %s, want oldest 10.0.0.1", got)
	}
}

func TestCacheDistinctKeysDistinctFlows(t *testing.T) {
	c := NewCache(CacheConfig{})
	t0 := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	c.Observe(pkt(t0, "10.0.0.1", 80, flow.ProtoTCP, 40, 0), 1)
	c.Observe(pkt(t0, "10.0.0.1", 443, flow.ProtoTCP, 40, 0), 1)
	c.Observe(pkt(t0, "10.0.0.1", 80, flow.ProtoUDP, 40, 0), 1)
	c.Observe(pkt(t0, "10.0.0.1", 80, flow.ProtoTCP, 40, 0), 2) // different ifIndex
	if c.Len() != 4 {
		t.Errorf("cache len %d, want 4 distinct flows", c.Len())
	}
}

func TestExporterSequencesAndSplits(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	e := NewExporter(NewV5Encoder(boot, 3))
	if e.Version() != VersionV5 {
		t.Errorf("Version = %d", e.Version())
	}
	var recs []flow.Record
	for i := 0; i < 65; i++ {
		recs = append(recs, flow.Record{
			Key:     flow.Key{Src: netaddr.IPv4(uint32(i)).Addr(), Proto: flow.ProtoTCP, DstPort: 80},
			Packets: 1, Bytes: 40,
			Start: boot.Add(time.Second), End: boot.Add(2 * time.Second),
		})
	}
	e.Add(recs...)
	if e.Pending() != 65 {
		t.Errorf("Pending = %d", e.Pending())
	}
	dgs := e.Export(boot.Add(time.Minute))
	if len(dgs) != 3 {
		t.Fatalf("%d datagrams, want 3 (30+30+5)", len(dgs))
	}
	if dgs[0].Flows != 30 || dgs[1].Flows != 30 || dgs[2].Flows != 5 {
		t.Errorf("split %d/%d/%d", dgs[0].Flows, dgs[1].Flows, dgs[2].Flows)
	}
	var seqs, uptime []uint32
	for _, dg := range dgs {
		d, err := unmarshalV5(dg.Raw)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, d.Header.FlowSequence)
		uptime = append(uptime, d.Header.SysUptimeMS)
	}
	if seqs[0] != 0 || seqs[1] != 30 || seqs[2] != 60 {
		t.Errorf("sequences %v", seqs)
	}
	if uptime[0] != 60000 {
		t.Errorf("sysUptime %d", uptime[0])
	}
	if e.Export(boot) != nil {
		t.Error("second Export should return nil with empty queue")
	}
	// Next batch continues the sequence.
	e.Add(recs[0])
	dgs = e.Export(boot.Add(2 * time.Minute))
	d, err := unmarshalV5(dgs[0].Raw)
	if err != nil {
		t.Fatal(err)
	}
	if d.Header.FlowSequence != 65 {
		t.Errorf("continued sequence %d, want 65", d.Header.FlowSequence)
	}
}

func TestEndToEndPacketsToDatagramToFlow(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	c := NewCache(CacheConfig{ExpireOnFINRST: true})
	e := NewExporter(NewV5Encoder(boot, 1))

	t0 := boot.Add(10 * time.Second)
	c.Observe(pkt(t0, "61.5.6.7", 80, flow.ProtoTCP, 400, packet.FlagSYN), 4)
	c.Observe(pkt(t0.Add(time.Second), "61.5.6.7", 80, flow.ProtoTCP, 1000, packet.FlagACK), 4)
	c.Observe(pkt(t0.Add(2*time.Second), "61.5.6.7", 80, flow.ProtoTCP, 40, packet.FlagFIN), 4)
	e.Add(c.Drain()...)
	dgs := e.Export(t0.Add(20 * time.Second))
	if len(dgs) != 1 {
		t.Fatalf("%d datagrams", len(dgs))
	}
	msg, err := Decode(dgs[0].Raw, NewDecodeBuffer(nil))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Version != VersionV5 || len(msg.Records) != 1 {
		t.Fatalf("version %d, %d records", msg.Version, len(msg.Records))
	}
	fr := msg.Records[0]
	if fr.Key.Src.String() != "61.5.6.7" || fr.Key.DstPort != 80 || fr.Key.InputIf != 4 {
		t.Errorf("key %+v", fr.Key)
	}
	if fr.Packets != 3 || fr.Bytes != 1440 {
		t.Errorf("counters %d/%d", fr.Packets, fr.Bytes)
	}
	if fr.Duration() != 2*time.Second {
		t.Errorf("duration %v", fr.Duration())
	}
}

func TestDatagramRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(MaxRecords) + 1
		d := &v5Datagram{
			Header: v5Header{
				SysUptimeMS:  rng.Uint32(),
				UnixSecs:     rng.Uint32(),
				UnixNsecs:    rng.Uint32(),
				FlowSequence: rng.Uint32(),
				EngineType:   uint8(rng.Intn(256)),
				EngineID:     uint8(rng.Intn(256)),
			},
		}
		for i := 0; i < n; i++ {
			d.Records = append(d.Records, v5Record{
				SrcAddr: netaddr.IPv4(rng.Uint32()), DstAddr: netaddr.IPv4(rng.Uint32()),
				NextHop: netaddr.IPv4(rng.Uint32()),
				InputIf: uint16(rng.Intn(65536)), OutputIf: uint16(rng.Intn(65536)),
				Packets: rng.Uint32(), Octets: rng.Uint32(),
				FirstMS: rng.Uint32(), LastMS: rng.Uint32(),
				SrcPort: uint16(rng.Intn(65536)), DstPort: uint16(rng.Intn(65536)),
				TCPFlags: uint8(rng.Intn(256)), Proto: uint8(rng.Intn(256)), TOS: uint8(rng.Intn(256)),
				SrcAS: uint16(rng.Intn(65536)), DstAS: uint16(rng.Intn(65536)),
				SrcMask: uint8(rng.Intn(33)), DstMask: uint8(rng.Intn(33)),
			})
		}
		raw, err := d.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := unmarshalV5(raw)
		if err != nil {
			t.Fatal(err)
		}
		for i := range d.Records {
			if got.Records[i] != d.Records[i] {
				t.Fatalf("trial %d record %d mismatch", trial, i)
			}
		}
	}
}
