package netflow

import (
	"time"

	"infilter/internal/flow"
)

// Exporter packs finished flow records into NetFlow v5 datagrams with
// monotonically increasing flow sequence numbers, as a border router's
// export engine would.
type Exporter struct {
	boot     time.Time
	engineID uint8
	seq      uint32
	pending  []flow.Record
}

// NewExporter returns an exporter whose sysUptime is measured from boot.
func NewExporter(boot time.Time, engineID uint8) *Exporter {
	return &Exporter{boot: boot, engineID: engineID}
}

// Add queues finished flow records for export.
func (e *Exporter) Add(recs ...flow.Record) {
	e.pending = append(e.pending, recs...)
}

// Pending returns the number of queued records.
func (e *Exporter) Pending() int { return len(e.pending) }

// Export drains queued records into datagrams stamped at the given export
// time, at most MaxRecords per datagram.
func (e *Exporter) Export(now time.Time) []*Datagram {
	if len(e.pending) == 0 {
		return nil
	}
	var out []*Datagram
	for len(e.pending) > 0 {
		n := len(e.pending)
		if n > MaxRecords {
			n = MaxRecords
		}
		batch := e.pending[:n]
		e.pending = e.pending[n:]

		d := &Datagram{
			Header: Header{
				Count:        uint16(n),
				SysUptimeMS:  uint32(now.Sub(e.boot).Milliseconds()),
				UnixSecs:     uint32(now.Unix()),
				UnixNsecs:    uint32(now.Nanosecond()),
				FlowSequence: e.seq,
				EngineID:     e.engineID,
			},
			Records: make([]Record, n),
		}
		for i, fr := range batch {
			d.Records[i] = FromFlowRecord(fr, e.boot)
		}
		e.seq += uint32(n)
		out = append(out, d)
	}
	e.pending = nil
	return out
}
