package netflow

import (
	"time"

	"infilter/internal/flow"
)

// Exporter batches finished flow records and drains them through a
// WireEncoder, as a border router's export engine would. The wire format
// is whatever the encoder speaks; callers never see a per-version type.
type Exporter struct {
	enc     WireEncoder
	pending []flow.Record
}

// NewExporter returns an exporter emitting through enc.
func NewExporter(enc WireEncoder) *Exporter {
	return &Exporter{enc: enc}
}

// Version reports the export format version the exporter emits.
func (e *Exporter) Version() uint16 { return e.enc.Version() }

// Add queues finished flow records for export.
func (e *Exporter) Add(recs ...flow.Record) {
	e.pending = append(e.pending, recs...)
}

// Pending returns the number of queued records.
func (e *Exporter) Pending() int { return len(e.pending) }

// Export drains queued records into wire datagrams stamped at the given
// export time, at most MaxRecords per datagram.
func (e *Exporter) Export(now time.Time) []WireDatagram {
	if len(e.pending) == 0 {
		return nil
	}
	out := e.enc.Encode(e.pending, now)
	e.pending = nil
	return out
}

// Flush emits any state the encoder is still withholding (a delayed
// template datagram); call it after the last Export of a replay.
func (e *Exporter) Flush(now time.Time) []WireDatagram {
	return e.enc.Flush(now)
}
