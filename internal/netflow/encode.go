package netflow

import (
	"encoding/binary"
	"time"

	"infilter/internal/flow"
)

// WireDatagram is one encoded export datagram ready for the wire, with
// the number of flow records it carries so consumers can count flows
// without decoding.
type WireDatagram struct {
	Raw   []byte
	Flows int
}

// WireEncoder turns batches of flow records into export datagrams of one
// wire format, maintaining the format's sequence and template state.
// Implementations are not safe for concurrent use.
type WireEncoder interface {
	// Version reports the export format version word the encoder emits.
	Version() uint16
	// Encode emits the datagrams carrying recs, chunked at MaxRecords per
	// datagram. Template-based encoders may emit standalone template
	// datagrams alongside (or withhold them, see SetTemplateDelay).
	Encode(recs []flow.Record, now time.Time) []WireDatagram
	// Flush emits withheld encoder state — a delayed template datagram —
	// and may return nil.
	Flush(now time.Time) []WireDatagram
}

// exportTemplateID is the data set id both template-based encoders
// announce; the first id outside the reserved range.
const exportTemplateID = 256

// v9ExportFields is the template this package's v9 encoder announces: the
// v5 feature set expressed as IANA information elements, with
// sysUptime-relative timestamps (39 bytes per record).
var v9ExportFields = []TemplateField{
	{ID: ieSourceIPv4Address, Length: 4},
	{ID: ieDestIPv4Address, Length: 4},
	{ID: ieSourceTransportPort, Length: 2},
	{ID: ieDestTransportPort, Length: 2},
	{ID: ieProtocolIdentifier, Length: 1},
	{ID: ieIPClassOfService, Length: 1},
	{ID: ieTCPControlBits, Length: 1},
	{ID: iePacketDeltaCount, Length: 4},
	{ID: ieOctetDeltaCount, Length: 4},
	{ID: ieFlowStartSysUpTime, Length: 4},
	{ID: ieFlowEndSysUpTime, Length: 4},
	{ID: ieBGPSourceAS, Length: 2},
	{ID: ieBGPDestinationAS, Length: 2},
	{ID: ieSourceIPv4PrefixLen, Length: 1},
	{ID: ieDestIPv4PrefixLen, Length: 1},
	{ID: ieIngressInterface, Length: 2},
}

// ipfixExportFields swaps the relative timestamps for the absolute
// millisecond elements IPFIX exporters prefer (47 bytes per record).
var ipfixExportFields = []TemplateField{
	{ID: ieSourceIPv4Address, Length: 4},
	{ID: ieDestIPv4Address, Length: 4},
	{ID: ieSourceTransportPort, Length: 2},
	{ID: ieDestTransportPort, Length: 2},
	{ID: ieProtocolIdentifier, Length: 1},
	{ID: ieIPClassOfService, Length: 1},
	{ID: ieTCPControlBits, Length: 1},
	{ID: iePacketDeltaCount, Length: 4},
	{ID: ieOctetDeltaCount, Length: 4},
	{ID: ieFlowStartMilliseconds, Length: 8},
	{ID: ieFlowEndMilliseconds, Length: 8},
	{ID: ieBGPSourceAS, Length: 2},
	{ID: ieBGPDestinationAS, Length: 2},
	{ID: ieSourceIPv4PrefixLen, Length: 1},
	{ID: ieDestIPv4PrefixLen, Length: 1},
	{ID: ieIngressInterface, Length: 2},
}

// fieldValue extracts one information element from a flow record for
// encoding; boot anchors sysUptime-relative elements.
func fieldValue(id uint16, rec flow.Record, boot time.Time) uint64 {
	switch id {
	case ieOctetDeltaCount:
		return uint64(rec.Bytes)
	case iePacketDeltaCount:
		return uint64(rec.Packets)
	case ieProtocolIdentifier:
		return uint64(rec.Key.Proto)
	case ieIPClassOfService:
		return uint64(rec.Key.TOS)
	case ieTCPControlBits:
		return uint64(rec.TCPFlag)
	case ieSourceTransportPort:
		return uint64(rec.Key.SrcPort)
	case ieSourceIPv4Address:
		return uint64(rec.Key.Src)
	case ieSourceIPv4PrefixLen:
		return uint64(rec.SrcMask)
	case ieIngressInterface:
		return uint64(rec.Key.InputIf)
	case ieDestTransportPort:
		return uint64(rec.Key.DstPort)
	case ieDestIPv4Address:
		return uint64(rec.Key.Dst)
	case ieDestIPv4PrefixLen:
		return uint64(rec.DstMask)
	case ieBGPSourceAS:
		return uint64(rec.SrcAS)
	case ieBGPDestinationAS:
		return uint64(rec.DstAS)
	case ieFlowStartSysUpTime:
		return uint64(uint32(rec.Start.Sub(boot).Milliseconds()))
	case ieFlowEndSysUpTime:
		return uint64(uint32(rec.End.Sub(boot).Milliseconds()))
	case ieFlowStartMilliseconds:
		return uint64(rec.Start.UnixMilli())
	case ieFlowEndMilliseconds:
		return uint64(rec.End.UnixMilli())
	}
	return 0
}

// putUint writes v big-endian across all of b.
func putUint(b []byte, v uint64) {
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// encodeTemplateSet builds one template (flow)set announcing fields under
// tid. setID is v9SetTemplate or ipfixSetTemplate.
func encodeTemplateSet(setID, tid uint16, fields []TemplateField) []byte {
	b := make([]byte, 4+4+4*len(fields))
	binary.BigEndian.PutUint16(b[0:2], setID)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	binary.BigEndian.PutUint16(b[4:6], tid)
	binary.BigEndian.PutUint16(b[6:8], uint16(len(fields)))
	for i, f := range fields {
		off := 8 + 4*i
		binary.BigEndian.PutUint16(b[off:off+2], f.ID)
		binary.BigEndian.PutUint16(b[off+2:off+4], f.Length)
	}
	return b
}

// encodeDataSet builds one data (flow)set of recs laid out per fields,
// padded to a 32-bit boundary as both specs require.
func encodeDataSet(tid uint16, fields []TemplateField, recs []flow.Record, boot time.Time) []byte {
	recLen := 0
	for _, f := range fields {
		recLen += int(f.Length)
	}
	n := 4 + recLen*len(recs)
	pad := (4 - n%4) % 4
	b := make([]byte, n+pad)
	binary.BigEndian.PutUint16(b[0:2], tid)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	off := 4
	for _, rec := range recs {
		for _, f := range fields {
			putUint(b[off:off+int(f.Length)], fieldValue(f.ID, rec, boot))
			off += int(f.Length)
		}
	}
	return b
}

// V5Encoder emits NetFlow v5 datagrams.
type V5Encoder struct {
	boot     time.Time
	engineID uint8
	seq      uint32
}

// NewV5Encoder returns a v5 encoder whose sysUptime is measured from boot.
func NewV5Encoder(boot time.Time, engineID uint8) *V5Encoder {
	return &V5Encoder{boot: boot, engineID: engineID}
}

func (e *V5Encoder) Version() uint16 { return VersionV5 }

func (e *V5Encoder) Encode(recs []flow.Record, now time.Time) []WireDatagram {
	var out []WireDatagram
	for len(recs) > 0 {
		n := len(recs)
		if n > MaxRecords {
			n = MaxRecords
		}
		d := v5Datagram{
			Header: v5Header{
				Count:        uint16(n),
				SysUptimeMS:  uint32(now.Sub(e.boot).Milliseconds()),
				UnixSecs:     uint32(now.Unix()),
				UnixNsecs:    uint32(now.Nanosecond()),
				FlowSequence: e.seq,
				EngineID:     e.engineID,
			},
			Records: make([]v5Record, n),
		}
		for i, fr := range recs[:n] {
			d.Records[i] = v5FromFlowRecord(fr, e.boot)
		}
		raw, err := d.Marshal()
		if err != nil { // unreachable: n is capped at MaxRecords
			return out
		}
		e.seq += uint32(n)
		out = append(out, WireDatagram{Raw: raw, Flows: n})
		recs = recs[n:]
	}
	return out
}

func (e *V5Encoder) Flush(time.Time) []WireDatagram { return nil }

// V9Encoder emits NetFlow v9 datagrams: a standalone template datagram
// announcing v9ExportFields, then data datagrams referencing it.
type V9Encoder struct {
	boot   time.Time
	domain uint32
	seq    uint32 // v9 sequence counts datagrams

	announced bool
	delay     int // data datagrams to emit before the template
}

// NewV9Encoder returns a v9 encoder for one observation domain (source
// id), with sysUptime measured from boot.
func NewV9Encoder(boot time.Time, domain uint32) *V9Encoder {
	return &V9Encoder{boot: boot, domain: domain}
}

// SetTemplateDelay withholds the template datagram until n data datagrams
// have been emitted (or Flush is called), forcing receivers to exercise
// their orphan-buffering path. Zero (the default) announces the template
// before any data.
func (e *V9Encoder) SetTemplateDelay(n int) { e.delay = n }

func (e *V9Encoder) Version() uint16 { return VersionV9 }

// datagram wraps flowsets in a v9 header. count is the number of records
// (template or data) across the flowsets; each datagram consumes one
// sequence number.
func (e *V9Encoder) datagram(now time.Time, count int, flowsets ...[]byte) []byte {
	n := v9HeaderSize
	for _, fs := range flowsets {
		n += len(fs)
	}
	b := make([]byte, v9HeaderSize, n)
	binary.BigEndian.PutUint16(b[0:2], VersionV9)
	binary.BigEndian.PutUint16(b[2:4], uint16(count))
	binary.BigEndian.PutUint32(b[4:8], uint32(now.Sub(e.boot).Milliseconds()))
	binary.BigEndian.PutUint32(b[8:12], uint32(now.Unix()))
	binary.BigEndian.PutUint32(b[12:16], e.seq)
	binary.BigEndian.PutUint32(b[16:20], e.domain)
	e.seq++
	for _, fs := range flowsets {
		b = append(b, fs...)
	}
	return b
}

func (e *V9Encoder) templateDatagram(now time.Time) WireDatagram {
	e.announced = true
	return WireDatagram{Raw: e.datagram(now, 1, encodeTemplateSet(v9SetTemplate, exportTemplateID, v9ExportFields))}
}

func (e *V9Encoder) Encode(recs []flow.Record, now time.Time) []WireDatagram {
	var out []WireDatagram
	for len(recs) > 0 {
		n := len(recs)
		if n > MaxRecords {
			n = MaxRecords
		}
		if !e.announced {
			if e.delay > 0 {
				e.delay--
			} else {
				out = append(out, e.templateDatagram(now))
			}
		}
		ds := encodeDataSet(exportTemplateID, v9ExportFields, recs[:n], e.boot)
		out = append(out, WireDatagram{Raw: e.datagram(now, n, ds), Flows: n})
		recs = recs[n:]
	}
	return out
}

// Flush emits the template datagram if it is still withheld, so a short
// replay always lets receivers resolve buffered orphans.
func (e *V9Encoder) Flush(now time.Time) []WireDatagram {
	if e.announced {
		return nil
	}
	return []WireDatagram{e.templateDatagram(now)}
}

// IPFIXEncoder emits IPFIX messages: a standalone template message
// announcing ipfixExportFields, then data messages referencing it.
type IPFIXEncoder struct {
	domain uint32
	seq    uint32 // IPFIX sequence counts data records

	announced bool
	delay     int
}

// NewIPFIXEncoder returns an IPFIX encoder for one observation domain.
func NewIPFIXEncoder(domain uint32) *IPFIXEncoder {
	return &IPFIXEncoder{domain: domain}
}

// SetTemplateDelay withholds the template message until n data messages
// have been emitted (or Flush is called); see V9Encoder.SetTemplateDelay.
func (e *IPFIXEncoder) SetTemplateDelay(n int) { e.delay = n }

func (e *IPFIXEncoder) Version() uint16 { return VersionIPFIX }

// message wraps sets in an IPFIX header. The sequence number is the count
// of data records exported before this message and advances by dataRecs.
func (e *IPFIXEncoder) message(now time.Time, dataRecs int, sets ...[]byte) []byte {
	n := ipfixHeaderSize
	for _, s := range sets {
		n += len(s)
	}
	b := make([]byte, ipfixHeaderSize, n)
	binary.BigEndian.PutUint16(b[0:2], VersionIPFIX)
	binary.BigEndian.PutUint16(b[2:4], uint16(n))
	binary.BigEndian.PutUint32(b[4:8], uint32(now.Unix()))
	binary.BigEndian.PutUint32(b[8:12], e.seq)
	binary.BigEndian.PutUint32(b[12:16], e.domain)
	e.seq += uint32(dataRecs)
	for _, s := range sets {
		b = append(b, s...)
	}
	return b
}

func (e *IPFIXEncoder) templateMessage(now time.Time) WireDatagram {
	e.announced = true
	return WireDatagram{Raw: e.message(now, 0, encodeTemplateSet(ipfixSetTemplate, exportTemplateID, ipfixExportFields))}
}

func (e *IPFIXEncoder) Encode(recs []flow.Record, now time.Time) []WireDatagram {
	var out []WireDatagram
	for len(recs) > 0 {
		n := len(recs)
		if n > MaxRecords {
			n = MaxRecords
		}
		if !e.announced {
			if e.delay > 0 {
				e.delay--
			} else {
				out = append(out, e.templateMessage(now))
			}
		}
		ds := encodeDataSet(exportTemplateID, ipfixExportFields, recs[:n], now)
		out = append(out, WireDatagram{Raw: e.message(now, n, ds), Flows: n})
		recs = recs[n:]
	}
	return out
}

func (e *IPFIXEncoder) Flush(now time.Time) []WireDatagram {
	if e.announced {
		return nil
	}
	return []WireDatagram{e.templateMessage(now)}
}
