package netflow

import (
	"encoding/binary"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// WireDatagram is one encoded export datagram ready for the wire, with
// the number of flow records it carries so consumers can count flows
// without decoding.
type WireDatagram struct {
	Raw   []byte
	Flows int
}

// WireEncoder turns batches of flow records into export datagrams of one
// wire format, maintaining the format's sequence and template state.
// Implementations are not safe for concurrent use.
type WireEncoder interface {
	// Version reports the export format version word the encoder emits.
	Version() uint16
	// Encode emits the datagrams carrying recs, chunked at MaxRecords per
	// datagram. Template-based encoders may emit standalone template
	// datagrams alongside (or withhold them, see SetTemplateDelay).
	Encode(recs []flow.Record, now time.Time) []WireDatagram
	// Flush emits withheld encoder state — a delayed template datagram —
	// and may return nil.
	Flush(now time.Time) []WireDatagram
}

// exportTemplateID is the v4 data set id both template-based encoders
// announce (the first id outside the reserved range); exportTemplateID6
// is the v6 template. Records are exported through the template of their
// own family, and each template is announced lazily before the first
// data set that references it — an all-v4 record stream therefore
// produces byte-identical output to the pre-dual-stack encoders.
const (
	exportTemplateID  = 256
	exportTemplateID6 = 257
)

// v9ExportFields is the template this package's v9 encoder announces: the
// v5 feature set expressed as IANA information elements plus the flow's
// minimum TTL, with sysUptime-relative timestamps (40 bytes per record).
var v9ExportFields = []TemplateField{
	{ID: ieSourceIPv4Address, Length: 4},
	{ID: ieDestIPv4Address, Length: 4},
	{ID: ieSourceTransportPort, Length: 2},
	{ID: ieDestTransportPort, Length: 2},
	{ID: ieProtocolIdentifier, Length: 1},
	{ID: ieIPClassOfService, Length: 1},
	{ID: ieTCPControlBits, Length: 1},
	{ID: iePacketDeltaCount, Length: 4},
	{ID: ieOctetDeltaCount, Length: 4},
	{ID: ieFlowStartSysUpTime, Length: 4},
	{ID: ieFlowEndSysUpTime, Length: 4},
	{ID: ieBGPSourceAS, Length: 2},
	{ID: ieBGPDestinationAS, Length: 2},
	{ID: ieSourceIPv4PrefixLen, Length: 1},
	{ID: ieDestIPv4PrefixLen, Length: 1},
	{ID: ieMinimumTTL, Length: 1},
	{ID: ieIngressInterface, Length: 2},
}

// ipfixExportFields swaps the relative timestamps for the absolute
// millisecond elements IPFIX exporters prefer (48 bytes per record).
var ipfixExportFields = []TemplateField{
	{ID: ieSourceIPv4Address, Length: 4},
	{ID: ieDestIPv4Address, Length: 4},
	{ID: ieSourceTransportPort, Length: 2},
	{ID: ieDestTransportPort, Length: 2},
	{ID: ieProtocolIdentifier, Length: 1},
	{ID: ieIPClassOfService, Length: 1},
	{ID: ieTCPControlBits, Length: 1},
	{ID: iePacketDeltaCount, Length: 4},
	{ID: ieOctetDeltaCount, Length: 4},
	{ID: ieFlowStartMilliseconds, Length: 8},
	{ID: ieFlowEndMilliseconds, Length: 8},
	{ID: ieBGPSourceAS, Length: 2},
	{ID: ieBGPDestinationAS, Length: 2},
	{ID: ieSourceIPv4PrefixLen, Length: 1},
	{ID: ieDestIPv4PrefixLen, Length: 1},
	{ID: ieMinimumTTL, Length: 1},
	{ID: ieIngressInterface, Length: 2},
}

// v9ExportFields6 is the v6 flavor of the v9 export template: the v4
// address and prefix-length elements swapped for their v6 counterparts,
// plus the IPv6 flow label (68 bytes per record).
var v9ExportFields6 = []TemplateField{
	{ID: ieSourceIPv6Address, Length: 16},
	{ID: ieDestIPv6Address, Length: 16},
	{ID: ieSourceTransportPort, Length: 2},
	{ID: ieDestTransportPort, Length: 2},
	{ID: ieProtocolIdentifier, Length: 1},
	{ID: ieIPClassOfService, Length: 1},
	{ID: ieTCPControlBits, Length: 1},
	{ID: iePacketDeltaCount, Length: 4},
	{ID: ieOctetDeltaCount, Length: 4},
	{ID: ieFlowStartSysUpTime, Length: 4},
	{ID: ieFlowEndSysUpTime, Length: 4},
	{ID: ieBGPSourceAS, Length: 2},
	{ID: ieBGPDestinationAS, Length: 2},
	{ID: ieSourceIPv6PrefixLen, Length: 1},
	{ID: ieDestIPv6PrefixLen, Length: 1},
	{ID: ieFlowLabelIPv6, Length: 4},
	{ID: ieMinimumTTL, Length: 1},
	{ID: ieIngressInterface, Length: 2},
}

// ipfixExportFields6 is the v6 flavor of the IPFIX export template
// (76 bytes per record).
var ipfixExportFields6 = []TemplateField{
	{ID: ieSourceIPv6Address, Length: 16},
	{ID: ieDestIPv6Address, Length: 16},
	{ID: ieSourceTransportPort, Length: 2},
	{ID: ieDestTransportPort, Length: 2},
	{ID: ieProtocolIdentifier, Length: 1},
	{ID: ieIPClassOfService, Length: 1},
	{ID: ieTCPControlBits, Length: 1},
	{ID: iePacketDeltaCount, Length: 4},
	{ID: ieOctetDeltaCount, Length: 4},
	{ID: ieFlowStartMilliseconds, Length: 8},
	{ID: ieFlowEndMilliseconds, Length: 8},
	{ID: ieBGPSourceAS, Length: 2},
	{ID: ieBGPDestinationAS, Length: 2},
	{ID: ieSourceIPv6PrefixLen, Length: 1},
	{ID: ieDestIPv6PrefixLen, Length: 1},
	{ID: ieFlowLabelIPv6, Length: 4},
	{ID: ieMinimumTTL, Length: 1},
	{ID: ieIngressInterface, Length: 2},
}

// fieldValue extracts one information element from a flow record for
// encoding; boot anchors sysUptime-relative elements.
func fieldValue(id uint16, rec flow.Record, boot time.Time) uint64 {
	switch id {
	case ieOctetDeltaCount:
		return uint64(rec.Bytes)
	case iePacketDeltaCount:
		return uint64(rec.Packets)
	case ieProtocolIdentifier:
		return uint64(rec.Key.Proto)
	case ieIPClassOfService:
		return uint64(rec.Key.TOS)
	case ieTCPControlBits:
		return uint64(rec.TCPFlag)
	case ieSourceTransportPort:
		return uint64(rec.Key.SrcPort)
	case ieSourceIPv4Address:
		v4, _ := rec.Key.Src.V4()
		return uint64(v4)
	case ieSourceIPv4PrefixLen, ieSourceIPv6PrefixLen:
		return uint64(rec.SrcMask)
	case ieIngressInterface:
		return uint64(rec.Key.InputIf)
	case ieDestTransportPort:
		return uint64(rec.Key.DstPort)
	case ieDestIPv4Address:
		v4, _ := rec.Key.Dst.V4()
		return uint64(v4)
	case ieDestIPv4PrefixLen, ieDestIPv6PrefixLen:
		return uint64(rec.DstMask)
	case ieBGPSourceAS:
		return uint64(rec.SrcAS)
	case ieBGPDestinationAS:
		return uint64(rec.DstAS)
	case ieFlowLabelIPv6:
		return uint64(rec.FlowLabel)
	case ieMinimumTTL, ieMaximumTTL, ieIPTTL:
		return uint64(rec.TTL)
	case ieFlowStartSysUpTime:
		return uint64(uint32(rec.Start.Sub(boot).Milliseconds()))
	case ieFlowEndSysUpTime:
		return uint64(uint32(rec.End.Sub(boot).Milliseconds()))
	case ieFlowStartMilliseconds:
		return uint64(rec.Start.UnixMilli())
	case ieFlowEndMilliseconds:
		return uint64(rec.End.UnixMilli())
	}
	return 0
}

// putUint writes v big-endian across all of b.
func putUint(b []byte, v uint64) {
	for i := len(b) - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// putField writes one information element of rec into b; 16-byte fields
// are the v6 address elements, everything else is a big-endian integer.
func putField(b []byte, id uint16, rec flow.Record, boot time.Time) {
	if len(b) == 16 {
		var a [16]byte
		switch id {
		case ieSourceIPv6Address:
			a = rec.Key.Src.As16()
		case ieDestIPv6Address:
			a = rec.Key.Dst.As16()
		}
		copy(b, a[:])
		return
	}
	putUint(b, fieldValue(id, rec, boot))
}

// encodeTemplateSet builds one template (flow)set announcing fields under
// tid. setID is v9SetTemplate or ipfixSetTemplate.
func encodeTemplateSet(setID, tid uint16, fields []TemplateField) []byte {
	b := make([]byte, 4+4+4*len(fields))
	binary.BigEndian.PutUint16(b[0:2], setID)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	binary.BigEndian.PutUint16(b[4:6], tid)
	binary.BigEndian.PutUint16(b[6:8], uint16(len(fields)))
	for i, f := range fields {
		off := 8 + 4*i
		binary.BigEndian.PutUint16(b[off:off+2], f.ID)
		binary.BigEndian.PutUint16(b[off+2:off+4], f.Length)
	}
	return b
}

// encodeDataSet builds one data (flow)set of recs laid out per fields,
// padded to a 32-bit boundary as both specs require.
func encodeDataSet(tid uint16, fields []TemplateField, recs []flow.Record, boot time.Time) []byte {
	recLen := 0
	for _, f := range fields {
		recLen += int(f.Length)
	}
	n := 4 + recLen*len(recs)
	pad := (4 - n%4) % 4
	b := make([]byte, n+pad)
	binary.BigEndian.PutUint16(b[0:2], tid)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	off := 4
	for _, rec := range recs {
		for _, f := range fields {
			putField(b[off:off+int(f.Length)], f.ID, rec, boot)
			off += int(f.Length)
		}
	}
	return b
}

// familyRun returns the length of the leading run of recs sharing one
// address family, and whether that family is v6. Template-based encoders
// segment batches into such runs so each data set references the
// template of its records' family while preserving record order.
func familyRun(recs []flow.Record) (n int, v6 bool) {
	fam := recs[0].Key.Family()
	n = 1
	for n < len(recs) && recs[n].Key.Family() == fam {
		n++
	}
	return n, fam == netaddr.FamilyV6
}

// V5Encoder emits NetFlow v5 datagrams.
type V5Encoder struct {
	boot     time.Time
	engineID uint8
	seq      uint32
}

// NewV5Encoder returns a v5 encoder whose sysUptime is measured from boot.
func NewV5Encoder(boot time.Time, engineID uint8) *V5Encoder {
	return &V5Encoder{boot: boot, engineID: engineID}
}

func (e *V5Encoder) Version() uint16 { return VersionV5 }

func (e *V5Encoder) Encode(recs []flow.Record, now time.Time) []WireDatagram {
	var out []WireDatagram
	for len(recs) > 0 {
		n := len(recs)
		if n > MaxRecords {
			n = MaxRecords
		}
		d := v5Datagram{
			Header: v5Header{
				Count:        uint16(n),
				SysUptimeMS:  uint32(now.Sub(e.boot).Milliseconds()),
				UnixSecs:     uint32(now.Unix()),
				UnixNsecs:    uint32(now.Nanosecond()),
				FlowSequence: e.seq,
				EngineID:     e.engineID,
			},
			Records: make([]v5Record, n),
		}
		for i, fr := range recs[:n] {
			d.Records[i] = v5FromFlowRecord(fr, e.boot)
		}
		raw, err := d.Marshal()
		if err != nil { // unreachable: n is capped at MaxRecords
			return out
		}
		e.seq += uint32(n)
		out = append(out, WireDatagram{Raw: raw, Flows: n})
		recs = recs[n:]
	}
	return out
}

func (e *V5Encoder) Flush(time.Time) []WireDatagram { return nil }

// V9Encoder emits NetFlow v9 datagrams: standalone template datagrams
// announcing v9ExportFields (v4) and/or v9ExportFields6 (v6), then data
// datagrams referencing them. Each family's template is announced lazily
// before that family's first data datagram, so an all-v4 stream is
// byte-identical to the pre-dual-stack encoder's output.
type V9Encoder struct {
	boot   time.Time
	domain uint32
	seq    uint32 // v9 sequence counts datagrams

	announced  bool // v4 template sent
	announced6 bool // v6 template sent
	pending6   bool // v6 data emitted while its template was withheld
	delay      int  // data datagrams to emit before a template
}

// NewV9Encoder returns a v9 encoder for one observation domain (source
// id), with sysUptime measured from boot.
func NewV9Encoder(boot time.Time, domain uint32) *V9Encoder {
	return &V9Encoder{boot: boot, domain: domain}
}

// SetTemplateDelay withholds the template datagram until n data datagrams
// have been emitted (or Flush is called), forcing receivers to exercise
// their orphan-buffering path. Zero (the default) announces the template
// before any data.
func (e *V9Encoder) SetTemplateDelay(n int) { e.delay = n }

func (e *V9Encoder) Version() uint16 { return VersionV9 }

// datagram wraps flowsets in a v9 header. count is the number of records
// (template or data) across the flowsets; each datagram consumes one
// sequence number.
func (e *V9Encoder) datagram(now time.Time, count int, flowsets ...[]byte) []byte {
	n := v9HeaderSize
	for _, fs := range flowsets {
		n += len(fs)
	}
	b := make([]byte, v9HeaderSize, n)
	binary.BigEndian.PutUint16(b[0:2], VersionV9)
	binary.BigEndian.PutUint16(b[2:4], uint16(count))
	binary.BigEndian.PutUint32(b[4:8], uint32(now.Sub(e.boot).Milliseconds()))
	binary.BigEndian.PutUint32(b[8:12], uint32(now.Unix()))
	binary.BigEndian.PutUint32(b[12:16], e.seq)
	binary.BigEndian.PutUint32(b[16:20], e.domain)
	e.seq++
	for _, fs := range flowsets {
		b = append(b, fs...)
	}
	return b
}

func (e *V9Encoder) templateDatagram(now time.Time) WireDatagram {
	e.announced = true
	return WireDatagram{Raw: e.datagram(now, 1, encodeTemplateSet(v9SetTemplate, exportTemplateID, v9ExportFields))}
}

func (e *V9Encoder) templateDatagram6(now time.Time) WireDatagram {
	e.announced6 = true
	return WireDatagram{Raw: e.datagram(now, 1, encodeTemplateSet(v9SetTemplate, exportTemplateID6, v9ExportFields6))}
}

func (e *V9Encoder) Encode(recs []flow.Record, now time.Time) []WireDatagram {
	var out []WireDatagram
	for len(recs) > 0 {
		run, v6 := familyRun(recs)
		tid, fields := uint16(exportTemplateID), v9ExportFields
		if v6 {
			tid, fields = exportTemplateID6, v9ExportFields6
		}
		chunk := recs[:run]
		for len(chunk) > 0 {
			n := len(chunk)
			if n > MaxRecords {
				n = MaxRecords
			}
			if v6 && !e.announced6 {
				if e.delay > 0 {
					e.delay--
					e.pending6 = true
				} else {
					out = append(out, e.templateDatagram6(now))
				}
			} else if !v6 && !e.announced {
				if e.delay > 0 {
					e.delay--
				} else {
					out = append(out, e.templateDatagram(now))
				}
			}
			ds := encodeDataSet(tid, fields, chunk[:n], e.boot)
			out = append(out, WireDatagram{Raw: e.datagram(now, n, ds), Flows: n})
			chunk = chunk[n:]
		}
		recs = recs[run:]
	}
	return out
}

// Flush emits any still-withheld template datagrams, so a short replay
// always lets receivers resolve buffered orphans. The v4 template is
// emitted whenever unannounced (matching the pre-dual-stack contract);
// the v6 template only if v6 data actually went out without it.
func (e *V9Encoder) Flush(now time.Time) []WireDatagram {
	var out []WireDatagram
	if !e.announced {
		out = append(out, e.templateDatagram(now))
	}
	if !e.announced6 && e.pending6 {
		out = append(out, e.templateDatagram6(now))
	}
	return out
}

// IPFIXEncoder emits IPFIX messages: standalone template messages
// announcing ipfixExportFields (v4) and/or ipfixExportFields6 (v6), then
// data messages referencing them; see V9Encoder for the per-family
// announcement contract.
type IPFIXEncoder struct {
	domain uint32
	seq    uint32 // IPFIX sequence counts data records

	announced  bool
	announced6 bool
	pending6   bool
	delay      int
}

// NewIPFIXEncoder returns an IPFIX encoder for one observation domain.
func NewIPFIXEncoder(domain uint32) *IPFIXEncoder {
	return &IPFIXEncoder{domain: domain}
}

// SetTemplateDelay withholds the template message until n data messages
// have been emitted (or Flush is called); see V9Encoder.SetTemplateDelay.
func (e *IPFIXEncoder) SetTemplateDelay(n int) { e.delay = n }

func (e *IPFIXEncoder) Version() uint16 { return VersionIPFIX }

// message wraps sets in an IPFIX header. The sequence number is the count
// of data records exported before this message and advances by dataRecs.
func (e *IPFIXEncoder) message(now time.Time, dataRecs int, sets ...[]byte) []byte {
	n := ipfixHeaderSize
	for _, s := range sets {
		n += len(s)
	}
	b := make([]byte, ipfixHeaderSize, n)
	binary.BigEndian.PutUint16(b[0:2], VersionIPFIX)
	binary.BigEndian.PutUint16(b[2:4], uint16(n))
	binary.BigEndian.PutUint32(b[4:8], uint32(now.Unix()))
	binary.BigEndian.PutUint32(b[8:12], e.seq)
	binary.BigEndian.PutUint32(b[12:16], e.domain)
	e.seq += uint32(dataRecs)
	for _, s := range sets {
		b = append(b, s...)
	}
	return b
}

func (e *IPFIXEncoder) templateMessage(now time.Time) WireDatagram {
	e.announced = true
	return WireDatagram{Raw: e.message(now, 0, encodeTemplateSet(ipfixSetTemplate, exportTemplateID, ipfixExportFields))}
}

func (e *IPFIXEncoder) templateMessage6(now time.Time) WireDatagram {
	e.announced6 = true
	return WireDatagram{Raw: e.message(now, 0, encodeTemplateSet(ipfixSetTemplate, exportTemplateID6, ipfixExportFields6))}
}

func (e *IPFIXEncoder) Encode(recs []flow.Record, now time.Time) []WireDatagram {
	var out []WireDatagram
	for len(recs) > 0 {
		run, v6 := familyRun(recs)
		tid, fields := uint16(exportTemplateID), ipfixExportFields
		if v6 {
			tid, fields = exportTemplateID6, ipfixExportFields6
		}
		chunk := recs[:run]
		for len(chunk) > 0 {
			n := len(chunk)
			if n > MaxRecords {
				n = MaxRecords
			}
			if v6 && !e.announced6 {
				if e.delay > 0 {
					e.delay--
					e.pending6 = true
				} else {
					out = append(out, e.templateMessage6(now))
				}
			} else if !v6 && !e.announced {
				if e.delay > 0 {
					e.delay--
				} else {
					out = append(out, e.templateMessage(now))
				}
			}
			ds := encodeDataSet(tid, fields, chunk[:n], now)
			out = append(out, WireDatagram{Raw: e.message(now, n, ds), Flows: n})
			chunk = chunk[n:]
		}
		recs = recs[run:]
	}
	return out
}

func (e *IPFIXEncoder) Flush(now time.Time) []WireDatagram {
	var out []WireDatagram
	if !e.announced {
		out = append(out, e.templateMessage(now))
	}
	if !e.announced6 && e.pending6 {
		out = append(out, e.templateMessage6(now))
	}
	return out
}
