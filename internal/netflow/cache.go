package netflow

import (
	"container/list"
	"fmt"
	"time"

	"infilter/internal/flow"
	"infilter/internal/packet"
)

// CacheConfig tunes the router flow cache. Zero values take the defaults
// typical of a v5 exporter.
type CacheConfig struct {
	// IdleTimeout expires a flow that has seen no packet for this long.
	IdleTimeout time.Duration
	// ActiveTimeout expires a flow that has been active for this long.
	ActiveTimeout time.Duration
	// MaxEntries caps the cache; at the cap the least-recently-updated
	// flow is force-expired before admitting a new one ("cache close to
	// full" in the paper's expiry list).
	MaxEntries int
	// ExpireOnFINRST expires TCP flows when a FIN or RST is observed.
	ExpireOnFINRST bool
}

// Default flow-cache parameters: Cisco's classic 15s inactive / 30min
// active timers.
const (
	DefaultIdleTimeout   = 15 * time.Second
	DefaultActiveTimeout = 30 * time.Minute
	DefaultMaxEntries    = 65536
)

func (c CacheConfig) withDefaults() CacheConfig {
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.ActiveTimeout <= 0 {
		c.ActiveTimeout = DefaultActiveTimeout
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = DefaultMaxEntries
	}
	return c
}

type cacheEntry struct {
	rec  flow.Record
	elem *list.Element // position in the LRU list; value is flow.Key
}

// Cache emulates a router's NetFlow flow cache: packets accumulate into
// per-key entries and finished flows are emitted according to the v5
// expiration rules. The caller drives time explicitly, so replays are
// deterministic. Cache is not safe for concurrent use; wrap it if shared.
type Cache struct {
	cfg     CacheConfig
	entries map[flow.Key]*cacheEntry
	lru     *list.List // front = least recently updated
	expired []flow.Record
}

// NewCache returns an empty cache with cfg (zero fields defaulted).
func NewCache(cfg CacheConfig) *Cache {
	return &Cache{
		cfg:     cfg.withDefaults(),
		entries: make(map[flow.Key]*cacheEntry),
		lru:     list.New(),
	}
}

// Len returns the number of active (unexpired) flows.
func (c *Cache) Len() int { return len(c.entries) }

// Observe accounts one packet arriving on input interface ifIndex at the
// packet's own timestamp. Any flows expired as a side effect (FIN/RST,
// active timeout, cache pressure) are queued for Drain.
func (c *Cache) Observe(p packet.Packet, ifIndex uint16) {
	key := p.FlowKey(ifIndex)
	now := p.Time

	e, ok := c.entries[key]
	if ok && now.Sub(e.rec.Start) >= c.cfg.ActiveTimeout {
		// Active timeout: close the long-lived flow and start a fresh one
		// with this packet.
		c.expireEntry(key, e)
		ok = false
	}
	if !ok {
		if len(c.entries) >= c.cfg.MaxEntries {
			c.evictOldest()
		}
		e = &cacheEntry{
			rec: flow.Record{Key: key, Start: now},
		}
		e.elem = c.lru.PushBack(key)
		c.entries[key] = e
	} else {
		c.lru.MoveToBack(e.elem)
	}
	e.rec.Packets++
	e.rec.Bytes += uint32(p.Length)
	e.rec.End = now
	e.rec.TCPFlag |= p.TCPFlags
	// Track the flow's minimum observed TTL (IE 52 semantics); packets
	// without TTL information (p.TTL == 0) leave the fold untouched.
	if p.TTL != 0 && (e.rec.TTL == 0 || p.TTL < e.rec.TTL) {
		e.rec.TTL = p.TTL
	}

	if c.cfg.ExpireOnFINRST && p.Proto == flow.ProtoTCP &&
		p.TCPFlags&(packet.FlagFIN|packet.FlagRST) != 0 {
		c.expireEntry(key, e)
	}
}

// Advance expires every flow idle at the given instant (idle timeout) or
// active beyond the active timeout, queueing them for Drain. Call it
// periodically with the replay clock. Expiry order follows the LRU list so
// replays are deterministic.
func (c *Cache) Advance(now time.Time) {
	for _, key := range c.lruKeys() {
		e := c.entries[key]
		if now.Sub(e.rec.End) >= c.cfg.IdleTimeout ||
			now.Sub(e.rec.Start) >= c.cfg.ActiveTimeout {
			c.expireEntry(key, e)
		}
	}
}

// FlushAll expires every remaining flow (end of replay) in LRU order.
func (c *Cache) FlushAll() {
	for _, key := range c.lruKeys() {
		c.expireEntry(key, c.entries[key])
	}
}

// lruKeys snapshots the flow keys from least to most recently updated.
func (c *Cache) lruKeys() []flow.Key {
	keys := make([]flow.Key, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		key, ok := el.Value.(flow.Key)
		if !ok {
			panic(fmt.Sprintf("netflow: LRU holds %T, want flow.Key", el.Value))
		}
		keys = append(keys, key)
	}
	return keys
}

// Drain returns and clears the queue of expired flow records, in expiry
// order.
func (c *Cache) Drain() []flow.Record {
	out := c.expired
	c.expired = nil
	return out
}

func (c *Cache) expireEntry(key flow.Key, e *cacheEntry) {
	c.expired = append(c.expired, e.rec)
	c.lru.Remove(e.elem)
	delete(c.entries, key)
}

func (c *Cache) evictOldest() {
	front := c.lru.Front()
	if front == nil {
		return
	}
	key, ok := front.Value.(flow.Key)
	if !ok {
		panic(fmt.Sprintf("netflow: LRU holds %T, want flow.Key", front.Value))
	}
	c.expireEntry(key, c.entries[key])
}
