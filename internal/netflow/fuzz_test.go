package netflow

import (
	"bytes"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// FuzzDecodeDatagram throws arbitrary bytes at the v5 decoder. Inputs the
// decoder accepts must survive the full consumer path and re-encode to
// bytes that decode to the same datagram — the round-trip property the
// daemon's ingest relies on.
func FuzzDecodeDatagram(f *testing.F) {
	// Seed corpus: the codec test vectors — an empty datagram, a full
	// 30-record datagram, boundary values, and known-bad wire forms.
	empty := &v5Datagram{}
	raw, err := empty.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)

	full := &v5Datagram{Header: v5Header{
		SysUptimeMS: 3_600_000, UnixSecs: 1_112_313_600, UnixNsecs: 999,
		FlowSequence: 42, EngineType: 1, EngineID: 7, SamplingInterval: 10,
	}}
	for i := 0; i < MaxRecords; i++ {
		full.Records = append(full.Records, v5Record{
			SrcAddr: netaddr.IPv4(0x3d000000 + uint32(i)), DstAddr: 0xc0000201,
			NextHop: 0x0a000001, InputIf: uint16(i), OutputIf: 1,
			Packets: uint32(i) * 1000, Octets: ^uint32(0), FirstMS: 1, LastMS: 2,
			SrcPort: 1024, DstPort: 1434, TCPFlags: 0x12, Proto: flow.ProtoUDP,
			TOS: 0xe0, SrcAS: 65001, DstAS: 65002, SrcMask: 11, DstMask: 24,
		})
	}
	raw, err = full.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:v5HeaderSize])                           // header only, count lies
	f.Add(raw[:v5HeaderSize+v5RecordSize/2])            // truncated mid-record
	f.Add([]byte{0, 9, 0, 0})                           // wrong version, short
	f.Add(append(append([]byte{}, raw...), 0xff, 0xee)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := unmarshalV5(data)
		if err != nil {
			return // rejected input: only panics are failures here
		}
		if len(d.Records) != int(d.Header.Count) {
			t.Fatalf("decoded %d records, header count %d", len(d.Records), d.Header.Count)
		}
		// The collector converts every accepted record; must not panic.
		for _, r := range d.Records {
			_ = r.ToFlowRecord(d.Header, r.InputIf)
		}
		// Re-encode and re-decode: the canonical bytes must be stable.
		enc, err := d.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of accepted datagram: %v", err)
		}
		d2, err := unmarshalV5(enc)
		if err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		enc2, err := d2.Marshal()
		if err != nil {
			t.Fatalf("second marshal: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round-trip not stable:\n%x\n%x", enc, enc2)
		}
	})
}

// fuzzSeedStream builds seed datagrams for one template-based encoder:
// a template datagram, data datagrams before and after it (exercising the
// orphan path), and truncations of each.
func fuzzSeedStream(f *testing.F, enc WireEncoder) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	var recs []flow.Record
	for i := 0; i < 3; i++ {
		recs = append(recs, flow.Record{
			Key: flow.Key{
				Src: netaddr.IPv4(0x3d000000 + uint32(i)).Addr(), Dst: netaddr.IPv4(0xc0000201).Addr(),
				Proto: flow.ProtoTCP, SrcPort: uint16(1024 + i), DstPort: 80,
				InputIf: 2,
			},
			Packets: uint32(1 + i), Bytes: uint32(40 * (1 + i)),
			Start: boot.Add(time.Second), End: boot.Add(2 * time.Second),
			SrcAS: 65001, DstAS: 65002, SrcMask: 11, DstMask: 24,
		})
	}
	for _, wd := range enc.Encode(recs, boot.Add(time.Minute)) {
		f.Add(wd.Raw)
		if len(wd.Raw) > 6 {
			f.Add(wd.Raw[:len(wd.Raw)-5])
		}
	}
	for _, wd := range enc.Flush(boot.Add(time.Minute)) {
		f.Add(wd.Raw)
	}
}

// fuzzTemplateDecode is the shared property check for the template-based
// decoders: corrupt bytes must error (never panic), records decoded from
// this datagram's own bytes must be bounded by its size (every record
// consumes at least one byte — zero-length templates are rejected), and
// the orphan buffer must respect its bound no matter what arrives.
// Records replayed from previously buffered orphan data sets when their
// template arrives (msg.Resolved) are excluded: they were decoded from
// earlier datagrams' bytes, and the orphan buffer bound below caps how
// much can be pending.
func fuzzTemplateDecode(t *testing.T, cache *TemplateCache, buf *DecodeBuffer, data []byte) {
	msg, err := Decode(data, buf)
	if err != nil {
		return
	}
	if own := len(msg.Records) - msg.Resolved; own > len(data) {
		t.Fatalf("%d records decoded from %d bytes", own, len(data))
	}
	if n := cache.OrphanCount(); n > DefaultMaxOrphans {
		t.Fatalf("orphan buffer leaked: %d > bound %d", n, DefaultMaxOrphans)
	}
	if n := cache.Len(); n > DefaultMaxTemplates {
		t.Fatalf("template cache leaked: %d > bound %d", n, DefaultMaxTemplates)
	}
}

// FuzzDecodeV9 throws arbitrary bytes at the v9 decoder, with template
// state accumulating across inputs as it would across a fuzzed exporter's
// stream.
func FuzzDecodeV9(f *testing.F) {
	withTemplate := NewV9Encoder(time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC), 7)
	fuzzSeedStream(f, withTemplate)
	delayed := NewV9Encoder(time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC), 7)
	delayed.SetTemplateDelay(10)
	fuzzSeedStream(f, delayed)
	f.Add([]byte{0, 9, 0, 0})

	cache := NewTemplateCache(TemplateCacheConfig{})
	buf := NewDecodeBuffer(cache)
	buf.SetExporter("fuzz")
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzTemplateDecode(t, cache, buf, data)
	})
}

// FuzzDecodeIPFIX is the IPFIX twin of FuzzDecodeV9, additionally
// covering enterprise fields, withdrawals and variable-length records via
// mutation of the seeded stream.
func FuzzDecodeIPFIX(f *testing.F) {
	withTemplate := NewIPFIXEncoder(7)
	fuzzSeedStream(f, withTemplate)
	delayed := NewIPFIXEncoder(7)
	delayed.SetTemplateDelay(10)
	fuzzSeedStream(f, delayed)
	f.Add([]byte{0, 10, 0, 16})

	cache := NewTemplateCache(TemplateCacheConfig{})
	buf := NewDecodeBuffer(cache)
	buf.SetExporter("fuzz")
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzTemplateDecode(t, cache, buf, data)
	})
}
