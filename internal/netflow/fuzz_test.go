package netflow

import (
	"bytes"
	"testing"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// FuzzDecodeDatagram throws arbitrary bytes at the v5 decoder. Inputs the
// decoder accepts must survive the full consumer path (ToFlowRecord, as
// the collector runs it) and re-encode to bytes that decode to the same
// datagram — the round-trip property the daemon's ingest relies on.
func FuzzDecodeDatagram(f *testing.F) {
	// Seed corpus: the codec test vectors — an empty datagram, a full
	// 30-record datagram, boundary values, and known-bad wire forms.
	empty := &Datagram{}
	raw, err := empty.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)

	full := &Datagram{Header: Header{
		SysUptimeMS: 3_600_000, UnixSecs: 1_112_313_600, UnixNsecs: 999,
		FlowSequence: 42, EngineType: 1, EngineID: 7, SamplingInterval: 10,
	}}
	for i := 0; i < MaxRecords; i++ {
		full.Records = append(full.Records, Record{
			SrcAddr: netaddr.IPv4(0x3d000000 + uint32(i)), DstAddr: 0xc0000201,
			NextHop: 0x0a000001, InputIf: uint16(i), OutputIf: 1,
			Packets: uint32(i) * 1000, Octets: ^uint32(0), FirstMS: 1, LastMS: 2,
			SrcPort: 1024, DstPort: 1434, TCPFlags: 0x12, Proto: flow.ProtoUDP,
			TOS: 0xe0, SrcAS: 65001, DstAS: 65002, SrcMask: 11, DstMask: 24,
		})
	}
	raw, err = full.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:HeaderSize])                             // header only, count lies
	f.Add(raw[:HeaderSize+RecordSize/2])                // truncated mid-record
	f.Add([]byte{0, 9, 0, 0})                           // wrong version, short
	f.Add(append(append([]byte{}, raw...), 0xff, 0xee)) // trailing garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Unmarshal(data)
		if err != nil {
			return // rejected input: only panics are failures here
		}
		if len(d.Records) != int(d.Header.Count) {
			t.Fatalf("decoded %d records, header count %d", len(d.Records), d.Header.Count)
		}
		// The collector converts every accepted record; must not panic.
		for _, r := range d.Records {
			_ = r.ToFlowRecord(d.Header, r.InputIf)
		}
		// Re-encode and re-decode: the canonical bytes must be stable.
		enc, err := d.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of accepted datagram: %v", err)
		}
		d2, err := Unmarshal(enc)
		if err != nil {
			t.Fatalf("re-unmarshal: %v", err)
		}
		enc2, err := d2.Marshal()
		if err != nil {
			t.Fatalf("second marshal: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round-trip not stable:\n%x\n%x", enc, enc2)
		}
	})
}
