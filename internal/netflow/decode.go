package netflow

import (
	"encoding/binary"
	"fmt"
	"time"

	"infilter/internal/flow"
)

// Message is one decoded export datagram, version-agnostic: consumers see
// exporter metadata and analysis-model flow records, never a wire type.
type Message struct {
	// Version is the export format that carried the records (VersionV5,
	// VersionV9 or VersionIPFIX).
	Version uint16
	// Exporter is the sending device's identity as set on the
	// DecodeBuffer (the collector uses the UDP source address).
	Exporter string
	// Domain is the exporter-scoped template namespace: the v9 source
	// id, the IPFIX observation domain id, or the v5 engine id.
	Domain uint32
	// ExportTime is the exporter's clock when the datagram was built.
	ExportTime time.Time
	// Sequence is the raw export sequence value from the header (v9
	// counts datagrams, v5 and IPFIX count records).
	Sequence uint32
	// SeqGap is the number of export units (datagrams or records) the
	// sequence tracker saw skipped immediately before this datagram;
	// zero when the stream is contiguous.
	SeqGap uint64
	// TemplateSets counts template definitions processed from this
	// datagram; Orphaned counts data sets buffered to wait for their
	// template; Resolved counts records recovered from earlier datagrams'
	// orphaned sets that this datagram's templates unblocked.
	TemplateSets int
	Orphaned     int
	Resolved     int
	// Records are the decoded flows, including any previously orphaned
	// data sets this datagram's templates unblocked. The slice aliases
	// the DecodeBuffer and is valid only until the next Decode call on
	// the same buffer; copy records that must outlive it.
	Records []flow.Record
}

// DecodeBuffer is the reusable per-goroutine decode state: a record
// slice recycled across calls (steady-state decode allocates nothing)
// and a reference to the template cache shared between listeners. A
// DecodeBuffer must not be used concurrently; create one per receive
// loop and share the TemplateCache instead.
type DecodeBuffer struct {
	exporter string
	cache    *TemplateCache
	recs     []flow.Record
}

// NewDecodeBuffer returns a buffer resolving templates through cache.
// A nil cache gets a private cache with default bounds — fine for
// single-consumer tools, wrong for multi-listener daemons (exporter
// state would not be shared).
func NewDecodeBuffer(cache *TemplateCache) *DecodeBuffer {
	if cache == nil {
		cache = NewTemplateCache(TemplateCacheConfig{})
	}
	return &DecodeBuffer{cache: cache}
}

// SetExporter sets the exporter identity stamped on decoded messages and
// used to scope template and sequence state. Call it whenever the
// datagram source changes (the collector sets it per datagram).
func (b *DecodeBuffer) SetExporter(id string) { b.exporter = id }

// Decode sniffs the version word of one export datagram and routes it to
// the v5, v9 or IPFIX decoder, returning the decoded message. Corrupt
// input returns an error and never panics; data sets whose template is
// not yet known are buffered (bounded) rather than failing the datagram.
func Decode(raw []byte, buf *DecodeBuffer) (Message, error) {
	if len(raw) < 2 {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrShortDatagram, len(raw))
	}
	switch v := binary.BigEndian.Uint16(raw[0:2]); v {
	case VersionV5:
		return decodeV5(raw, buf)
	case VersionV9:
		return decodeV9(raw, buf)
	case VersionIPFIX:
		return decodeIPFIX(raw, buf)
	default:
		return Message{}, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
}

// decodeV5 fills buf with the records of a v5 datagram.
func decodeV5(raw []byte, buf *DecodeBuffer) (Message, error) {
	if len(raw) < v5HeaderSize {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrShortDatagram, len(raw))
	}
	count := int(binary.BigEndian.Uint16(raw[2:4]))
	if count > MaxRecords || len(raw) < v5HeaderSize+count*v5RecordSize {
		return Message{}, fmt.Errorf("%w: count=%d len=%d", ErrBadCount, count, len(raw))
	}
	hdr := decodeV5Header(raw)
	buf.cache.metrics.DatagramsV5.Inc()

	if cap(buf.recs) < count {
		buf.recs = make([]flow.Record, count)
	}
	buf.recs = buf.recs[:count]
	boot := hdr.bootTime() // once per datagram, not per record
	for i := 0; i < count; i++ {
		decodeV5FlowRecord(&buf.recs[i], raw[v5HeaderSize+i*v5RecordSize:v5HeaderSize+(i+1)*v5RecordSize], boot)
	}

	key := domainKey{exporter: buf.exporter, domain: uint32(hdr.EngineID)}
	gap := buf.cache.seqCheck(key, hdr.FlowSequence, uint32(count))
	return Message{
		Version:    VersionV5,
		Exporter:   buf.exporter,
		Domain:     uint32(hdr.EngineID),
		ExportTime: time.Unix(int64(hdr.UnixSecs), int64(hdr.UnixNsecs)).UTC(),
		Sequence:   hdr.FlowSequence,
		SeqGap:     gap,
		Records:    buf.recs,
	}, nil
}
