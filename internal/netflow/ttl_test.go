package netflow

import (
	"encoding/binary"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/packet"
)

func ttlTestRecord(v6 bool, ttl uint8) flow.Record {
	src, dst := netaddr.MustParseAddr("61.1.1.9"), netaddr.MustParseAddr("192.0.2.7")
	if v6 {
		src, dst = netaddr.MustParseAddr("2001:db8::1"), netaddr.MustParseAddr("2001:db8:2::7")
	}
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	return flow.Record{
		Key: flow.Key{Src: src, Dst: dst, Proto: flow.ProtoUDP,
			SrcPort: 1024, DstPort: 1434, InputIf: 2},
		Packets: 1, Bytes: 404, TTL: ttl,
		Start: boot.Add(time.Second), End: boot.Add(2 * time.Second),
	}
}

// TestTTLRoundTripAllEncoders proves every encoder template (v9/IPFIX ×
// v4/v6) carries the flow TTL on the wire and the decoder restores it,
// so dagflow can replay TTL-bearing traces through any wire version the
// detectors accept.
func TestTTLRoundTripAllEncoders(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		name string
		enc  WireEncoder
	}{
		{"v9", NewV9Encoder(boot, 7)},
		{"ipfix", NewIPFIXEncoder(7)},
	} {
		for _, v6 := range []bool{false, true} {
			recs := []flow.Record{ttlTestRecord(v6, 57), ttlTestRecord(v6, 0)}
			recs[1].Key.SrcPort = 2048 // distinct flow
			cache := NewTemplateCache(TemplateCacheConfig{})
			buf := NewDecodeBuffer(cache)
			buf.SetExporter("test")
			var got []flow.Record
			for _, wd := range tc.enc.Encode(recs, boot.Add(time.Minute)) {
				msg, err := Decode(wd.Raw, buf)
				if err != nil {
					t.Fatalf("%s v6=%v: %v", tc.name, v6, err)
				}
				got = append(got, msg.Records...)
			}
			if len(got) != 2 {
				t.Fatalf("%s v6=%v: decoded %d records, want 2", tc.name, v6, len(got))
			}
			if got[0].TTL != 57 {
				t.Errorf("%s v6=%v: TTL %d, want 57", tc.name, v6, got[0].TTL)
			}
			if got[1].TTL != 0 {
				t.Errorf("%s v6=%v: zero-TTL flow decoded TTL %d", tc.name, v6, got[1].TTL)
			}
		}
	}
}

// buildV9TTL hand-assembles a v9 datagram with a custom template and one
// matching data record, for exercising foreign TTL IE layouts the
// package's own encoders never emit.
func buildV9TTL(tid uint16, fields []TemplateField, payload []byte) []byte {
	var raw []byte
	hdr := make([]byte, v9HeaderSize)
	binary.BigEndian.PutUint16(hdr[0:2], 9)
	binary.BigEndian.PutUint16(hdr[2:4], 2) // record count (advisory)
	binary.BigEndian.PutUint32(hdr[8:12], 1_112_313_600)
	raw = append(raw, hdr...)

	tmpl := make([]byte, 8+4*len(fields))
	binary.BigEndian.PutUint16(tmpl[0:2], v9SetTemplate)
	binary.BigEndian.PutUint16(tmpl[2:4], uint16(len(tmpl)))
	binary.BigEndian.PutUint16(tmpl[4:6], tid)
	binary.BigEndian.PutUint16(tmpl[6:8], uint16(len(fields)))
	for i, f := range fields {
		binary.BigEndian.PutUint16(tmpl[8+4*i:], f.ID)
		binary.BigEndian.PutUint16(tmpl[10+4*i:], f.Length)
	}
	raw = append(raw, tmpl...)

	data := make([]byte, 4, 4+len(payload))
	binary.BigEndian.PutUint16(data[0:2], tid)
	binary.BigEndian.PutUint16(data[2:4], uint16(4+len(payload)))
	data = append(data, payload...)
	return append(raw, data...)
}

// TestDecodeTTLFieldPrecedence covers foreign template shapes: an
// explicit minimumTTL wins over maximumTTL regardless of field order,
// and maximumTTL alone still populates the record as a fallback.
func TestDecodeTTLFieldPrecedence(t *testing.T) {
	base := []TemplateField{
		{ID: ieSourceIPv4Address, Length: 4},
		{ID: ieDestIPv4Address, Length: 4},
		{ID: iePacketDeltaCount, Length: 4},
	}
	basePayload := []byte{61, 1, 1, 9, 192, 0, 2, 7, 0, 0, 0, 1}
	for _, tc := range []struct {
		name    string
		fields  []TemplateField
		payload []byte
		want    uint8
	}{
		{"max-then-min", append(base[:3:3], TemplateField{ID: ieMaximumTTL, Length: 1}, TemplateField{ID: ieMinimumTTL, Length: 1}),
			append(basePayload[:12:12], 64, 57), 57},
		{"min-then-max", append(base[:3:3], TemplateField{ID: ieMinimumTTL, Length: 1}, TemplateField{ID: ieMaximumTTL, Length: 1}),
			append(basePayload[:12:12], 57, 64), 57},
		{"max-only", append(base[:3:3], TemplateField{ID: ieMaximumTTL, Length: 1}),
			append(basePayload[:12:12], 64), 64},
		{"ipttl-2byte", append(base[:3:3], TemplateField{ID: ieIPTTL, Length: 2}),
			append(basePayload[:12:12], 0, 57), 57},
		{"no-ttl", base, basePayload, 0},
	} {
		cache := NewTemplateCache(TemplateCacheConfig{})
		buf := NewDecodeBuffer(cache)
		buf.SetExporter("test")
		msg, err := Decode(buildV9TTL(300, tc.fields, tc.payload), buf)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(msg.Records) != 1 {
			t.Fatalf("%s: %d records", tc.name, len(msg.Records))
		}
		if got := msg.Records[0].TTL; got != tc.want {
			t.Errorf("%s: TTL %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestCacheFoldsMinimumTTL checks the router emulation's flow cache
// implements minimumTTL semantics: the smallest nonzero packet TTL wins
// and TTL-less packets never clobber the fold.
func TestCacheFoldsMinimumTTL(t *testing.T) {
	c := NewCache(CacheConfig{})
	base := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	p := packet.Packet{
		Time: base, Src: netaddr.MustParseAddr("61.1.1.9"),
		Dst: netaddr.MustParseAddr("192.0.2.7"), Proto: flow.ProtoUDP,
		SrcPort: 1024, DstPort: 53, Length: 64, TTL: 60,
	}
	c.Observe(p, 1)
	p.Time = base.Add(time.Second)
	p.TTL = 55
	c.Observe(p, 1)
	p.Time = base.Add(2 * time.Second)
	p.TTL = 0 // no TTL info
	c.Observe(p, 1)
	p.Time = base.Add(3 * time.Second)
	p.TTL = 58
	c.Observe(p, 1)

	c.Advance(base.Add(time.Hour))
	flows := c.Drain()
	if len(flows) != 1 {
		t.Fatalf("drained %d flows", len(flows))
	}
	if flows[0].TTL != 55 {
		t.Errorf("folded TTL %d, want minimum 55", flows[0].TTL)
	}
}
