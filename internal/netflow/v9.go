package netflow

import (
	"encoding/binary"
	"fmt"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// NetFlow v9 wire constants (RFC 3954).
const (
	v9HeaderSize = 20

	v9SetTemplate        = 0
	v9SetOptionsTemplate = 1

	// minDataSetID is the lowest flowset/set id that carries data
	// records; lower ids are template or reserved sets in both v9 and
	// IPFIX.
	minDataSetID = 256

	// maxTemplateFields bounds a single template's field count against
	// hostile input; real exporters use a few dozen fields.
	maxTemplateFields = 256
)

// IANA information element numbers shared by v9 and IPFIX for the fields
// the analysis model consumes.
const (
	ieOctetDeltaCount       = 1
	iePacketDeltaCount      = 2
	ieProtocolIdentifier    = 4
	ieIPClassOfService      = 5
	ieTCPControlBits        = 6
	ieSourceTransportPort   = 7
	ieSourceIPv4Address     = 8
	ieSourceIPv4PrefixLen   = 9
	ieIngressInterface      = 10
	ieDestTransportPort     = 11
	ieDestIPv4Address       = 12
	ieDestIPv4PrefixLen     = 13
	ieBGPSourceAS           = 16
	ieBGPDestinationAS      = 17
	ieFlowEndSysUpTime      = 21
	ieFlowStartSysUpTime    = 22
	ieSourceIPv6Address     = 27
	ieDestIPv6Address       = 28
	ieSourceIPv6PrefixLen   = 29
	ieDestIPv6PrefixLen     = 30
	ieFlowLabelIPv6         = 31
	ieMinimumTTL            = 52
	ieMaximumTTL            = 53
	ieFlowStartSeconds      = 150
	ieFlowEndSeconds        = 151
	ieFlowStartMilliseconds = 152
	ieFlowEndMilliseconds   = 153
	ieIPTTL                 = 192
)

// recordContext carries the per-datagram clock basis a data record needs:
// boot anchors sysUptime-relative stamps, export is the fallback for
// records without timestamp fields.
type recordContext struct {
	boot   time.Time
	export time.Time
}

// decodeV9 decodes one NetFlow v9 export datagram: template flowsets
// update the shared cache (resolving any waiting orphans), data flowsets
// decode through their template or are buffered until it arrives.
func decodeV9(raw []byte, buf *DecodeBuffer) (Message, error) {
	if len(raw) < v9HeaderSize {
		return Message{}, fmt.Errorf("%w: %d bytes", ErrShortDatagram, len(raw))
	}
	var (
		sysUptime = binary.BigEndian.Uint32(raw[4:8])
		unixSecs  = binary.BigEndian.Uint32(raw[8:12])
		seq       = binary.BigEndian.Uint32(raw[12:16])
		domain    = binary.BigEndian.Uint32(raw[16:20])
	)
	export := time.Unix(int64(unixSecs), 0).UTC()
	ctx := recordContext{boot: export.Add(-time.Duration(sysUptime) * time.Millisecond), export: export}
	key := domainKey{exporter: buf.exporter, domain: domain}

	buf.recs = buf.recs[:0]
	msg := Message{
		Version:    VersionV9,
		Exporter:   buf.exporter,
		Domain:     domain,
		ExportTime: export,
		Sequence:   seq,
	}

	off := v9HeaderSize
	for off+4 <= len(raw) {
		setID := binary.BigEndian.Uint16(raw[off : off+2])
		setLen := int(binary.BigEndian.Uint16(raw[off+2 : off+4]))
		if setLen < 4 || off+setLen > len(raw) {
			return Message{}, fmt.Errorf("%w: set id=%d len=%d at offset %d", ErrBadSet, setID, setLen, off)
		}
		payload := raw[off+4 : off+setLen]
		switch {
		case setID == v9SetTemplate:
			n, err := decodeTemplateSet(payload, false, key, ctx, buf, &msg)
			if err != nil {
				return Message{}, err
			}
			msg.TemplateSets += n
		case setID == v9SetOptionsTemplate:
			// Options data describes the exporter, not traffic; skip.
		case setID >= minDataSetID:
			decodeDataSet(payload, setID, VersionV9, sysUptime, key, ctx, buf, &msg)
		default:
			// Reserved set ids: skip for forward compatibility.
		}
		off += setLen
	}

	buf.cache.metrics.DatagramsV9.Inc()
	// v9 sequence numbers count export datagrams, so a gap is exact even
	// when some sets were orphaned.
	msg.SeqGap = buf.cache.seqCheck(key, seq, 1)
	msg.Records = buf.recs
	return msg, nil
}

// decodeTemplateSet parses the templates of one template set (v9 or
// IPFIX layout per the ipfix flag), learns them into the cache and
// decodes any orphaned data sets they unblock into buf. It returns the
// number of templates processed.
func decodeTemplateSet(payload []byte, ipfix bool, key domainKey, ctx recordContext, buf *DecodeBuffer, msg *Message) (int, error) {
	templates := 0
	off := 0
	// A template set may pad with fewer than 4 trailing bytes.
	for off+4 <= len(payload) {
		tid := binary.BigEndian.Uint16(payload[off : off+2])
		fieldCount := int(binary.BigEndian.Uint16(payload[off+2 : off+4]))
		off += 4
		if ipfix && fieldCount == 0 {
			// IPFIX template withdrawal.
			buf.cache.withdraw(key, tid)
			templates++
			continue
		}
		if tid < minDataSetID || fieldCount == 0 || fieldCount > maxTemplateFields {
			return templates, fmt.Errorf("%w: template id=%d fields=%d", ErrBadSet, tid, fieldCount)
		}
		t := &Template{ID: tid, Fields: make([]TemplateField, 0, fieldCount)}
		for i := 0; i < fieldCount; i++ {
			if off+4 > len(payload) {
				return templates, fmt.Errorf("%w: truncated template %d", ErrBadSet, tid)
			}
			f := TemplateField{
				ID:     binary.BigEndian.Uint16(payload[off : off+2]),
				Length: binary.BigEndian.Uint16(payload[off+2 : off+4]),
			}
			off += 4
			if ipfix && f.ID&0x8000 != 0 {
				if off+4 > len(payload) {
					return templates, fmt.Errorf("%w: truncated enterprise field in template %d", ErrBadSet, tid)
				}
				f.ID &= 0x7FFF
				f.Enterprise = binary.BigEndian.Uint32(payload[off : off+4])
				off += 4
			}
			t.Fields = append(t.Fields, f)
		}
		t.compile()
		if t.minLen == 0 {
			// All-zero-length fields would decode forever; reject.
			return templates, fmt.Errorf("%w: template %d has zero record length", ErrBadSet, tid)
		}
		before := len(buf.recs)
		for _, o := range buf.cache.learn(key, t) {
			octx := recordContext{export: o.exportTime, boot: o.exportTime}
			if o.version == VersionV9 {
				octx.boot = o.exportTime.Add(-time.Duration(o.sysUptimeMS) * time.Millisecond)
			}
			decodeRecords(o.data, t, octx, buf)
		}
		msg.Resolved += len(buf.recs) - before
		templates++
	}
	return templates, nil
}

// decodeDataSet decodes one data set through its cached template, or
// buffers a copy of it as an orphan when the template is not yet known.
func decodeDataSet(payload []byte, setID uint16, version uint16, sysUptime uint32, key domainKey, ctx recordContext, buf *DecodeBuffer, msg *Message) {
	t := buf.cache.lookup(key, setID)
	if t == nil {
		o := orphan{
			data:        append([]byte(nil), payload...),
			exportTime:  ctx.export,
			sysUptimeMS: sysUptime,
			version:     version,
		}
		if buf.cache.buffer(key, setID, o) {
			msg.Orphaned++
		}
		return
	}
	decodeRecords(payload, t, ctx, buf)
}

// decodeRecords walks the data records of one set, appending decoded
// flows to buf.recs. Trailing bytes shorter than a record are padding;
// malformed variable-length records stop the walk without failing the
// datagram (the set boundary is already validated).
func decodeRecords(payload []byte, t *Template, ctx recordContext, buf *DecodeBuffer) {
	off := 0
	for len(payload)-off >= t.minLen {
		rec := flow.Record{Start: ctx.export, End: ctx.export}
		next, ok := decodeOneRecord(payload, off, t, ctx, &rec)
		if !ok {
			return
		}
		buf.recs = append(buf.recs, rec)
		off = next
	}
}

// decodeOneRecord decodes a single record starting at off, returning the
// offset past it. ok is false when the record is truncated (possible
// only with variable-length fields; fixed layouts are pre-checked).
func decodeOneRecord(payload []byte, off int, t *Template, ctx recordContext, rec *flow.Record) (int, bool) {
	for _, f := range t.Fields {
		flen := int(f.Length)
		if f.Length == lenVariable {
			// IPFIX variable-length encoding: 1-byte length, with 255
			// escaping to a 2-byte length.
			if off >= len(payload) {
				return 0, false
			}
			flen = int(payload[off])
			off++
			if flen == 255 {
				if off+2 > len(payload) {
					return 0, false
				}
				flen = int(binary.BigEndian.Uint16(payload[off : off+2]))
				off += 2
			}
		}
		if off+flen > len(payload) {
			return 0, false
		}
		if f.Enterprise == 0 && f.Length != lenVariable {
			if flen <= 8 {
				assignField(f.ID, readUint(payload[off:off+flen]), ctx, rec)
			} else if flen == 16 {
				assignField16(f.ID, payload[off:off+16], rec)
			}
		}
		off += flen
	}
	return off, true
}

// assignField maps one information element value onto the flow record.
// Unknown elements are ignored so richer production templates decode
// down to the fields the pipeline consumes.
func assignField(id uint16, v uint64, ctx recordContext, rec *flow.Record) {
	switch id {
	case ieOctetDeltaCount:
		rec.Bytes = uint32(v)
	case iePacketDeltaCount:
		rec.Packets = uint32(v)
	case ieProtocolIdentifier:
		rec.Key.Proto = uint8(v)
	case ieIPClassOfService:
		rec.Key.TOS = uint8(v)
	case ieTCPControlBits:
		rec.TCPFlag = uint8(v)
	case ieSourceTransportPort:
		rec.Key.SrcPort = uint16(v)
	case ieSourceIPv4Address:
		rec.Key.Src = netaddr.IPv4(uint32(v)).Addr()
	case ieSourceIPv4PrefixLen, ieSourceIPv6PrefixLen:
		rec.SrcMask = uint8(v)
	case ieIngressInterface:
		rec.Key.InputIf = uint16(v)
	case ieDestTransportPort:
		rec.Key.DstPort = uint16(v)
	case ieDestIPv4Address:
		rec.Key.Dst = netaddr.IPv4(uint32(v)).Addr()
	case ieDestIPv4PrefixLen, ieDestIPv6PrefixLen:
		rec.DstMask = uint8(v)
	case ieFlowLabelIPv6:
		rec.FlowLabel = uint32(v)
	case ieMinimumTTL, ieIPTTL:
		// The per-flow minimum is the TTL the profile detector learns;
		// ipTTL (a plain per-packet TTL some exporters emit) carries the
		// same meaning for single-packet probes.
		rec.TTL = uint8(v)
	case ieMaximumTTL:
		// Only a fallback: a template carrying both min and max keeps the
		// minimum (fields are assigned in template order; 52 < 53 in every
		// template this package emits, and an explicit min wins anyway).
		if rec.TTL == 0 {
			rec.TTL = uint8(v)
		}
	case ieBGPSourceAS:
		rec.SrcAS = uint16(v)
	case ieBGPDestinationAS:
		rec.DstAS = uint16(v)
	case ieFlowStartSysUpTime:
		rec.Start = ctx.boot.Add(time.Duration(v) * time.Millisecond)
	case ieFlowEndSysUpTime:
		rec.End = ctx.boot.Add(time.Duration(v) * time.Millisecond)
	case ieFlowStartSeconds:
		rec.Start = time.Unix(int64(v), 0).UTC()
	case ieFlowEndSeconds:
		rec.End = time.Unix(int64(v), 0).UTC()
	case ieFlowStartMilliseconds:
		rec.Start = time.UnixMilli(int64(v)).UTC()
	case ieFlowEndMilliseconds:
		rec.End = time.UnixMilli(int64(v)).UTC()
	}
}

// assignField16 maps a 16-byte information element (the IPv6 address
// IEs) onto the flow record. Other 16-byte elements are ignored, like
// unknown scalar elements.
func assignField16(id uint16, b []byte, rec *flow.Record) {
	switch id {
	case ieSourceIPv6Address:
		rec.Key.Src = addr16(b)
	case ieDestIPv6Address:
		rec.Key.Dst = addr16(b)
	}
}

// addr16 builds a v6 Addr from 16 wire bytes without an intermediate
// copy allocation.
func addr16(b []byte) netaddr.Addr {
	var v [16]byte
	copy(v[:], b)
	return netaddr.AddrFrom16(v)
}

// readUint reads a big-endian unsigned integer of 1..8 bytes.
func readUint(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}
