package netflow

import (
	"errors"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// goldenV9 is a captured-style NetFlow v9 datagram: one template flowset
// (template 256: srcIP, dstIP, srcPort, dstPort, proto, packets, bytes)
// followed by one data flowset carrying two records and two padding bytes.
var goldenV9 = []byte{
	0x00, 0x09, // version 9
	0x00, 0x03, // count: 1 template + 2 data records
	0x00, 0x01, 0x00, 0x00, // sysUptime 65536 ms
	0x40, 0x00, 0x00, 0x00, // unixSecs 0x40000000
	0x00, 0x00, 0x00, 0x07, // sequence 7
	0x00, 0x00, 0x00, 0x02, // source id 2
	// template flowset
	0x00, 0x00, 0x00, 0x24, // setID 0, length 36
	0x01, 0x00, 0x00, 0x07, // template 256, 7 fields
	0x00, 0x08, 0x00, 0x04, // sourceIPv4Address(4)
	0x00, 0x0c, 0x00, 0x04, // destinationIPv4Address(4)
	0x00, 0x07, 0x00, 0x02, // sourceTransportPort(2)
	0x00, 0x0b, 0x00, 0x02, // destinationTransportPort(2)
	0x00, 0x04, 0x00, 0x01, // protocolIdentifier(1)
	0x00, 0x02, 0x00, 0x04, // packetDeltaCount(4)
	0x00, 0x01, 0x00, 0x04, // octetDeltaCount(4)
	// data flowset, template 256
	0x01, 0x00, 0x00, 0x30, // setID 256, length 48 (4 + 2*21 + 2 pad)
	0x0a, 0x00, 0x00, 0x01, // 10.0.0.1
	0xc0, 0x00, 0x02, 0x09, // 192.0.2.9
	0x04, 0x00, // srcPort 1024
	0x00, 0x50, // dstPort 80
	0x06,                   // TCP
	0x00, 0x00, 0x00, 0x0a, // 10 packets
	0x00, 0x00, 0x04, 0x00, // 1024 bytes
	0x0a, 0x00, 0x00, 0x02, // 10.0.0.2
	0xc0, 0x00, 0x02, 0x09, // 192.0.2.9
	0x04, 0x01, // srcPort 1025
	0x00, 0x35, // dstPort 53
	0x11,                   // UDP
	0x00, 0x00, 0x00, 0x01, // 1 packet
	0x00, 0x00, 0x00, 0x64, // 100 bytes
	0x00, 0x00, // padding
}

// goldenIPFIX is a captured-style IPFIX message: one template set
// (template 257 with an enterprise-specific field and a variable-length
// field) followed by one data set with a single record and one pad byte.
var goldenIPFIX = []byte{
	0x00, 0x0a, // version 10
	0x00, 0x50, // message length 80
	0x40, 0x00, 0x00, 0x00, // export time
	0x00, 0x00, 0x00, 0x05, // sequence 5
	0x00, 0x00, 0x00, 0x03, // observation domain 3
	// template set
	0x00, 0x02, 0x00, 0x24, // setID 2, length 36
	0x01, 0x01, 0x00, 0x06, // template 257, 6 fields
	0x00, 0x08, 0x00, 0x04, // sourceIPv4Address(4)
	0x00, 0x0c, 0x00, 0x04, // destinationIPv4Address(4)
	0x00, 0x04, 0x00, 0x01, // protocolIdentifier(1)
	0x00, 0x01, 0x00, 0x08, // octetDeltaCount(8)
	0x80, 0x05, 0x00, 0x02, // enterprise field id 5, length 2
	0x00, 0x00, 0x72, 0x79, // enterprise number 29305
	0x00, 0x64, 0xff, 0xff, // element 100, variable length
	// data set, template 257
	0x01, 0x01, 0x00, 0x1c, // setID 257, length 28 (4 + 23 + 1 pad)
	0x0a, 0x00, 0x00, 0x01, // 10.0.0.1
	0xc0, 0x00, 0x02, 0x09, // 192.0.2.9
	0x06,                                           // TCP
	0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00, // 1024 bytes
	0xbe, 0xef, // enterprise payload (ignored)
	0x03, 'a', 'b', 'c', // variable-length payload (ignored)
	0x00, // padding
}

func TestDecodeGoldenFixtures(t *testing.T) {
	exportTime := time.Unix(0x40000000, 0).UTC()
	tests := []struct {
		name     string
		raw      []byte
		version  uint16
		domain   uint32
		sequence uint32
		want     []flow.Record
	}{
		{
			name:     "v9",
			raw:      goldenV9,
			version:  VersionV9,
			domain:   2,
			sequence: 7,
			want: []flow.Record{
				{
					Key: flow.Key{
						Src: netaddr.MustParseAddr("10.0.0.1"), Dst: netaddr.MustParseAddr("192.0.2.9"),
						Proto: flow.ProtoTCP, SrcPort: 1024, DstPort: 80,
					},
					Packets: 10, Bytes: 1024, Start: exportTime, End: exportTime,
				},
				{
					Key: flow.Key{
						Src: netaddr.MustParseAddr("10.0.0.2"), Dst: netaddr.MustParseAddr("192.0.2.9"),
						Proto: flow.ProtoUDP, SrcPort: 1025, DstPort: 53,
					},
					Packets: 1, Bytes: 100, Start: exportTime, End: exportTime,
				},
			},
		},
		{
			name:     "ipfix",
			raw:      goldenIPFIX,
			version:  VersionIPFIX,
			domain:   3,
			sequence: 5,
			want: []flow.Record{
				{
					Key: flow.Key{
						Src: netaddr.MustParseAddr("10.0.0.1"), Dst: netaddr.MustParseAddr("192.0.2.9"),
						Proto: flow.ProtoTCP,
					},
					Bytes: 1024, Start: exportTime, End: exportTime,
				},
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			buf := NewDecodeBuffer(NewTemplateCache(TemplateCacheConfig{}))
			buf.SetExporter("192.0.2.1:2055")
			msg, err := Decode(tc.raw, buf)
			if err != nil {
				t.Fatal(err)
			}
			if msg.Version != tc.version || msg.Domain != tc.domain || msg.Sequence != tc.sequence {
				t.Errorf("header: version=%d domain=%d seq=%d", msg.Version, msg.Domain, msg.Sequence)
			}
			if msg.Exporter != "192.0.2.1:2055" {
				t.Errorf("exporter %q", msg.Exporter)
			}
			if !msg.ExportTime.Equal(exportTime) {
				t.Errorf("export time %v", msg.ExportTime)
			}
			if msg.TemplateSets != 1 || msg.Orphaned != 0 || msg.SeqGap != 0 {
				t.Errorf("templates=%d orphaned=%d gap=%d", msg.TemplateSets, msg.Orphaned, msg.SeqGap)
			}
			if len(msg.Records) != len(tc.want) {
				t.Fatalf("decoded %d records, want %d", len(msg.Records), len(tc.want))
			}
			for i, want := range tc.want {
				got := msg.Records[i]
				if got.Key != want.Key || got.Packets != want.Packets || got.Bytes != want.Bytes {
					t.Errorf("record %d: got %+v want %+v", i, got, want)
				}
				if !got.Start.Equal(want.Start) || !got.End.Equal(want.End) {
					t.Errorf("record %d times: %v-%v", i, got.Start, got.End)
				}
			}
		})
	}
}

func TestDecodeGoldenCorruptions(t *testing.T) {
	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"set length past end", func(b []byte) []byte { b[22] = 0xff; return b }},
		{"set length below minimum", func(b []byte) []byte { b[22], b[23] = 0, 2; return b }},
		{"template id in reserved range", func(b []byte) []byte { b[24], b[25] = 0, 1; return b }},
		{"truncated template", func(b []byte) []byte { return append(b[:30:30], b[30]) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.mutate(append([]byte(nil), goldenV9...))
			if _, err := Decode(raw, NewDecodeBuffer(nil)); err == nil {
				t.Error("corrupt datagram decoded without error")
			}
		})
	}
}

// exportSample builds n distinct finished flows.
func exportSample(n int) []flow.Record {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src: netaddr.IPv4(0x3d000000 + uint32(i)).Addr(), Dst: netaddr.IPv4(0xc0000201).Addr(),
				Proto: flow.ProtoTCP, SrcPort: uint16(1024 + i), DstPort: 80,
				TOS: 0xe0, InputIf: 2,
			},
			Packets: uint32(10 + i), Bytes: uint32(400 * (1 + i)),
			Start: boot.Add(time.Duration(i) * time.Second),
			End:   boot.Add(time.Duration(i)*time.Second + 500*time.Millisecond),
			SrcAS: 65001, DstAS: 65002, SrcMask: 11, DstMask: 24,
			TCPFlag: 0x12,
		}
	}
	return recs
}

// TestEncodeDecodeRoundTrip drives every encoder's output through Decode
// and checks the fields the analysis model consumes survive the wire.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	encoders := map[string]WireEncoder{
		"v5":    NewV5Encoder(boot, 7),
		"v9":    NewV9Encoder(boot, 7),
		"ipfix": NewIPFIXEncoder(7),
	}
	for name, enc := range encoders {
		t.Run(name, func(t *testing.T) {
			want := exportSample(45) // forces a 30/15 split
			buf := NewDecodeBuffer(NewTemplateCache(TemplateCacheConfig{}))
			buf.SetExporter("test")
			var got []flow.Record
			for _, wd := range enc.Encode(want, now) {
				msg, err := Decode(wd.Raw, buf)
				if err != nil {
					t.Fatal(err)
				}
				if msg.Version != enc.Version() {
					t.Fatalf("version %d, want %d", msg.Version, enc.Version())
				}
				got = append(got, msg.Records...)
			}
			if len(got) != len(want) {
				t.Fatalf("decoded %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Key != want[i].Key {
					t.Errorf("record %d key: got %+v want %+v", i, got[i].Key, want[i].Key)
				}
				if got[i].Packets != want[i].Packets || got[i].Bytes != want[i].Bytes ||
					got[i].SrcAS != want[i].SrcAS || got[i].DstAS != want[i].DstAS ||
					got[i].SrcMask != want[i].SrcMask || got[i].DstMask != want[i].DstMask ||
					got[i].TCPFlag != want[i].TCPFlag {
					t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
				}
				if !got[i].Start.Equal(want[i].Start) || !got[i].End.Equal(want[i].End) {
					t.Errorf("record %d times: got %v-%v want %v-%v",
						i, got[i].Start, got[i].End, want[i].Start, want[i].End)
				}
			}
		})
	}
}

// TestDecodeOrphanResolution delays the template datagram: early data
// sets must buffer (no records emitted), then decode in full when the
// template finally arrives.
func TestDecodeOrphanResolution(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	for _, tc := range []struct {
		name string
		enc  interface {
			WireEncoder
			SetTemplateDelay(int)
		}
	}{
		{"v9", NewV9Encoder(boot, 7)},
		{"ipfix", NewIPFIXEncoder(7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.enc.SetTemplateDelay(100) // withhold until Flush
			want := exportSample(35)     // two data datagrams
			dgs := tc.enc.Encode(want, now)
			dgs = append(dgs, tc.enc.Flush(now)...)

			cache := NewTemplateCache(TemplateCacheConfig{})
			buf := NewDecodeBuffer(cache)
			buf.SetExporter("test")

			var got []flow.Record
			orphaned, resolved := 0, 0
			for _, wd := range dgs {
				msg, err := Decode(wd.Raw, buf)
				if err != nil {
					t.Fatal(err)
				}
				orphaned += msg.Orphaned
				resolved += msg.Resolved
				got = append(got, msg.Records...)
			}
			if orphaned != 2 {
				t.Errorf("orphaned %d sets, want 2", orphaned)
			}
			if resolved != len(want) {
				t.Errorf("resolved %d records, want %d", resolved, len(want))
			}
			if len(got) != len(want) {
				t.Fatalf("decoded %d records, want %d", len(got), len(want))
			}
			// Orphans resolve in arrival order; fields must survive.
			for i := range want {
				if got[i].Key != want[i].Key || got[i].Bytes != want[i].Bytes {
					t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
				}
				if !got[i].Start.Equal(want[i].Start) {
					t.Errorf("record %d start %v, want %v", i, got[i].Start, want[i].Start)
				}
			}
			if cache.OrphanCount() != 0 {
				t.Errorf("%d orphans still buffered", cache.OrphanCount())
			}
		})
	}
}

func TestTemplateCacheTTLExpiry(t *testing.T) {
	clock := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	cache := NewTemplateCache(TemplateCacheConfig{
		TemplateTTL: time.Minute,
		Now:         func() time.Time { return clock },
	})
	key := domainKey{exporter: "a", domain: 1}
	tpl := &Template{ID: 256, Fields: []TemplateField{{ID: ieProtocolIdentifier, Length: 1}}}
	cache.learn(key, tpl)
	if cache.lookup(key, 256) == nil {
		t.Fatal("fresh template not found")
	}
	clock = clock.Add(2 * time.Minute)
	if cache.lookup(key, 256) != nil {
		t.Error("expired template still served")
	}
	if cache.Len() != 0 {
		t.Errorf("cache len %d after expiry", cache.Len())
	}
}

func TestTemplateCacheRefreshKeepsTemplate(t *testing.T) {
	clock := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	cache := NewTemplateCache(TemplateCacheConfig{
		TemplateTTL: time.Minute,
		Now:         func() time.Time { return clock },
	})
	key := domainKey{exporter: "a", domain: 1}
	fields := []TemplateField{{ID: ieProtocolIdentifier, Length: 1}}
	cache.learn(key, &Template{ID: 256, Fields: fields})
	clock = clock.Add(45 * time.Second)
	// Re-announcement with identical layout refreshes the TTL.
	cache.learn(key, &Template{ID: 256, Fields: fields})
	clock = clock.Add(45 * time.Second)
	if cache.lookup(key, 256) == nil {
		t.Error("refreshed template expired on original schedule")
	}
}

func TestTemplateCacheEvictionBound(t *testing.T) {
	cache := NewTemplateCache(TemplateCacheConfig{MaxTemplates: 4})
	key := domainKey{exporter: "a", domain: 1}
	for i := 0; i < 10; i++ {
		cache.learn(key, &Template{
			ID:     uint16(256 + i),
			Fields: []TemplateField{{ID: ieProtocolIdentifier, Length: 1}},
		})
	}
	if cache.Len() > 4 {
		t.Errorf("cache grew to %d templates, bound 4", cache.Len())
	}
}

func TestOrphanBufferBound(t *testing.T) {
	cache := NewTemplateCache(TemplateCacheConfig{MaxOrphans: 2})
	key := domainKey{exporter: "a", domain: 1}
	for i := 0; i < 5; i++ {
		cache.buffer(key, 256, orphan{data: []byte{1, 2, 3}})
	}
	if cache.OrphanCount() != 2 {
		t.Errorf("buffered %d orphans, bound 2", cache.OrphanCount())
	}
}

func TestOrphanTTLExpiry(t *testing.T) {
	clock := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	cache := NewTemplateCache(TemplateCacheConfig{
		MaxOrphans: 2,
		OrphanTTL:  time.Second,
		Now:        func() time.Time { return clock },
	})
	key := domainKey{exporter: "a", domain: 1}
	cache.buffer(key, 256, orphan{data: []byte{1}})
	cache.buffer(key, 256, orphan{data: []byte{2}})
	clock = clock.Add(5 * time.Second)
	// At the bound, stale orphans are expired to make room.
	if !cache.buffer(key, 257, orphan{data: []byte{3}}) {
		t.Error("fresh orphan dropped although stale ones were expirable")
	}
	if cache.OrphanCount() != 1 {
		t.Errorf("%d orphans buffered, want 1", cache.OrphanCount())
	}
}

func TestSequenceGapTracking(t *testing.T) {
	cache := NewTemplateCache(TemplateCacheConfig{})
	key := domainKey{exporter: "a", domain: 1}
	if gap := cache.seqCheck(key, 100, 1); gap != 0 {
		t.Errorf("first datagram reported gap %d", gap)
	}
	if gap := cache.seqCheck(key, 101, 1); gap != 0 {
		t.Errorf("contiguous datagram reported gap %d", gap)
	}
	if gap := cache.seqCheck(key, 105, 1); gap != 3 {
		t.Errorf("gap = %d, want 3 (102-104 lost)", gap)
	}
	// Backward jump (restart/reorder) resynchronizes silently.
	if gap := cache.seqCheck(key, 10, 1); gap != 0 {
		t.Errorf("backward jump reported gap %d", gap)
	}
	// Wraparound is still contiguous.
	cache.seqCheck(key, ^uint32(0), 1)
	if gap := cache.seqCheck(key, 0, 1); gap != 0 {
		t.Errorf("wraparound reported gap %d", gap)
	}
	// Separate domains track independently.
	other := domainKey{exporter: "a", domain: 2}
	if gap := cache.seqCheck(other, 500, 1); gap != 0 {
		t.Errorf("fresh domain reported gap %d", gap)
	}
}

func TestIPFIXTemplateWithdrawal(t *testing.T) {
	cache := NewTemplateCache(TemplateCacheConfig{})
	key := domainKey{exporter: "a", domain: 1}
	cache.learn(key, &Template{ID: 256, Fields: []TemplateField{{ID: ieProtocolIdentifier, Length: 1}}})
	cache.withdraw(key, 256)
	if cache.lookup(key, 256) != nil {
		t.Error("withdrawn template still served")
	}
	if cache.Len() != 0 {
		t.Errorf("cache len %d after withdrawal", cache.Len())
	}
}

func TestDecodeRejectsZeroLengthTemplate(t *testing.T) {
	// Template whose fields are all zero-length would loop forever on
	// data; the decoder must reject it.
	raw := append([]byte(nil), goldenV9[:20+36]...)
	// Rewrite all 7 field lengths to zero.
	for i := 0; i < 7; i++ {
		off := 20 + 8 + 4*i + 2
		raw[off], raw[off+1] = 0, 0
	}
	if _, err := Decode(raw, NewDecodeBuffer(nil)); !errors.Is(err, ErrBadSet) {
		t.Errorf("zero-length template: %v", err)
	}
}

// benchmarkDecode measures steady-state batch decode for one encoder:
// templates are learned during warmup, then the timed loop decodes the
// same full data datagram without allocating.
func benchmarkDecode(b *testing.B, enc WireEncoder) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	now := boot.Add(time.Hour)
	dgs := enc.Encode(exportSample(MaxRecords), now)
	data := dgs[len(dgs)-1].Raw // last datagram is pure data

	cache := NewTemplateCache(TemplateCacheConfig{})
	buf := NewDecodeBuffer(cache)
	buf.SetExporter("bench")
	for _, wd := range dgs { // warmup: learn templates, size the buffer
		if _, err := Decode(wd.Raw, buf); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg, err := Decode(data, buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(msg.Records) != MaxRecords {
			b.Fatalf("decoded %d records", len(msg.Records))
		}
	}
}

func BenchmarkDecodeV5Batch(b *testing.B) {
	benchmarkDecode(b, NewV5Encoder(time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC), 7))
}

func BenchmarkDecodeV9Batch(b *testing.B) {
	benchmarkDecode(b, NewV9Encoder(time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC), 7))
}

func BenchmarkDecodeIPFIXBatch(b *testing.B) {
	benchmarkDecode(b, NewIPFIXEncoder(7))
}

// TestDecodeSteadyStateZeroAlloc pins the zero-allocation property in the
// regular test run, not only under -bench.
func TestDecodeSteadyStateZeroAlloc(t *testing.T) {
	boot := time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC)
	encoders := map[string]WireEncoder{
		"v5":    NewV5Encoder(boot, 7),
		"v9":    NewV9Encoder(boot, 7),
		"ipfix": NewIPFIXEncoder(7),
	}
	for name, enc := range encoders {
		t.Run(name, func(t *testing.T) {
			dgs := enc.Encode(exportSample(MaxRecords), boot.Add(time.Hour))
			data := dgs[len(dgs)-1].Raw
			buf := NewDecodeBuffer(NewTemplateCache(TemplateCacheConfig{}))
			buf.SetExporter("alloc")
			for _, wd := range dgs {
				if _, err := Decode(wd.Raw, buf); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(100, func() {
				if _, err := Decode(data, buf); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state decode allocates %.1f/op, want 0", allocs)
			}
		})
	}
}
