// Package netflow implements the flow-export wire formats a border router
// emits and the router-side flow cache emulation the testbed replays
// through (paper §5.1.1). The original prototype spoke only NetFlow v5;
// this package now decodes v5, template-based NetFlow v9 and IPFIX behind
// one version-agnostic entry point, netflow.Decode, so no consumer depends
// on a per-version wire type. Encoding is likewise version-agnostic via
// WireEncoder (NewV5Encoder / NewV9Encoder / NewIPFIXEncoder) feeding the
// batching Exporter.
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

// Export format version words, as they appear in the first two bytes of
// every export datagram.
const (
	VersionV5    = 5
	VersionV9    = 9
	VersionIPFIX = 10
)

// Wire-format sizes for NetFlow v5.
const (
	v5HeaderSize = 24
	v5RecordSize = 48

	// MaxRecords is the flow-record capacity of one v5 export datagram,
	// per the v5 spec. The v9/IPFIX encoders keep the same batch size so
	// replayed streams stay comparable across versions.
	MaxRecords = 30
)

// Errors returned by the decoders.
var (
	ErrShortDatagram = errors.New("netflow: datagram too short")
	ErrBadVersion    = errors.New("netflow: unsupported version")
	ErrBadCount      = errors.New("netflow: record count disagrees with length")
	ErrBadSet        = errors.New("netflow: malformed flowset")
)

// v5Header is the 24-byte NetFlow v5 datagram header.
type v5Header struct {
	Count            uint16
	SysUptimeMS      uint32
	UnixSecs         uint32
	UnixNsecs        uint32
	FlowSequence     uint32
	EngineType       uint8
	EngineID         uint8
	SamplingInterval uint16
}

// v5Record is one 48-byte NetFlow v5 flow record.
type v5Record struct {
	SrcAddr  netaddr.IPv4
	DstAddr  netaddr.IPv4
	NextHop  netaddr.IPv4
	InputIf  uint16
	OutputIf uint16
	Packets  uint32
	Octets   uint32
	FirstMS  uint32 // sysUptime at first packet
	LastMS   uint32 // sysUptime at last packet
	SrcPort  uint16
	DstPort  uint16
	TCPFlags uint8
	Proto    uint8
	TOS      uint8
	SrcAS    uint16
	DstAS    uint16
	SrcMask  uint8
	DstMask  uint8
}

// v5Datagram is a decoded NetFlow v5 export datagram.
type v5Datagram struct {
	Header  v5Header
	Records []v5Record
}

// Marshal encodes d into the v5 wire format.
func (d *v5Datagram) Marshal() ([]byte, error) {
	if len(d.Records) > MaxRecords {
		return nil, fmt.Errorf("netflow: %d records exceeds max %d", len(d.Records), MaxRecords)
	}
	buf := make([]byte, v5HeaderSize+len(d.Records)*v5RecordSize)
	binary.BigEndian.PutUint16(buf[0:2], VersionV5)
	binary.BigEndian.PutUint16(buf[2:4], uint16(len(d.Records)))
	binary.BigEndian.PutUint32(buf[4:8], d.Header.SysUptimeMS)
	binary.BigEndian.PutUint32(buf[8:12], d.Header.UnixSecs)
	binary.BigEndian.PutUint32(buf[12:16], d.Header.UnixNsecs)
	binary.BigEndian.PutUint32(buf[16:20], d.Header.FlowSequence)
	buf[20] = d.Header.EngineType
	buf[21] = d.Header.EngineID
	binary.BigEndian.PutUint16(buf[22:24], d.Header.SamplingInterval)
	for i, r := range d.Records {
		off := v5HeaderSize + i*v5RecordSize
		b := buf[off : off+v5RecordSize]
		binary.BigEndian.PutUint32(b[0:4], uint32(r.SrcAddr))
		binary.BigEndian.PutUint32(b[4:8], uint32(r.DstAddr))
		binary.BigEndian.PutUint32(b[8:12], uint32(r.NextHop))
		binary.BigEndian.PutUint16(b[12:14], r.InputIf)
		binary.BigEndian.PutUint16(b[14:16], r.OutputIf)
		binary.BigEndian.PutUint32(b[16:20], r.Packets)
		binary.BigEndian.PutUint32(b[20:24], r.Octets)
		binary.BigEndian.PutUint32(b[24:28], r.FirstMS)
		binary.BigEndian.PutUint32(b[28:32], r.LastMS)
		binary.BigEndian.PutUint16(b[32:34], r.SrcPort)
		binary.BigEndian.PutUint16(b[34:36], r.DstPort)
		// b[36] pad1
		b[37] = r.TCPFlags
		b[38] = r.Proto
		b[39] = r.TOS
		binary.BigEndian.PutUint16(b[40:42], r.SrcAS)
		binary.BigEndian.PutUint16(b[42:44], r.DstAS)
		b[44] = r.SrcMask
		b[45] = r.DstMask
		// b[46:48] pad2
	}
	return buf, nil
}

// unmarshalV5 decodes a v5 datagram from raw bytes into a freshly
// allocated structure. The live ingest path uses decodeV5 (which fills a
// reusable DecodeBuffer) instead; this form remains for in-package tests.
func unmarshalV5(raw []byte) (*v5Datagram, error) {
	if len(raw) < v5HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortDatagram, len(raw))
	}
	if v := binary.BigEndian.Uint16(raw[0:2]); v != VersionV5 {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	count := int(binary.BigEndian.Uint16(raw[2:4]))
	if count > MaxRecords || len(raw) < v5HeaderSize+count*v5RecordSize {
		return nil, fmt.Errorf("%w: count=%d len=%d", ErrBadCount, count, len(raw))
	}
	d := &v5Datagram{
		Header:  decodeV5Header(raw),
		Records: make([]v5Record, count),
	}
	for i := 0; i < count; i++ {
		d.Records[i] = decodeV5Record(raw[v5HeaderSize+i*v5RecordSize : v5HeaderSize+(i+1)*v5RecordSize])
	}
	return d, nil
}

func decodeV5Header(raw []byte) v5Header {
	return v5Header{
		Count:            binary.BigEndian.Uint16(raw[2:4]),
		SysUptimeMS:      binary.BigEndian.Uint32(raw[4:8]),
		UnixSecs:         binary.BigEndian.Uint32(raw[8:12]),
		UnixNsecs:        binary.BigEndian.Uint32(raw[12:16]),
		FlowSequence:     binary.BigEndian.Uint32(raw[16:20]),
		EngineType:       raw[20],
		EngineID:         raw[21],
		SamplingInterval: binary.BigEndian.Uint16(raw[22:24]),
	}
}

func decodeV5Record(b []byte) v5Record {
	return v5Record{
		SrcAddr:  netaddr.IPv4(binary.BigEndian.Uint32(b[0:4])),
		DstAddr:  netaddr.IPv4(binary.BigEndian.Uint32(b[4:8])),
		NextHop:  netaddr.IPv4(binary.BigEndian.Uint32(b[8:12])),
		InputIf:  binary.BigEndian.Uint16(b[12:14]),
		OutputIf: binary.BigEndian.Uint16(b[14:16]),
		Packets:  binary.BigEndian.Uint32(b[16:20]),
		Octets:   binary.BigEndian.Uint32(b[20:24]),
		FirstMS:  binary.BigEndian.Uint32(b[24:28]),
		LastMS:   binary.BigEndian.Uint32(b[28:32]),
		SrcPort:  binary.BigEndian.Uint16(b[32:34]),
		DstPort:  binary.BigEndian.Uint16(b[34:36]),
		TCPFlags: b[37],
		Proto:    b[38],
		TOS:      b[39],
		SrcAS:    binary.BigEndian.Uint16(b[40:42]),
		DstAS:    binary.BigEndian.Uint16(b[42:44]),
		SrcMask:  b[44],
		DstMask:  b[45],
	}
}

// ToFlowRecord converts a wire record to the analysis flow model, resolving
// sysUptime-relative timestamps against the export header and boot time.
func (r v5Record) ToFlowRecord(hdr v5Header, inputIf uint16) flow.Record {
	return r.toFlowRecordAt(hdr.bootTime(), inputIf)
}

// bootTime resolves the exporter's boot time from the header clock pair.
// Hot decode loops compute it once per datagram; every record of the
// datagram then resolves its uptime-relative stamps against it.
func (hdr v5Header) bootTime() time.Time {
	export := time.Unix(int64(hdr.UnixSecs), int64(hdr.UnixNsecs)).UTC()
	return export.Add(-time.Duration(hdr.SysUptimeMS) * time.Millisecond)
}

// toFlowRecordAt is ToFlowRecord with the per-datagram boot time already
// resolved.
func (r v5Record) toFlowRecordAt(boot time.Time, inputIf uint16) flow.Record {
	var out flow.Record
	r.fillFlowRecord(&out, boot, inputIf)
	return out
}

// fillFlowRecord writes the converted record into *dst, overwriting every
// field — the decode loop converts straight into the reused record slice
// without staging a temporary.
func (r v5Record) fillFlowRecord(dst *flow.Record, boot time.Time, inputIf uint16) {
	*dst = flow.Record{
		Key: flow.Key{
			Src:     r.SrcAddr.Addr(),
			Dst:     r.DstAddr.Addr(),
			Proto:   r.Proto,
			SrcPort: r.SrcPort,
			DstPort: r.DstPort,
			TOS:     r.TOS,
			InputIf: inputIf,
		},
		Packets: r.Packets,
		Bytes:   r.Octets,
		Start:   boot.Add(time.Duration(r.FirstMS) * time.Millisecond),
		End:     boot.Add(time.Duration(r.LastMS) * time.Millisecond),
		SrcAS:   r.SrcAS,
		DstAS:   r.DstAS,
		SrcMask: r.SrcMask,
		DstMask: r.DstMask,
		TCPFlag: r.TCPFlags,
	}
}

// decodeV5FlowRecord decodes one 48-byte wire record straight into *dst,
// fusing decodeV5Record and fillFlowRecord for the hot ingest loop so no
// intermediate v5Record is staged. Field offsets must stay in lockstep
// with decodeV5Record; TestDecodeV5MatchesUnmarshal pins the equivalence.
func decodeV5FlowRecord(dst *flow.Record, b []byte, boot time.Time) {
	*dst = flow.Record{
		Key: flow.Key{
			Src:     netaddr.IPv4(binary.BigEndian.Uint32(b[0:4])).Addr(),
			Dst:     netaddr.IPv4(binary.BigEndian.Uint32(b[4:8])).Addr(),
			Proto:   b[38],
			SrcPort: binary.BigEndian.Uint16(b[32:34]),
			DstPort: binary.BigEndian.Uint16(b[34:36]),
			TOS:     b[39],
			InputIf: binary.BigEndian.Uint16(b[12:14]),
		},
		Packets: binary.BigEndian.Uint32(b[16:20]),
		Bytes:   binary.BigEndian.Uint32(b[20:24]),
		Start:   boot.Add(time.Duration(binary.BigEndian.Uint32(b[24:28])) * time.Millisecond),
		End:     boot.Add(time.Duration(binary.BigEndian.Uint32(b[28:32])) * time.Millisecond),
		SrcAS:   binary.BigEndian.Uint16(b[40:42]),
		DstAS:   binary.BigEndian.Uint16(b[42:44]),
		SrcMask: b[44],
		DstMask: b[45],
		TCPFlag: b[37],
	}
}

// v5FromFlowRecord converts an analysis flow record to a wire record, given
// the exporter's boot time for sysUptime-relative stamps.
func v5FromFlowRecord(fr flow.Record, boot time.Time) v5Record {
	src, _ := fr.Key.Src.V4() // v5 is a v4-only wire format; encoders gate on family
	dst, _ := fr.Key.Dst.V4()
	return v5Record{
		SrcAddr:  src,
		DstAddr:  dst,
		InputIf:  fr.Key.InputIf,
		Packets:  fr.Packets,
		Octets:   fr.Bytes,
		FirstMS:  uint32(fr.Start.Sub(boot).Milliseconds()),
		LastMS:   uint32(fr.End.Sub(boot).Milliseconds()),
		SrcPort:  fr.Key.SrcPort,
		DstPort:  fr.Key.DstPort,
		TCPFlags: fr.TCPFlag,
		Proto:    fr.Key.Proto,
		TOS:      fr.Key.TOS,
		SrcAS:    fr.SrcAS,
		DstAS:    fr.DstAS,
		SrcMask:  fr.SrcMask,
		DstMask:  fr.DstMask,
	}
}
