package idmef

import (
	"net"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/telemetry"
)

// TestSenderReconnectsAfterConsumerRestart kills the sender's first
// connection server-side and requires Send to recover by redialing,
// with the reconnect visible in the sender metrics.
func TestSenderReconnectsAfterConsumerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// First connection is accepted and immediately torn down (consumer
	// crash); later connections are drained normally.
	go func() {
		first, err := ln.Accept()
		if err != nil {
			return
		}
		first.Close()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	s, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := telemetry.NewRegistry()
	m := NewSenderMetrics(reg)
	s.SetMetrics(m)

	alert := NewAlert("m1", time.Now(), StageEIA, 1, "spoofed-traffic/eia-set", flow.Key{}, 0)
	// The first writes may land in the kernel buffer before the RST is
	// seen; keep sending until the failed write triggers the redial.
	deadline := time.Now().Add(5 * time.Second)
	for m.Reconnects.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect observed (sent=%d errors=%d)",
				m.Sent.Value(), m.SendErrors.Value())
		}
		if err := s.Send(alert); err != nil {
			t.Fatalf("Send failed instead of reconnecting: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if m.SendErrors.Value() == 0 {
		t.Error("reconnect without a recorded send error")
	}
	// The connection is healthy again after the reconnect.
	if err := s.Send(alert); err != nil {
		t.Fatalf("Send after reconnect: %v", err)
	}
	if m.Sent.Value() == 0 {
		t.Error("no successful sends recorded")
	}
}
