package idmef

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
)

func sampleAlert(id string) Alert {
	return NewAlert(id,
		time.Date(2005, 4, 1, 10, 30, 0, 0, time.UTC),
		StageNNS, 3, "spoofed-traffic/http-exploit",
		flow.Key{
			Src:     netaddr.MustParseAddr("70.1.2.3"),
			Dst:     netaddr.MustParseAddr("192.0.2.9"),
			Proto:   flow.ProtoTCP,
			SrcPort: 4444,
			DstPort: 80,
		}, 321)
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	a := sampleAlert("alert-1")
	raw, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"IDMEF-Message", `version="1.0"`, "spoofed-traffic/http-exploit",
		"70.1.2.3", "192.0.2.9", "nns-search",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("marshaled alert missing %q", want)
		}
	}
	back, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.MessageID != "alert-1" || back.Classification.Text != a.Classification.Text {
		t.Errorf("round trip: %+v", back)
	}
	if back.Source.Address != "70.1.2.3" || back.Target.Port != 80 {
		t.Errorf("endpoints: %+v / %+v", back.Source, back.Target)
	}
	if back.Assessment.Stage != StageNNS || back.Assessment.PeerAS != 3 || back.Assessment.Distance != 321 {
		t.Errorf("assessment: %+v", back.Assessment)
	}
	if !back.CreateTime.Equal(a.CreateTime) {
		t.Errorf("time: %v vs %v", back.CreateTime, a.CreateTime)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("not xml")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := Unmarshal([]byte(`<IDMEF-Message version="9.9"></IDMEF-Message>`)); err == nil {
		t.Error("bad version: want error")
	}
}

func TestSenderConsumerDelivery(t *testing.T) {
	var (
		mu  sync.Mutex
		got []Alert
	)
	c := NewConsumer(func(a Alert) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, a)
	})
	port, err := c.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s, err := Dial(fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Send(sampleAlert(fmt.Sprintf("alert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d alerts, want 10", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	seen := map[string]bool{}
	for _, a := range got {
		seen[a.MessageID] = true
	}
	if len(seen) != 10 {
		t.Errorf("saw %d distinct alerts", len(seen))
	}
}

func TestConsumerCloseIdempotent(t *testing.T) {
	c := NewConsumer(func(Alert) {})
	if _, err := c.Listen(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Listen(0); !errors.Is(err, ErrConsumerClosed) {
		t.Errorf("Listen after Close: %v", err)
	}
}

func TestConsumerSurvivesMalformedFrames(t *testing.T) {
	var (
		mu  sync.Mutex
		got int
	)
	c := NewConsumer(func(Alert) {
		mu.Lock()
		defer mu.Unlock()
		got++
	})
	port, err := c.Listen(0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s, err := Dial(fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Hand-write a malformed frame, then a good alert.
	if _, err := s.conn.Write([]byte("<broken\n\n")); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(sampleAlert("good")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("good alert after malformed frame never delivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
