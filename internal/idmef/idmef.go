// Package idmef implements a compact subset of the Intrusion Detection
// Message Exchange Format (IETF IDWG draft) used by the Enhanced InFilter
// Analysis module to notify consumers of detected attacks (paper §5.1.4).
// Alerts are serialized as IDMEF-Message XML documents; the consumer side
// parses and dispatches them to a handler (the Alert UI role).
package idmef

import (
	"encoding/xml"
	"fmt"
	"time"

	"infilter/internal/flow"
)

// Stage identifies the analysis stage that flagged the attack.
type Stage string

// Detection stages.
const (
	StageEIA         Stage = "eia-set"
	StageHeavyHitter Stage = "heavy-hitter"
	StageScan        Stage = "scan-analysis"
	StageNNS         Stage = "nns-search"
	StageTTL         Stage = "ttl-profile"
)

// Alert is the subset of an IDMEF Alert the prototype emits.
type Alert struct {
	XMLName        xml.Name  `xml:"Alert"`
	MessageID      string    `xml:"messageid,attr"`
	CreateTime     time.Time `xml:"CreateTime"`
	Classification Class     `xml:"Classification"`
	Source         Node      `xml:"Source>Node"`
	Target         Node      `xml:"Target>Node"`
	Assessment     Assess    `xml:"Assessment"`
}

// Class carries the attack classification text.
type Class struct {
	Text string `xml:"text,attr"`
}

// Node identifies an endpoint by address and port.
type Node struct {
	Address string `xml:"Address"`
	Port    uint16 `xml:"Port"`
}

// Assess carries detection metadata: which stage fired, the ingress peer
// AS, and the anomaly distance when NNS was involved.
type Assess struct {
	Stage    Stage `xml:"Stage"`
	PeerAS   int   `xml:"PeerAS"`
	Distance int   `xml:"Distance"`
}

// Message is the top-level IDMEF-Message envelope.
type Message struct {
	XMLName xml.Name `xml:"IDMEF-Message"`
	Version string   `xml:"version,attr"`
	Alert   Alert    `xml:"Alert"`
}

// IDMEFVersion is the draft version tag emitted.
const IDMEFVersion = "1.0"

// NewAlert builds an alert for a flagged flow.
func NewAlert(id string, now time.Time, stage Stage, peerAS int, classification string, k flow.Key, distance int) Alert {
	return Alert{
		MessageID:      id,
		CreateTime:     now.UTC(),
		Classification: Class{Text: classification},
		Source:         Node{Address: k.Src.String(), Port: k.SrcPort},
		Target:         Node{Address: k.Dst.String(), Port: k.DstPort},
		Assessment:     Assess{Stage: stage, PeerAS: peerAS, Distance: distance},
	}
}

// Marshal serializes the alert as an IDMEF-Message document.
func Marshal(a Alert) ([]byte, error) {
	msg := Message{Version: IDMEFVersion, Alert: a}
	out, err := xml.MarshalIndent(msg, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("idmef: marshal alert %s: %w", a.MessageID, err)
	}
	return append([]byte(xml.Header), out...), nil
}

// Unmarshal parses an IDMEF-Message document.
func Unmarshal(raw []byte) (Alert, error) {
	var msg Message
	if err := xml.Unmarshal(raw, &msg); err != nil {
		return Alert{}, fmt.Errorf("idmef: unmarshal: %w", err)
	}
	if msg.Version != IDMEFVersion {
		return Alert{}, fmt.Errorf("idmef: unsupported version %q", msg.Version)
	}
	return msg.Alert, nil
}
