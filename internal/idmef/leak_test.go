package idmef

import (
	"fmt"
	"testing"
	"time"

	"infilter/internal/flow"
	"infilter/internal/netaddr"
	"infilter/internal/testutil"
)

// TestConsumerGoroutineLeak cycles the consumer's accept/read loops with a
// live sender and fails if Close leaves any goroutine behind.
func TestConsumerGoroutineLeak(t *testing.T) {
	key := flow.Key{
		Src: netaddr.MustParseAddr("70.1.1.1"), Dst: netaddr.MustParseAddr("192.0.2.1"),
		Proto: flow.ProtoUDP, DstPort: 1434,
	}
	alert := NewAlert("leak-1", time.Date(2005, 4, 1, 0, 0, 0, 0, time.UTC),
		StageNNS, 1, "spoofed-traffic/nns", key, 42)
	testutil.ExpectNoGoroutineGrowth(t, func() {
		for i := 0; i < 3; i++ {
			got := make(chan Alert, 8)
			c := NewConsumer(func(a Alert) { got <- a })
			port, err := c.Listen(0)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Dial(addr(port))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Send(alert); err != nil {
				t.Fatal(err)
			}
			select {
			case a := <-got:
				if a.MessageID != "leak-1" {
					t.Errorf("got alert %q", a.MessageID)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("alert never delivered")
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Listen(0); err != ErrConsumerClosed {
				t.Errorf("Listen after Close = %v, want ErrConsumerClosed", err)
			}
		}
	})
}

// TestConsumerCloseWithLiveSender closes the consumer while a sender's
// connection is still open: the read loops must exit without waiting for
// the peer.
func TestConsumerCloseWithLiveSender(t *testing.T) {
	testutil.ExpectNoGoroutineGrowth(t, func() {
		c := NewConsumer(func(Alert) {})
		port, err := c.Listen(0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Dial(addr(port))
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// Give the accept loop a moment to register the connection so
		// Close exercises the live-conn teardown path.
		time.Sleep(20 * time.Millisecond)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func addr(port int) string {
	return fmt.Sprintf("127.0.0.1:%d", port)
}
