package idmef

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"infilter/internal/telemetry"
)

// Alert documents are framed on the wire by a blank line (consecutive
// newlines), letting one TCP stream carry many alerts.
var frameSep = []byte("\n\n")

// SenderMetrics are the alert-sink runtime counters: alerts delivered,
// write failures, and reconnects performed while recovering from one.
type SenderMetrics struct {
	Sent       *telemetry.Counter
	SendErrors *telemetry.Counter
	Reconnects *telemetry.Counter
}

// NewSenderMetrics registers the alert-sink counters on r.
func NewSenderMetrics(r *telemetry.Registry) *SenderMetrics {
	return &SenderMetrics{
		Sent:       r.Counter("infilter_alerts_sent_total", "IDMEF alerts delivered to the consumer."),
		SendErrors: r.Counter("infilter_alert_send_errors_total", "Alert writes that failed on the consumer connection."),
		Reconnects: r.Counter("infilter_alert_reconnects_total", "Consumer connections re-established after a failed write."),
	}
}

// Sender delivers alerts to an IDMEF consumer over TCP. A failed write
// redials the consumer once and retries the alert, so a consumer restart
// costs at most the alerts in flight during the outage.
type Sender struct {
	addr    string
	metrics *SenderMetrics

	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a consumer at addr.
func Dial(addr string) (*Sender, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("idmef: dial %s: %w", addr, err)
	}
	return &Sender{addr: addr, conn: conn}, nil
}

// SetMetrics installs runtime counters (nil disables). It must be called
// before the sender is shared with concurrent alert emitters.
func (s *Sender) SetMetrics(m *SenderMetrics) { s.metrics = m }

// Send transmits one alert. Safe for concurrent use. When the write
// fails (consumer restarted, connection reset), the sender redials and
// retries once before reporting the error.
func (s *Sender) Send(a Alert) error {
	raw, err := Marshal(a)
	if err != nil {
		return err
	}
	payload := append(raw, frameSep...)
	m := s.metrics
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.conn.Write(payload); err != nil {
		if m != nil {
			m.SendErrors.Inc()
		}
		conn, derr := net.Dial("tcp", s.addr)
		if derr != nil {
			return fmt.Errorf("idmef: send alert %s: %w (redial: %v)", a.MessageID, err, derr)
		}
		s.conn.Close()
		s.conn = conn
		if m != nil {
			m.Reconnects.Inc()
		}
		if _, err := s.conn.Write(payload); err != nil {
			if m != nil {
				m.SendErrors.Inc()
			}
			return fmt.Errorf("idmef: send alert %s after reconnect: %w", a.MessageID, err)
		}
	}
	if m != nil {
		m.Sent.Inc()
	}
	return nil
}

// Close closes the connection.
func (s *Sender) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn.Close()
}

// Consumer is the Alert-UI backend: a TCP listener that parses incoming
// IDMEF documents and hands them to a handler.
type Consumer struct {
	handler func(Alert)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ErrConsumerClosed is returned when Listen is called after Close.
var ErrConsumerClosed = errors.New("idmef: consumer closed")

// NewConsumer returns a consumer dispatching alerts to handler.
func NewConsumer(handler func(Alert)) *Consumer {
	return &Consumer{handler: handler, conns: make(map[net.Conn]struct{})}
}

// Listen binds a TCP listener on 127.0.0.1:port (0 picks a free port) and
// starts accepting senders. It returns the bound port.
func (c *Consumer) Listen(port int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrConsumerClosed
	}
	ln, err := net.Listen("tcp", fmt.Sprintf("127.0.0.1:%d", port))
	if err != nil {
		return 0, fmt.Errorf("idmef: listen %d: %w", port, err)
	}
	c.ln = ln
	addr, ok := ln.Addr().(*net.TCPAddr)
	if !ok {
		ln.Close()
		return 0, fmt.Errorf("idmef: unexpected addr type %T", ln.Addr())
	}
	c.wg.Add(1)
	go c.acceptLoop(ln)
	return addr.Port, nil
}

func (c *Consumer) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.mu.Unlock()
		c.wg.Add(1)
		go c.readLoop(conn)
	}
}

func (c *Consumer) readLoop(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	sc.Split(splitFrames)
	for sc.Scan() {
		frame := sc.Bytes()
		if len(bytes.TrimSpace(frame)) == 0 {
			continue
		}
		alert, err := Unmarshal(frame)
		if err != nil {
			continue // skip malformed frames, keep the stream alive
		}
		c.handler(alert)
	}
}

// splitFrames is a bufio.SplitFunc cutting the stream at blank lines.
func splitFrames(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if i := bytes.Index(data, frameSep); i >= 0 {
		return i + len(frameSep), data[:i], nil
	}
	if atEOF {
		if len(data) == 0 {
			return 0, nil, io.EOF
		}
		return len(data), data, nil
	}
	return 0, nil, nil
}

// Close stops the listener and waits for handler goroutines to finish.
// Safe to call multiple times.
func (c *Consumer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	for conn := range c.conns {
		conn.Close()
	}
	c.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	c.wg.Wait()
	return err
}
