package traceback

import (
	"fmt"
	"testing"
	"time"

	"infilter/internal/analysis"
	"infilter/internal/eia"
	"infilter/internal/flow"
	"infilter/internal/idmef"
	"infilter/internal/netaddr"
	"infilter/internal/netflow"
	"infilter/internal/trace"
)

var t0 = time.Date(2005, 4, 1, 12, 0, 0, 0, time.UTC)

func alertAt(at time.Time, peer int, src, dst string, stage idmef.Stage) idmef.Alert {
	return idmef.NewAlert("id", at, stage, peer, "spoofed-traffic",
		flow.Key{
			Src: netaddr.MustParseAddr(src),
			Dst: netaddr.MustParseAddr(dst),
		}, 0)
}

func TestSnapshotAggregation(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 8; i++ {
		tr.Observe(alertAt(t0.Add(time.Duration(i)*time.Second), 3,
			fmt.Sprintf("70.0.0.%d", i), "192.0.2.1", idmef.StageScan))
	}
	tr.Observe(alertAt(t0, 5, "80.0.0.1", "192.0.2.2", idmef.StageNNS))

	snap := tr.Snapshot(t0.Add(10 * time.Second))
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d ingresses", len(snap))
	}
	top := snap[0]
	if top.PeerAS != 3 || top.Alerts != 8 || top.DistinctSources != 8 || top.DistinctVictims != 1 {
		t.Errorf("top ingress %+v", top)
	}
	if top.Share < 0.8 {
		t.Errorf("top share %.2f", top.Share)
	}
	if top.ByStage[idmef.StageScan] != 8 {
		t.Errorf("stage counts %v", top.ByStage)
	}
	if !top.FirstSeen.Equal(t0) || !top.LastSeen.Equal(t0.Add(7*time.Second)) {
		t.Errorf("first/last %v/%v", top.FirstSeen, top.LastSeen)
	}
}

func TestEntryPointThresholds(t *testing.T) {
	tr := New(Config{MinAlerts: 5, MinShare: 0.5})
	// 6 alerts at peer 1, 4 at peer 2: only peer 1 clears both bars.
	for i := 0; i < 6; i++ {
		tr.Observe(alertAt(t0, 1, "70.0.0.1", "192.0.2.1", idmef.StageEIA))
	}
	for i := 0; i < 4; i++ {
		tr.Observe(alertAt(t0, 2, "70.0.0.2", "192.0.2.1", idmef.StageEIA))
	}
	eps := tr.EntryPoints(t0.Add(time.Second))
	if len(eps) != 1 || eps[0].PeerAS != 1 {
		t.Fatalf("entry points %v", eps)
	}
	if eps[0].String() == "" {
		t.Error("empty String()")
	}
}

func TestWindowPruning(t *testing.T) {
	tr := New(Config{Window: time.Minute})
	tr.Observe(alertAt(t0, 1, "70.0.0.1", "192.0.2.1", idmef.StageEIA))
	tr.Observe(alertAt(t0.Add(55*time.Second), 1, "70.0.0.2", "192.0.2.1", idmef.StageEIA))
	if n := tr.WindowSize(t0.Add(59 * time.Second)); n != 2 {
		t.Errorf("window size %d, want 2", n)
	}
	// The first alert ages out.
	if n := tr.WindowSize(t0.Add(90 * time.Second)); n != 1 {
		t.Errorf("window size %d after aging, want 1", n)
	}
	if snap := tr.Snapshot(t0.Add(5 * time.Minute)); snap != nil {
		t.Errorf("snapshot after full decay: %v", snap)
	}
}

func TestMalformedAddressesStillCount(t *testing.T) {
	tr := New(Config{})
	a := idmef.Alert{
		CreateTime: t0,
		Source:     idmef.Node{Address: "not-an-ip"},
		Target:     idmef.Node{Address: "also-bad"},
		Assessment: idmef.Assess{PeerAS: 9, Stage: idmef.StageEIA},
	}
	tr.Observe(a)
	snap := tr.Snapshot(t0)
	if len(snap) != 1 || snap[0].Alerts != 1 {
		t.Errorf("malformed alert dropped: %v", snap)
	}
}

// TestTracebackFromEngineAlerts wires the tracker to a live engine: a
// spoofed attack entering via peer AS 1 must be traced back to peer AS 1.
func TestTracebackFromEngineAlerts(t *testing.T) {
	target := netaddr.MustParsePrefix("192.0.2.0/24")
	var labeled []analysis.LabeledRecord
	for peer, block := range map[eia.PeerAS]string{1: "61.0.0.0/11", 2: "70.0.0.0/11"} {
		pkts, err := trace.GenerateNormal(trace.NormalConfig{
			Seed: int64(peer), Start: t0, Flows: 700,
			SrcPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix(block)},
			DstPrefix:   target,
		})
		if err != nil {
			t.Fatal(err)
		}
		cache := netflow.NewCache(netflow.CacheConfig{ExpireOnFINRST: true})
		for _, p := range pkts {
			cache.Observe(p, 1)
		}
		cache.FlushAll()
		for _, r := range cache.Drain() {
			labeled = append(labeled, analysis.LabeledRecord{Peer: peer, Record: r})
		}
	}
	engine, err := analysis.Train(analysis.Config{Mode: analysis.ModeEnhanced}, labeled)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Config{})
	engine.SetAlertSink(tr.Observe)
	clock := t0.Add(time.Hour)
	engine.SetClock(func() time.Time { return clock })

	pkts, err := trace.Generate(trace.AttackSlammer, trace.AttackConfig{
		Seed: 4, Start: clock,
		Src:       netaddr.MustParseAddr("70.9.9.9"),
		DstPrefix: target,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache := netflow.NewCache(netflow.CacheConfig{})
	for _, p := range pkts {
		cache.Observe(p, 1)
	}
	cache.FlushAll()
	for _, r := range cache.Drain() {
		engine.Process(1, r) // attack enters via peer AS 1
	}

	eps := tr.EntryPoints(clock)
	if len(eps) != 1 {
		t.Fatalf("entry points %v, want exactly peer 1", eps)
	}
	if eps[0].PeerAS != 1 {
		t.Errorf("traced to peer %d, want 1", eps[0].PeerAS)
	}
	if eps[0].DistinctVictims < 5 {
		t.Errorf("victims %d, slammer sprays many hosts", eps[0].DistinctVictims)
	}
}
